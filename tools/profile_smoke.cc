// CI smoke for the continuous profiling plane (DESIGN.md §13): boot a full
// engine with the admin server and profiler enabled, keep the topology busy
// from a load thread, pull a 2-second CPU profile over the ops HTTP plane,
// and assert the folded output is real — non-empty, well-formed lines, at
// least `TR_SMOKE_MIN_STACKS` deduplicated stacks, and >= 90% of samples
// attributed to registered stage roots (the ISSUE 8 acceptance bar).
//
//   ./profile_smoke            # exit 0 = pass, 1 = fail
//
// Env:
//   TR_SMOKE_MIN_STACKS=n   minimum deduped stacks (default 100)
//   TR_SMOKE_SECONDS=s      profile window (default 2)

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "engine/tencentrec.h"

using namespace tencentrec;
using namespace tencentrec::core;

namespace {

/// One raw GET against the embedded admin server; returns the body only.
std::string HttpGetBody(int port, const std::string& path) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  const std::string req =
      "GET " + path + " HTTP/1.1\r\nHost: localhost\r\n\r\n";
  (void)!::write(fd, req.data(), req.size());
  std::string out;
  char buf[4096];
  ssize_t n;
  while ((n = ::read(fd, buf, sizeof(buf))) > 0) out.append(buf, n);
  ::close(fd);
  const size_t split = out.find("\r\n\r\n");
  return split == std::string::npos ? "" : out.substr(split + 4);
}

int EnvInt(const char* name, int fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr) return fallback;
  const int parsed = std::atoi(v);
  return parsed > 0 ? parsed : fallback;
}

std::vector<UserAction> MakeBatch(Rng* rng, ZipfSampler* zipf, EventTime* t) {
  const ActionType kTypes[] = {ActionType::kBrowse, ActionType::kClick,
                               ActionType::kRead, ActionType::kPurchase};
  std::vector<UserAction> actions;
  actions.reserve(2000);
  for (int i = 0; i < 2000; ++i) {
    UserAction a;
    a.user = static_cast<UserId>(1 + rng->Uniform(200));
    a.item = static_cast<ItemId>(1 + zipf->Sample(*rng));
    a.action = kTypes[rng->Uniform(4)];
    a.timestamp = (*t += Seconds(1));
    actions.push_back(a);
  }
  return actions;
}

}  // namespace

int main() {
  const int min_stacks = EnvInt("TR_SMOKE_MIN_STACKS", 100);
  const int seconds = EnvInt("TR_SMOKE_SECONDS", 2);

  engine::TencentRec::Options options;
  options.app.app = "smoke";
  options.app.parallelism = 2;
  options.app.linked_time = Hours(4);
  options.store.num_data_servers = 2;
  options.store.num_instances = 8;
  options.enable_admin_server = true;
  options.enable_profiler = true;
  options.profiler_hz = 997;  // dense sampling: a 2 s window must be enough
  auto engine = engine::TencentRec::Create(options);
  if (!engine.ok()) {
    std::fprintf(stderr, "profile_smoke: engine: %s\n",
                 engine.status().ToString().c_str());
    return 1;
  }
  const int port = (*engine)->admin_server()->port();

  // Keep every pipeline stage hot while the window is being collected.
  std::atomic<bool> stop{false};
  std::thread load([&] {
    Rng rng(4242);
    ZipfSampler zipf(300, 0.9);
    EventTime t = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      if (!(*engine)->ProcessBatch(MakeBatch(&rng, &zipf, &t)).ok()) return;
    }
  });

  const std::string folded = HttpGetBody(
      port, "/profile/cpu?seconds=" + std::to_string(seconds) +
                "&format=folded");
  stop.store(true, std::memory_order_relaxed);
  load.join();

  if (folded.empty()) {
    std::fprintf(stderr, "profile_smoke: empty folded profile\n");
    return 1;
  }

  // Validate shape and attribution: every line is "frames count", the root
  // frame is the stage name, and unattributed samples stay under 10%.
  std::istringstream lines(folded);
  std::string line;
  long long stacks = 0, total = 0, unattributed = 0;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    const size_t space = line.rfind(' ');
    if (space == std::string::npos) {
      std::fprintf(stderr, "profile_smoke: malformed line: %s\n",
                   line.c_str());
      return 1;
    }
    const long long count = std::atoll(line.c_str() + space + 1);
    if (count <= 0) {
      std::fprintf(stderr, "profile_smoke: bad count in: %s\n", line.c_str());
      return 1;
    }
    ++stacks;
    total += count;
    if (line.rfind("unregistered;", 0) == 0 ||
        line.substr(0, space) == "unregistered") {
      unattributed += count;
    }
  }
  std::printf("profile_smoke: %lld stacks, %lld samples, %lld unattributed\n",
              stacks, total, unattributed);
  if (stacks < min_stacks) {
    std::fprintf(stderr, "profile_smoke: only %lld stacks (< %d)\n", stacks,
                 min_stacks);
    return 1;
  }
  if (unattributed * 10 > total) {
    std::fprintf(stderr,
                 "profile_smoke: %lld of %lld samples unattributed (>10%%)\n",
                 unattributed, total);
    return 1;
  }
  std::printf("profile_smoke: pass\n");
  return 0;
}
