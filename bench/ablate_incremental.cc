// Ablation: incremental update (§4.1.3) vs periodic batch recompute.
//
// Question: what does each strategy cost, and how stale is the batch
// model's similarity table between rebuilds? Streams N actions through
// (a) the incremental model (update per action) and (b) a batch model
// rebuilt every R actions, measuring wall time and the model's staleness
// (actions since the last rebuild, averaged over the stream).

#include <chrono>
#include <cstdio>

#include "common/random.h"
#include "core/itemcf/basic_cf.h"
#include "core/itemcf/item_cf.h"

namespace {

using namespace tencentrec;
using namespace tencentrec::core;

std::vector<UserAction> MakeStream(uint64_t seed, int n) {
  Rng rng(seed);
  ZipfSampler zipf(400, 0.9);
  const ActionType kTypes[] = {ActionType::kBrowse, ActionType::kClick,
                               ActionType::kRead, ActionType::kPurchase};
  std::vector<UserAction> actions;
  actions.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    UserAction a;
    a.user = static_cast<UserId>(1 + rng.Uniform(300));
    a.item = static_cast<ItemId>(1 + zipf.Sample(rng));
    a.action = kTypes[rng.Uniform(4)];
    a.timestamp = Seconds(i);
    actions.push_back(a);
  }
  return actions;
}

}  // namespace

int main() {
  constexpr int kActions = 120000;
  const auto stream = MakeStream(3, kActions);

  std::printf(
      "Incremental vs periodic batch recompute, %d actions, 300 users, "
      "400 items\n\n",
      kActions);

  // Incremental: model is exact after every action (staleness 0).
  {
    PracticalItemCf::Options options;
    options.linked_time = Hours(4);
    options.window_sessions = 0;
    PracticalItemCf cf(options);
    auto t0 = std::chrono::steady_clock::now();
    for (const auto& a : stream) cf.ProcessAction(a);
    auto t1 = std::chrono::steady_clock::now();
    const double ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    std::printf("%-28s %10.0f ms  %12.0f actions/s  staleness: 0\n",
                "incremental (per action)", ms,
                kActions / (ms / 1000.0));
  }

  // Batch: rebuild every R actions; the serving model lags R/2 on average.
  for (int rebuild_every : {20000, 60000, 120000}) {
    BasicItemCf model(BasicItemCf::SimilarityMeasure::kMinCoRating);
    ActionWeights weights;
    auto t0 = std::chrono::steady_clock::now();
    int since = 0;
    for (const auto& a : stream) {
      const double w = weights.Weight(a.action);
      if (w > model.RatingOf(a.user, a.item)) {
        model.SetRating(a.user, a.item, w);
      }
      if (++since >= rebuild_every) {
        model.ComputeSimilarities();
        since = 0;
      }
    }
    model.ComputeSimilarities();
    auto t1 = std::chrono::steady_clock::now();
    const double ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    std::printf(
        "%-20s R=%6d %10.0f ms  %12.0f actions/s  staleness: ~%d actions\n",
        "batch rebuild every", rebuild_every, ms, kActions / (ms / 1000.0),
        rebuild_every / 2);
  }

  std::printf(
      "\nexpected shape: incremental update costs O(pairs-per-action) and "
      "is never\nstale; the batch strategy only wins on raw throughput when "
      "rebuilds are so\nrare that the model is massively stale — the "
      "real-time/accuracy trade the\npaper's incremental formulation "
      "removes.\n");
  return 0;
}
