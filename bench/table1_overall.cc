// Reproduces Table 1 (Overall Performance Improvement): per application,
// the avg/min/max daily CTR improvement of TencentRec over the original
// recommendation method, measured by a simulated production A/B test.
//
// Paper (one month of production traffic):
//   News    CB   avg  6.62  min 3.22  max 14.5
//   Videos  CF   avg 18.17  min 7.27  max 30.52
//   YiXun   CF   avg  9.23  min 2.53  max 16.21
//   QQ      CTR  avg 10.01  min 1.75  max 25.4
//
// This harness reproduces the *shape* (every app improves; Videos gains the
// most; gains vary day to day) on synthetic workloads; absolute CTRs differ
// from production, which the paper itself redacts.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/stats.h"
#include "sim/apps.h"

namespace {

using tencentrec::RunningStat;
using namespace tencentrec::sim;

struct Row {
  const char* application;
  const char* algorithm;
  RunningStat improvement;
};

}  // namespace

int main() {
  const int days = tencentrec::bench::DaysFromEnv(10);
  const uint64_t seed = tencentrec::bench::SeedFromEnv();
  std::printf("Table 1: overall CTR improvement, %d simulated days/app\n\n",
              days);

  Row rows[4] = {{"News", "CB", {}},
                 {"Videos", "CF", {}},
                 {"YiXun", "CF", {}},
                 {"QQ", "CTR", {}}};

  {
    auto result = MakeNewsScenario(days, seed).Run();
    for (const auto& day : result.days) {
      rows[0].improvement.Add(day.ImprovementPct());
    }
  }
  {
    auto result = MakeVideosScenario(days, seed).Run();
    for (const auto& day : result.days) {
      rows[1].improvement.Add(day.ImprovementPct());
    }
  }
  {
    // YiXun overall: both recommendation positions contribute.
    auto price = MakeYixunScenario(YixunPosition::kSimilarPrice, days, seed)
                     .Run();
    auto purchase =
        MakeYixunScenario(YixunPosition::kSimilarPurchase, days, seed).Run();
    for (const auto& day : price.days) {
      rows[2].improvement.Add(day.ImprovementPct());
    }
    for (const auto& day : purchase.days) {
      rows[2].improvement.Add(day.ImprovementPct());
    }
  }
  {
    auto result = MakeAdsScenario(days, seed).Run();
    for (const auto& day : result.days) {
      rows[3].improvement.Add(day.ImprovementPct());
    }
  }

  std::printf("%-14s %-10s %28s\n", "", "", "Performance Improvement (%)");
  std::printf("%-14s %-10s %8s %8s %8s\n", "Applications", "Algorithms",
              "avg", "min", "max");
  for (const auto& row : rows) {
    std::printf("%-14s %-10s %8.2f %8.2f %8.2f\n", row.application,
                row.algorithm, row.improvement.mean(), row.improvement.min(),
                row.improvement.max());
  }
  std::printf(
      "\npaper:        News 6.62/3.22/14.5   Videos 18.17/7.27/30.52\n"
      "              YiXun 9.23/2.53/16.21  QQ 10.01/1.75/25.4\n");
  return 0;
}
