// Ablation: item-based vs user-based CF (§4.1).
//
// The paper adopts item-based CF because "the empirical evidence has shown
// that item-based CF method can provide better performance than the
// user-based CF method". This bench tests that claim on a genre-structured
// synthetic workload with a leave-last-out protocol: train both batch
// models on every action except each user's last liked item, then check
// whether the held-out item appears in the model's top-10, and compare
// model build cost.

#include <chrono>
#include <cstdio>
#include <unordered_map>

#include "common/random.h"
#include "core/itemcf/basic_cf.h"
#include "core/itemcf/user_cf.h"

namespace {

using namespace tencentrec;
using namespace tencentrec::core;

struct Dataset {
  /// (user, item, rating) training triples.
  std::vector<std::tuple<UserId, ItemId, double>> train;
  /// user -> held-out item.
  std::unordered_map<UserId, ItemId> holdout;
};

/// Genre-structured ratings: each user prefers 2 genres and rates items
/// mostly within them.
Dataset MakeDataset(uint64_t seed, int users, int items, int genres,
                    int ratings_per_user) {
  Rng rng(seed);
  Dataset data;
  std::vector<std::vector<ItemId>> by_genre(static_cast<size_t>(genres));
  for (ItemId item = 1; item <= items; ++item) {
    by_genre[static_cast<size_t>(item) % genres].push_back(item);
  }
  for (UserId user = 1; user <= users; ++user) {
    const int g1 = static_cast<int>(rng.Uniform(genres));
    const int g2 = static_cast<int>(rng.Uniform(genres));
    std::unordered_map<ItemId, double> rated;
    for (int r = 0; r < ratings_per_user; ++r) {
      const int genre = rng.Bernoulli(0.8)
                            ? (rng.Bernoulli(0.5) ? g1 : g2)
                            : static_cast<int>(rng.Uniform(genres));
      const auto& pool = by_genre[static_cast<size_t>(genre)];
      const ItemId item = pool[rng.Uniform(pool.size())];
      rated[item] = 1.0 + rng.Uniform(3);
    }
    if (rated.size() < 3) continue;
    // Hold out one of the user's preferred-genre items (predictable from
    // the rest of their profile — the standard leave-one-out setup).
    ItemId held = 0;
    for (const auto& [item, r] : rated) {
      const int genre = static_cast<int>(item) % genres;
      if (genre == g1 || genre == g2) held = item;
    }
    if (held == 0) held = rated.begin()->first;
    data.holdout[user] = held;
    for (const auto& [item, r] : rated) {
      if (item != held) data.train.emplace_back(user, item, r);
    }
  }
  return data;
}

template <typename Model>
double HitRate(const Model& model, const Dataset& data, size_t n) {
  int hits = 0;
  int total = 0;
  for (const auto& [user, held] : data.holdout) {
    ++total;
    for (const auto& rec : model.RecommendForUser(user, n)) {
      if (rec.item == held) {
        ++hits;
        break;
      }
    }
  }
  return total > 0 ? static_cast<double>(hits) / total : 0.0;
}

}  // namespace

int main() {
  std::printf(
      "Item-based vs user-based CF: leave-last-out hit@10 on a genre-"
      "structured\nworkload (the §4.1 design decision), 3 seeds\n\n");
  std::printf("%6s %10s %16s %16s %14s %14s\n", "seed", "users",
              "item-based hit", "user-based hit", "item build ms",
              "user build ms");

  for (uint64_t seed : {1u, 2u, 3u}) {
    Dataset data = MakeDataset(seed, 800, 500, 16, 30);

    BasicItemCf item_cf(BasicItemCf::SimilarityMeasure::kMinCoRating,
                        /*support_shrinkage=*/2.0);
    UserBasedCf user_cf(/*support_shrinkage=*/2.0);
    for (const auto& [user, item, rating] : data.train) {
      item_cf.SetRating(user, item, rating);
      user_cf.SetRating(user, item, rating);
    }

    auto t0 = std::chrono::steady_clock::now();
    item_cf.ComputeSimilarities();
    auto t1 = std::chrono::steady_clock::now();
    user_cf.ComputeSimilarities();
    auto t2 = std::chrono::steady_clock::now();

    std::printf("%6llu %10zu %15.1f%% %15.1f%% %14.0f %14.0f\n",
                static_cast<unsigned long long>(seed), data.holdout.size(),
                100.0 * HitRate(item_cf, data, 10),
                100.0 * HitRate(user_cf, data, 10),
                std::chrono::duration<double, std::milli>(t1 - t0).count(),
                std::chrono::duration<double, std::milli>(t2 - t1).count());
  }
  std::printf(
      "\nexpected shape: item-based hit rate at or above user-based (the "
      "paper's\nempirical claim), with comparable or lower build cost — and "
      "only item-based\ndecomposes into the incrementally maintainable "
      "counts of Eq. 5–8.\n");
  return 0;
}
