#ifndef TENCENTREC_BENCH_BENCH_UTIL_H_
#define TENCENTREC_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <string>

namespace tencentrec::bench {

/// Days of simulated traffic for the figure/table harnesses. The paper
/// measured one week (figures) and one month (Table 1); the defaults keep
/// `for b in build/bench/*; do $b; done` affordable while matching the
/// figures' one-week span. Override with TR_DAYS=n.
inline int DaysFromEnv(int fallback) {
  const char* env = std::getenv("TR_DAYS");
  if (env == nullptr) return fallback;
  int v = std::atoi(env);
  return v > 0 ? v : fallback;
}

inline uint64_t SeedFromEnv(uint64_t fallback = 42) {
  const char* env = std::getenv("TR_SEED");
  if (env == nullptr) return fallback;
  return static_cast<uint64_t>(std::strtoull(env, nullptr, 10));
}

}  // namespace tencentrec::bench

#endif  // TENCENTREC_BENCH_BENCH_UTIL_H_
