#ifndef TENCENTREC_BENCH_BENCH_UTIL_H_
#define TENCENTREC_BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

namespace tencentrec::bench {

/// Days of simulated traffic for the figure/table harnesses. The paper
/// measured one week (figures) and one month (Table 1); the defaults keep
/// `for b in build/bench/*; do $b; done` affordable while matching the
/// figures' one-week span. Override with TR_DAYS=n.
inline int DaysFromEnv(int fallback) {
  const char* env = std::getenv("TR_DAYS");
  if (env == nullptr) return fallback;
  int v = std::atoi(env);
  return v > 0 ? v : fallback;
}

inline uint64_t SeedFromEnv(uint64_t fallback = 42) {
  const char* env = std::getenv("TR_SEED");
  if (env == nullptr) return fallback;
  return static_cast<uint64_t>(std::strtoull(env, nullptr, 10));
}

/// Nearest-rank percentile (pct in [0,100]) over an unsorted sample set.
/// Copies and sorts; fine for the handful of reps a bench collects.
inline double SamplePercentile(std::vector<double> samples, double pct) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  const double rank =
      std::ceil(pct / 100.0 * static_cast<double>(samples.size()));
  const size_t idx = rank < 1.0 ? 0 : static_cast<size_t>(rank) - 1;
  return samples[std::min(idx, samples.size() - 1)];
}

/// Per-rep wall times reduced to the summary a tracking dashboard wants:
/// throughput from the fastest rep (least-noise estimate) and the rep
/// latency distribution.
struct BenchSummary {
  double ops_per_sec = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
};

inline BenchSummary Summarize(const std::vector<double>& rep_ms,
                              double ops_per_rep) {
  BenchSummary s;
  if (rep_ms.empty()) return s;
  const double best = *std::min_element(rep_ms.begin(), rep_ms.end());
  if (best > 0) s.ops_per_sec = ops_per_rep / (best / 1e3);
  s.p50_ms = SamplePercentile(rep_ms, 50);
  s.p95_ms = SamplePercentile(rep_ms, 95);
  s.p99_ms = SamplePercentile(rep_ms, 99);
  return s;
}

/// Writes `BENCH_<name>.json` into $TR_BENCH_OUT (default: the working
/// directory) so `scripts/run_bench.sh` can collect machine-readable
/// results next to the human-readable stdout. `extra_json`, when nonempty,
/// is spliced verbatim as additional top-level fields (caller supplies
/// valid `"key": value` pairs, comma-separated, no trailing comma).
inline bool WriteBenchJson(const std::string& name, const BenchSummary& s,
                           const std::string& extra_json = "") {
  const char* dir = std::getenv("TR_BENCH_OUT");
  std::string path = (dir != nullptr && dir[0] != '\0')
                         ? std::string(dir) + "/BENCH_" + name + ".json"
                         : "BENCH_" + name + ".json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench: cannot write %s\n", path.c_str());
    return false;
  }
  std::fprintf(f,
               "{\n"
               "  \"name\": \"%s\",\n"
               "  \"ops_per_sec\": %.1f,\n"
               "  \"p50_ms\": %.3f,\n"
               "  \"p95_ms\": %.3f,\n"
               "  \"p99_ms\": %.3f%s%s\n"
               "}\n",
               name.c_str(), s.ops_per_sec, s.p50_ms, s.p95_ms, s.p99_ms,
               extra_json.empty() ? "" : ",\n  ", extra_json.c_str());
  std::fclose(f);
  std::printf("bench json -> %s\n", path.c_str());
  return true;
}

}  // namespace tencentrec::bench

#endif  // TENCENTREC_BENCH_BENCH_UTIL_H_
