// Ablation: real-time Hoeffding pruning (§4.1.4, Eq. 9, Algorithm 1).
//
// Question: how much pair-update computation does pruning save, and what
// does it cost in similar-items list quality? Sweeps the confidence
// parameter δ; reports updates saved and the recall of the pruned model's
// top-K lists against the unpruned model's.

#include <chrono>
#include <cstdio>
#include <unordered_set>

#include "common/random.h"
#include "core/itemcf/item_cf.h"

namespace {

using namespace tencentrec;
using namespace tencentrec::core;

std::vector<UserAction> MakeStream(uint64_t seed, int n, int users,
                                   int items) {
  Rng rng(seed);
  ZipfSampler zipf(static_cast<size_t>(items), 0.9);
  const ActionType kTypes[] = {ActionType::kBrowse, ActionType::kClick,
                               ActionType::kRead, ActionType::kPurchase};
  std::vector<UserAction> actions;
  actions.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    UserAction a;
    a.user = static_cast<UserId>(1 + rng.Uniform(users));
    a.item = static_cast<ItemId>(1 + zipf.Sample(rng));
    a.action = kTypes[rng.Uniform(4)];
    a.timestamp = Seconds(i);
    actions.push_back(a);
  }
  return actions;
}

PracticalItemCf::Options BaseOptions() {
  PracticalItemCf::Options options;
  options.linked_time = Hours(4);
  options.top_k = 5;
  options.window_sessions = 0;
  return options;
}

/// Recall of `pruned`'s similar lists against `reference`'s, averaged over
/// items (how much list quality pruning gave up).
double ListRecall(const PracticalItemCf& pruned,
                  const PracticalItemCf& reference, int items) {
  double recall_sum = 0.0;
  int counted = 0;
  for (ItemId item = 1; item <= items; ++item) {
    const auto* ref = reference.SimilarItems(item);
    if (ref == nullptr || ref->empty()) continue;
    const auto* got = pruned.SimilarItems(item);
    std::unordered_set<ItemId> got_ids;
    if (got != nullptr) {
      for (const auto& e : got->entries()) got_ids.insert(e.id);
    }
    int hits = 0;
    for (const auto& e : ref->entries()) {
      if (got_ids.count(e.id) > 0) ++hits;
    }
    recall_sum += static_cast<double>(hits) /
                  static_cast<double>(ref->entries().size());
    ++counted;
  }
  return counted > 0 ? recall_sum / counted : 1.0;
}

}  // namespace

int main() {
  constexpr int kUsers = 400;
  constexpr int kItems = 500;
  constexpr int kActions = 300000;
  const auto stream = MakeStream(7, kActions, kUsers, kItems);

  // Reference: no pruning.
  PracticalItemCf reference(BaseOptions());
  auto t0 = std::chrono::steady_clock::now();
  for (const auto& a : stream) reference.ProcessAction(a);
  auto t1 = std::chrono::steady_clock::now();
  const double ref_ms =
      std::chrono::duration<double, std::milli>(t1 - t0).count();

  std::printf(
      "Hoeffding pruning ablation: %d actions, %d users, %d items, "
      "top_k=%d\n\n",
      kActions, kUsers, kItems, BaseOptions().top_k);
  std::printf("%10s %14s %14s %12s %10s %10s\n", "delta", "pair updates",
              "skipped", "saved%", "recall", "time(ms)");
  std::printf("%10s %14lld %14lld %12s %10s %10.0f   (no pruning)\n", "-",
              static_cast<long long>(reference.stats().pair_updates),
              static_cast<long long>(0), "-", "1.000", ref_ms);

  for (double delta : {0.5, 0.2, 0.05, 0.01, 0.001}) {
    PracticalItemCf::Options options = BaseOptions();
    options.enable_pruning = true;
    options.hoeffding_delta = delta;
    PracticalItemCf pruned(options);
    auto p0 = std::chrono::steady_clock::now();
    for (const auto& a : stream) pruned.ProcessAction(a);
    auto p1 = std::chrono::steady_clock::now();
    const double ms =
        std::chrono::duration<double, std::milli>(p1 - p0).count();

    const auto& stats = pruned.stats();
    const double saved =
        100.0 * static_cast<double>(stats.pair_updates_pruned) /
        static_cast<double>(stats.pair_updates + stats.pair_updates_pruned);
    std::printf("%10.3f %14lld %14lld %11.1f%% %10.3f %10.0f\n", delta,
                static_cast<long long>(stats.pair_updates),
                static_cast<long long>(stats.pair_updates_pruned), saved,
                ListRecall(pruned, reference, kItems), ms);
  }
  std::printf(
      "\nexpected shape: larger delta (lower confidence bar) prunes more "
      "pairs and skips\nmore updates at a small recall cost; smaller delta "
      "is conservative. Note the\nsaved resource in production is TDStore/"
      "network traffic per skipped update —\nwall time here is an in-memory "
      "proxy. Pairs only prune once both items'\nsimilar-items lists fill "
      "(Algorithm 1 takes the min threshold), so Zipf-tail\nitems are never "
      "pruned away.\n");
  return 0;
}
