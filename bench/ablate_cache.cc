// Ablation: the fine-grained key-value cache (§5.2, temporal burst events).
//
// Question: how many TDStore reads does the per-key write-through cache
// save when a temporal burst concentrates traffic on a few hot items (and
// the users re-reading them)? Compares store read counts with the cache
// enabled vs disabled, for a normal stream and a bursty one.

#include <cstdio>

#include "common/random.h"
#include "engine/tencentrec.h"

namespace {

using namespace tencentrec;
using namespace tencentrec::core;

/// `burst = true` interleaves a hot-news burst: 60% of actions hit the
/// same 5 items (everyone reads the breaking story).
std::vector<UserAction> Stream(uint64_t seed, int n, bool burst) {
  Rng rng(seed);
  ZipfSampler zipf(600, 0.8);
  std::vector<UserAction> actions;
  actions.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    UserAction a;
    a.user = static_cast<UserId>(1 + rng.Uniform(400));
    if (burst && rng.Bernoulli(0.6)) {
      a.item = static_cast<ItemId>(1 + rng.Uniform(5));
    } else {
      a.item = static_cast<ItemId>(1 + zipf.Sample(rng));
    }
    a.action = ActionType::kClick;
    a.timestamp = Seconds(i);
    actions.push_back(a);
  }
  return actions;
}

int64_t RunAndCountReads(const std::vector<UserAction>& stream, bool cache) {
  engine::TencentRec::Options options;
  options.app.app = cache ? "cache" : "nocache";
  options.app.parallelism = 2;
  options.app.linked_time = Minutes(30);
  options.app.enable_cache = cache;
  options.app.cache_capacity = 512;     // small enough that only hot keys stay
  options.app.enable_combiner = false;  // isolate the cache's effect
  options.store.num_data_servers = 2;
  options.store.num_instances = 8;
  auto engine = engine::TencentRec::Create(options);
  if (!engine.ok()) return -1;
  for (int s = 0; s < (*engine)->store()->num_data_servers(); ++s) {
    (*engine)->store()->data_server(s)->ResetCounters();
  }
  if (!(*engine)->ProcessBatch(stream).ok()) return -1;
  int64_t reads = 0;
  for (int s = 0; s < (*engine)->store()->num_data_servers(); ++s) {
    reads += (*engine)->store()->data_server(s)->reads();
  }
  return reads;
}

}  // namespace

int main() {
  constexpr int kActions = 30000;
  std::printf(
      "Fine-grained cache ablation: TDStore reads with cache on/off,\n"
      "%d actions, normal vs temporal-burst traffic\n\n",
      kActions);
  std::printf("%10s %16s %16s %10s\n", "traffic", "reads (off)",
              "reads (on)", "saved%");
  for (bool burst : {false, true}) {
    const auto stream = Stream(13, kActions, burst);
    const int64_t off = RunAndCountReads(stream, false);
    const int64_t on = RunAndCountReads(stream, true);
    if (off < 0 || on < 0) return 1;
    std::printf("%10s %16lld %16lld %9.1f%%\n", burst ? "burst" : "normal",
                static_cast<long long>(off), static_cast<long long>(on),
                100.0 * static_cast<double>(off - on) /
                    static_cast<double>(off));
  }
  std::printf(
      "\nexpected shape: the cache saves a larger share of reads under the "
      "burst —\nuser activities in temporal bursts have locality (§5.2).\n");
  return 0;
}
