// Microbenchmarks: TDAccess — produce and consume throughput, memory-only
// vs disk-backed partition logs.

#include <benchmark/benchmark.h>

#include <filesystem>
#include <unistd.h>

#include "tdaccess/consumer.h"
#include "tdaccess/producer.h"

namespace {

using namespace tencentrec;
using namespace tencentrec::tdaccess;

std::string TempDirFor(const char* tag) {
  auto path = std::filesystem::temp_directory_path() /
              ("bench_tdaccess_" + std::to_string(::getpid()) + "_" + tag);
  std::filesystem::create_directories(path);
  return path.string();
}

void BM_Produce(benchmark::State& state) {
  const bool durable = state.range(0) != 0;
  std::string dir = durable ? TempDirFor("produce") : "";
  Cluster cluster(Cluster::Options{.num_data_servers = 2, .data_dir = dir});
  (void)cluster.master().CreateTopic("t", 4);
  Producer producer(&cluster, "t");
  int64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        producer.Send("user" + std::to_string(i % 128),
                      "payload-of-about-thirty-bytes!!", i));
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
  if (durable) std::filesystem::remove_all(dir);
}
BENCHMARK(BM_Produce)->Arg(0)->Arg(1)->ArgName("durable");

void BM_ConsumeBatch(benchmark::State& state) {
  Cluster cluster(Cluster::Options{.num_data_servers = 2, .data_dir = ""});
  (void)cluster.master().CreateTopic("t", 4);
  Producer producer(&cluster, "t");
  constexpr int kMessages = 20000;
  for (int i = 0; i < kMessages; ++i) {
    (void)producer.Send("k" + std::to_string(i % 128), "payload", i);
  }
  for (auto _ : state) {
    Consumer consumer(&cluster, "t", "g" + std::to_string(state.iterations()),
                      "m");
    (void)consumer.Subscribe();
    size_t total = 0;
    while (true) {
      auto batch = consumer.Poll(512);
      if (!batch.ok() || batch->empty()) break;
      total += batch->size();
    }
    benchmark::DoNotOptimize(total);
  }
  state.SetItemsProcessed(state.iterations() * kMessages);
}
BENCHMARK(BM_ConsumeBatch)->Unit(benchmark::kMillisecond);

}  // namespace
