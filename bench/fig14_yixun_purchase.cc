// Reproduces Figure 14 (CTR of the similar-purchase recommendation position
// in YiXun, one week): "commodities purchased by the users who have also
// purchased this commodity" — a denser, relatively explicit signal, so the
// real-time gain is smaller than the similar-price position's (§6.4).
// Paper improvements: 6.99, 6.29, 10.71, 11.11, 11.59, 10.37, 10.34 %.

#include <cstdio>

#include "bench/bench_util.h"
#include "sim/apps.h"

int main() {
  const int days = tencentrec::bench::DaysFromEnv(7);
  const uint64_t seed = tencentrec::bench::SeedFromEnv();
  std::printf(
      "Figure 14: CTR of similar-purchase recommendation in YiXun "
      "(%d days)\n\n",
      days);
  auto result =
      tencentrec::sim::MakeYixunScenario(
          tencentrec::sim::YixunPosition::kSimilarPurchase, days, seed)
          .Run();

  std::printf("%4s %14s %14s %14s\n", "day", "Original CTR", "TencentRec CTR",
              "improvement");
  int days_won = 0;
  for (const auto& day : result.days) {
    std::printf("%4d %13.2f%% %13.2f%% %13.2f%%\n", day.day,
                day.original.Ctr() * 100.0, day.tencentrec.Ctr() * 100.0,
                day.ImprovementPct());
    if (day.tencentrec.Ctr() > day.original.Ctr()) ++days_won;
  }
  std::printf(
      "\nTencentRec above Original on %d/%zu days "
      "(paper: every day; improvements 6.29%%..11.59%%)\n",
      days_won, result.days.size());
  return 0;
}
