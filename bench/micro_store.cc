// Host-aware batched TDStore I/O vs the point-op hot path, on the store op
// mix the count/similarity bolts generate per action:
//
//   2 counter increments (itemCount, pairCount), 2 threshold reads, and one
//   similar-list/threshold overwrite.
//
// The point phase issues them one client call per op (the pre-batching
// shape); the batched phase buffers one combiner window of actions and
// ships the same logical ops as grouped per-host Multi* calls plus one
// write-behind BatchWriter flush. Both phases run against identical
// clusters; the reduction is measured with DataServer::invocations(), which
// counts client-facing entry calls (a whole batch = 1) while reads/writes
// keep per-op accounting.
//
// Acceptance (ISSUE): batching cuts data-server invocations per action by
// at least 3x. The harness asserts that and exits nonzero on regression.
//
// Plain harness with its own main; emits BENCH_micro_store.json:
//   ./bench/micro_store

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "common/metrics.h"
#include "common/random.h"
#include "tdstore/batch_writer.h"
#include "tdstore/client.h"
#include "tdstore/cluster.h"

namespace {

using namespace tencentrec;
using namespace tencentrec::tdstore;

constexpr int kActions = 20000;
constexpr int kWindow = 64;  // combiner flush interval (actions per flush)
constexpr int kReps = 5;

struct Action {
  int item = 0;
  int other = 0;  // co-rated item forming the pair
};

std::vector<Action> MakeStream(uint64_t seed) {
  Rng rng(seed);
  ZipfSampler zipf(500, 0.9);
  std::vector<Action> actions;
  actions.reserve(kActions);
  for (int i = 0; i < kActions; ++i) {
    Action a;
    a.item = static_cast<int>(1 + zipf.Sample(rng));
    a.other = static_cast<int>(1 + zipf.Sample(rng));
    actions.push_back(a);
  }
  return actions;
}

std::string IcKey(int item) { return "ic:" + std::to_string(item); }
std::string PcKey(int lo, int hi) {
  return "pc:" + std::to_string(lo) + ":" + std::to_string(hi);
}
std::string StKey(int item) { return "st:" + std::to_string(item); }

std::unique_ptr<Cluster> MakeCluster() {
  Cluster::Options options;
  options.num_data_servers = 3;
  options.num_instances = 12;
  auto cluster = Cluster::Create(options);
  if (!cluster.ok()) {
    std::fprintf(stderr, "cluster: %s\n", cluster.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(cluster).value();
}

int64_t TotalInvocations(Cluster* cluster) {
  int64_t total = 0;
  for (int s = 0; s < cluster->num_data_servers(); ++s) {
    total += cluster->data_server(s)->invocations();
  }
  return total;
}

void ResetCounters(Cluster* cluster) {
  for (int s = 0; s < cluster->num_data_servers(); ++s) {
    cluster->data_server(s)->ResetCounters();
  }
}

#define CHECK_OK(expr)                                                    \
  do {                                                                    \
    auto _s = (expr);                                                     \
    if (!_s.ok()) {                                                       \
      std::fprintf(stderr, "%s: %s\n", #expr, _s.ToString().c_str());     \
      std::exit(1);                                                       \
    }                                                                     \
  } while (0)

// The pre-batching hot path: every logical op is its own client call.
double RunPoint(const std::vector<Action>& stream, int64_t* invocations) {
  auto cluster = MakeCluster();
  Client client(cluster.get());
  CHECK_OK(client.Put("warm", "route"));
  ResetCounters(cluster.get());
  const uint64_t t0 = MonoMicros();
  for (const auto& a : stream) {
    const int lo = std::min(a.item, a.other);
    const int hi = std::max(a.item, a.other);
    CHECK_OK(client.IncrDouble(IcKey(a.item), 1.0).status());
    CHECK_OK(client.IncrDouble(PcKey(lo, hi), 1.0).status());
    CHECK_OK(client.GetDouble(StKey(lo)).status());
    CHECK_OK(client.GetDouble(StKey(hi)).status());
    CHECK_OK(client.PutDouble(StKey(a.item), 0.5));
  }
  const double ms = static_cast<double>(MonoMicros() - t0) / 1e3;
  *invocations = TotalInvocations(cluster.get());
  return ms;
}

// The batched path: one combiner window buffers its increments, then ships
// them as grouped Multi* calls; threshold reads go through one MultiGet per
// window; overwrites ride the write-behind BatchWriter.
double RunBatched(const std::vector<Action>& stream, int64_t* invocations) {
  auto cluster = MakeCluster();
  Client client(cluster.get());
  CHECK_OK(client.Put("warm", "route"));
  BatchWriter::Options wopts;
  wopts.max_ops = 1 << 20;  // explicit per-window flushes only
  BatchWriter writer(&client, wopts);
  ResetCounters(cluster.get());
  const uint64_t t0 = MonoMicros();
  for (size_t start = 0; start < stream.size();
       start += static_cast<size_t>(kWindow)) {
    const size_t end =
        std::min(start + static_cast<size_t>(kWindow), stream.size());
    std::vector<std::pair<std::string, double>> adds;
    std::vector<std::string> reads;
    adds.reserve(2 * (end - start));
    reads.reserve(2 * (end - start));
    for (size_t i = start; i < end; ++i) {
      const Action& a = stream[i];
      const int lo = std::min(a.item, a.other);
      const int hi = std::max(a.item, a.other);
      adds.emplace_back(IcKey(a.item), 1.0);
      adds.emplace_back(PcKey(lo, hi), 1.0);
      reads.push_back(StKey(lo));
      reads.push_back(StKey(hi));
      writer.PutDouble(StKey(a.item), 0.5);
    }
    std::vector<Result<double>> incr_out;
    CHECK_OK(client.MultiIncrDouble(adds, &incr_out));
    std::vector<Result<double>> read_out;
    CHECK_OK(client.MultiGetDouble(reads, 0.0, &read_out));
    CHECK_OK(writer.Flush());
  }
  const double ms = static_cast<double>(MonoMicros() - t0) / 1e3;
  *invocations = TotalInvocations(cluster.get());
  return ms;
}

}  // namespace

int main() {
  SetMetricsEnabled(true);
  const auto stream = MakeStream(bench::SeedFromEnv());

  std::vector<double> point_ms;
  std::vector<double> batched_ms;
  int64_t point_inv = 0;
  int64_t batched_inv = 0;
  (void)RunBatched(stream, &batched_inv);  // warmup
  for (int r = 0; r < kReps; ++r) {
    point_ms.push_back(RunPoint(stream, &point_inv));
    batched_ms.push_back(RunBatched(stream, &batched_inv));
  }

  const double point_per_action =
      static_cast<double>(point_inv) / static_cast<double>(kActions);
  const double batched_per_action =
      static_cast<double>(batched_inv) / static_cast<double>(kActions);
  const double reduction = point_per_action / batched_per_action;

  std::printf("== micro_store: %d actions, window %d, best of %d ==\n",
              kActions, kWindow, kReps);
  std::printf("  point    %8.2f ms  %6.2f server invocations/action\n",
              *std::min_element(point_ms.begin(), point_ms.end()),
              point_per_action);
  std::printf("  batched  %8.2f ms  %6.2f server invocations/action\n",
              *std::min_element(batched_ms.begin(), batched_ms.end()),
              batched_per_action);
  std::printf("  reduction %6.1fx  (target >= 3x)\n", reduction);

  const auto summary =
      bench::Summarize(batched_ms, static_cast<double>(kActions));
  char extra[200];
  std::snprintf(extra, sizeof(extra),
                "\"point_invocations_per_action\": %.2f, "
                "\"batched_invocations_per_action\": %.2f, "
                "\"invocation_reduction_x\": %.1f",
                point_per_action, batched_per_action, reduction);
  bench::WriteBenchJson("micro_store", summary, extra);

  if (reduction < 3.0) {
    std::fprintf(stderr,
                 "FAIL: batching reduced invocations only %.1fx (< 3x)\n",
                 reduction);
    return 1;
  }
  return 0;
}
