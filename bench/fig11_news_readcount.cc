// Reproduces Figure 11 (average read count per user of Tencent News in one
// week): for each day, the average number of recommended-news reads per
// active user under each arm. The paper's figure shows TencentRec above
// Original steadily (axis values redacted).

#include <cstdio>

#include "bench/bench_util.h"
#include "sim/apps.h"

int main() {
  const int days = tencentrec::bench::DaysFromEnv(7);
  const uint64_t seed = tencentrec::bench::SeedFromEnv();
  std::printf(
      "Figure 11: average read count per user, Tencent News (%d days)\n\n",
      days);
  auto result = tencentrec::sim::MakeNewsScenario(days, seed).Run();

  std::printf("%4s %16s %16s\n", "day", "Original", "TencentRec");
  int days_won = 0;
  for (const auto& day : result.days) {
    std::printf("%4d %16.3f %16.3f\n", day.day, day.original.ReadsPerUser(),
                day.tencentrec.ReadsPerUser());
    if (day.tencentrec.ReadsPerUser() > day.original.ReadsPerUser()) {
      ++days_won;
    }
  }
  std::printf(
      "\nTencentRec above Original on %d/%zu days (paper: every day)\n",
      days_won, result.days.size());
  return 0;
}
