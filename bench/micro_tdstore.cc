// Microbenchmarks: TDStore — raw engine ops per engine type, and routed
// client ops (hash routing + replication overhead).

#include <benchmark/benchmark.h>

#include <filesystem>
#include <unistd.h>

#include "tdstore/client.h"
#include "tdstore/cluster.h"

namespace {

using namespace tencentrec;
using namespace tencentrec::tdstore;

std::string TempFdbPath() {
  static int counter = 0;
  return (std::filesystem::temp_directory_path() /
          ("bench_fdb_" + std::to_string(::getpid()) + "_" +
           std::to_string(counter++) + ".fdb"))
      .string();
}

void BM_EnginePut(benchmark::State& state) {
  EngineOptions options;
  options.type = static_cast<EngineType>(state.range(0));
  std::string file_path;
  if (options.type == EngineType::kFdb) {
    file_path = TempFdbPath();
    options.fdb_path = file_path;
  } else if (options.type == EngineType::kRdb) {
    file_path = TempFdbPath();
    options.rdb_path = file_path;
  }
  auto engine = CreateEngine(options);
  int64_t i = 0;
  for (auto _ : state) {
    std::string key = "key" + std::to_string(i++ % 4096);
    benchmark::DoNotOptimize((*engine)->Put(key, "value-payload-64-bytes"));
  }
  state.SetItemsProcessed(state.iterations());
  engine->reset();
  if (!file_path.empty()) std::filesystem::remove(file_path);
}
BENCHMARK(BM_EnginePut)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Arg(3)
    ->ArgName("engine(0=mdb,1=ldb,2=fdb,3=rdb)");

void BM_EngineGet(benchmark::State& state) {
  EngineOptions options;
  options.type = static_cast<EngineType>(state.range(0));
  std::string file_path;
  if (options.type == EngineType::kFdb) {
    file_path = TempFdbPath();
    options.fdb_path = file_path;
  } else if (options.type == EngineType::kRdb) {
    file_path = TempFdbPath();
    options.rdb_path = file_path;
  }
  auto engine = CreateEngine(options);
  for (int i = 0; i < 4096; ++i) {
    (void)(*engine)->Put("key" + std::to_string(i), "value");
  }
  int64_t i = 0;
  for (auto _ : state) {
    std::string key = "key" + std::to_string(i++ % 4096);
    benchmark::DoNotOptimize((*engine)->Get(key));
  }
  state.SetItemsProcessed(state.iterations());
  engine->reset();
  if (!file_path.empty()) std::filesystem::remove(file_path);
}
BENCHMARK(BM_EngineGet)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Arg(3)
    ->ArgName("engine(0=mdb,1=ldb,2=fdb,3=rdb)");

void BM_RoutedClientOps(benchmark::State& state) {
  const bool replicated = state.range(0) != 0;
  Cluster::Options options;
  options.num_data_servers = replicated ? 3 : 1;
  options.num_instances = 8;
  auto cluster = Cluster::Create(options);
  Client client(cluster->get());
  int64_t i = 0;
  for (auto _ : state) {
    std::string key = "counter" + std::to_string(i++ % 1024);
    benchmark::DoNotOptimize(client.IncrDouble(key, 1.0));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RoutedClientOps)->Arg(0)->Arg(1)->ArgName("replicated");

}  // namespace
