// Microbenchmarks: the practical item-based CF — per-action update cost
// (with and without pruning / windowing) and recommendation latency.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "common/random.h"
#include "core/itemcf/item_cf.h"

namespace {

using namespace tencentrec;
using namespace tencentrec::core;

std::vector<UserAction> MakeStream(int n) {
  Rng rng(17);
  ZipfSampler zipf(500, 0.9);
  const ActionType kTypes[] = {ActionType::kBrowse, ActionType::kClick,
                               ActionType::kRead, ActionType::kPurchase};
  std::vector<UserAction> actions;
  actions.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    UserAction a;
    a.user = static_cast<UserId>(1 + rng.Uniform(300));
    a.item = static_cast<ItemId>(1 + zipf.Sample(rng));
    a.action = kTypes[rng.Uniform(4)];
    a.timestamp = Seconds(i);
    actions.push_back(a);
  }
  return actions;
}

void BM_ProcessAction(benchmark::State& state) {
  const bool pruning = state.range(0) != 0;
  const int window = static_cast<int>(state.range(1));
  const auto stream = MakeStream(100000);
  PracticalItemCf::Options options;
  options.linked_time = Hours(4);
  options.enable_pruning = pruning;
  options.window_sessions = window;
  options.session_length = Hours(6);
  PracticalItemCf cf(options);
  size_t i = 0;
  for (auto _ : state) {
    cf.ProcessAction(stream[i++ % stream.size()]);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ProcessAction)
    ->ArgsProduct({{0, 1}, {0, 8}})
    ->ArgNames({"pruning", "window"});

void BM_Recommend(benchmark::State& state) {
  const auto stream = MakeStream(100000);
  PracticalItemCf::Options options;
  options.linked_time = Hours(4);
  options.recent_k = static_cast<int>(state.range(0));
  PracticalItemCf cf(options);
  for (const auto& a : stream) cf.ProcessAction(a);
  UserId user = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cf.RecommendForUser(1 + (user++ % 300), 10));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Recommend)->Arg(5)->Arg(20)->ArgName("recent_k");

/// The tracked configuration (pruning on, 8-session window — the full
/// practical pipeline, i.e. the heaviest per-action path) timed by hand
/// over the whole 100k-action stream and written to
/// BENCH_micro_itemcf.json — the regression baseline scripts/run_bench.sh
/// collects and scripts/check_bench.py gates, independent of
/// google-benchmark's own rep policy so the JSON is stable run to run.
void EmitJsonBaseline() {
  const auto stream = MakeStream(100000);
  constexpr int kReps = 5;

  PracticalItemCf::Options options;
  options.linked_time = Hours(4);
  options.enable_pruning = true;
  options.window_sessions = 8;
  options.session_length = Hours(6);

  auto one_rep = [&stream](const PracticalItemCf::Options& opts) {
    const auto t0 = std::chrono::steady_clock::now();
    PracticalItemCf cf(opts);
    for (const auto& a : stream) cf.ProcessAction(a);
    benchmark::DoNotOptimize(cf.stats().pair_updates);
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - t0)
        .count();
  };

  std::vector<double> rep_ms;
  (void)one_rep(options);  // warmup
  for (int r = 0; r < kReps; ++r) rep_ms.push_back(one_rep(options));
  const auto summary =
      bench::Summarize(rep_ms, static_cast<double>(stream.size()));

  // Side-by-side legacy-kernel arm (use_flat_kernels = false): the same
  // stream through the pre-rewrite std::unordered_map state tables, so the
  // committed JSON records the flat-vs-legacy ratio on this host. Not
  // gated — ops_per_sec above is the regression metric.
  PracticalItemCf::Options legacy = options;
  legacy.use_flat_kernels = false;
  std::vector<double> legacy_ms;
  (void)one_rep(legacy);  // warmup
  for (int r = 0; r < kReps; ++r) legacy_ms.push_back(one_rep(legacy));
  const auto legacy_summary =
      bench::Summarize(legacy_ms, static_cast<double>(stream.size()));

  char extra[200];
  std::snprintf(extra, sizeof(extra),
                "\"actions\": %zu, \"reps\": %d, \"pruning\": true, "
                "\"window_sessions\": 8, \"legacy_ops_per_sec\": %.1f",
                stream.size(), kReps, legacy_summary.ops_per_sec);
  bench::WriteBenchJson("micro_itemcf", summary, extra);
}

}  // namespace

int main(int argc, char** argv) {
  EmitJsonBaseline();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
