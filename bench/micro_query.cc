// Microbenchmarks: the recommender-engine serving path (Fig. 9) — latency
// of answering recommendation queries from TDStore state. The paper's
// deployment answers 10 billion requests/day (~0.5M/s peak) from this
// path; these numbers show what one core of the reproduction sustains.

#include <benchmark/benchmark.h>

#include "common/random.h"
#include "engine/tencentrec.h"

namespace {

using namespace tencentrec;
using namespace tencentrec::core;

std::unique_ptr<engine::TencentRec> MakeWarmEngine() {
  engine::TencentRec::Options options;
  options.app.app = "bench";
  options.app.parallelism = 2;
  options.app.linked_time = Hours(4);
  options.app.algorithms.ctr = true;
  options.store.num_data_servers = 2;
  options.store.num_instances = 8;
  auto engine = engine::TencentRec::Create(options);
  if (!engine.ok()) return nullptr;

  Rng rng(5);
  ZipfSampler zipf(300, 0.9);
  const ActionType kTypes[] = {ActionType::kBrowse, ActionType::kClick,
                               ActionType::kRead, ActionType::kPurchase,
                               ActionType::kImpression};
  std::vector<UserAction> actions;
  for (int i = 0; i < 30000; ++i) {
    UserAction a;
    a.user = static_cast<UserId>(1 + rng.Uniform(200));
    a.item = static_cast<ItemId>(1 + zipf.Sample(rng));
    a.action = kTypes[rng.Uniform(5)];
    a.timestamp = Seconds(i);
    a.demographics.gender = rng.Bernoulli(0.5) ? Demographics::kMale
                                               : Demographics::kFemale;
    a.demographics.age_band = static_cast<uint8_t>(1 + a.user % 4);
    actions.push_back(a);
  }
  if (!(*engine)->ProcessBatch(actions).ok()) return nullptr;
  return std::move(engine).value();
}

engine::TencentRec* WarmEngine() {
  static engine::TencentRec* engine = MakeWarmEngine().release();
  return engine;
}

void BM_RecommendCf(benchmark::State& state) {
  auto* engine = WarmEngine();
  if (engine == nullptr) {
    state.SkipWithError("engine init failed");
    return;
  }
  UserId user = 1;
  const EventTime now = Seconds(31000);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        engine->query().RecommendCf(1 + (user++ % 200), 10, now));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RecommendCf);

void BM_HybridRecommend(benchmark::State& state) {
  auto* engine = WarmEngine();
  if (engine == nullptr) {
    state.SkipWithError("engine init failed");
    return;
  }
  Demographics d;
  d.gender = Demographics::kMale;
  d.age_band = 2;
  UserId user = 1;
  const EventTime now = Seconds(31000);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        engine->query().Recommend(1 + (user++ % 400), d, 10, now));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HybridRecommend);

void BM_PredictCtr(benchmark::State& state) {
  auto* engine = WarmEngine();
  if (engine == nullptr) {
    state.SkipWithError("engine init failed");
    return;
  }
  Demographics d;
  d.gender = Demographics::kFemale;
  d.age_band = 3;
  ItemId item = 1;
  const EventTime now = Seconds(31000);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        engine->query().PredictCtr(1 + (item++ % 300), d, now));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PredictCtr);

void BM_HotItems(benchmark::State& state) {
  auto* engine = WarmEngine();
  if (engine == nullptr) {
    state.SkipWithError("engine init failed");
    return;
  }
  const EventTime now = Seconds(31000);
  core::GroupId group = core::DemographicGroup([] {
    Demographics d;
    d.gender = Demographics::kMale;
    d.age_band = 2;
    return d;
  }());
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine->query().HotItems(group, 10, now));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HotItems);

}  // namespace
