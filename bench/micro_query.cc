// Microbenchmarks: the recommender-engine serving path (Fig. 9) — latency
// of answering recommendation queries from TDStore state. The paper's
// deployment answers 10 billion requests/day (~0.5M/s peak) from this
// path; these numbers show what one core of the reproduction sustains.
//
// main() first runs the batched-query-tier harness: 8 concurrent querents
// replay the same hot-user sequence through the unbatched point-read path
// and through the batched tier (deduped grouped MultiGets + shared
// QueryCache with single-flight coalescing) against the SAME store state,
// asserting the >= 5x store-invocation reduction per recommendation and
// emitting BENCH_micro_query.json. The google-benchmark suite follows.

#include <benchmark/benchmark.h>

#include <chrono>
#include <thread>

#include "bench_util.h"
#include "common/random.h"
#include "engine/tencentrec.h"
#include "topo/query.h"

namespace {

using namespace tencentrec;
using namespace tencentrec::core;

std::unique_ptr<engine::TencentRec> MakeWarmEngine() {
  engine::TencentRec::Options options;
  options.app.app = "bench";
  options.app.parallelism = 2;
  options.app.linked_time = Hours(4);
  options.app.algorithms.ctr = true;
  // Windowed counters (6 live sessions) so every candidate/pair count is a
  // multi-key window read — the regime the batched tier is built for.
  options.app.window_sessions = 6;
  options.store.num_data_servers = 2;
  options.store.num_instances = 8;
  auto engine = engine::TencentRec::Create(options);
  if (!engine.ok()) return nullptr;

  Rng rng(5);
  ZipfSampler zipf(300, 0.9);
  const ActionType kTypes[] = {ActionType::kBrowse, ActionType::kClick,
                               ActionType::kRead, ActionType::kPurchase,
                               ActionType::kImpression};
  std::vector<UserAction> actions;
  for (int i = 0; i < 30000; ++i) {
    UserAction a;
    a.user = static_cast<UserId>(1 + rng.Uniform(200));
    a.item = static_cast<ItemId>(1 + zipf.Sample(rng));
    a.action = kTypes[rng.Uniform(5)];
    a.timestamp = Seconds(i);
    a.demographics.gender = rng.Bernoulli(0.5) ? Demographics::kMale
                                               : Demographics::kFemale;
    a.demographics.age_band = static_cast<uint8_t>(1 + a.user % 4);
    actions.push_back(a);
  }
  if (!(*engine)->ProcessBatch(actions).ok()) return nullptr;
  return std::move(engine).value();
}

engine::TencentRec* WarmEngine() {
  static engine::TencentRec* engine = MakeWarmEngine().release();
  return engine;
}

int64_t TotalInvocations(tdstore::Cluster* cluster) {
  int64_t total = 0;
  for (int s = 0; s < cluster->num_data_servers(); ++s) {
    total += cluster->data_server(s)->invocations();
  }
  return total;
}

void ResetInvocations(tdstore::Cluster* cluster) {
  for (int s = 0; s < cluster->num_data_servers(); ++s) {
    cluster->data_server(s)->ResetCounters();
  }
}

struct PhaseResult {
  int64_t invocations = 0;
  double wall_ms = 0.0;
  std::vector<double> query_ms;  // per-recommendation latencies, all threads
};

/// `threads` concurrent querents replay the same hot-user sequence (the
/// burst pattern of §5.2); each builds its StoreQuery from `make_query`.
PhaseResult RunPhase(
    engine::TencentRec* engine, int threads, int recs_per_thread,
    const std::function<std::unique_ptr<topo::StoreQuery>()>& make_query) {
  const EventTime now = Seconds(31000);
  ResetInvocations(engine->store());
  std::vector<std::vector<double>> lat(threads);
  std::atomic<int> ready{0};
  std::atomic<int> failed{0};
  const auto wall_start = std::chrono::steady_clock::now();
  std::vector<std::thread> pool;
  for (int t = 0; t < threads; ++t) {
    pool.emplace_back([&, t] {
      auto query = make_query();
      lat[t].reserve(recs_per_thread);
      ready.fetch_add(1);
      while (ready.load() < threads) std::this_thread::yield();
      for (int k = 0; k < recs_per_thread; ++k) {
        const UserId user = static_cast<UserId>(1 + (k * 13) % 200);
        const auto q_start = std::chrono::steady_clock::now();
        auto recs = query->RecommendCf(user, 10, now);
        const auto q_end = std::chrono::steady_clock::now();
        if (!recs.ok()) {
          failed.fetch_add(1);
          continue;
        }
        lat[t].push_back(
            std::chrono::duration<double, std::milli>(q_end - q_start)
                .count());
      }
    });
  }
  for (auto& th : pool) th.join();
  PhaseResult r;
  r.wall_ms = std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - wall_start)
                  .count();
  r.invocations = TotalInvocations(engine->store());
  for (auto& v : lat) {
    r.query_ms.insert(r.query_ms.end(), v.begin(), v.end());
  }
  if (failed.load() > 0) {
    std::fprintf(stderr, "FAIL: %d recommendations errored\n", failed.load());
    std::exit(1);
  }
  return r;
}

int RunQueryTierHarness() {
  auto* engine = WarmEngine();
  if (engine == nullptr) {
    std::fprintf(stderr, "FAIL: engine init failed\n");
    return 1;
  }
  constexpr int kThreads = 8;
  constexpr int kRecsPerThread = 25;
  const int total_recs = kThreads * kRecsPerThread;

  // Unbatched: the original one-point-Get-per-key path, same store state.
  topo::AppOptions unbatched_options = engine->options().app;
  unbatched_options.enable_query_batching = false;
  topo::AppContext unbatched_ctx(engine->store(), unbatched_options);
  PhaseResult unbatched =
      RunPhase(engine, kThreads, kRecsPerThread, [&unbatched_ctx] {
        return std::make_unique<topo::StoreQuery>(&unbatched_ctx);
      });

  // Batched: per-thread StoreQuery sharing the engine's QueryCache — the
  // deployment shape (one cache per serving process).
  PhaseResult batched =
      RunPhase(engine, kThreads, kRecsPerThread, [engine] {
        return std::make_unique<topo::StoreQuery>(&engine->app(),
                                                  engine->query_cache());
      });

  const double unbatched_per_rec =
      static_cast<double>(unbatched.invocations) / total_recs;
  const double batched_per_rec =
      static_cast<double>(batched.invocations) / total_recs;
  const double reduction =
      batched_per_rec > 0 ? unbatched_per_rec / batched_per_rec : 0.0;

  std::printf("query tier: %d threads x %d recs\n", kThreads,
              kRecsPerThread);
  std::printf("  unbatched: %.1f store invocations/rec, p99 %.3f ms\n",
              unbatched_per_rec,
              bench::SamplePercentile(unbatched.query_ms, 99));
  std::printf("  batched:   %.1f store invocations/rec, p99 %.3f ms\n",
              batched_per_rec, bench::SamplePercentile(batched.query_ms, 99));
  std::printf("  reduction: %.1fx\n", reduction);

  bench::BenchSummary summary;
  summary.ops_per_sec =
      batched.wall_ms > 0 ? total_recs / (batched.wall_ms / 1e3) : 0.0;
  summary.p50_ms = bench::SamplePercentile(batched.query_ms, 50);
  summary.p95_ms = bench::SamplePercentile(batched.query_ms, 95);
  summary.p99_ms = bench::SamplePercentile(batched.query_ms, 99);
  char extra[340];
  std::snprintf(extra, sizeof(extra),
                "\"threads\": %d,\n  \"recs\": %d,\n"
                "  \"store_invocations_per_rec_unbatched\": %.2f,\n"
                "  \"store_invocations_per_rec_batched\": %.2f,\n"
                "  \"invocation_reduction\": %.2f,\n"
                "  \"unbatched_p99_ms\": %.3f",
                kThreads, total_recs, unbatched_per_rec, batched_per_rec,
                reduction,
                bench::SamplePercentile(unbatched.query_ms, 99));
  bench::WriteBenchJson("micro_query", summary, extra);

  if (reduction < 5.0) {
    std::fprintf(stderr,
                 "FAIL: batched query tier reduced store invocations only "
                 "%.1fx (< 5x)\n",
                 reduction);
    return 1;
  }
  return 0;
}

void BM_RecommendCf(benchmark::State& state) {
  auto* engine = WarmEngine();
  if (engine == nullptr) {
    state.SkipWithError("engine init failed");
    return;
  }
  UserId user = 1;
  const EventTime now = Seconds(31000);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        engine->query().RecommendCf(1 + (user++ % 200), 10, now));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RecommendCf);

void BM_HybridRecommend(benchmark::State& state) {
  auto* engine = WarmEngine();
  if (engine == nullptr) {
    state.SkipWithError("engine init failed");
    return;
  }
  Demographics d;
  d.gender = Demographics::kMale;
  d.age_band = 2;
  UserId user = 1;
  const EventTime now = Seconds(31000);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        engine->query().Recommend(1 + (user++ % 400), d, 10, now));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HybridRecommend);

void BM_PredictCtr(benchmark::State& state) {
  auto* engine = WarmEngine();
  if (engine == nullptr) {
    state.SkipWithError("engine init failed");
    return;
  }
  Demographics d;
  d.gender = Demographics::kFemale;
  d.age_band = 3;
  ItemId item = 1;
  const EventTime now = Seconds(31000);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        engine->query().PredictCtr(1 + (item++ % 300), d, now));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PredictCtr);

void BM_HotItems(benchmark::State& state) {
  auto* engine = WarmEngine();
  if (engine == nullptr) {
    state.SkipWithError("engine init failed");
    return;
  }
  const EventTime now = Seconds(31000);
  core::GroupId group = core::DemographicGroup([] {
    Demographics d;
    d.gender = Demographics::kMale;
    d.age_band = 2;
    return d;
  }());
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine->query().HotItems(group, 10, now));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HotItems);

}  // namespace

int main(int argc, char** argv) {
  const int harness = RunQueryTierHarness();
  if (harness != 0) return harness;
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
