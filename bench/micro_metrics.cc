// Overhead harness for the observability layers. Three parts:
//
//  1. Raw per-op cost of Counter::Add and LatencyHistogram::Record, both
//     enabled and kill-switched, in ns/op (ISSUE 2 acceptance: <2% on the
//     instrumented 4-shard pipeline).
//  2. The micro_parallel 4-shard workload run with metrics off (kill switch
//     down, so every Record is a single relaxed load + branch) vs on, and
//     the relative wall-clock overhead.
//  3. The same workload with per-tuple tracing off vs sampling 1 in 64
//     (acceptance: <3% throughput overhead).
//
// Plain harness (prints a small table); run it directly:
//   ./bench/micro_metrics

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/metrics.h"
#include "common/random.h"
#include "common/trace.h"
#include "core/itemcf/parallel_cf.h"

namespace {

using namespace tencentrec;
using namespace tencentrec::core;

uint64_t WallNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// --- part 1: per-op instrument cost ----------------------------------------

double NsPerOp(uint64_t total_ns, uint64_t ops) {
  return static_cast<double>(total_ns) / static_cast<double>(ops);
}

void BenchInstrumentOps() {
  constexpr uint64_t kOps = 10'000'000;
  Counter counter;
  LatencyHistogram hist;

  SetMetricsEnabled(true);
  uint64_t t0 = WallNanos();
  for (uint64_t i = 0; i < kOps; ++i) counter.Add();
  const uint64_t counter_on = WallNanos() - t0;

  t0 = WallNanos();
  for (uint64_t i = 0; i < kOps; ++i) hist.Record(i & 0xFFFF);
  const uint64_t record_on = WallNanos() - t0;

  SetMetricsEnabled(false);
  t0 = WallNanos();
  for (uint64_t i = 0; i < kOps; ++i) counter.Add();
  const uint64_t counter_off = WallNanos() - t0;

  t0 = WallNanos();
  for (uint64_t i = 0; i < kOps; ++i) hist.Record(i & 0xFFFF);
  const uint64_t record_off = WallNanos() - t0;
  SetMetricsEnabled(true);

  std::printf("== instrument cost (%llu ops each) ==\n",
              static_cast<unsigned long long>(kOps));
  std::printf("  Counter::Add            enabled  %6.2f ns/op\n",
              NsPerOp(counter_on, kOps));
  std::printf("  Counter::Add            disabled %6.2f ns/op\n",
              NsPerOp(counter_off, kOps));
  std::printf("  LatencyHistogram::Record enabled  %6.2f ns/op\n",
              NsPerOp(record_on, kOps));
  std::printf("  LatencyHistogram::Record disabled %6.2f ns/op\n",
              NsPerOp(record_off, kOps));
}

// --- part 2: pipeline overhead ----------------------------------------------

std::vector<UserAction> MakeStream(int n) {
  // Same stream as micro_parallel so numbers are comparable.
  Rng rng(17);
  ZipfSampler zipf(500, 0.9);
  const ActionType kTypes[] = {ActionType::kBrowse, ActionType::kClick,
                               ActionType::kRead, ActionType::kPurchase};
  std::vector<UserAction> actions;
  actions.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    UserAction a;
    a.user = static_cast<UserId>(1 + rng.Uniform(300));
    a.item = static_cast<ItemId>(1 + zipf.Sample(rng));
    a.action = kTypes[rng.Uniform(4)];
    a.timestamp = Seconds(i);
    actions.push_back(a);
  }
  return actions;
}

uint64_t RunPipelineOnce(const std::vector<UserAction>& stream,
                         bool with_metrics) {
  SetMetricsEnabled(with_metrics);
  ParallelItemCf::Options options;
  options.cf.linked_time = Hours(4);
  options.cf.window_sessions = 8;
  options.cf.session_length = Hours(6);
  options.cf.enable_pruning = false;
  options.user_shards = 4;
  options.pair_shards = 4;
  options.metrics_scope = with_metrics ? "bench.parallel_cf" : "";
  const uint64_t t0 = WallNanos();
  ParallelItemCf cf(options);
  cf.ProcessActions(stream);
  cf.Drain();
  return WallNanos() - t0;
}

void BenchPipelineOverhead() {
  const auto stream = MakeStream(50000);
  constexpr int kReps = 7;

  // Interleave on/off reps so thermal and cache drift hits both sides, and
  // take the per-side minimum (the least-noise estimate of true cost).
  uint64_t best_off = UINT64_MAX;
  uint64_t best_on = UINT64_MAX;
  (void)RunPipelineOnce(stream, false);  // warmup
  for (int r = 0; r < kReps; ++r) {
    best_off = std::min(best_off, RunPipelineOnce(stream, false));
    best_on = std::min(best_on, RunPipelineOnce(stream, true));
  }
  SetMetricsEnabled(true);

  const double off_ms = static_cast<double>(best_off) / 1e6;
  const double on_ms = static_cast<double>(best_on) / 1e6;
  const double overhead_pct =
      (on_ms - off_ms) / off_ms * 100.0;
  std::printf("\n== 4-shard pipeline, %zu actions, best of %d ==\n",
              stream.size(), kReps);
  std::printf("  cores: %u\n", std::thread::hardware_concurrency());
  std::printf("  metrics off %8.2f ms  (%.0f actions/s)\n", off_ms,
              static_cast<double>(stream.size()) / (off_ms / 1e3));
  std::printf("  metrics on  %8.2f ms  (%.0f actions/s)\n", on_ms,
              static_cast<double>(stream.size()) / (on_ms / 1e3));
  std::printf("  overhead    %+7.2f %%  (target < 2%%)\n", overhead_pct);

  // Sanity: the instrumented run actually recorded into the registry.
  auto* service = MetricRegistry::Default().GetHistogram(
      "bench.parallel_cf.user-history.service_us");
  std::printf("  samples     user-history service_us count=%llu\n",
              static_cast<unsigned long long>(service->Snap().count));
}

// --- part 3: tracing overhead ------------------------------------------------

uint64_t RunTracedPipelineOnce(const std::vector<UserAction>& stream) {
  ParallelItemCf::Options options;
  options.cf.linked_time = Hours(4);
  options.cf.window_sessions = 8;
  options.cf.session_length = Hours(6);
  options.cf.enable_pruning = false;
  options.user_shards = 4;
  options.pair_shards = 4;
  const uint64_t t0 = WallNanos();
  ParallelItemCf cf(options);
  cf.ProcessActions(stream);
  cf.Drain();
  return WallNanos() - t0;
}

void BenchTracingOverhead() {
  const auto plain = MakeStream(50000);
  SetMetricsEnabled(true);

  // Traced variant: the same stream with the edge sampling decision already
  // applied, as the spout/publish path would — 1 in 64 actions carries a
  // nonzero trace id, the rest pay the id==0 branch in every ScopedSpan.
  SetTraceSampleEvery(64);
  auto traced = plain;
  for (auto& a : traced) a.trace_id = MaybeStartTrace();

  constexpr int kReps = 7;
  uint64_t best_off = UINT64_MAX;
  uint64_t best_on = UINT64_MAX;
  std::vector<double> on_ms_reps;
  SetTraceSampleEvery(0);
  (void)RunTracedPipelineOnce(plain);  // warmup
  for (int r = 0; r < kReps; ++r) {
    SetTraceSampleEvery(0);
    best_off = std::min(best_off, RunTracedPipelineOnce(plain));
    SetTraceSampleEvery(64);
    const uint64_t on = RunTracedPipelineOnce(traced);
    best_on = std::min(best_on, on);
    on_ms_reps.push_back(static_cast<double>(on) / 1e6);
  }
  SetTraceSampleEvery(0);

  const double off_ms = static_cast<double>(best_off) / 1e6;
  const double on_ms = static_cast<double>(best_on) / 1e6;
  const double overhead_pct = (on_ms - off_ms) / off_ms * 100.0;
  std::printf("\n== tracing overhead, 4-shard pipeline, %zu actions, "
              "best of %d ==\n",
              plain.size(), kReps);
  std::printf("  tracing off          %8.2f ms  (%.0f actions/s)\n", off_ms,
              static_cast<double>(plain.size()) / (off_ms / 1e3));
  std::printf("  tracing 1/64 sampled %8.2f ms  (%.0f actions/s)\n", on_ms,
              static_cast<double>(plain.size()) / (on_ms / 1e3));
  std::printf("  overhead             %+7.2f %%  (target < 3%%)\n",
              overhead_pct);
  std::printf("  spans recorded       %llu\n",
              static_cast<unsigned long long>(
                  Tracer::Default().total_recorded()));

  const auto summary =
      bench::Summarize(on_ms_reps, static_cast<double>(plain.size()));
  char extra[160];
  std::snprintf(extra, sizeof(extra),
                "\"trace_overhead_pct\": %.2f, \"sample_every\": 64, "
                "\"baseline_ms\": %.3f, \"cores\": %u",
                overhead_pct, off_ms, std::thread::hardware_concurrency());
  bench::WriteBenchJson("micro_metrics", summary, extra);
}

}  // namespace

int main() {
  BenchInstrumentOps();
  BenchPipelineOverhead();
  BenchTracingOverhead();
  return 0;
}
