// Ablation: the combiner (§5.3, hot item problem).
//
// Question: how many TDStore writes does partial merging of same-key tuples
// save, as item popularity skew (Zipf s) grows? The paper's claim: the
// combiner's efficacy *increases* under hot-item skew because more tuples
// in an interval share a key.

#include <cstdio>

#include "common/random.h"
#include "engine/tencentrec.h"

namespace {

using namespace tencentrec;
using namespace tencentrec::core;

std::vector<UserAction> SkewedStream(uint64_t seed, int n, int users,
                                     int items, double zipf_s) {
  Rng rng(seed);
  ZipfSampler zipf(static_cast<size_t>(items), zipf_s);
  std::vector<UserAction> actions;
  actions.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    UserAction a;
    a.user = static_cast<UserId>(1 + rng.Uniform(users));
    a.item = static_cast<ItemId>(1 + zipf.Sample(rng));
    a.action = ActionType::kClick;
    a.timestamp = Seconds(i);
    a.demographics.gender = (a.user % 2) == 0 ? Demographics::kMale
                                              : Demographics::kFemale;
    a.demographics.age_band = static_cast<uint8_t>(1 + a.user % 5);
    actions.push_back(a);
  }
  return actions;
}

int64_t RunAndCountWrites(const std::vector<UserAction>& stream,
                          bool combiner) {
  engine::TencentRec::Options options;
  options.app.app = combiner ? "comb" : "nocomb";
  options.app.parallelism = 2;
  options.app.linked_time = Minutes(30);
  options.app.enable_combiner = combiner;
  options.app.combiner_interval = 128;
  // Isolate the statistics path the combiner protects: the demographic
  // group counters (the hot-item/hot-group write amplification of §5.3–5.4).
  // The CF pair path goes through read-modify-write similarity state that
  // the combiner does not cover.
  options.app.algorithms.item_cf = false;
  options.app.algorithms.demographic = true;
  options.store.num_data_servers = 2;
  options.store.num_instances = 8;
  auto engine = engine::TencentRec::Create(options);
  if (!engine.ok()) {
    std::fprintf(stderr, "engine: %s\n", engine.status().ToString().c_str());
    return -1;
  }
  for (int s = 0; s < (*engine)->store()->num_data_servers(); ++s) {
    (*engine)->store()->data_server(s)->ResetCounters();
  }
  Status run = (*engine)->ProcessBatch(stream);
  if (!run.ok()) {
    std::fprintf(stderr, "run: %s\n", run.ToString().c_str());
    return -1;
  }
  int64_t writes = 0;
  for (int s = 0; s < (*engine)->store()->num_data_servers(); ++s) {
    writes += (*engine)->store()->data_server(s)->writes();
  }
  return writes;
}

}  // namespace

int main() {
  constexpr int kActions = 40000;
  constexpr int kUsers = 500;
  constexpr int kItems = 800;
  std::printf(
      "Combiner ablation: TDStore writes with/without the combiner,\n"
      "%d actions, sweeping item-popularity skew (hot item problem)\n\n",
      kActions);
  std::printf("%8s %18s %18s %10s\n", "zipf s", "writes (off)",
              "writes (on)", "saved%");
  for (double s : {0.0, 0.6, 0.9, 1.2, 1.5}) {
    const auto stream = SkewedStream(11, kActions, kUsers, kItems, s);
    const int64_t off = RunAndCountWrites(stream, false);
    const int64_t on = RunAndCountWrites(stream, true);
    if (off < 0 || on < 0) return 1;
    std::printf("%8.1f %18lld %18lld %9.1f%%\n", s,
                static_cast<long long>(off), static_cast<long long>(on),
                100.0 * static_cast<double>(off - on) /
                    static_cast<double>(off));
  }
  std::printf(
      "\nexpected shape: savings grow with skew — the combiner merges more "
      "same-key\ntuples per flush interval exactly when traffic "
      "concentrates on hot items.\n");
  return 0;
}
