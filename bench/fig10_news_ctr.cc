// Reproduces Figure 10 (CTR of Tencent News in one week): daily CTR of the
// original (hourly-refreshed CB) vs TencentRec (streaming CB + DB), with
// the per-day improvement annotated the way the paper annotates the figure
// (paper improvements: 7.49, 5.85, 6.05, 5.02, 3.65, 6.61, 8.41 %).
//
// Expected shape: TencentRec above Original on every day.

#include <cstdio>

#include "bench/bench_util.h"
#include "sim/apps.h"

int main() {
  const int days = tencentrec::bench::DaysFromEnv(7);
  const uint64_t seed = tencentrec::bench::SeedFromEnv();
  std::printf("Figure 10: CTR of Tencent News in one week (%d days)\n\n",
              days);
  auto result = tencentrec::sim::MakeNewsScenario(days, seed).Run();

  std::printf("%4s %14s %14s %14s\n", "day", "Original CTR", "TencentRec CTR",
              "improvement");
  int days_won = 0;
  for (const auto& day : result.days) {
    std::printf("%4d %13.2f%% %13.2f%% %13.2f%%\n", day.day,
                day.original.Ctr() * 100.0, day.tencentrec.Ctr() * 100.0,
                day.ImprovementPct());
    if (day.tencentrec.Ctr() > day.original.Ctr()) ++days_won;
  }
  std::printf(
      "\nTencentRec above Original on %d/%zu days "
      "(paper: every day; improvements 3.65%%..8.41%%)\n",
      days_won, result.days.size());
  return 0;
}
