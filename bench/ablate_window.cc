// Ablation: the sliding window (§4.3, Eq. 10).
//
// Question: does forgetting old sessions actually help when interests
// drift? Runs the videos A/B scenario with the streaming arm's window set
// to cumulative (no forgetting), the default 2 days, and a very short
// window; reports the streaming arm's average CTR.

#include <cstdio>

#include "bench/bench_util.h"
#include "sim/apps.h"

namespace {

using namespace tencentrec;
using namespace tencentrec::sim;

double RunWithWindow(int days, uint64_t seed, int window_sessions) {
  Scenario s = MakeVideosScenario(days, seed);
  // Rebuild the streaming arm with the requested window.
  core::HybridRecommender::Options hybrid;
  hybrid.cf.weights = core::ActionWeights();
  hybrid.cf.linked_time = Hours(2);
  hybrid.cf.top_k = 20;
  hybrid.cf.recent_k = 6;
  hybrid.cf.session_length = Hours(6);
  hybrid.cf.window_sessions = window_sessions;
  hybrid.cf.support_shrinkage = 3.0;
  hybrid.cf.history_ttl = Days(3);
  hybrid.db.weights = core::ActionWeights();
  hybrid.db.session_length = Hours(6);
  hybrid.db.window_sessions = window_sessions == 0 ? 0 : window_sessions;
  s.tencentrec = std::make_unique<StreamingCfArm>(hybrid);

  auto result = s.Run();
  double ctr_sum = 0.0;
  for (const auto& day : result.days) ctr_sum += day.tencentrec.Ctr();
  return result.days.empty() ? 0.0
                             : ctr_sum / static_cast<double>(result.days.size());
}

}  // namespace

int main() {
  const int days = tencentrec::bench::DaysFromEnv(5);
  const uint64_t seed = tencentrec::bench::SeedFromEnv();
  std::printf(
      "Sliding-window ablation (videos scenario, %d days, drifting "
      "interests):\n\n",
      days);
  std::printf("%22s %16s\n", "window", "streaming CTR");
  struct Config {
    const char* label;
    int sessions;
  } configs[] = {
      {"cumulative (none)", 0},
      {"8 sessions (2 days)", 8},
      {"2 sessions (12h)", 2},
  };
  for (const auto& config : configs) {
    std::printf("%22s %15.2f%%\n", config.label,
                RunWithWindow(days, seed, config.sessions) * 100.0);
  }
  std::printf(
      "\nexpected shape: an over-short window starves the model of "
      "co-ratings and\nclearly loses. Cumulative vs. a moderate window is "
      "nearly a tie here because\nthis world's genre structure is static — "
      "item-to-item co-occurrence doesn't\nshift, so old counts stay "
      "informative. Forgetting pays when the co-occurrence\nstructure "
      "itself is non-stationary (item churn: see the news and ads\n"
      "scenarios, where windowed state is also what bounds memory).\n");
  return 0;
}
