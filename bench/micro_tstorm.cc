// Microbenchmarks: the tstorm stream engine — tuple throughput through a
// spout -> bolt topology as bolt parallelism and grouping vary.

#include <benchmark/benchmark.h>

#include <atomic>

#include "tstorm/cluster.h"
#include "tstorm/topology.h"

namespace {

using namespace tencentrec::tstorm;

class CountSpout : public ISpout {
 public:
  explicit CountSpout(int64_t n) : n_(n) {}
  std::vector<StreamDecl> DeclareOutputs() const override {
    return {{"ints", {"key", "value"}}};
  }
  bool NextBatch(OutputCollector& out) override {
    for (int i = 0; i < 256 && next_ < n_; ++i, ++next_) {
      out.Emit(Tuple::Of({next_ % 64, next_}));
    }
    return next_ < n_;
  }

 private:
  int64_t n_;
  int64_t next_ = 0;
};

class SinkBolt : public IBolt {
 public:
  explicit SinkBolt(std::atomic<int64_t>* sink) : sink_(sink) {}
  void Execute(const Tuple& input, const TupleSource& source,
               OutputCollector& out) override {
    (void)source;
    (void)out;
    sink_->fetch_add(input.GetInt(1), std::memory_order_relaxed);
  }

 private:
  std::atomic<int64_t>* sink_;
};

void BM_TopologyThroughput(benchmark::State& state) {
  const int parallelism = static_cast<int>(state.range(0));
  const bool fields = state.range(1) != 0;
  const int64_t tuples = 20000;
  for (auto _ : state) {
    std::atomic<int64_t> sink{0};
    TopologyBuilder builder("bench");
    builder.SetSpout("spout",
                     [tuples] { return std::make_unique<CountSpout>(tuples); });
    auto cfg = builder.SetBolt(
        "sink", [&sink] { return std::make_unique<SinkBolt>(&sink); },
        parallelism);
    if (fields) {
      cfg.FieldsGrouping("spout", {"key"});
    } else {
      cfg.ShuffleGrouping("spout");
    }
    auto spec = std::move(builder).Build();
    auto cluster = LocalCluster::Create(std::move(spec).value());
    benchmark::DoNotOptimize((*cluster)->Run());
    benchmark::DoNotOptimize(sink.load());
  }
  state.SetItemsProcessed(state.iterations() * tuples);
}
// UseRealTime: the work happens on the topology's own threads, so CPU time
// of the driving thread would wildly overstate throughput.
BENCHMARK(BM_TopologyThroughput)
    ->ArgsProduct({{1, 2, 4}, {0, 1}})
    ->ArgNames({"bolts", "fields"})
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void BM_TupleHashRouting(benchmark::State& state) {
  // Cost of hashing one tuple's key fields (the fields-grouping hot path).
  Tuple t = Tuple::Of({int64_t{123456}, std::string("user-42"), 3.14});
  uint64_t acc = 0;
  for (auto _ : state) {
    for (size_t i = 0; i < t.size(); ++i) acc ^= HashValue(t.at(i));
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(BM_TupleHashRouting);

}  // namespace
