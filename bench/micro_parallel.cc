// Microbenchmark: the sharded multi-threaded CF executor vs the serial
// reference on the same action stream. Each iteration streams the whole
// batch through and drains, so items/s is end-to-end pipeline throughput.
//
// Shard scaling only materializes with real cores: on an N-core machine
// expect ~min(shards, N-1)x once per-event work dominates queue hops (the
// executor batches events to keep the queue overhead small). The harness
// prints hardware_concurrency so runs are comparable across machines.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <thread>

#include "bench/bench_util.h"
#include "common/metrics.h"
#include "common/random.h"
#include "core/itemcf/item_cf.h"
#include "core/itemcf/parallel_cf.h"
#include "obs/freshness.h"
#include "obs/timeseries.h"

namespace {

using namespace tencentrec;
using namespace tencentrec::core;

std::vector<UserAction> MakeStream(int n) {
  Rng rng(17);
  ZipfSampler zipf(500, 0.9);
  const ActionType kTypes[] = {ActionType::kBrowse, ActionType::kClick,
                               ActionType::kRead, ActionType::kPurchase};
  std::vector<UserAction> actions;
  actions.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    UserAction a;
    a.user = static_cast<UserId>(1 + rng.Uniform(300));
    a.item = static_cast<ItemId>(1 + zipf.Sample(rng));
    a.action = kTypes[rng.Uniform(4)];
    a.timestamp = Seconds(i);
    actions.push_back(a);
  }
  return actions;
}

PracticalItemCf::Options AlgoOptions() {
  PracticalItemCf::Options options;
  options.linked_time = Hours(4);
  options.window_sessions = 8;
  options.session_length = Hours(6);
  options.enable_pruning = false;
  return options;
}

void BM_ReferenceStream(benchmark::State& state) {
  const auto stream = MakeStream(50000);
  for (auto _ : state) {
    PracticalItemCf cf(AlgoOptions());
    for (const auto& a : stream) cf.ProcessAction(a);
    benchmark::DoNotOptimize(cf.stats().pair_updates);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(stream.size()));
  state.counters["cores"] =
      static_cast<double>(std::thread::hardware_concurrency());
}
BENCHMARK(BM_ReferenceStream)->Unit(benchmark::kMillisecond);

void BM_ParallelStream(benchmark::State& state) {
  const int shards = static_cast<int>(state.range(0));
  const auto stream = MakeStream(50000);
  for (auto _ : state) {
    ParallelItemCf::Options options;
    options.cf = AlgoOptions();
    options.user_shards = shards;
    options.pair_shards = shards;
    ParallelItemCf cf(options);
    cf.ProcessActions(stream);
    cf.Drain();
    benchmark::DoNotOptimize(cf.stats().pair_updates);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(stream.size()));
  state.counters["cores"] =
      static_cast<double>(std::thread::hardware_concurrency());
}
BENCHMARK(BM_ParallelStream)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->ArgName("shards")
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

/// The tracked configuration (4 shards, 50k actions) timed by hand and
/// written to BENCH_micro_parallel.json — the regression baseline
/// scripts/run_bench.sh collects, independent of google-benchmark's own
/// rep policy so the JSON is stable run to run.
void EmitJsonBaseline() {
  const auto stream = MakeStream(50000);
  constexpr int kReps = 9;
  auto one_rep = [&stream] {
    const auto t0 = std::chrono::steady_clock::now();
    ParallelItemCf::Options options;
    options.cf = AlgoOptions();
    options.user_shards = 4;
    options.pair_shards = 4;
    ParallelItemCf cf(options);
    cf.ProcessActions(stream);
    cf.Drain();
    benchmark::DoNotOptimize(cf.stats().pair_updates);
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - t0)
        .count();
  };

  std::vector<double> rep_ms;
  (void)one_rep();  // warmup
  for (int r = 0; r < kReps; ++r) rep_ms.push_back(one_rep());
  const auto summary =
      bench::Summarize(rep_ms, static_cast<double>(stream.size()));

  // Sampler+exemplar overhead: the same rep with the observability plane
  // live — background sampler at 100 ms (10x the production default rate)
  // with freshness gauges recomputed each sample. Paired with a fresh plain
  // rep and reduced to the median per-pair ratio so machine noise hits both
  // sides of each pair; the budget is 3% (DESIGN.md §12).
  double obs_overhead_pct = 0.0;
  double obs_ops_per_sec = 0.0;
  {
    obs::TimeSeriesStore::Options ts_options;
    ts_options.sample_period_ms = 100;
    ts_options.capacity = 4096;
    obs::TimeSeriesStore ts(&MetricRegistry::Default(), ts_options);
    ts.SetPreSampleHook([](uint64_t now) {
      obs::FreshnessTracker::Default().PublishGauges(
          &MetricRegistry::Default(), now);
    });
    std::vector<double> ratios;
    std::vector<double> obs_rep_ms;
    for (int r = 0; r < kReps; ++r) {
      const double plain = one_rep();
      ts.Start();
      const double obs = one_rep();
      ts.Stop();
      obs_rep_ms.push_back(obs);
      if (plain > 0) ratios.push_back(obs / plain);
    }
    obs_ops_per_sec =
        bench::Summarize(obs_rep_ms, static_cast<double>(stream.size()))
            .ops_per_sec;
    obs_overhead_pct = (bench::SamplePercentile(ratios, 50) - 1.0) * 100.0;
  }

  char extra[256];
  std::snprintf(extra, sizeof(extra),
                "\"shards\": 4, \"actions\": %zu, \"reps\": %d, "
                "\"cores\": %u,\n  "
                "\"obs_ops_per_sec\": %.1f, \"obs_overhead_pct\": %.2f",
                stream.size(), kReps, std::thread::hardware_concurrency(),
                obs_ops_per_sec, obs_overhead_pct);
  bench::WriteBenchJson("micro_parallel", summary, extra);
}

}  // namespace

int main(int argc, char** argv) {
  EmitJsonBaseline();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
