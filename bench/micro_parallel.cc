// Microbenchmark: the sharded multi-threaded CF executor vs the serial
// reference on the same action stream. Each iteration streams the whole
// batch through and drains, so items/s is end-to-end pipeline throughput.
//
// Shard scaling only materializes with real cores: on an N-core machine
// expect ~min(shards, N-1)x once per-event work dominates queue hops (the
// executor batches events to keep the queue overhead small). The harness
// prints hardware_concurrency so runs are comparable across machines.

#include <benchmark/benchmark.h>

#include <csignal>
#include <ctime>

#include <chrono>
#include <cstdio>
#include <functional>
#include <thread>

#include "bench/bench_util.h"
#include "common/metrics.h"
#include "common/random.h"
#include "common/stage.h"
#include "core/itemcf/item_cf.h"
#include "core/itemcf/parallel_cf.h"
#include "obs/freshness.h"
#include "obs/profiler.h"
#include "obs/timeseries.h"

namespace {

using namespace tencentrec;
using namespace tencentrec::core;

std::vector<UserAction> MakeStream(int n) {
  Rng rng(17);
  ZipfSampler zipf(500, 0.9);
  const ActionType kTypes[] = {ActionType::kBrowse, ActionType::kClick,
                               ActionType::kRead, ActionType::kPurchase};
  std::vector<UserAction> actions;
  actions.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    UserAction a;
    a.user = static_cast<UserId>(1 + rng.Uniform(300));
    a.item = static_cast<ItemId>(1 + zipf.Sample(rng));
    a.action = kTypes[rng.Uniform(4)];
    a.timestamp = Seconds(i);
    actions.push_back(a);
  }
  return actions;
}

PracticalItemCf::Options AlgoOptions() {
  PracticalItemCf::Options options;
  options.linked_time = Hours(4);
  options.window_sessions = 8;
  options.session_length = Hours(6);
  options.enable_pruning = false;
  return options;
}

void BM_ReferenceStream(benchmark::State& state) {
  const auto stream = MakeStream(50000);
  for (auto _ : state) {
    PracticalItemCf cf(AlgoOptions());
    for (const auto& a : stream) cf.ProcessAction(a);
    benchmark::DoNotOptimize(cf.stats().pair_updates);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(stream.size()));
  state.counters["cores"] =
      static_cast<double>(std::thread::hardware_concurrency());
}
BENCHMARK(BM_ReferenceStream)->Unit(benchmark::kMillisecond);

void BM_ParallelStream(benchmark::State& state) {
  const int shards = static_cast<int>(state.range(0));
  const auto stream = MakeStream(50000);
  for (auto _ : state) {
    ParallelItemCf::Options options;
    options.cf = AlgoOptions();
    options.user_shards = shards;
    options.pair_shards = shards;
    ParallelItemCf cf(options);
    cf.ProcessActions(stream);
    cf.Drain();
    benchmark::DoNotOptimize(cf.stats().pair_updates);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(stream.size()));
  state.counters["cores"] =
      static_cast<double>(std::thread::hardware_concurrency());
}
BENCHMARK(BM_ParallelStream)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->ArgName("shards")
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

/// The tracked configuration (4 shards, 50k actions) timed by hand and
/// written to BENCH_micro_parallel.json — the regression baseline
/// scripts/run_bench.sh collects, independent of google-benchmark's own
/// rep policy so the JSON is stable run to run.
void EmitJsonBaseline() {
  const auto stream = MakeStream(50000);
  constexpr int kReps = 9;
  auto one_rep = [&stream] {
    const auto t0 = std::chrono::steady_clock::now();
    ParallelItemCf::Options options;
    options.cf = AlgoOptions();
    options.user_shards = 4;
    options.pair_shards = 4;
    ParallelItemCf cf(options);
    cf.ProcessActions(stream);
    cf.Drain();
    benchmark::DoNotOptimize(cf.stats().pair_updates);
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - t0)
        .count();
  };

  std::vector<double> rep_ms;
  (void)one_rep();  // warmup
  for (int r = 0; r < kReps; ++r) rep_ms.push_back(one_rep());
  const auto summary =
      bench::Summarize(rep_ms, static_cast<double>(stream.size()));

  // Side-by-side legacy-kernel arm (use_flat_kernels = false): the same
  // stream through the same 4+4 sharded executor but with the pre-rewrite
  // std::unordered_map state tables, so the committed JSON records the
  // flat-vs-legacy ratio on this host. Not gated — ops_per_sec above is
  // the regression metric.
  auto one_rep_legacy = [&stream] {
    const auto t0 = std::chrono::steady_clock::now();
    ParallelItemCf::Options options;
    options.cf = AlgoOptions();
    options.cf.use_flat_kernels = false;
    options.user_shards = 4;
    options.pair_shards = 4;
    ParallelItemCf cf(options);
    cf.ProcessActions(stream);
    cf.Drain();
    benchmark::DoNotOptimize(cf.stats().pair_updates);
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - t0)
        .count();
  };
  std::vector<double> legacy_ms;
  (void)one_rep_legacy();  // warmup
  for (int r = 0; r < kReps; ++r) legacy_ms.push_back(one_rep_legacy());
  const auto legacy_summary =
      bench::Summarize(legacy_ms, static_cast<double>(stream.size()));

  // The rep for the overhead pairings below: the SERIAL reference on the
  // same stream, on the bench main thread registered as a stage. Two
  // reasons it is not the tracked 4+4 config:
  //   * a multi-threaded rep's process CPU varies +-8% run to run on a
  //     contended box (the futex sleep/wake count under backpressure is
  //     scheduling-dependent) — noise far past the budget being measured,
  //     while the serial rep's CPU is deterministic to well under 1%;
  //   * registering this thread puts the profiler's CPU-time timer on the
  //     thread doing the work, so the pairing measures real signal
  //     delivery + handler cost, not an idle armed timer.
  // The per-sample/per-signal instrumentation cost is the same either way.
  auto one_rep_serial = [&stream] {
    const auto t0 = std::chrono::steady_clock::now();
    PracticalItemCf cf(AlgoOptions());
    for (const auto& a : stream) cf.ProcessAction(a);
    benchmark::DoNotOptimize(cf.stats().pair_updates);
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - t0)
        .count();
  };

  // Overhead accounting for the always-on planes (the *_overhead_pct
  // fields scripts/check_bench.py gates against the 3% budget of
  // DESIGN.md §12/§13). Paired plain-vs-instrumented reps were tried and
  // rejected: on a shared single-core box, co-tenant interference inflates
  // the process CPU time of IDENTICAL single-threaded reps by up to 30%
  // in bursts that outlast any affordable pairing schedule, so a paired
  // difference cannot resolve a sub-percent cost — it flaps double digits
  // in both directions. Instead each plane's cost is timed at its source,
  // min-over-blocks (for a fixed instruction sequence interference only
  // ever ADDS CPU time, so the minimum converges on the uninterfered
  // cost), and expressed as the fraction of one core the plane consumes
  // in steady state — which is the quantity the budget bounds.
  RegisterStageThread("bench-main");
  auto cpu_ms_now = [] {
    timespec ts;
    clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
    return static_cast<double>(ts.tv_sec) * 1e3 +
           static_cast<double>(ts.tv_nsec) / 1e6;
  };
  // Re-timing a block of N identical operations, keeping the cheapest
  // per-op cost seen.
  auto min_block_ms = [&cpu_ms_now](int blocks, int per_block,
                                    const std::function<void()>& op) {
    double best = 0.0;
    for (int b = 0; b < blocks; ++b) {
      const double c0 = cpu_ms_now();
      for (int i = 0; i < per_block; ++i) op();
      const double one = (cpu_ms_now() - c0) / per_block;
      if (b == 0 || one < best) best = one;
    }
    return best;
  };

  // Observability sampler: CPU per registry walk (SampleNow with the
  // freshness hook installed, registry populated by the executors above)
  // over the production sampling period.
  obs::TimeSeriesStore::Options ts_options;
  ts_options.capacity = 4096;
  obs::TimeSeriesStore ts(&MetricRegistry::Default(), ts_options);
  ts.SetPreSampleHook([](uint64_t now) {
    obs::FreshnessTracker::Default().PublishGauges(&MetricRegistry::Default(),
                                                   now);
  });
  const double walk_ms = min_block_ms(8, 25, [&ts] { ts.SampleNow(); });
  const double obs_overhead_pct =
      walk_ms / static_cast<double>(ts_options.sample_period_ms) * 100.0;

  // Profiler: CPU per sample — kernel signal delivery + handler stack
  // capture + ring write, driven through the real installed handler with
  // raise(SIGPROF) on this registered thread — times hz samples per
  // CPU-second at the production default rate. (The ring intentionally
  // overwrites when full, so hammering it keeps the steady-state cost.)
  obs::Profiler::Instance().Start(obs::Profiler::Options());
  const double sample_ms = min_block_ms(8, 200, [] { raise(SIGPROF); });
  const double profiler_overhead_pct =
      sample_ms * static_cast<double>(obs::Profiler::Options().hz) / 10.0;

  // End-to-end serial throughput with each plane left on — informational
  // fields showing the planes don't gross-out the pipeline (wall clock, so
  // noisy; the gated numbers are the analytic ones above).
  auto plane_ops = [&](const std::function<void()>& stop) {
    std::vector<double> wall_ms;
    for (int r = 0; r < 5; ++r) wall_ms.push_back(one_rep_serial());
    stop();
    return bench::Summarize(wall_ms, static_cast<double>(stream.size()))
        .ops_per_sec;
  };
  const double profiler_ops_per_sec =
      plane_ops([] { obs::Profiler::Instance().Stop(); });
  ts.Start();
  const double obs_ops_per_sec = plane_ops([&ts] { ts.Stop(); });

  char extra[448];
  std::snprintf(extra, sizeof(extra),
                "\"shards\": 4, \"actions\": %zu, \"reps\": %d, "
                "\"cores\": %u, \"legacy_ops_per_sec\": %.1f,\n  "
                "\"obs_ops_per_sec\": %.1f, \"obs_overhead_pct\": %.4f,\n  "
                "\"profiler_ops_per_sec\": %.1f, "
                "\"profiler_overhead_pct\": %.4f",
                stream.size(), kReps, std::thread::hardware_concurrency(),
                legacy_summary.ops_per_sec, obs_ops_per_sec, obs_overhead_pct,
                profiler_ops_per_sec, profiler_overhead_pct);
  bench::WriteBenchJson("micro_parallel", summary, extra);
}

}  // namespace

int main(int argc, char** argv) {
  EmitJsonBaseline();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
