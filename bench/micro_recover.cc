// Microbenchmark: the durable-state plane (DESIGN.md §14) — WAL append and
// replay rates, snapshot restore rate, and the gated wal_overhead_pct.
//
// The headline ops_per_sec is WAL REPLAY throughput (records/s through
// Wal::Open on a 1M-record log): recovery speed is what bounds restart
// downtime, so that is the number worth tracking. The 3% budget gate is
// wal_overhead_pct: the fraction of the per-action pipeline CPU the WAL
// adds in steady state. As in micro_parallel, a paired durable-vs-plain
// wall-clock diff cannot resolve a sub-percent cost on a shared box, so
// the overhead is assembled analytically from min-over-blocks pieces:
//
//   wal_overhead_pct = appends_per_action * per_append_cpu
//                      / per_action_pipeline_cpu * 100
//
// where appends_per_action is counted from the real engine's WAL counters
// over a real durable run, per_append_cpu is the min-over-blocks CPU of an
// AppendOps record sized like the run's average record (the same zero-copy
// entry the engine logs through), and per_action_pipeline_cpu is the CPU of
// the full (non-durable) pipeline per action. Appends and pipeline CPU are
// paired PER BATCH — both grow together as store state accumulates — and
// the reported overhead is the worst batch, so a cheap early batch cannot
// dilute the steady-state number.
//
// Scale: TR_RECOVER_RECORDS overrides the 1M log size.

#include <ctime>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/clock.h"
#include "common/metrics.h"
#include "common/random.h"
#include "engine/tencentrec.h"
#include "tdstore/mdb_engine.h"
#include "tdstore/wal.h"

namespace {

using namespace tencentrec;
using core::ActionType;
using core::ItemId;
using core::UserAction;
using core::UserId;

double CpuMsNow() {
  timespec ts;
  clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) * 1e3 +
         static_cast<double>(ts.tv_nsec) / 1e6;
}

double WallMsNow() {
  timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<double>(ts.tv_sec) * 1e3 +
         static_cast<double>(ts.tv_nsec) / 1e6;
}

/// Cheapest per-op CPU cost across blocks (interference only ever ADDS
/// CPU time to a fixed instruction sequence, so the minimum converges on
/// the uninterfered cost).
double MinBlockMs(int blocks, int per_block, const std::function<void()>& op) {
  double best = 0.0;
  for (int b = 0; b < blocks; ++b) {
    const double c0 = CpuMsNow();
    for (int i = 0; i < per_block; ++i) op();
    const double one = (CpuMsNow() - c0) / per_block;
    if (b == 0 || one < best) best = one;
  }
  return best;
}

int64_t RecordsFromEnv(int64_t fallback) {
  const char* env = std::getenv("TR_RECOVER_RECORDS");
  if (env == nullptr) return fallback;
  const int64_t v = std::atoll(env);
  return v > 0 ? v : fallback;
}

std::vector<UserAction> MakeBatch(int b, int n) {
  Rng rng(static_cast<uint64_t>(90 + b));
  const ActionType kTypes[] = {ActionType::kBrowse, ActionType::kClick,
                               ActionType::kRead, ActionType::kPurchase};
  std::vector<UserAction> actions;
  actions.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    UserAction a;
    a.user = static_cast<UserId>(1 + rng.Uniform(200));
    a.item = static_cast<ItemId>(1 + rng.Uniform(100));
    a.action = kTypes[rng.Uniform(4)];
    a.timestamp = Seconds((b * n + i) * 2);
    actions.push_back(a);
  }
  return actions;
}

engine::TencentRec::Options EngineOptions(const std::string& durable_dir) {
  engine::TencentRec::Options options;
  options.app.app = "recover";
  options.app.parallelism = 2;
  options.app.linked_time = Days(30);
  options.store.num_data_servers = 2;
  options.store.num_instances = 8;
  if (!durable_dir.empty()) {
    options.store.durability.enabled = true;
    options.store.durability.dir = durable_dir;
  }
  return options;
}

tdstore::WalRecord SampleRecord(int i) {
  tdstore::WalRecord rec;
  rec.instance_id = i % 8;
  rec.ops.push_back({false, "ic:recover:" + std::to_string(i % 4096) + ":" +
                                std::to_string(i % 128),
                     std::string(8, static_cast<char>('0' + i % 10))});
  return rec;
}

}  // namespace

int main() {
  const int64_t kRecords = RecordsFromEnv(1'000'000);
  const std::string dir =
      (std::filesystem::temp_directory_path() /
       ("micro_recover_" + std::to_string(::getpid())))
          .string();
  std::filesystem::create_directories(dir);

  // --- WAL append: group-commit policy, 1M representative records. -------
  const std::string wal_path = dir + "/bench.wal";
  double append_wall_ms;
  {
    tdstore::Wal wal;
    tdstore::Wal::Options wal_options;  // group commit, 2ms interval
    if (!wal.Open(wal_path, wal_options).ok()) return 1;
    const double t0 = WallMsNow();
    for (int64_t i = 0; i < kRecords; ++i) {
      if (!wal.Append(SampleRecord(static_cast<int>(i))).ok()) return 1;
    }
    append_wall_ms = WallMsNow() - t0;
    if (!wal.Close().ok()) return 1;
  }
  const double append_ops_per_sec =
      static_cast<double>(kRecords) / (append_wall_ms / 1e3);
  std::printf("wal append: %lld records in %.0f ms (%.0f records/s)\n",
              static_cast<long long>(kRecords), append_wall_ms,
              append_ops_per_sec);

  // --- WAL replay: reopen the log, which recovers every record. ----------
  constexpr int kReplayReps = 3;
  std::vector<double> replay_ms;
  for (int r = 0; r < kReplayReps; ++r) {
    const double t0 = WallMsNow();
    tdstore::Wal wal;
    if (!wal.Open(wal_path, {}).ok()) return 1;
    if (wal.recovered().size() != static_cast<size_t>(kRecords)) {
      std::fprintf(stderr, "replay recovered %zu of %lld records\n",
                   wal.recovered().size(), static_cast<long long>(kRecords));
      return 1;
    }
    replay_ms.push_back(WallMsNow() - t0);
  }
  const bench::BenchSummary summary =
      bench::Summarize(replay_ms, static_cast<double>(kRecords));
  std::printf("wal replay: %.0f records/s (p50 %.0f ms for %lld records)\n",
              summary.ops_per_sec, summary.p50_ms,
              static_cast<long long>(kRecords));

  // --- Snapshot restore rate. --------------------------------------------
  constexpr int kSnapKeys = 200'000;
  const std::string snap_path = dir + "/bench.snap";
  {
    tdstore::MdbEngine engine;
    for (int i = 0; i < kSnapKeys; ++i) {
      (void)engine.Put("sim:recover:" + std::to_string(i),
                       std::string(32, static_cast<char>('a' + i % 26)));
    }
    if (!engine.SnapshotTo(snap_path).ok()) return 1;
  }
  std::vector<double> restore_ms;
  for (int r = 0; r < kReplayReps; ++r) {
    tdstore::MdbEngine engine;
    const double t0 = WallMsNow();
    if (!engine.RestoreFrom(snap_path).ok()) return 1;
    restore_ms.push_back(WallMsNow() - t0);
  }
  const double restore_ops_per_sec =
      bench::Summarize(restore_ms, kSnapKeys).ops_per_sec;
  std::printf("snapshot restore: %.0f keys/s\n", restore_ops_per_sec);

  // --- wal_overhead_pct: the gated number. -------------------------------
  // (a) WAL appends per pipeline action, counted from the real engine.
  auto* appends = MetricRegistry::Default().GetCounter("store.wal.appends");
  auto* appended_bytes =
      MetricRegistry::Default().GetCounter("store.wal.appended_bytes");
  constexpr int kBatches = 6;
  constexpr int kPerBatch = 2000;
  int64_t actions_processed = 0;
  const uint64_t appends_before = appends->Value();
  const uint64_t bytes_before = appended_bytes->Value();
  std::vector<double> batch_appends;  // per-batch appends/action
  std::filesystem::create_directories(dir + "/engine");
  {
    auto durable = engine::TencentRec::Create(EngineOptions(dir + "/engine"));
    if (!durable.ok()) return 1;
    uint64_t last = appends->Value();
    for (int b = 0; b < kBatches; ++b) {
      if (!(*durable)->ProcessBatch(MakeBatch(b, kPerBatch)).ok()) return 1;
      actions_processed += kPerBatch;
      batch_appends.push_back(
          static_cast<double>(appends->Value() - last) / kPerBatch);
      last = appends->Value();
    }
  }
  const double appends_per_action =
      static_cast<double>(appends->Value() - appends_before) /
      static_cast<double>(actions_processed);
  const double bytes_per_action =
      static_cast<double>(appended_bytes->Value() - bytes_before) /
      static_cast<double>(actions_processed);

  // (b) CPU per append through the zero-copy AppendOps fast path (the entry
  // the engine actually logs through), min over blocks. The op is sized so
  // the framed record matches the durable run's AVERAGE record — crc and
  // fwrite cost scale with bytes, so a toy record would understate.
  double per_append_cpu_ms;
  {
    tdstore::Wal wal;
    if (!wal.Open(dir + "/cost.wal", {}).ok()) return 1;
    const double avg_record_bytes =
        bytes_per_action / std::max(appends_per_action, 1e-9);
    const std::string key = "ic:recover:1234:77";
    // framed = frame(8) + record header(17) + op header(9) + key + value.
    const double pad = avg_record_bytes - 8 - 17 - 9 -
                       static_cast<double>(key.size());
    const std::string value(pad > 8 ? static_cast<size_t>(pad) : 8, 'v');
    const tdstore::WalOpView op{false, key, value};
    int i = 0;
    per_append_cpu_ms = MinBlockMs(8, 2000, [&wal, &op, &i] {
      (void)wal.AppendOps(i++ % 8, &op, 1);
    });
  }

  // (c) CPU per pipeline action with durability off, per batch
  // (CLOCK_PROCESS_CPUTIME_ID sums all worker threads, the same basis the
  // append cost is measured on). Overhead is computed per batch against the
  // SAME batch's appends — both climb together as user histories grow — and
  // the gate takes the worst batch.
  double wal_overhead_pct = 0.0;
  double per_action_cpu_ms = 0.0;  // worst batch's, for the printout
  {
    auto plain = engine::TencentRec::Create(EngineOptions(""));
    if (!plain.ok()) return 1;
    for (int b = 0; b < kBatches; ++b) {
      auto batch = MakeBatch(b, kPerBatch);
      const double c0 = CpuMsNow();
      if (!(*plain)->ProcessBatch(batch).ok()) return 1;
      const double one = (CpuMsNow() - c0) / kPerBatch;
      const double pct =
          batch_appends[static_cast<size_t>(b)] * per_append_cpu_ms / one *
          100.0;
      if (pct > wal_overhead_pct) {
        wal_overhead_pct = pct;
        per_action_cpu_ms = one;
      }
    }
  }

  std::printf(
      "wal overhead: %.2f appends/action (run avg) x %.5f ms/append, worst "
      "batch %.4f ms/action = %.3f%% (budget 3%%)\n",
      appends_per_action, per_append_cpu_ms, per_action_cpu_ms,
      wal_overhead_pct);

  char extra[512];
  std::snprintf(
      extra, sizeof(extra),
      "\"records\": %lld, \"cores\": %u,\n  "
      "\"wal_append_ops_per_sec\": %.1f, "
      "\"snapshot_restore_ops_per_sec\": %.1f,\n  "
      "\"wal_appends_per_action\": %.3f, \"wal_bytes_per_action\": %.1f,\n  "
      "\"wal_overhead_pct\": %.4f",
      static_cast<long long>(kRecords), std::thread::hardware_concurrency(),
      append_ops_per_sec, restore_ops_per_sec, appends_per_action,
      bytes_per_action, wal_overhead_pct);
  const bool wrote = bench::WriteBenchJson("micro_recover", summary, extra);

  std::filesystem::remove_all(dir);
  return wrote ? 0 : 1;
}
