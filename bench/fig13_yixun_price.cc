// Reproduces Figure 13 (CTR of the similar-price recommendation position in
// YiXun, one week): the position shows commodities in the same price band
// as the browsed item — a sparse, cross-category candidate pool where the
// data-sparsity solution and real-time interests matter most (§6.4).
// Paper improvements: 16.39, 18.57, 15.38, 13.75, 6.10, 13.75, 18.29 %.

#include <cstdio>

#include "bench/bench_util.h"
#include "sim/apps.h"

int main() {
  const int days = tencentrec::bench::DaysFromEnv(7);
  const uint64_t seed = tencentrec::bench::SeedFromEnv();
  std::printf(
      "Figure 13: CTR of similar-price recommendation in YiXun (%d days)\n\n",
      days);
  auto result = tencentrec::sim::MakeYixunScenario(
                    tencentrec::sim::YixunPosition::kSimilarPrice, days, seed)
                    .Run();

  std::printf("%4s %14s %14s %14s\n", "day", "Original CTR", "TencentRec CTR",
              "improvement");
  int days_won = 0;
  for (const auto& day : result.days) {
    std::printf("%4d %13.2f%% %13.2f%% %13.2f%%\n", day.day,
                day.original.Ctr() * 100.0, day.tencentrec.Ctr() * 100.0,
                day.ImprovementPct());
    if (day.tencentrec.Ctr() > day.original.Ctr()) ++days_won;
  }
  std::printf(
      "\nTencentRec above Original on %d/%zu days "
      "(paper: every day; improvements 6.10%%..18.57%%)\n",
      days_won, result.days.size());
  return 0;
}
