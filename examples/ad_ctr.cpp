// Advertisement CTR (the QQ use case): situational CTR prediction — the
// paper's opening query, "During last ten seconds, what is the CTR of an
// advertisement among the male users in Beijing, whose age is from twenty
// to thirty" (§1), plus situation-aware ad ranking.
//
//   ./ad_ctr

#include <cstdio>

#include "common/random.h"
#include "core/ctr.h"

using namespace tencentrec;
using namespace tencentrec::core;

namespace {

constexpr uint16_t kBeijing = 11;
constexpr uint16_t kShanghai = 21;

Demographics Situation(Demographics::Gender gender, uint8_t age_band,
                       uint16_t region) {
  Demographics d;
  d.gender = gender;
  d.age_band = age_band;
  d.region = region;
  return d;
}

}  // namespace

int main() {
  SituationalCtr::Options options;
  options.session_length = Seconds(10);  // the query's window granularity
  options.window_sessions = 0;           // plus a cumulative view for ranking
  SituationalCtr ranker(options);

  // A second model with a 1-session (10 s) sliding window answers the
  // "during last ten seconds" part verbatim.
  SituationalCtr::Options live_options = options;
  live_options.window_sessions = 1;
  SituationalCtr live(live_options);

  // Simulated ad traffic: ad 1 resonates with Beijing males in their 20s
  // (age band 2); ad 2 performs uniformly; ad 3 is a dud.
  Rng rng(42);
  for (int i = 0; i < 6000; ++i) {
    const EventTime ts = Seconds(i / 100);  // ~100 impressions per second
    auto gender = rng.Bernoulli(0.5) ? Demographics::kMale
                                     : Demographics::kFemale;
    auto age = static_cast<uint8_t>(rng.UniformInt(1, 5));
    auto region = rng.Bernoulli(0.5) ? kBeijing : kShanghai;
    Demographics d = Situation(gender, age, region);
    for (ItemId ad : {1, 2, 3}) {
      ranker.RecordImpression(ad, d, ts);
      live.RecordImpression(ad, d, ts);
      double p = ad == 2 ? 0.05 : (ad == 3 ? 0.01 : 0.02);
      if (ad == 1 && gender == Demographics::kMale && age == 2 &&
          region == kBeijing) {
        p = 0.30;  // the situational pocket
      }
      if (rng.Bernoulli(p)) {
        ranker.RecordClick(ad, d, ts);
        live.RecordClick(ad, d, ts);
      }
    }
  }

  const Demographics beijing_male_20s =
      Situation(Demographics::kMale, 2, kBeijing);
  const Demographics shanghai_female_30s =
      Situation(Demographics::kFemale, 3, kShanghai);

  // The SIGMOD query: raw windowed counts in the last ten seconds.
  auto counts = live.SituationCounts(1, beijing_male_20s);
  std::printf(
      "\"During last ten seconds, what is the CTR of ad 1 among the male\n"
      " users in Beijing, whose age is from twenty to thirty?\"\n");
  std::printf("  impressions=%.0f clicks=%.0f  ->  CTR %.1f%%\n\n",
              counts.impressions, counts.clicks,
              counts.impressions > 0
                  ? 100.0 * counts.clicks / counts.impressions
                  : 0.0);

  // Situational estimates: the same ad reads very differently by audience.
  std::printf("smoothed CTR of ad 1: Beijing male 20s %.1f%%   "
              "Shanghai female 30s %.1f%%\n",
              100.0 * ranker.PredictCtr(1, beijing_male_20s),
              100.0 * ranker.PredictCtr(1, shanghai_female_30s));

  // Ranking: ad 1 wins its pocket, ad 2 wins everywhere else.
  auto ranked = ranker.RankByCtr({1, 2, 3}, beijing_male_20s, 3);
  std::printf("\nranking for Beijing male 20s:   ");
  for (const auto& r : ranked) {
    std::printf(" ad %lld (%.1f%%)", static_cast<long long>(r.item),
                100.0 * r.score);
  }
  ranked = ranker.RankByCtr({1, 2, 3}, shanghai_female_30s, 3);
  std::printf("\nranking for Shanghai female 30s:");
  for (const auto& r : ranked) {
    std::printf(" ad %lld (%.1f%%)", static_cast<long long>(r.item),
                100.0 * r.score);
  }
  std::printf("\n\n(sparse situations shrink toward their parent estimates "
              "instead of\n overfitting a handful of events — hierarchical "
              "smoothing over the\n item -> +gender -> +age -> +region "
              "chain)\n");
  return 0;
}
