// E-commerce store (the YiXun use case, §6.4): the full TencentRec engine —
// actions flow through TDAccess into the Storm-style topology, state lands
// in TDStore, and the recommender engine answers position queries with
// application-specific filters (price band), association rules, and
// data-sparsity fallbacks. Ends by failing a TDStore data server to show
// the failover path.
//
//   ./ecommerce_store

#include <cstdio>

#include "engine/tencentrec.h"

using namespace tencentrec;
using namespace tencentrec::core;

namespace {

// Commodity ids encode a price band for the demo: band = id / 100.
int PriceBand(ItemId item) { return static_cast<int>(item / 100); }

UserAction Act(UserId user, ItemId item, ActionType type, EventTime ts) {
  UserAction a;
  a.user = user;
  a.item = item;
  a.action = type;
  a.timestamp = ts;
  a.demographics.gender = (user % 2) == 0 ? Demographics::kMale
                                          : Demographics::kFemale;
  a.demographics.age_band = static_cast<uint8_t>(1 + user % 4);
  return a;
}

void PrintRecs(const char* label, const Recommendations& recs) {
  std::printf("%-42s", label);
  for (const auto& r : recs) {
    std::printf("  %lld(band %d, %.3f)", static_cast<long long>(r.item),
                PriceBand(r.item), r.score);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  engine::TencentRec::Options options;
  options.app.app = "yixun";
  options.app.parallelism = 2;
  options.app.linked_time = Days(3);  // e-commerce linked time (§4.1.4)
  options.app.recent_k = 5;
  options.store.num_data_servers = 3;
  options.store.num_instances = 12;
  // Storage-layer filter: this deployment never recommends band-0 items
  // (say, below the position's minimum price).
  options.app.result_filter = [](ItemId item) { return PriceBand(item) > 0; };

  auto engine = engine::TencentRec::Create(std::move(options));
  if (!engine.ok()) {
    std::fprintf(stderr, "engine: %s\n", engine.status().ToString().c_str());
    return 1;
  }

  // Shoppers browse and buy; same-session items become related.
  std::vector<UserAction> actions;
  EventTime t = 0;
  for (UserId u = 1; u <= 8; ++u) {
    // Band-1 electronics mission: browse 101, 102 (and, for everyone but
    // shopper 1, the accessory 103); buy 101.
    actions.push_back(Act(u, 101, ActionType::kBrowse, t += Minutes(1)));
    actions.push_back(Act(u, 102, ActionType::kBrowse, t += Minutes(1)));
    if (u != 1) {
      actions.push_back(Act(u, 103, ActionType::kBrowse, t += Minutes(1)));
    }
    actions.push_back(Act(u, 101, ActionType::kPurchase, t += Minutes(1)));
  }
  for (UserId u = 9; u <= 14; ++u) {
    // Band-2 home goods mission.
    actions.push_back(Act(u, 201, ActionType::kBrowse, t += Minutes(1)));
    actions.push_back(Act(u, 202, ActionType::kPurchase, t += Minutes(1)));
  }
  // Cheap band-0 accessory everyone touches (filtered from results).
  for (UserId u = 1; u <= 14; ++u) {
    actions.push_back(Act(u, 1, ActionType::kClick, t += Minutes(1)));
  }

  // Production wiring: publish to TDAccess, then drain through the topology.
  if (!(*engine)->PublishActions(actions).ok() ||
      !(*engine)->ProcessFromAccess().ok()) {
    std::fprintf(stderr, "ingestion failed\n");
    return 1;
  }
  std::printf("ingested %zu actions through TDAccess -> topology -> "
              "TDStore\n\n",
              actions.size());

  const EventTime now = t + Minutes(5);

  // A shopper who just bought 101: CF recommends its mission partner; the
  // band-0 accessory never appears (FilterBolt rule).
  auto recs = (*engine)->query().Recommend(1, actions[0].demographics, 3, now);
  PrintRecs("shopper 1 (bought 101):", *recs);

  // Association rule: what do buyers of 201 also take?
  auto rules = (*engine)->query().RecommendAr(201, 3, now, 1.0, 0.01);
  PrintRecs("rules from commodity 201:", *rules);

  // Cold-start shopper: demographic hot items fill in (§4.2).
  Demographics newcomer;
  newcomer.gender = Demographics::kFemale;
  newcomer.age_band = 2;
  recs = (*engine)->query().Recommend(500, newcomer, 3, now);
  PrintRecs("brand-new shopper (DB complement):", *recs);

  // Fail a TDStore data server: instances fail over to their slaves and
  // queries keep working (§3.3).
  std::printf("\nfailing TDStore data server 0...\n");
  if (!(*engine)->store()->FailDataServer(0).ok()) return 1;
  recs = (*engine)->query().Recommend(1, actions[0].demographics, 3, now);
  PrintRecs("shopper 1 after failover:", *recs);

  std::printf("\nsimilarity(101,102)=%.3f  (mission co-browse)\n",
              (*engine)->query().SimilarityFromCounts(101, 102, now).value());
  return 0;
}
