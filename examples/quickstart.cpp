// Quickstart: the core recommendation library in ~60 lines.
//
// Builds the paper's hybrid recommender (practical incremental item-based
// CF + demographic complement), streams a few user actions through it, and
// prints real-time recommendations — no cluster, no storage, just the
// algorithms.
//
//   ./quickstart

#include <cstdio>

#include "core/recommender.h"

using namespace tencentrec;
using namespace tencentrec::core;

namespace {

UserAction Click(UserId user, ItemId item, EventTime ts,
                 Demographics d = {}) {
  UserAction a;
  a.user = user;
  a.item = item;
  a.action = ActionType::kClick;
  a.timestamp = ts;
  a.demographics = d;
  return a;
}

void Print(const char* who, const Recommendations& recs) {
  std::printf("%-28s", who);
  if (recs.empty()) std::printf(" (nothing yet)");
  for (const auto& r : recs) std::printf("  item %lld (%.3f)",
                                         static_cast<long long>(r.item),
                                         r.score);
  std::printf("\n");
}

}  // namespace

int main() {
  HybridRecommender::Options options;
  options.cf.linked_time = Hours(6);   // items co-clicked within 6h pair up
  options.cf.recent_k = 5;             // predictions follow recent interests
  options.db.window_sessions = 24;     // hot items over a sliding day
  HybridRecommender rec(options);

  Demographics male20s;
  male20s.gender = Demographics::kMale;
  male20s.age_band = 2;

  // Users 1..4 co-click items (101, 102); users 5..8 co-click (201, 202).
  EventTime t = 0;
  for (UserId u = 1; u <= 4; ++u) {
    rec.ProcessAction(Click(u, 101, t += Minutes(1), male20s));
    rec.ProcessAction(Click(u, 102, t += Minutes(1), male20s));
  }
  for (UserId u = 5; u <= 8; ++u) {
    rec.ProcessAction(Click(u, 201, t += Minutes(1)));
    rec.ProcessAction(Click(u, 202, t += Minutes(1)));
  }

  // A new user clicks item 101: CF instantly recommends its co-clicked
  // partner.
  rec.ProcessAction(Click(99, 101, t += Minutes(1), male20s));
  Print("user 99 (clicked 101):", rec.Recommend(99, male20s, 3));

  // A brand-new user has no history: the demographic complement serves the
  // hot items of their group (the data sparsity solution).
  Print("user 1000 (cold start):", rec.Recommend(1000, male20s, 3));

  // Real-time interest shift: user 99 now clicks item 201 — the next
  // recommendation follows the new interest immediately.
  rec.ProcessAction(Click(99, 201, t += Minutes(1), male20s));
  Print("user 99 (now clicked 201):", rec.Recommend(99, male20s, 3));

  std::printf("\nsimilarity(101, 102) = %.3f   similarity(101, 201) = %.3f\n",
              rec.cf().Similarity(101, 102), rec.cf().Similarity(101, 201));
  return 0;
}
