// Video site (the Tencent Videos use case): the config-driven deployment
// path — the topology is generated from an XML file exactly as in the
// paper's Figure 7, run on the stream engine, and queried from TDStore.
// Also crashes a bolt mid-stream to demonstrate that stateless bolts +
// durable TDStore state survive worker failures.
//
//   ./video_site

#include <cstdio>

#include "topo/query.h"
#include "topo/spouts.h"
#include "topo/topology_factory.h"
#include "tstorm/cluster.h"
#include "tstorm/config.h"

using namespace tencentrec;
using namespace tencentrec::core;

namespace {

// The application's topology configuration — what a TencentRec operator
// writes instead of deployment code (§5.1, Fig. 7).
constexpr const char* kTopologyXml = R"(
<topology name="videos">
  <spout name="spout" class="VideoActionSpout"/>
  <bolts>
    <bolt name="pretreatment" class="Pretreatment" parallelism="2">
      <grouping type="shuffle"><source>spout</source></grouping>
    </bolt>
    <bolt name="user_history" class="UserHistory" parallelism="2">
      <grouping type="field">
        <source>pretreatment</source>
        <stream_id>user_action</stream_id>
        <fields>user</fields>
      </grouping>
    </bolt>
    <bolt name="item_count" class="ItemCount" parallelism="2">
      <tick_interval>64</tick_interval>
      <grouping type="field">
        <source>user_history</source>
        <stream_id>item_delta</stream_id>
        <fields>item</fields>
      </grouping>
    </bolt>
    <bolt name="cf_pair" class="CfPair" parallelism="2">
      <grouping type="field">
        <source>user_history</source>
        <stream_id>pair_delta</stream_id>
        <fields>lo, hi</fields>
      </grouping>
    </bolt>
    <bolt name="similar_list" class="SimilarList" parallelism="2">
      <grouping type="field">
        <source>cf_pair</source>
        <stream_id>sim_update</stream_id>
        <fields>item</fields>
      </grouping>
      <grouping type="field">
        <source>cf_pair</source>
        <stream_id>prune</stream_id>
        <fields>item</fields>
      </grouping>
    </bolt>
    <bolt name="group_count" class="GroupCount" parallelism="2">
      <tick_interval>64</tick_interval>
      <grouping type="field">
        <source>user_history</source>
        <stream_id>group_delta</stream_id>
        <fields>group, item</fields>
      </grouping>
    </bolt>
    <bolt name="hot_list" class="HotList" parallelism="2">
      <grouping type="field">
        <source>group_count</source>
        <stream_id>hot_touch</stream_id>
        <fields>group</fields>
      </grouping>
    </bolt>
  </bolts>
</topology>
)";

UserAction Watch(UserId user, ItemId video, EventTime ts) {
  UserAction a;
  a.user = user;
  a.item = video;
  a.action = ActionType::kRead;  // a completed view
  a.timestamp = ts;
  a.demographics.gender = (user % 2) == 0 ? Demographics::kMale
                                          : Demographics::kFemale;
  a.demographics.age_band = static_cast<uint8_t>(1 + user % 3);
  return a;
}

}  // namespace

int main() {
  // The shared substrate: one TDStore cluster holds all state.
  tdstore::Cluster::Options store_options;
  store_options.num_data_servers = 2;
  store_options.num_instances = 8;
  auto store = tdstore::Cluster::Create(store_options);
  if (!store.ok()) return 1;

  topo::AppOptions app_options;
  app_options.app = "videos";
  app_options.linked_time = Hours(6);
  app_options.session_length = Hours(6);
  app_options.window_sessions = 8;  // 2-day sliding window
  topo::AppContext app(store->get(), app_options);

  // Binge sessions: two comedy fans, two documentary fans, and one viewer
  // we will query.
  std::vector<UserAction> actions;
  EventTime t = 0;
  for (UserId u = 1; u <= 4; ++u) {
    actions.push_back(Watch(u, 301, t += Minutes(5)));  // comedy
    actions.push_back(Watch(u, 302, t += Minutes(5)));
    actions.push_back(Watch(u, 303, t += Minutes(5)));
  }
  for (UserId u = 5; u <= 8; ++u) {
    actions.push_back(Watch(u, 401, t += Minutes(5)));  // documentaries
    actions.push_back(Watch(u, 402, t += Minutes(5)));
  }
  actions.push_back(Watch(42, 301, t += Minutes(5)));

  // Generate the topology from XML: register the component classes, parse,
  // build, run.
  tstorm::ComponentRegistry registry;
  topo::RegisterComponents(
      &registry, &app, "VideoActionSpout", [&actions] {
        return std::make_unique<topo::VectorActionSpout>(&actions);
      });
  auto spec = tstorm::BuildTopologyFromXml(kTopologyXml, registry);
  if (!spec.ok()) {
    std::fprintf(stderr, "config: %s\n", spec.status().ToString().c_str());
    return 1;
  }
  std::printf("built topology '%s' from XML: %zu components, %zu edges\n",
              spec->name.c_str(), spec->components.size(),
              spec->edges.size());

  auto cluster = tstorm::LocalCluster::Create(std::move(spec).value());
  if (!cluster.ok()) return 1;
  // Crash the user_history workers mid-stream: stateless bolts recover
  // from TDStore and the run completes correctly (§3.3/§5.1).
  (void)(*cluster)->RequestRestart("user_history");
  if (!(*cluster)->Run().ok()) return 1;
  for (const auto& m : (*cluster)->Metrics()) {
    if (m.restarts > 0) {
      std::printf("component '%s' survived %llu worker restarts\n",
                  m.component.c_str(),
                  static_cast<unsigned long long>(m.restarts));
    }
  }

  // Serve from TDStore state.
  topo::StoreQuery query(&app);
  const EventTime now = t + Minutes(10);
  auto recs = query.RecommendCf(42, 3, now);
  std::printf("\nviewer 42 watched video 301 ->");
  for (const auto& r : *recs) {
    std::printf("  video %lld (%.3f)", static_cast<long long>(r.item),
                r.score);
  }
  std::printf("   (the comedy binge set, not the documentaries)\n");

  auto sim = query.SimilarityFromCounts(301, 302, now);
  auto cross = query.SimilarityFromCounts(301, 401, now);
  std::printf("sim(301,302)=%.3f   sim(301,401)=%.3f\n", *sim, *cross);
  return 0;
}
