// Operations view (Fig. 9's Monitor and Offline Computation Platform, and
// the §7 future-work auto-parallelism): run a deployment, watch the monitor
// before/after ingestion — including per-component event-to-store latency
// percentiles (the paper's ~2s end-to-end claim, §6.2) — derive rates from
// two snapshots, export the same data for scraping (Prometheus text / JSON),
// size bolts automatically from the traffic rate, and launch an offline
// batch job over the TDAccess history.
//
//   ./operations

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <string>
#include <string_view>

#include "common/metrics.h"
#include "common/random.h"
#include "common/trace.h"
#include "engine/monitor.h"
#include "engine/offline.h"
#include "engine/tencentrec.h"

using namespace tencentrec;
using namespace tencentrec::core;

namespace {

/// Print the first `n` lines of a multi-line export, then an ellipsis.
void PrintHead(const std::string& text, int n) {
  std::istringstream in(text);
  std::string line;
  int printed = 0;
  while (printed < n && std::getline(in, line)) {
    std::printf("%s\n", line.c_str());
    ++printed;
  }
  if (in.peek() != EOF) std::printf("...\n");
}

/// What `curl http://127.0.0.1:<port><path>` would do, inline: one GET
/// against the embedded admin server, returning the raw response.
std::string HttpGet(int port, const std::string& path) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  const std::string req =
      "GET " + path + " HTTP/1.1\r\nHost: localhost\r\n\r\n";
  (void)!::write(fd, req.data(), req.size());
  std::string out;
  char buf[4096];
  ssize_t n;
  while ((n = ::read(fd, buf, sizeof(buf))) > 0) out.append(buf, n);
  ::close(fd);
  return out;
}

}  // namespace

int main() {
  SetMetricsEnabled(true);  // on by default; explicit for the demo
  engine::TencentRec::Options options;
  options.app.app = "ops";
  options.app.parallelism = 0;  // automatic (§7 future work)
  options.app.linked_time = Hours(4);
  options.store.num_data_servers = 2;
  options.store.num_instances = 8;
  auto engine = engine::TencentRec::Create(options);
  if (!engine.ok()) {
    std::fprintf(stderr, "engine: %s\n", engine.status().ToString().c_str());
    return 1;
  }

  // A burst of traffic lands on the bus.
  Rng rng(9);
  ZipfSampler zipf(150, 0.9);
  std::vector<UserAction> actions;
  for (int i = 0; i < 5000; ++i) {
    UserAction a;
    a.user = static_cast<UserId>(1 + rng.Uniform(100));
    a.item = static_cast<ItemId>(1 + zipf.Sample(rng));
    a.action = rng.Bernoulli(0.3) ? ActionType::kPurchase
                                  : ActionType::kClick;
    a.timestamp = i * Seconds(600) / 5000;  // ~8 events/s over 10 minutes
    actions.push_back(a);
  }
  if (!(*engine)->PublishActions(actions).ok()) return 1;

  std::printf("-- monitor before processing --\n");
  auto before = engine::CollectMonitorSnapshot(engine->get());
  std::printf("%s\n", engine::FormatMonitorSnapshot(*before).c_str());

  if (!(*engine)->ProcessFromAccess().ok()) return 1;

  std::printf("-- monitor after processing --\n");
  auto after = engine::CollectMonitorSnapshot(engine->get());
  // The topology rows now carry e2s[p50/p95/p99/max] event-to-store latency
  // per component, and the latency section lists every registry histogram
  // (tdstore per-op read/write, tdaccess poll, per-bolt event-to-store).
  std::printf("%s\n", engine::FormatMonitorSnapshot(*after).c_str());

  // Two snapshots of the same engine turn cumulative totals into rates and
  // busy time into utilization.
  auto delta = engine::ComputeSnapshotDelta(*before, *after);
  std::printf("-- delta over %.3f s --\n", delta.wall_seconds);
  std::printf("events/s %.0f  store reads/s %.0f  writes/s %.0f  "
              "lag %+lld\n",
              delta.events_per_second, delta.store_reads_per_second,
              delta.store_writes_per_second,
              static_cast<long long>(delta.lag_delta));
  for (const auto& u : delta.utilization) {
    if (u.busy_over_wall > 0) {
      std::printf("  %-16s busy/wall %.3f\n", u.component.c_str(),
                  u.busy_over_wall);
    }
  }

  // The same snapshot exports as Prometheus text exposition (scrapeable)
  // and as a JSON document (dashboards, log shipping).
  std::printf("\n-- prometheus exposition (head) --\n");
  PrintHead(engine::ExportPrometheusText(*after), 18);
  std::printf("\n-- json export (head) --\n");
  const std::string json = engine::ExportJson(*after);
  std::printf("%s%s\n", json.substr(0, 400).c_str(),
              json.size() > 400 ? "..." : "");

  // The offline platform replays the same history from TDAccess's disk
  // cache and builds a batch model — e.g. for nightly evaluation against
  // the streaming state.
  engine::OfflineCfJob::Options job;
  auto model = engine::OfflineCfJob::Run((*engine)->access(), job);
  if (!model.ok()) return 1;
  std::printf("-- offline job --\nreplayed %lld actions from TDAccess "
              "history\n",
              static_cast<long long>(
                  engine::OfflineCfJob::last_actions_replayed()));

  // Cross-check one similarity between the offline build and the live
  // streaming counts.
  const EventTime now = Seconds(700);
  auto live = (*engine)->query().SimilarityFromCounts(1, 2, now);
  std::printf("sim(1,2): offline=%.4f streaming=%.4f\n",
              model->Similarity(1, 2), live.value_or(-1.0));

  // The same deployment with the sharded in-memory mirror enabled: every
  // ProcessBatch also streams through the multi-threaded Fig. 4 pipeline,
  // whose per-stage counters join the monitor report and whose queries
  // skip the TDStore round-trip.
  engine::TencentRec::Options mopts = options;
  mopts.app.app = "ops-mirrored";
  mopts.app.parallelism = 2;
  mopts.mirror_parallel_cf = true;
  mopts.mirror_user_shards = 4;
  mopts.mirror_pair_shards = 4;
  // The ops plane: sample 1 in 64 tuples end to end, serve the snapshot /
  // health / traces over loopback HTTP, and watch for wedged stages.
  mopts.trace_sample_every = 64;
  mopts.enable_admin_server = true;  // port 0 = ephemeral
  mopts.enable_watchdog = true;
  // The freshness/SLO plane: per-stage watermark lag gauges, a 10-minute
  // in-process metric history ring, and burn-rate objectives on /slo.
  mopts.enable_timeseries = true;
  mopts.enable_slo = true;
  auto mirrored = engine::TencentRec::Create(mopts);
  if (!mirrored.ok()) return 1;
  if (!(*mirrored)->ProcessBatch(actions).ok()) return 1;

  std::printf("\n-- monitor with parallel cf mirror --\n");
  auto msnap = engine::CollectMonitorSnapshot(mirrored->get());
  std::printf("%s\n", engine::FormatMonitorSnapshot(*msnap).c_str());
  core::ParallelItemCf* mirror = (*mirrored)->parallel_cf();
  std::printf("mirror sim(1,2)=%.4f\n", mirror->Similarity(1, 2));
  auto recs = mirror->RecommendForUser(1, 3);
  for (const auto& r : recs) {
    std::printf("mirror rec for user 1: item %lld score %.4f\n",
                static_cast<long long>(r.item), r.score);
  }

  // The embedded ops plane, exactly as an operator would curl it. Force
  // one sample so /slo and /timeseries answer deterministically instead
  // of waiting out the 1 s background sampler period.
  (*mirrored)->timeseries()->SampleNow();
  const int port = (*mirrored)->admin_server()->port();
  std::printf("\n-- admin server on 127.0.0.1:%d --\n", port);
  std::printf("$ curl :%d/healthz\n", port);
  PrintHead(HttpGet(port, "/healthz"), 8);
  std::printf("$ curl :%d/metrics   (head)\n", port);
  PrintHead(HttpGet(port, "/metrics"), 12);
  std::printf("$ curl :%d/slo\n", port);
  PrintHead(HttpGet(port, "/slo"), 8);
  std::printf("$ curl ':%d/timeseries?metric=freshness.e2e.lag_us"
              "&window=300'  (head)\n",
              port);
  PrintHead(
      HttpGet(port, "/timeseries?metric=freshness.e2e.lag_us&window=300"), 8);
  std::printf("$ curl ':%d/traces'  (head)\n", port);
  // The grouped-trace body is one long JSON line; cap by characters.
  const std::string traces = HttpGet(port, "/traces");
  std::printf("%s%s\n", traces.substr(0, 600).c_str(),
              traces.size() > 600 ? "..." : "");
  // ?format=chrome returns the same spans as a Chrome trace_event array —
  // save it and load in about:tracing or https://ui.perfetto.dev.
  const std::string chrome = HttpGet(port, "/traces?format=chrome");
  std::printf("$ curl ':%d/traces?format=chrome' | wc -c  ->  %zu\n", port,
              chrome.size());
  // TR_TRACE_OUT=/path/trace.json saves the body for about:tracing /
  // Perfetto (what an operator would do with curl -o).
  if (const char* trace_out = std::getenv("TR_TRACE_OUT")) {
    const size_t body_at = chrome.find("\r\n\r\n");
    if (body_at != std::string::npos) {
      if (std::FILE* f = std::fopen(trace_out, "w")) {
        const std::string_view body =
            std::string_view(chrome).substr(body_at + 4);
        std::fwrite(body.data(), 1, body.size(), f);
        std::fclose(f);
        std::printf("chrome trace saved to %s\n", trace_out);
      }
    }
  }
  std::printf("sampled spans recorded: %llu\n",
              static_cast<unsigned long long>(
                  Tracer::Default().total_recorded()));
  return 0;
}
