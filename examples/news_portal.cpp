// News portal (the Tencent News use case, §6.3): content-based
// recommendation over a churning catalog — new articles appear all day,
// old ones expire, and the model must follow each reader's interests in
// real time.
//
//   ./news_portal

#include <cstdio>

#include "core/content.h"
#include "core/demographic.h"

using namespace tencentrec;
using namespace tencentrec::core;

namespace {

// Content topics.
constexpr TagId kSports = 1;
constexpr TagId kTech = 2;
constexpr TagId kFinance = 3;

const char* TopicName(TagId tag) {
  switch (tag) {
    case kSports:
      return "sports";
    case kTech:
      return "tech";
    case kFinance:
      return "finance";
    default:
      return "?";
  }
}

struct Article {
  ItemId id;
  TagId topic;
  const char* headline;
};

UserAction Read(UserId user, ItemId item, EventTime ts) {
  UserAction a;
  a.user = user;
  a.item = item;
  a.action = ActionType::kRead;
  a.timestamp = ts;
  return a;
}

}  // namespace

int main() {
  ContentBased::Options options;
  options.profile_half_life = Hours(8);  // interests fade within a day
  options.item_ttl = Days(2);            // news expires
  ContentBased portal(options);

  const Article morning[] = {
      {1, kSports, "Cup final tonight"},
      {2, kSports, "Transfer window roundup"},
      {3, kTech, "New flagship phone launched"},
      {4, kFinance, "Markets rally on earnings"},
  };
  std::printf("-- morning: publishing %zu articles --\n",
              std::size(morning));
  for (const auto& article : morning) {
    portal.RegisterItem(article.id, {{article.topic, 1.0}}, Hours(6));
  }

  // Reader 7 reads the two sports stories over breakfast.
  portal.ProcessAction(Read(7, 1, Hours(7)));
  portal.ProcessAction(Read(7, 2, Hours(7) + Minutes(5)));

  auto profile = portal.ProfileOf(7, Hours(8));
  std::printf("reader 7 profile at 08:00:");
  for (const auto& [tag, w] : profile) {
    std::printf("  %s=%.2f", TopicName(tag), w);
  }
  std::printf("\n");

  // Breaking sports news at 09:00 — recommendable the moment it's
  // registered, with zero behavioural data (the CB advantage over CF for
  // news, §5.1).
  portal.RegisterItem(10, {{kSports, 1.0}}, Hours(9));
  auto recs = portal.RecommendForUser(7, 3, Hours(9) + Minutes(1));
  std::printf("reader 7 at 09:01 -> ");
  for (const auto& r : recs) {
    std::printf(" item %lld (%.3f)", static_cast<long long>(r.item), r.score);
  }
  std::printf("   (item 10 is the minute-old breaking story)\n");

  // In the evening the reader binges tech coverage; by night their
  // recommendations follow, the morning's sports interest decayed.
  portal.RegisterItem(11, {{kTech, 1.0}}, Hours(18));
  portal.RegisterItem(12, {{kTech, 1.0}}, Hours(18));
  portal.ProcessAction(Read(7, 3, Hours(19)));
  portal.ProcessAction(Read(7, 11, Hours(19) + Minutes(10)));
  recs = portal.RecommendForUser(7, 3, Hours(20));
  std::printf("reader 7 at 20:00 -> ");
  for (const auto& r : recs) {
    std::printf(" item %lld (%.3f)", static_cast<long long>(r.item), r.score);
  }
  std::printf("   (tech now outranks this morning's sports)\n");

  // Two days later, the old catalog has expired; only fresh items serve.
  portal.RegisterItem(20, {{kTech, 1.0}}, Days(2) + Hours(12));
  recs = portal.RecommendForUser(7, 5, Days(2) + Hours(13));
  std::printf("reader 7 two days later -> %zu candidates (stale news "
              "expired; item 20 remains)\n",
              recs.size());
  for (const auto& r : recs) {
    std::printf("   item %lld (%.3f)\n", static_cast<long long>(r.item),
                r.score);
  }
  return 0;
}
