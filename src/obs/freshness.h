#ifndef TENCENTREC_OBS_FRESHNESS_H_
#define TENCENTREC_OBS_FRESHNESS_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace tencentrec {
class MetricRegistry;
}  // namespace tencentrec

namespace tencentrec::obs {

/// Event-time watermark tracking for the freshness half of the SLO plane.
///
/// Every stage of the processing path — the ingest edge (spouts/producers),
/// each topology bolt, each ParallelItemCf layer — owns one Slot per
/// instance and advances it with the `ingest_micros` stamp of the tuples it
/// has *fully processed* (state landed in the store / shard state applied).
/// The tracker derives per-stage watermarks and freshness lags from those
/// slots:
///
///   stage watermark  = max(retired watermark,
///                          min over live slots that have seen data)
///   stage lag        = now - watermark   (0 before any data)
///   end-to-end lag   = now - min over all stages' watermarks
///
/// The min-over-instances rule is the classic low-watermark: the stage has
/// durably processed *everything* stamped at or before it. Slots that have
/// not observed a single tuple are excluded (the idle-source rule — an
/// instance whose partition happens to be empty must not pin the stage at
/// zero). When a slot retires cleanly (topology teardown after a drained
/// run), its high-water mark folds into the stage's retired watermark: a
/// fully drained run has, by definition, processed everything it emitted.
///
/// Out-of-order `ingest_micros` are handled by Advance's monotone-max
/// semantics: late tuples (stamp below the slot's watermark) never move it
/// backwards, so the derived lag is pessimistic, never optimistic.
///
/// Advance is one relaxed atomic max (a CAS loop that almost always takes
/// zero iterations because stamps arrive nearly in order); stages and slots
/// are registered under a mutex, so resolve slots once at Prepare time and
/// advance on the hot path.
class FreshnessTracker {
 public:
  /// One instance's watermark register. Obtained from RegisterSlot; thread-
  /// safe to Advance from the owning worker while readers derive stage
  /// watermarks. Destroying the handle retires the slot (see Retire).
  class Slot {
   public:
    /// Monotone max: stamps at or below the current watermark are ignored
    /// (out-of-order/late data must never regress a watermark). Zero stamps
    /// (unstamped tuples) are ignored entirely.
    void Advance(uint64_t ingest_micros) {
      if (ingest_micros == 0) return;
      uint64_t cur = watermark_.load(std::memory_order_relaxed);
      while (ingest_micros > cur &&
             !watermark_.compare_exchange_weak(cur, ingest_micros,
                                               std::memory_order_relaxed)) {
      }
    }

    uint64_t watermark() const {
      return watermark_.load(std::memory_order_relaxed);
    }

   private:
    friend class FreshnessTracker;
    std::atomic<uint64_t> watermark_{0};
  };

  /// RAII slot handle: retires (and frees) the slot on destruction.
  class ScopedSlot {
   public:
    ScopedSlot() = default;
    ScopedSlot(FreshnessTracker* tracker, Slot* slot)
        : tracker_(tracker), slot_(slot) {}
    ~ScopedSlot() { reset(); }

    ScopedSlot(ScopedSlot&& other) noexcept
        : tracker_(other.tracker_), slot_(other.slot_) {
      other.tracker_ = nullptr;
      other.slot_ = nullptr;
    }
    ScopedSlot& operator=(ScopedSlot&& other) noexcept {
      if (this != &other) {
        reset();
        tracker_ = other.tracker_;
        slot_ = other.slot_;
        other.tracker_ = nullptr;
        other.slot_ = nullptr;
      }
      return *this;
    }

    ScopedSlot(const ScopedSlot&) = delete;
    ScopedSlot& operator=(const ScopedSlot&) = delete;

    void Advance(uint64_t ingest_micros) {
      if (slot_ != nullptr) slot_->Advance(ingest_micros);
    }
    Slot* get() const { return slot_; }
    explicit operator bool() const { return slot_ != nullptr; }

    void reset() {
      if (tracker_ != nullptr && slot_ != nullptr) {
        tracker_->Retire(slot_);
      }
      tracker_ = nullptr;
      slot_ = nullptr;
    }

   private:
    FreshnessTracker* tracker_ = nullptr;
    Slot* slot_ = nullptr;
  };

  struct StageLag {
    std::string stage;
    uint64_t watermark_micros = 0;  ///< 0 = no data observed yet
    uint64_t lag_micros = 0;        ///< now - watermark, 0 before data
    int live_slots = 0;
  };

  /// The process-wide tracker components advance into (mirrors
  /// MetricRegistry::Default()).
  static FreshnessTracker& Default();

  FreshnessTracker() = default;
  FreshnessTracker(const FreshnessTracker&) = delete;
  FreshnessTracker& operator=(const FreshnessTracker&) = delete;

  /// Registers one instance slot under `stage` (created on first use).
  /// The returned handle owns the slot; keep it for the instance's life.
  ScopedSlot RegisterSlot(const std::string& stage);

  /// Current low-watermark of `stage` (0 = unknown stage or no data).
  uint64_t StageWatermark(const std::string& stage) const;

  /// Per-stage lags at `now_micros` (callers pass MonoMicros(); tests pass
  /// a fixed instant for hand-computable values). Sorted by stage name.
  std::vector<StageLag> Lags(uint64_t now_micros) const;

  /// now - min over every stage's watermark; 0 until every registered
  /// stage has observed data (a pipeline that never ran is not "late").
  uint64_t EndToEndLag(uint64_t now_micros) const;

  /// Writes `freshness.<stage>.lag_us` / `.watermark_us` gauges plus
  /// `freshness.e2e.lag_us` into `registry` — the bridge that puts
  /// freshness on /vars and into the time-series ring. Typically invoked
  /// as a TimeSeriesStore pre-sample hook and at snapshot collection.
  void PublishGauges(MetricRegistry* registry, uint64_t now_micros) const;

  /// Drops every stage (tests; production stages live for the process).
  void Clear();

 private:
  struct Stage {
    std::string name;
    std::vector<std::unique_ptr<Slot>> slots;
    /// Folded high-water mark of cleanly retired slots.
    uint64_t retired_watermark = 0;
  };

  void Retire(Slot* slot);
  /// Derived watermark of one stage (mu_ held).
  static uint64_t WatermarkOf(const Stage& stage, int* live_slots);

  mutable std::mutex mu_;
  std::vector<Stage> stages_;
};

}  // namespace tencentrec::obs

#endif  // TENCENTREC_OBS_FRESHNESS_H_
