#include "obs/freshness.h"

#include <algorithm>

#include "common/metrics.h"

namespace tencentrec::obs {

FreshnessTracker& FreshnessTracker::Default() {
  static FreshnessTracker* tracker = new FreshnessTracker();
  return *tracker;
}

FreshnessTracker::ScopedSlot FreshnessTracker::RegisterSlot(
    const std::string& stage) {
  std::lock_guard<std::mutex> lock(mu_);
  Stage* target = nullptr;
  for (Stage& s : stages_) {
    if (s.name == stage) {
      target = &s;
      break;
    }
  }
  if (target == nullptr) {
    stages_.emplace_back();
    target = &stages_.back();
    target->name = stage;
  }
  target->slots.push_back(std::make_unique<Slot>());
  return ScopedSlot(this, target->slots.back().get());
}

void FreshnessTracker::Retire(Slot* slot) {
  std::lock_guard<std::mutex> lock(mu_);
  for (Stage& s : stages_) {
    for (auto it = s.slots.begin(); it != s.slots.end(); ++it) {
      if (it->get() == slot) {
        // A cleanly retired instance has processed everything it will ever
        // see: fold its high-water mark into the stage so a drained batch
        // run keeps its freshness after topology teardown.
        s.retired_watermark = std::max(s.retired_watermark, slot->watermark());
        s.slots.erase(it);
        return;
      }
    }
  }
}

uint64_t FreshnessTracker::WatermarkOf(const Stage& stage, int* live_slots) {
  uint64_t live_min = UINT64_MAX;
  int live = 0;
  for (const auto& slot : stage.slots) {
    const uint64_t w = slot->watermark();
    if (w == 0) continue;  // idle-source rule: no data yet, don't pin at 0
    live_min = std::min(live_min, w);
    ++live;
  }
  if (live_slots != nullptr) *live_slots = live;
  const uint64_t live_watermark = live > 0 ? live_min : 0;
  return std::max(stage.retired_watermark, live_watermark);
}

uint64_t FreshnessTracker::StageWatermark(const std::string& stage) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const Stage& s : stages_) {
    if (s.name == stage) return WatermarkOf(s, nullptr);
  }
  return 0;
}

std::vector<FreshnessTracker::StageLag> FreshnessTracker::Lags(
    uint64_t now_micros) const {
  std::vector<StageLag> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out.reserve(stages_.size());
    for (const Stage& s : stages_) {
      StageLag lag;
      lag.stage = s.name;
      lag.watermark_micros = WatermarkOf(s, &lag.live_slots);
      if (lag.watermark_micros > 0 && now_micros > lag.watermark_micros) {
        lag.lag_micros = now_micros - lag.watermark_micros;
      }
      out.push_back(std::move(lag));
    }
  }
  std::sort(out.begin(), out.end(),
            [](const StageLag& a, const StageLag& b) { return a.stage < b.stage; });
  return out;
}

uint64_t FreshnessTracker::EndToEndLag(uint64_t now_micros) const {
  uint64_t min_watermark = UINT64_MAX;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stages_.empty()) return 0;
    for (const Stage& s : stages_) {
      const uint64_t w = WatermarkOf(s, nullptr);
      if (w == 0) return 0;  // some stage never saw data: not "late"
      min_watermark = std::min(min_watermark, w);
    }
  }
  return now_micros > min_watermark ? now_micros - min_watermark : 0;
}

void FreshnessTracker::PublishGauges(MetricRegistry* registry,
                                     uint64_t now_micros) const {
  if (registry == nullptr) return;
  const std::vector<StageLag> lags = Lags(now_micros);
  for (const StageLag& lag : lags) {
    registry->GetGauge("freshness." + lag.stage + ".lag_us")
        ->Set(static_cast<int64_t>(lag.lag_micros));
    registry->GetGauge("freshness." + lag.stage + ".watermark_us")
        ->Set(static_cast<int64_t>(lag.watermark_micros));
  }
  if (!lags.empty()) {
    registry->GetGauge("freshness.e2e.lag_us")
        ->Set(static_cast<int64_t>(EndToEndLag(now_micros)));
  }
}

void FreshnessTracker::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  stages_.clear();
}

}  // namespace tencentrec::obs
