#include "obs/admin_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/logging.h"

namespace tencentrec::obs {

namespace {

const char* StatusText(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 503:
      return "Service Unavailable";
    default:
      return "OK";
  }
}

/// Writes the whole buffer, retrying on short writes/EINTR.
bool WriteAll(int fd, const char* data, size_t len) {
  size_t off = 0;
  while (off < len) {
    ssize_t n = ::write(fd, data + off, len - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

AdminServer::~AdminServer() { Stop(); }

void AdminServer::Route(const std::string& path, Handler handler) {
  for (auto& [p, h] : routes_) {
    if (p == path) {
      h = std::move(handler);
      return;
    }
  }
  routes_.emplace_back(path, std::move(handler));
}

Status AdminServer::Start() {
  if (listen_fd_ >= 0) return Status::FailedPrecondition("already started");

  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(std::string("socket: ") + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    ::close(fd);
    return Status::InvalidArgument("bad bind address: " +
                                   options_.bind_address);
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status s =
        Status::Internal(std::string("bind: ") + std::strerror(errno));
    ::close(fd);
    return s;
  }
  if (::listen(fd, options_.backlog) != 0) {
    Status s =
        Status::Internal(std::string("listen: ") + std::strerror(errno));
    ::close(fd);
    return s;
  }
  socklen_t addr_len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &addr_len) != 0) {
    Status s = Status::Internal(std::string("getsockname: ") +
                                std::strerror(errno));
    ::close(fd);
    return s;
  }
  port_ = ntohs(addr.sin_port);
  listen_fd_ = fd;
  stopping_.store(false);
  thread_ = std::thread([this] { Serve(); });
  TR_LOG(kInfo, "admin server listening on %s:%d",
         options_.bind_address.c_str(), port_);
  return Status::OK();
}

void AdminServer::Stop() {
  if (listen_fd_ < 0) return;
  stopping_.store(true);
  // shutdown() unblocks the accept(); close() alone can leave it parked.
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (thread_.joinable()) thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
}

void AdminServer::Serve() {
  while (!stopping_.load()) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listener shut down
    }
    HandleConnection(fd);
    ::close(fd);
  }
}

void AdminServer::HandleConnection(int fd) {
  // Read until the end of the request head; bodies are ignored (the ops
  // plane is GET-only) and oversized heads are rejected.
  std::string head;
  char buf[2048];
  while (head.find("\r\n\r\n") == std::string::npos &&
         head.find("\n\n") == std::string::npos) {
    ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return;  // peer went away mid-request
    }
    head.append(buf, static_cast<size_t>(n));
    if (head.size() > 16 * 1024) break;
  }

  Request req;
  Response resp;
  const size_t line_end = head.find_first_of("\r\n");
  const std::string request_line =
      line_end == std::string::npos ? head : head.substr(0, line_end);
  const size_t sp1 = request_line.find(' ');
  const size_t sp2 =
      sp1 == std::string::npos ? std::string::npos
                               : request_line.find(' ', sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos) {
    resp.status = 400;
    resp.body = "malformed request line\n";
  } else {
    req.method = request_line.substr(0, sp1);
    std::string target = request_line.substr(sp1 + 1, sp2 - sp1 - 1);
    const size_t q = target.find('?');
    if (q != std::string::npos) {
      req.query = target.substr(q + 1);
      target.resize(q);
    }
    req.path = std::move(target);

    const Handler* handler = nullptr;
    for (const auto& [path, h] : routes_) {
      if (path == req.path) {
        handler = &h;
        break;
      }
    }
    if (handler == nullptr) {
      resp.status = 404;
      resp.body = "no such endpoint: " + req.path + "\n";
    } else {
      resp = (*handler)(req);
    }
  }

  requests_served_.fetch_add(1, std::memory_order_relaxed);
  char header[256];
  int hn = std::snprintf(header, sizeof(header),
                         "HTTP/1.1 %d %s\r\n"
                         "Content-Type: %s\r\n"
                         "Content-Length: %zu\r\n"
                         "Connection: close\r\n"
                         "\r\n",
                         resp.status, StatusText(resp.status),
                         resp.content_type.c_str(), resp.body.size());
  if (hn <= 0) return;
  if (!WriteAll(fd, header, static_cast<size_t>(hn))) return;
  WriteAll(fd, resp.body.data(), resp.body.size());
}

}  // namespace tencentrec::obs
