#include "obs/admin_server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

#include "common/logging.h"
#include "common/stage.h"

namespace tencentrec::obs {

namespace {

const char* StatusText(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 503:
      return "Service Unavailable";
    default:
      return "OK";
  }
}

/// Writes the whole buffer, retrying on short writes/EINTR.
bool WriteAll(int fd, const char* data, size_t len) {
  size_t off = 0;
  while (off < len) {
    ssize_t n = ::write(fd, data + off, len - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<size_t>(n);
  }
  return true;
}

void SetIoTimeouts(int fd, int timeout_ms) {
  if (timeout_ms <= 0) return;
  timeval tv{};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

}  // namespace

AdminServer::~AdminServer() { Stop(); }

void AdminServer::Route(const std::string& path, Handler handler) {
  for (auto& [p, h] : routes_) {
    if (p == path) {
      h = std::move(handler);
      return;
    }
  }
  routes_.emplace_back(path, std::move(handler));
}

Status AdminServer::Start() {
  if (listen_fd_ >= 0) return Status::FailedPrecondition("already started");

  if (::pipe(wake_pipe_) != 0) {
    return Status::Internal(std::string("pipe: ") + std::strerror(errno));
  }
  // Non-blocking read end: the accept loop drains wake bytes opportunistically
  // and must never park on the pipe itself.
  ::fcntl(wake_pipe_[0], F_SETFL,
          ::fcntl(wake_pipe_[0], F_GETFL, 0) | O_NONBLOCK);

  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    Status s = Status::Internal(std::string("socket: ") + std::strerror(errno));
    ::close(wake_pipe_[0]);
    ::close(wake_pipe_[1]);
    wake_pipe_[0] = wake_pipe_[1] = -1;
    return s;
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  Status err = Status::OK();
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    err = Status::InvalidArgument("bad bind address: " + options_.bind_address);
  } else if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
             0) {
    err = Status::Internal(std::string("bind: ") + std::strerror(errno));
  } else if (::listen(fd, options_.backlog) != 0) {
    err = Status::Internal(std::string("listen: ") + std::strerror(errno));
  } else {
    socklen_t addr_len = sizeof(addr);
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &addr_len) != 0) {
      err = Status::Internal(std::string("getsockname: ") +
                             std::strerror(errno));
    }
  }
  if (!err.ok()) {
    ::close(fd);
    ::close(wake_pipe_[0]);
    ::close(wake_pipe_[1]);
    wake_pipe_[0] = wake_pipe_[1] = -1;
    return err;
  }
  port_ = ntohs(addr.sin_port);
  listen_fd_ = fd;
  stopping_.store(false);
  serve_done_.store(false);
  thread_ = std::thread([this] { Serve(); });
  TR_LOG(kInfo, "admin server listening on %s:%d",
         options_.bind_address.c_str(), port_);
  return Status::OK();
}

void AdminServer::RequestStop() {
  // Async-signal-safe: one lock-free atomic store plus one write(2) into
  // the self-pipe to wake poll(). Safe to call from a SIGTERM handler.
  stopping_.store(true, std::memory_order_relaxed);
  if (wake_pipe_[1] >= 0) {
    const char byte = 'q';
    ssize_t ignored = ::write(wake_pipe_[1], &byte, 1);
    (void)ignored;
  }
}

void AdminServer::Stop() {
  if (listen_fd_ < 0) return;
  RequestStop();

  // Drain: give the in-flight handler (if any) the deadline to finish, then
  // force the connection shut so a wedged peer can't hold shutdown hostage.
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(options_.drain_deadline_ms);
  while (!serve_done_.load(std::memory_order_acquire) &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  if (!serve_done_.load(std::memory_order_acquire)) {
    const int fd = active_fd_.load(std::memory_order_acquire);
    if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
  }

  if (thread_.joinable()) thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
  ::close(wake_pipe_[0]);
  ::close(wake_pipe_[1]);
  wake_pipe_[0] = wake_pipe_[1] = -1;
}

void AdminServer::Serve() {
  RegisterStageThread("obs.admin");
  pollfd fds[2];
  fds[0].fd = listen_fd_;
  fds[0].events = POLLIN;
  fds[1].fd = wake_pipe_[0];
  fds[1].events = POLLIN;

  while (!stopping_.load(std::memory_order_relaxed)) {
    fds[0].revents = 0;
    fds[1].revents = 0;
    const int rc = ::poll(fds, 2, -1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (stopping_.load(std::memory_order_relaxed)) break;
    if ((fds[1].revents & POLLIN) != 0) {
      char drain[16];
      while (::read(wake_pipe_[0], drain, sizeof(drain)) > 0) {
      }
      continue;  // woken without stop: re-check and re-poll
    }
    if ((fds[0].revents & POLLIN) == 0) continue;
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listener shut down
    }
    SetIoTimeouts(fd, options_.io_timeout_ms);
    active_fd_.store(fd, std::memory_order_release);
    HandleConnection(fd);
    active_fd_.store(-1, std::memory_order_release);
    ::close(fd);
  }
  serve_done_.store(true, std::memory_order_release);
}

void AdminServer::HandleConnection(int fd) {
  // Read until the end of the request head; bodies are ignored (the ops
  // plane is GET-only) and oversized heads are rejected.
  std::string head;
  char buf[2048];
  while (head.find("\r\n\r\n") == std::string::npos &&
         head.find("\n\n") == std::string::npos) {
    ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return;  // peer went away mid-request (or SO_RCVTIMEO fired)
    }
    head.append(buf, static_cast<size_t>(n));
    if (head.size() > 16 * 1024) break;
  }

  Request req;
  Response resp;
  const size_t line_end = head.find_first_of("\r\n");
  const std::string request_line =
      line_end == std::string::npos ? head : head.substr(0, line_end);
  const size_t sp1 = request_line.find(' ');
  const size_t sp2 =
      sp1 == std::string::npos ? std::string::npos
                               : request_line.find(' ', sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos) {
    resp.status = 400;
    resp.body = "malformed request line\n";
  } else {
    req.method = request_line.substr(0, sp1);
    std::string target = request_line.substr(sp1 + 1, sp2 - sp1 - 1);
    const size_t q = target.find('?');
    if (q != std::string::npos) {
      req.query = target.substr(q + 1);
      target.resize(q);
    }
    req.path = std::move(target);

    const Handler* handler = nullptr;
    for (const auto& [path, h] : routes_) {
      if (path == req.path) {
        handler = &h;
        break;
      }
    }
    if (handler == nullptr) {
      resp.status = 404;
      resp.body = "no such endpoint: " + req.path + "\n";
    } else {
      resp = (*handler)(req);
    }
  }

  requests_served_.fetch_add(1, std::memory_order_relaxed);
  char header[256];
  int hn = std::snprintf(header, sizeof(header),
                         "HTTP/1.1 %d %s\r\n"
                         "Content-Type: %s\r\n"
                         "Content-Length: %zu\r\n"
                         "Connection: close\r\n"
                         "\r\n",
                         resp.status, StatusText(resp.status),
                         resp.content_type.c_str(), resp.body.size());
  if (hn <= 0) return;
  if (!WriteAll(fd, header, static_cast<size_t>(hn))) return;
  WriteAll(fd, resp.body.data(), resp.body.size());
}

}  // namespace tencentrec::obs
