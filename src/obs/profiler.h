#ifndef TENCENTREC_OBS_PROFILER_H_
#define TENCENTREC_OBS_PROFILER_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/stage.h"

namespace tencentrec {
namespace obs {

/// In-process continuous CPU profiler (DESIGN.md §13) — the on-CPU half of
/// the profiling plane. One SIGPROF interval timer per registered stage
/// thread, armed against that thread's CPU-time clock, so a thread is only
/// sampled in proportion to the cycles it actually burns (blocked threads
/// cost nothing — their story is told by ProfiledMutex instead).
///
/// The signal handler is strictly async-signal-safe: it walks the frame
///-pointer chain out of the interrupted ucontext (bounds-checked against
/// the thread's stack, captured at timer attach), attributes the sample to
/// the thread's registered stage, and appends raw pcs into a lock-free
/// per-thread ring of relaxed atomics. No allocation, no locks, no lazy
/// TLS init, no clock reads. errno is preserved.
///
/// Everything expensive — draining rings, stack dedup, dladdr +
/// __cxa_demangle symbolization, folded/JSON formatting — happens lazily
/// on the collector (admin) thread, never in the signal path.
class Profiler {
 public:
  static constexpr int kMaxFrames = 32;

  struct Options {
    /// Per-thread sampling frequency. A prime default avoids lockstep with
    /// millisecond-periodic work (timers, pollers) that would bias samples.
    int hz = 97;
  };

  /// Process-wide instance; installs the stage lifecycle hooks on first use.
  static Profiler& Instance();

  /// Kill switch (the `profile.enabled` control): while false, Start()
  /// refuses and windowed collection reports the profiler as disabled.
  /// Flipping it false while running stops the profiler.
  void SetEnabled(bool enabled);
  bool Enabled() const;

  /// Installs the SIGPROF handler (once, never uninstalled — stop/start
  /// is gated by an atomic the handler checks, so a late in-flight signal
  /// can never hit SIG_DFL and kill the process) and attaches a CPU-time
  /// timer to every currently registered stage thread. Threads that
  /// register later get timers via the stage lifecycle hook. Returns false
  /// if disabled or already running.
  bool Start(const Options& opts);
  bool Start() { return Start(Options()); }

  /// Disarms and deletes all per-thread timers and clears the running flag.
  void Stop();

  bool running() const;
  int hz() const;

  /// One deduplicated call stack: `pcs` are raw return addresses,
  /// innermost first, attributed to `stage`; `count` samples landed here.
  struct StackSample {
    uint16_t stage = 0;
    std::vector<uintptr_t> pcs;
    uint64_t count = 0;
  };

  /// Drained + aggregated view of a collection window.
  struct Aggregate {
    uint64_t total = 0;        ///< samples drained into this aggregate
    uint64_t dropped = 0;      ///< lost to ring overwrite before drain
    std::array<uint64_t, kMaxStages> stage_samples{};  ///< per-stage counts
    std::vector<StackSample> stacks;  ///< deduped by (stage, pc sequence)
  };

  /// Discards pending samples, observes for `seconds` of wall time
  /// (draining rings periodically so they cannot overflow mid-window),
  /// then returns the aggregated window. Blocks the calling thread —
  /// served from the admin accept thread, which is single-request by
  /// design (documented endpoint semantics). Returns an empty aggregate
  /// if the profiler is not running.
  Aggregate CollectWindow(double seconds);

  /// Collapsed-stack ("folded") output: one line per deduped stack,
  /// root-first, `stage;outer;...;inner count\n` — pipe straight into
  /// flamegraph.pl. Symbolization is cached across calls.
  static std::string Folded(const Aggregate& agg);

  /// JSON rollup: window totals plus per-stage sample counts and shares.
  static std::string Json(const Aggregate& agg);

  /// Symbolizes a return address: dladdr on pc-1 (so the lookup lands
  /// inside the calling instruction's function), __cxa_demangle, cached.
  /// Unknown addresses render as hex.
  static std::string SymbolizePc(uintptr_t pc);

  /// Publishes `profile.cpu_share.<stage>` gauges (basis points of samples
  /// since the previous publish) into MetricRegistry::Default(). Wired as
  /// a TimeSeriesStore pre-sample hook by the engine, so CPU share is
  /// queryable via /timeseries like any other series.
  void PublishGauges();

  /// Lifetime handler-side sample counts (survive ring overflow; the
  /// attribution acceptance test reads these).
  uint64_t total_samples() const;
  uint64_t stage_samples(uint16_t stage) const;

  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

 private:
  Profiler();
};

}  // namespace obs
}  // namespace tencentrec

#endif  // TENCENTREC_OBS_PROFILER_H_
