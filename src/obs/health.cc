#include "obs/health.h"

#include <cstdio>

namespace tencentrec::obs {

namespace {

void AppendJsonString(std::string* out, const std::string& s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

}  // namespace

void HealthRegistry::Set(const std::string& component, bool healthy,
                         const std::string& reason, bool affects_readiness) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& e : entries_) {
    if (e.component == component) {
      e.healthy = healthy;
      e.reason = healthy ? "" : reason;
      e.affects_readiness = affects_readiness;
      return;
    }
  }
  entries_.push_back(
      {component, healthy, healthy ? "" : reason, affects_readiness});
}

void HealthRegistry::Clear(const std::string& component) {
  std::lock_guard<std::mutex> lock(mu_);
  std::erase_if(entries_,
                [&](const Entry& e) { return e.component == component; });
}

bool HealthRegistry::Healthy() const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& e : entries_) {
    if (!e.healthy) return false;
  }
  return true;
}

void HealthRegistry::SetReady(bool ready) {
  std::lock_guard<std::mutex> lock(mu_);
  ready_ = ready;
}

bool HealthRegistry::Ready() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (!ready_) return false;
  for (const auto& e : entries_) {
    if (e.affects_readiness && !e.healthy) return false;
  }
  return true;
}

std::vector<HealthRegistry::Entry> HealthRegistry::Entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_;
}

std::string HealthRegistry::Json() const {
  std::lock_guard<std::mutex> lock(mu_);
  bool healthy = true;
  bool ready = ready_;
  for (const auto& e : entries_) {
    healthy = healthy && e.healthy;
    if (e.affects_readiness && !e.healthy) ready = false;
  }
  std::string out = "{\"status\":";
  out += healthy ? "\"ok\"" : "\"degraded\"";
  out += ",\"ready\":";
  out += ready ? "true" : "false";
  out += ",\"components\":[";
  for (size_t i = 0; i < entries_.size(); ++i) {
    if (i != 0) out += ',';
    out += "{\"component\":";
    AppendJsonString(&out, entries_[i].component);
    out += ",\"healthy\":";
    out += entries_[i].healthy ? "true" : "false";
    if (!entries_[i].reason.empty()) {
      out += ",\"reason\":";
      AppendJsonString(&out, entries_[i].reason);
    }
    if (entries_[i].affects_readiness) out += ",\"gates_readiness\":true";
    out += '}';
  }
  out += "]}";
  return out;
}

}  // namespace tencentrec::obs
