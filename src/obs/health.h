#ifndef TENCENTREC_OBS_HEALTH_H_
#define TENCENTREC_OBS_HEALTH_H_

#include <mutex>
#include <string>
#include <vector>

namespace tencentrec::obs {

/// Thread-safe component health registry behind /healthz and /readyz.
///
/// Liveness (`Healthy()`) is the AND over per-component verdicts: anything
/// that can detect its own distress — the stall watchdog, a consumer that
/// lost its subscription — files Set(component, false, reason), and clears
/// it when the condition recovers. Readiness (`Ready()`) is the engine's
/// boot-complete switch ANDed with every entry filed with
/// `affects_readiness`: SLO breaches register that way, so a breached
/// serving objective pulls the instance out of rotation (/readyz → 503)
/// while liveness (/healthz restart signal) reflects only `healthy`.
class HealthRegistry {
 public:
  struct Entry {
    std::string component;
    bool healthy = true;
    std::string reason;  ///< non-empty only when unhealthy
    bool affects_readiness = false;  ///< unhealthy also fails Ready()
  };

  /// Files or updates a component's verdict. Unknown components are added.
  /// `affects_readiness` marks the entry as readiness-gating (sticky per
  /// call — pass it on every Set for that component).
  void Set(const std::string& component, bool healthy,
           const std::string& reason = "", bool affects_readiness = false);

  /// Removes a component's entry entirely (component shut down cleanly).
  void Clear(const std::string& component);

  /// True iff every registered component is healthy (an empty registry is
  /// healthy — no news is good news).
  bool Healthy() const;

  void SetReady(bool ready);
  /// ready switch AND every affects_readiness entry healthy.
  bool Ready() const;

  std::vector<Entry> Entries() const;

  /// {"status":"ok"|"degraded","ready":bool,"components":[...]}
  std::string Json() const;

 private:
  mutable std::mutex mu_;
  std::vector<Entry> entries_;
  bool ready_ = false;
};

}  // namespace tencentrec::obs

#endif  // TENCENTREC_OBS_HEALTH_H_
