#include "obs/profiler.h"

#include <cxxabi.h>
#include <dlfcn.h>
#include <errno.h>
#include <pthread.h>
#include <signal.h>
#include <time.h>
#include <ucontext.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <mutex>
#include <unordered_map>

#include "common/metrics.h"

// Older glibc exposes the SIGEV_THREAD_ID target tid only through the
// union member, without the POSIX-proposed accessor macro.
#ifndef sigev_notify_thread_id
#define sigev_notify_thread_id _sigev_un._tid
#endif

namespace tencentrec {
namespace obs {
namespace {

constexpr int kRingEntries = 1024;  // power of two, ~200ms of headroom even
                                    // at the smoke test's ~1kHz rate
constexpr uint64_t kRingMask = kRingEntries - 1;

// One captured sample. All fields are relaxed atomics so the handler's
// stores and the collector's loads are both race-free under TSan and
// async-signal-safe; a wrap-around overwrite concurrent with a drain can
// at worst mix two stacks' frames, never tear a word.
struct SampleEntry {
  std::atomic<uint32_t> depth{0};
  std::atomic<uint32_t> stage{0};
  std::atomic<uintptr_t> pcs[Profiler::kMaxFrames] = {};
};

// Per-thread-slot sample ring. The handler (owner thread only) writes
// entries and advances head; the single collector owns tail. stack_lo/hi
// bound the frame-pointer walk so every dereference in the handler lands
// in mapped stack memory.
struct SampleRing {
  std::atomic<uint64_t> head{0};
  uint64_t tail = 0;  // collector-only
  std::atomic<uintptr_t> stack_lo{0};
  std::atomic<uintptr_t> stack_hi{0};
  SampleEntry entries[kRingEntries];
};

// Handler-visible state: plain file-scope statics (no lazy init in the
// signal path).
std::atomic<bool> g_running{false};
std::atomic<bool> g_enabled{true};
std::atomic<int> g_hz{97};
std::atomic<uint64_t> g_total_samples{0};
std::atomic<uint64_t> g_truncated{0};
std::atomic<uint64_t> g_stage_samples[kMaxStages] = {};
std::atomic<SampleRing*> g_rings[kMaxStageThreads] = {};

// Lock order: Start/Stop serialize on g_control_mu; the stage-registry
// lock (held around lifecycle hooks and VisitStageThreads) nests inside
// it; g_timer_mu nests innermost.
std::mutex g_control_mu;
std::mutex g_timer_mu;
std::mutex g_collect_mu;

struct TimerSlot {
  bool armed = false;
  timer_t timer{};
};
TimerSlot g_timers[kMaxStageThreads];

void SigprofHandler(int /*sig*/, siginfo_t* /*info*/, void* ucv) {
  if (!g_running.load(std::memory_order_relaxed)) return;
  const int saved_errno = errno;

  const uint16_t raw_stage = CurrentStage();
  const uint16_t stage = raw_stage < kMaxStages ? raw_stage : 0;
  g_total_samples.fetch_add(1, std::memory_order_relaxed);
  g_stage_samples[stage].fetch_add(1, std::memory_order_relaxed);

  const int slot = CurrentStageSlot();
  SampleRing* ring = (slot >= 0 && slot < kMaxStageThreads)
                         ? g_rings[slot].load(std::memory_order_relaxed)
                         : nullptr;
  if (ring == nullptr) {
    errno = saved_errno;
    return;
  }

  uintptr_t frames[Profiler::kMaxFrames];
  int depth = 0;
#if defined(__x86_64__)
  const auto* uc = static_cast<const ucontext_t*>(ucv);
  const uintptr_t pc = static_cast<uintptr_t>(uc->uc_mcontext.gregs[REG_RIP]);
  const uintptr_t sp = static_cast<uintptr_t>(uc->uc_mcontext.gregs[REG_RSP]);
  uintptr_t fp = static_cast<uintptr_t>(uc->uc_mcontext.gregs[REG_RBP]);
  frames[depth++] = pc;

  // Frame-pointer walk (the tree is compiled -fno-omit-frame-pointer).
  // Every load is bounds-checked into [max(sp, stack_lo), stack_hi), so a
  // bogus rbp (leaf frame, foreign library code) terminates the walk
  // instead of faulting; the chain must also strictly ascend.
  const uintptr_t lo = ring->stack_lo.load(std::memory_order_relaxed);
  const uintptr_t hi = ring->stack_hi.load(std::memory_order_relaxed);
  const uintptr_t floor_addr = sp > lo ? sp : lo;
  while (depth < Profiler::kMaxFrames) {
    if (fp < floor_addr || (fp & 0x7) != 0 ||
        fp + 2 * sizeof(uintptr_t) > hi) {
      break;
    }
    const uintptr_t ret =
        *reinterpret_cast<const uintptr_t*>(fp + sizeof(uintptr_t));
    const uintptr_t next = *reinterpret_cast<const uintptr_t*>(fp);
    if (ret < 0x1000) break;  // return into the zero page: not a frame
    frames[depth++] = ret;
    if (next <= fp) break;
    fp = next;
  }
  if (depth == Profiler::kMaxFrames) {
    g_truncated.fetch_add(1, std::memory_order_relaxed);
  }
#else
  (void)ucv;
  frames[depth++] = 0;  // stage attribution still works without a stack
#endif

  const uint64_t h = ring->head.load(std::memory_order_relaxed);
  SampleEntry& e = ring->entries[h & kRingMask];
  e.stage.store(stage, std::memory_order_relaxed);
  for (int i = 0; i < depth; ++i) {
    e.pcs[i].store(frames[i], std::memory_order_relaxed);
  }
  e.depth.store(static_cast<uint32_t>(depth), std::memory_order_relaxed);
  ring->head.store(h + 1, std::memory_order_release);
  errno = saved_errno;
}

void InstallHandlerOnce() {
  static std::once_flag once;
  std::call_once(once, [] {
    struct sigaction sa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sa_sigaction = SigprofHandler;
    sa.sa_flags = SA_SIGINFO | SA_RESTART;
    sigemptyset(&sa.sa_mask);
    sigaction(SIGPROF, &sa, nullptr);
  });
}

// Allocates (once per slot) the ring and refreshes the slot occupant's
// stack bounds. Runs on a normal thread context, never in the handler.
void EnsureRing(const StageThreadInfo& info) {
  if (info.slot >= kMaxStageThreads) return;
  SampleRing* ring = g_rings[info.slot].load(std::memory_order_acquire);
  if (ring == nullptr) {
    ring = new SampleRing();
    g_rings[info.slot].store(ring, std::memory_order_release);
  }
  pthread_attr_t attr;
  if (pthread_getattr_np(info.handle, &attr) == 0) {
    void* addr = nullptr;
    size_t size = 0;
    if (pthread_attr_getstack(&attr, &addr, &size) == 0 && addr != nullptr) {
      ring->stack_lo.store(reinterpret_cast<uintptr_t>(addr),
                           std::memory_order_relaxed);
      ring->stack_hi.store(reinterpret_cast<uintptr_t>(addr) + size,
                           std::memory_order_relaxed);
    }
    pthread_attr_destroy(&attr);
  }
}

bool ArmTimer(const StageThreadInfo& info) {
  if (info.slot >= kMaxStageThreads) return false;
  std::lock_guard<std::mutex> lock(g_timer_mu);
  TimerSlot& ts = g_timers[info.slot];
  if (ts.armed) return true;

  clockid_t clk;
  if (pthread_getcpuclockid(info.handle, &clk) != 0) return false;

  struct sigevent sev;
  std::memset(&sev, 0, sizeof(sev));
  sev.sigev_notify = SIGEV_THREAD_ID;
  sev.sigev_signo = SIGPROF;
  sev.sigev_notify_thread_id = info.tid;

  timer_t timer;
  if (timer_create(clk, &sev, &timer) != 0) return false;

  const long period_ns =
      1000000000L / std::max(1, g_hz.load(std::memory_order_relaxed));
  struct itimerspec its;
  std::memset(&its, 0, sizeof(its));
  its.it_interval.tv_sec = period_ns / 1000000000L;
  its.it_interval.tv_nsec = period_ns % 1000000000L;
  its.it_value = its.it_interval;
  if (timer_settime(timer, 0, &its, nullptr) != 0) {
    timer_delete(timer);
    return false;
  }
  ts.armed = true;
  ts.timer = timer;
  return true;
}

void DisarmTimer(uint16_t slot) {
  if (slot >= kMaxStageThreads) return;
  std::lock_guard<std::mutex> lock(g_timer_mu);
  TimerSlot& ts = g_timers[slot];
  if (!ts.armed) return;
  timer_delete(ts.timer);
  ts.armed = false;
}

void DisarmAllTimers() {
  std::lock_guard<std::mutex> lock(g_timer_mu);
  for (TimerSlot& ts : g_timers) {
    if (!ts.armed) continue;
    timer_delete(ts.timer);
    ts.armed = false;
  }
}

void Appendf(std::string* out, const char* fmt, ...) {
  char buf[512];
  va_list args;
  va_start(args, fmt);
  const int n = vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  if (n > 0) {
    out->append(buf, static_cast<size_t>(n) < sizeof(buf)
                         ? static_cast<size_t>(n)
                         : sizeof(buf) - 1);
  }
}

// Stack identity for dedup: [stage, pc0, pc1, ...]. An ordered map keeps
// Folded() output deterministic for a given sample set.
using StackCounts = std::map<std::vector<uintptr_t>, uint64_t>;

// Drains every ring into (agg, stacks). Caller holds g_collect_mu — tail
// cursors are collector-owned.
void DrainAll(Profiler::Aggregate* agg, StackCounts* stacks) {
  for (int slot = 0; slot < kMaxStageThreads; ++slot) {
    SampleRing* ring = g_rings[slot].load(std::memory_order_acquire);
    if (ring == nullptr) continue;
    const uint64_t head = ring->head.load(std::memory_order_acquire);
    uint64_t tail = ring->tail;
    if (head - tail > kRingEntries) {
      agg->dropped += head - tail - kRingEntries;
      tail = head - kRingEntries;
    }
    std::vector<uintptr_t> key;
    for (; tail != head; ++tail) {
      const SampleEntry& e = ring->entries[tail & kRingMask];
      const uint32_t depth = e.depth.load(std::memory_order_relaxed);
      if (depth == 0 || depth > Profiler::kMaxFrames) continue;
      const uint32_t stage = e.stage.load(std::memory_order_relaxed);
      key.clear();
      key.reserve(depth + 1);
      key.push_back(stage);
      for (uint32_t i = 0; i < depth; ++i) {
        key.push_back(e.pcs[i].load(std::memory_order_relaxed));
      }
      ++(*stacks)[key];
      ++agg->total;
      if (stage < kMaxStages) ++agg->stage_samples[stage];
    }
    ring->tail = head;
  }
}

// Fast-forwards every tail to head, discarding samples from before the
// window opened. Caller holds g_collect_mu.
void DiscardPending() {
  for (int slot = 0; slot < kMaxStageThreads; ++slot) {
    SampleRing* ring = g_rings[slot].load(std::memory_order_acquire);
    if (ring == nullptr) continue;
    ring->tail = ring->head.load(std::memory_order_acquire);
  }
}

// Folded frames must not contain the frame separator or newlines;
// flamegraph.pl splits frames on ';' and takes the trailing integer as
// the count, so spaces inside demangled names are fine.
void SanitizeFrame(std::string* name) {
  for (char& c : *name) {
    if (c == ';') c = ':';
    if (c == '\n' || c == '\r') c = ' ';
  }
}

uint64_t g_last_published[kMaxStages] = {};
std::mutex g_publish_mu;

}  // namespace

Profiler::Profiler() {
  // Lifecycle hooks run under the stage-registry lock: a thread that
  // registers while the profiler is running arms its own timer (the hook
  // executes on the registering thread); an exiting thread disarms its
  // timer before its CPU clock dies with it.
  SetStageThreadHooks(
      [](const StageThreadInfo& info) {
        if (!g_running.load(std::memory_order_acquire)) return;
        EnsureRing(info);
        ArmTimer(info);
      },
      [](const StageThreadInfo& info) { DisarmTimer(info.slot); });
}

Profiler& Profiler::Instance() {
  static Profiler* p = new Profiler();
  return *p;
}

void Profiler::SetEnabled(bool enabled) {
  g_enabled.store(enabled, std::memory_order_relaxed);
  if (!enabled) Stop();
}

bool Profiler::Enabled() const {
  return g_enabled.load(std::memory_order_relaxed);
}

bool Profiler::Start(const Options& opts) {
  std::lock_guard<std::mutex> control(g_control_mu);
  if (!g_enabled.load(std::memory_order_relaxed)) return false;
  if (g_running.load(std::memory_order_relaxed)) return false;
  InstallHandlerOnce();
  g_hz.store(std::min(10000, std::max(1, opts.hz)),
             std::memory_order_relaxed);
  // Publish the running flag before visiting, so a thread registering
  // concurrently is armed by its hook even if the visit misses it; ArmTimer
  // is idempotent per slot, so double-arming is impossible.
  g_running.store(true, std::memory_order_release);
  VisitStageThreads([](const StageThreadInfo& info) {
    EnsureRing(info);
    ArmTimer(info);
  });
  return true;
}

void Profiler::Stop() {
  std::lock_guard<std::mutex> control(g_control_mu);
  if (!g_running.exchange(false, std::memory_order_acq_rel)) return;
  // The handler stays installed forever; a signal already in flight sees
  // g_running == false and returns. Restoring SIG_DFL here would turn
  // that same late signal into process death.
  DisarmAllTimers();
}

bool Profiler::running() const {
  return g_running.load(std::memory_order_relaxed);
}

int Profiler::hz() const { return g_hz.load(std::memory_order_relaxed); }

Profiler::Aggregate Profiler::CollectWindow(double seconds) {
  Aggregate agg;
  if (!running()) return agg;
  std::lock_guard<std::mutex> collect(g_collect_mu);

  DiscardPending();
  StackCounts stacks;
  const uint64_t deadline =
      MonoMicros() + static_cast<uint64_t>(seconds * 1e6);
  // Drain every ~200ms so even the smoke test's ~1kHz timers cannot wrap
  // a ring between drains.
  for (;;) {
    const uint64_t now = MonoMicros();
    if (now >= deadline) break;
    const uint64_t remaining = deadline - now;
    ::usleep(static_cast<useconds_t>(std::min<uint64_t>(remaining, 200000)));
    DrainAll(&agg, &stacks);
  }

  agg.stacks.reserve(stacks.size());
  for (const auto& [key, count] : stacks) {
    StackSample s;
    s.stage = static_cast<uint16_t>(key[0]);
    s.pcs.assign(key.begin() + 1, key.end());
    s.count = count;
    agg.stacks.push_back(std::move(s));
  }
  std::stable_sort(agg.stacks.begin(), agg.stacks.end(),
                   [](const StackSample& a, const StackSample& b) {
                     return a.count > b.count;
                   });
  return agg;
}

std::string Profiler::SymbolizePc(uintptr_t pc) {
  static std::mutex mu;
  static auto* cache = new std::unordered_map<uintptr_t, std::string>();
  std::lock_guard<std::mutex> lock(mu);
  auto it = cache->find(pc);
  if (it != cache->end()) return it->second;

  std::string name;
  Dl_info info;
  std::memset(&info, 0, sizeof(info));
  // pc is a return address (or an interrupted RIP): back up one byte so
  // the lookup lands inside the call instruction's function, not on the
  // first byte of whatever follows it.
  if (dladdr(reinterpret_cast<void*>(pc - 1), &info) != 0 &&
      info.dli_sname != nullptr) {
    int status = -1;
    char* demangled =
        abi::__cxa_demangle(info.dli_sname, nullptr, nullptr, &status);
    name = (status == 0 && demangled != nullptr) ? demangled
                                                 : info.dli_sname;
    std::free(demangled);
    SanitizeFrame(&name);
  } else {
    Appendf(&name, "0x%zx", static_cast<size_t>(pc));
  }
  (*cache)[pc] = name;
  return name;
}

std::string Profiler::Folded(const Aggregate& agg) {
  std::string out;
  for (const StackSample& s : agg.stacks) {
    const std::string_view stage = StageName(s.stage);
    out.append(stage.data(), stage.size());
    // Captured innermost-first; folded format is root-first with the
    // stage as the synthetic root.
    for (auto it = s.pcs.rbegin(); it != s.pcs.rend(); ++it) {
      out += ';';
      out += SymbolizePc(*it);
    }
    Appendf(&out, " %llu\n", static_cast<unsigned long long>(s.count));
  }
  return out;
}

std::string Profiler::Json(const Aggregate& agg) {
  // Per-stage rollup, largest share first.
  std::vector<std::pair<uint16_t, uint64_t>> stages;
  for (uint16_t i = 0; i < kMaxStages; ++i) {
    if (agg.stage_samples[i] > 0) stages.emplace_back(i, agg.stage_samples[i]);
  }
  std::stable_sort(stages.begin(), stages.end(),
                   [](const auto& a, const auto& b) {
                     return a.second > b.second;
                   });

  std::string out;
  Appendf(&out,
          "{\"total_samples\":%llu,\"dropped\":%llu,\"unique_stacks\":%zu,"
          "\"stages\":[",
          static_cast<unsigned long long>(agg.total),
          static_cast<unsigned long long>(agg.dropped), agg.stacks.size());
  bool first = true;
  for (const auto& [stage, samples] : stages) {
    if (!first) out += ",";
    first = false;
    const std::string_view name = StageName(stage);
    Appendf(&out, "{\"stage\":\"%.*s\",\"samples\":%llu,\"share\":%.4f}",
            static_cast<int>(name.size()), name.data(),
            static_cast<unsigned long long>(samples),
            agg.total > 0
                ? static_cast<double>(samples) / static_cast<double>(agg.total)
                : 0.0);
  }
  out += "]}";
  return out;
}

void Profiler::PublishGauges() {
  std::lock_guard<std::mutex> lock(g_publish_mu);
  uint64_t cur[kMaxStages];
  uint64_t delta[kMaxStages];
  uint64_t total_delta = 0;
  for (uint16_t i = 0; i < kMaxStages; ++i) {
    cur[i] = g_stage_samples[i].load(std::memory_order_relaxed);
    delta[i] = cur[i] - g_last_published[i];
    total_delta += delta[i];
  }
  if (total_delta == 0) return;
  const std::vector<std::string> names = StageNames();
  for (uint16_t i = 0; i < names.size() && i < kMaxStages; ++i) {
    // Skip stages that have never been sampled: no gauge churn for idle
    // interned names.
    if (cur[i] == 0) continue;
    MetricRegistry::Default()
        .GetGauge("profile.cpu_share." + names[i])
        ->Set(static_cast<int64_t>(delta[i] * 10000 / total_delta));
    g_last_published[i] = cur[i];
  }
}

uint64_t Profiler::total_samples() const {
  return g_total_samples.load(std::memory_order_relaxed);
}

uint64_t Profiler::stage_samples(uint16_t stage) const {
  return stage < kMaxStages
             ? g_stage_samples[stage].load(std::memory_order_relaxed)
             : 0;
}

}  // namespace obs
}  // namespace tencentrec
