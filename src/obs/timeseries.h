#ifndef TENCENTREC_OBS_TIMESERIES_H_
#define TENCENTREC_OBS_TIMESERIES_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics.h"

namespace tencentrec::obs {

/// In-process metric history: a fixed-capacity ring of periodic
/// MetricRegistry snapshots, sampled by a background thread and queryable
/// as JSON through the admin plane's `/timeseries` endpoint.
///
/// Each sample derives one scalar per series from the registry:
///   - counter `name`          → cumulative value (window deltas are computed
///                               at query/SLO-eval time as last - first, so
///                               ring eviction never loses in-window counts)
///   - gauge `name`            → instantaneous value
///   - histogram `name`        → per-interval `name.p50/.p95/.p99/.max` from
///                               the delta vs the previous cumulative bucket
///                               snapshot (an interval with no observations
///                               contributes no points), plus cumulative
///                               `name.count`
///
/// Series names are interned once; each ring slot stores (series id, value)
/// pairs, so memory is capacity × live-series × 12 bytes plus one retained
/// histogram snapshot per histogram for delta computation. The default ring
/// (600 slots at 1 s) keeps 10 minutes of history — enough to cover the
/// longest SLO burn-rate window with slack (see DESIGN.md §12 on sizing).
///
/// SampleNow() is public so tests and the SLO engine can sample
/// deterministically without depending on the background thread's timing.
class TimeSeriesStore {
 public:
  struct Options {
    uint64_t sample_period_ms = 1000;
    size_t capacity = 600;  ///< ring slots
  };

  struct Point {
    uint64_t t_micros = 0;  ///< sample instant (MonoMicros axis)
    double value = 0.0;
  };

  TimeSeriesStore(MetricRegistry* registry, Options options);
  explicit TimeSeriesStore(MetricRegistry* registry)
      : TimeSeriesStore(registry, Options()) {}
  ~TimeSeriesStore();

  TimeSeriesStore(const TimeSeriesStore&) = delete;
  TimeSeriesStore& operator=(const TimeSeriesStore&) = delete;

  /// Hook run immediately before each sample (background or SampleNow) so
  /// derived gauges — freshness lags, queue depths — are computed at the
  /// sample instant. Set before Start().
  void SetPreSampleHook(std::function<void(uint64_t now_micros)> hook);

  /// Hook run after each sample lands in the ring (outside the lock) — the
  /// engine chains SloRegistry::EvaluateNow here so every fresh sample is
  /// immediately judged. Set before Start().
  void SetPostSampleHook(std::function<void(uint64_t now_micros)> hook);

  /// Starts the background sampler thread (idempotent).
  void Start();
  /// Stops and joins the sampler (idempotent; safe without Start).
  void Stop();

  /// Takes one sample synchronously at `now_micros` (0 = MonoMicros()).
  void SampleNow(uint64_t now_micros = 0);

  /// Points of `series` within the trailing `window_micros` (0 = everything
  /// retained), oldest first.
  std::vector<Point> Series(const std::string& series,
                            uint64_t window_micros) const;

  /// All interned series names, sorted.
  std::vector<std::string> SeriesNames() const;

  /// {"series":"...","window_us":N,"points":[{"t":...,"v":...},...]}
  /// Unknown series yields an empty points array, not an error.
  std::string QueryJson(const std::string& series,
                        uint64_t window_micros) const;

  size_t sample_count() const;
  const Options& options() const { return options_; }

 private:
  struct Slot {
    uint64_t t_micros = 0;
    std::vector<std::pair<uint32_t, double>> values;  ///< (series id, value)
  };

  void RunSampler();
  uint32_t InternLocked(const std::string& name);
  void CaptureLocked(uint64_t now_micros);

  MetricRegistry* const registry_;
  const Options options_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool stop_requested_ = false;
  bool running_ = false;
  std::thread sampler_;

  std::function<void(uint64_t)> pre_sample_hook_;
  std::function<void(uint64_t)> post_sample_hook_;

  std::map<std::string, uint32_t> series_ids_;
  std::vector<std::string> series_names_;  ///< id → name
  std::vector<Slot> ring_;
  size_t next_slot_ = 0;
  size_t filled_ = 0;
  /// Previous cumulative histogram snapshots for per-interval deltas.
  std::map<std::string, LatencyHistogram::Snapshot> prev_hist_;
};

}  // namespace tencentrec::obs

#endif  // TENCENTREC_OBS_TIMESERIES_H_
