#ifndef TENCENTREC_OBS_SLO_H_
#define TENCENTREC_OBS_SLO_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace tencentrec::obs {

class HealthRegistry;
class TimeSeriesStore;

/// Declarative service-level objectives evaluated over the TimeSeriesStore
/// ring with Google-SRE-style multi-window burn rates, feeding breach state
/// into HealthRegistry (and, via affects_readiness, /readyz) and the /slo
/// admin endpoint.
///
/// Two objective kinds:
///
///   kMaxValue  — "this series must stay below `threshold`": the windowed
///                value is the MAX of the series' points inside the window
///                (worst observed interval p99, worst freshness lag, ...).
///                Breached when the max exceeds threshold in BOTH the short
///                and the long window — the short window makes recovery
///                fast, the long window suppresses single-interval blips.
///
///   kMaxRatio  — "bad events / total events must stay below `threshold`"
///                over cumulative counter series: windowed fraction is
///                (num_last - num_first) / (den_last - den_first). Breached
///                when the fraction exceeds threshold × burn_factor in both
///                windows; burn_factor > 1 is the classic fast-burn page
///                ("consuming budget 14× faster than sustainable").
///
/// The metric name may contain a single `*` wildcard (e.g.
/// `topo.app.*.event_to_store_us.p99`); matching series are aggregated with
/// max — an SLO over "every component's p99" is as slow as its slowest
/// component. A window with no data evaluates to "not breached" (absence of
/// traffic is not an SLO violation; freshness objectives catch silence).
class SloRegistry {
 public:
  enum class Kind { kMaxValue, kMaxRatio };

  struct Objective {
    std::string name;          ///< e.g. "e2s-p99", "freshness", "store-errors"
    Kind kind = Kind::kMaxValue;
    std::string metric;        ///< series name, one optional '*' wildcard
    std::string denominator;   ///< kMaxRatio only: total-events series
    double threshold = 0.0;    ///< max value (us) or max bad fraction
    uint64_t short_window_micros = 60ull * 1000 * 1000;
    uint64_t long_window_micros = 300ull * 1000 * 1000;
    double burn_factor = 1.0;  ///< kMaxRatio threshold multiplier
    bool affects_readiness = false;  ///< breach drops /readyz
    std::string description;
  };

  struct Status {
    Objective objective;
    bool breached = false;
    bool has_data = false;
    double short_value = 0.0;  ///< windowed value/fraction, short window
    double long_value = 0.0;
    uint64_t last_eval_micros = 0;
  };

  SloRegistry(const TimeSeriesStore* store, HealthRegistry* health);

  void AddObjective(Objective objective);

  /// Evaluates every objective against the ring at `now_micros`
  /// (0 = MonoMicros()) and files breach states into HealthRegistry as
  /// component `slo.<name>`. Call after each TimeSeriesStore sample — the
  /// engine chains it off the sampler via the store's post-sample path or
  /// its own periodic caller; tests call it directly for determinism.
  void EvaluateNow(uint64_t now_micros = 0);

  std::vector<Status> Statuses() const;

  /// {"objectives":[{name,kind,metric,threshold,breached,...}]}
  std::string Json() const;

 private:
  struct Eval {
    bool breached = false;
    bool has_data = false;
    double short_value = 0.0;
    double long_value = 0.0;
  };

  Eval Evaluate(const Objective& o, uint64_t now_micros) const;
  /// Windowed value of (possibly wildcarded) `metric`; false if no data.
  bool WindowedMax(const std::string& metric, uint64_t window_micros,
                   double* out) const;
  bool WindowedDelta(const std::string& metric, uint64_t window_micros,
                     double* out) const;
  std::vector<std::string> MatchSeries(const std::string& pattern) const;

  const TimeSeriesStore* const store_;
  HealthRegistry* const health_;

  mutable std::mutex mu_;
  std::vector<Status> statuses_;
};

}  // namespace tencentrec::obs

#endif  // TENCENTREC_OBS_SLO_H_
