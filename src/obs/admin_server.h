#ifndef TENCENTREC_OBS_ADMIN_SERVER_H_
#define TENCENTREC_OBS_ADMIN_SERVER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/status.h"

namespace tencentrec::obs {

/// Minimal embedded HTTP/1.1 ops endpoint — no dependencies, one blocking
/// accept thread, one request per connection (Connection: close). It is an
/// operator plane, not a serving tier: /metrics, /healthz and friends are
/// hit by humans with curl and by scrapers at seconds-scale intervals, so
/// a single-threaded accept loop is the right amount of machinery.
///
/// Handlers are registered by path before Start(); the server owns no
/// routes of its own, keeping this layer ignorant of the engine above it.
/// Handlers run on the accept thread and must be thread-safe with respect
/// to the state they read.
class AdminServer {
 public:
  struct Options {
    /// Loopback by default: the ops plane is unauthenticated, so exposing
    /// it beyond the host must be an explicit decision.
    std::string bind_address = "127.0.0.1";
    /// 0 = ephemeral; read the chosen port back via port().
    int port = 0;
    int backlog = 16;
  };

  struct Request {
    std::string method;
    std::string path;   ///< without the query string
    std::string query;  ///< raw text after '?', "" if none
  };

  struct Response {
    int status = 200;
    std::string content_type = "text/plain; charset=utf-8";
    std::string body;
  };

  using Handler = std::function<Response(const Request&)>;

  explicit AdminServer(Options options) : options_(std::move(options)) {}
  ~AdminServer();

  AdminServer(const AdminServer&) = delete;
  AdminServer& operator=(const AdminServer&) = delete;

  /// Exact-path route; must be called before Start(). Later registrations
  /// of the same path win.
  void Route(const std::string& path, Handler handler);

  /// Binds, listens and starts the accept thread.
  Status Start();

  /// Unblocks the accept loop and joins the thread. Idempotent.
  void Stop();

  /// The bound port (resolves port 0); valid after a successful Start().
  int port() const { return port_; }

  uint64_t requests_served() const {
    return requests_served_.load(std::memory_order_relaxed);
  }

 private:
  void Serve();
  void HandleConnection(int fd);

  Options options_;
  std::vector<std::pair<std::string, Handler>> routes_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::thread thread_;
  std::atomic<bool> stopping_{false};
  std::atomic<uint64_t> requests_served_{0};
};

}  // namespace tencentrec::obs

#endif  // TENCENTREC_OBS_ADMIN_SERVER_H_
