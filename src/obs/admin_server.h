#ifndef TENCENTREC_OBS_ADMIN_SERVER_H_
#define TENCENTREC_OBS_ADMIN_SERVER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/status.h"

namespace tencentrec::obs {

/// Minimal embedded HTTP/1.1 ops endpoint — no dependencies, one accept
/// thread, one request per connection (Connection: close). It is an
/// operator plane, not a serving tier: /metrics, /healthz and friends are
/// hit by humans with curl and by scrapers at seconds-scale intervals, so
/// a single-threaded accept loop is the right amount of machinery.
///
/// Handlers are registered by path before Start(); the server owns no
/// routes of its own, keeping this layer ignorant of the engine above it.
/// Handlers run on the accept thread and must be thread-safe with respect
/// to the state they read.
///
/// Shutdown is graceful and SIGTERM-friendly: RequestStop() is
/// async-signal-safe (one atomic store + one pipe write), the accept loop
/// wakes via the self-pipe, stops accepting, and finishes the request it
/// is serving; Stop() then drains with a deadline, force-closing the
/// in-flight connection only if the drain window expires. Per-connection
/// socket timeouts bound how long one dead client can hold the loop.
class AdminServer {
 public:
  struct Options {
    /// Loopback by default: the ops plane is unauthenticated, so exposing
    /// it beyond the host must be an explicit decision.
    std::string bind_address = "127.0.0.1";
    /// 0 = ephemeral; read the chosen port back via port().
    int port = 0;
    int backlog = 16;
    /// Per-connection read/write timeout (SO_RCVTIMEO/SO_SNDTIMEO).
    int io_timeout_ms = 5000;
    /// How long Stop() waits for the in-flight request before forcing the
    /// connection shut.
    int drain_deadline_ms = 2000;
  };

  struct Request {
    std::string method;
    std::string path;   ///< without the query string
    std::string query;  ///< raw text after '?', "" if none
  };

  struct Response {
    int status = 200;
    std::string content_type = "text/plain; charset=utf-8";
    std::string body;
  };

  using Handler = std::function<Response(const Request&)>;

  explicit AdminServer(Options options) : options_(std::move(options)) {}
  ~AdminServer();

  AdminServer(const AdminServer&) = delete;
  AdminServer& operator=(const AdminServer&) = delete;

  /// Exact-path route; must be called before Start(). Later registrations
  /// of the same path win.
  void Route(const std::string& path, Handler handler);

  /// Binds, listens and starts the accept thread.
  Status Start();

  /// Asks the accept loop to exit without blocking: stops accepting new
  /// connections but lets the in-flight handler finish. Async-signal-safe —
  /// wire it to SIGTERM so soak runs exit cleanly. Follow with Stop() (or
  /// destruction) to join.
  void RequestStop();

  /// RequestStop() + drain: waits up to drain_deadline_ms for the in-flight
  /// request, force-shuts the connection past the deadline, joins the
  /// accept thread and closes the listener. Idempotent.
  void Stop();

  /// The bound port (resolves port 0); valid after a successful Start().
  int port() const { return port_; }

  uint64_t requests_served() const {
    return requests_served_.load(std::memory_order_relaxed);
  }

 private:
  void Serve();
  void HandleConnection(int fd);

  Options options_;
  std::vector<std::pair<std::string, Handler>> routes_;
  int listen_fd_ = -1;
  int port_ = 0;
  int wake_pipe_[2] = {-1, -1};  ///< self-pipe: [0] polled, [1] written
  std::thread thread_;
  std::atomic<bool> stopping_{false};
  std::atomic<bool> serve_done_{false};
  std::atomic<int> active_fd_{-1};  ///< connection currently being served
  std::atomic<uint64_t> requests_served_{0};
};

}  // namespace tencentrec::obs

#endif  // TENCENTREC_OBS_ADMIN_SERVER_H_
