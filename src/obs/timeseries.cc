#include "obs/timeseries.h"

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "common/stage.h"

namespace tencentrec::obs {

namespace {

/// Per-interval view of a histogram: cumulative `cur` minus cumulative
/// `prev`. Interval min/max are reconstructed from the delta buckets so
/// Percentile's clamp reflects the interval, not process lifetime.
LatencyHistogram::Snapshot DeltaSnapshot(
    const LatencyHistogram::Snapshot& cur,
    const LatencyHistogram::Snapshot& prev) {
  LatencyHistogram::Snapshot d;
  d.count = cur.count - prev.count;
  d.sum = cur.sum - prev.sum;
  int first = -1;
  int last = -1;
  for (int b = 0; b < LatencyHistogram::kNumBuckets; ++b) {
    const uint64_t n = cur.buckets[static_cast<size_t>(b)] -
                       prev.buckets[static_cast<size_t>(b)];
    d.buckets[static_cast<size_t>(b)] = n;
    if (n > 0) {
      if (first < 0) first = b;
      last = b;
    }
  }
  if (first >= 0) {
    d.min = LatencyHistogram::BucketLowerBound(first);
    d.max = LatencyHistogram::BucketUpperBound(last);
  }
  return d;
}

}  // namespace

TimeSeriesStore::TimeSeriesStore(MetricRegistry* registry, Options options)
    : registry_(registry), options_(options) {
  ring_.resize(std::max<size_t>(options_.capacity, 2));
}

TimeSeriesStore::~TimeSeriesStore() { Stop(); }

void TimeSeriesStore::SetPreSampleHook(
    std::function<void(uint64_t now_micros)> hook) {
  std::lock_guard<std::mutex> lock(mu_);
  pre_sample_hook_ = std::move(hook);
}

void TimeSeriesStore::SetPostSampleHook(
    std::function<void(uint64_t now_micros)> hook) {
  std::lock_guard<std::mutex> lock(mu_);
  post_sample_hook_ = std::move(hook);
}

void TimeSeriesStore::Start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (running_) return;
  stop_requested_ = false;
  running_ = true;
  sampler_ = std::thread([this] { RunSampler(); });
}

void TimeSeriesStore::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!running_) return;
    stop_requested_ = true;
  }
  cv_.notify_all();
  sampler_.join();
  std::lock_guard<std::mutex> lock(mu_);
  running_ = false;
}

void TimeSeriesStore::RunSampler() {
  RegisterStageThread("obs.ts-sampler");
  const auto period = std::chrono::milliseconds(options_.sample_period_ms);
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_requested_) {
    cv_.wait_for(lock, period, [this] { return stop_requested_; });
    if (stop_requested_) break;
    auto pre = pre_sample_hook_;
    auto post = post_sample_hook_;
    lock.unlock();
    const uint64_t now = MonoMicros();
    if (pre) pre(now);
    lock.lock();
    CaptureLocked(now);
    if (post) {
      lock.unlock();
      post(now);
      lock.lock();
    }
  }
}

void TimeSeriesStore::SampleNow(uint64_t now_micros) {
  const uint64_t now = now_micros != 0 ? now_micros : MonoMicros();
  std::function<void(uint64_t)> pre;
  std::function<void(uint64_t)> post;
  {
    std::lock_guard<std::mutex> lock(mu_);
    pre = pre_sample_hook_;
    post = post_sample_hook_;
  }
  if (pre) pre(now);
  {
    std::lock_guard<std::mutex> lock(mu_);
    CaptureLocked(now);
  }
  if (post) post(now);
}

uint32_t TimeSeriesStore::InternLocked(const std::string& name) {
  auto it = series_ids_.find(name);
  if (it != series_ids_.end()) return it->second;
  const uint32_t id = static_cast<uint32_t>(series_names_.size());
  series_ids_.emplace(name, id);
  series_names_.push_back(name);
  return id;
}

void TimeSeriesStore::CaptureLocked(uint64_t now_micros) {
  if (registry_ == nullptr) return;
  Slot& slot = ring_[next_slot_];
  slot.t_micros = now_micros;
  slot.values.clear();

  for (const auto& [name, value] : registry_->Counters()) {
    slot.values.emplace_back(InternLocked(name), static_cast<double>(value));
  }
  for (const auto& [name, value] : registry_->Gauges()) {
    slot.values.emplace_back(InternLocked(name), static_cast<double>(value));
  }
  for (const auto& [name, snap] : registry_->Histograms()) {
    slot.values.emplace_back(InternLocked(name + ".count"),
                             static_cast<double>(snap.count));
    auto prev_it = prev_hist_.find(name);
    if (prev_it != prev_hist_.end() && snap.count > prev_it->second.count) {
      const LatencyHistogram::Snapshot d = DeltaSnapshot(snap, prev_it->second);
      slot.values.emplace_back(InternLocked(name + ".p50"), d.Percentile(0.50));
      slot.values.emplace_back(InternLocked(name + ".p95"), d.Percentile(0.95));
      slot.values.emplace_back(InternLocked(name + ".p99"), d.Percentile(0.99));
      slot.values.emplace_back(InternLocked(name + ".max"),
                               static_cast<double>(d.max));
    } else if (prev_it == prev_hist_.end() && snap.count > 0) {
      // First sight of a histogram that already has data: its whole history
      // is this "interval".
      slot.values.emplace_back(InternLocked(name + ".p50"),
                               snap.Percentile(0.50));
      slot.values.emplace_back(InternLocked(name + ".p95"),
                               snap.Percentile(0.95));
      slot.values.emplace_back(InternLocked(name + ".p99"),
                               snap.Percentile(0.99));
      slot.values.emplace_back(InternLocked(name + ".max"),
                               static_cast<double>(snap.max));
    }
    prev_hist_[name] = snap;
  }

  next_slot_ = (next_slot_ + 1) % ring_.size();
  filled_ = std::min(filled_ + 1, ring_.size());
}

std::vector<TimeSeriesStore::Point> TimeSeriesStore::Series(
    const std::string& series, uint64_t window_micros) const {
  std::vector<Point> out;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = series_ids_.find(series);
  if (it == series_ids_.end() || filled_ == 0) return out;
  const uint32_t id = it->second;
  // Oldest retained slot first.
  const size_t start = filled_ < ring_.size()
                           ? 0
                           : next_slot_;  // next_slot_ is oldest when full
  const uint64_t newest =
      ring_[(next_slot_ + ring_.size() - 1) % ring_.size()].t_micros;
  const uint64_t cutoff =
      (window_micros > 0 && newest > window_micros) ? newest - window_micros
                                                    : 0;
  for (size_t i = 0; i < filled_; ++i) {
    const Slot& slot = ring_[(start + i) % ring_.size()];
    if (slot.t_micros < cutoff) continue;
    for (const auto& [sid, v] : slot.values) {
      if (sid == id) {
        out.push_back({slot.t_micros, v});
        break;
      }
    }
  }
  return out;
}

std::vector<std::string> TimeSeriesStore::SeriesNames() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names = series_names_;
  std::sort(names.begin(), names.end());
  return names;
}

std::string TimeSeriesStore::QueryJson(const std::string& series,
                                       uint64_t window_micros) const {
  const std::vector<Point> points = Series(series, window_micros);
  std::string out = "{\"series\":\"";
  for (char c : series) {
    if (c == '"' || c == '\\') out.push_back('\\');
    if (static_cast<unsigned char>(c) >= 0x20) out.push_back(c);
  }
  out += "\",\"window_us\":" + std::to_string(window_micros) + ",\"points\":[";
  char buf[64];
  for (size_t i = 0; i < points.size(); ++i) {
    if (i != 0) out += ',';
    std::snprintf(buf, sizeof(buf), "{\"t\":%llu,\"v\":%.6g}",
                  static_cast<unsigned long long>(points[i].t_micros),
                  points[i].value);
    out += buf;
  }
  out += "]}";
  return out;
}

size_t TimeSeriesStore::sample_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return filled_;
}

}  // namespace tencentrec::obs
