#include "obs/slo.h"

#include <algorithm>
#include <cstdio>

#include "common/metrics.h"
#include "obs/health.h"
#include "obs/timeseries.h"

namespace tencentrec::obs {

namespace {

bool WildcardMatch(const std::string& pattern, const std::string& name) {
  const size_t star = pattern.find('*');
  if (star == std::string::npos) return pattern == name;
  const std::string prefix = pattern.substr(0, star);
  const std::string suffix = pattern.substr(star + 1);
  if (name.size() < prefix.size() + suffix.size()) return false;
  return name.compare(0, prefix.size(), prefix) == 0 &&
         name.compare(name.size() - suffix.size(), suffix.size(), suffix) == 0;
}

void AppendEscaped(std::string* out, const std::string& s) {
  for (char c : s) {
    if (c == '"' || c == '\\') out->push_back('\\');
    if (static_cast<unsigned char>(c) >= 0x20) out->push_back(c);
  }
}

}  // namespace

SloRegistry::SloRegistry(const TimeSeriesStore* store, HealthRegistry* health)
    : store_(store), health_(health) {}

void SloRegistry::AddObjective(Objective objective) {
  std::lock_guard<std::mutex> lock(mu_);
  Status status;
  status.objective = std::move(objective);
  statuses_.push_back(std::move(status));
}

std::vector<std::string> SloRegistry::MatchSeries(
    const std::string& pattern) const {
  if (pattern.find('*') == std::string::npos) return {pattern};
  std::vector<std::string> out;
  for (const std::string& name : store_->SeriesNames()) {
    if (WildcardMatch(pattern, name)) out.push_back(name);
  }
  return out;
}

bool SloRegistry::WindowedMax(const std::string& metric,
                              uint64_t window_micros, double* out) const {
  bool any = false;
  double best = 0.0;
  for (const std::string& name : MatchSeries(metric)) {
    for (const TimeSeriesStore::Point& p : store_->Series(name, window_micros)) {
      if (!any || p.value > best) best = p.value;
      any = true;
    }
  }
  if (any) *out = best;
  return any;
}

bool SloRegistry::WindowedDelta(const std::string& metric,
                                uint64_t window_micros, double* out) const {
  // Cumulative counter series: in-window delta = last - first. Wildcards
  // sum across matching series (total errors across components).
  bool any = false;
  double total = 0.0;
  for (const std::string& name : MatchSeries(metric)) {
    const std::vector<TimeSeriesStore::Point> points =
        store_->Series(name, window_micros);
    if (points.size() < 2) continue;
    total += points.back().value - points.front().value;
    any = true;
  }
  if (any) *out = total;
  return any;
}

SloRegistry::Eval SloRegistry::Evaluate(const Objective& o,
                                        uint64_t now_micros) const {
  (void)now_micros;  // windows are anchored at the newest retained sample
  Eval eval;
  if (o.kind == Kind::kMaxValue) {
    double short_v = 0.0;
    double long_v = 0.0;
    const bool short_ok = WindowedMax(o.metric, o.short_window_micros, &short_v);
    const bool long_ok = WindowedMax(o.metric, o.long_window_micros, &long_v);
    eval.has_data = short_ok || long_ok;
    eval.short_value = short_v;
    eval.long_value = long_v;
    eval.breached = short_ok && long_ok && short_v > o.threshold &&
                    long_v > o.threshold;
    return eval;
  }
  // kMaxRatio: bad fraction over each window from cumulative counters.
  const double limit = o.threshold * o.burn_factor;
  double short_frac = 0.0;
  double long_frac = 0.0;
  bool short_ok = false;
  bool long_ok = false;
  double num = 0.0;
  double den = 0.0;
  if (WindowedDelta(o.metric, o.short_window_micros, &num) &&
      WindowedDelta(o.denominator, o.short_window_micros, &den) && den > 0) {
    short_frac = num / den;
    short_ok = true;
  }
  if (WindowedDelta(o.metric, o.long_window_micros, &num) &&
      WindowedDelta(o.denominator, o.long_window_micros, &den) && den > 0) {
    long_frac = num / den;
    long_ok = true;
  }
  eval.has_data = short_ok || long_ok;
  eval.short_value = short_frac;
  eval.long_value = long_frac;
  eval.breached =
      short_ok && long_ok && short_frac > limit && long_frac > limit;
  return eval;
}

void SloRegistry::EvaluateNow(uint64_t now_micros) {
  if (store_ == nullptr) return;
  const uint64_t now = now_micros != 0 ? now_micros : MonoMicros();
  std::vector<Status> snapshot;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (Status& status : statuses_) {
      const Eval eval = Evaluate(status.objective, now);
      status.breached = eval.breached;
      status.has_data = eval.has_data;
      status.short_value = eval.short_value;
      status.long_value = eval.long_value;
      status.last_eval_micros = now;
    }
    snapshot = statuses_;
  }
  if (health_ == nullptr) return;
  for (const Status& status : snapshot) {
    const Objective& o = status.objective;
    std::string reason;
    if (status.breached) {
      char buf[160];
      std::snprintf(buf, sizeof(buf),
                    "slo breach: %s short=%.3g long=%.3g threshold=%.3g",
                    o.metric.c_str(), status.short_value, status.long_value,
                    o.threshold);
      reason = buf;
    }
    health_->Set("slo." + o.name, !status.breached, reason,
                 o.affects_readiness);
  }
}

std::vector<SloRegistry::Status> SloRegistry::Statuses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return statuses_;
}

std::string SloRegistry::Json() const {
  const std::vector<Status> statuses = Statuses();
  std::string out = "{\"objectives\":[";
  char buf[128];
  for (size_t i = 0; i < statuses.size(); ++i) {
    const Status& s = statuses[i];
    const Objective& o = s.objective;
    if (i != 0) out += ',';
    out += "{\"name\":\"";
    AppendEscaped(&out, o.name);
    out += "\",\"kind\":\"";
    out += o.kind == Kind::kMaxValue ? "max_value" : "max_ratio";
    out += "\",\"metric\":\"";
    AppendEscaped(&out, o.metric);
    out += '"';
    if (!o.denominator.empty()) {
      out += ",\"denominator\":\"";
      AppendEscaped(&out, o.denominator);
      out += '"';
    }
    if (!o.description.empty()) {
      out += ",\"description\":\"";
      AppendEscaped(&out, o.description);
      out += '"';
    }
    std::snprintf(buf, sizeof(buf),
                  ",\"threshold\":%.6g,\"burn_factor\":%.3g", o.threshold,
                  o.burn_factor);
    out += buf;
    std::snprintf(
        buf, sizeof(buf),
        ",\"short_window_us\":%llu,\"long_window_us\":%llu",
        static_cast<unsigned long long>(o.short_window_micros),
        static_cast<unsigned long long>(o.long_window_micros));
    out += buf;
    out += ",\"affects_readiness\":";
    out += o.affects_readiness ? "true" : "false";
    out += ",\"breached\":";
    out += s.breached ? "true" : "false";
    out += ",\"has_data\":";
    out += s.has_data ? "true" : "false";
    std::snprintf(buf, sizeof(buf),
                  ",\"short_value\":%.6g,\"long_value\":%.6g}", s.short_value,
                  s.long_value);
    out += buf;
  }
  out += "]}";
  return out;
}

}  // namespace tencentrec::obs
