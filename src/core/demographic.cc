#include "core/demographic.h"

#include <algorithm>

namespace tencentrec::core {

DemographicRecommender::DemographicRecommender(Options options)
    : options_(std::move(options)),
      session_length_(options_.session_length < 1 ? 1
                                                  : options_.session_length) {}

void DemographicRecommender::Add(GroupId group, ItemId item, double delta,
                                 int64_t session_id) {
  GroupCounts& gc = groups_[group];
  // Expire old sessions for this group.
  while (!gc.sessions.empty() && !InWindow(gc.sessions.front().id)) {
    gc.sessions.pop_front();
  }
  for (auto& s : gc.sessions) {
    if (s.id == session_id) {
      s.counts[item] += delta;
      return;
    }
  }
  if (!gc.sessions.empty() && session_id < gc.sessions.front().id) {
    // Out-of-window late arrival: fold into the oldest live session.
    gc.sessions.front().counts[item] += delta;
    return;
  }
  Session s;
  s.id = session_id;
  s.counts[item] += delta;
  gc.sessions.push_back(std::move(s));
}

void DemographicRecommender::ProcessAction(const UserAction& action) {
  const double w = options_.weights.Weight(action.action);
  if (w <= 0.0) return;
  const int64_t session = SessionOf(action.timestamp);
  if (session > latest_session_) latest_session_ = session;

  const GroupId group = DemographicGroup(action.demographics);
  Add(0, action.item, w, session);  // global group gets everything
  if (group != 0) Add(group, action.item, w, session);
}

Recommendations DemographicRecommender::HotItems(GroupId group,
                                                 size_t n) const {
  auto git = groups_.find(group);
  if (git == groups_.end() || git->second.sessions.empty()) {
    // Unknown or empty group: global fallback (unless global itself failed).
    if (group == 0) return {};
    return HotItems(0, n);
  }

  std::unordered_map<ItemId, double> merged;
  for (const auto& s : git->second.sessions) {
    if (!InWindow(s.id)) continue;
    for (const auto& [item, c] : s.counts) merged[item] += c;
  }
  Recommendations scored;
  scored.reserve(merged.size());
  for (const auto& [item, c] : merged) {
    if (c > 0.0) scored.push_back({item, c});
  }
  if (scored.empty() && group != 0) return HotItems(0, n);
  std::sort(scored.begin(), scored.end(),
            [](const ScoredItem& a, const ScoredItem& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.item < b.item;
            });
  if (scored.size() > n) scored.resize(n);
  return scored;
}

double DemographicRecommender::Popularity(GroupId group, ItemId item) const {
  auto git = groups_.find(group);
  if (git == groups_.end()) return 0.0;
  double sum = 0.0;
  for (const auto& s : git->second.sessions) {
    if (!InWindow(s.id)) continue;
    auto it = s.counts.find(item);
    if (it != s.counts.end()) sum += it->second;
  }
  return sum;
}

}  // namespace tencentrec::core
