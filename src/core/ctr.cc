#include "core/ctr.h"

#include <algorithm>

namespace tencentrec::core {

SituationalCtr::SituationalCtr(Options options)
    : options_(std::move(options)),
      session_length_(options_.session_length < 1 ? 1
                                                  : options_.session_length) {}

int CtrMaxLevel(const Demographics& d) {
  if (d.gender == Demographics::kUnknownGender) return 0;
  if (d.age_band == 0) return 1;
  if (d.region == 0) return 2;
  return 3;
}

uint64_t CtrLevelKey(ItemId item, int level, const Demographics& d) {
  // item in the low 32 bits; attribute fields masked in by level.
  uint64_t key = static_cast<uint64_t>(item) & 0xffffffffULL;
  key |= static_cast<uint64_t>(level) << 62;
  if (level >= 1) key |= static_cast<uint64_t>(d.gender) << 32;
  if (level >= 2) key |= static_cast<uint64_t>(d.age_band) << 36;
  if (level >= 3) key |= static_cast<uint64_t>(d.region) << 44;
  return key;
}

void SituationalCtr::Add(ItemId item, const Demographics& d, EventTime ts,
                         bool click) {
  const int64_t session_id = SessionOf(ts);
  if (session_id > latest_session_) latest_session_ = session_id;
  while (!sessions_.empty() && !InWindow(sessions_.front().id)) {
    sessions_.pop_front();
  }
  Session* session = nullptr;
  for (auto& s : sessions_) {
    if (s.id == session_id) {
      session = &s;
      break;
    }
  }
  if (session == nullptr) {
    if (!sessions_.empty() && session_id < sessions_.front().id) {
      session = &sessions_.front();  // late arrival
    } else {
      sessions_.push_back(Session{});
      sessions_.back().id = session_id;
      session = &sessions_.back();
    }
  }
  const int max_level = CtrMaxLevel(d);
  for (int level = 0; level <= max_level; ++level) {
    Counts& c = session->counts[CtrLevelKey(item, level, d)];
    if (click) {
      c.clicks += 1.0;
    } else {
      c.impressions += 1.0;
    }
  }
}

void SituationalCtr::ProcessAction(const UserAction& action) {
  if (action.action == ActionType::kImpression) {
    Add(action.item, action.demographics, action.timestamp, /*click=*/false);
  } else if (action.action == ActionType::kClick) {
    Add(action.item, action.demographics, action.timestamp, /*click=*/true);
  }
}

void SituationalCtr::RecordImpression(ItemId item, const Demographics& d,
                                      EventTime ts) {
  Add(item, d, ts, /*click=*/false);
}

void SituationalCtr::RecordClick(ItemId item, const Demographics& d,
                                 EventTime ts) {
  Add(item, d, ts, /*click=*/true);
}

SituationalCtr::Counts SituationalCtr::WindowCounts(Key key) const {
  Counts out;
  for (const auto& s : sessions_) {
    if (!InWindow(s.id)) continue;
    auto it = s.counts.find(key);
    if (it != s.counts.end()) {
      out.impressions += it->second.impressions;
      out.clicks += it->second.clicks;
    }
  }
  return out;
}

double SituationalCtr::PredictCtr(ItemId item, const Demographics& d) const {
  // Hierarchical shrinkage: level estimate = (clicks + k·parent) /
  // (impressions + k), starting from the configured base CTR.
  double estimate = options_.base_ctr;
  const int max_level = CtrMaxLevel(d);
  for (int level = 0; level <= max_level; ++level) {
    const Counts c = WindowCounts(CtrLevelKey(item, level, d));
    estimate = (c.clicks + options_.prior_strength * estimate) /
               (c.impressions + options_.prior_strength);
  }
  return estimate;
}

SituationalCtr::Counts SituationalCtr::SituationCounts(
    ItemId item, const Demographics& d) const {
  return WindowCounts(CtrLevelKey(item, CtrMaxLevel(d), d));
}

Recommendations SituationalCtr::RankByCtr(const std::vector<ItemId>& candidates,
                                          const Demographics& d,
                                          size_t n) const {
  Recommendations scored;
  scored.reserve(candidates.size());
  for (ItemId item : candidates) {
    scored.push_back({item, PredictCtr(item, d)});
  }
  std::sort(scored.begin(), scored.end(),
            [](const ScoredItem& a, const ScoredItem& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.item < b.item;
            });
  if (scored.size() > n) scored.resize(n);
  return scored;
}

}  // namespace tencentrec::core
