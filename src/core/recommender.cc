#include "core/recommender.h"

#include <unordered_set>

namespace tencentrec::core {

Recommendations HybridRecommender::Recommend(UserId user,
                                             const Demographics& demographics,
                                             size_t n) const {
  Recommendations out = cf_.RecommendForUser(user, n);
  if (options_.min_cf_score > 0.0) {
    std::erase_if(out, [&](const ScoredItem& s) {
      return s.score < options_.min_cf_score;
    });
  }
  if (out.size() >= n) return out;

  // DB complement: group hot items, excluding CF picks and items the user
  // recently interacted with. DB scores are popularity counts on a
  // different scale than CF's predicted ratings; complements are appended
  // after CF picks (they fill the tail, never outrank a CF hit).
  std::unordered_set<ItemId> exclude;
  for (const auto& s : out) exclude.insert(s.item);
  for (ItemId i : cf_.RecentItemsOf(user)) exclude.insert(i);

  const Recommendations hot =
      db_.RecommendForUser(demographics, n + exclude.size());
  for (const auto& h : hot) {
    if (out.size() >= n) break;
    if (exclude.count(h.item) > 0) continue;
    out.push_back(h);
  }
  return out;
}

}  // namespace tencentrec::core
