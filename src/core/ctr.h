#ifndef TENCENTREC_CORE_CTR_H_
#define TENCENTREC_CORE_CTR_H_

#include <deque>
#include <unordered_map>

#include "core/rating.h"
#include "core/scored.h"

namespace tencentrec::core {

/// Deepest CTR-chain level the situation's known attributes support (0..3):
/// item / +gender / +age band / +region.
int CtrMaxLevel(const Demographics& d);

/// Packed counter key for one (item, level, situation) cell. Item occupies
/// the low 32 bits, so any item-keyed partitioning co-locates all of an
/// item's situational counters (single writer per item).
uint64_t CtrLevelKey(ItemId item, int level, const Demographics& d);

/// Situational CTR prediction (the "CTR" algorithm of §4/§5.1, used for QQ
/// advertisement recommendation, and the engine behind queries like
/// "during the last ten seconds, what is the CTR of an advertisement among
/// male users in Beijing aged 20-30" from §1).
///
/// Impressions and clicks are counted per situation at a chain of
/// granularities:
///
///   level 0: item (global)
///   level 1: item + gender
///   level 2: item + gender + age band
///   level 3: item + gender + age band + region
///
/// over a sliding window. Prediction walks the chain from coarse to fine
/// with hierarchical Bayesian smoothing: each level's estimate is shrunk
/// toward its parent by a pseudo-count prior, so sparse fine-grained cells
/// fall back gracefully instead of over-fitting a handful of events.
class SituationalCtr {
 public:
  struct Options {
    /// Window sessions x session length (e.g. 10 seconds for the §1 query).
    EventTime session_length = Minutes(10);
    int window_sessions = 0;  ///< 0 = cumulative
    /// Pseudo-impressions anchoring each level to its parent estimate.
    double prior_strength = 20.0;
    /// Global prior CTR for the root of the chain.
    double base_ctr = 0.02;
  };

  explicit SituationalCtr(Options options);

  /// Counts an impression (kImpression) or a click (kClick) of `item` in
  /// the acting user's situation. Other action types are ignored.
  void ProcessAction(const UserAction& action);

  void RecordImpression(ItemId item, const Demographics& d, EventTime ts);
  void RecordClick(ItemId item, const Demographics& d, EventTime ts);

  /// Smoothed CTR estimate for the most specific level the situation
  /// provides (unknown attributes stop the chain early).
  double PredictCtr(ItemId item, const Demographics& d) const;

  /// Raw windowed counts at the most specific level (the §1 query).
  struct Counts {
    double impressions = 0.0;
    double clicks = 0.0;
  };
  Counts SituationCounts(ItemId item, const Demographics& d) const;

  /// Ranks candidate ads by predicted CTR for the situation.
  Recommendations RankByCtr(const std::vector<ItemId>& candidates,
                            const Demographics& d, size_t n) const;

 private:
  using Key = uint64_t;

  struct Session {
    int64_t id = 0;
    std::unordered_map<Key, Counts> counts;
  };

  int64_t SessionOf(EventTime ts) const { return ts / session_length_; }
  bool InWindow(int64_t session_id) const {
    return options_.window_sessions <= 0 ||
           session_id > latest_session_ - options_.window_sessions;
  }
  void Add(ItemId item, const Demographics& d, EventTime ts, bool click);
  Counts WindowCounts(Key key) const;

  Options options_;
  EventTime session_length_;
  int64_t latest_session_ = -1;
  std::deque<Session> sessions_;
};

}  // namespace tencentrec::core

#endif  // TENCENTREC_CORE_CTR_H_
