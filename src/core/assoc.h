#ifndef TENCENTREC_CORE_ASSOC_H_
#define TENCENTREC_CORE_ASSOC_H_

#include <unordered_map>
#include <unordered_set>

#include "core/itemcf/window_counts.h"
#include "core/rating.h"
#include "core/scored.h"

namespace tencentrec::core {

/// Association-rule recommendation (AR, §4): mines item -> item rules from
/// per-user co-occurrence within a linked time, scoring by confidence
///
///   confidence(i -> j) = support(i, j) / support(i)
///
/// where support counts distinct user occurrences in the sliding window.
/// Unlike CF it is asymmetric (confidence(i->j) != confidence(j->i)) and
/// count-based (one user contributes at most 1 per item/pair), which suits
/// "users who bought X also bought Y" placements.
class AssocRules {
 public:
  struct Options {
    /// Actions with weight below this don't count as an occurrence.
    double min_action_weight = 1.0;
    ActionWeights weights;
    EventTime linked_time = Days(3);
    EventTime session_length = Hours(6);
    int window_sessions = 0;  ///< 0 = cumulative
    /// Rules need at least this much joint support to fire.
    double min_support = 2.0;
    /// ... and at least this confidence.
    double min_confidence = 0.05;
    /// Cap on items remembered per user for pair generation.
    size_t user_items_cap = 64;
  };

  explicit AssocRules(Options options);

  void ProcessAction(const UserAction& action);

  /// confidence(from -> to); 0 if below the support floor.
  double Confidence(ItemId from, ItemId to) const;

  /// Rules out of `item`, best confidence first.
  Recommendations RecommendForItem(ItemId item, size_t n) const;

  /// Union of rules out of the user's windowed items, seen items excluded.
  Recommendations RecommendForUser(UserId user, size_t n) const;

  const WindowedCounts& counts() const { return counts_; }

 private:
  struct UserState {
    /// item -> last occurrence time (for linked-time pairing and dedup).
    std::unordered_map<ItemId, EventTime> items;
  };

  Options options_;
  WindowedCounts counts_;
  std::unordered_map<UserId, UserState> users_;
  /// Adjacency for candidate enumeration (items ever paired with the key;
  /// stale partners score 0 once their window support expires).
  std::unordered_map<ItemId, std::unordered_set<ItemId>> partners_;
};

}  // namespace tencentrec::core

#endif  // TENCENTREC_CORE_ASSOC_H_
