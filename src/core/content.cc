#include "core/content.h"

#include <algorithm>
#include <cmath>

namespace tencentrec::core {

ContentBased::ContentBased(Options options) : options_(std::move(options)) {
  if (options_.profile_half_life < 1) options_.profile_half_life = 1;
  decay_lambda_ =
      std::log(2.0) / static_cast<double>(options_.profile_half_life);
}

void ContentBased::RegisterItem(ItemId item, TagVector tags,
                                EventTime published) {
  RemoveItem(item);  // replace semantics
  ItemEntry entry;
  entry.tags = std::move(tags);
  entry.published = published;
  double norm2 = 0.0;
  for (const auto& [tag, w] : entry.tags) norm2 += w * w;
  entry.norm = std::sqrt(norm2);
  for (const auto& [tag, w] : entry.tags) tag_index_[tag].push_back(item);
  items_[item] = std::move(entry);
}

void ContentBased::RemoveItem(ItemId item) {
  auto it = items_.find(item);
  if (it == items_.end()) return;
  for (const auto& [tag, w] : it->second.tags) {
    auto idx = tag_index_.find(tag);
    if (idx == tag_index_.end()) continue;
    auto& list = idx->second;
    list.erase(std::remove(list.begin(), list.end(), item), list.end());
    if (list.empty()) tag_index_.erase(idx);
  }
  items_.erase(it);
}

void ContentBased::DecayProfile(Profile* profile, EventTime now) const {
  if (now <= profile->last_update) return;
  if (profile->weights.empty()) {
    profile->last_update = now;
    return;
  }
  const double factor = std::exp(
      -decay_lambda_ * static_cast<double>(now - profile->last_update));
  for (auto it = profile->weights.begin(); it != profile->weights.end();) {
    it->second *= factor;
    if (it->second < 1e-9) {
      it = profile->weights.erase(it);
    } else {
      ++it;
    }
  }
  profile->last_update = now;
}

void ContentBased::ProcessAction(const UserAction& action) {
  auto item_it = items_.find(action.item);
  if (item_it == items_.end()) return;  // untagged item: nothing to learn

  Profile& profile = profiles_[action.user];
  DecayProfile(&profile, action.timestamp);

  const double w = options_.weights.Weight(action.action);
  if (w > 0.0) {
    for (const auto& [tag, tw] : item_it->second.tags) {
      profile.weights[tag] += w * tw;
    }
  }
  if (profile.seen.size() >= options_.seen_cap) {
    profile.seen.clear();  // cheap cap; old items have likely expired anyway
  }
  profile.seen.insert(action.item);
}

Recommendations ContentBased::RecommendForUser(UserId user, size_t n,
                                               EventTime now) const {
  auto pit = profiles_.find(user);
  if (pit == profiles_.end()) return {};
  const Profile& profile = pit->second;

  // Decay factor applied lazily at query time (profile itself is const).
  double factor = 1.0;
  if (now > profile.last_update) {
    factor = std::exp(-decay_lambda_ *
                      static_cast<double>(now - profile.last_update));
  }

  double profile_norm2 = 0.0;
  for (const auto& [tag, w] : profile.weights) {
    profile_norm2 += (w * factor) * (w * factor);
  }
  if (profile_norm2 <= 0.0) return {};
  const double profile_norm = std::sqrt(profile_norm2);

  // Dot products via the inverted index.
  std::unordered_map<ItemId, double> dots;
  for (const auto& [tag, w] : profile.weights) {
    auto idx = tag_index_.find(tag);
    if (idx == tag_index_.end()) continue;
    for (ItemId item : idx->second) {
      const ItemEntry& entry = items_.at(item);
      if (options_.item_ttl > 0 && now - entry.published > options_.item_ttl) {
        continue;  // expired (old news)
      }
      if (profile.seen.count(item) > 0) continue;
      double item_weight = 0.0;
      for (const auto& [t2, w2] : entry.tags) {
        if (t2 == tag) {
          item_weight = w2;
          break;
        }
      }
      dots[item] += (w * factor) * item_weight;
    }
  }

  Recommendations scored;
  scored.reserve(dots.size());
  for (const auto& [item, dot] : dots) {
    const ItemEntry& entry = items_.at(item);
    if (entry.norm <= 0.0 || dot <= 0.0) continue;
    scored.push_back({item, dot / (profile_norm * entry.norm)});
  }
  std::sort(scored.begin(), scored.end(),
            [](const ScoredItem& a, const ScoredItem& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.item < b.item;
            });
  if (scored.size() > n) scored.resize(n);
  return scored;
}

std::vector<std::pair<TagId, double>> ContentBased::ProfileOf(
    UserId user, EventTime now) const {
  auto pit = profiles_.find(user);
  if (pit == profiles_.end()) return {};
  double factor = 1.0;
  if (now > pit->second.last_update) {
    factor = std::exp(-decay_lambda_ *
                      static_cast<double>(now - pit->second.last_update));
  }
  std::vector<std::pair<TagId, double>> out;
  for (const auto& [tag, w] : pit->second.weights) {
    out.emplace_back(tag, w * factor);
  }
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  return out;
}

}  // namespace tencentrec::core
