#include "core/assoc.h"

#include <algorithm>

namespace tencentrec::core {

AssocRules::AssocRules(Options options)
    : options_(std::move(options)),
      counts_(options_.session_length, options_.window_sessions) {}

void AssocRules::ProcessAction(const UserAction& action) {
  if (options_.weights.Weight(action.action) < options_.min_action_weight) {
    return;
  }
  UserState& state = users_[action.user];

  // Dedup: one occurrence per (user, item) — re-touching an item refreshes
  // its linked-time anchor but adds no support.
  auto existing = state.items.find(action.item);
  const bool first_occurrence = existing == state.items.end();

  if (first_occurrence) {
    counts_.AddItem(action.item, 1.0, action.timestamp);
    // Pair with every linked item the user already has.
    for (const auto& [other, last_ts] : state.items) {
      if (action.timestamp - last_ts > options_.linked_time) continue;
      counts_.AddPair(action.item, other, 1.0, action.timestamp);
      partners_[action.item].insert(other);
      partners_[other].insert(action.item);
    }
    if (state.items.size() >= options_.user_items_cap) {
      // Evict the stalest item to bound per-user state.
      auto oldest = state.items.begin();
      for (auto it = state.items.begin(); it != state.items.end(); ++it) {
        if (it->second < oldest->second) oldest = it;
      }
      state.items.erase(oldest);
    }
  }
  state.items[action.item] = action.timestamp;
}

double AssocRules::Confidence(ItemId from, ItemId to) const {
  const double joint = counts_.PairCount(from, to);
  if (joint < options_.min_support) return 0.0;
  const double base = counts_.ItemCount(from);
  if (base <= 0.0) return 0.0;
  const double conf = joint / base;
  return conf >= options_.min_confidence ? conf : 0.0;
}

Recommendations AssocRules::RecommendForItem(ItemId item, size_t n) const {
  auto pit = partners_.find(item);
  if (pit == partners_.end()) return {};
  Recommendations scored;
  for (ItemId other : pit->second) {
    const double conf = Confidence(item, other);
    if (conf > 0.0) scored.push_back({other, conf});
  }
  std::sort(scored.begin(), scored.end(),
            [](const ScoredItem& a, const ScoredItem& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.item < b.item;
            });
  if (scored.size() > n) scored.resize(n);
  return scored;
}

Recommendations AssocRules::RecommendForUser(UserId user, size_t n) const {
  auto uit = users_.find(user);
  if (uit == users_.end()) return {};
  const UserState& state = uit->second;

  std::unordered_map<ItemId, double> best;
  for (const auto& [item, ts] : state.items) {
    auto pit = partners_.find(item);
    if (pit == partners_.end()) continue;
    for (ItemId other : pit->second) {
      if (state.items.count(other) > 0) continue;  // already seen
      const double conf = Confidence(item, other);
      if (conf <= 0.0) continue;
      double& slot = best[other];
      slot = std::max(slot, conf);
    }
  }
  Recommendations scored;
  scored.reserve(best.size());
  for (const auto& [item, conf] : best) scored.push_back({item, conf});
  std::sort(scored.begin(), scored.end(),
            [](const ScoredItem& a, const ScoredItem& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.item < b.item;
            });
  if (scored.size() > n) scored.resize(n);
  return scored;
}

}  // namespace tencentrec::core
