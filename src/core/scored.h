#ifndef TENCENTREC_CORE_SCORED_H_
#define TENCENTREC_CORE_SCORED_H_

#include <vector>

#include "core/action.h"

namespace tencentrec::core {

/// A recommendation candidate with its predicted score. All algorithms
/// return descending-score lists of these.
struct ScoredItem {
  ItemId item = 0;
  double score = 0.0;

  bool operator==(const ScoredItem&) const = default;
};

using Recommendations = std::vector<ScoredItem>;

}  // namespace tencentrec::core

#endif  // TENCENTREC_CORE_SCORED_H_
