#ifndef TENCENTREC_CORE_CONTENT_H_
#define TENCENTREC_CORE_CONTENT_H_

#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/rating.h"
#include "core/scored.h"

namespace tencentrec::core {

/// Content/tag identifier (category, keyword, topic).
using TagId = int32_t;

/// An item's content vector: (tag, weight) pairs.
using TagVector = std::vector<std::pair<TagId, double>>;

/// Content-based recommendation (CB, §4): items carry tag vectors; each
/// user accumulates an exponentially time-decayed profile of the tags of
/// items they acted on, and unseen items are scored by cosine between
/// profile and item vector.
///
/// CB is the algorithm of choice for news (§5.1): new items keep appearing
/// and item lifetimes are too short for CF — a fresh item is recommendable
/// the moment RegisterItem() runs, with zero behavioural data.
class ContentBased {
 public:
  struct Options {
    ActionWeights weights;
    /// Profile half-life: a tag's contribution halves every this long.
    EventTime profile_half_life = Hours(12);
    /// Items older than this are dropped from the candidate index (news
    /// expiry). 0 = never expire.
    EventTime item_ttl = 0;
    /// Per-user cap on remembered seen-items (excluded from results).
    size_t seen_cap = 256;
  };

  explicit ContentBased(Options options);

  /// Adds (or replaces) an item's content vector; `published` drives expiry.
  void RegisterItem(ItemId item, TagVector tags, EventTime published);
  void RemoveItem(ItemId item);
  bool HasItem(ItemId item) const { return items_.count(item) > 0; }
  size_t NumItems() const { return items_.size(); }

  /// Folds one action into the user's tag profile.
  void ProcessAction(const UserAction& action);

  /// Top-n unseen, unexpired items by cosine(profile, item). Candidates
  /// come from the inverted tag index, so cost scales with the user's
  /// profile breadth, not the catalog.
  Recommendations RecommendForUser(UserId user, size_t n,
                                   EventTime now) const;

  /// The user's current decayed tag profile (test hook).
  std::vector<std::pair<TagId, double>> ProfileOf(UserId user,
                                                  EventTime now) const;

 private:
  struct ItemEntry {
    TagVector tags;
    double norm = 0.0;
    EventTime published = 0;
  };

  struct Profile {
    std::unordered_map<TagId, double> weights;  ///< as of last_update
    EventTime last_update = 0;
    std::unordered_set<ItemId> seen;
  };

  /// Applies exponential decay bringing the profile to `now`.
  void DecayProfile(Profile* profile, EventTime now) const;

  Options options_;
  double decay_lambda_ = 0.0;  ///< ln2 / half_life
  std::unordered_map<ItemId, ItemEntry> items_;
  std::unordered_map<TagId, std::vector<ItemId>> tag_index_;
  std::unordered_map<UserId, Profile> profiles_;
};

}  // namespace tencentrec::core

#endif  // TENCENTREC_CORE_CONTENT_H_
