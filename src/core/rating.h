#ifndef TENCENTREC_CORE_RATING_H_
#define TENCENTREC_CORE_RATING_H_

#include <algorithm>
#include <vector>

#include "core/action.h"

namespace tencentrec::core {

/// Change produced by one user action: the user's rating delta for the
/// acted-on item, and co-rating deltas for every related item pair. These
/// are exactly the ∆r_up and ∆co-rating(ip, iq) that flow to the
/// itemCount/pairCount layers of Fig. 4.
struct RatingUpdate {
  ItemId item = 0;
  /// ∆r_u,item (0 when the action didn't raise the max-weight rating).
  double rating_delta = 0.0;
  /// New value of r_u,item after the action.
  double new_rating = 0.0;

  struct PairDelta {
    ItemId other = 0;
    /// ∆co-rating(item, other) = ∆min(r_u,item, r_u,other).
    double co_rating_delta = 0.0;
  };
  /// One entry per item the user rated within the linked time (§4.1.4).
  std::vector<PairDelta> pairs;
};

/// One user's behaviour history: current max-weight rating per item and the
/// action recency needed for the linked-time rule and recent-k filtering.
/// This is the state of Fig. 4's first layer (grouped by user id).
///
/// Storage is a flat insertion-ordered array of (item, state) rows — the
/// linked-time loop in Apply (a measured ~18% of per-action CPU on the old
/// node-per-entry map) walks contiguous memory, and iteration order is
/// deterministic, which makes the order pair deltas are emitted (and hence
/// top-K tie admission and pruning timing downstream) reproducible across
/// runs and identical between the serial reference and the sharded
/// executor's per-shard streams.
class UserHistory {
 public:
  struct ItemState {
    double rating = 0.0;
    EventTime last_action = 0;
  };

  /// One history row; items() exposes rows in insertion order.
  struct Item {
    ItemId item = 0;
    ItemState state;
  };

  /// Applies an action: updates the stored rating (max rule, §4.1.2),
  /// computes the rating delta and the co-rating deltas against every other
  /// item this user rated within `linked_time` of the action.
  ///
  /// Items whose last action is older than `linked_time` generate no pair
  /// (the real-time pruning section's linked-time rule); their stored
  /// ratings remain for recent-k queries until EvictOlderThan.
  ///
  /// Callback form — the zero-allocation hot path: `on_rating(item,
  /// rating_delta, new_rating)` fires once (before any pair delta, so a
  /// caller can publish the item-count delta first — the sharded executor
  /// relies on that ordering), then `on_pair(other, co_rating_delta)` fires
  /// per linked pair, in history insertion order. Callbacks must not
  /// reenter this history.
  template <typename OnRating, typename OnPair>
  void Apply(const UserAction& action, const ActionWeights& weights,
             EventTime linked_time, OnRating&& on_rating, OnPair&& on_pair) {
    const size_t pos = FindIndex(action.item);
    if (pos == items_.size()) items_.push_back(Item{action.item, {}});
    ItemState& state = items_[pos].state;

    const double old_rating = state.rating;
    const double weight = weights.Weight(action.action);
    const double new_rating = std::max(old_rating, weight);
    state.rating = new_rating;
    state.last_action = std::max(state.last_action, action.timestamp);

    on_rating(action.item, new_rating - old_rating, new_rating);

    // Pair deltas only when the rating actually moved: co-rating =
    // min(r_u,p, r_u,q) is monotone in each argument, so an unchanged
    // rating changes no co-rating.
    if (!(new_rating > old_rating)) return;
    for (const Item& row : items_) {
      if (row.item == action.item) continue;
      const ItemState& other = row.state;
      if (other.rating <= 0.0) continue;
      if (action.timestamp - other.last_action > linked_time) continue;
      const double old_co = std::min(old_rating, other.rating);
      const double new_co = std::min(new_rating, other.rating);
      if (new_co != old_co) on_pair(row.item, new_co - old_co);
    }
  }

  /// Materialized form of the callback Apply (topology bolts and tests;
  /// allocates the pair vector).
  RatingUpdate Apply(const UserAction& action, const ActionWeights& weights,
                     EventTime linked_time);

  /// Current rating for an item (0 when unrated).
  double RatingOf(ItemId item) const;

  /// The user's `k` most recently acted-on items, newest first (the
  /// real-time personalized filtering set, §4.3). Equal timestamps order by
  /// ascending item id (deterministic).
  std::vector<ItemId> RecentItems(size_t k) const;

  /// Drops items last touched before `cutoff` (bounding history size).
  void EvictOlderThan(EventTime cutoff);

  /// Directly installs an item state (deserialization path; bypasses the
  /// max rule).
  void Restore(ItemId item, double rating, EventTime last_action) {
    const size_t pos = FindIndex(item);
    if (pos == items_.size()) items_.push_back(Item{item, {}});
    items_[pos].state = ItemState{rating, last_action};
  }

  size_t size() const { return items_.size(); }
  /// Rows in insertion order.
  const std::vector<Item>& items() const { return items_; }

 private:
  /// Row index of `item`, or size() when absent (linear scan — the history
  /// is small and contiguous, and Apply is O(rows) anyway).
  size_t FindIndex(ItemId item) const {
    const Item* rows = items_.data();
    const size_t n = items_.size();
    size_t hit = n;
    for (size_t i = 0; i < n; ++i) {
      if (rows[i].item == item) hit = i;
    }
    return hit;
  }

  std::vector<Item> items_;
};

}  // namespace tencentrec::core

#endif  // TENCENTREC_CORE_RATING_H_
