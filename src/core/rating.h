#ifndef TENCENTREC_CORE_RATING_H_
#define TENCENTREC_CORE_RATING_H_

#include <unordered_map>
#include <vector>

#include "core/action.h"

namespace tencentrec::core {

/// Change produced by one user action: the user's rating delta for the
/// acted-on item, and co-rating deltas for every related item pair. These
/// are exactly the ∆r_up and ∆co-rating(ip, iq) that flow to the
/// itemCount/pairCount layers of Fig. 4.
struct RatingUpdate {
  ItemId item = 0;
  /// ∆r_u,item (0 when the action didn't raise the max-weight rating).
  double rating_delta = 0.0;
  /// New value of r_u,item after the action.
  double new_rating = 0.0;

  struct PairDelta {
    ItemId other = 0;
    /// ∆co-rating(item, other) = ∆min(r_u,item, r_u,other).
    double co_rating_delta = 0.0;
  };
  /// One entry per item the user rated within the linked time (§4.1.4).
  std::vector<PairDelta> pairs;
};

/// One user's behaviour history: current max-weight rating per item and the
/// action recency needed for the linked-time rule and recent-k filtering.
/// This is the state of Fig. 4's first layer (grouped by user id).
class UserHistory {
 public:
  struct ItemState {
    double rating = 0.0;
    EventTime last_action = 0;
  };

  /// Applies an action: updates the stored rating (max rule, §4.1.2),
  /// computes the rating delta and the co-rating deltas against every other
  /// item this user rated within `linked_time` of the action.
  ///
  /// Items whose last action is older than `linked_time` generate no pair
  /// (the real-time pruning section's linked-time rule); their stored
  /// ratings remain for recent-k queries until EvictOlderThan.
  RatingUpdate Apply(const UserAction& action, const ActionWeights& weights,
                     EventTime linked_time);

  /// Current rating for an item (0 when unrated).
  double RatingOf(ItemId item) const;

  /// The user's `k` most recently acted-on items, newest first (the
  /// real-time personalized filtering set, §4.3).
  std::vector<ItemId> RecentItems(size_t k) const;

  /// Drops items last touched before `cutoff` (bounding history size).
  void EvictOlderThan(EventTime cutoff);

  /// Directly installs an item state (deserialization path; bypasses the
  /// max rule).
  void Restore(ItemId item, double rating, EventTime last_action) {
    items_[item] = ItemState{rating, last_action};
  }

  size_t size() const { return items_.size(); }
  const std::unordered_map<ItemId, ItemState>& items() const { return items_; }

 private:
  std::unordered_map<ItemId, ItemState> items_;
};

}  // namespace tencentrec::core

#endif  // TENCENTREC_CORE_RATING_H_
