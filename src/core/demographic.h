#ifndef TENCENTREC_CORE_DEMOGRAPHIC_H_
#define TENCENTREC_CORE_DEMOGRAPHIC_H_

#include <deque>
#include <unordered_map>

#include "core/rating.h"
#include "core/scored.h"

namespace tencentrec::core {

/// Demographic-based recommendation (DB, §4.2): users are clustered into
/// demographic groups (gender x age band), each group maintains
/// sliding-window popularity counts, and recommendation = the group's hot
/// items. Every group also feeds the global group 0, which serves users
/// with unknown demographics (§6.4: "for the user who does not have the
/// information like gender or age, we will use the global demographic
/// group").
///
/// DB is the data-sparsity complement: when CF/CB cannot produce enough
/// results (new or inactive user), the hybrid recommender falls back to
/// these hot lists.
class DemographicRecommender {
 public:
  struct Options {
    ActionWeights weights;
    EventTime session_length = Hours(1);
    /// Sessions in the popularity window; 0 = cumulative.
    int window_sessions = 24;
  };

  explicit DemographicRecommender(Options options);

  void ProcessAction(const UserAction& action);

  /// Top-n hot items of a group within the window. Falls back to the
  /// global group when the group has no data.
  Recommendations HotItems(GroupId group, size_t n) const;

  Recommendations RecommendForUser(const Demographics& demographics,
                                   size_t n) const {
    return HotItems(DemographicGroup(demographics), n);
  }

  /// Live (windowed) popularity score of an item within a group.
  double Popularity(GroupId group, ItemId item) const;

  size_t NumGroups() const { return groups_.size(); }

 private:
  struct Session {
    int64_t id = 0;
    std::unordered_map<ItemId, double> counts;
  };
  struct GroupCounts {
    std::deque<Session> sessions;  ///< oldest first
  };

  int64_t SessionOf(EventTime ts) const { return ts / session_length_; }
  bool InWindow(int64_t session_id) const {
    return options_.window_sessions <= 0 ||
           session_id > latest_session_ - options_.window_sessions;
  }
  void Add(GroupId group, ItemId item, double delta, int64_t session_id);

  Options options_;
  EventTime session_length_;
  int64_t latest_session_ = -1;
  std::unordered_map<GroupId, GroupCounts> groups_;
};

}  // namespace tencentrec::core

#endif  // TENCENTREC_CORE_DEMOGRAPHIC_H_
