#ifndef TENCENTREC_CORE_ACTION_H_
#define TENCENTREC_CORE_ACTION_H_

#include <array>
#include <cstdint>
#include <string>

#include "common/clock.h"

namespace tencentrec::core {

using UserId = int64_t;
using ItemId = int64_t;

/// Implicit-feedback behaviour types observed by the applications (§4.1.2:
/// "click, browse, purchase, share, comment, etc."). kImpression is an ad
/// being shown (used by the CTR algorithm as the denominator).
enum class ActionType : uint8_t {
  kImpression = 0,
  kBrowse,
  kClick,
  kRead,
  kShare,
  kComment,
  kPurchase,
  kNumActionTypes,
};

constexpr size_t kNumActionTypes =
    static_cast<size_t>(ActionType::kNumActionTypes);

const char* ActionTypeName(ActionType type);

/// Demographic attributes used for clustering users into groups (§4.2:
/// "gender, age and education"; we use gender/age-band/region as in the
/// CTR example query of §1). kUnknown* lets the DB algorithm fall back to
/// the global group for users with missing attributes (§6.4).
struct Demographics {
  enum Gender : uint8_t { kUnknownGender = 0, kMale, kFemale };

  Gender gender = kUnknownGender;
  /// 0 = unknown, else decade band (1 = <20, 2 = 20s, 3 = 30s, ...).
  uint8_t age_band = 0;
  /// 0 = unknown, else region code.
  uint16_t region = 0;

  bool operator==(const Demographics&) const = default;
};

/// Identifier of a demographic group; 0 is the global group (all users).
using GroupId = uint32_t;

/// Maps demographics to a group id: gender x age_band (region intentionally
/// excluded from grouping to keep groups dense; the CTR algorithm uses
/// region as a separate dimension). Unknown attributes map to the global
/// group.
inline GroupId DemographicGroup(const Demographics& d) {
  if (d.gender == Demographics::kUnknownGender || d.age_band == 0) return 0;
  return static_cast<GroupId>(d.gender) * 100u + d.age_band;
}

/// One raw user-action tuple as emitted by an application into TDAccess:
/// <user, item, action> plus event time and the acting user's demographics
/// (joined in by the application's tracking tier).
struct UserAction {
  UserId user = 0;
  ItemId item = 0;
  ActionType action = ActionType::kClick;
  EventTime timestamp = 0;
  Demographics demographics;
  /// Wall-clock (MonoMicros) instant the action entered the system — stamped
  /// at publish/spout time, carried through the topology untouched, and
  /// subtracted at each store write to measure true event-to-store latency
  /// (the paper's ~2s freshness claim). 0 = unstamped. Instrumentation only:
  /// never an input to any algorithm, so determinism of the event-time axis
  /// is unaffected.
  uint64_t ingest_micros = 0;
  /// Sampled-tracing id (common/trace.h): nonzero for the 1-in-N actions
  /// picked at the publish/spout edge; every component hop the action (or a
  /// tuple derived from it) crosses records a span under this id. 0 = not
  /// sampled. Instrumentation only, like ingest_micros.
  uint64_t trace_id = 0;
};

/// Per-action-type rating weights (§4.1.2: "a browse behavior may
/// correspond to a one star rating while a purchase behavior corresponds to
/// a three star rating"). A user's rating for an item is the MAX weight
/// across their actions on it, which bounds the noise of messy implicit
/// feedback.
class ActionWeights {
 public:
  /// Paper-inspired defaults; impressions carry no preference weight.
  ActionWeights() {
    weights_[static_cast<size_t>(ActionType::kImpression)] = 0.0;
    weights_[static_cast<size_t>(ActionType::kBrowse)] = 1.0;
    weights_[static_cast<size_t>(ActionType::kClick)] = 1.5;
    weights_[static_cast<size_t>(ActionType::kRead)] = 2.0;
    weights_[static_cast<size_t>(ActionType::kShare)] = 2.5;
    weights_[static_cast<size_t>(ActionType::kComment)] = 2.5;
    weights_[static_cast<size_t>(ActionType::kPurchase)] = 3.0;
  }

  double Weight(ActionType type) const {
    return weights_[static_cast<size_t>(type)];
  }

  void SetWeight(ActionType type, double weight) {
    weights_[static_cast<size_t>(type)] = weight;
  }

  /// Maximum configured weight; the rating range R in the Hoeffding bound
  /// discussion is expressed in similarity space (R = 1), but rating-space
  /// consumers (e.g. normalizers) may need this.
  double MaxWeight() const {
    double m = 0.0;
    for (double w : weights_) m = m > w ? m : w;
    return m;
  }

 private:
  std::array<double, kNumActionTypes> weights_{};
};

}  // namespace tencentrec::core

#endif  // TENCENTREC_CORE_ACTION_H_
