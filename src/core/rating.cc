#include "core/rating.h"

#include <algorithm>

namespace tencentrec::core {

const char* ActionTypeName(ActionType type) {
  switch (type) {
    case ActionType::kImpression:
      return "impression";
    case ActionType::kBrowse:
      return "browse";
    case ActionType::kClick:
      return "click";
    case ActionType::kRead:
      return "read";
    case ActionType::kShare:
      return "share";
    case ActionType::kComment:
      return "comment";
    case ActionType::kPurchase:
      return "purchase";
    case ActionType::kNumActionTypes:
      break;
  }
  return "unknown";
}

RatingUpdate UserHistory::Apply(const UserAction& action,
                                const ActionWeights& weights,
                                EventTime linked_time) {
  RatingUpdate update;
  update.item = action.item;

  ItemState& state = items_[action.item];
  const double old_rating = state.rating;
  const double weight = weights.Weight(action.action);
  const double new_rating = std::max(old_rating, weight);

  update.rating_delta = new_rating - old_rating;
  update.new_rating = new_rating;

  // Pair deltas only when the rating actually moved: co-rating =
  // min(r_u,p, r_u,q) is monotone in each argument, so an unchanged rating
  // changes no co-rating.
  if (update.rating_delta > 0.0) {
    for (const auto& [other, other_state] : items_) {
      if (other == action.item) continue;
      if (other_state.rating <= 0.0) continue;
      if (action.timestamp - other_state.last_action > linked_time) continue;
      const double old_co = std::min(old_rating, other_state.rating);
      const double new_co = std::min(new_rating, other_state.rating);
      if (new_co != old_co) {
        update.pairs.push_back({other, new_co - old_co});
      }
    }
  }

  state.rating = new_rating;
  state.last_action = std::max(state.last_action, action.timestamp);
  return update;
}

double UserHistory::RatingOf(ItemId item) const {
  auto it = items_.find(item);
  return it == items_.end() ? 0.0 : it->second.rating;
}

std::vector<ItemId> UserHistory::RecentItems(size_t k) const {
  std::vector<std::pair<EventTime, ItemId>> by_time;
  by_time.reserve(items_.size());
  for (const auto& [item, state] : items_) {
    if (state.rating > 0.0) by_time.emplace_back(state.last_action, item);
  }
  std::sort(by_time.begin(), by_time.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  std::vector<ItemId> out;
  out.reserve(std::min(k, by_time.size()));
  for (size_t i = 0; i < by_time.size() && i < k; ++i) {
    out.push_back(by_time[i].second);
  }
  return out;
}

void UserHistory::EvictOlderThan(EventTime cutoff) {
  for (auto it = items_.begin(); it != items_.end();) {
    if (it->second.last_action < cutoff) {
      it = items_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace tencentrec::core
