#include "core/rating.h"

#include <algorithm>
#include <utility>

namespace tencentrec::core {

const char* ActionTypeName(ActionType type) {
  switch (type) {
    case ActionType::kImpression:
      return "impression";
    case ActionType::kBrowse:
      return "browse";
    case ActionType::kClick:
      return "click";
    case ActionType::kRead:
      return "read";
    case ActionType::kShare:
      return "share";
    case ActionType::kComment:
      return "comment";
    case ActionType::kPurchase:
      return "purchase";
    case ActionType::kNumActionTypes:
      break;
  }
  return "unknown";
}

RatingUpdate UserHistory::Apply(const UserAction& action,
                                const ActionWeights& weights,
                                EventTime linked_time) {
  RatingUpdate update;
  Apply(
      action, weights, linked_time,
      [&update](ItemId item, double rating_delta, double new_rating) {
        update.item = item;
        update.rating_delta = rating_delta;
        update.new_rating = new_rating;
      },
      [&update](ItemId other, double co_rating_delta) {
        update.pairs.push_back({other, co_rating_delta});
      });
  return update;
}

double UserHistory::RatingOf(ItemId item) const {
  const size_t pos = FindIndex(item);
  return pos == items_.size() ? 0.0 : items_[pos].state.rating;
}

std::vector<ItemId> UserHistory::RecentItems(size_t k) const {
  std::vector<std::pair<EventTime, ItemId>> by_time;
  by_time.reserve(items_.size());
  for (const Item& row : items_) {
    if (row.state.rating > 0.0) {
      by_time.emplace_back(row.state.last_action, row.item);
    }
  }
  std::sort(by_time.begin(), by_time.end(),
            [](const auto& a, const auto& b) {
              if (a.first != b.first) return a.first > b.first;
              return a.second < b.second;  // deterministic ties
            });
  std::vector<ItemId> out;
  out.reserve(std::min(k, by_time.size()));
  for (size_t i = 0; i < by_time.size() && i < k; ++i) {
    out.push_back(by_time[i].second);
  }
  return out;
}

void UserHistory::EvictOlderThan(EventTime cutoff) {
  // Stable compaction: surviving rows keep their insertion order.
  size_t keep = 0;
  for (size_t i = 0; i < items_.size(); ++i) {
    if (items_[i].state.last_action >= cutoff) {
      if (keep != i) items_[keep] = items_[i];
      ++keep;
    }
  }
  items_.resize(keep);
}

}  // namespace tencentrec::core
