#ifndef TENCENTREC_CORE_RECOMMENDER_H_
#define TENCENTREC_CORE_RECOMMENDER_H_

#include <memory>

#include "core/demographic.h"
#include "core/itemcf/item_cf.h"
#include "core/scored.h"

namespace tencentrec::core {

/// The composition TencentRec actually serves (§4.2–4.3, §6.4): the
/// practical item-based CF produces personalized candidates from the user's
/// real-time recent-k items, and whenever CF "cannot effectively generate
/// good recommendations" — new user, inactive user, sparse position — the
/// demographic-based algorithm complements the list with the user's group
/// hot items (global group when demographics are unknown).
class HybridRecommender {
 public:
  struct Options {
    PracticalItemCf::Options cf;
    DemographicRecommender::Options db;
    /// CF scores below this are considered ineffective and yield to DB
    /// complement ("the item pairs' similarity scores are too low", §4.3).
    double min_cf_score = 0.0;
  };

  explicit HybridRecommender(Options options)
      : options_(options), cf_(options.cf), db_(options.db) {}

  /// Ingests one action into both models.
  void ProcessAction(const UserAction& action) {
    cf_.ProcessAction(action);
    db_.ProcessAction(action);
  }

  /// CF first, DB complement to fill up to n. Items the user recently
  /// touched are filtered from the complement too.
  Recommendations Recommend(UserId user, const Demographics& demographics,
                            size_t n) const;

  PracticalItemCf& cf() { return cf_; }
  const PracticalItemCf& cf() const { return cf_; }
  DemographicRecommender& db() { return db_; }
  const DemographicRecommender& db() const { return db_; }

 private:
  Options options_;
  PracticalItemCf cf_;
  DemographicRecommender db_;
};

}  // namespace tencentrec::core

#endif  // TENCENTREC_CORE_RECOMMENDER_H_
