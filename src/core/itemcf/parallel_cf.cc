#include "core/itemcf/parallel_cf.h"

#include <algorithm>
#include <cmath>

#include "common/hash.h"
#include "common/logging.h"
#include "common/trace.h"
#include "core/itemcf/predict.h"

namespace tencentrec::core {

// Stage timing uses the shared monotonic clock from common/metrics.h.
namespace {

uint64_t NowMicros() { return MonoMicros(); }

// `hash & mask` when the bucket count is a power of two (mask != 0, the
// default configs), `hash % n` otherwise. Same bucket for the same hash
// either way — only the instruction differs.
inline size_t Route(uint64_t hash, size_t mask, size_t n) {
  return mask != 0 ? (static_cast<size_t>(hash) & mask)
                   : (static_cast<size_t>(hash) % n);
}

inline size_t MaskFor(size_t n) { return (n & (n - 1)) == 0 ? n - 1 : 0; }

}  // namespace

std::string ParallelItemCf::StageNameFor(const char* stage) const {
  const std::string& scope = options_.metrics_scope;
  return (scope.empty() ? std::string("parallel_cf") : scope) + "." + stage;
}

ParallelItemCf::ParallelItemCf(Options options) : options_(std::move(options)) {
  options_.user_shards = std::max(1, options_.user_shards);
  options_.pair_shards = std::max(1, options_.pair_shards);
  options_.count_stripes = std::max(1, options_.count_stripes);
  options_.list_stripes = std::max(1, options_.list_stripes);
  options_.batch_size = std::max<size_t>(1, options_.batch_size);
  options_.queue_capacity = std::max<size_t>(1, options_.queue_capacity);
  if (options_.cf.hoeffding_delta <= 0.0 ||
      options_.cf.hoeffding_delta >= 1.0) {
    options_.cf.hoeffding_delta = 0.05;
  }
  hoeffding_ln_inv_delta_ = std::log(1.0 / options_.cf.hoeffding_delta);
  user_shard_mask_ = MaskFor(static_cast<size_t>(options_.user_shards));
  pair_shard_mask_ = MaskFor(static_cast<size_t>(options_.pair_shards));
  count_stripe_mask_ = MaskFor(static_cast<size_t>(options_.count_stripes));
  list_stripe_mask_ = MaskFor(static_cast<size_t>(options_.list_stripes));

  if (MetricsEnabled() && !options_.metrics_scope.empty()) {
    auto& reg = MetricRegistry::Default();
    const std::string& scope = options_.metrics_scope;
    user_queue_wait_ = reg.GetHistogram(scope + ".user-history.queue_wait_us");
    user_service_ = reg.GetHistogram(scope + ".user-history.service_us");
    pair_queue_wait_ = reg.GetHistogram(scope + ".count+sim.queue_wait_us");
    pair_service_ = reg.GetHistogram(scope + ".count+sim.service_us");
  }

  // All windowed state defers eviction to the drain barrier: shards run at
  // slightly different points in the stream, and eager eviction would
  // misread a lagging shard's in-order events as late data whenever the
  // stream jumps across sessions (see WindowedCounts::SetDeferredEviction).
  for (int s = 0; s < options_.count_stripes; ++s) {
    auto stripe = std::make_unique<CountStripe>(options_.cf.session_length,
                                                options_.cf.window_sessions,
                                                options_.cf.use_flat_kernels);
    stripe->counts.SetDeferredEviction(true);
    item_stripes_.push_back(std::move(stripe));
  }
  for (int s = 0; s < options_.list_stripes; ++s) {
    list_stripes_.push_back(std::make_unique<ListStripe>());
  }

  pending_.resize(static_cast<size_t>(options_.user_shards));
  for (int s = 0; s < options_.pair_shards; ++s) {
    auto shard = std::make_unique<PairShard>(options_.queue_capacity,
                                             options_.cf.session_length,
                                             options_.cf.window_sessions,
                                             options_.cf.use_flat_kernels);
    shard->counts.SetDeferredEviction(true);
    pair_shards_.push_back(std::move(shard));
  }
  for (int s = 0; s < options_.user_shards; ++s) {
    user_shards_.push_back(
        std::make_unique<UserShard>(options_.queue_capacity));
  }
  // Freshness slots are registered before the workers start so the stages
  // exist (with no-data watermarks) from the first /vars publication. The
  // obs plane is independent of the metrics kill switch.
  const std::string freshness_scope =
      options_.metrics_scope.empty() ? "parallel_cf" : options_.metrics_scope;
  for (auto& shard : user_shards_) {
    shard->freshness = obs::FreshnessTracker::Default().RegisterSlot(
        freshness_scope + ".user-history");
  }
  for (auto& shard : pair_shards_) {
    shard->freshness = obs::FreshnessTracker::Default().RegisterSlot(
        freshness_scope + ".count+sim");
  }
  // Start the downstream layer first so upstream emissions always find
  // live consumers (same discipline as tstorm::LocalCluster).
  for (auto& shard : pair_shards_) {
    shard->thread =
        std::thread([this, s = shard.get()] { PairWorker(s); });
  }
  for (auto& shard : user_shards_) {
    shard->thread =
        std::thread([this, s = shard.get()] { UserWorker(s); });
  }
}

ParallelItemCf::~ParallelItemCf() { Shutdown(); }

size_t ParallelItemCf::UserShardOf(UserId user) const {
  return Route(HashInt(static_cast<uint64_t>(user)), user_shard_mask_,
               user_shards_.size());
}

size_t ParallelItemCf::PairShardOf(const PairKey& key) const {
  return Route(PairKeyHash()(key), pair_shard_mask_, pair_shards_.size());
}

ParallelItemCf::CountStripe& ParallelItemCf::ItemStripe(ItemId item) const {
  return *item_stripes_[Route(HashInt(static_cast<uint64_t>(item)),
                              count_stripe_mask_, item_stripes_.size())];
}

ParallelItemCf::ListStripe& ParallelItemCf::ListStripeOf(ItemId item) const {
  return *list_stripes_[Route(HashInt(static_cast<uint64_t>(item)),
                              list_stripe_mask_, list_stripes_.size())];
}

// --- ingestion (driver thread) ----------------------------------------------

void ParallelItemCf::ProcessAction(const UserAction& action) {
  TR_CHECK(!shutdown_);
  if (action.timestamp > max_ts_) max_ts_ = action.timestamp;
  if (action.ingest_micros > max_ingest_) max_ingest_ = action.ingest_micros;
  const size_t shard = UserShardOf(action.user);
  pending_[shard].push_back(action);
  if (pending_[shard].size() >= options_.batch_size) PushUserBatch(shard);
}

void ParallelItemCf::ProcessActions(const std::vector<UserAction>& actions) {
  for (const auto& action : actions) ProcessAction(action);
}

void ParallelItemCf::PushUserBatch(size_t shard_index) {
  if (pending_[shard_index].empty()) return;
  UserMsg msg;
  msg.actions = std::move(pending_[shard_index]);
  pending_[shard_index].clear();
  if (user_queue_wait_ != nullptr) msg.enqueue_micros = NowMicros();
  user_shards_[shard_index]->queue.Push(std::move(msg));
}

// --- barrier / lifecycle ------------------------------------------------------

void ParallelItemCf::BeginBarrier(int acks) {
  std::lock_guard<std::mutex> lock(barrier_mu_);
  barrier_pending_ = acks;
}

void ParallelItemCf::AwaitBarrier() {
  std::unique_lock<std::mutex> lock(barrier_mu_);
  barrier_cv_.wait(lock, [&] { return barrier_pending_ == 0; });
}

void ParallelItemCf::AckBarrier() {
  std::lock_guard<std::mutex> lock(barrier_mu_);
  if (--barrier_pending_ == 0) barrier_cv_.notify_all();
}

void ParallelItemCf::Drain() {
  if (shutdown_) return;
  for (size_t s = 0; s < pending_.size(); ++s) PushUserBatch(s);

  // Phase 1: every user worker flushes its pair-delta buffers downstream.
  // FIFO queues guarantee those batches precede the phase-2 flush tokens.
  BeginBarrier(static_cast<int>(user_shards_.size()));
  for (auto& shard : user_shards_) {
    UserMsg msg;
    msg.flush = true;
    msg.ingest_watermark = max_ingest_;
    shard->queue.Push(std::move(msg));
  }
  AwaitBarrier();

  // Phase 2: every pair worker applies what layer 1 emitted, then advances
  // its sliding window to the stream's high-water mark so expiry does not
  // depend on which shard saw the newest event.
  BeginBarrier(static_cast<int>(pair_shards_.size()));
  for (auto& shard : pair_shards_) {
    PairMsg msg;
    msg.flush = true;
    msg.watermark = max_ts_;
    msg.ingest_watermark = max_ingest_;
    shard->queue.Push(std::move(msg));
  }
  AwaitBarrier();

  // Shared itemCounts advance the same way.
  for (auto& stripe : item_stripes_) {
    std::lock_guard<ProfiledMutex> lock(stripe->mu);
    stripe->counts.AdvanceTo(max_ts_);
  }
}

void ParallelItemCf::Shutdown() {
  if (shutdown_) return;
  Drain();
  shutdown_ = true;
  for (auto& shard : user_shards_) shard->queue.Close();
  for (auto& shard : user_shards_) {
    if (shard->thread.joinable()) shard->thread.join();
  }
  for (auto& shard : pair_shards_) shard->queue.Close();
  for (auto& shard : pair_shards_) {
    if (shard->thread.joinable()) shard->thread.join();
  }
}

// --- kernel-dispatching state accessors ---------------------------------------

UserHistory& ParallelItemCf::HistoryFor(UserShard* shard, UserId user) {
  if (options_.cf.use_flat_kernels) {
    uint32_t& idx = shard->history_index[PackUser(user)];
    if (idx == 0) {
      // 1-based slot ids so the flat table's zero value means "absent"; the
      // deque keeps rows at stable addresses across inserts.
      shard->history_store.emplace_back();
      idx = static_cast<uint32_t>(shard->history_store.size());
    }
    return shard->history_store[idx - 1];
  }
  return shard->histories_map[user];
}

const UserHistory* ParallelItemCf::FindHistory(const UserShard& shard,
                                               UserId user) const {
  if (options_.cf.use_flat_kernels) {
    const uint32_t* idx = shard.history_index.Find(PackUser(user));
    return idx == nullptr ? nullptr : &shard.history_store[*idx - 1];
  }
  auto it = shard.histories_map.find(user);
  return it == shard.histories_map.end() ? nullptr : &it->second;
}

TopK<ItemId>& ParallelItemCf::GetListLocked(ListStripe& stripe, ItemId item) {
  const size_t k = static_cast<size_t>(options_.cf.top_k);
  if (options_.cf.use_flat_kernels) {
    uint32_t& idx = stripe.index[PackItem(item)];
    if (idx == 0) {
      stripe.store.emplace_back(k);
      idx = static_cast<uint32_t>(stripe.store.size());
    }
    return stripe.store[idx - 1];
  }
  return stripe.lists_map.try_emplace(item, k).first->second;
}

TopK<ItemId>* ParallelItemCf::FindListLocked(const ListStripe& stripe,
                                             ItemId item) const {
  if (options_.cf.use_flat_kernels) {
    const uint32_t* idx = stripe.index.Find(PackItem(item));
    return idx == nullptr
               ? nullptr
               : const_cast<TopK<ItemId>*>(&stripe.store[*idx - 1]);
  }
  auto it = stripe.lists_map.find(item);
  return it == stripe.lists_map.end()
             ? nullptr
             : const_cast<TopK<ItemId>*>(&it->second);
}

bool ParallelItemCf::IsPrunedIn(const PairShard& shard,
                                const PairKey& key) const {
  return options_.cf.use_flat_kernels ? shard.pruned_flat.Contains(PackPair(key))
                                      : shard.pruned_set.count(key) > 0;
}

// --- layer 1: user-history workers -------------------------------------------

void ParallelItemCf::UserWorker(UserShard* shard) {
  RegisterStageThread(StageNameFor("user-history"));
  // Per-destination-shard output buffers, flushed when full and on drain.
  std::vector<std::vector<PairDelta>> out(pair_shards_.size());
  auto flush_all = [&] {
    for (size_t p = 0; p < out.size(); ++p) {
      if (out[p].empty()) continue;
      PairMsg msg;
      msg.deltas = std::move(out[p]);
      out[p].clear();
      if (pair_queue_wait_ != nullptr) msg.enqueue_micros = NowMicros();
      pair_shards_[p]->queue.Push(std::move(msg));
    }
  };

  while (auto msg = shard->queue.Pop()) {
    shard->heartbeat.fetch_add(1, std::memory_order_relaxed);
    const uint64_t t0 = NowMicros();
    if (msg->flush) {
      flush_all();
      // Everything the driver had pushed before this token is processed.
      shard->freshness.Advance(msg->ingest_watermark);
      shard->busy_micros += NowMicros() - t0;
      AckBarrier();
      continue;
    }
    if (user_queue_wait_ != nullptr && msg->enqueue_micros != 0) {
      user_queue_wait_->Record(t0 > msg->enqueue_micros
                                   ? t0 - msg->enqueue_micros
                                   : 0);
    }
    uint64_t batch_ingest = 0;
    for (const UserAction& action : msg->actions) {
      HandleAction(shard, action, &out);
      if (action.ingest_micros > batch_ingest) {
        batch_ingest = action.ingest_micros;
      }
    }
    shard->freshness.Advance(batch_ingest);
    shard->events += msg->actions.size();
    ++shard->batches;
    const uint64_t elapsed = NowMicros() - t0;
    shard->busy_micros += elapsed;
    if (user_service_ != nullptr) user_service_->Record(elapsed);
  }
  // Queue closed mid-stream (shutdown without drain): discard buffers.
}

void ParallelItemCf::HandleAction(UserShard* shard, const UserAction& action,
                                  std::vector<std::vector<PairDelta>>* out) {
  ++shard->actions;
  ScopedSpan span(action.trace_id, "parallel_cf.user-history");
  UserHistory& history = HistoryFor(shard, action.user);
  if (options_.cf.history_ttl > 0) {
    history.EvictOlderThan(action.timestamp - options_.cf.history_ttl);
  }
  // Callback form of Apply: no per-action pair vector. The rating callback
  // fires before any pair callback, preserving the publish order the
  // consistency model needs — the item-count delta is visible in its stripe
  // before any co-rating delta that depends on it is even buffered.
  history.Apply(
      action, options_.cf.weights, options_.cf.linked_time,
      [this, &action](ItemId item, double rating_delta, double /*new_rating*/) {
        if (rating_delta > 0.0) {
          CountStripe& stripe = ItemStripe(item);
          std::lock_guard<ProfiledMutex> lock(stripe.mu);
          stripe.counts.AddItem(item, rating_delta, action.timestamp);
        }
        // (Zero-delta actions advance windows lazily — the Drain watermark
        // settles all windows, unlike the reference's eager AdvanceTo.)
      },
      [this, &action, out](ItemId other, double co_delta) {
        const size_t p = PairShardOf(PairKey(action.item, other));
        auto& buf = (*out)[p];
        buf.push_back({action.item, other, co_delta, action.timestamp,
                       action.ingest_micros, action.trace_id});
        if (buf.size() >= options_.batch_size) {
          PairMsg msg;
          msg.deltas = std::move(buf);
          buf.clear();
          if (pair_queue_wait_ != nullptr) msg.enqueue_micros = NowMicros();
          pair_shards_[p]->queue.Push(std::move(msg));
        }
      });
}

// --- layers 2+3: count + similarity workers ----------------------------------

void ParallelItemCf::PairWorker(PairShard* shard) {
  RegisterStageThread(StageNameFor("count+sim"));
  // Per-batch itemCount memo (see HandlePairDelta); lives across batches so
  // its capacity stabilizes, but its *entries* are cleared per batch.
  FlatMap64<double> item_counts;
  while (auto msg = shard->queue.Pop()) {
    shard->heartbeat.fetch_add(1, std::memory_order_relaxed);
    const uint64_t t0 = NowMicros();
    if (msg->flush) {
      shard->counts.AdvanceTo(msg->watermark);
      // Phase-2 token: all phase-1 output reached this shard first (FIFO),
      // so the drain's ingest high-water mark is fully processed here too.
      shard->freshness.Advance(msg->ingest_watermark);
      shard->busy_micros += NowMicros() - t0;
      AckBarrier();
      continue;
    }
    if (pair_queue_wait_ != nullptr && msg->enqueue_micros != 0) {
      pair_queue_wait_->Record(t0 > msg->enqueue_micros
                                   ? t0 - msg->enqueue_micros
                                   : 0);
    }
    uint64_t batch_ingest = 0;
    item_counts.Clear();
    const std::vector<PairDelta>& deltas = msg->deltas;
    for (size_t d = 0; d < deltas.size(); ++d) {
      // Overlap the next delta's pair-table misses with this delta's work.
      if (d + 1 < deltas.size()) {
        shard->counts.PrefetchPair(deltas[d + 1].i, deltas[d + 1].j);
      }
      HandlePairDelta(shard, deltas[d], &item_counts);
      if (deltas[d].ingest > batch_ingest) batch_ingest = deltas[d].ingest;
    }
    shard->freshness.Advance(batch_ingest);
    shard->events += msg->deltas.size();
    ++shard->batches;
    const uint64_t elapsed = NowMicros() - t0;
    shard->busy_micros += elapsed;
    if (pair_service_ != nullptr) pair_service_->Record(elapsed);
  }
}

void ParallelItemCf::HandlePairDelta(PairShard* shard, const PairDelta& delta,
                                     FlatMap64<double>* item_counts) {
  ScopedSpan span(delta.trace_id, "parallel_cf.count+sim");
  const PairKey key(delta.i, delta.j);
  if (options_.cf.enable_pruning && IsPrunedIn(*shard, key)) {
    ++shard->pair_updates_pruned;
    return;
  }

  shard->counts.AddPair(delta.i, delta.j, delta.co_delta, delta.ts);
  ++shard->pair_updates;

  const double pc = shard->counts.PairCount(delta.i, delta.j);
  const double sim =
      EffectiveFrom(CachedItemCountOf(item_counts, delta.i),
                    CachedItemCountOf(item_counts, delta.j), pc);

  // Maintain both items' similar-items lists (striped shared state; one
  // stripe lock at a time, so no ordering discipline is needed).
  {
    ListStripe& stripe = ListStripeOf(delta.i);
    std::lock_guard<ProfiledMutex> lock(stripe.mu);
    GetListLocked(stripe, delta.i).Update(delta.j, sim);
  }
  {
    ListStripe& stripe = ListStripeOf(delta.j);
    std::lock_guard<ProfiledMutex> lock(stripe.mu);
    GetListLocked(stripe, delta.j).Update(delta.i, sim);
  }

  if (!options_.cf.enable_pruning) return;

  const uint32_t n = options_.cf.use_flat_kernels
                         ? ++shard->observations_flat[PackPair(key)]
                         : ++shard->observations_map[key];
  const double t =
      std::min(ListThresholdOf(delta.i), ListThresholdOf(delta.j));
  if (t <= 0.0) return;
  const double epsilon =
      std::sqrt(hoeffding_ln_inv_delta_ / (2.0 * static_cast<double>(n)));
  if (epsilon < t - sim) {
    if (options_.cf.use_flat_kernels) {
      shard->pruned_flat.Insert(PackPair(key));
    } else {
      shard->pruned_set.insert(key);
    }
    ++shard->pairs_pruned;
    // Under concurrency the stale-entry erase is live (a racing update may
    // have admitted the pair with a higher snapshot score); the shrunk
    // list's threshold conservatively reopens to 0 — see TopK::Threshold.
    {
      ListStripe& stripe = ListStripeOf(delta.i);
      std::lock_guard<ProfiledMutex> lock(stripe.mu);
      if (TopK<ItemId>* list = FindListLocked(stripe, delta.i)) {
        list->Erase(delta.j);
      }
    }
    {
      ListStripe& stripe = ListStripeOf(delta.j);
      std::lock_guard<ProfiledMutex> lock(stripe.mu);
      if (TopK<ItemId>* list = FindListLocked(stripe, delta.j)) {
        list->Erase(delta.i);
      }
    }
  }
}

double ParallelItemCf::ItemCountOf(ItemId item) const {
  CountStripe& stripe = ItemStripe(item);
  std::lock_guard<ProfiledMutex> lock(stripe.mu);
  return stripe.counts.ItemCount(item);
}

double ParallelItemCf::CachedItemCountOf(FlatMap64<double>* cache,
                                         ItemId item) const {
  const uint64_t key = PackItem(item);
  if (const double* v = cache->Find(key)) return *v;
  const double c = ItemCountOf(item);
  (*cache)[key] = c;
  return c;
}

double ParallelItemCf::EffectiveFrom(double count_a, double count_b,
                                     double pair_count) const {
  // Eq. 5/10 + shrinkage, mirroring WindowedCounts::Similarity.
  if (count_a <= 0.0 || count_b <= 0.0 || pair_count <= 0.0) return 0.0;
  double sim = pair_count / std::sqrt(count_a * count_b);
  if (options_.cf.support_shrinkage > 0.0) {
    sim *= pair_count / (pair_count + options_.cf.support_shrinkage);
  }
  return sim;
}

double ParallelItemCf::SimilarityFromCounts(ItemId a, ItemId b,
                                            double pair_count) const {
  // Eq. 5/10, mirroring WindowedCounts::Similarity.
  const double ca = ItemCountOf(a);
  const double cb = ItemCountOf(b);
  if (ca <= 0.0 || cb <= 0.0) return 0.0;
  if (pair_count <= 0.0) return 0.0;
  return pair_count / std::sqrt(ca * cb);
}

double ParallelItemCf::EffectiveFromCounts(ItemId a, ItemId b,
                                           double pair_count) const {
  double sim = SimilarityFromCounts(a, b, pair_count);
  if (sim > 0.0 && options_.cf.support_shrinkage > 0.0) {
    sim *= pair_count / (pair_count + options_.cf.support_shrinkage);
  }
  return sim;
}

double ParallelItemCf::ListThresholdOf(ItemId item) const {
  ListStripe& stripe = ListStripeOf(item);
  std::lock_guard<ProfiledMutex> lock(stripe.mu);
  const TopK<ItemId>* list = FindListLocked(stripe, item);
  return list == nullptr ? 0.0 : list->Threshold();
}

// --- queries (quiescent pipeline) --------------------------------------------

double ParallelItemCf::Similarity(ItemId a, ItemId b) const {
  const PairKey key(a, b);
  const double pc = pair_shards_[PairShardOf(key)]->counts.PairCount(a, b);
  return SimilarityFromCounts(a, b, pc);
}

double ParallelItemCf::EffectiveSimilarity(ItemId a, ItemId b) const {
  const PairKey key(a, b);
  const double pc = pair_shards_[PairShardOf(key)]->counts.PairCount(a, b);
  return EffectiveFromCounts(a, b, pc);
}

const TopK<ItemId>* ParallelItemCf::SimilarItems(ItemId item) const {
  ListStripe& stripe = ListStripeOf(item);
  std::lock_guard<ProfiledMutex> lock(stripe.mu);
  return FindListLocked(stripe, item);
}

std::vector<ItemId> ParallelItemCf::RecentItemsOf(UserId user) const {
  const UserShard& shard = *user_shards_[UserShardOf(user)];
  const UserHistory* history = FindHistory(shard, user);
  if (history == nullptr) return {};
  const size_t k = options_.cf.recent_k > 0
                       ? static_cast<size_t>(options_.cf.recent_k)
                       : history->size();
  return history->RecentItems(k);
}

double ParallelItemCf::UserRating(UserId user, ItemId item) const {
  const UserHistory* history =
      FindHistory(*user_shards_[UserShardOf(user)], user);
  return history == nullptr ? 0.0 : history->RatingOf(item);
}

Recommendations ParallelItemCf::RecommendForUser(UserId user,
                                                 size_t n) const {
  const UserHistory* history =
      FindHistory(*user_shards_[UserShardOf(user)], user);
  if (history == nullptr) return {};
  return PredictFromRecent(
      *history, RecentItemsOf(user),
      [this](ItemId q) { return SimilarItems(q); },
      [this](ItemId p, ItemId q) { return EffectiveSimilarity(p, q); }, n);
}

bool ParallelItemCf::IsPruned(ItemId a, ItemId b) const {
  return IsPrunedIn(*pair_shards_[PairShardOf(PairKey(a, b))], PairKey(a, b));
}

void ParallelItemCf::VisitItemCounts(
    const std::function<void(ItemId, double)>& visitor) const {
  for (const auto& stripe : item_stripes_) {
    std::lock_guard lock(stripe->mu);
    stripe->counts.VisitItemCounts(visitor);
  }
}

void ParallelItemCf::VisitSimilarLists(
    const std::function<void(ItemId, const TopK<ItemId>&)>& visitor) const {
  for (const auto& stripe : list_stripes_) {
    std::lock_guard lock(stripe->mu);
    if (options_.cf.use_flat_kernels) {
      stripe->index.ForEach([&](uint64_t packed, uint32_t slot) {
        visitor(static_cast<ItemId>(packed), stripe->store[slot - 1]);
      });
    } else {
      for (const auto& [item, list] : stripe->lists_map) visitor(item, list);
    }
  }
}

PracticalItemCf::Stats ParallelItemCf::stats() const {
  PracticalItemCf::Stats stats;
  for (const auto& shard : user_shards_) stats.actions += shard->actions;
  for (const auto& shard : pair_shards_) {
    stats.pair_updates += shard->pair_updates;
    stats.pair_updates_pruned += shard->pair_updates_pruned;
    stats.pairs_pruned += shard->pairs_pruned;
  }
  return stats;
}

std::vector<ParallelItemCf::StageStats> ParallelItemCf::stage_stats() const {
  StageStats user;
  user.stage = "user-history";
  user.workers = static_cast<int>(user_shards_.size());
  for (const auto& shard : user_shards_) {
    user.events += shard->events;
    user.batches += shard->batches;
    user.busy_micros += shard->busy_micros;
  }
  StageStats pair;
  pair.stage = "count+sim";
  pair.workers = static_cast<int>(pair_shards_.size());
  for (const auto& shard : pair_shards_) {
    pair.events += shard->events;
    pair.batches += shard->batches;
    pair.busy_micros += shard->busy_micros;
  }
  return {user, pair};
}

uint64_t ParallelItemCf::StageHeartbeat(bool pair_stage) const {
  uint64_t sum = 0;
  if (pair_stage) {
    for (const auto& shard : pair_shards_) {
      sum += shard->heartbeat.load(std::memory_order_relaxed);
    }
  } else {
    for (const auto& shard : user_shards_) {
      sum += shard->heartbeat.load(std::memory_order_relaxed);
    }
  }
  return sum;
}

uint64_t ParallelItemCf::StageBacklog(bool pair_stage) const {
  uint64_t sum = 0;
  if (pair_stage) {
    for (const auto& shard : pair_shards_) sum += shard->queue.size();
  } else {
    for (const auto& shard : user_shards_) sum += shard->queue.size();
  }
  return sum;
}

}  // namespace tencentrec::core
