#include "core/itemcf/parallel_cf.h"

#include <algorithm>
#include <cmath>

#include "common/hash.h"
#include "common/logging.h"
#include "common/trace.h"
#include "core/itemcf/predict.h"

namespace tencentrec::core {

// Stage timing uses the shared monotonic clock from common/metrics.h.
namespace {

uint64_t NowMicros() { return MonoMicros(); }

}  // namespace

std::string ParallelItemCf::StageNameFor(const char* stage) const {
  const std::string& scope = options_.metrics_scope;
  return (scope.empty() ? std::string("parallel_cf") : scope) + "." + stage;
}

ParallelItemCf::ParallelItemCf(Options options) : options_(std::move(options)) {
  options_.user_shards = std::max(1, options_.user_shards);
  options_.pair_shards = std::max(1, options_.pair_shards);
  options_.count_stripes = std::max(1, options_.count_stripes);
  options_.list_stripes = std::max(1, options_.list_stripes);
  options_.batch_size = std::max<size_t>(1, options_.batch_size);
  options_.queue_capacity = std::max<size_t>(1, options_.queue_capacity);
  if (options_.cf.hoeffding_delta <= 0.0 ||
      options_.cf.hoeffding_delta >= 1.0) {
    options_.cf.hoeffding_delta = 0.05;
  }
  hoeffding_ln_inv_delta_ = std::log(1.0 / options_.cf.hoeffding_delta);

  if (MetricsEnabled() && !options_.metrics_scope.empty()) {
    auto& reg = MetricRegistry::Default();
    const std::string& scope = options_.metrics_scope;
    user_queue_wait_ = reg.GetHistogram(scope + ".user-history.queue_wait_us");
    user_service_ = reg.GetHistogram(scope + ".user-history.service_us");
    pair_queue_wait_ = reg.GetHistogram(scope + ".count+sim.queue_wait_us");
    pair_service_ = reg.GetHistogram(scope + ".count+sim.service_us");
  }

  // All windowed state defers eviction to the drain barrier: shards run at
  // slightly different points in the stream, and eager eviction would
  // misread a lagging shard's in-order events as late data whenever the
  // stream jumps across sessions (see WindowedCounts::SetDeferredEviction).
  for (int s = 0; s < options_.count_stripes; ++s) {
    auto stripe = std::make_unique<CountStripe>(options_.cf.session_length,
                                                options_.cf.window_sessions);
    stripe->counts.SetDeferredEviction(true);
    item_stripes_.push_back(std::move(stripe));
  }
  for (int s = 0; s < options_.list_stripes; ++s) {
    list_stripes_.push_back(std::make_unique<ListStripe>());
  }

  pending_.resize(static_cast<size_t>(options_.user_shards));
  for (int s = 0; s < options_.pair_shards; ++s) {
    auto shard = std::make_unique<PairShard>(options_.queue_capacity,
                                             options_.cf.session_length,
                                             options_.cf.window_sessions);
    shard->counts.SetDeferredEviction(true);
    pair_shards_.push_back(std::move(shard));
  }
  for (int s = 0; s < options_.user_shards; ++s) {
    user_shards_.push_back(
        std::make_unique<UserShard>(options_.queue_capacity));
  }
  // Freshness slots are registered before the workers start so the stages
  // exist (with no-data watermarks) from the first /vars publication. The
  // obs plane is independent of the metrics kill switch.
  const std::string freshness_scope =
      options_.metrics_scope.empty() ? "parallel_cf" : options_.metrics_scope;
  for (auto& shard : user_shards_) {
    shard->freshness = obs::FreshnessTracker::Default().RegisterSlot(
        freshness_scope + ".user-history");
  }
  for (auto& shard : pair_shards_) {
    shard->freshness = obs::FreshnessTracker::Default().RegisterSlot(
        freshness_scope + ".count+sim");
  }
  // Start the downstream layer first so upstream emissions always find
  // live consumers (same discipline as tstorm::LocalCluster).
  for (auto& shard : pair_shards_) {
    shard->thread =
        std::thread([this, s = shard.get()] { PairWorker(s); });
  }
  for (auto& shard : user_shards_) {
    shard->thread =
        std::thread([this, s = shard.get()] { UserWorker(s); });
  }
}

ParallelItemCf::~ParallelItemCf() { Shutdown(); }

size_t ParallelItemCf::UserShardOf(UserId user) const {
  return HashInt(static_cast<uint64_t>(user)) % user_shards_.size();
}

size_t ParallelItemCf::PairShardOf(const PairKey& key) const {
  return PairKeyHash()(key) % pair_shards_.size();
}

ParallelItemCf::CountStripe& ParallelItemCf::ItemStripe(ItemId item) const {
  return *item_stripes_[HashInt(static_cast<uint64_t>(item)) %
                        item_stripes_.size()];
}

ParallelItemCf::ListStripe& ParallelItemCf::ListStripeOf(ItemId item) const {
  return *list_stripes_[HashInt(static_cast<uint64_t>(item)) %
                        list_stripes_.size()];
}

// --- ingestion (driver thread) ----------------------------------------------

void ParallelItemCf::ProcessAction(const UserAction& action) {
  TR_CHECK(!shutdown_);
  if (action.timestamp > max_ts_) max_ts_ = action.timestamp;
  if (action.ingest_micros > max_ingest_) max_ingest_ = action.ingest_micros;
  const size_t shard = UserShardOf(action.user);
  pending_[shard].push_back(action);
  if (pending_[shard].size() >= options_.batch_size) PushUserBatch(shard);
}

void ParallelItemCf::ProcessActions(const std::vector<UserAction>& actions) {
  for (const auto& action : actions) ProcessAction(action);
}

void ParallelItemCf::PushUserBatch(size_t shard_index) {
  if (pending_[shard_index].empty()) return;
  UserMsg msg;
  msg.actions = std::move(pending_[shard_index]);
  pending_[shard_index].clear();
  if (user_queue_wait_ != nullptr) msg.enqueue_micros = NowMicros();
  user_shards_[shard_index]->queue.Push(std::move(msg));
}

// --- barrier / lifecycle ------------------------------------------------------

void ParallelItemCf::BeginBarrier(int acks) {
  std::lock_guard<std::mutex> lock(barrier_mu_);
  barrier_pending_ = acks;
}

void ParallelItemCf::AwaitBarrier() {
  std::unique_lock<std::mutex> lock(barrier_mu_);
  barrier_cv_.wait(lock, [&] { return barrier_pending_ == 0; });
}

void ParallelItemCf::AckBarrier() {
  std::lock_guard<std::mutex> lock(barrier_mu_);
  if (--barrier_pending_ == 0) barrier_cv_.notify_all();
}

void ParallelItemCf::Drain() {
  if (shutdown_) return;
  for (size_t s = 0; s < pending_.size(); ++s) PushUserBatch(s);

  // Phase 1: every user worker flushes its pair-delta buffers downstream.
  // FIFO queues guarantee those batches precede the phase-2 flush tokens.
  BeginBarrier(static_cast<int>(user_shards_.size()));
  for (auto& shard : user_shards_) {
    UserMsg msg;
    msg.flush = true;
    msg.ingest_watermark = max_ingest_;
    shard->queue.Push(std::move(msg));
  }
  AwaitBarrier();

  // Phase 2: every pair worker applies what layer 1 emitted, then advances
  // its sliding window to the stream's high-water mark so expiry does not
  // depend on which shard saw the newest event.
  BeginBarrier(static_cast<int>(pair_shards_.size()));
  for (auto& shard : pair_shards_) {
    PairMsg msg;
    msg.flush = true;
    msg.watermark = max_ts_;
    msg.ingest_watermark = max_ingest_;
    shard->queue.Push(std::move(msg));
  }
  AwaitBarrier();

  // Shared itemCounts advance the same way.
  for (auto& stripe : item_stripes_) {
    std::lock_guard<ProfiledMutex> lock(stripe->mu);
    stripe->counts.AdvanceTo(max_ts_);
  }
}

void ParallelItemCf::Shutdown() {
  if (shutdown_) return;
  Drain();
  shutdown_ = true;
  for (auto& shard : user_shards_) shard->queue.Close();
  for (auto& shard : user_shards_) {
    if (shard->thread.joinable()) shard->thread.join();
  }
  for (auto& shard : pair_shards_) shard->queue.Close();
  for (auto& shard : pair_shards_) {
    if (shard->thread.joinable()) shard->thread.join();
  }
}

// --- layer 1: user-history workers -------------------------------------------

void ParallelItemCf::UserWorker(UserShard* shard) {
  RegisterStageThread(StageNameFor("user-history"));
  // Per-destination-shard output buffers, flushed when full and on drain.
  std::vector<std::vector<PairDelta>> out(pair_shards_.size());
  auto flush_all = [&] {
    for (size_t p = 0; p < out.size(); ++p) {
      if (out[p].empty()) continue;
      PairMsg msg;
      msg.deltas = std::move(out[p]);
      out[p].clear();
      if (pair_queue_wait_ != nullptr) msg.enqueue_micros = NowMicros();
      pair_shards_[p]->queue.Push(std::move(msg));
    }
  };

  while (auto msg = shard->queue.Pop()) {
    shard->heartbeat.fetch_add(1, std::memory_order_relaxed);
    const uint64_t t0 = NowMicros();
    if (msg->flush) {
      flush_all();
      // Everything the driver had pushed before this token is processed.
      shard->freshness.Advance(msg->ingest_watermark);
      shard->busy_micros += NowMicros() - t0;
      AckBarrier();
      continue;
    }
    if (user_queue_wait_ != nullptr && msg->enqueue_micros != 0) {
      user_queue_wait_->Record(t0 > msg->enqueue_micros
                                   ? t0 - msg->enqueue_micros
                                   : 0);
    }
    uint64_t batch_ingest = 0;
    for (const UserAction& action : msg->actions) {
      HandleAction(shard, action, &out);
      if (action.ingest_micros > batch_ingest) {
        batch_ingest = action.ingest_micros;
      }
    }
    shard->freshness.Advance(batch_ingest);
    shard->events += msg->actions.size();
    ++shard->batches;
    const uint64_t elapsed = NowMicros() - t0;
    shard->busy_micros += elapsed;
    if (user_service_ != nullptr) user_service_->Record(elapsed);
  }
  // Queue closed mid-stream (shutdown without drain): discard buffers.
}

void ParallelItemCf::HandleAction(UserShard* shard, const UserAction& action,
                                  std::vector<std::vector<PairDelta>>* out) {
  ++shard->actions;
  ScopedSpan span(action.trace_id, "parallel_cf.user-history");
  UserHistory& history = shard->histories[action.user];
  if (options_.cf.history_ttl > 0) {
    history.EvictOlderThan(action.timestamp - options_.cf.history_ttl);
  }
  RatingUpdate update = history.Apply(action, options_.cf.weights,
                                      options_.cf.linked_time);

  if (update.rating_delta > 0.0) {
    CountStripe& stripe = ItemStripe(update.item);
    std::lock_guard<ProfiledMutex> lock(stripe.mu);
    stripe.counts.AddItem(update.item, update.rating_delta, action.timestamp);
  }
  // (Zero-delta actions advance windows lazily — the Drain watermark
  // settles all windows, unlike the reference's eager AdvanceTo.)

  for (const auto& pair : update.pairs) {
    const size_t p = PairShardOf(PairKey(update.item, pair.other));
    auto& buf = (*out)[p];
    buf.push_back({update.item, pair.other, pair.co_rating_delta,
                   action.timestamp, action.ingest_micros, action.trace_id});
    if (buf.size() >= options_.batch_size) {
      PairMsg msg;
      msg.deltas = std::move(buf);
      buf.clear();
      if (pair_queue_wait_ != nullptr) msg.enqueue_micros = NowMicros();
      pair_shards_[p]->queue.Push(std::move(msg));
    }
  }
}

// --- layers 2+3: count + similarity workers ----------------------------------

void ParallelItemCf::PairWorker(PairShard* shard) {
  RegisterStageThread(StageNameFor("count+sim"));
  while (auto msg = shard->queue.Pop()) {
    shard->heartbeat.fetch_add(1, std::memory_order_relaxed);
    const uint64_t t0 = NowMicros();
    if (msg->flush) {
      shard->counts.AdvanceTo(msg->watermark);
      // Phase-2 token: all phase-1 output reached this shard first (FIFO),
      // so the drain's ingest high-water mark is fully processed here too.
      shard->freshness.Advance(msg->ingest_watermark);
      shard->busy_micros += NowMicros() - t0;
      AckBarrier();
      continue;
    }
    if (pair_queue_wait_ != nullptr && msg->enqueue_micros != 0) {
      pair_queue_wait_->Record(t0 > msg->enqueue_micros
                                   ? t0 - msg->enqueue_micros
                                   : 0);
    }
    uint64_t batch_ingest = 0;
    for (const PairDelta& delta : msg->deltas) {
      HandlePairDelta(shard, delta);
      if (delta.ingest > batch_ingest) batch_ingest = delta.ingest;
    }
    shard->freshness.Advance(batch_ingest);
    shard->events += msg->deltas.size();
    ++shard->batches;
    const uint64_t elapsed = NowMicros() - t0;
    shard->busy_micros += elapsed;
    if (pair_service_ != nullptr) pair_service_->Record(elapsed);
  }
}

void ParallelItemCf::HandlePairDelta(PairShard* shard,
                                     const PairDelta& delta) {
  ScopedSpan span(delta.trace_id, "parallel_cf.count+sim");
  const PairKey key(delta.i, delta.j);
  if (options_.cf.enable_pruning && shard->pruned.count(key) > 0) {
    ++shard->pair_updates_pruned;
    return;
  }

  shard->counts.AddPair(delta.i, delta.j, delta.co_delta, delta.ts);
  ++shard->pair_updates;

  const double pc = shard->counts.PairCount(delta.i, delta.j);
  const double sim = EffectiveFromCounts(delta.i, delta.j, pc);

  // Maintain both items' similar-items lists (striped shared state; one
  // stripe lock at a time, so no ordering discipline is needed).
  const size_t k = static_cast<size_t>(options_.cf.top_k);
  {
    ListStripe& stripe = ListStripeOf(delta.i);
    std::lock_guard<ProfiledMutex> lock(stripe.mu);
    stripe.lists.try_emplace(delta.i, k).first->second.Update(delta.j, sim);
  }
  {
    ListStripe& stripe = ListStripeOf(delta.j);
    std::lock_guard<ProfiledMutex> lock(stripe.mu);
    stripe.lists.try_emplace(delta.j, k).first->second.Update(delta.i, sim);
  }

  if (!options_.cf.enable_pruning) return;

  const uint32_t n = ++shard->observations[key];
  const double t =
      std::min(ListThresholdOf(delta.i), ListThresholdOf(delta.j));
  if (t <= 0.0) return;
  const double epsilon =
      std::sqrt(hoeffding_ln_inv_delta_ / (2.0 * static_cast<double>(n)));
  if (epsilon < t - sim) {
    shard->pruned.insert(key);
    ++shard->pairs_pruned;
    // Under concurrency the stale-entry erase is live (a racing update may
    // have admitted the pair with a higher snapshot score); the shrunk
    // list's threshold conservatively reopens to 0 — see TopK::Threshold.
    {
      ListStripe& stripe = ListStripeOf(delta.i);
      std::lock_guard<ProfiledMutex> lock(stripe.mu);
      auto it = stripe.lists.find(delta.i);
      if (it != stripe.lists.end()) it->second.Erase(delta.j);
    }
    {
      ListStripe& stripe = ListStripeOf(delta.j);
      std::lock_guard<ProfiledMutex> lock(stripe.mu);
      auto it = stripe.lists.find(delta.j);
      if (it != stripe.lists.end()) it->second.Erase(delta.i);
    }
  }
}

double ParallelItemCf::ItemCountOf(ItemId item) const {
  CountStripe& stripe = ItemStripe(item);
  std::lock_guard<ProfiledMutex> lock(stripe.mu);
  return stripe.counts.ItemCount(item);
}

double ParallelItemCf::SimilarityFromCounts(ItemId a, ItemId b,
                                            double pair_count) const {
  // Eq. 5/10, mirroring WindowedCounts::Similarity.
  const double ca = ItemCountOf(a);
  const double cb = ItemCountOf(b);
  if (ca <= 0.0 || cb <= 0.0) return 0.0;
  if (pair_count <= 0.0) return 0.0;
  return pair_count / (std::sqrt(ca) * std::sqrt(cb));
}

double ParallelItemCf::EffectiveFromCounts(ItemId a, ItemId b,
                                           double pair_count) const {
  double sim = SimilarityFromCounts(a, b, pair_count);
  if (sim > 0.0 && options_.cf.support_shrinkage > 0.0) {
    sim *= pair_count / (pair_count + options_.cf.support_shrinkage);
  }
  return sim;
}

double ParallelItemCf::ListThresholdOf(ItemId item) const {
  ListStripe& stripe = ListStripeOf(item);
  std::lock_guard<ProfiledMutex> lock(stripe.mu);
  auto it = stripe.lists.find(item);
  return it == stripe.lists.end() ? 0.0 : it->second.Threshold();
}

// --- queries (quiescent pipeline) --------------------------------------------

double ParallelItemCf::Similarity(ItemId a, ItemId b) const {
  const PairKey key(a, b);
  const double pc = pair_shards_[PairShardOf(key)]->counts.PairCount(a, b);
  return SimilarityFromCounts(a, b, pc);
}

double ParallelItemCf::EffectiveSimilarity(ItemId a, ItemId b) const {
  const PairKey key(a, b);
  const double pc = pair_shards_[PairShardOf(key)]->counts.PairCount(a, b);
  return EffectiveFromCounts(a, b, pc);
}

const TopK<ItemId>* ParallelItemCf::SimilarItems(ItemId item) const {
  ListStripe& stripe = ListStripeOf(item);
  std::lock_guard<ProfiledMutex> lock(stripe.mu);
  auto it = stripe.lists.find(item);
  return it == stripe.lists.end() ? nullptr : &it->second;
}

std::vector<ItemId> ParallelItemCf::RecentItemsOf(UserId user) const {
  const auto& histories = user_shards_[UserShardOf(user)]->histories;
  auto it = histories.find(user);
  if (it == histories.end()) return {};
  const size_t k = options_.cf.recent_k > 0
                       ? static_cast<size_t>(options_.cf.recent_k)
                       : it->second.size();
  return it->second.RecentItems(k);
}

double ParallelItemCf::UserRating(UserId user, ItemId item) const {
  const auto& histories = user_shards_[UserShardOf(user)]->histories;
  auto it = histories.find(user);
  return it == histories.end() ? 0.0 : it->second.RatingOf(item);
}

Recommendations ParallelItemCf::RecommendForUser(UserId user,
                                                 size_t n) const {
  const auto& histories = user_shards_[UserShardOf(user)]->histories;
  auto hit = histories.find(user);
  if (hit == histories.end()) return {};
  return PredictFromRecent(
      hit->second, RecentItemsOf(user),
      [this](ItemId q) { return SimilarItems(q); },
      [this](ItemId p, ItemId q) { return EffectiveSimilarity(p, q); }, n);
}

bool ParallelItemCf::IsPruned(ItemId a, ItemId b) const {
  const PairKey key(a, b);
  return pair_shards_[PairShardOf(key)]->pruned.count(key) > 0;
}

void ParallelItemCf::VisitItemCounts(
    const std::function<void(ItemId, double)>& visitor) const {
  for (const auto& stripe : item_stripes_) {
    std::lock_guard lock(stripe->mu);
    stripe->counts.VisitItemCounts(visitor);
  }
}

void ParallelItemCf::VisitSimilarLists(
    const std::function<void(ItemId, const TopK<ItemId>&)>& visitor) const {
  for (const auto& stripe : list_stripes_) {
    std::lock_guard lock(stripe->mu);
    for (const auto& [item, list] : stripe->lists) visitor(item, list);
  }
}

PracticalItemCf::Stats ParallelItemCf::stats() const {
  PracticalItemCf::Stats stats;
  for (const auto& shard : user_shards_) stats.actions += shard->actions;
  for (const auto& shard : pair_shards_) {
    stats.pair_updates += shard->pair_updates;
    stats.pair_updates_pruned += shard->pair_updates_pruned;
    stats.pairs_pruned += shard->pairs_pruned;
  }
  return stats;
}

std::vector<ParallelItemCf::StageStats> ParallelItemCf::stage_stats() const {
  StageStats user;
  user.stage = "user-history";
  user.workers = static_cast<int>(user_shards_.size());
  for (const auto& shard : user_shards_) {
    user.events += shard->events;
    user.batches += shard->batches;
    user.busy_micros += shard->busy_micros;
  }
  StageStats pair;
  pair.stage = "count+sim";
  pair.workers = static_cast<int>(pair_shards_.size());
  for (const auto& shard : pair_shards_) {
    pair.events += shard->events;
    pair.batches += shard->batches;
    pair.busy_micros += shard->busy_micros;
  }
  return {user, pair};
}

uint64_t ParallelItemCf::StageHeartbeat(bool pair_stage) const {
  uint64_t sum = 0;
  if (pair_stage) {
    for (const auto& shard : pair_shards_) {
      sum += shard->heartbeat.load(std::memory_order_relaxed);
    }
  } else {
    for (const auto& shard : user_shards_) {
      sum += shard->heartbeat.load(std::memory_order_relaxed);
    }
  }
  return sum;
}

uint64_t ParallelItemCf::StageBacklog(bool pair_stage) const {
  uint64_t sum = 0;
  if (pair_stage) {
    for (const auto& shard : pair_shards_) sum += shard->queue.size();
  } else {
    for (const auto& shard : user_shards_) sum += shard->queue.size();
  }
  return sum;
}

}  // namespace tencentrec::core
