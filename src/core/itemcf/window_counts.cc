#include "core/itemcf/window_counts.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

namespace tencentrec::core {

WindowedCounts::Session* WindowedCounts::SessionFor(EventTime ts) {
  // Cumulative mode: one ever-growing pseudo-session.
  if (window_sessions_ <= 0) {
    if (sessions_.empty()) {
      sessions_.push_back(Session{});
      latest_session_ = 0;
    }
    return &sessions_.back();
  }

  const int64_t id = SessionOf(ts);
  if (defer_eviction_) {
    // Deferred mode (sharded executor): only track the high-water mark;
    // eviction waits for the explicit AdvanceTo at the drain barrier. An
    // event is "late" only if its session was already evicted by a prior
    // barrier — being behind the high-water mark just means a sibling
    // shard ran ahead.
    if (id > latest_session_) latest_session_ = id;
    if (id < evicted_floor_) {
      return sessions_.empty() ? nullptr : &sessions_.front();
    }
  } else {
    AdvanceTo(ts);
    if (!InWindow(id)) {
      // Out-of-window late data folds into the oldest live session rather
      // than resurrecting an expired one; with nothing live it is already
      // fully expired and is dropped.
      return sessions_.empty() ? nullptr : &sessions_.front();
    }
  }
  // The deque is ordered by session id, so eviction stays front-only and
  // reads need no in-window filtering. Hot path first: in-order streams
  // always land in the newest session.
  if (!sessions_.empty() && sessions_.back().id == id) {
    return &sessions_.back();
  }
  auto it = std::lower_bound(
      sessions_.begin(), sessions_.end(), id,
      [](const Session& s, int64_t want) { return s.id < want; });
  if (it != sessions_.end() && it->id == id) return &*it;
  it = sessions_.insert(it, Session{});
  it->id = id;
  return &*it;
}

void WindowedCounts::AdvanceTo(EventTime ts) {
  if (window_sessions_ <= 0) return;
  const int64_t id = SessionOf(ts);
  if (id > latest_session_) latest_session_ = id;
  // Ordered deque: every expired session sits at the front, so front-only
  // pops reclaim all of them even after out-of-order inserts.
  while (!sessions_.empty() && !InWindow(sessions_.front().id)) {
    if (use_flat_) {
      // Keep the incrementally-maintained totals in sync: subtract the
      // dropped session's partials (exact — see the class comment).
      const Session& s = sessions_.front();
      s.items_flat.ForEach(
          [this](uint64_t key, double c) { items_total_[key] -= c; });
      s.pairs_flat.ForEach(
          [this](uint64_t key, double c) { pairs_total_[key] -= c; });
    }
    sessions_.pop_front();
  }
  const int64_t floor = latest_session_ - window_sessions_ + 1;
  if (floor > evicted_floor_) evicted_floor_ = floor;
}

void WindowedCounts::AddItem(ItemId item, double delta, EventTime ts) {
  Session* s = SessionFor(ts);
  if (s == nullptr) return;
  if (use_flat_) {
    const uint64_t key = PackItem(item);
    s->items_flat[key] += delta;
    items_total_[key] += delta;
  } else {
    s->items_map[item] += delta;
  }
}

void WindowedCounts::AddPair(ItemId a, ItemId b, double delta, EventTime ts) {
  Session* s = SessionFor(ts);
  if (s == nullptr) return;
  if (use_flat_) {
    const uint64_t key = PackPair(a, b);
    s->pairs_flat[key] += delta;
    pairs_total_[key] += delta;
  } else {
    s->pairs_map[PairKey(a, b)] += delta;
  }
}

double WindowedCounts::ItemCount(ItemId item) const {
  // Flat kernel: one probe of the maintained windowed total (bit-identical
  // to the legacy sum — see the class comment). Legacy kernel: sum the
  // live sessions; the deque only ever holds in-window sessions (AdvanceTo
  // runs on every mutation), so the scan needs no filtering.
  if (use_flat_) {
    const double* v = items_total_.Find(PackItem(item));
    return v == nullptr ? 0.0 : *v;
  }
  double sum = 0.0;
  for (const auto& s : sessions_) {
    auto it = s.items_map.find(item);
    if (it != s.items_map.end()) sum += it->second;
  }
  return sum;
}

double WindowedCounts::PairCount(ItemId a, ItemId b) const {
  if (use_flat_) {
    const double* v = pairs_total_.Find(PackPair(a, b));
    return v == nullptr ? 0.0 : *v;
  }
  double sum = 0.0;
  const PairKey key(a, b);
  for (const auto& s : sessions_) {
    auto it = s.pairs_map.find(key);
    if (it != s.pairs_map.end()) sum += it->second;
  }
  return sum;
}

double WindowedCounts::Similarity(ItemId a, ItemId b) const {
  const double ca = ItemCount(a);
  const double cb = ItemCount(b);
  if (ca <= 0.0 || cb <= 0.0) return 0.0;
  const double pc = PairCount(a, b);
  if (pc <= 0.0) return 0.0;
  // Single sqrt of the product — the canonical Eq. 5 form every similarity
  // site shares so cross-path comparisons stay bit-exact.
  return pc / std::sqrt(ca * cb);
}

size_t WindowedCounts::TrackedItems() const {
  if (use_flat_) {
    FlatSet64 seen;
    for (const auto& s : sessions_) {
      s.items_flat.ForEach([&seen](uint64_t key, double) { seen.Insert(key); });
    }
    return seen.size();
  }
  std::unordered_set<ItemId> seen;
  for (const auto& s : sessions_) {
    for (const auto& [item, c] : s.items_map) seen.insert(item);
  }
  return seen.size();
}

void WindowedCounts::VisitItemCounts(
    const std::function<void(ItemId, double)>& visitor) const {
  if (use_flat_) {
    FlatMap64<double> totals;
    for (const auto& s : sessions_) {
      s.items_flat.ForEach(
          [&totals](uint64_t key, double c) { totals[key] += c; });
    }
    totals.ForEach([&visitor](uint64_t key, double total) {
      visitor(static_cast<ItemId>(key), total);
    });
    return;
  }
  std::unordered_map<ItemId, double> totals;
  for (const auto& s : sessions_) {
    for (const auto& [item, c] : s.items_map) totals[item] += c;
  }
  for (const auto& [item, total] : totals) visitor(item, total);
}

size_t WindowedCounts::TrackedPairs() const {
  if (use_flat_) {
    FlatSet64 seen;
    for (const auto& s : sessions_) {
      s.pairs_flat.ForEach([&seen](uint64_t key, double) { seen.Insert(key); });
    }
    return seen.size();
  }
  std::unordered_set<PairKey, PairKeyHash> seen;
  for (const auto& s : sessions_) {
    for (const auto& [pair, c] : s.pairs_map) seen.insert(pair);
  }
  return seen.size();
}

}  // namespace tencentrec::core
