#include "core/itemcf/window_counts.h"

#include <cmath>

namespace tencentrec::core {

WindowedCounts::Session* WindowedCounts::SessionFor(EventTime ts) {
  // Cumulative mode: one ever-growing pseudo-session.
  if (window_sessions_ <= 0) {
    if (sessions_.empty()) {
      sessions_.push_back(Session{});
      latest_session_ = 0;
    }
    return &sessions_.back();
  }

  AdvanceTo(ts);
  const int64_t id = SessionOf(ts);
  for (auto& s : sessions_) {
    if (s.id == id) return &s;
  }
  // Late (out-of-window) data lands in the oldest live session rather than
  // resurrecting an expired one; with in-order streams this branch only
  // creates the brand-new current session.
  if (!sessions_.empty() && id < sessions_.front().id) {
    return &sessions_.front();
  }
  Session s;
  s.id = id;
  sessions_.push_back(std::move(s));
  return &sessions_.back();
}

void WindowedCounts::AdvanceTo(EventTime ts) {
  if (window_sessions_ <= 0) return;
  const int64_t id = SessionOf(ts);
  if (id > latest_session_) latest_session_ = id;
  while (!sessions_.empty() && !InWindow(sessions_.front().id)) {
    sessions_.pop_front();
  }
}

void WindowedCounts::AddItem(ItemId item, double delta, EventTime ts) {
  SessionFor(ts)->item_counts[item] += delta;
}

void WindowedCounts::AddPair(ItemId a, ItemId b, double delta, EventTime ts) {
  SessionFor(ts)->pair_counts[PairKey(a, b)] += delta;
}

double WindowedCounts::ItemCount(ItemId item) const {
  double sum = 0.0;
  for (const auto& s : sessions_) {
    if (!InWindow(s.id)) continue;
    auto it = s.item_counts.find(item);
    if (it != s.item_counts.end()) sum += it->second;
  }
  return sum;
}

double WindowedCounts::PairCount(ItemId a, ItemId b) const {
  const PairKey key(a, b);
  double sum = 0.0;
  for (const auto& s : sessions_) {
    if (!InWindow(s.id)) continue;
    auto it = s.pair_counts.find(key);
    if (it != s.pair_counts.end()) sum += it->second;
  }
  return sum;
}

double WindowedCounts::Similarity(ItemId a, ItemId b) const {
  const double ca = ItemCount(a);
  const double cb = ItemCount(b);
  if (ca <= 0.0 || cb <= 0.0) return 0.0;
  const double pc = PairCount(a, b);
  if (pc <= 0.0) return 0.0;
  return pc / (std::sqrt(ca) * std::sqrt(cb));
}

size_t WindowedCounts::TrackedItems() const {
  std::unordered_map<ItemId, bool> seen;
  for (const auto& s : sessions_) {
    if (!InWindow(s.id)) continue;
    for (const auto& [item, c] : s.item_counts) seen[item] = true;
  }
  return seen.size();
}

size_t WindowedCounts::TrackedPairs() const {
  std::unordered_map<PairKey, bool, PairKeyHash> seen;
  for (const auto& s : sessions_) {
    if (!InWindow(s.id)) continue;
    for (const auto& [pair, c] : s.pair_counts) seen[pair] = true;
  }
  return seen.size();
}

}  // namespace tencentrec::core
