#include "core/itemcf/window_counts.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

namespace tencentrec::core {

WindowedCounts::Session* WindowedCounts::SessionFor(EventTime ts) {
  // Cumulative mode: one ever-growing pseudo-session.
  if (window_sessions_ <= 0) {
    if (sessions_.empty()) {
      sessions_.push_back(Session{});
      latest_session_ = 0;
    }
    return &sessions_.back();
  }

  const int64_t id = SessionOf(ts);
  if (defer_eviction_) {
    // Deferred mode (sharded executor): only track the high-water mark;
    // eviction waits for the explicit AdvanceTo at the drain barrier. An
    // event is "late" only if its session was already evicted by a prior
    // barrier — being behind the high-water mark just means a sibling
    // shard ran ahead.
    if (id > latest_session_) latest_session_ = id;
    if (id < evicted_floor_) {
      return sessions_.empty() ? nullptr : &sessions_.front();
    }
  } else {
    AdvanceTo(ts);
    if (!InWindow(id)) {
      // Out-of-window late data folds into the oldest live session rather
      // than resurrecting an expired one; with nothing live it is already
      // fully expired and is dropped.
      return sessions_.empty() ? nullptr : &sessions_.front();
    }
  }
  // The deque is ordered by session id, so eviction stays front-only and
  // reads need no in-window filtering. Hot path first: in-order streams
  // always land in the newest session.
  if (!sessions_.empty() && sessions_.back().id == id) {
    return &sessions_.back();
  }
  auto it = std::lower_bound(
      sessions_.begin(), sessions_.end(), id,
      [](const Session& s, int64_t want) { return s.id < want; });
  if (it != sessions_.end() && it->id == id) return &*it;
  it = sessions_.insert(it, Session{});
  it->id = id;
  return &*it;
}

void WindowedCounts::AdvanceTo(EventTime ts) {
  if (window_sessions_ <= 0) return;
  const int64_t id = SessionOf(ts);
  if (id > latest_session_) latest_session_ = id;
  // Ordered deque: every expired session sits at the front, so front-only
  // pops reclaim all of them even after out-of-order inserts.
  while (!sessions_.empty() && !InWindow(sessions_.front().id)) {
    sessions_.pop_front();
  }
  const int64_t floor = latest_session_ - window_sessions_ + 1;
  if (floor > evicted_floor_) evicted_floor_ = floor;
}

void WindowedCounts::AddItem(ItemId item, double delta, EventTime ts) {
  if (Session* s = SessionFor(ts)) s->item_counts[item] += delta;
}

void WindowedCounts::AddPair(ItemId a, ItemId b, double delta, EventTime ts) {
  if (Session* s = SessionFor(ts)) s->pair_counts[PairKey(a, b)] += delta;
}

double WindowedCounts::ItemCount(ItemId item) const {
  // Invariant: the deque only ever holds in-window sessions (AdvanceTo runs
  // on every mutation), so reads sum without filtering.
  double sum = 0.0;
  for (const auto& s : sessions_) {
    auto it = s.item_counts.find(item);
    if (it != s.item_counts.end()) sum += it->second;
  }
  return sum;
}

double WindowedCounts::PairCount(ItemId a, ItemId b) const {
  const PairKey key(a, b);
  double sum = 0.0;
  for (const auto& s : sessions_) {
    auto it = s.pair_counts.find(key);
    if (it != s.pair_counts.end()) sum += it->second;
  }
  return sum;
}

double WindowedCounts::Similarity(ItemId a, ItemId b) const {
  const double ca = ItemCount(a);
  const double cb = ItemCount(b);
  if (ca <= 0.0 || cb <= 0.0) return 0.0;
  const double pc = PairCount(a, b);
  if (pc <= 0.0) return 0.0;
  return pc / (std::sqrt(ca) * std::sqrt(cb));
}

size_t WindowedCounts::TrackedItems() const {
  std::unordered_set<ItemId> seen;
  for (const auto& s : sessions_) {
    for (const auto& [item, c] : s.item_counts) seen.insert(item);
  }
  return seen.size();
}

void WindowedCounts::VisitItemCounts(
    const std::function<void(ItemId, double)>& visitor) const {
  std::unordered_map<ItemId, double> totals;
  for (const auto& s : sessions_) {
    for (const auto& [item, c] : s.item_counts) totals[item] += c;
  }
  for (const auto& [item, total] : totals) visitor(item, total);
}

size_t WindowedCounts::TrackedPairs() const {
  std::unordered_set<PairKey, PairKeyHash> seen;
  for (const auto& s : sessions_) {
    for (const auto& [pair, c] : s.pair_counts) seen.insert(pair);
  }
  return seen.size();
}

}  // namespace tencentrec::core
