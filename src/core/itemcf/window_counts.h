#ifndef TENCENTREC_CORE_ITEMCF_WINDOW_COUNTS_H_
#define TENCENTREC_CORE_ITEMCF_WINDOW_COUNTS_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <unordered_map>

#include "common/clock.h"
#include "common/flat_map.h"
#include "core/itemcf/pair_key.h"

namespace tencentrec::core {

/// Sliding-window itemCount/pairCount storage (Eq. 10). Event time is cut
/// into sessions of `session_length`; each session keeps its own partial
/// counts (itemCount_w, pairCount_w), all "naturally incrementally
/// updated", and a query sums the most recent `window_sessions` sessions.
/// Expired sessions are dropped as time advances — the forgetting mechanism
/// that keeps the model tracking recent interests.
///
/// `window_sessions == 0` disables forgetting (cumulative counts), which is
/// the plain incremental CF of §4.1.3.
///
/// Per-session tables come in two interchangeable kernels selected at
/// construction: open-addressing flat tables over packed uint64 keys (the
/// default — the hot path after the DESIGN.md §15 rewrite) and the original
/// std::unordered_map kernel, kept for flat-vs-legacy parity testing. The
/// two produce bit-identical counts for any input stream: a per-key total
/// is the same sum of the same deltas in the same arrival order regardless
/// of which table holds it.
///
/// The flat kernel additionally maintains windowed *totals* tables updated
/// incrementally: adds land in both the owning session table and the
/// total, and eviction subtracts the dropped session's entries, so
/// ItemCount/PairCount are one probe instead of one per live session.
/// Action weights are dyadic rationals (multiples of 0.5), so every sum
/// and the eviction subtraction are exact in double precision — the
/// maintained total is bit-identical to the legacy kernel's
/// sum-over-sessions for any accumulation order (asserted by
/// tests/flat_kernel_test.cc on windowed-expiry traces). Fully-evicted
/// keys linger as exact-0.0 entries (the tables have no tombstones);
/// queries read them as 0.0, the same value the legacy scan returns, and
/// TrackedItems/TrackedPairs keep scanning live sessions so zombies never
/// inflate the tracked counts.
class WindowedCounts {
 public:
  WindowedCounts(EventTime session_length, int window_sessions,
                 bool use_flat_tables = true)
      : session_length_(session_length < 1 ? 1 : session_length),
        window_sessions_(window_sessions),
        use_flat_(use_flat_tables) {}

  /// Deferred-eviction mode, for the sharded executor: events always land
  /// in their true session — even when the high-water mark has already
  /// advanced past their window — and expired sessions are dropped only by
  /// explicit AdvanceTo() calls (the drain barrier). With eager eviction a
  /// shard that runs slightly behind its siblings would see its in-order
  /// events misclassified as late (folded forward) whenever the stream
  /// jumps across sessions; deferring eviction to the barrier makes the
  /// drained state identical to a serial run of the same stream. The cost
  /// is that between drains the deque can briefly hold more than
  /// window_sessions_ sessions (bounded by the event-time span since the
  /// last drain).
  void SetDeferredEviction(bool defer) { defer_eviction_ = defer; }

  /// Adds ∆r to itemCount(item) in the session containing `ts`.
  void AddItem(ItemId item, double delta, EventTime ts);

  /// Adds ∆co-rating to pairCount(a, b) in the session containing `ts`.
  void AddPair(ItemId a, ItemId b, double delta, EventTime ts);

  /// Σ_w itemCount_w(item) over the window ending at the latest session.
  double ItemCount(ItemId item) const;

  /// Σ_w pairCount_w(a, b) over the window ending at the latest session.
  double PairCount(ItemId a, ItemId b) const;

  /// Hints the cache lines AddPair/PairCount will touch for (a, b): the
  /// windowed total's slot and the newest session's slot (where in-order
  /// streams land). Batch loops call this one delta ahead so the
  /// random-access misses overlap the current delta's work. Flat kernel
  /// only; a no-op for the legacy tables.
  void PrefetchPair(ItemId a, ItemId b) const {
    if (!use_flat_) return;
    const uint64_t key = PackPair(a, b);
    pairs_total_.Prefetch(key);
    if (!sessions_.empty()) sessions_.back().pairs_flat.Prefetch(key);
  }

  /// sim(a, b) = pairCount / (√itemCount(a) · √itemCount(b))  (Eq. 5/10).
  /// Zero when either itemCount is empty.
  double Similarity(ItemId a, ItemId b) const;

  /// Moves the window forward to the session containing `ts`, dropping
  /// sessions older than the window. Adds do this implicitly; call it
  /// directly to expire counts during quiet periods.
  void AdvanceTo(EventTime ts);

  int64_t CurrentSession() const { return latest_session_; }
  size_t NumSessions() const { return sessions_.size(); }

  /// Distinct items/pairs currently tracked (across live sessions).
  size_t TrackedItems() const;
  size_t TrackedPairs() const;

  /// Visits every tracked item with its windowed total (Σ over live
  /// sessions) — the read side of checkpoint/mirror exports. Order is
  /// unspecified.
  void VisitItemCounts(
      const std::function<void(ItemId, double)>& visitor) const;

 private:
  struct Session {
    int64_t id = 0;
    /// Exactly one kernel's tables are populated, per the owner's
    /// use_flat_ flag; the other pair stays empty (default-constructed).
    FlatMap64<double> items_flat;
    FlatMap64<double> pairs_flat;
    std::unordered_map<ItemId, double> items_map;
    std::unordered_map<PairKey, double, PairKeyHash> pairs_map;
  };

  int64_t SessionOf(EventTime ts) const { return ts / session_length_; }
  /// The live session that should absorb counts timestamped `ts`, creating
  /// it in id-sorted position when needed. Late but in-window data lands in
  /// its own (correct) session; out-of-window late data folds into the
  /// oldest live session, or returns nullptr (drop) when nothing is live.
  Session* SessionFor(EventTime ts);
  bool InWindow(int64_t session_id) const {
    return window_sessions_ <= 0 ||
           session_id > latest_session_ - window_sessions_;
  }

  const EventTime session_length_;
  const int window_sessions_;
  const bool use_flat_;
  bool defer_eviction_ = false;
  int64_t latest_session_ = -1;
  /// Flat kernel only: Σ over live sessions, maintained incrementally (see
  /// the class comment). May hold exact-0.0 zombies for evicted keys.
  FlatMap64<double> items_total_;
  FlatMap64<double> pairs_total_;
  /// Sessions below this id have been evicted (deferred mode only): a
  /// straggler event for one of them is genuinely late, not just behind a
  /// sibling shard, and takes the fold-or-drop path.
  int64_t evicted_floor_ = INT64_MIN;
  /// Live sessions, ordered by ascending session id; at most
  /// window_sessions_ of them (or one cumulative pseudo-session when
  /// windowing is off). The ordering invariant makes eviction front-only
  /// and lets reads sum the whole deque without in-window checks.
  std::deque<Session> sessions_;
};

}  // namespace tencentrec::core

#endif  // TENCENTREC_CORE_ITEMCF_WINDOW_COUNTS_H_
