#ifndef TENCENTREC_CORE_ITEMCF_WINDOW_COUNTS_H_
#define TENCENTREC_CORE_ITEMCF_WINDOW_COUNTS_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <unordered_map>

#include "common/clock.h"
#include "core/itemcf/pair_key.h"

namespace tencentrec::core {

/// Sliding-window itemCount/pairCount storage (Eq. 10). Event time is cut
/// into sessions of `session_length`; each session keeps its own partial
/// counts (itemCount_w, pairCount_w), all "naturally incrementally
/// updated", and a query sums the most recent `window_sessions` sessions.
/// Expired sessions are dropped as time advances — the forgetting mechanism
/// that keeps the model tracking recent interests.
///
/// `window_sessions == 0` disables forgetting (cumulative counts), which is
/// the plain incremental CF of §4.1.3.
class WindowedCounts {
 public:
  WindowedCounts(EventTime session_length, int window_sessions)
      : session_length_(session_length < 1 ? 1 : session_length),
        window_sessions_(window_sessions) {}

  /// Deferred-eviction mode, for the sharded executor: events always land
  /// in their true session — even when the high-water mark has already
  /// advanced past their window — and expired sessions are dropped only by
  /// explicit AdvanceTo() calls (the drain barrier). With eager eviction a
  /// shard that runs slightly behind its siblings would see its in-order
  /// events misclassified as late (folded forward) whenever the stream
  /// jumps across sessions; deferring eviction to the barrier makes the
  /// drained state identical to a serial run of the same stream. The cost
  /// is that between drains the deque can briefly hold more than
  /// window_sessions_ sessions (bounded by the event-time span since the
  /// last drain).
  void SetDeferredEviction(bool defer) { defer_eviction_ = defer; }

  /// Adds ∆r to itemCount(item) in the session containing `ts`.
  void AddItem(ItemId item, double delta, EventTime ts);

  /// Adds ∆co-rating to pairCount(a, b) in the session containing `ts`.
  void AddPair(ItemId a, ItemId b, double delta, EventTime ts);

  /// Σ_w itemCount_w(item) over the window ending at the latest session.
  double ItemCount(ItemId item) const;

  /// Σ_w pairCount_w(a, b) over the window ending at the latest session.
  double PairCount(ItemId a, ItemId b) const;

  /// sim(a, b) = pairCount / (√itemCount(a) · √itemCount(b))  (Eq. 5/10).
  /// Zero when either itemCount is empty.
  double Similarity(ItemId a, ItemId b) const;

  /// Moves the window forward to the session containing `ts`, dropping
  /// sessions older than the window. Adds do this implicitly; call it
  /// directly to expire counts during quiet periods.
  void AdvanceTo(EventTime ts);

  int64_t CurrentSession() const { return latest_session_; }
  size_t NumSessions() const { return sessions_.size(); }

  /// Distinct items/pairs currently tracked (across live sessions).
  size_t TrackedItems() const;
  size_t TrackedPairs() const;

  /// Visits every tracked item with its windowed total (Σ over live
  /// sessions) — the read side of checkpoint/mirror exports. Order is
  /// unspecified.
  void VisitItemCounts(
      const std::function<void(ItemId, double)>& visitor) const;

 private:
  struct Session {
    int64_t id = 0;
    std::unordered_map<ItemId, double> item_counts;
    std::unordered_map<PairKey, double, PairKeyHash> pair_counts;
  };

  int64_t SessionOf(EventTime ts) const { return ts / session_length_; }
  /// The live session that should absorb counts timestamped `ts`, creating
  /// it in id-sorted position when needed. Late but in-window data lands in
  /// its own (correct) session; out-of-window late data folds into the
  /// oldest live session, or returns nullptr (drop) when nothing is live.
  Session* SessionFor(EventTime ts);
  bool InWindow(int64_t session_id) const {
    return window_sessions_ <= 0 ||
           session_id > latest_session_ - window_sessions_;
  }

  const EventTime session_length_;
  const int window_sessions_;
  bool defer_eviction_ = false;
  int64_t latest_session_ = -1;
  /// Sessions below this id have been evicted (deferred mode only): a
  /// straggler event for one of them is genuinely late, not just behind a
  /// sibling shard, and takes the fold-or-drop path.
  int64_t evicted_floor_ = INT64_MIN;
  /// Live sessions, ordered by ascending session id; at most
  /// window_sessions_ of them (or one cumulative pseudo-session when
  /// windowing is off). The ordering invariant makes eviction front-only
  /// and lets reads sum the whole deque without in-window checks.
  std::deque<Session> sessions_;
};

}  // namespace tencentrec::core

#endif  // TENCENTREC_CORE_ITEMCF_WINDOW_COUNTS_H_
