#ifndef TENCENTREC_CORE_ITEMCF_WINDOW_COUNTS_H_
#define TENCENTREC_CORE_ITEMCF_WINDOW_COUNTS_H_

#include <deque>
#include <unordered_map>

#include "common/clock.h"
#include "core/itemcf/pair_key.h"

namespace tencentrec::core {

/// Sliding-window itemCount/pairCount storage (Eq. 10). Event time is cut
/// into sessions of `session_length`; each session keeps its own partial
/// counts (itemCount_w, pairCount_w), all "naturally incrementally
/// updated", and a query sums the most recent `window_sessions` sessions.
/// Expired sessions are dropped as time advances — the forgetting mechanism
/// that keeps the model tracking recent interests.
///
/// `window_sessions == 0` disables forgetting (cumulative counts), which is
/// the plain incremental CF of §4.1.3.
class WindowedCounts {
 public:
  WindowedCounts(EventTime session_length, int window_sessions)
      : session_length_(session_length < 1 ? 1 : session_length),
        window_sessions_(window_sessions) {}

  /// Adds ∆r to itemCount(item) in the session containing `ts`.
  void AddItem(ItemId item, double delta, EventTime ts);

  /// Adds ∆co-rating to pairCount(a, b) in the session containing `ts`.
  void AddPair(ItemId a, ItemId b, double delta, EventTime ts);

  /// Σ_w itemCount_w(item) over the window ending at the latest session.
  double ItemCount(ItemId item) const;

  /// Σ_w pairCount_w(a, b) over the window ending at the latest session.
  double PairCount(ItemId a, ItemId b) const;

  /// sim(a, b) = pairCount / (√itemCount(a) · √itemCount(b))  (Eq. 5/10).
  /// Zero when either itemCount is empty.
  double Similarity(ItemId a, ItemId b) const;

  /// Moves the window forward to the session containing `ts`, dropping
  /// sessions older than the window. Adds do this implicitly; call it
  /// directly to expire counts during quiet periods.
  void AdvanceTo(EventTime ts);

  int64_t CurrentSession() const { return latest_session_; }
  size_t NumSessions() const { return sessions_.size(); }

  /// Distinct items/pairs currently tracked (across live sessions).
  size_t TrackedItems() const;
  size_t TrackedPairs() const;

 private:
  struct Session {
    int64_t id = 0;
    std::unordered_map<ItemId, double> item_counts;
    std::unordered_map<PairKey, double, PairKeyHash> pair_counts;
  };

  int64_t SessionOf(EventTime ts) const { return ts / session_length_; }
  Session* SessionFor(EventTime ts);
  bool InWindow(int64_t session_id) const {
    return window_sessions_ <= 0 ||
           session_id > latest_session_ - window_sessions_;
  }

  const EventTime session_length_;
  const int window_sessions_;
  int64_t latest_session_ = -1;
  /// Live sessions, oldest first; at most window_sessions_ of them (or one
  /// cumulative pseudo-session when windowing is off).
  std::deque<Session> sessions_;
};

}  // namespace tencentrec::core

#endif  // TENCENTREC_CORE_ITEMCF_WINDOW_COUNTS_H_
