#ifndef TENCENTREC_CORE_ITEMCF_PAIR_KEY_H_
#define TENCENTREC_CORE_ITEMCF_PAIR_KEY_H_

#include <cstdint>
#include <utility>

#include "common/hash.h"
#include "common/logging.h"
#include "core/action.h"

namespace tencentrec::core {

/// Canonical (unordered) item-pair key: co-rating and similarity are
/// symmetric, so (a, b) and (b, a) must address the same counter.
struct PairKey {
  ItemId lo = 0;
  ItemId hi = 0;

  PairKey() = default;
  PairKey(ItemId a, ItemId b) : lo(a < b ? a : b), hi(a < b ? b : a) {}

  bool operator==(const PairKey&) const = default;
};

struct PairKeyHash {
  size_t operator()(const PairKey& k) const {
    return static_cast<size_t>(
        HashCombine(HashInt(static_cast<uint64_t>(k.lo)),
                    HashInt(static_cast<uint64_t>(k.hi))));
  }
};

/// The canonical pair packed into one uint64 — `(lo << 32) | hi` — the key
/// format of the flat pair tables (common/flat_map.h): one word to hash,
/// compare, and store instead of a 16-byte struct. Requires ids in
/// [0, 2^32) (checked; the escape hatch is the per-instance
/// use_flat_kernels option, which falls back to the PairKey maps). The
/// canonical lo <= hi ordering guarantees a packed pair never equals the
/// flat tables' all-ones empty sentinel: that would need lo == hi ==
/// 2^32-1, and the CF layers never form self-pairs.
inline uint64_t PackPair(const PairKey& k) {
  TR_CHECK(k.lo >= 0 && k.hi < (static_cast<ItemId>(1) << 32));
  return (static_cast<uint64_t>(k.lo) << 32) | static_cast<uint64_t>(k.hi);
}

inline uint64_t PackPair(ItemId a, ItemId b) { return PackPair(PairKey(a, b)); }

/// Packed key for a single item id in the flat item tables. Non-negative is
/// enough here (a plain cast would let id -1 alias the empty sentinel).
inline uint64_t PackItem(ItemId item) {
  TR_CHECK(item >= 0);
  return static_cast<uint64_t>(item);
}

/// Packed key for a user id (flat history index).
inline uint64_t PackUser(UserId user) {
  TR_CHECK(user >= 0);
  return static_cast<uint64_t>(user);
}

}  // namespace tencentrec::core

#endif  // TENCENTREC_CORE_ITEMCF_PAIR_KEY_H_
