#ifndef TENCENTREC_CORE_ITEMCF_PAIR_KEY_H_
#define TENCENTREC_CORE_ITEMCF_PAIR_KEY_H_

#include <utility>

#include "common/hash.h"
#include "core/action.h"

namespace tencentrec::core {

/// Canonical (unordered) item-pair key: co-rating and similarity are
/// symmetric, so (a, b) and (b, a) must address the same counter.
struct PairKey {
  ItemId lo = 0;
  ItemId hi = 0;

  PairKey() = default;
  PairKey(ItemId a, ItemId b) : lo(a < b ? a : b), hi(a < b ? b : a) {}

  bool operator==(const PairKey&) const = default;
};

struct PairKeyHash {
  size_t operator()(const PairKey& k) const {
    return static_cast<size_t>(
        HashCombine(HashInt(static_cast<uint64_t>(k.lo)),
                    HashInt(static_cast<uint64_t>(k.hi))));
  }
};

}  // namespace tencentrec::core

#endif  // TENCENTREC_CORE_ITEMCF_PAIR_KEY_H_
