#ifndef TENCENTREC_CORE_ITEMCF_PREDICT_H_
#define TENCENTREC_CORE_ITEMCF_PREDICT_H_

#include <algorithm>
#include <cmath>
#include <unordered_set>
#include <vector>

#include "common/topk.h"
#include "core/rating.h"
#include "core/scored.h"

namespace tencentrec::core {

/// Real-time personalized prediction (Eq. 2 restricted to the user's
/// recent-k items, §4.3), shared by the single-process reference
/// (PracticalItemCf) and the sharded executor (ParallelItemCf) so the two
/// implementations are prediction-identical by construction.
///
/// `similar_items(ItemId) -> const TopK<ItemId>*` supplies candidate
/// generation (nullptr when the item has no list yet);
/// `effective_sim(ItemId, ItemId) -> double` supplies the current
/// (shrinkage-adjusted) similarity used for scoring.
template <typename SimilarItemsFn, typename EffectiveSimFn>
Recommendations PredictFromRecent(const UserHistory& history,
                                  const std::vector<ItemId>& recent,
                                  SimilarItemsFn&& similar_items,
                                  EffectiveSimFn&& effective_sim, size_t n) {
  if (recent.empty()) return {};

  // Candidates: similar items of the user's recent items, minus seen ones.
  std::unordered_set<ItemId> candidates;
  for (ItemId q : recent) {
    const TopK<ItemId>* sims = similar_items(q);
    if (sims == nullptr) continue;
    for (const auto& entry : sims->entries()) {
      if (entry.score <= 0.0) continue;
      if (history.RatingOf(entry.id) > 0.0) continue;  // already rated
      candidates.insert(entry.id);
    }
  }
  if (candidates.empty()) return {};

  // Eq. 2 restricted to the recent-k set: weighted average of the user's
  // ratings on recent items, weighted by current similarity. The recent
  // ratings are invariant across candidates — look each up once, not once
  // per (candidate, recent) pair.
  std::vector<double> recent_ratings;
  recent_ratings.reserve(recent.size());
  for (ItemId q : recent) recent_ratings.push_back(history.RatingOf(q));
  Recommendations scored;
  scored.reserve(candidates.size());
  for (ItemId p : candidates) {
    double num = 0.0;
    double den = 0.0;
    for (size_t qi = 0; qi < recent.size(); ++qi) {
      const double sim = effective_sim(p, recent[qi]);
      if (sim <= 0.0) continue;
      num += sim * recent_ratings[qi];
      den += sim;
    }
    if (den <= 0.0) continue;
    // Score = predicted rating, tilted by total similarity mass so that a
    // candidate related to several recent items beats one related to a
    // single item with the same predicted rating.
    scored.push_back({p, (num / den) * (1.0 + std::log1p(den))});
  }
  std::sort(scored.begin(), scored.end(),
            [](const ScoredItem& a, const ScoredItem& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.item < b.item;  // deterministic ties
            });
  if (scored.size() > n) scored.resize(n);
  return scored;
}

}  // namespace tencentrec::core

#endif  // TENCENTREC_CORE_ITEMCF_PREDICT_H_
