#ifndef TENCENTREC_CORE_ITEMCF_PREDICT_H_
#define TENCENTREC_CORE_ITEMCF_PREDICT_H_

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/arena.h"
#include "common/flat_map.h"
#include "common/topk.h"
#include "core/rating.h"
#include "core/scored.h"

namespace tencentrec::core {

/// Real-time personalized prediction (Eq. 2 restricted to the user's
/// recent-k items, §4.3), shared by the single-process reference
/// (PracticalItemCf) and the sharded executor (ParallelItemCf) so the two
/// implementations are prediction-identical by construction.
///
/// `similar_items(ItemId) -> const TopK<ItemId>*` supplies candidate
/// generation (nullptr when the item has no list yet);
/// `effective_sim(ItemId, ItemId) -> double` supplies the current
/// (shrinkage-adjusted) similarity used for scoring.
///
/// Scratch (candidate set, rating cache, scored buffer) lives in a
/// thread-local arena reset per call: steady-state queries allocate only
/// the returned Recommendations vector. Thread-local because the sharded
/// executor serves this from concurrent query threads.
template <typename SimilarItemsFn, typename EffectiveSimFn>
Recommendations PredictFromRecent(const UserHistory& history,
                                  const std::vector<ItemId>& recent,
                                  SimilarItemsFn&& similar_items,
                                  EffectiveSimFn&& effective_sim, size_t n) {
  if (recent.empty()) return {};

  struct Scratch {
    Arena arena;
    FlatSet64 seen;
  };
  thread_local Scratch scratch;
  scratch.arena.Reset();
  scratch.seen.Clear();

  // Candidates: similar items of the user's recent items, minus seen ones.
  // The dedup set keys on the packed id; candidate order is insertion order,
  // which the total-order sort below makes irrelevant to the output.
  ArenaVector<ItemId> candidates(&scratch.arena, 64);
  for (ItemId q : recent) {
    const TopK<ItemId>* sims = similar_items(q);
    if (sims == nullptr) continue;
    const size_t m = sims->size();
    for (size_t r = 0; r < m; ++r) {
      if (sims->score_at(r) <= 0.0) continue;
      const ItemId id = sims->id_at(r);
      if (!scratch.seen.Insert(PackItem(id))) continue;  // already a candidate
      if (history.RatingOf(id) > 0.0) continue;  // already rated
      candidates.push_back(id);
    }
  }
  if (candidates.empty()) return {};

  // Eq. 2 restricted to the recent-k set: weighted average of the user's
  // ratings on recent items, weighted by current similarity. The recent
  // ratings are invariant across candidates — look each up once, not once
  // per (candidate, recent) pair.
  ArenaVector<double> recent_ratings(&scratch.arena, recent.size());
  for (ItemId q : recent) recent_ratings.push_back(history.RatingOf(q));
  ArenaVector<ScoredItem> scored(&scratch.arena, candidates.size());
  for (ItemId p : candidates) {
    double num = 0.0;
    double den = 0.0;
    for (size_t qi = 0; qi < recent.size(); ++qi) {
      const double sim = effective_sim(p, recent[qi]);
      if (sim <= 0.0) continue;
      num += sim * recent_ratings[qi];
      den += sim;
    }
    if (den <= 0.0) continue;
    // Score = predicted rating, tilted by total similarity mass so that a
    // candidate related to several recent items beats one related to a
    // single item with the same predicted rating.
    scored.push_back({p, (num / den) * (1.0 + std::log1p(den))});
  }
  std::sort(scored.begin(), scored.end(),
            [](const ScoredItem& a, const ScoredItem& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.item < b.item;  // deterministic ties
            });
  const size_t take = std::min(n, scored.size());
  Recommendations out(scored.begin(), scored.begin() + take);
  return out;
}

}  // namespace tencentrec::core

#endif  // TENCENTREC_CORE_ITEMCF_PREDICT_H_
