#include "core/itemcf/basic_cf.h"

#include <algorithm>
#include <cmath>

namespace tencentrec::core {

void BasicItemCf::SetRating(UserId user, ItemId item, double rating) {
  ratings_[user][item] = rating;
}

double BasicItemCf::RatingOf(UserId user, ItemId item) const {
  auto uit = ratings_.find(user);
  if (uit == ratings_.end()) return 0.0;
  auto iit = uit->second.find(item);
  return iit == uit->second.end() ? 0.0 : iit->second;
}

void BasicItemCf::ComputeSimilarities() {
  similarities_.clear();
  neighbors_.clear();

  // Accumulate numerators over co-rating users and per-item norms.
  std::unordered_map<PairKey, double, PairKeyHash> numerators;
  std::unordered_map<ItemId, double> norms;  // Σr² (cosine) or Σr (Eq. 4)

  for (const auto& [user, items] : ratings_) {
    std::vector<std::pair<ItemId, double>> rated(items.begin(), items.end());
    for (const auto& [item, r] : rated) {
      norms[item] += measure_ == SimilarityMeasure::kCosine ? r * r : r;
    }
    for (size_t a = 0; a < rated.size(); ++a) {
      for (size_t b = a + 1; b < rated.size(); ++b) {
        const double contrib =
            measure_ == SimilarityMeasure::kCosine
                ? rated[a].second * rated[b].second
                : std::min(rated[a].second, rated[b].second);
        numerators[PairKey(rated[a].first, rated[b].first)] += contrib;
      }
    }
  }

  for (const auto& [pair, num] : numerators) {
    const double na = norms[pair.lo];
    const double nb = norms[pair.hi];
    if (na <= 0.0 || nb <= 0.0) continue;
    double sim = num / (std::sqrt(na) * std::sqrt(nb));
    if (support_shrinkage_ > 0.0) sim *= num / (num + support_shrinkage_);
    if (sim <= 0.0) continue;
    similarities_[pair] = sim;
    neighbors_[pair.lo].emplace_back(pair.hi, sim);
    neighbors_[pair.hi].emplace_back(pair.lo, sim);
  }
  for (auto& [item, list] : neighbors_) {
    std::sort(list.begin(), list.end(), [](const auto& x, const auto& y) {
      if (x.second != y.second) return x.second > y.second;
      return x.first < y.first;
    });
  }
}

double BasicItemCf::Similarity(ItemId a, ItemId b) const {
  auto it = similarities_.find(PairKey(a, b));
  return it == similarities_.end() ? 0.0 : it->second;
}

Recommendations BasicItemCf::NeighborsOf(ItemId item, size_t k) const {
  Recommendations out;
  auto nit = neighbors_.find(item);
  if (nit == neighbors_.end()) return out;
  for (const auto& [other, sim] : nit->second) {
    if (out.size() >= k) break;
    out.push_back({other, sim});
  }
  return out;
}

Recommendations BasicItemCf::RecommendForUser(UserId user, size_t n,
                                              size_t k) const {
  auto uit = ratings_.find(user);
  if (uit == ratings_.end()) return {};
  const auto& rated = uit->second;

  // Candidates: neighbours of rated items.
  std::unordered_map<ItemId, bool> candidates;
  for (const auto& [item, r] : rated) {
    auto nit = neighbors_.find(item);
    if (nit == neighbors_.end()) continue;
    size_t taken = 0;
    for (const auto& [other, sim] : nit->second) {
      if (taken++ >= k) break;
      if (rated.count(other) > 0) continue;
      candidates[other] = true;
    }
  }

  Recommendations scored;
  for (const auto& [p, unused] : candidates) {
    // Eq. 2: weighted average over the k neighbours of p the user rated.
    auto nit = neighbors_.find(p);
    if (nit == neighbors_.end()) continue;
    double num = 0.0;
    double den = 0.0;
    size_t taken = 0;
    for (const auto& [q, sim] : nit->second) {
      if (taken++ >= k) break;
      auto rit = rated.find(q);
      if (rit == rated.end()) continue;
      num += sim * rit->second;
      den += sim;
    }
    if (den <= 0.0) continue;
    scored.push_back({p, (num / den) * (1.0 + std::log1p(den))});
  }
  std::sort(scored.begin(), scored.end(),
            [](const ScoredItem& a, const ScoredItem& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.item < b.item;
            });
  if (scored.size() > n) scored.resize(n);
  return scored;
}

}  // namespace tencentrec::core
