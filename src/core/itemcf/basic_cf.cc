#include "core/itemcf/basic_cf.h"

#include <algorithm>
#include <cmath>

#include "common/arena.h"
#include "common/flat_map.h"

namespace tencentrec::core {

void BasicItemCf::SetRating(UserId user, ItemId item, double rating) {
  ratings_[user][item] = rating;
}

double BasicItemCf::RatingOf(UserId user, ItemId item) const {
  auto uit = ratings_.find(user);
  if (uit == ratings_.end()) return 0.0;
  auto iit = uit->second.find(item);
  return iit == uit->second.end() ? 0.0 : iit->second;
}

void BasicItemCf::ComputeSimilarities() {
  similarities_.clear();
  neighbors_.clear();

  // Accumulate numerators over co-rating users and per-item norms in flat
  // open-addressing tables keyed by the packed pair/item (DESIGN.md §15) —
  // the O(users · items-per-user²) inner loop probes contiguous arrays
  // instead of chasing unordered_map nodes. Per-user scratch lives in an
  // arena reset per user, so the loop allocates only on table growth.
  FlatMap64<double> numerators;
  FlatMap64<double> norms;  // Σr² (cosine) or Σr (Eq. 4)
  Arena arena;

  struct Rated {
    ItemId item;
    double rating;
  };
  for (const auto& [user, items] : ratings_) {
    arena.Reset();
    ArenaVector<Rated> rated(&arena, items.size());
    for (const auto& [item, r] : items) rated.push_back({item, r});
    for (const Rated& row : rated) {
      norms[PackItem(row.item)] +=
          measure_ == SimilarityMeasure::kCosine ? row.rating * row.rating
                                                 : row.rating;
    }
    for (size_t a = 0; a < rated.size(); ++a) {
      for (size_t b = a + 1; b < rated.size(); ++b) {
        const double contrib =
            measure_ == SimilarityMeasure::kCosine
                ? rated[a].rating * rated[b].rating
                : std::min(rated[a].rating, rated[b].rating);
        numerators[PackPair(rated[a].item, rated[b].item)] += contrib;
      }
    }
  }

  numerators.ForEach([&](uint64_t packed, double num) {
    const PairKey pair{static_cast<ItemId>(packed >> 32),
                       static_cast<ItemId>(packed & 0xffffffffull)};
    const double* na = norms.Find(PackItem(pair.lo));
    const double* nb = norms.Find(PackItem(pair.hi));
    if (na == nullptr || *na <= 0.0 || nb == nullptr || *nb <= 0.0) return;
    double sim = num / (std::sqrt(*na) * std::sqrt(*nb));
    if (support_shrinkage_ > 0.0) sim *= num / (num + support_shrinkage_);
    if (sim <= 0.0) return;
    similarities_[pair] = sim;
    neighbors_[pair.lo].emplace_back(pair.hi, sim);
    neighbors_[pair.hi].emplace_back(pair.lo, sim);
  });
  for (auto& [item, list] : neighbors_) {
    std::sort(list.begin(), list.end(), [](const auto& x, const auto& y) {
      if (x.second != y.second) return x.second > y.second;
      return x.first < y.first;
    });
  }
}

double BasicItemCf::Similarity(ItemId a, ItemId b) const {
  auto it = similarities_.find(PairKey(a, b));
  return it == similarities_.end() ? 0.0 : it->second;
}

Recommendations BasicItemCf::NeighborsOf(ItemId item, size_t k) const {
  Recommendations out;
  auto nit = neighbors_.find(item);
  if (nit == neighbors_.end()) return out;
  for (const auto& [other, sim] : nit->second) {
    if (out.size() >= k) break;
    out.push_back({other, sim});
  }
  return out;
}

Recommendations BasicItemCf::RecommendForUser(UserId user, size_t n,
                                              size_t k) const {
  auto uit = ratings_.find(user);
  if (uit == ratings_.end()) return {};
  const auto& rated = uit->second;

  // Candidates: neighbours of rated items.
  std::unordered_map<ItemId, bool> candidates;
  for (const auto& [item, r] : rated) {
    auto nit = neighbors_.find(item);
    if (nit == neighbors_.end()) continue;
    size_t taken = 0;
    for (const auto& [other, sim] : nit->second) {
      if (taken++ >= k) break;
      if (rated.count(other) > 0) continue;
      candidates[other] = true;
    }
  }

  Recommendations scored;
  for (const auto& [p, unused] : candidates) {
    // Eq. 2: weighted average over the k neighbours of p the user rated.
    auto nit = neighbors_.find(p);
    if (nit == neighbors_.end()) continue;
    double num = 0.0;
    double den = 0.0;
    size_t taken = 0;
    for (const auto& [q, sim] : nit->second) {
      if (taken++ >= k) break;
      auto rit = rated.find(q);
      if (rit == rated.end()) continue;
      num += sim * rit->second;
      den += sim;
    }
    if (den <= 0.0) continue;
    scored.push_back({p, (num / den) * (1.0 + std::log1p(den))});
  }
  std::sort(scored.begin(), scored.end(),
            [](const ScoredItem& a, const ScoredItem& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.item < b.item;
            });
  if (scored.size() > n) scored.resize(n);
  return scored;
}

}  // namespace tencentrec::core
