#include "core/itemcf/item_cf.h"

#include <algorithm>
#include <cmath>

#include "core/itemcf/predict.h"

namespace tencentrec::core {

PracticalItemCf::PracticalItemCf(Options options)
    : options_(std::move(options)),
      counts_(options_.session_length, options_.window_sessions,
              options_.use_flat_kernels) {
  if (options_.hoeffding_delta <= 0.0 || options_.hoeffding_delta >= 1.0) {
    options_.hoeffding_delta = 0.05;
  }
  hoeffding_ln_inv_delta_ = std::log(1.0 / options_.hoeffding_delta);
}

UserHistory& PracticalItemCf::HistoryFor(UserId user) {
  if (options_.use_flat_kernels) {
    uint32_t& idx = history_index_[PackUser(user)];
    if (idx == 0) {
      // Slot ids are 1-based so the flat table's zero-initialized value
      // means "absent"; the deque gives rows stable addresses across
      // inserts, so returned references stay valid.
      history_store_.emplace_back();
      idx = static_cast<uint32_t>(history_store_.size());
    }
    return history_store_[idx - 1];
  }
  return histories_map_[user];
}

const UserHistory* PracticalItemCf::FindHistory(UserId user) const {
  if (options_.use_flat_kernels) {
    const uint32_t* idx = history_index_.Find(PackUser(user));
    return idx == nullptr ? nullptr : &history_store_[*idx - 1];
  }
  auto it = histories_map_.find(user);
  return it == histories_map_.end() ? nullptr : &it->second;
}

TopK<ItemId>& PracticalItemCf::ListFor(ItemId item) {
  if (options_.use_flat_kernels) {
    uint32_t& idx = similar_index_[PackItem(item)];
    if (idx == 0) {
      similar_store_.emplace_back(static_cast<size_t>(options_.top_k));
      idx = static_cast<uint32_t>(similar_store_.size());
    }
    return similar_store_[idx - 1];
  }
  return similar_map_.try_emplace(item, static_cast<size_t>(options_.top_k))
      .first->second;
}

const TopK<ItemId>* PracticalItemCf::FindList(ItemId item) const {
  if (options_.use_flat_kernels) {
    const uint32_t* idx = similar_index_.Find(PackItem(item));
    return idx == nullptr ? nullptr : &similar_store_[*idx - 1];
  }
  auto it = similar_map_.find(item);
  return it == similar_map_.end() ? nullptr : &it->second;
}

bool PracticalItemCf::IsPrunedKey(const PairKey& key) const {
  return options_.use_flat_kernels ? pruned_flat_.Contains(PackPair(key))
                                   : pruned_set_.count(key) > 0;
}

void PracticalItemCf::MarkPruned(const PairKey& key) {
  if (options_.use_flat_kernels) {
    pruned_flat_.Insert(PackPair(key));
  } else {
    pruned_set_.insert(key);
  }
}

uint32_t PracticalItemCf::BumpObservations(const PairKey& key) {
  return options_.use_flat_kernels ? ++observations_flat_[PackPair(key)]
                                   : ++observations_map_[key];
}

void PracticalItemCf::ProcessAction(const UserAction& action) {
  ++stats_.actions;
  UserHistory& history = HistoryFor(action.user);
  if (options_.history_ttl > 0) {
    history.EvictOlderThan(action.timestamp - options_.history_ttl);
  }
  // Callback form: rating delta lands in counts before any pair delta, and
  // pair updates run as they are emitted — no per-action pair vector.
  history.Apply(
      action, options_.weights, options_.linked_time,
      [this, &action](ItemId item, double rating_delta, double /*new_rating*/) {
        if (rating_delta > 0.0) {
          counts_.AddItem(item, rating_delta, action.timestamp);
        } else {
          counts_.AdvanceTo(action.timestamp);
        }
      },
      [this, &action](ItemId other, double co_delta) {
        UpdatePair(action.item, other, co_delta, action.timestamp);
      });
}

double PracticalItemCf::ThresholdOf(ItemId item) const {
  const TopK<ItemId>* list = FindList(item);
  return list == nullptr ? 0.0 : list->Threshold();
}

void PracticalItemCf::UpdatePair(ItemId i, ItemId j, double co_delta,
                                 EventTime ts) {
  const PairKey key(i, j);
  if (options_.use_flat_kernels) {
    // Start the random-access misses this update will take further down —
    // the similar-list index probes and (under pruning) the observations
    // upsert, the largest table — so they overlap the pair-count work.
    similar_index_.Prefetch(PackItem(i));
    similar_index_.Prefetch(PackItem(j));
    if (options_.enable_pruning) observations_flat_.Prefetch(PackPair(key));
  }
  if (options_.enable_pruning && IsPrunedKey(key)) {
    // Algorithm 1 line 4: pruned pairs skip the whole update — this is the
    // computation the pruning exists to save.
    ++stats_.pair_updates_pruned;
    return;
  }

  counts_.AddPair(i, j, co_delta, ts);
  ++stats_.pair_updates;

  const double pc = counts_.PairCount(i, j);
  const double sim = EffectiveFromCounts(i, j, pc);

  // Maintain both items' similar-items lists.
  ListFor(i).Update(j, sim);
  ListFor(j).Update(i, sim);

  if (!options_.enable_pruning) return;

  const uint32_t n = BumpObservations(key);
  // Pruning is bidirectional: use the min threshold of the two lists
  // (Algorithm 1 line 12). Either list not yet full -> threshold 0 ->
  // nothing can be pruned (everything is still admissible).
  const double t = std::min(ThresholdOf(i), ThresholdOf(j));
  if (t <= 0.0) return;
  // Eq. 9 with R = 1 (similarity scores live in [0, 1]).
  const double epsilon =
      std::sqrt(hoeffding_ln_inv_delta_ / (2.0 * static_cast<double>(n)));
  if (epsilon < t - sim) {
    MarkPruned(key);
    ++stats_.pairs_pruned;
    // The pair can no longer enter either list; drop any stale entry. If
    // the erase shrinks a full list below K, TopK::Threshold() falls back
    // to 0 and pruning against that list pauses until the list refills —
    // the conservative reopen (an under-full list admits any positive
    // score, so keeping the old threshold would over-prune). In this
    // single-threaded pipeline the entry is usually absent already (its
    // own update just refreshed the score, making it the threshold), but
    // the sharded executor's racy similarity reads make the erase real.
    if (TopK<ItemId>* li = const_cast<TopK<ItemId>*>(FindList(i))) {
      li->Erase(j);
    }
    if (TopK<ItemId>* lj = const_cast<TopK<ItemId>*>(FindList(j))) {
      lj->Erase(i);
    }
  }
}

double PracticalItemCf::EffectiveSimilarity(ItemId a, ItemId b) const {
  return EffectiveFromCounts(a, b, counts_.PairCount(a, b));
}

double PracticalItemCf::EffectiveFromCounts(ItemId a, ItemId b,
                                            double pair_count) const {
  if (pair_count <= 0.0) return 0.0;
  const double ca = counts_.ItemCount(a);
  const double cb = counts_.ItemCount(b);
  if (ca <= 0.0 || cb <= 0.0) return 0.0;
  // Same ops as WindowedCounts::Similarity (Eq. 5) so results stay
  // bit-identical with code that calls it directly. Single sqrt of the
  // product — one fewer root on the per-update path; every Eq. 5 site
  // uses this exact form so cross-path comparisons stay exact.
  double sim = pair_count / std::sqrt(ca * cb);
  if (sim > 0.0 && options_.support_shrinkage > 0.0) {
    sim *= pair_count / (pair_count + options_.support_shrinkage);
  }
  return sim;
}

const TopK<ItemId>* PracticalItemCf::SimilarItems(ItemId item) const {
  return FindList(item);
}

std::vector<ItemId> PracticalItemCf::RecentItemsOf(UserId user) const {
  const UserHistory* history = FindHistory(user);
  if (history == nullptr) return {};
  const size_t k = options_.recent_k > 0
                       ? static_cast<size_t>(options_.recent_k)
                       : history->size();
  return history->RecentItems(k);
}

double PracticalItemCf::UserRating(UserId user, ItemId item) const {
  const UserHistory* history = FindHistory(user);
  return history == nullptr ? 0.0 : history->RatingOf(item);
}

Recommendations PracticalItemCf::RecommendForUser(UserId user,
                                                  size_t n) const {
  const UserHistory* history = FindHistory(user);
  if (history == nullptr) return {};
  return PredictFromRecent(
      *history, RecentItemsOf(user),
      [this](ItemId q) { return SimilarItems(q); },
      [this](ItemId p, ItemId q) { return EffectiveSimilarity(p, q); }, n);
}

bool PracticalItemCf::IsPruned(ItemId a, ItemId b) const {
  return IsPrunedKey(PairKey(a, b));
}

}  // namespace tencentrec::core
