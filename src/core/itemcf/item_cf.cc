#include "core/itemcf/item_cf.h"

#include <algorithm>
#include <cmath>

#include "core/itemcf/predict.h"

namespace tencentrec::core {

PracticalItemCf::PracticalItemCf(Options options)
    : options_(std::move(options)),
      counts_(options_.session_length, options_.window_sessions) {
  if (options_.hoeffding_delta <= 0.0 || options_.hoeffding_delta >= 1.0) {
    options_.hoeffding_delta = 0.05;
  }
  hoeffding_ln_inv_delta_ = std::log(1.0 / options_.hoeffding_delta);
}

void PracticalItemCf::ProcessAction(const UserAction& action) {
  ++stats_.actions;
  UserHistory& history = histories_[action.user];
  if (options_.history_ttl > 0) {
    history.EvictOlderThan(action.timestamp - options_.history_ttl);
  }
  RatingUpdate update =
      history.Apply(action, options_.weights, options_.linked_time);

  if (update.rating_delta > 0.0) {
    counts_.AddItem(update.item, update.rating_delta, action.timestamp);
  } else {
    counts_.AdvanceTo(action.timestamp);
  }
  for (const auto& pair : update.pairs) {
    UpdatePair(update.item, pair.other, pair.co_rating_delta,
               action.timestamp);
  }
}

double PracticalItemCf::ThresholdOf(ItemId item) const {
  auto it = similar_.find(item);
  return it == similar_.end() ? 0.0 : it->second.Threshold();
}

void PracticalItemCf::UpdatePair(ItemId i, ItemId j, double co_delta,
                                 EventTime ts) {
  const PairKey key(i, j);
  if (options_.enable_pruning && pruned_.count(key) > 0) {
    // Algorithm 1 line 4: pruned pairs skip the whole update — this is the
    // computation the pruning exists to save.
    ++stats_.pair_updates_pruned;
    return;
  }

  counts_.AddPair(i, j, co_delta, ts);
  ++stats_.pair_updates;

  const double sim = EffectiveSimilarity(i, j);

  // Maintain both items' similar-items lists.
  similar_.try_emplace(i, static_cast<size_t>(options_.top_k))
      .first->second.Update(j, sim);
  similar_.try_emplace(j, static_cast<size_t>(options_.top_k))
      .first->second.Update(i, sim);

  if (!options_.enable_pruning) return;

  const uint32_t n = ++pair_observations_[key];
  // Pruning is bidirectional: use the min threshold of the two lists
  // (Algorithm 1 line 12). Either list not yet full -> threshold 0 ->
  // nothing can be pruned (everything is still admissible).
  const double t = std::min(ThresholdOf(i), ThresholdOf(j));
  if (t <= 0.0) return;
  // Eq. 9 with R = 1 (similarity scores live in [0, 1]).
  const double epsilon =
      std::sqrt(hoeffding_ln_inv_delta_ / (2.0 * static_cast<double>(n)));
  if (epsilon < t - sim) {
    pruned_.insert(key);
    ++stats_.pairs_pruned;
    // The pair can no longer enter either list; drop any stale entry. If
    // the erase shrinks a full list below K, TopK::Threshold() falls back
    // to 0 and pruning against that list pauses until the list refills —
    // the conservative reopen (an under-full list admits any positive
    // score, so keeping the old threshold would over-prune). In this
    // single-threaded pipeline the entry is usually absent already (its
    // own update just refreshed the score, making it the threshold), but
    // the sharded executor's racy similarity reads make the erase real.
    auto it_i = similar_.find(i);
    if (it_i != similar_.end()) it_i->second.Erase(j);
    auto it_j = similar_.find(j);
    if (it_j != similar_.end()) it_j->second.Erase(i);
  }
}

double PracticalItemCf::EffectiveSimilarity(ItemId a, ItemId b) const {
  double sim = counts_.Similarity(a, b);
  if (sim > 0.0 && options_.support_shrinkage > 0.0) {
    const double pc = counts_.PairCount(a, b);
    sim *= pc / (pc + options_.support_shrinkage);
  }
  return sim;
}

const TopK<ItemId>* PracticalItemCf::SimilarItems(ItemId item) const {
  auto it = similar_.find(item);
  return it == similar_.end() ? nullptr : &it->second;
}

std::vector<ItemId> PracticalItemCf::RecentItemsOf(UserId user) const {
  auto it = histories_.find(user);
  if (it == histories_.end()) return {};
  const size_t k = options_.recent_k > 0
                       ? static_cast<size_t>(options_.recent_k)
                       : it->second.size();
  return it->second.RecentItems(k);
}

double PracticalItemCf::UserRating(UserId user, ItemId item) const {
  auto it = histories_.find(user);
  return it == histories_.end() ? 0.0 : it->second.RatingOf(item);
}

Recommendations PracticalItemCf::RecommendForUser(UserId user,
                                                  size_t n) const {
  auto hit = histories_.find(user);
  if (hit == histories_.end()) return {};
  return PredictFromRecent(
      hit->second, RecentItemsOf(user),
      [this](ItemId q) { return SimilarItems(q); },
      [this](ItemId p, ItemId q) { return EffectiveSimilarity(p, q); }, n);
}

bool PracticalItemCf::IsPruned(ItemId a, ItemId b) const {
  return pruned_.count(PairKey(a, b)) > 0;
}

}  // namespace tencentrec::core
