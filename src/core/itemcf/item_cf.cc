#include "core/itemcf/item_cf.h"

#include <algorithm>
#include <cmath>

namespace tencentrec::core {

PracticalItemCf::PracticalItemCf(Options options)
    : options_(std::move(options)),
      counts_(options_.session_length, options_.window_sessions) {
  if (options_.hoeffding_delta <= 0.0 || options_.hoeffding_delta >= 1.0) {
    options_.hoeffding_delta = 0.05;
  }
  hoeffding_ln_inv_delta_ = std::log(1.0 / options_.hoeffding_delta);
}

void PracticalItemCf::ProcessAction(const UserAction& action) {
  ++stats_.actions;
  UserHistory& history = histories_[action.user];
  if (options_.history_ttl > 0) {
    history.EvictOlderThan(action.timestamp - options_.history_ttl);
  }
  RatingUpdate update =
      history.Apply(action, options_.weights, options_.linked_time);

  if (update.rating_delta > 0.0) {
    counts_.AddItem(update.item, update.rating_delta, action.timestamp);
  } else {
    counts_.AdvanceTo(action.timestamp);
  }
  for (const auto& pair : update.pairs) {
    UpdatePair(update.item, pair.other, pair.co_rating_delta,
               action.timestamp);
  }
}

double PracticalItemCf::ThresholdOf(ItemId item) const {
  auto it = similar_.find(item);
  return it == similar_.end() ? 0.0 : it->second.Threshold();
}

void PracticalItemCf::UpdatePair(ItemId i, ItemId j, double co_delta,
                                 EventTime ts) {
  const PairKey key(i, j);
  if (options_.enable_pruning && pruned_.count(key) > 0) {
    // Algorithm 1 line 4: pruned pairs skip the whole update — this is the
    // computation the pruning exists to save.
    ++stats_.pair_updates_pruned;
    return;
  }

  counts_.AddPair(i, j, co_delta, ts);
  ++stats_.pair_updates;

  const double sim = EffectiveSimilarity(i, j);

  // Maintain both items' similar-items lists.
  similar_.try_emplace(i, static_cast<size_t>(options_.top_k))
      .first->second.Update(j, sim);
  similar_.try_emplace(j, static_cast<size_t>(options_.top_k))
      .first->second.Update(i, sim);

  if (!options_.enable_pruning) return;

  const uint32_t n = ++pair_observations_[key];
  // Pruning is bidirectional: use the min threshold of the two lists
  // (Algorithm 1 line 12). Either list not yet full -> threshold 0 ->
  // nothing can be pruned (everything is still admissible).
  const double t = std::min(ThresholdOf(i), ThresholdOf(j));
  if (t <= 0.0) return;
  // Eq. 9 with R = 1 (similarity scores live in [0, 1]).
  const double epsilon =
      std::sqrt(hoeffding_ln_inv_delta_ / (2.0 * static_cast<double>(n)));
  if (epsilon < t - sim) {
    pruned_.insert(key);
    ++stats_.pairs_pruned;
    // The pair can no longer enter either list; drop any stale entry.
    auto it_i = similar_.find(i);
    if (it_i != similar_.end()) it_i->second.Erase(j);
    auto it_j = similar_.find(j);
    if (it_j != similar_.end()) it_j->second.Erase(i);
  }
}

double PracticalItemCf::EffectiveSimilarity(ItemId a, ItemId b) const {
  double sim = counts_.Similarity(a, b);
  if (sim > 0.0 && options_.support_shrinkage > 0.0) {
    const double pc = counts_.PairCount(a, b);
    sim *= pc / (pc + options_.support_shrinkage);
  }
  return sim;
}

const TopK<ItemId>* PracticalItemCf::SimilarItems(ItemId item) const {
  auto it = similar_.find(item);
  return it == similar_.end() ? nullptr : &it->second;
}

std::vector<ItemId> PracticalItemCf::RecentItemsOf(UserId user) const {
  auto it = histories_.find(user);
  if (it == histories_.end()) return {};
  const size_t k = options_.recent_k > 0
                       ? static_cast<size_t>(options_.recent_k)
                       : it->second.size();
  return it->second.RecentItems(k);
}

double PracticalItemCf::UserRating(UserId user, ItemId item) const {
  auto it = histories_.find(user);
  return it == histories_.end() ? 0.0 : it->second.RatingOf(item);
}

Recommendations PracticalItemCf::RecommendForUser(UserId user,
                                                  size_t n) const {
  auto hit = histories_.find(user);
  if (hit == histories_.end()) return {};
  const UserHistory& history = hit->second;

  const std::vector<ItemId> recent = RecentItemsOf(user);
  if (recent.empty()) return {};

  // Candidates: similar items of the user's recent items, minus seen ones.
  std::unordered_set<ItemId> candidates;
  for (ItemId q : recent) {
    const TopK<ItemId>* sims = SimilarItems(q);
    if (sims == nullptr) continue;
    for (const auto& entry : sims->entries()) {
      if (entry.score <= 0.0) continue;
      if (history.RatingOf(entry.id) > 0.0) continue;  // already rated
      candidates.insert(entry.id);
    }
  }
  if (candidates.empty()) return {};

  // Eq. 2 restricted to the recent-k set: weighted average of the user's
  // ratings on recent items, weighted by current similarity.
  Recommendations scored;
  scored.reserve(candidates.size());
  for (ItemId p : candidates) {
    double num = 0.0;
    double den = 0.0;
    for (ItemId q : recent) {
      const double sim = EffectiveSimilarity(p, q);
      if (sim <= 0.0) continue;
      num += sim * history.RatingOf(q);
      den += sim;
    }
    if (den <= 0.0) continue;
    // Score = predicted rating, tilted by total similarity mass so that a
    // candidate related to several recent items beats one related to a
    // single item with the same predicted rating.
    scored.push_back({p, (num / den) * (1.0 + std::log1p(den))});
  }
  std::sort(scored.begin(), scored.end(),
            [](const ScoredItem& a, const ScoredItem& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.item < b.item;  // deterministic ties
            });
  if (scored.size() > n) scored.resize(n);
  return scored;
}

bool PracticalItemCf::IsPruned(ItemId a, ItemId b) const {
  return pruned_.count(PairKey(a, b)) > 0;
}

}  // namespace tencentrec::core
