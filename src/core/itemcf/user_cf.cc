#include "core/itemcf/user_cf.h"

#include <algorithm>
#include <cmath>

#include "common/hash.h"

namespace tencentrec::core {

size_t UserBasedCf::UserPairKeyHash::operator()(const UserPairKey& k) const {
  return static_cast<size_t>(
      HashCombine(HashInt(static_cast<uint64_t>(k.lo)),
                  HashInt(static_cast<uint64_t>(k.hi))));
}

void UserBasedCf::SetRating(UserId user, ItemId item, double rating) {
  ratings_[user][item] = rating;
}

double UserBasedCf::RatingOf(UserId user, ItemId item) const {
  auto uit = ratings_.find(user);
  if (uit == ratings_.end()) return 0.0;
  auto iit = uit->second.find(item);
  return iit == uit->second.end() ? 0.0 : iit->second;
}

void UserBasedCf::ComputeSimilarities() {
  similarities_.clear();
  neighbors_.clear();
  item_raters_.clear();

  // Invert: item -> raters, then accumulate pair dot products per item.
  std::unordered_map<UserId, double> norms;  // Σ r² per user
  for (const auto& [user, items] : ratings_) {
    for (const auto& [item, r] : items) {
      if (r <= 0.0) continue;
      item_raters_[item].emplace_back(user, r);
      norms[user] += r * r;
    }
  }
  std::unordered_map<UserPairKey, double, UserPairKeyHash> dots;
  for (const auto& [item, raters] : item_raters_) {
    for (size_t a = 0; a < raters.size(); ++a) {
      for (size_t b = a + 1; b < raters.size(); ++b) {
        dots[UserPairKey(raters[a].first, raters[b].first)] +=
            raters[a].second * raters[b].second;
      }
    }
  }
  for (const auto& [pair, dot] : dots) {
    const double na = norms[pair.lo];
    const double nb = norms[pair.hi];
    if (na <= 0.0 || nb <= 0.0) continue;
    double sim = dot / (std::sqrt(na) * std::sqrt(nb));
    if (support_shrinkage_ > 0.0) sim *= dot / (dot + support_shrinkage_);
    if (sim <= 0.0) continue;
    similarities_[pair] = sim;
    neighbors_[pair.lo].emplace_back(pair.hi, sim);
    neighbors_[pair.hi].emplace_back(pair.lo, sim);
  }
  for (auto& [user, list] : neighbors_) {
    std::sort(list.begin(), list.end(), [](const auto& x, const auto& y) {
      if (x.second != y.second) return x.second > y.second;
      return x.first < y.first;
    });
  }
}

double UserBasedCf::UserSimilarity(UserId a, UserId b) const {
  auto it = similarities_.find(UserPairKey(a, b));
  return it == similarities_.end() ? 0.0 : it->second;
}

Recommendations UserBasedCf::RecommendForUser(UserId user, size_t n,
                                              size_t k) const {
  auto uit = ratings_.find(user);
  if (uit == ratings_.end()) return {};
  const auto& rated = uit->second;
  auto nit = neighbors_.find(user);
  if (nit == neighbors_.end()) return {};

  std::unordered_map<ItemId, double> numerator;
  std::unordered_map<ItemId, double> denominator;
  size_t taken = 0;
  for (const auto& [neighbor, sim] : nit->second) {
    if (taken++ >= k) break;
    auto rit = ratings_.find(neighbor);
    if (rit == ratings_.end()) continue;
    for (const auto& [item, r] : rit->second) {
      if (r <= 0.0) continue;
      if (rated.count(item) > 0) continue;
      numerator[item] += sim * r;
      denominator[item] += sim;
    }
  }

  Recommendations scored;
  scored.reserve(numerator.size());
  for (const auto& [item, num] : numerator) {
    const double den = denominator[item];
    if (den <= 0.0) continue;
    scored.push_back({item, (num / den) * (1.0 + std::log1p(den))});
  }
  std::sort(scored.begin(), scored.end(),
            [](const ScoredItem& a, const ScoredItem& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.item < b.item;
            });
  if (scored.size() > n) scored.resize(n);
  return scored;
}

}  // namespace tencentrec::core
