#ifndef TENCENTREC_CORE_ITEMCF_USER_CF_H_
#define TENCENTREC_CORE_ITEMCF_USER_CF_H_

#include <unordered_map>
#include <vector>

#include "core/scored.h"

namespace tencentrec::core {

/// User-based collaborative filtering — the alternative §4.1 weighs and
/// rejects ("the empirical evidence has shown that item-based CF method can
/// provide better performance than the user-based CF method"). Included as
/// the comparison baseline that claim is tested against
/// (bench/ablate_userbased) and as a library feature in its own right.
///
/// Batch model: user-user cosine similarity over co-rated items, prediction
/// by the k most similar neighbours' ratings.
class UserBasedCf {
 public:
  explicit UserBasedCf(double support_shrinkage = 0.0)
      : support_shrinkage_(support_shrinkage) {}

  void SetRating(UserId user, ItemId item, double rating);
  double RatingOf(UserId user, ItemId item) const;

  /// Recomputes user-user similarities (O(items · users-per-item²)).
  void ComputeSimilarities();

  /// Cosine similarity between two users from the last recompute.
  double UserSimilarity(UserId a, UserId b) const;

  /// Predicted items: Σ_neighbours sim(u,v)·r_v,p / Σ sim, over the k most
  /// similar users, excluding items `user` already rated.
  Recommendations RecommendForUser(UserId user, size_t n, size_t k = 20) const;

  size_t num_users() const { return ratings_.size(); }

 private:
  struct UserPairKey {
    UserId lo = 0;
    UserId hi = 0;
    UserPairKey(UserId a, UserId b) : lo(a < b ? a : b), hi(a < b ? b : a) {}
    bool operator==(const UserPairKey&) const = default;
  };
  struct UserPairKeyHash {
    size_t operator()(const UserPairKey& k) const;
  };

  double support_shrinkage_;
  std::unordered_map<UserId, std::unordered_map<ItemId, double>> ratings_;
  std::unordered_map<ItemId, std::vector<std::pair<UserId, double>>>
      item_raters_;
  std::unordered_map<UserPairKey, double, UserPairKeyHash> similarities_;
  std::unordered_map<UserId, std::vector<std::pair<UserId, double>>>
      neighbors_;  ///< per user, similarity-descending
};

}  // namespace tencentrec::core

#endif  // TENCENTREC_CORE_ITEMCF_USER_CF_H_
