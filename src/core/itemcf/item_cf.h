#ifndef TENCENTREC_CORE_ITEMCF_ITEM_CF_H_
#define TENCENTREC_CORE_ITEMCF_ITEM_CF_H_

#include <deque>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/flat_map.h"
#include "common/topk.h"
#include "core/itemcf/window_counts.h"
#include "core/rating.h"
#include "core/scored.h"

namespace tencentrec::core {

/// The paper's practical scalable item-based collaborative filtering (§4.1),
/// as a single-process reference implementation. The distributed topology
/// (topo/) runs the same math split across bolts with state in TDStore; the
/// two are cross-checked in tests.
///
/// Per action, the pipeline is:
///  1. user-history layer: max-weight rating update + co-rating deltas
///     (implicit feedback solution, Eq. 3–4);
///  2. count layer: incremental itemCount/pairCount updates over the
///     sliding window (Eq. 6–8, 10);
///  3. similarity layer: sim from counts (Eq. 5), maintenance of each
///     item's top-K similar-items list, and Hoeffding-bound real-time
///     pruning (Eq. 9, Algorithm 1).
class PracticalItemCf {
 public:
  struct Options {
    ActionWeights weights;

    /// Items rated together within this span form pairs (§4.1.4).
    EventTime linked_time = Hours(6);

    /// Size K of each item's similar-items list.
    int top_k = 20;

    /// Recent items per user used at prediction time (§4.3). 0 = all.
    int recent_k = 10;

    /// Sliding window (Eq. 10): session granularity and window size in
    /// sessions. window_sessions = 0 disables forgetting.
    EventTime session_length = Hours(1);
    int window_sessions = 0;

    /// Hoeffding-bound pruning (Algorithm 1).
    bool enable_pruning = false;
    double hoeffding_delta = 0.05;

    /// Support shrinkage (production extension, not in the paper's
    /// formulas): scores used for ranking/lists are
    /// sim · pairCount/(pairCount + shrinkage), damping the sim≈1 noise of
    /// one-off co-occurrences between rare items. 0 disables (pure Eq. 5);
    /// Similarity() always reports the unshrunk Eq. 5 value.
    double support_shrinkage = 0.0;

    /// Drop user-history entries idle longer than this (0 = keep forever).
    EventTime history_ttl = 0;

    /// Selects the state kernel (DESIGN.md §15): flat open-addressing
    /// tables over packed uint64 keys (default — the hot path), or the
    /// original std::unordered_map/set tables. The two are bit-identical
    /// in every output (asserted by tests/flat_kernel_test.cc); the legacy
    /// kernel exists for that parity suite and as an escape hatch for id
    /// spaces outside [0, 2^32) which the packed pair key cannot hold.
    bool use_flat_kernels = true;
  };

  /// Counters for the ablation benches: how much work pruning saved etc.
  struct Stats {
    int64_t actions = 0;
    int64_t pair_updates = 0;          ///< pair counters actually updated
    int64_t pair_updates_pruned = 0;   ///< skipped because pair was pruned
    int64_t pairs_pruned = 0;          ///< prune decisions taken
  };

  explicit PracticalItemCf(Options options);

  /// Ingests one user action, updating all three layers.
  void ProcessAction(const UserAction& action);

  /// Current similarity from windowed counts (Eq. 5/10).
  double Similarity(ItemId a, ItemId b) const {
    return counts_.Similarity(a, b);
  }

  /// Similarity with support shrinkage applied (what lists/ranking use).
  double EffectiveSimilarity(ItemId a, ItemId b) const;

  /// The top-K similar-items table of `item` (nullptr if none yet).
  const TopK<ItemId>* SimilarItems(ItemId item) const;

  /// Predicts ratings for unseen items and returns the best `n` (Eq. 2,
  /// with N_k(i_p) replaced by the user's recent-k items per §4.3). Items
  /// the user already rated are excluded. May return fewer than `n`; the
  /// caller complements with the DB algorithm (HybridRecommender does).
  Recommendations RecommendForUser(UserId user, size_t n) const;

  /// The user's recent-k item set (exposed for the hybrid recommender).
  std::vector<ItemId> RecentItemsOf(UserId user) const;
  double UserRating(UserId user, ItemId item) const;

  const Stats& stats() const { return stats_; }
  const WindowedCounts& counts() const { return counts_; }
  const Options& options() const { return options_; }

  /// True if the pair is currently pruned (test hook).
  bool IsPruned(ItemId a, ItemId b) const;

 private:
  /// Layers 2+3 for one pair delta (Algorithm 1 body).
  void UpdatePair(ItemId i, ItemId j, double co_delta, EventTime ts);
  /// Admission threshold t of `item`'s similar-items list.
  double ThresholdOf(ItemId item) const;
  /// EffectiveSimilarity with the (already read) windowed pair count —
  /// saves the redundant PairCount probes of the old per-update flow.
  double EffectiveFromCounts(ItemId a, ItemId b, double pair_count) const;

  /// Kernel-dispatching state accessors (flat vs legacy per
  /// options_.use_flat_kernels).
  UserHistory& HistoryFor(UserId user);
  const UserHistory* FindHistory(UserId user) const;
  TopK<ItemId>& ListFor(ItemId item);
  const TopK<ItemId>* FindList(ItemId item) const;
  bool IsPrunedKey(const PairKey& key) const;
  void MarkPruned(const PairKey& key);
  uint32_t BumpObservations(const PairKey& key);

  Options options_;
  double hoeffding_ln_inv_delta_ = 0.0;

  WindowedCounts counts_;

  /// Flat kernel state: open-addressing indices into stable-address deques
  /// for the heavy values, flat tables for the scalar counters.
  FlatMap64<uint32_t> history_index_;
  std::deque<UserHistory> history_store_;
  FlatMap64<uint32_t> similar_index_;
  std::deque<TopK<ItemId>> similar_store_;
  FlatMap64<uint32_t> observations_flat_;
  FlatSet64 pruned_flat_;

  /// Legacy kernel state (use_flat_kernels = false).
  std::unordered_map<UserId, UserHistory> histories_map_;
  std::unordered_map<ItemId, TopK<ItemId>> similar_map_;
  /// n_ij of Algorithm 1: observations of each pair's similarity.
  std::unordered_map<PairKey, uint32_t, PairKeyHash> observations_map_;
  /// L_i of Algorithm 1, stored canonically per pair.
  std::unordered_set<PairKey, PairKeyHash> pruned_set_;

  Stats stats_;
};

}  // namespace tencentrec::core

#endif  // TENCENTREC_CORE_ITEMCF_ITEM_CF_H_
