#ifndef TENCENTREC_CORE_ITEMCF_BASIC_CF_H_
#define TENCENTREC_CORE_ITEMCF_BASIC_CF_H_

#include <unordered_map>
#include <vector>

#include "core/itemcf/pair_key.h"
#include "core/scored.h"

namespace tencentrec::core {

/// The textbook batch item-based CF of §4.1.1 (Eq. 1–2), plus the paper's
/// min-co-rating variant (Eq. 4) computed the batch way. It rebuilds the
/// whole similarity table from a ratings snapshot — exactly what the
/// incremental algorithm exists to avoid — and serves two roles:
///  - correctness oracle: after any action sequence, the incremental
///    model's similarities must equal a batch recompute over the same
///    ratings (tested);
///  - the "traditional recommender" baseline whose model refreshes only
///    every T hours in the evaluation harness.
class BasicItemCf {
 public:
  enum class SimilarityMeasure {
    kCosine,       ///< Eq. 1: Σ r_up·r_uq / (‖i_p‖₂·‖i_q‖₂)
    kMinCoRating,  ///< Eq. 4: Σ min(r_up, r_uq) / (√Σr_up·√Σr_uq)
  };

  /// `support_shrinkage` damps low-support similarities by
  /// numerator/(numerator + shrinkage), matching PracticalItemCf's option
  /// so baseline comparisons stay apples-to-apples.
  explicit BasicItemCf(SimilarityMeasure measure = SimilarityMeasure::kCosine,
                       double support_shrinkage = 0.0)
      : measure_(measure), support_shrinkage_(support_shrinkage) {}

  /// Sets user u's rating for an item (replaces any previous value).
  void SetRating(UserId user, ItemId item, double rating);
  double RatingOf(UserId user, ItemId item) const;

  /// Recomputes the full similar-items table (O(users · items-per-user²)).
  void ComputeSimilarities();

  /// Similarity from the last ComputeSimilarities() (0 if never co-rated).
  double Similarity(ItemId a, ItemId b) const;

  /// Eq. 2 over the k most similar co-rated neighbours of each unseen item.
  Recommendations RecommendForUser(UserId user, size_t n, size_t k = 20) const;

  /// The item's most similar neighbours from the last batch recompute.
  Recommendations NeighborsOf(ItemId item, size_t k) const;

  size_t num_users() const { return ratings_.size(); }

 private:
  SimilarityMeasure measure_;
  double support_shrinkage_ = 0.0;
  std::unordered_map<UserId, std::unordered_map<ItemId, double>> ratings_;
  std::unordered_map<PairKey, double, PairKeyHash> similarities_;
  std::unordered_map<ItemId, std::vector<std::pair<ItemId, double>>>
      neighbors_;  ///< per item, similarity-descending
};

}  // namespace tencentrec::core

#endif  // TENCENTREC_CORE_ITEMCF_BASIC_CF_H_
