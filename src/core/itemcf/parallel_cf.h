#ifndef TENCENTREC_CORE_ITEMCF_PARALLEL_CF_H_
#define TENCENTREC_CORE_ITEMCF_PARALLEL_CF_H_

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/flat_map.h"
#include "common/metrics.h"
#include "common/profiled_mutex.h"
#include "common/queue.h"
#include "common/topk.h"
#include "core/itemcf/item_cf.h"
#include "core/itemcf/window_counts.h"
#include "obs/freshness.h"

namespace tencentrec::core {

/// The paper's three-layer parallel CF pipeline (Fig. 4) as a real
/// multi-threaded sharded executor — the in-process analogue of the Storm
/// topology, sized for heavy traffic:
///
///   driver ──field-group by user──▶ N user-shard workers   (layer 1)
///          ──field-group by pair──▶ M pair-shard workers   (layers 2+3)
///
/// Layer 1 (user history): each worker exclusively owns the histories of
/// the users hashing to it, applies the max-weight rating rule and the
/// linked-time co-rating deltas (Eq. 3–4), and forwards pair deltas.
/// Layers 2+3 (count + similarity): each worker exclusively owns the
/// windowed pairCount state of the pairs hashing to it (Eq. 6–8, 10),
/// computes similarities, maintains top-K lists, and runs Hoeffding
/// pruning (Eq. 9, Algorithm 1). itemCounts and per-item top-K lists are
/// cross-shard by nature (a pair touches two items) and live in striped
/// shared state guarded by per-stripe mutexes.
///
/// Transport is the BoundedQueue from common/ (blocking push =
/// backpressure); events travel in batches to amortize queue wakeups.
///
/// Consistency model: all counter state is commutative deltas, so the
/// drained state is independent of cross-shard interleaving and matches
/// PracticalItemCf exactly (asserted by tests/parallel_cf_test.cc).
/// Mid-stream similarity reads are racy-but-monotone snapshots, which only
/// affects transient top-K scores and pruning timing — the same tolerance
/// the paper accepts for its distributed pipeline. Queries are valid
/// whenever the pipeline is quiescent, i.e. after Drain().
class ParallelItemCf {
 public:
  struct Options {
    /// Algorithm knobs, shared verbatim with the reference implementation.
    PracticalItemCf::Options cf;

    /// Layer-1 workers (field-grouped by user id).
    int user_shards = 4;
    /// Layer-2+3 workers (field-grouped by PairKey).
    int pair_shards = 4;
    /// Batches (not events) per worker input queue before backpressure.
    size_t queue_capacity = 256;
    /// Events per batch; larger batches amortize queue synchronization.
    size_t batch_size = 128;
    /// Stripes for the shared itemCount table / per-item top-K tables.
    int count_stripes = 64;
    int list_stripes = 64;
    /// Prefix for the executor's registry histograms
    /// ("<scope>.<stage>.queue_wait_us" / ".service_us"). Empty disables
    /// per-batch instrumentation for this instance even when the global
    /// metrics switch is on.
    std::string metrics_scope = "parallel_cf";
  };

  /// Per-stage execution counters for engine/monitor.
  struct StageStats {
    std::string stage;
    int workers = 0;
    uint64_t events = 0;        ///< tuples consumed by the stage
    uint64_t batches = 0;       ///< queue messages consumed
    uint64_t busy_micros = 0;   ///< wall time spent executing tuples
  };

  explicit ParallelItemCf(Options options);
  ~ParallelItemCf();

  ParallelItemCf(const ParallelItemCf&) = delete;
  ParallelItemCf& operator=(const ParallelItemCf&) = delete;

  /// Enqueues one action (driver thread only). Blocks when the target user
  /// shard's queue is full (backpressure).
  void ProcessAction(const UserAction& action);
  void ProcessActions(const std::vector<UserAction>& actions);

  /// Barrier: flushes every in-flight batch through both layers, advances
  /// all sliding windows to the stream's high-water timestamp, and returns
  /// with the pipeline quiescent. Queries below are only meaningful (and
  /// data-race-free) after a Drain.
  void Drain();

  /// Drains, closes all queues and joins the workers. Idempotent; the
  /// destructor calls it.
  void Shutdown();

  /// --- queries (require quiescence, i.e. after Drain()) ---

  double Similarity(ItemId a, ItemId b) const;
  double EffectiveSimilarity(ItemId a, ItemId b) const;
  const TopK<ItemId>* SimilarItems(ItemId item) const;
  Recommendations RecommendForUser(UserId user, size_t n) const;
  std::vector<ItemId> RecentItemsOf(UserId user) const;
  double UserRating(UserId user, ItemId item) const;
  bool IsPruned(ItemId a, ItemId b) const;

  /// Walks every tracked item's windowed count total / similar-items top-K
  /// list, e.g. to checkpoint mirror state into TDStore through a
  /// BatchWriter. Requires quiescence (a preceding Drain()); stripe locks
  /// are still taken, so a concurrent reader can't corrupt the walk.
  void VisitItemCounts(
      const std::function<void(ItemId, double)>& visitor) const;
  void VisitSimilarLists(
      const std::function<void(ItemId, const TopK<ItemId>&)>& visitor) const;

  /// Aggregated algorithm counters (summed over shards).
  PracticalItemCf::Stats stats() const;
  /// Per-stage executor counters ("user-history", "count+sim").
  std::vector<StageStats> stage_stats() const;

  /// Live stage liveness for the stall watchdog, safe while workers run:
  /// heartbeat sums the shards' per-message atomic counters, backlog sums
  /// queue depths. pair_stage=false addresses the user-history layer.
  uint64_t StageHeartbeat(bool pair_stage) const;
  uint64_t StageBacklog(bool pair_stage) const;

  const Options& options() const { return options_; }

 private:
  /// One co-rating delta travelling from layer 1 to layers 2+3.
  struct PairDelta {
    ItemId i = 0;
    ItemId j = 0;
    double co_delta = 0.0;
    EventTime ts = 0;
    /// Ingest stamp of the source action (event-time watermark carrier;
    /// 0 = unstamped).
    uint64_t ingest = 0;
    /// Sampled-tracing id of the source action (0 = untraced).
    uint64_t trace_id = 0;
  };
  struct UserMsg {
    std::vector<UserAction> actions;
    bool flush = false;
    /// MonoMicros at Push time (0 when instrumentation is off); the worker
    /// subtracts it from its dequeue time to get queue-wait.
    uint64_t enqueue_micros = 0;
    /// On flush tokens: the driver's high-water ingest stamp. FIFO order
    /// means everything at or below it has been handed to the worker, so
    /// processing the token advances the stage's freshness watermark.
    uint64_t ingest_watermark = 0;
  };
  struct PairMsg {
    std::vector<PairDelta> deltas;
    bool flush = false;
    EventTime watermark = 0;
    uint64_t enqueue_micros = 0;
    /// See UserMsg::ingest_watermark — carried by the phase-2 flush token
    /// so the pair stage's freshness catches up even when a drain interval
    /// produced no pair deltas (e.g. all zero-delta actions).
    uint64_t ingest_watermark = 0;
  };

  struct UserShard {
    explicit UserShard(size_t queue_capacity) : queue(queue_capacity) {}
    BoundedQueue<UserMsg> queue;
    std::thread thread;
    /// Owned exclusively by this shard's worker thread. Flat kernel: an
    /// open-addressing index of packed user ids into 1-based slots of a
    /// stable-address deque. Legacy kernel: the original node map. Exactly
    /// one is populated, per Options::cf.use_flat_kernels.
    FlatMap64<uint32_t> history_index;
    std::deque<UserHistory> history_store;
    std::unordered_map<UserId, UserHistory> histories_map;
    int64_t actions = 0;
    uint64_t events = 0;
    uint64_t batches = 0;
    uint64_t busy_micros = 0;
    /// Liveness heartbeat, bumped (relaxed) per popped message; unlike the
    /// counters above it may be read while the worker runs.
    std::atomic<uint64_t> heartbeat{0};
    /// Event-time watermark of this shard's stage (advanced per batch).
    obs::FreshnessTracker::ScopedSlot freshness;
  };

  struct PairShard {
    PairShard(size_t queue_capacity, EventTime session_length,
              int window_sessions, bool use_flat)
        : queue(queue_capacity),
          counts(session_length, window_sessions, use_flat) {}
    BoundedQueue<PairMsg> queue;
    std::thread thread;
    /// Owned exclusively by this shard's worker thread (pairCount side
    /// only; itemCounts live in the shared stripes). The flat/legacy pairs
    /// below follow Options::cf.use_flat_kernels, like UserShard's.
    WindowedCounts counts;
    FlatMap64<uint32_t> observations_flat;
    FlatSet64 pruned_flat;
    std::unordered_map<PairKey, uint32_t, PairKeyHash> observations_map;
    std::unordered_set<PairKey, PairKeyHash> pruned_set;
    int64_t pair_updates = 0;
    int64_t pair_updates_pruned = 0;
    int64_t pairs_pruned = 0;
    uint64_t events = 0;
    uint64_t batches = 0;
    uint64_t busy_micros = 0;
    std::atomic<uint64_t> heartbeat{0};
    obs::FreshnessTracker::ScopedSlot freshness;
  };

  /// Shared itemCount stripe: written by layer 1, read by layers 2+3.
  struct alignas(64) CountStripe {
    CountStripe(EventTime session_length, int window_sessions, bool use_flat)
        : counts(session_length, window_sessions, use_flat) {}
    /// Profiled (DESIGN.md §13): cross-stage lock — written by layer 1,
    /// read by layers 2+3 — so wait time here is attributed per holder
    /// stage at /profile/contention.
    mutable ProfiledMutex mu{"parallel_cf.count_stripe"};
    WindowedCounts counts;
  };

  /// Shared per-item top-K list stripe: a pair update touches the lists of
  /// both its items, which generally live on different pair shards. Flat
  /// kernel: packed-id index into 1-based slots of a stable-address deque
  /// (SimilarItems hands out raw TopK pointers, so slots must never move).
  struct alignas(64) ListStripe {
    mutable ProfiledMutex mu{"parallel_cf.list_stripe"};
    FlatMap64<uint32_t> index;
    std::deque<TopK<ItemId>> store;
    std::unordered_map<ItemId, TopK<ItemId>> lists_map;
  };

  /// "<metrics_scope or parallel_cf>.<stage>" — the registered stage name
  /// for a worker thread (profiler attribution + pthread name).
  std::string StageNameFor(const char* stage) const;

  size_t UserShardOf(UserId user) const;
  size_t PairShardOf(const PairKey& key) const;
  CountStripe& ItemStripe(ItemId item) const;
  ListStripe& ListStripeOf(ItemId item) const;

  void UserWorker(UserShard* shard);
  void PairWorker(PairShard* shard);
  void HandleAction(UserShard* shard, const UserAction& action,
                    std::vector<std::vector<PairDelta>>* out);
  /// `item_counts` is the worker's per-batch itemCount memo — cleared at
  /// every batch boundary, so a similarity never reads counts staler than
  /// the start of its own batch (within the racy-but-monotone snapshot
  /// tolerance of the class comment, and never zero for a live pair: the
  /// upstream AddItem happens-before the delta, so the first, uncached
  /// read per batch already sees a positive count).
  void HandlePairDelta(PairShard* shard, const PairDelta& delta,
                       FlatMap64<double>* item_counts);

  /// Kernel-dispatching state accessors (flat vs legacy per
  /// options_.cf.use_flat_kernels). The *Locked list accessors require the
  /// stripe's mutex to be held by the caller.
  UserHistory& HistoryFor(UserShard* shard, UserId user);
  const UserHistory* FindHistory(const UserShard& shard, UserId user) const;
  TopK<ItemId>& GetListLocked(ListStripe& stripe, ItemId item);
  TopK<ItemId>* FindListLocked(const ListStripe& stripe, ItemId item) const;
  bool IsPrunedIn(const PairShard& shard, const PairKey& key) const;

  double ItemCountOf(ItemId item) const;
  /// ItemCountOf through a per-batch memo (see PairWorker): one stripe
  /// lock per distinct item per batch instead of two per delta.
  double CachedItemCountOf(FlatMap64<double>* cache, ItemId item) const;
  /// Eq. 5/10 + shrinkage from already-fetched windowed counts.
  double EffectiveFrom(double count_a, double count_b,
                       double pair_count) const;
  double SimilarityFromCounts(ItemId a, ItemId b, double pair_count) const;
  double EffectiveFromCounts(ItemId a, ItemId b, double pair_count) const;
  double ListThresholdOf(ItemId item) const;

  void PushUserBatch(size_t shard_index);
  void BeginBarrier(int acks);
  void AwaitBarrier();
  void AckBarrier();

  Options options_;
  double hoeffding_ln_inv_delta_ = 0.0;

  /// Routing masks for power-of-two shard/stripe counts (the defaults):
  /// `hash & mask` instead of a hardware divide on every route. 0 = count
  /// is not a power of two, fall back to modulo.
  size_t user_shard_mask_ = 0;
  size_t pair_shard_mask_ = 0;
  size_t count_stripe_mask_ = 0;
  size_t list_stripe_mask_ = 0;

  /// Registry histograms, resolved once in the constructor; all null when
  /// metrics are globally disabled or metrics_scope is empty, which reduces
  /// the per-batch overhead to a null check.
  LatencyHistogram* user_queue_wait_ = nullptr;
  LatencyHistogram* user_service_ = nullptr;
  LatencyHistogram* pair_queue_wait_ = nullptr;
  LatencyHistogram* pair_service_ = nullptr;

  std::vector<std::unique_ptr<UserShard>> user_shards_;
  std::vector<std::unique_ptr<PairShard>> pair_shards_;
  std::vector<std::unique_ptr<CountStripe>> item_stripes_;
  std::vector<std::unique_ptr<ListStripe>> list_stripes_;

  /// Driver-side per-user-shard input batches (driver thread only).
  std::vector<std::vector<UserAction>> pending_;
  /// High-water event time of the stream (driver thread only).
  EventTime max_ts_ = 0;
  /// High-water ingest stamp of the stream (driver thread only); carried on
  /// drain flush tokens so both stages' freshness watermarks settle.
  uint64_t max_ingest_ = 0;

  std::mutex barrier_mu_;
  std::condition_variable barrier_cv_;
  int barrier_pending_ = 0;

  bool shutdown_ = false;
};

}  // namespace tencentrec::core

#endif  // TENCENTREC_CORE_ITEMCF_PARALLEL_CF_H_
