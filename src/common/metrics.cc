#include "common/metrics.h"

#include <algorithm>
#include <bit>

#include "common/logging.h"

namespace tencentrec {

namespace {
std::atomic<bool> g_metrics_enabled{true};
}  // namespace

bool MetricsEnabled() {
  return g_metrics_enabled.load(std::memory_order_relaxed);
}

void SetMetricsEnabled(bool enabled) {
  g_metrics_enabled.store(enabled, std::memory_order_relaxed);
}

namespace metrics_internal {

size_t ThreadStripe() {
  static std::atomic<size_t> next{0};
  thread_local size_t slot =
      next.fetch_add(1, std::memory_order_relaxed) % kStripes;
  return slot;
}

}  // namespace metrics_internal

// --- LatencyHistogram --------------------------------------------------------

int LatencyHistogram::BucketOf(uint64_t micros) {
  if (micros < kSubBuckets) return static_cast<int>(micros);
  // Octave = position of the leading bit; sub-bucket = the kSubBits bits
  // right below it (the value's 2-bit significand).
  const int octave = std::bit_width(micros) - 1;  // >= kSubBits
  if (octave >= kOctaves) return kNumBuckets - 1;
  const int sub =
      static_cast<int>((micros >> (octave - kSubBits)) & (kSubBuckets - 1));
  return (octave - kSubBits + 1) * kSubBuckets + sub;
}

uint64_t LatencyHistogram::BucketLowerBound(int b) {
  if (b < kSubBuckets) return static_cast<uint64_t>(b);
  const int octave = kSubBits + (b - kSubBuckets) / kSubBuckets;
  const int sub = b % kSubBuckets;
  return (uint64_t{1} << octave) +
         static_cast<uint64_t>(sub) * (uint64_t{1} << (octave - kSubBits));
}

uint64_t LatencyHistogram::BucketUpperBound(int b) {
  if (b < kSubBuckets) return static_cast<uint64_t>(b);
  const int octave = kSubBits + (b - kSubBuckets) / kSubBuckets;
  return BucketLowerBound(b) + (uint64_t{1} << (octave - kSubBits)) - 1;
}

double LatencyHistogram::Snapshot::Percentile(double p) const {
  if (count == 0) return 0.0;
  p = std::clamp(p, 0.0, 1.0);
  const double target = p * static_cast<double>(count);
  uint64_t cumulative = 0;
  for (int b = 0; b < kNumBuckets; ++b) {
    const uint64_t in_bucket = buckets[static_cast<size_t>(b)];
    if (in_bucket == 0) continue;
    if (static_cast<double>(cumulative + in_bucket) >= target) {
      const double lo = static_cast<double>(BucketLowerBound(b));
      const double hi = static_cast<double>(BucketUpperBound(b)) + 1.0;
      const double frac =
          (target - static_cast<double>(cumulative)) /
          static_cast<double>(in_bucket);
      const double v = lo + (hi - lo) * frac;
      // The exact extremes beat bucket resolution at the tails.
      return std::clamp(v, static_cast<double>(min), static_cast<double>(max));
    }
    cumulative += in_bucket;
  }
  return static_cast<double>(max);
}

LatencyHistogram::Snapshot LatencyHistogram::Snap() const {
  Snapshot snap;
  uint64_t merged_min = UINT64_MAX;
  for (const Stripe& s : stripes_) {
    for (int b = 0; b < kNumBuckets; ++b) {
      const uint64_t n =
          s.buckets[static_cast<size_t>(b)].load(std::memory_order_relaxed);
      snap.buckets[static_cast<size_t>(b)] += n;
      snap.count += n;
    }
    snap.sum += s.sum.load(std::memory_order_relaxed);
    merged_min = std::min(merged_min, s.min.load(std::memory_order_relaxed));
    snap.max = std::max(snap.max, s.max.load(std::memory_order_relaxed));
  }
  snap.min = snap.count > 0 ? merged_min : 0;
  for (int b = 0; b < kNumBuckets; ++b) {
    snap.exemplars[static_cast<size_t>(b)] =
        exemplars_[static_cast<size_t>(b)].load(std::memory_order_relaxed);
  }
  return snap;
}

void LatencyHistogram::Reset() {
  for (Stripe& s : stripes_) {
    for (auto& b : s.buckets) b.store(0, std::memory_order_relaxed);
    s.sum.store(0, std::memory_order_relaxed);
    s.min.store(UINT64_MAX, std::memory_order_relaxed);
    s.max.store(0, std::memory_order_relaxed);
  }
  for (auto& e : exemplars_) e.store(0, std::memory_order_relaxed);
}

// --- MetricRegistry ----------------------------------------------------------

MetricRegistry& MetricRegistry::Default() {
  static MetricRegistry* registry = new MetricRegistry();
  return *registry;
}

Counter* MetricRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  TR_CHECK(gauges_.count(name) == 0 && histograms_.count(name) == 0);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  TR_CHECK(counters_.count(name) == 0 && histograms_.count(name) == 0);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

LatencyHistogram* MetricRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  TR_CHECK(counters_.count(name) == 0 && gauges_.count(name) == 0);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<LatencyHistogram>();
  return slot.get();
}

std::vector<std::pair<std::string, uint64_t>> MetricRegistry::Counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, uint64_t>> out;
  out.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    out.emplace_back(name, counter->Value());
  }
  return out;
}

std::vector<std::pair<std::string, int64_t>> MetricRegistry::Gauges() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, int64_t>> out;
  out.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    out.emplace_back(name, gauge->Value());
  }
  return out;
}

std::vector<std::pair<std::string, LatencyHistogram::Snapshot>>
MetricRegistry::Histograms() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, LatencyHistogram::Snapshot>> out;
  out.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    out.emplace_back(name, histogram->Snap());
  }
  return out;
}

void MetricRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
}

}  // namespace tencentrec
