#include "common/stage.h"

#include <pthread.h>
#include <unistd.h>

#include <sys/syscall.h>

#include <atomic>
#include <cstring>
#include <mutex>

namespace tencentrec {
namespace {

// Interned stage names. Slot 0 is the reserved "unregistered" stage.
// Names are write-once; readers that only need the id go through
// g_stage_count without the lock.
struct StageTable {
  std::mutex mu;
  std::string names[kMaxStages];
  std::atomic<uint16_t> count{1};  // slot 0 pre-claimed below
};

StageTable& Stages() {
  static StageTable* t = [] {
    auto* table = new StageTable();
    table->names[0] = "unregistered";
    return table;
  }();
  return *t;
}

// Fixed thread slot table. A slot is live while `live` is true; the
// registry lock serializes claim/release against VisitStageThreads and
// the lifecycle hooks, so the profiler never races a thread's exit when
// tearing down its timer.
struct ThreadSlot {
  bool live = false;
  StageThreadInfo info;
};

struct ThreadTable {
  std::mutex mu;
  ThreadSlot slots[kMaxStageThreads];
  std::function<void(const StageThreadInfo&)> on_register;
  std::function<void(const StageThreadInfo&)> on_unregister;
};

ThreadTable& Threads() {
  static ThreadTable* t = new ThreadTable();
  return *t;
}

// The calling thread's stage id. Plain (non-atomic) thread_local: only
// this thread writes it, and a SIGPROF delivered to this thread is
// serialized with its own stores — reading it from the handler is safe.
thread_local uint16_t tls_stage = 0;
thread_local int tls_slot = -1;

pid_t GetTid() { return static_cast<pid_t>(::syscall(SYS_gettid)); }

// Releases the calling thread's slot when the thread exits, firing the
// unregister hook first so the profiler can delete its timer while the
// thread (and its CPU clock) still exists.
struct SlotReleaser {
  ~SlotReleaser() {
    if (tls_slot < 0) return;
    ThreadTable& tt = Threads();
    std::lock_guard<std::mutex> lock(tt.mu);
    ThreadSlot& slot = tt.slots[tls_slot];
    if (tt.on_unregister) tt.on_unregister(slot.info);
    slot.live = false;
    tls_slot = -1;
    tls_stage = 0;
  }
};
thread_local SlotReleaser tls_releaser;

}  // namespace

uint16_t InternStage(std::string_view name) {
  StageTable& st = Stages();
  std::lock_guard<std::mutex> lock(st.mu);
  uint16_t n = st.count.load(std::memory_order_relaxed);
  for (uint16_t i = 0; i < n; ++i) {
    if (st.names[i] == name) return i;
  }
  if (n >= kMaxStages) return 0;
  st.names[n] = std::string(name);
  st.count.store(static_cast<uint16_t>(n + 1), std::memory_order_release);
  return n;
}

std::string_view StageName(uint16_t stage_id) {
  StageTable& st = Stages();
  if (stage_id >= st.count.load(std::memory_order_acquire)) {
    return "unregistered";
  }
  // Names are write-once under the lock before count is bumped with
  // release order, so this read is safe without the lock.
  return st.names[stage_id];
}

uint16_t RegisterStageThread(std::string_view stage) {
  const uint16_t id = InternStage(stage);

  // Kernel thread names cap at 15 chars + NUL; truncate rather than fail.
  char os_name[16];
  const size_t n = stage.size() < 15 ? stage.size() : 15;
  std::memcpy(os_name, stage.data(), n);
  os_name[n] = '\0';
  pthread_setname_np(pthread_self(), os_name);

  ThreadTable& tt = Threads();
  std::lock_guard<std::mutex> lock(tt.mu);

  if (tls_slot >= 0) {
    // Re-staging an already registered thread: update in place. Fire the
    // hooks as unregister+register so the profiler re-keys its timer
    // bookkeeping to the new stage.
    ThreadSlot& slot = tt.slots[tls_slot];
    if (tt.on_unregister) tt.on_unregister(slot.info);
    slot.info.stage = id;
    tls_stage = id;
    if (tt.on_register) tt.on_register(slot.info);
    return id;
  }

  int free_slot = -1;
  for (int i = 0; i < kMaxStageThreads; ++i) {
    if (!tt.slots[i].live) {
      free_slot = i;
      break;
    }
  }
  if (free_slot < 0) {
    // Table full: the thread still gets a stage id for CurrentStage()
    // (and its samples attribute correctly); it just can't be visited,
    // so the profiler won't attach a timer to it.
    tls_stage = id;
    return id;
  }

  ThreadSlot& slot = tt.slots[free_slot];
  slot.live = true;
  slot.info.slot = static_cast<uint16_t>(free_slot);
  slot.info.stage = id;
  slot.info.tid = GetTid();
  slot.info.handle = pthread_self();
  tls_slot = free_slot;
  tls_stage = id;
  // Touch the releaser so its destructor is registered for this thread.
  (void)tls_releaser;
  if (tt.on_register) tt.on_register(slot.info);
  return id;
}

uint16_t CurrentStage() { return tls_stage; }

int CurrentStageSlot() { return tls_slot; }

void VisitStageThreads(const std::function<void(const StageThreadInfo&)>& fn) {
  ThreadTable& tt = Threads();
  std::lock_guard<std::mutex> lock(tt.mu);
  for (const ThreadSlot& slot : tt.slots) {
    if (slot.live) fn(slot.info);
  }
}

void SetStageThreadHooks(std::function<void(const StageThreadInfo&)> on_register,
                         std::function<void(const StageThreadInfo&)> on_unregister) {
  ThreadTable& tt = Threads();
  std::lock_guard<std::mutex> lock(tt.mu);
  tt.on_register = std::move(on_register);
  tt.on_unregister = std::move(on_unregister);
}

std::vector<std::string> StageNames() {
  StageTable& st = Stages();
  std::lock_guard<std::mutex> lock(st.mu);
  const uint16_t n = st.count.load(std::memory_order_relaxed);
  return std::vector<std::string>(st.names, st.names + n);
}

}  // namespace tencentrec
