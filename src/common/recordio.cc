#include "common/recordio.h"

#include <unistd.h>

#include <cstring>

#include "common/crc32.h"

namespace tencentrec {

void PutFixed32LE(std::string* buf, uint32_t v) {
  char b[4];
  b[0] = static_cast<char>(v & 0xff);
  b[1] = static_cast<char>((v >> 8) & 0xff);
  b[2] = static_cast<char>((v >> 16) & 0xff);
  b[3] = static_cast<char>((v >> 24) & 0xff);
  buf->append(b, 4);
}

void PutFixed64LE(std::string* buf, uint64_t v) {
  PutFixed32LE(buf, static_cast<uint32_t>(v & 0xffffffffu));
  PutFixed32LE(buf, static_cast<uint32_t>(v >> 32));
}

uint32_t GetFixed32LE(const char* p) {
  const auto* u = reinterpret_cast<const unsigned char*>(p);
  return static_cast<uint32_t>(u[0]) | (static_cast<uint32_t>(u[1]) << 8) |
         (static_cast<uint32_t>(u[2]) << 16) |
         (static_cast<uint32_t>(u[3]) << 24);
}

uint64_t GetFixed64LE(const char* p) {
  return static_cast<uint64_t>(GetFixed32LE(p)) |
         (static_cast<uint64_t>(GetFixed32LE(p + 4)) << 32);
}

Status SyncFile(std::FILE* f, SyncPolicy policy, const std::string& path) {
  if (policy == SyncPolicy::kNone) return Status::OK();
  if (std::fflush(f) != 0) return Status::IOError("fflush failed on " + path);
  if (policy == SyncPolicy::kFsyncEveryAppend ||
      policy == SyncPolicy::kGroupCommit) {
    if (::fsync(::fileno(f)) != 0) {
      return Status::IOError("fsync failed on " + path);
    }
  }
  return Status::OK();
}

Status WriteLogHeader(std::FILE* f, uint32_t magic, uint32_t version,
                      const std::string& path) {
  std::string header;
  PutFixed32LE(&header, magic);
  PutFixed32LE(&header, version);
  if (std::fwrite(header.data(), 1, header.size(), f) != header.size()) {
    return Status::IOError("header write failed on " + path);
  }
  return Status::OK();
}

Status ReadLogHeader(std::FILE* f, uint32_t magic, uint32_t version,
                     const std::string& path) {
  char buf[kLogHeaderSize];
  if (std::fread(buf, 1, sizeof(buf), f) != sizeof(buf)) {
    return Status::NotFound("short header in " + path);
  }
  const uint32_t got_magic = GetFixed32LE(buf);
  const uint32_t got_version = GetFixed32LE(buf + 4);
  if (got_magic != magic) {
    return Status::Corruption("bad magic in " + path);
  }
  if (got_version != version) {
    return Status::Corruption("unsupported version " +
                              std::to_string(got_version) + " in " + path);
  }
  return Status::OK();
}

Result<size_t> AppendFrame(std::FILE* f, std::string_view payload,
                           const std::string& path) {
  // Stack header + direct payload write: no heap frame, no payload copy.
  // stdio buffers both writes, so this has the same (lack of) atomicity as
  // a single fwrite — short-write rollback stays the caller's job.
  char header[kFrameOverhead];
  const uint32_t crc = Crc32(payload);
  const uint32_t len = static_cast<uint32_t>(payload.size());
  for (int i = 0; i < 4; ++i) {
    header[i] = static_cast<char>((crc >> (8 * i)) & 0xff);
    header[4 + i] = static_cast<char>((len >> (8 * i)) & 0xff);
  }
  if (std::fwrite(header, 1, sizeof(header), f) != sizeof(header) ||
      (!payload.empty() &&
       std::fwrite(payload.data(), 1, payload.size(), f) != payload.size())) {
    return Status::IOError("append failed on " + path);
  }
  return kFrameOverhead + payload.size();
}

Result<std::string> ReadFrame(std::FILE* f, size_t max_payload,
                              const std::string& path) {
  char header[kFrameOverhead];
  const size_t n = std::fread(header, 1, sizeof(header), f);
  if (n == 0 && std::feof(f)) return Status::NotFound("end of log");
  if (n != sizeof(header)) {
    return Status::Corruption("torn frame header in " + path);
  }
  const uint32_t crc = GetFixed32LE(header);
  const uint32_t len = GetFixed32LE(header + 4);
  if (len > max_payload) {
    return Status::Corruption("insane frame length in " + path);
  }
  std::string payload(len, '\0');
  if (std::fread(payload.data(), 1, payload.size(), f) != payload.size()) {
    return Status::Corruption("torn frame body in " + path);
  }
  if (Crc32(payload) != crc) {
    return Status::Corruption("frame crc mismatch in " + path);
  }
  return payload;
}

}  // namespace tencentrec
