#ifndef TENCENTREC_COMMON_TOPK_H_
#define TENCENTREC_COMMON_TOPK_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace tencentrec {

/// A bounded best-K table of (id, score) entries with upsert semantics.
/// Backs the per-item similar-items lists: the CF pruner needs O(1) access
/// to the current admission threshold (the K-th best score, Algorithm 1's
/// `t`), and updates must replace an existing entry's score rather than
/// duplicate it.
///
/// Layout: struct-of-arrays (one id array, one score array), kept in rank
/// order — (score descending, id ascending) — at all times. The id
/// tie-break makes ordering, eviction, and serialized lists fully
/// deterministic under equal scores, and rank-order-always (rather than a
/// lazily sorted cache) keeps every read path const: the sharded executor
/// hands out `const TopK*` that query threads read outside the stripe
/// locks.
///
/// Kernel shape, sized for K in the tens (the paper's top-k lists):
///  - membership is one branch-free scan over the contiguous id array
///    (vectorizable compare+select reduction; ids are unique so at most
///    one lane matches);
///  - Update is that scan plus a single-pass sift to the entry's new rank
///    (replacing the old sort-the-whole-table-per-call);
///  - Threshold is O(1): the last slot holds the rank-K entry.
template <typename Id>
class TopK {
 public:
  struct Entry {
    Id id;
    double score;

    bool operator==(const Entry&) const = default;
  };

  explicit TopK(size_t k) : k_(k) {
    ids_.reserve(k_);
    scores_.reserve(k_);
  }

  /// Inserts or updates `id` with `score`. Returns true if the entry is in
  /// the table after the call. When the table is full, a new id is admitted
  /// only by strictly beating the current worst score (ties never evict).
  bool Update(const Id& id, double score) {
    const size_t n = ids_.size();
    const size_t pos = Find(id);
    if (pos != n) {
      scores_[pos] = score;
      Sift(pos);
      return true;
    }
    if (n < k_) {
      ids_.push_back(id);
      scores_.push_back(score);
      Sift(n);
      return true;
    }
    if (!(score > scores_[n - 1])) return false;
    ids_[n - 1] = id;
    scores_[n - 1] = score;
    Sift(n - 1);
    return true;
  }

  /// Removes `id` if present; returns true when an entry was removed.
  bool Erase(const Id& id) {
    const size_t n = ids_.size();
    const size_t pos = Find(id);
    if (pos == n) return false;
    ids_.erase(ids_.begin() + static_cast<ptrdiff_t>(pos));
    scores_.erase(scores_.begin() + static_cast<ptrdiff_t>(pos));
    return true;
  }

  bool Contains(const Id& id) const { return Find(id) != ids_.size(); }

  /// The minimum score among the current K best, i.e. the score an item pair
  /// must beat to enter this similar-items list. Zero while the table is not
  /// yet full (everything is admissible).
  ///
  /// Conservative reopen: when an Erase (e.g. a prune decision dropping a
  /// stale entry) shrinks a previously full table below K, the threshold
  /// deliberately collapses back to 0 until the table refills. Any entry
  /// with a positive score is admissible into an under-full table, so a
  /// nonzero threshold here would wrongly prune admissible pairs; the cost
  /// is only that pruning for this item pauses until K entries are known
  /// again. Regression-tested in tests/itemcf_test.cc.
  double Threshold() const {
    if (ids_.size() < k_) return 0.0;
    return scores_.back();
  }

  /// Rank-order accessors (score descending, id ascending on ties) — the
  /// allocation-free read path for the predict/bench hot loops.
  const Id& id_at(size_t rank) const { return ids_[rank]; }
  double score_at(size_t rank) const { return scores_[rank]; }

  /// Entries in rank order, materialized. Cold paths and tests; hot loops
  /// use size()/id_at()/score_at().
  std::vector<Entry> entries() const {
    std::vector<Entry> out;
    out.reserve(ids_.size());
    for (size_t i = 0; i < ids_.size(); ++i) {
      out.push_back({ids_[i], scores_[i]});
    }
    return out;
  }

  size_t size() const { return ids_.size(); }
  size_t capacity() const { return k_; }
  bool empty() const { return ids_.empty(); }

 private:
  /// Strict rank order: higher score first, lower id first on equal score.
  static bool RankBefore(double sa, const Id& ia, double sb, const Id& ib) {
    if (sa != sb) return sa > sb;
    return ia < ib;
  }

  /// Rank of `id`, or size() when absent. Branch-free select reduction over
  /// the contiguous id array so the compiler can vectorize it.
  size_t Find(const Id& id) const {
    const Id* ids = ids_.data();
    const size_t n = ids_.size();
    size_t hit = n;
    for (size_t r = 0; r < n; ++r) {
      if (ids[r] == id) hit = r;
    }
    return hit;
  }

  /// Restores rank order after the entry at `pos` changed, with one pass in
  /// whichever direction it needs to move (everything else is untouched).
  void Sift(size_t pos) {
    const Id id = ids_[pos];
    const double score = scores_[pos];
    size_t i = pos;
    while (i > 0 && RankBefore(score, id, scores_[i - 1], ids_[i - 1])) {
      ids_[i] = ids_[i - 1];
      scores_[i] = scores_[i - 1];
      --i;
    }
    if (i == pos) {
      const size_t n = ids_.size();
      while (i + 1 < n && RankBefore(scores_[i + 1], ids_[i + 1], score, id)) {
        ids_[i] = ids_[i + 1];
        scores_[i] = scores_[i + 1];
        ++i;
      }
    }
    ids_[i] = id;
    scores_[i] = score;
  }

  size_t k_;
  std::vector<Id> ids_;
  std::vector<double> scores_;
};

/// The pre-rewrite TopK — array-of-structs entries re-sorted on every
/// update — kept as the parity oracle: tests/flat_kernel_test.cc drives
/// both implementations with identical randomized traces and asserts
/// bit-identical entries/thresholds/return values.
///
/// One deliberate fix relative to the historical code is folded in here
/// too: the sort comparator tie-breaks equal scores by ascending id. The
/// original strict `score >` comparator left equal-score order unspecified
/// (std::sort is not stable), so eviction picked an arbitrary victim and
/// serialized lists differed across runs — the bug this PR fixes. With the
/// total order, sort-per-update and the sift kernel above are equivalent
/// by construction.
template <typename Id>
class LegacyTopK {
 public:
  using Entry = typename TopK<Id>::Entry;

  explicit LegacyTopK(size_t k) : k_(k) {}

  bool Update(const Id& id, double score) {
    for (auto& e : entries_) {
      if (e.id == id) {
        e.score = score;
        Reorder();
        return true;
      }
    }
    if (entries_.size() < k_) {
      entries_.push_back({id, score});
      Reorder();
      return true;
    }
    if (score > entries_.back().score) {
      entries_.back() = {id, score};
      Reorder();
      return true;
    }
    return false;
  }

  bool Erase(const Id& id) {
    for (size_t i = 0; i < entries_.size(); ++i) {
      if (entries_[i].id == id) {
        entries_.erase(entries_.begin() + static_cast<ptrdiff_t>(i));
        return true;
      }
    }
    return false;
  }

  bool Contains(const Id& id) const {
    for (const auto& e : entries_) {
      if (e.id == id) return true;
    }
    return false;
  }

  double Threshold() const {
    if (entries_.size() < k_) return 0.0;
    return entries_.back().score;
  }

  const std::vector<Entry>& entries() const { return entries_; }

  size_t size() const { return entries_.size(); }
  size_t capacity() const { return k_; }
  bool empty() const { return entries_.empty(); }

 private:
  void Reorder() {
    std::sort(entries_.begin(), entries_.end(),
              [](const Entry& a, const Entry& b) {
                if (a.score != b.score) return a.score > b.score;
                return a.id < b.id;
              });
  }

  size_t k_;
  std::vector<Entry> entries_;
};

}  // namespace tencentrec

#endif  // TENCENTREC_COMMON_TOPK_H_
