#ifndef TENCENTREC_COMMON_TOPK_H_
#define TENCENTREC_COMMON_TOPK_H_

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

namespace tencentrec {

/// A bounded best-K table of (id, score) entries with upsert semantics.
/// Backs the per-item similar-items lists: the CF pruner needs O(1) access
/// to the current admission threshold (the K-th best score, Algorithm 1's
/// `t`), and updates must replace an existing entry's score rather than
/// duplicate it.
///
/// Sized for K in the tens (paper uses top-k similar items); operations are
/// linear in K which beats heap bookkeeping at that scale.
template <typename Id>
class TopK {
 public:
  struct Entry {
    Id id;
    double score;
  };

  explicit TopK(size_t k) : k_(k) {}

  /// Inserts or updates `id` with `score`. Returns true if the entry is in
  /// the table after the call.
  bool Update(const Id& id, double score) {
    for (auto& e : entries_) {
      if (e.id == id) {
        e.score = score;
        Reorder();
        return true;
      }
    }
    if (entries_.size() < k_) {
      entries_.push_back({id, score});
      Reorder();
      return true;
    }
    if (score > entries_.back().score) {
      entries_.back() = {id, score};
      Reorder();
      return true;
    }
    return false;
  }

  /// Removes `id` if present; returns true when an entry was removed.
  bool Erase(const Id& id) {
    for (size_t i = 0; i < entries_.size(); ++i) {
      if (entries_[i].id == id) {
        entries_.erase(entries_.begin() + i);
        return true;
      }
    }
    return false;
  }

  bool Contains(const Id& id) const {
    for (const auto& e : entries_) {
      if (e.id == id) return true;
    }
    return false;
  }

  /// The minimum score among the current K best, i.e. the score an item pair
  /// must beat to enter this similar-items list. Zero while the table is not
  /// yet full (everything is admissible).
  ///
  /// Conservative reopen: when an Erase (e.g. a prune decision dropping a
  /// stale entry) shrinks a previously full table below K, the threshold
  /// deliberately collapses back to 0 until the table refills. Any entry
  /// with a positive score is admissible into an under-full table, so a
  /// nonzero threshold here would wrongly prune admissible pairs; the cost
  /// is only that pruning for this item pauses until K entries are known
  /// again. Regression-tested in tests/itemcf_test.cc.
  double Threshold() const {
    if (entries_.size() < k_) return 0.0;
    return entries_.back().score;
  }

  /// Entries in descending score order.
  const std::vector<Entry>& entries() const { return entries_; }

  size_t size() const { return entries_.size(); }
  size_t capacity() const { return k_; }
  bool empty() const { return entries_.empty(); }

 private:
  void Reorder() {
    std::sort(entries_.begin(), entries_.end(),
              [](const Entry& a, const Entry& b) { return a.score > b.score; });
  }

  size_t k_;
  std::vector<Entry> entries_;
};

}  // namespace tencentrec

#endif  // TENCENTREC_COMMON_TOPK_H_
