#ifndef TENCENTREC_COMMON_RANDOM_H_
#define TENCENTREC_COMMON_RANDOM_H_

#include <cassert>
#include <cmath>
#include <cstdint>
#include <vector>

#include "common/hash.h"

namespace tencentrec {

/// xoshiro-style deterministic PRNG. Every randomized component in the
/// repository takes an explicit seed so all tests and benchmarks replay
/// bit-identically.
class Rng {
 public:
  explicit Rng(uint64_t seed) {
    s0_ = HashInt(seed + 1);
    s1_ = HashInt(seed + 0x9e3779b97f4a7c15ULL);
    if (s0_ == 0 && s1_ == 0) s1_ = 1;
  }

  uint64_t Next() {
    uint64_t x = s0_;
    const uint64_t y = s1_;
    s0_ = y;
    x ^= x << 23;
    s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
    return s1_ + y;
  }

  /// Uniform in [0, n). n must be > 0.
  uint64_t Uniform(uint64_t n) {
    assert(n > 0);
    return Next() % n;
  }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    assert(hi >= lo);
    return lo + static_cast<int64_t>(Uniform(static_cast<uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  bool Bernoulli(double p) { return NextDouble() < p; }

  /// Exponentially distributed with the given mean (> 0).
  double Exponential(double mean) {
    double u = NextDouble();
    if (u <= 0.0) u = 1e-12;
    return -mean * std::log(u);
  }

 private:
  uint64_t s0_;
  uint64_t s1_;
};

/// Zipf(s) sampler over {0, ..., n-1} using a precomputed CDF with binary
/// search. Item popularity in every workload generator is Zipfian, which is
/// what creates the paper's "hot item problem".
class ZipfSampler {
 public:
  ZipfSampler(size_t n, double s) : cdf_(n) {
    assert(n > 0);
    double sum = 0.0;
    for (size_t i = 0; i < n; ++i) {
      sum += 1.0 / std::pow(static_cast<double>(i + 1), s);
      cdf_[i] = sum;
    }
    for (size_t i = 0; i < n; ++i) cdf_[i] /= sum;
  }

  size_t Sample(Rng& rng) const {
    double u = rng.NextDouble();
    size_t lo = 0, hi = cdf_.size() - 1;
    while (lo < hi) {
      size_t mid = (lo + hi) / 2;
      if (cdf_[mid] < u) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

  size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace tencentrec

#endif  // TENCENTREC_COMMON_RANDOM_H_
