#ifndef TENCENTREC_COMMON_ARENA_H_
#define TENCENTREC_COMMON_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <type_traits>
#include <vector>

#include "common/logging.h"

namespace tencentrec {

/// Bump allocator for per-batch/per-query scratch: allocation is a pointer
/// increment, deallocation is Reset() (rewind everything at a batch
/// boundary). Blocks are retained across Reset, so a warmed-up arena makes
/// the loops it backs allocation-free in steady state — the contract the
/// CF hot paths rely on (DESIGN.md §15).
///
/// Not thread-safe; each worker/query thread owns its arena.
class Arena {
 public:
  explicit Arena(size_t min_block_bytes = 64 * 1024)
      : min_block_bytes_(min_block_bytes < 1024 ? 1024 : min_block_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// `bytes` of storage aligned to `align` (a power of two), valid until
  /// the next Reset().
  void* Allocate(size_t bytes, size_t align = alignof(std::max_align_t)) {
    TR_CHECK(align != 0 && (align & (align - 1)) == 0);
    if (bytes == 0) bytes = 1;
    while (block_ < blocks_.size()) {
      Block& b = blocks_[block_];
      const size_t aligned = (offset_ + align - 1) & ~(align - 1);
      if (aligned + bytes <= b.size) {
        offset_ = aligned + bytes;
        return b.data.get() + aligned;
      }
      ++block_;
      offset_ = 0;
    }
    // No block fits: append one sized for the request (oversized requests
    // get a dedicated block; Reset keeps it for reuse).
    Block b;
    b.size = bytes > min_block_bytes_ ? bytes : min_block_bytes_;
    b.data = std::make_unique<unsigned char[]>(b.size);
    blocks_.push_back(std::move(b));
    block_ = blocks_.size() - 1;
    offset_ = bytes;
    return blocks_.back().data.get();
  }

  /// Rewinds to empty, keeping every block for reuse.
  void Reset() {
    block_ = 0;
    offset_ = 0;
  }

  /// Total bytes of backing storage currently held.
  size_t BytesReserved() const {
    size_t total = 0;
    for (const Block& b : blocks_) total += b.size;
    return total;
  }

 private:
  struct Block {
    std::unique_ptr<unsigned char[]> data;
    size_t size = 0;
  };

  const size_t min_block_bytes_;
  std::vector<Block> blocks_;
  size_t block_ = 0;   ///< block currently being bumped
  size_t offset_ = 0;  ///< fill offset within that block
};

/// Growable array of trivially-copyable elements backed by an Arena: the
/// per-batch scratch vector of the hot loops. Growth allocates a doubled
/// region from the arena and memcpys (the abandoned region is reclaimed at
/// the owner's next Reset). No destructor bookkeeping — elements must be
/// trivially destructible.
template <typename T>
class ArenaVector {
  static_assert(std::is_trivially_copyable_v<T>);
  static_assert(std::is_trivially_destructible_v<T>);

 public:
  explicit ArenaVector(Arena* arena, size_t initial_capacity = 8)
      : arena_(arena), capacity_(initial_capacity < 4 ? 4 : initial_capacity) {
    data_ = static_cast<T*>(
        arena_->Allocate(capacity_ * sizeof(T), alignof(T)));
  }

  void push_back(const T& v) {
    if (size_ == capacity_) Grow();
    data_[size_++] = v;
  }

  T* data() { return data_; }
  const T* data() const { return data_; }
  T* begin() { return data_; }
  T* end() { return data_ + size_; }
  const T* begin() const { return data_; }
  const T* end() const { return data_ + size_; }
  T& operator[](size_t i) { return data_[i]; }
  const T& operator[](size_t i) const { return data_[i]; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  void clear() { size_ = 0; }

 private:
  void Grow() {
    const size_t new_capacity = capacity_ * 2;
    T* grown = static_cast<T*>(
        arena_->Allocate(new_capacity * sizeof(T), alignof(T)));
    std::memcpy(grown, data_, size_ * sizeof(T));
    data_ = grown;
    capacity_ = new_capacity;
  }

  Arena* arena_;
  T* data_ = nullptr;
  size_t size_ = 0;
  size_t capacity_;
};

}  // namespace tencentrec

#endif  // TENCENTREC_COMMON_ARENA_H_
