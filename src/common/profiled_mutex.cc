#include "common/profiled_mutex.h"

#include <cstdarg>
#include <cstdio>
#include <memory>
#include <vector>

namespace tencentrec {
namespace {

std::atomic<bool> g_contention_enabled{true};

struct SiteDirectory {
  std::mutex mu;
  std::vector<std::unique_ptr<ContentionSite>> sites;  // stable pointers
};

SiteDirectory& Sites() {
  static SiteDirectory* d = new SiteDirectory();
  return *d;
}

void Appendf(std::string* out, const char* fmt, ...) {
  char buf[256];
  va_list args;
  va_start(args, fmt);
  const int n = vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  if (n > 0) out->append(buf, static_cast<size_t>(n) < sizeof(buf) ? n : sizeof(buf) - 1);
}

}  // namespace

bool ContentionProfilingEnabled() {
  return g_contention_enabled.load(std::memory_order_relaxed);
}

void SetContentionProfilingEnabled(bool enabled) {
  g_contention_enabled.store(enabled, std::memory_order_relaxed);
}

ContentionSite::ContentionSite(std::string name)
    : name_(std::move(name)),
      wait_hist_(MetricRegistry::Default().GetHistogram("contention." + name_ +
                                                        ".wait_us")) {}

void ContentionSite::RecordWait(uint64_t wait_us, uint16_t holder_stage) {
  acquisitions_.fetch_add(1, std::memory_order_relaxed);
  contended_.fetch_add(1, std::memory_order_relaxed);
  wait_us_total_.fetch_add(wait_us, std::memory_order_relaxed);
  uint64_t cur = wait_us_max_.load(std::memory_order_relaxed);
  while (wait_us > cur && !wait_us_max_.compare_exchange_weak(
                              cur, wait_us, std::memory_order_relaxed)) {
  }
  if (holder_stage < kMaxStages) {
    wait_by_holder_[holder_stage].fetch_add(wait_us,
                                            std::memory_order_relaxed);
  }
  wait_hist_->Record(wait_us);
}

ContentionSite* RegisterContentionSite(std::string_view name) {
  SiteDirectory& dir = Sites();
  std::lock_guard<std::mutex> lock(dir.mu);
  for (const auto& site : dir.sites) {
    if (site->name() == name) return site.get();
  }
  dir.sites.push_back(std::make_unique<ContentionSite>(std::string(name)));
  return dir.sites.back().get();
}

std::string ContentionReportJson() {
  // Snapshot the site pointer list under the directory lock, then read the
  // (atomic) stats lock-free; sites are never destroyed.
  std::vector<ContentionSite*> sites;
  {
    SiteDirectory& dir = Sites();
    std::lock_guard<std::mutex> lock(dir.mu);
    sites.reserve(dir.sites.size());
    for (const auto& s : dir.sites) sites.push_back(s.get());
  }

  std::string out = "[";
  bool first_site = true;
  for (ContentionSite* s : sites) {
    if (!first_site) out += ",";
    first_site = false;
    const auto snap = s->wait_hist()->Snap();
    Appendf(&out,
            "{\"site\":\"%s\",\"acquisitions\":%llu,\"contended\":%llu,"
            "\"wait_us_total\":%llu,\"wait_us_max\":%llu,"
            "\"wait_us_p50\":%.1f,\"wait_us_p99\":%.1f,\"by_holder_stage\":{",
            s->name().c_str(),
            static_cast<unsigned long long>(s->acquisitions()),
            static_cast<unsigned long long>(s->contended()),
            static_cast<unsigned long long>(s->wait_us_total()),
            static_cast<unsigned long long>(s->wait_us_max()),
            snap.Percentile(0.50), snap.Percentile(0.99));
    bool first_stage = true;
    for (uint16_t stage = 0; stage < kMaxStages; ++stage) {
      const uint64_t us = s->wait_us_by_holder(stage);
      if (us == 0) continue;
      if (!first_stage) out += ",";
      first_stage = false;
      Appendf(&out, "\"%.*s\":%llu",
              static_cast<int>(StageName(stage).size()),
              StageName(stage).data(), static_cast<unsigned long long>(us));
    }
    out += "}}";
  }
  out += "]";
  return out;
}

void ProfiledMutex::LockContended() {
  // Blame whoever holds the lock at the moment we decide to block; by the
  // time we acquire, the holder has changed at least once.
  const uint16_t holder = holder_stage_.load(std::memory_order_relaxed);
  const uint64_t t0 = MonoMicros();
  mu_.lock();
  const uint64_t wait = MonoMicros() - t0;
  holder_stage_.store(CurrentStage(), std::memory_order_relaxed);
  site_->RecordWait(wait, holder);
}

}  // namespace tencentrec
