#ifndef TENCENTREC_COMMON_CLOCK_H_
#define TENCENTREC_COMMON_CLOCK_H_

#include <cstdint>

namespace tencentrec {

/// Event time in microseconds since an arbitrary epoch. All recommendation
/// state (sliding windows, sessions, linked time for item pairs) is keyed on
/// event time carried by the data, never on wall-clock time, so simulations
/// and tests are fully deterministic and can replay history at any speed.
using EventTime = int64_t;

constexpr EventTime kMicrosPerSecond = 1'000'000;
constexpr EventTime kMicrosPerMinute = 60 * kMicrosPerSecond;
constexpr EventTime kMicrosPerHour = 60 * kMicrosPerMinute;
constexpr EventTime kMicrosPerDay = 24 * kMicrosPerHour;

constexpr EventTime Seconds(int64_t n) { return n * kMicrosPerSecond; }
constexpr EventTime Minutes(int64_t n) { return n * kMicrosPerMinute; }
constexpr EventTime Hours(int64_t n) { return n * kMicrosPerHour; }
constexpr EventTime Days(int64_t n) { return n * kMicrosPerDay; }

/// Day index (0-based) of an event time; used for per-day CTR reporting.
constexpr int64_t DayIndex(EventTime t) { return t / kMicrosPerDay; }

/// A monotonically advancing logical clock owned by a simulation. The
/// recommender never reads it directly; it exists so generators can hand
/// out increasing timestamps.
class LogicalClock {
 public:
  explicit LogicalClock(EventTime start = 0) : now_(start) {}

  EventTime now() const { return now_; }
  void AdvanceTo(EventTime t) {
    if (t > now_) now_ = t;
  }
  void Advance(EventTime delta) { now_ += delta; }

 private:
  EventTime now_;
};

}  // namespace tencentrec

#endif  // TENCENTREC_COMMON_CLOCK_H_
