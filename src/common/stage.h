#ifndef TENCENTREC_COMMON_STAGE_H_
#define TENCENTREC_COMMON_STAGE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include <sys/types.h>

namespace tencentrec {

/// Process-wide thread/stage registry — the attribution substrate for the
/// continuous profiling plane (DESIGN.md §13) and for external tools.
///
/// Every worker thread the system spawns (ParallelItemCf user/pair shards,
/// tstorm spouts and bolts, the combiner-bearing store bolts, BatchWriter
/// flush owners, the monitor/watchdog/sampler/admin threads) calls
/// RegisterStageThread("<stage>") as its first act. That one call:
///
///   1. interns the stage name and publishes it in a thread-local slot the
///      SIGPROF sampler reads async-signal-safely — CPU samples aggregate
///      per *stage*, not per anonymous tid;
///   2. records the thread in a fixed slot table so obs::Profiler can
///      create/destroy its per-thread CPU-time timer;
///   3. names the OS thread via pthread_setname_np (truncated to the
///      kernel's 15-char limit) so `top -H`, `perf` and TSan reports show
///      "cf-pair3", not a wall of "tencentrec".
///
/// Stage ids are small dense integers, never reused within a process, so
/// per-stage accounting can be a flat array indexed without hashing.
/// Stage 0 is reserved for "unregistered" — work on threads that never
/// registered (test mains, short-lived helpers) still lands somewhere
/// visible instead of vanishing.

/// Upper bound on distinct stage names; registration past it folds into
/// stage 0 ("unregistered") rather than failing.
inline constexpr uint16_t kMaxStages = 64;
/// Upper bound on concurrently registered threads (slots are reused after
/// a thread exits).
inline constexpr uint16_t kMaxStageThreads = 256;

/// Interns `name`, returning its stable stage id (0 if the table is full).
/// Idempotent per name; thread-safe.
uint16_t InternStage(std::string_view name);

/// The interned name for `stage_id` ("unregistered" for 0/out-of-range).
std::string_view StageName(uint16_t stage_id);

/// Registers the calling thread under `stage`: interns the name, claims a
/// thread slot, sets the OS thread name, and fires the lifecycle hook (the
/// profiler's cue to attach a CPU timer). Calling it again on the same
/// thread re-stages the thread (slot is updated in place, OS name is
/// rewritten). Returns the stage id.
uint16_t RegisterStageThread(std::string_view stage);

/// The calling thread's stage id (0 when never registered). Reads one
/// thread_local — async-signal-safe, callable from the SIGPROF handler.
uint16_t CurrentStage();

/// The calling thread's registry slot, -1 when not slotted. Same safety
/// contract as CurrentStage(); the profiler's handler uses it to find the
/// thread's sample ring without any lookup structure.
int CurrentStageSlot();

/// One live registered thread, as seen by VisitStageThreads.
struct StageThreadInfo {
  uint16_t slot = 0;      ///< index into the fixed slot table
  uint16_t stage = 0;     ///< interned stage id
  pid_t tid = 0;          ///< kernel thread id (gettid)
  pthread_t handle = 0;   ///< pthread handle, valid while registered
};

/// Visits every currently registered thread under the registry lock; the
/// visited thread cannot unregister (exit) mid-visit. Used by the profiler
/// to attach timers to threads registered before Start().
void VisitStageThreads(const std::function<void(const StageThreadInfo&)>& fn);

/// Lifecycle hook: `on_register` fires on the registering thread right
/// after its slot is published; `on_unregister` fires on the exiting thread
/// (thread_local destructor) right before the slot is released. Both run
/// under the registry lock, serialized against VisitStageThreads. One
/// consumer (the profiler); installing replaces the previous hooks.
void SetStageThreadHooks(std::function<void(const StageThreadInfo&)> on_register,
                         std::function<void(const StageThreadInfo&)> on_unregister);

/// All interned stage names, indexed by stage id (index 0 is
/// "unregistered"). Size is the number of interned stages so far.
std::vector<std::string> StageNames();

}  // namespace tencentrec

#endif  // TENCENTREC_COMMON_STAGE_H_
