#ifndef TENCENTREC_COMMON_LOGGING_H_
#define TENCENTREC_COMMON_LOGGING_H_

#include <cstdio>
#include <cstdlib>

namespace tencentrec {

/// Log severities. Logging defaults to warnings and above so test and
/// benchmark output stays readable; simulations can raise verbosity.
enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Process-wide minimum level that actually prints. The initial level is
/// read from the TR_LOG_LEVEL environment variable at startup (values:
/// debug|info|warning|warn|error, case-insensitive, or a numeric 0-3),
/// defaulting to kWarning — so deployments can verbose the admin plane and
/// watchdog dumps, or silence them, without a rebuild.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

/// Parses a TR_LOG_LEVEL-style string; null/unrecognized returns
/// `fallback`. Exposed for tests.
LogLevel ParseLogLevel(const char* value, LogLevel fallback);

namespace internal {
/// Formats "[L file:line] message\n" into one buffer and emits it with a
/// single stdio write, so concurrent workers (ParallelItemCf shards, tstorm
/// tasks) never interleave fragments of each other's lines.
#if defined(__GNUC__) || defined(__clang__)
__attribute__((format(printf, 4, 5)))
#endif
void LogMessage(LogLevel level, const char* file, int line, const char* fmt,
                ...);
}  // namespace internal

}  // namespace tencentrec

/// printf-style logging. Example: TR_LOG(kInfo, "loaded %zu items", n);
#define TR_LOG(level, ...)                                                  \
  do {                                                                      \
    if (::tencentrec::LogLevel::level >= ::tencentrec::GetLogLevel()) {     \
      ::tencentrec::internal::LogMessage(::tencentrec::LogLevel::level,     \
                                         __FILE__, __LINE__, __VA_ARGS__);  \
    }                                                                       \
  } while (false)

/// Fatal invariant check; active in all build types (database-style: a
/// broken invariant in state management must never be silently ignored).
#define TR_CHECK(cond)                                                    \
  do {                                                                    \
    if (!(cond)) {                                                        \
      ::tencentrec::internal::LogMessage(::tencentrec::LogLevel::kError,  \
                                         __FILE__, __LINE__,              \
                                         "CHECK failed: %s", #cond);      \
      std::abort();                                                       \
    }                                                                     \
  } while (false)

#endif  // TENCENTREC_COMMON_LOGGING_H_
