#ifndef TENCENTREC_COMMON_LOGGING_H_
#define TENCENTREC_COMMON_LOGGING_H_

#include <cstdio>
#include <cstdlib>

namespace tencentrec {

/// Log severities. Logging defaults to warnings and above so test and
/// benchmark output stays readable; simulations can raise verbosity.
enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Process-wide minimum level that actually prints.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

namespace internal {
void LogPrefix(LogLevel level, const char* file, int line);
}  // namespace internal

}  // namespace tencentrec

/// printf-style logging. Example: TR_LOG(kInfo, "loaded %zu items", n);
#define TR_LOG(level, ...)                                                  \
  do {                                                                      \
    if (::tencentrec::LogLevel::level >= ::tencentrec::GetLogLevel()) {     \
      ::tencentrec::internal::LogPrefix(::tencentrec::LogLevel::level,      \
                                        __FILE__, __LINE__);                \
      std::fprintf(stderr, __VA_ARGS__);                                    \
      std::fprintf(stderr, "\n");                                           \
    }                                                                       \
  } while (false)

/// Fatal invariant check; active in all build types (database-style: a
/// broken invariant in state management must never be silently ignored).
#define TR_CHECK(cond)                                                    \
  do {                                                                    \
    if (!(cond)) {                                                        \
      ::tencentrec::internal::LogPrefix(::tencentrec::LogLevel::kError,   \
                                        __FILE__, __LINE__);              \
      std::fprintf(stderr, "CHECK failed: %s\n", #cond);                  \
      std::abort();                                                       \
    }                                                                     \
  } while (false)

#endif  // TENCENTREC_COMMON_LOGGING_H_
