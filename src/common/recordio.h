#ifndef TENCENTREC_COMMON_RECORDIO_H_
#define TENCENTREC_COMMON_RECORDIO_H_

#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>

#include "common/status.h"

namespace tencentrec {

/// Shared on-disk framing for the append-only logs (tdaccess::SegmentLog,
/// tdstore::Wal) and the engine snapshot files.
///
/// All integers are explicit little-endian: the files must mean the same
/// bytes on every host, so a log written on one machine replays on another
/// instead of silently mis-parsing (native-endian memcpy framing was a
/// portability bug this module retired).
///
/// Every file starts with an 8-byte header `[u32 magic][u32 version]` so a
/// future format change is detected up front (Corruption) rather than
/// mis-framed record by record. Records are crc-framed:
///
///   [u32 crc][u32 payload_len][payload]       (crc covers payload only)
///
/// Readers stop at the first clean EOF, torn record, or crc mismatch — the
/// valid prefix is the log's content and the caller truncates the rest.

/// Appends `v` to `buf` as 4 little-endian bytes.
void PutFixed32LE(std::string* buf, uint32_t v);
/// Appends `v` to `buf` as 8 little-endian bytes.
void PutFixed64LE(std::string* buf, uint64_t v);
uint32_t GetFixed32LE(const char* p);
uint64_t GetFixed64LE(const char* p);

/// When to push an appended record toward the platter. The broker-style logs
/// default to flush-per-append (survive process death); the TDStore WAL uses
/// the fsync variants (survive power loss) with group commit amortizing the
/// fsync over an interval.
enum class SyncPolicy {
  kNone,              ///< stdio buffering only; Close() flushes
  kFlushEveryAppend,  ///< fflush per append: survives process crash
  kFsyncEveryAppend,  ///< fflush+fsync per append: survives power loss
  kGroupCommit,       ///< fflush+fsync at most once per configured interval
};

/// fflush (and for kFsyncEveryAppend/kGroupCommit, fsync) `f` as `policy`
/// demands after one append. kGroupCommit callers decide the cadence
/// themselves and pass kFsyncEveryAppend when the interval elapses.
Status SyncFile(std::FILE* f, SyncPolicy policy, const std::string& path);

/// `[u32 magic][u32 version]`, little-endian.
inline constexpr size_t kLogHeaderSize = 8;

/// Writes the file header at the current position (callers open fresh files
/// and write it at offset 0).
Status WriteLogHeader(std::FILE* f, uint32_t magic, uint32_t version,
                      const std::string& path);

/// Reads and verifies the header at the current position. A short read
/// (file smaller than the header — a create torn mid-write) returns
/// NotFound so the caller can re-initialize; a magic or version mismatch is
/// Corruption, because guessing at an unknown format loses data silently.
Status ReadLogHeader(std::FILE* f, uint32_t magic, uint32_t version,
                     const std::string& path);

/// Appends one crc-framed record; on success returns the bytes written
/// (kFrameOverhead + payload size). On a short write the file position is
/// unspecified — the caller owns truncating back to the last good offset.
inline constexpr size_t kFrameOverhead = 8;
Result<size_t> AppendFrame(std::FILE* f, std::string_view payload,
                           const std::string& path);

/// Reads the next crc-framed record at the current position.
///   ok(payload)  — a whole, checksummed record;
///   NotFound     — clean EOF (position exactly at end, no partial bytes);
///   Corruption   — torn header/body or crc mismatch (end of valid prefix).
/// `max_payload` bounds insane length fields from garbage bytes.
Result<std::string> ReadFrame(std::FILE* f, size_t max_payload,
                              const std::string& path);

}  // namespace tencentrec

#endif  // TENCENTREC_COMMON_RECORDIO_H_
