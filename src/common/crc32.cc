#include "common/crc32.h"

#include <cstring>

namespace tencentrec {

namespace {

/// Slicing-by-8 tables: table[0] is the classic byte-at-a-time table;
/// table[k][b] is the CRC contribution of byte b seen k positions earlier
/// in an 8-byte block. Same reflected IEEE polynomial as before, so every
/// previously written frame still verifies bit-identically — slicing only
/// changes how many bytes fold per step, not the function computed.
struct Crc32Tables {
  uint32_t entries[8][256];

  constexpr Crc32Tables() : entries() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
      }
      entries[0][i] = c;
    }
    for (int t = 1; t < 8; ++t) {
      for (uint32_t i = 0; i < 256; ++i) {
        entries[t][i] =
            entries[0][entries[t - 1][i] & 0xffu] ^ (entries[t - 1][i] >> 8);
      }
    }
  }
};

constexpr Crc32Tables kTables;

}  // namespace

uint32_t Crc32(const void* data, size_t len, uint32_t seed) {
  const auto* p = static_cast<const unsigned char*>(data);
  uint32_t c = seed ^ 0xffffffffu;
  // Eight bytes per iteration: fold the running crc into the first word and
  // combine both words through the position-shifted tables. memcpy keeps the
  // loads alignment-safe; it compiles to plain word loads. The word-at-a-time
  // fold assumes little-endian byte order — big-endian builds take the
  // byte-at-a-time tail loop below for the whole buffer.
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__
  while (len >= 8) {
    uint32_t lo;
    uint32_t hi;
    std::memcpy(&lo, p, 4);
    std::memcpy(&hi, p + 4, 4);
    lo ^= c;
    c = kTables.entries[7][lo & 0xffu] ^ kTables.entries[6][(lo >> 8) & 0xffu] ^
        kTables.entries[5][(lo >> 16) & 0xffu] ^
        kTables.entries[4][(lo >> 24) & 0xffu] ^
        kTables.entries[3][hi & 0xffu] ^ kTables.entries[2][(hi >> 8) & 0xffu] ^
        kTables.entries[1][(hi >> 16) & 0xffu] ^
        kTables.entries[0][(hi >> 24) & 0xffu];
    p += 8;
    len -= 8;
  }
#endif
  for (size_t i = 0; i < len; ++i) {
    c = kTables.entries[0][(c ^ p[i]) & 0xffu] ^ (c >> 8);
  }
  return c ^ 0xffffffffu;
}

}  // namespace tencentrec
