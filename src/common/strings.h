#ifndef TENCENTREC_COMMON_STRINGS_H_
#define TENCENTREC_COMMON_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace tencentrec {

/// Splits `s` on `sep`, keeping empty fields.
std::vector<std::string> Split(std::string_view s, char sep);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, char sep);

/// Strips ASCII whitespace from both ends.
std::string_view Trim(std::string_view s);

/// Parses a signed integer; returns false on any malformed input.
bool ParseInt64(std::string_view s, int64_t* out);

/// Parses a double; returns false on any malformed input.
bool ParseDouble(std::string_view s, double* out);

bool StartsWith(std::string_view s, std::string_view prefix);

}  // namespace tencentrec

#endif  // TENCENTREC_COMMON_STRINGS_H_
