#ifndef TENCENTREC_COMMON_HASH_H_
#define TENCENTREC_COMMON_HASH_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

namespace tencentrec {

/// 64-bit FNV-1a. Stable across platforms/runs (unlike std::hash), which
/// matters because field groupings, TDStore routing, and multi-hash bolt
/// assignment must be reproducible in tests and benchmarks.
inline uint64_t Fnv1a64(const void* data, size_t len) {
  const auto* p = static_cast<const unsigned char*>(data);
  uint64_t h = 0xcbf29ce484222325ULL;
  for (size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

inline uint64_t HashString(std::string_view s) {
  return Fnv1a64(s.data(), s.size());
}

/// Finalizer from SplitMix64; turns a (possibly sequential) integer key into
/// a well-mixed hash so modulo partitioning is balanced.
inline uint64_t HashInt(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

inline uint64_t HashCombine(uint64_t a, uint64_t b) {
  return HashInt(a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2)));
}

}  // namespace tencentrec

#endif  // TENCENTREC_COMMON_HASH_H_
