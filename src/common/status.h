#ifndef TENCENTREC_COMMON_STATUS_H_
#define TENCENTREC_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace tencentrec {

/// Error categories used across the library. Modeled after the RocksDB
/// convention: every fallible public API returns a Status (or a Result<T>)
/// instead of throwing.
enum class StatusCode {
  kOk = 0,
  kNotFound,
  kAlreadyExists,
  kInvalidArgument,
  kIOError,
  kCorruption,
  kUnavailable,     ///< server/partition temporarily down; retryable
  kResourceExhausted,
  kFailedPrecondition,
  kInternal,
  kTimedOut,
  kAborted,
};

/// Returns a stable human-readable name for a status code ("NotFound", ...).
const char* StatusCodeName(StatusCode code);

/// A lightweight success-or-error value. Cheap to copy in the OK case (no
/// allocation); error statuses carry a message.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status NotFound(std::string msg = "") {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg = "") {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status InvalidArgument(std::string msg = "") {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status IOError(std::string msg = "") {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Corruption(std::string msg = "") {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status Unavailable(std::string msg = "") {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg = "") {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg = "") {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg = "") {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status TimedOut(std::string msg = "") {
    return Status(StatusCode::kTimedOut, std::move(msg));
  }
  static Status Aborted(std::string msg = "") {
    return Status(StatusCode::kAborted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code_ == StatusCode::kAlreadyExists; }
  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsIOError() const { return code_ == StatusCode::kIOError; }
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }
  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }
  bool IsResourceExhausted() const {
    return code_ == StatusCode::kResourceExhausted;
  }
  bool IsFailedPrecondition() const {
    return code_ == StatusCode::kFailedPrecondition;
  }
  bool IsTimedOut() const { return code_ == StatusCode::kTimedOut; }
  bool IsAborted() const { return code_ == StatusCode::kAborted; }

  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

/// Either a value of type T or an error Status. The value accessors assert
/// on misuse (calling value() on an error), matching the library-wide
/// no-exceptions policy.
template <typename T>
class Result {
 public:
  /* implicit */ Result(T value) : value_(std::move(value)) {}
  /* implicit */ Result(Status status) : status_(std::move(status)) {
    assert(!status_.ok() && "Result(Status) requires a non-OK status");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  /// Returns the value, or `fallback` if this holds an error.
  T value_or(T fallback) const& { return ok() ? *value_ : std::move(fallback); }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Propagates a non-OK status to the caller. Usable only in functions that
/// themselves return Status.
#define TR_RETURN_IF_ERROR(expr)           \
  do {                                     \
    ::tencentrec::Status _s = (expr);      \
    if (!_s.ok()) return _s;               \
  } while (false)

}  // namespace tencentrec

#endif  // TENCENTREC_COMMON_STATUS_H_
