#include "common/logging.h"

#include <atomic>

namespace tencentrec {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kWarning)};
}  // namespace

LogLevel GetLogLevel() { return static_cast<LogLevel>(g_level.load()); }

void SetLogLevel(LogLevel level) { g_level.store(static_cast<int>(level)); }

namespace internal {

void LogPrefix(LogLevel level, const char* file, int line) {
  const char* name = "?";
  switch (level) {
    case LogLevel::kDebug:
      name = "D";
      break;
    case LogLevel::kInfo:
      name = "I";
      break;
    case LogLevel::kWarning:
      name = "W";
      break;
    case LogLevel::kError:
      name = "E";
      break;
  }
  // Strip directories for brevity.
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  std::fprintf(stderr, "[%s %s:%d] ", name, base, line);
}

}  // namespace internal
}  // namespace tencentrec
