#include "common/logging.h"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cstdarg>
#include <cstring>
#include <string>

namespace tencentrec {

namespace {
int InitialLevel() {
  return static_cast<int>(
      ParseLogLevel(std::getenv("TR_LOG_LEVEL"), LogLevel::kWarning));
}

std::atomic<int> g_level{InitialLevel()};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
  }
  return "?";
}
}  // namespace

LogLevel ParseLogLevel(const char* value, LogLevel fallback) {
  if (value == nullptr || *value == '\0') return fallback;
  std::string lower;
  for (const char* p = value; *p; ++p) {
    lower += static_cast<char>(std::tolower(static_cast<unsigned char>(*p)));
  }
  if (lower == "debug" || lower == "0") return LogLevel::kDebug;
  if (lower == "info" || lower == "1") return LogLevel::kInfo;
  if (lower == "warning" || lower == "warn" || lower == "2") {
    return LogLevel::kWarning;
  }
  if (lower == "error" || lower == "3") return LogLevel::kError;
  return fallback;
}

LogLevel GetLogLevel() { return static_cast<LogLevel>(g_level.load()); }

void SetLogLevel(LogLevel level) { g_level.store(static_cast<int>(level)); }

namespace internal {

void LogMessage(LogLevel level, const char* file, int line, const char* fmt,
                ...) {
  // Strip directories for brevity.
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }

  // One buffer, one write: prefix + message emitted as separate stdio calls
  // would tear under concurrent workers. Long messages truncate (with a
  // marker) rather than overflow or split.
  char buffer[1024];
  int n = std::snprintf(buffer, sizeof(buffer), "[%s %s:%d] ",
                        LevelName(level), base, line);
  if (n < 0) return;
  size_t pos = std::min(static_cast<size_t>(n), sizeof(buffer) - 1);

  std::va_list args;
  va_start(args, fmt);
  int m = std::vsnprintf(buffer + pos, sizeof(buffer) - pos, fmt, args);
  va_end(args);
  if (m > 0) pos = std::min(pos + static_cast<size_t>(m), sizeof(buffer) - 1);

  if (pos >= sizeof(buffer) - 1) {
    static constexpr char kEllipsis[] = "...";
    std::memcpy(buffer + sizeof(buffer) - sizeof(kEllipsis) - 1, kEllipsis,
                sizeof(kEllipsis) - 1);
    pos = sizeof(buffer) - 2;
  }
  buffer[pos] = '\n';
  std::fwrite(buffer, 1, pos + 1, stderr);
}

}  // namespace internal
}  // namespace tencentrec
