#ifndef TENCENTREC_COMMON_FLAT_MAP_H_
#define TENCENTREC_COMMON_FLAT_MAP_H_

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/hash.h"
#include "common/logging.h"

namespace tencentrec {

/// Open-addressing hash map from uint64 keys to small trivially-copyable
/// values, built for the CF counter workloads (pair counts, item counts,
/// observation counts, table indices) where std::unordered_map's
/// node-per-entry layout was the measured hot spot (DESIGN.md §15: ~58% of
/// per-action CPU in _M_find_before_node/operator[] frames).
///
/// Layout and scheme:
///  - struct-of-arrays: one contiguous key array, one contiguous value
///    array, so a probe touches only key cache lines and a hit loads the
///    value with a single indexed access;
///  - power-of-two capacity with linear probing; slots are addressed by
///    `HashInt(key) & mask` (SplitMix64 finalizer — sequential ids and
///    packed pair keys are both well mixed);
///  - the all-ones key (~0) is the reserved empty sentinel. Item/user ids
///    are non-negative and packed pair keys have lo < hi, so no live key
///    collides with it (checked);
///  - grows at 3/4 load by doubling and rehashing — amortized O(1) upsert;
///  - no per-key erase (the CF tables never need one: sessions are dropped
///    whole, prune/observation/list/history tables are insert-only), which
///    keeps probing tombstone-free.
template <typename V>
class FlatMap64 {
 public:
  static constexpr uint64_t kEmptyKey = ~0ull;

  FlatMap64() = default;

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  /// Slots allocated (0 before the first insert).
  size_t capacity() const { return keys_.size(); }

  /// Pointer to the value for `key`, or nullptr when absent.
  const V* Find(uint64_t key) const {
    if (size_ == 0) return nullptr;
    const size_t i = Probe(key);
    return keys_[i] == key ? &values_[i] : nullptr;
  }
  V* Find(uint64_t key) {
    return const_cast<V*>(static_cast<const FlatMap64*>(this)->Find(key));
  }

  bool Contains(uint64_t key) const { return Find(key) != nullptr; }

  /// Upsert: the value for `key`, default-constructed on first access
  /// (matching std::unordered_map::operator[] semantics).
  V& operator[](uint64_t key) {
    TR_CHECK(key != kEmptyKey);
    if (keys_.empty() || (size_ + 1) * 4 > keys_.size() * 3) Grow();
    const size_t i = Probe(key);
    if (keys_[i] == kEmptyKey) {
      keys_[i] = key;
      ++size_;
    }
    return values_[i];
  }

  /// Drops all entries but keeps the allocated capacity (scratch reuse).
  void Clear() {
    if (size_ == 0) return;
    std::fill(keys_.begin(), keys_.end(), kEmptyKey);
    std::fill(values_.begin(), values_.end(), V{});
    size_ = 0;
  }

  /// Pre-sizes the table for `n` entries without rehash churn.
  void Reserve(size_t n) {
    size_t cap = kMinCapacity;
    while (n * 4 > cap * 3) cap *= 2;
    if (cap > keys_.size()) Rehash(cap);
  }

  /// Visits every (key, value) pair. Order is unspecified (slot order).
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (size_t i = 0; i < keys_.size(); ++i) {
      if (keys_[i] != kEmptyKey) fn(keys_[i], values_[i]);
    }
  }

  /// Hints the cache that `key` is about to be probed: prefetches the home
  /// slot's key and value lines. Batch loops call this one element ahead so
  /// the random-access miss overlaps the current element's work; correct
  /// (just useless) if the key is never actually probed.
  void Prefetch(uint64_t key) const {
    if (keys_.empty()) return;
    const size_t i = static_cast<size_t>(HashInt(key)) & mask_;
    __builtin_prefetch(&keys_[i]);
    __builtin_prefetch(&values_[i]);
  }

 private:
  static constexpr size_t kMinCapacity = 16;

  /// Index of `key`'s slot, or of the first empty slot on its probe chain.
  /// Requires a non-empty table with at least one empty slot (guaranteed by
  /// the 3/4 load cap).
  size_t Probe(uint64_t key) const {
    size_t i = static_cast<size_t>(HashInt(key)) & mask_;
    while (keys_[i] != key && keys_[i] != kEmptyKey) i = (i + 1) & mask_;
    return i;
  }

  void Grow() { Rehash(keys_.empty() ? kMinCapacity : keys_.size() * 2); }

  void Rehash(size_t new_capacity) {
    std::vector<uint64_t> old_keys = std::move(keys_);
    std::vector<V> old_values = std::move(values_);
    keys_.assign(new_capacity, kEmptyKey);
    values_.assign(new_capacity, V{});
    mask_ = new_capacity - 1;
    for (size_t i = 0; i < old_keys.size(); ++i) {
      if (old_keys[i] == kEmptyKey) continue;
      const size_t j = Probe(old_keys[i]);
      keys_[j] = old_keys[i];
      values_[j] = old_values[i];
    }
  }

  std::vector<uint64_t> keys_;
  std::vector<V> values_;
  size_t size_ = 0;
  uint64_t mask_ = 0;
};

/// Open-addressing set of uint64 keys — FlatMap64 without the value array
/// (pruned-pair sets, tracked-item dedup). Same sentinel/probing scheme.
class FlatSet64 {
 public:
  static constexpr uint64_t kEmptyKey = ~0ull;

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  bool Contains(uint64_t key) const {
    if (size_ == 0) return false;
    return keys_[Probe(key)] == key;
  }

  /// Returns true when `key` was newly inserted.
  bool Insert(uint64_t key) {
    TR_CHECK(key != kEmptyKey);
    if (keys_.empty() || (size_ + 1) * 4 > keys_.size() * 3) Grow();
    const size_t i = Probe(key);
    if (keys_[i] == key) return false;
    keys_[i] = key;
    ++size_;
    return true;
  }

  void Clear() {
    if (size_ == 0) return;
    std::fill(keys_.begin(), keys_.end(), kEmptyKey);
    size_ = 0;
  }

  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (uint64_t k : keys_) {
      if (k != kEmptyKey) fn(k);
    }
  }

 private:
  static constexpr size_t kMinCapacity = 16;

  size_t Probe(uint64_t key) const {
    size_t i = static_cast<size_t>(HashInt(key)) & mask_;
    while (keys_[i] != key && keys_[i] != kEmptyKey) i = (i + 1) & mask_;
    return i;
  }

  void Grow() {
    const size_t new_capacity =
        keys_.empty() ? kMinCapacity : keys_.size() * 2;
    std::vector<uint64_t> old_keys = std::move(keys_);
    keys_.assign(new_capacity, kEmptyKey);
    mask_ = new_capacity - 1;
    for (uint64_t k : old_keys) {
      if (k != kEmptyKey) keys_[Probe(k)] = k;
    }
  }

  std::vector<uint64_t> keys_;
  size_t size_ = 0;
  uint64_t mask_ = 0;
};

}  // namespace tencentrec

#endif  // TENCENTREC_COMMON_FLAT_MAP_H_
