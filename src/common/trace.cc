#include "common/trace.h"

#include <algorithm>
#include <atomic>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <unordered_map>

namespace tencentrec {

namespace {

std::atomic<uint32_t> g_sample_every{0};
std::atomic<uint64_t> g_id_counter{0};

thread_local uint64_t t_current_trace_id = 0;

/// Per-thread stride-sampling state: `t_countdown` calls remain until this
/// thread's next sample at rate `t_countdown_every`. Thread-local so the
/// per-tuple hot path never touches a shared cache line — the old global
/// tuple counter's contended fetch_add was the bulk of the ~15% tracing
/// overhead at 1/64 sampling. Each thread still samples exactly 1 in N of
/// its own tuples, which preserves the sampling rate of any workload
/// (threads' tuple counts just weight their own streams).
thread_local uint32_t t_countdown = 0;
thread_local uint32_t t_countdown_every = 0;

/// Small stable per-thread index for span attribution (same scheme as the
/// metrics stripe assignment, but unbounded — it names threads, it does
/// not shard state).
uint32_t TraceThreadId() {
  static std::atomic<uint32_t> next{0};
  thread_local uint32_t id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

/// SplitMix64 finalizer: turns the sequential id counter into
/// well-scattered 64-bit trace ids (distinct runs of the same process
/// still produce distinct-looking ids in merged trace views).
uint64_t MixId(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

void Appendf(std::string* out, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

void Appendf(std::string* out, const char* fmt, ...) {
  char line[256];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(line, sizeof(line), fmt, args);
  va_end(args);
  *out += line;
}

}  // namespace

void SetTraceSampleEvery(uint32_t n) {
  g_sample_every.store(n, std::memory_order_relaxed);
}

uint32_t TraceSampleEvery() {
  return g_sample_every.load(std::memory_order_relaxed);
}

uint64_t MaybeStartTrace() {
  // Not-sampling fast path: one relaxed load, no shared writes, no clock.
  const uint32_t every = TraceSampleEvery();
  if (every == 0) return 0;
  if (every != t_countdown_every) {
    // Rate changed (or first call on this thread): restart the stride with
    // a thread-dependent phase in [1, every] so threads don't sample in
    // lockstep. Any phase keeps "exactly 1 in N per thread" over whole
    // periods (trace_test asserts 100 samples in 400 calls at every=4).
    t_countdown_every = every;
    t_countdown = 1 + TraceThreadId() % every;
  }
  if (--t_countdown != 0) return 0;
  t_countdown = every;
  // MixId never maps the strictly positive counter to 0 in practice; guard
  // anyway — id 0 means "untraced" everywhere.
  const uint64_t id =
      MixId(g_id_counter.fetch_add(1, std::memory_order_relaxed) + 1);
  return id == 0 ? 1 : id;
}

uint64_t CurrentTraceId() { return t_current_trace_id; }

// --- Tracer -----------------------------------------------------------------

Tracer& Tracer::Default() {
  static Tracer* tracer = new Tracer();
  return *tracer;
}

Tracer::Tracer(Options options)
    : capacity_(options.capacity < kStripes ? kStripes : options.capacity) {
  const size_t per_stripe = capacity_ / kStripes;
  for (auto& stripe : stripes_) {
    stripe.ring.resize(per_stripe);
  }
  capacity_ = per_stripe * kStripes;
}

void Tracer::Record(uint64_t trace_id, std::string_view name,
                    uint64_t start_micros, uint64_t duration_micros) {
  if (trace_id == 0) return;
  Stripe& stripe = stripes_[TraceThreadId() % kStripes];
  std::lock_guard<std::mutex> lock(stripe.mu);
  TraceSpan& span = stripe.ring[stripe.next];
  span.trace_id = trace_id;
  span.start_micros = start_micros;
  span.duration_micros = duration_micros;
  span.tid = TraceThreadId();
  span.SetName(name);
  stripe.next = (stripe.next + 1) % stripe.ring.size();
  if (stripe.used < stripe.ring.size()) ++stripe.used;
  ++stripe.recorded;
}

std::vector<TraceSpan> Tracer::Spans() const {
  std::vector<TraceSpan> out;
  for (const auto& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe.mu);
    for (size_t i = 0; i < stripe.used; ++i) out.push_back(stripe.ring[i]);
  }
  std::sort(out.begin(), out.end(),
            [](const TraceSpan& a, const TraceSpan& b) {
              if (a.start_micros != b.start_micros) {
                return a.start_micros < b.start_micros;
              }
              return a.trace_id < b.trace_id;
            });
  return out;
}

bool Tracer::LastSpanNamed(std::string_view name, TraceSpan* out) const {
  bool found = false;
  uint64_t best_start = 0;
  for (const auto& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe.mu);
    for (size_t i = 0; i < stripe.used; ++i) {
      const TraceSpan& span = stripe.ring[i];
      if (name != span.name) continue;
      if (!found || span.start_micros >= best_start) {
        best_start = span.start_micros;
        *out = span;
        found = true;
      }
    }
  }
  return found;
}

void Tracer::Clear() {
  for (auto& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe.mu);
    stripe.next = 0;
    stripe.used = 0;
  }
}

uint64_t Tracer::total_recorded() const {
  uint64_t total = 0;
  for (const auto& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe.mu);
    total += stripe.recorded;
  }
  return total;
}

// --- scopes -----------------------------------------------------------------

ScopedSpan::ScopedSpan(uint64_t trace_id, std::string_view name)
    : trace_id_(TracingEnabled() ? trace_id : 0),
      name_(name),
      start_(trace_id_ != 0 ? MonoMicros() : 0) {
  if (trace_id_ != 0) {
    saved_context_ = t_current_trace_id;
    t_current_trace_id = trace_id_;
  }
}

ScopedSpan::~ScopedSpan() {
  if (trace_id_ == 0) return;
  Tracer::Default().Record(trace_id_, name_, start_, MonoMicros() - start_);
  t_current_trace_id = saved_context_;
}

TraceContextScope::TraceContextScope(uint64_t trace_id) {
  if (trace_id == 0) return;
  active_ = true;
  saved_ = t_current_trace_id;
  t_current_trace_id = trace_id;
}

TraceContextScope::~TraceContextScope() {
  if (active_) t_current_trace_id = saved_;
}

// --- exports ----------------------------------------------------------------

std::string ExportChromeTrace(const std::vector<TraceSpan>& spans) {
  std::string out = "[";
  for (size_t i = 0; i < spans.size(); ++i) {
    const TraceSpan& s = spans[i];
    Appendf(&out,
            "%s{\"name\":\"%s\",\"cat\":\"tuple\",\"ph\":\"X\","
            "\"ts\":%" PRIu64 ",\"dur\":%" PRIu64
            ",\"pid\":1,\"tid\":%u,"
            "\"args\":{\"trace_id\":\"%016" PRIx64 "\"}}",
            i == 0 ? "" : ",", s.name, s.start_micros, s.duration_micros,
            s.tid, s.trace_id);
  }
  out += "]";
  return out;
}

std::string ExportTracesJson(const std::vector<TraceSpan>& spans,
                             size_t max_traces) {
  // Group by trace id, preserving the (already start-ordered) span order.
  std::unordered_map<uint64_t, std::vector<const TraceSpan*>> by_trace;
  std::vector<uint64_t> order;  // by first-span start time
  for (const auto& span : spans) {
    auto [it, inserted] = by_trace.try_emplace(span.trace_id);
    if (inserted) order.push_back(span.trace_id);
    it->second.push_back(&span);
  }
  // Most recent trace first.
  std::reverse(order.begin(), order.end());
  if (order.size() > max_traces) order.resize(max_traces);

  std::string out = "{\"traces\":[";
  for (size_t t = 0; t < order.size(); ++t) {
    const auto& trace = by_trace[order[t]];
    uint64_t begin = trace.front()->start_micros;
    uint64_t end = begin;
    for (const TraceSpan* s : trace) {
      begin = std::min(begin, s->start_micros);
      end = std::max(end, s->start_micros + s->duration_micros);
    }
    Appendf(&out,
            "%s{\"trace_id\":\"%016" PRIx64 "\",\"begin_us\":%" PRIu64
            ",\"total_us\":%" PRIu64 ",\"spans\":[",
            t == 0 ? "" : ",", order[t], begin, end - begin);
    for (size_t i = 0; i < trace.size(); ++i) {
      const TraceSpan* s = trace[i];
      Appendf(&out,
              "%s{\"name\":\"%s\",\"start_us\":%" PRIu64 ",\"dur_us\":%" PRIu64
              ",\"tid\":%u}",
              i == 0 ? "" : ",", s->name, s->start_micros, s->duration_micros,
              s->tid);
    }
    out += "]}";
  }
  Appendf(&out, "],\"trace_count\":%zu,\"span_count\":%zu}", order.size(),
          spans.size());
  return out;
}

}  // namespace tencentrec
