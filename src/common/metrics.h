#ifndef TENCENTREC_COMMON_METRICS_H_
#define TENCENTREC_COMMON_METRICS_H_

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace tencentrec {

/// Process-wide metrics substrate (the measurement half of Fig. 9's Monitor
/// component). Hot paths pay one relaxed atomic add per observation: every
/// instrument is sharded across cache-line-aligned stripes, with each thread
/// pinned to a stripe, and readers merge the stripes on demand. Values are
/// exported through engine/monitor (human report, Prometheus text, JSON).
///
/// Instruments are owned by a MetricRegistry and live for the registry's
/// lifetime; pointers returned by the registry are stable and safe to cache
/// (Reset() zeroes values in place, it never frees).

/// Global observation kill-switch. Instrument writers check it (relaxed) so a
/// disabled process skips both the atomic traffic and — at call sites that
/// gate on it — the clock reads that dominate instrumentation cost.
bool MetricsEnabled();
void SetMetricsEnabled(bool enabled);

/// Monotonic wall clock in microseconds. This is *instrumentation* time,
/// deliberately distinct from EventTime: algorithm state stays on the
/// deterministic event-time axis, while latency measurement needs real time.
inline uint64_t MonoMicros() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

namespace metrics_internal {
/// Stable per-thread stripe slot: threads are assigned round-robin at first
/// use, so up to kStripes concurrent writers never share a cache line.
constexpr size_t kStripes = 8;
size_t ThreadStripe();
}  // namespace metrics_internal

/// Monotonically increasing event count.
class Counter {
 public:
  void Add(uint64_t n = 1) {
    if (!MetricsEnabled()) return;
    stripes_[metrics_internal::ThreadStripe()].v.fetch_add(
        n, std::memory_order_relaxed);
  }

  uint64_t Value() const {
    uint64_t total = 0;
    for (const auto& s : stripes_) total += s.v.load(std::memory_order_relaxed);
    return total;
  }

  void Reset() {
    for (auto& s : stripes_) s.v.store(0, std::memory_order_relaxed);
  }

 private:
  struct alignas(64) Stripe {
    std::atomic<uint64_t> v{0};
  };
  std::array<Stripe, metrics_internal::kStripes> stripes_;
};

/// Last-written instantaneous value (queue depths, lag, utilization inputs).
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { Set(0); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Fixed-bucket log-linear latency histogram over microsecond observations.
///
/// Bucket layout (HDR-style, 2 significand bits): values 0..3 get exact
/// buckets; every octave [2^o, 2^(o+1)) above that is split into 4 linear
/// sub-buckets, so quantile interpolation error is bounded at ~12.5% of the
/// value — tight enough to tell 1.8s from 2.2s on the paper's 2s freshness
/// claim. 156 buckets cover 0 .. 2^40us (~12.7 days); larger observations
/// clamp into the top bucket (exact max is tracked separately).
///
/// Record() is one relaxed add into the caller's stripe plus relaxed
/// min/max maintenance; Snapshot() merges stripes on read.
class LatencyHistogram {
 public:
  static constexpr int kSubBits = 2;
  static constexpr int kSubBuckets = 1 << kSubBits;  // 4
  static constexpr int kOctaves = 40;
  static constexpr int kNumBuckets =
      kSubBuckets + (kOctaves - kSubBits) * kSubBuckets;  // 156

  /// Merged point-in-time view; all derived statistics are computed on the
  /// snapshot so one collection yields a consistent report.
  struct Snapshot {
    uint64_t count = 0;
    uint64_t sum = 0;
    uint64_t min = 0;
    uint64_t max = 0;
    std::array<uint64_t, kNumBuckets> buckets{};
    /// Trace id of a recent traced sample that landed in each bucket
    /// (0 = none). Lets exporters link a slow bucket to its /traces span.
    std::array<uint64_t, kNumBuckets> exemplars{};

    double Mean() const {
      return count > 0 ? static_cast<double>(sum) / static_cast<double>(count)
                       : 0.0;
    }
    /// Quantile in [0,1] by linear interpolation inside the hit bucket,
    /// clamped to the exact observed [min, max].
    double Percentile(double p) const;
  };

  static int BucketOf(uint64_t micros);
  /// Inclusive value range covered by bucket `b`.
  static uint64_t BucketLowerBound(int b);
  static uint64_t BucketUpperBound(int b);

  void Record(uint64_t micros) {
    if (!MetricsEnabled()) return;
    Stripe& s = stripes_[metrics_internal::ThreadStripe()];
    s.buckets[static_cast<size_t>(BucketOf(micros))].fetch_add(
        1, std::memory_order_relaxed);
    s.sum.fetch_add(micros, std::memory_order_relaxed);
    AtomicMin(&s.min, micros);
    AtomicMax(&s.max, micros);
  }

  /// Record plus exemplar capture: remembers `trace_id` as the bucket's most
  /// recent traced sample. Exemplar slots are a single (non-striped) array of
  /// relaxed atomics — traced samples are sampled (1/N tuples), so contention
  /// is negligible and the untraced path pays only one branch. Last-writer
  /// wins; a torn read is impossible (single 64-bit atomic per bucket).
  void RecordWithExemplar(uint64_t micros, uint64_t trace_id) {
    if (!MetricsEnabled()) return;
    Record(micros);
    if (trace_id != 0) {
      exemplars_[static_cast<size_t>(BucketOf(micros))].store(
          trace_id, std::memory_order_relaxed);
    }
  }

  Snapshot Snap() const;

  void Reset();

 private:
  struct alignas(64) Stripe {
    std::array<std::atomic<uint64_t>, kNumBuckets> buckets{};
    std::atomic<uint64_t> sum{0};
    std::atomic<uint64_t> min{UINT64_MAX};
    std::atomic<uint64_t> max{0};
  };

  static void AtomicMin(std::atomic<uint64_t>* target, uint64_t v) {
    uint64_t cur = target->load(std::memory_order_relaxed);
    while (v < cur &&
           !target->compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  static void AtomicMax(std::atomic<uint64_t>* target, uint64_t v) {
    uint64_t cur = target->load(std::memory_order_relaxed);
    while (v > cur &&
           !target->compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }

  std::array<Stripe, metrics_internal::kStripes> stripes_;
  std::array<std::atomic<uint64_t>, kNumBuckets> exemplars_{};
};

/// Named instrument directory. Get* registers on first use and returns a
/// stable pointer; lookups take a mutex, so resolve once (construction /
/// Prepare time) and cache the pointer on hot paths. One name maps to one
/// instrument kind; a kind mismatch fails a TR_CHECK.
class MetricRegistry {
 public:
  /// The process-wide registry every subsystem instruments into.
  static MetricRegistry& Default();

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  LatencyHistogram* GetHistogram(const std::string& name);

  /// Sorted point-in-time listings for exporters.
  std::vector<std::pair<std::string, uint64_t>> Counters() const;
  std::vector<std::pair<std::string, int64_t>> Gauges() const;
  std::vector<std::pair<std::string, LatencyHistogram::Snapshot>> Histograms()
      const;

  /// Zeroes every registered instrument in place. Cached pointers stay
  /// valid; concurrent writers may contribute to either side of the reset.
  void Reset();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<LatencyHistogram>> histograms_;
};

/// RAII latency probe: records elapsed wall micros into `histogram` at scope
/// exit. A null histogram (instrumentation resolved away) skips the clock
/// reads entirely.
class ScopedLatencyTimer {
 public:
  explicit ScopedLatencyTimer(LatencyHistogram* histogram)
      : histogram_(histogram), start_(histogram ? MonoMicros() : 0) {}
  ~ScopedLatencyTimer() {
    if (histogram_ != nullptr) histogram_->Record(MonoMicros() - start_);
  }

  ScopedLatencyTimer(const ScopedLatencyTimer&) = delete;
  ScopedLatencyTimer& operator=(const ScopedLatencyTimer&) = delete;

 private:
  LatencyHistogram* histogram_;
  uint64_t start_;
};

}  // namespace tencentrec

#endif  // TENCENTREC_COMMON_METRICS_H_
