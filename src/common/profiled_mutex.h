#ifndef TENCENTREC_COMMON_PROFILED_MUTEX_H_
#define TENCENTREC_COMMON_PROFILED_MUTEX_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>

#include "common/metrics.h"
#include "common/stage.h"

namespace tencentrec {

/// Off-CPU half of the profiling plane (DESIGN.md §13): the on-CPU sampler
/// shows where cycles go; ProfiledMutex shows where threads *stop* — which
/// hot lock they queued on, for how long, and which stage was holding it.
///
/// Cost model: when contention profiling is disabled, lock() is one relaxed
/// load plus the underlying std::mutex — no clock reads, no atomics beyond
/// the flag. When enabled, the uncontended path adds one try_lock and two
/// relaxed stores (still no clock read); only a *contended* acquisition pays
/// MonoMicros() twice to time the wait. The wait lands in a per-site
/// `contention.<site>.wait_us` registry histogram plus a per-holder-stage
/// attribution array, so /profile/contention can answer "who blocks whom".

/// Global kill switch for contention timing (relaxed; independent of
/// MetricsEnabled so CPU profiling and lock profiling toggle separately).
bool ContentionProfilingEnabled();
void SetContentionProfilingEnabled(bool enabled);

/// Aggregated contention statistics for one named lock site. Many mutexes
/// may share a site (e.g. all ParallelItemCf count stripes register the one
/// site "parallel_cf.count_stripe") — totals aggregate across instances.
class ContentionSite {
 public:
  explicit ContentionSite(std::string name);

  ContentionSite(const ContentionSite&) = delete;
  ContentionSite& operator=(const ContentionSite&) = delete;

  void RecordUncontended() {
    acquisitions_.fetch_add(1, std::memory_order_relaxed);
  }

  /// One contended acquisition: waited `wait_us` behind a holder running as
  /// `holder_stage` (0 when the holder was unregistered or released between
  /// our try_lock and the holder read).
  void RecordWait(uint64_t wait_us, uint16_t holder_stage);

  const std::string& name() const { return name_; }
  uint64_t acquisitions() const {
    return acquisitions_.load(std::memory_order_relaxed);
  }
  uint64_t contended() const {
    return contended_.load(std::memory_order_relaxed);
  }
  uint64_t wait_us_total() const {
    return wait_us_total_.load(std::memory_order_relaxed);
  }
  uint64_t wait_us_max() const {
    return wait_us_max_.load(std::memory_order_relaxed);
  }
  uint64_t wait_us_by_holder(uint16_t stage) const {
    return stage < kMaxStages
               ? wait_by_holder_[stage].load(std::memory_order_relaxed)
               : 0;
  }
  const LatencyHistogram* wait_hist() const { return wait_hist_; }

 private:
  const std::string name_;
  std::atomic<uint64_t> acquisitions_{0};
  std::atomic<uint64_t> contended_{0};
  std::atomic<uint64_t> wait_us_total_{0};
  std::atomic<uint64_t> wait_us_max_{0};
  std::array<std::atomic<uint64_t>, kMaxStages> wait_by_holder_{};
  LatencyHistogram* wait_hist_;  // registry-owned, stable
};

/// Interns `name` in the process-wide site directory; idempotent, returns a
/// stable pointer. Resolve once at construction time, never on a hot path.
ContentionSite* RegisterContentionSite(std::string_view name);

/// Per-site contention rollup as a JSON array (served at
/// /profile/contention): totals, wait percentiles from the registry
/// histogram, and the per-holder-stage wait breakdown.
std::string ContentionReportJson();

/// Drop-in BasicLockable replacement for a hot std::mutex. Works with
/// std::lock_guard / std::unique_lock. Not recursive, not timed.
class ProfiledMutex {
 public:
  explicit ProfiledMutex(std::string_view site_name)
      : site_(RegisterContentionSite(site_name)) {}

  ProfiledMutex(const ProfiledMutex&) = delete;
  ProfiledMutex& operator=(const ProfiledMutex&) = delete;

  void lock() {
    if (!ContentionProfilingEnabled()) {
      mu_.lock();
      return;
    }
    if (mu_.try_lock()) {
      // Uncontended: publish our stage for future waiters; no clock read.
      holder_stage_.store(CurrentStage(), std::memory_order_relaxed);
      site_->RecordUncontended();
      return;
    }
    LockContended();
  }

  bool try_lock() {
    if (!mu_.try_lock()) return false;
    if (ContentionProfilingEnabled()) {
      holder_stage_.store(CurrentStage(), std::memory_order_relaxed);
      site_->RecordUncontended();
    }
    return true;
  }

  void unlock() {
    // One unconditional relaxed store — cheaper than re-reading the enabled
    // flag, and keeps the holder field correct across mid-hold toggles.
    holder_stage_.store(0, std::memory_order_relaxed);
    mu_.unlock();
  }

 private:
  void LockContended();

  std::mutex mu_;
  /// Stage of the current holder while profiling is on; 0 when free. Read
  /// by contended waiters *before* blocking, so the blame sample reflects
  /// who they actually queued behind.
  std::atomic<uint16_t> holder_stage_{0};
  ContentionSite* site_;
};

}  // namespace tencentrec

#endif  // TENCENTREC_COMMON_PROFILED_MUTEX_H_
