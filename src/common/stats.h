#ifndef TENCENTREC_COMMON_STATS_H_
#define TENCENTREC_COMMON_STATS_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

namespace tencentrec {

/// Streaming mean/min/max/stddev accumulator (Welford's algorithm) used by
/// the evaluation harness to summarize per-day improvements the way Table 1
/// reports avg/min/max.
class RunningStat {
 public:
  void Add(double x) {
    ++n_;
    double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = n_ == 1 ? x : std::min(min_, x);
    max_ = n_ == 1 ? x : std::max(max_, x);
  }

  /// Folds another accumulator in (Chan et al.'s parallel Welford combine),
  /// so per-shard stats merge into a global one without replaying samples —
  /// the aggregation path for sharded workers and snapshot deltas.
  void Merge(const RunningStat& other) {
    if (other.n_ == 0) return;
    if (n_ == 0) {
      *this = other;
      return;
    }
    const int64_t combined = n_ + other.n_;
    const double delta = other.mean_ - mean_;
    m2_ += other.m2_ + delta * delta * static_cast<double>(n_) *
                           static_cast<double>(other.n_) /
                           static_cast<double>(combined);
    mean_ += delta * static_cast<double>(other.n_) /
             static_cast<double>(combined);
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
    n_ = combined;
  }

  int64_t count() const { return n_; }
  double mean() const { return n_ > 0 ? mean_ : 0.0; }
  double min() const { return n_ > 0 ? min_ : 0.0; }
  double max() const { return n_ > 0 ? max_ : 0.0; }
  double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  double stddev() const { return std::sqrt(variance()); }

 private:
  int64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Exact percentile over a sample (copies and sorts; evaluation-path only).
/// `p` is clamped to [0, 1]; a single-element sample returns that element
/// directly, so the interpolation below never reads past the data.
inline double Percentile(std::vector<double> xs, double p) {
  if (xs.empty()) return 0.0;
  if (xs.size() == 1) return xs[0];
  p = std::clamp(p, 0.0, 1.0);
  std::sort(xs.begin(), xs.end());
  double rank = p * static_cast<double>(xs.size() - 1);
  size_t lo = static_cast<size_t>(rank);
  size_t hi = std::min(lo + 1, xs.size() - 1);
  double frac = rank - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

}  // namespace tencentrec

#endif  // TENCENTREC_COMMON_STATS_H_
