#ifndef TENCENTREC_COMMON_TRACE_H_
#define TENCENTREC_COMMON_TRACE_H_

#include <array>
#include <cstdint>
#include <cstring>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/metrics.h"

namespace tencentrec {

/// Sampled per-tuple span tracing — the per-request half of the Fig. 9
/// Monitor, complementing the aggregate histograms in common/metrics.h.
/// Operators of the production system need to answer "where did THIS tuple
/// stall?" across spout → rating → pair → sim → store hops; percentiles
/// cannot, so a small fraction of tuples is sampled at the ingest edge and
/// carries a 64-bit trace id through the topology. Every component hop
/// records one span (name + wall-clock interval) into a process-wide
/// lock-striped ring buffer, exportable as Chrome trace_event JSON
/// (about:tracing / Perfetto) or grouped per-trace JSON (the admin plane's
/// /traces endpoint).
///
/// Cost model: untraced tuples (id 0 — the overwhelming majority) pay one
/// branch per would-be span. Sampling is decided once, at the spout or
/// publish edge, by MaybeStartTrace(); the id then rides the action through
/// the wire codec, so a distributed deployment would sample consistently
/// end to end. Trace ids are instrumentation only: never an input to any
/// algorithm, so event-time determinism is unaffected.

/// 1-in-N sampling rate. 0 disables tracing entirely (MaybeStartTrace
/// returns 0, ScopedSpan is inert). Process-wide, relaxed-atomic.
void SetTraceSampleEvery(uint32_t n);
uint32_t TraceSampleEvery();
inline bool TracingEnabled() { return TraceSampleEvery() != 0; }

/// Edge sampling decision: returns a fresh nonzero trace id for 1 in every
/// `TraceSampleEvery()` calls, 0 otherwise. Thread-safe; ids are unique
/// process-wide for any realistic run length.
uint64_t MaybeStartTrace();

/// The trace id the current thread is working under (0 = untraced).
/// Layers whose APIs cannot thread an id through (e.g. tdstore::Client
/// under a bolt's Execute) read it to attribute their spans.
uint64_t CurrentTraceId();

/// One recorded component hop. Fixed-size (name truncates) so the ring
/// buffer never allocates on the record path.
struct TraceSpan {
  static constexpr size_t kNameCapacity = 48;

  uint64_t trace_id = 0;
  uint64_t start_micros = 0;  ///< MonoMicros at span open
  uint64_t duration_micros = 0;
  uint32_t tid = 0;  ///< small per-thread index, stable for a thread's life

  char name[kNameCapacity] = {};

  void SetName(std::string_view n) {
    const size_t len = n.size() < kNameCapacity - 1 ? n.size()
                                                    : kNameCapacity - 1;
    std::memcpy(name, n.data(), len);
    name[len] = '\0';
  }
};

/// Lock-striped fixed-capacity span ring buffer. Writers take one stripe
/// mutex (stripes are per-thread, so sampled hops on different workers
/// never contend); when a stripe wraps, its oldest spans are overwritten —
/// the buffer always holds the most recent activity.
class Tracer {
 public:
  static constexpr size_t kStripes = 8;

  struct Options {
    /// Total span capacity, split evenly across stripes.
    size_t capacity = 8192;
  };

  /// The process-wide tracer every ScopedSpan records into.
  static Tracer& Default();

  Tracer() : Tracer(Options()) {}
  explicit Tracer(Options options);

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  void Record(uint64_t trace_id, std::string_view name, uint64_t start_micros,
              uint64_t duration_micros);

  /// Merged point-in-time copy of every live span, ordered by start time.
  std::vector<TraceSpan> Spans() const;

  /// The most recently recorded span whose name equals `name`, if any —
  /// the watchdog's "where was this component last seen alive".
  bool LastSpanNamed(std::string_view name, TraceSpan* out) const;

  /// Drops all recorded spans (counters keep accumulating).
  void Clear();

  /// Total spans ever recorded (including overwritten ones).
  uint64_t total_recorded() const;
  size_t capacity() const { return capacity_; }

 private:
  struct alignas(64) Stripe {
    mutable std::mutex mu;
    std::vector<TraceSpan> ring;
    size_t next = 0;
    size_t used = 0;
    uint64_t recorded = 0;
  };

  size_t capacity_;
  std::array<Stripe, kStripes> stripes_;
};

/// RAII span: opens at construction, records into Tracer::Default() at
/// scope exit, and publishes `trace_id` as the thread's current trace id
/// for the duration (restoring the previous one on exit) so nested layers
/// attribute their spans to the same trace. Inert when trace_id == 0 or
/// tracing is disabled: one branch, no clock read.
///
/// `name` must outlive the scope (string literals / member strings).
class ScopedSpan {
 public:
  ScopedSpan(uint64_t trace_id, std::string_view name);
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  uint64_t trace_id_;
  std::string_view name_;
  uint64_t start_;
  uint64_t saved_context_ = 0;
};

/// Publishes `trace_id` as the thread's current trace id without recording
/// a span of its own — for call sites that only need downstream layers
/// (e.g. store clients) to attribute their spans.
class TraceContextScope {
 public:
  explicit TraceContextScope(uint64_t trace_id);
  ~TraceContextScope();

  TraceContextScope(const TraceContextScope&) = delete;
  TraceContextScope& operator=(const TraceContextScope&) = delete;

 private:
  uint64_t saved_ = 0;
  bool active_ = false;
};

/// Chrome trace_event JSON (array format): one "ph":"X" complete event per
/// span, ts/dur in microseconds — loadable in about:tracing / Perfetto.
std::string ExportChromeTrace(const std::vector<TraceSpan>& spans);

/// Spans grouped per trace id, most recent trace first, capped at
/// `max_traces`: {"traces":[{"trace_id":...,"spans":[...]}, ...]}.
std::string ExportTracesJson(const std::vector<TraceSpan>& spans,
                             size_t max_traces = 64);

}  // namespace tencentrec

#endif  // TENCENTREC_COMMON_TRACE_H_
