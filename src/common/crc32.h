#ifndef TENCENTREC_COMMON_CRC32_H_
#define TENCENTREC_COMMON_CRC32_H_

#include <cstdint>
#include <cstddef>
#include <string_view>

namespace tencentrec {

/// CRC-32 (IEEE polynomial, reflected, table-driven). Guards every record in
/// the TDAccess segment logs and the TDStore file engine so torn or
/// corrupted writes surface as Status::Corruption instead of silent bad data.
uint32_t Crc32(const void* data, size_t len, uint32_t seed = 0);

inline uint32_t Crc32(std::string_view s, uint32_t seed = 0) {
  return Crc32(s.data(), s.size(), seed);
}

}  // namespace tencentrec

#endif  // TENCENTREC_COMMON_CRC32_H_
