#include "common/status.h"

namespace tencentrec {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kTimedOut:
      return "TimedOut";
    case StatusCode::kAborted:
      return "Aborted";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace tencentrec
