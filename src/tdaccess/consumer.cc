#include "tdaccess/consumer.h"

#include <algorithm>

namespace tencentrec::tdaccess {

Consumer::Consumer(Cluster* cluster, std::string topic, std::string group,
                   std::string member_id)
    : cluster_(cluster),
      topic_(std::move(topic)),
      group_(std::move(group)),
      member_id_(std::move(member_id)) {
  if (MetricsEnabled()) {
    auto& reg = MetricRegistry::Default();
    const std::string scope = "tdaccess." + topic_ + "." + group_;
    lag_gauge_ = reg.GetGauge(scope + ".lag");
    consumed_ = reg.GetCounter(scope + ".consumed");
    poll_us_ = reg.GetHistogram(scope + ".poll_us");
  }
}

Consumer::~Consumer() {
  if (subscribed_) {
    cluster_->master().LeaveGroup(topic_, group_, member_id_);
  }
}

Status Consumer::Subscribe() {
  if (subscribed_) return Status::FailedPrecondition("already subscribed");
  auto route = cluster_->master().GetRoute(topic_);
  if (!route.ok()) return route.status();
  route_ = std::move(route).value();
  auto assigned = cluster_->master().JoinGroup(topic_, group_, member_id_);
  if (!assigned.ok()) return assigned.status();
  subscribed_ = true;
  assigned_ = std::move(assigned).value();
  for (int p : assigned_) {
    auto off = cluster_->master().FetchOffset(topic_, group_, p);
    if (!off.ok()) return off.status();
    positions_[p] = *off;
  }
  return Status::OK();
}

Status Consumer::SyncAssignment() {
  auto assigned = cluster_->master().GetAssignment(topic_, group_, member_id_);
  if (!assigned.ok()) return assigned.status();
  if (*assigned == assigned_) return Status::OK();
  assigned_ = std::move(assigned).value();
  std::map<int, Offset> new_positions;
  for (int p : assigned_) {
    auto it = positions_.find(p);
    if (it != positions_.end()) {
      new_positions[p] = it->second;
    } else {
      auto off = cluster_->master().FetchOffset(topic_, group_, p);
      if (!off.ok()) return off.status();
      new_positions[p] = *off;
    }
  }
  positions_ = std::move(new_positions);
  return Status::OK();
}

Status Consumer::SeekToBeginning() {
  if (!subscribed_) return Status::FailedPrecondition("not subscribed");
  TR_RETURN_IF_ERROR(SyncAssignment());
  for (auto& [partition, pos] : positions_) pos = 0;
  return Status::OK();
}

Result<std::vector<ConsumedMessage>> Consumer::Poll(size_t max_messages) {
  if (!subscribed_) return Status::FailedPrecondition("not subscribed");
  ScopedLatencyTimer timer(poll_us_);
  TR_RETURN_IF_ERROR(SyncAssignment());
  std::vector<ConsumedMessage> out;
  for (int p : assigned_) {
    if (out.size() >= max_messages) break;
    const PartitionAssignment* pa = nullptr;
    for (const auto& cand : route_.partitions) {
      if (cand.partition == p) {
        pa = &cand;
        break;
      }
    }
    if (pa == nullptr) return Status::Internal("assignment not in route");
    DataServer* server = cluster_->data_server(pa->server_id);
    if (server == nullptr) return Status::Internal("route names bad server");
    Offset& pos = positions_[p];
    auto batch = server->Fetch(topic_, p, pos, max_messages - out.size());
    if (!batch.ok()) {
      if (batch.status().IsUnavailable()) continue;  // skip downed server
      return batch.status();
    }
    for (auto& msg : *batch) {
      ConsumedMessage cm;
      cm.message = std::move(msg);
      cm.partition = p;
      cm.offset = pos++;
      out.push_back(std::move(cm));
    }
  }
  polls_.fetch_add(1, std::memory_order_relaxed);
  messages_consumed_.fetch_add(out.size(), std::memory_order_relaxed);
  if (consumed_ != nullptr) consumed_->Add(out.size());
  // Lag after this poll = how stale the pipeline is if it stopped now.
  if (lag_gauge_ != nullptr) {
    auto lag = Lag();
    if (lag.ok()) lag_gauge_->Set(*lag);
  }
  return out;
}

Status Consumer::Commit() {
  if (!subscribed_) return Status::FailedPrecondition("not subscribed");
  for (const auto& [partition, pos] : positions_) {
    TR_RETURN_IF_ERROR(
        cluster_->master().CommitOffset(topic_, group_, partition, pos));
  }
  return Status::OK();
}

Result<int64_t> Consumer::Lag() const {
  if (!subscribed_) return Status::FailedPrecondition("not subscribed");
  int64_t lag = 0;
  for (int p : assigned_) {
    const PartitionAssignment* pa = nullptr;
    for (const auto& cand : route_.partitions) {
      if (cand.partition == p) {
        pa = &cand;
        break;
      }
    }
    if (pa == nullptr) return Status::Internal("assignment not in route");
    DataServer* server = cluster_->data_server(pa->server_id);
    auto end = server->EndOffset(topic_, p);
    if (!end.ok()) return end.status();
    auto it = positions_.find(p);
    Offset pos = it == positions_.end() ? 0 : it->second;
    lag += *end - pos;
  }
  return lag;
}

}  // namespace tencentrec::tdaccess
