#ifndef TENCENTREC_TDACCESS_MESSAGE_H_
#define TENCENTREC_TDACCESS_MESSAGE_H_

#include <cstdint>
#include <string>

#include "common/clock.h"

namespace tencentrec::tdaccess {

/// Position of a message within one partition's log. Offsets are dense and
/// start at zero, so consumers can replay history ("the offline computation
/// requiring the historical data", §3.2) by seeking to any offset.
using Offset = int64_t;

/// One record on the bus. `key` drives partitioning (same key -> same
/// partition -> total order for that key); `payload` is opaque bytes.
struct Message {
  std::string key;
  std::string payload;
  EventTime timestamp = 0;
};

/// A message as returned to consumers, annotated with its provenance.
struct ConsumedMessage {
  Message message;
  int partition = -1;
  Offset offset = -1;
};

}  // namespace tencentrec::tdaccess

#endif  // TENCENTREC_TDACCESS_MESSAGE_H_
