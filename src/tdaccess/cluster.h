#ifndef TENCENTREC_TDACCESS_CLUSTER_H_
#define TENCENTREC_TDACCESS_CLUSTER_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "tdaccess/data_server.h"
#include "tdaccess/master.h"

namespace tencentrec::tdaccess {

/// An in-process TDAccess deployment (Fig. 2): N share-nothing data servers
/// plus an active/standby master pair. Producers and consumers take a
/// Cluster* and, like the paper's clients, consult the master only for
/// routes and group coordination — data traffic goes straight to the data
/// servers.
class Cluster {
 public:
  struct Options {
    int num_data_servers = 2;
    /// Directory for partition logs; empty = memory-only.
    std::string data_dir;
  };

  explicit Cluster(const Options& options);

  /// The currently active master (standby after a failover).
  MasterServer& master() { return *masters_[active_master_]; }
  const MasterServer& master() const { return *masters_[active_master_]; }

  DataServer* data_server(int server_id);
  int num_data_servers() const { return static_cast<int>(servers_.size()); }

  /// Failure injection: kills the active master; the standby takes over with
  /// identical state (fail-fast + replicated state, §3.1/§3.2).
  Status FailActiveMaster();

 private:
  std::vector<std::unique_ptr<DataServer>> servers_;
  std::unique_ptr<MasterServer> masters_[2];
  int active_master_ = 0;
  bool master_failed_once_ = false;
};

}  // namespace tencentrec::tdaccess

#endif  // TENCENTREC_TDACCESS_CLUSTER_H_
