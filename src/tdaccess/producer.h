#ifndef TENCENTREC_TDACCESS_PRODUCER_H_
#define TENCENTREC_TDACCESS_PRODUCER_H_

#include <string>

#include "common/hash.h"
#include "common/status.h"
#include "tdaccess/cluster.h"

namespace tencentrec::tdaccess {

/// Publishes messages to one topic. Fetches the route from the master once,
/// then talks to data servers directly; keyed messages go to
/// hash(key) % partitions, un-keyed messages round-robin.
class Producer {
 public:
  Producer(Cluster* cluster, std::string topic);

  /// Sends one message. Refreshes the route and retries once on
  /// Unavailable (e.g. after the cluster recovered a data server).
  Status Send(const Message& msg);

  Status Send(std::string key, std::string payload, EventTime ts) {
    Message m;
    m.key = std::move(key);
    m.payload = std::move(payload);
    m.timestamp = ts;
    return Send(m);
  }

  /// Messages successfully appended so far.
  int64_t sent() const { return sent_; }

 private:
  Status RefreshRoute();

  Cluster* cluster_;
  std::string topic_;
  TopicRoute route_;
  bool have_route_ = false;
  uint64_t round_robin_ = 0;
  int64_t sent_ = 0;
};

}  // namespace tencentrec::tdaccess

#endif  // TENCENTREC_TDACCESS_PRODUCER_H_
