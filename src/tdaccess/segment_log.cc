#include "tdaccess/segment_log.h"

#include <unistd.h>

#include <cstring>

namespace tencentrec::tdaccess {

namespace {

// File header identifying a TDAccess segment log ("TDAL", version 1).
constexpr uint32_t kMagic = 0x4c414454;
constexpr uint32_t kVersion = 1;

// Frame payload: [u32 key_len][u32 payload_len][i64 ts][key][payload],
// little-endian (common/recordio frames it with [crc][len]).
constexpr size_t kBodyHeaderSize = 4 + 4 + 8;
constexpr size_t kMaxKeyLen = 1u << 24;
constexpr size_t kMaxPayloadLen = 1u << 28;

std::string EncodeRecord(const Message& msg) {
  std::string body;
  body.reserve(kBodyHeaderSize + msg.key.size() + msg.payload.size());
  PutFixed32LE(&body, static_cast<uint32_t>(msg.key.size()));
  PutFixed32LE(&body, static_cast<uint32_t>(msg.payload.size()));
  PutFixed64LE(&body, static_cast<uint64_t>(msg.timestamp));
  body += msg.key;
  body += msg.payload;
  return body;
}

Result<Message> DecodeRecord(const std::string& body) {
  if (body.size() < kBodyHeaderSize) {
    return Status::Corruption("segment record too short");
  }
  const uint32_t key_len = GetFixed32LE(body.data());
  const uint32_t payload_len = GetFixed32LE(body.data() + 4);
  if (key_len > kMaxKeyLen || payload_len > kMaxPayloadLen ||
      body.size() != kBodyHeaderSize + key_len + payload_len) {
    return Status::Corruption("segment record length mismatch");
  }
  Message msg;
  msg.timestamp = static_cast<EventTime>(GetFixed64LE(body.data() + 8));
  msg.key = body.substr(kBodyHeaderSize, key_len);
  msg.payload = body.substr(kBodyHeaderSize + key_len);
  return msg;
}

}  // namespace

SegmentLog::~SegmentLog() { Close(); }

Status SegmentLog::Open(const std::string& path, SyncPolicy sync) {
  std::lock_guard<std::mutex> lock(mu_);
  if (open_) return Status::FailedPrecondition("log already open");
  open_ = true;
  path_ = path;
  // Group-commit cadence belongs to the WAL layer; the broker log has no
  // interval clock, so the nearest meaningful policy applies.
  sync_ = sync == SyncPolicy::kGroupCommit ? SyncPolicy::kFlushEveryAppend
                                           : sync;
  records_.clear();
  tail_bytes_ = 0;
  if (path_.empty()) return Status::OK();  // memory-only

  // Recover any existing records first.
  std::FILE* existing = std::fopen(path_.c_str(), "rb");
  long valid_bytes = 0;
  bool has_header = false;
  if (existing != nullptr) {
    Status header = ReadLogHeader(existing, kMagic, kVersion, path_);
    if (header.IsCorruption()) {
      std::fclose(existing);
      open_ = false;
      return header;  // unknown format: refuse rather than clobber
    }
    if (header.ok()) {
      has_header = true;
      valid_bytes = static_cast<long>(kLogHeaderSize);
      while (true) {
        auto frame = ReadFrame(existing, kBodyHeaderSize + kMaxKeyLen +
                                             kMaxPayloadLen,
                               path_);
        if (!frame.ok()) break;  // clean EOF or torn/corrupt tail
        auto msg = DecodeRecord(*frame);
        if (!msg.ok()) break;  // framed garbage: end of valid prefix
        records_.push_back(std::move(msg).value());
        valid_bytes += static_cast<long>(kFrameOverhead + frame->size());
      }
    }
    // A header-less stub (file shorter than the header) is a torn create:
    // valid_bytes stays 0 and the reopen below rewrites it from scratch.
    std::fclose(existing);
  }

  // Reopen for appending. The torn tail is truncated OFF THE DISK, not just
  // seeked past: a seek alone leaves the stale bytes in place, where a
  // crash before the next append overwrites them lets them survive open
  // cycles and — after a short append lands in front of them — potentially
  // mis-frame as a valid-looking record.
  file_ = std::fopen(path_.c_str(), existing != nullptr ? "rb+" : "wb+");
  if (file_ == nullptr) {
    open_ = false;
    return Status::IOError("cannot open " + path_);
  }
  if (::ftruncate(::fileno(file_), valid_bytes) != 0) {
    std::fclose(file_);
    file_ = nullptr;
    open_ = false;
    return Status::IOError("cannot truncate " + path_);
  }
  if (!has_header) {
    if (std::fseek(file_, 0, SEEK_SET) != 0 ||
        !WriteLogHeader(file_, kMagic, kVersion, path_).ok()) {
      std::fclose(file_);
      file_ = nullptr;
      open_ = false;
      return Status::IOError("cannot write header of " + path_);
    }
    valid_bytes = static_cast<long>(kLogHeaderSize);
  } else if (std::fseek(file_, valid_bytes, SEEK_SET) != 0) {
    std::fclose(file_);
    file_ = nullptr;
    open_ = false;
    return Status::IOError("cannot seek " + path_);
  }
  tail_bytes_ = valid_bytes;
  return Status::OK();
}

Result<Offset> SegmentLog::Append(const Message& msg) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!path_.empty()) {
    if (file_ == nullptr) return Status::FailedPrecondition("log not open");
    auto written = AppendFrame(file_, EncodeRecord(msg), path_);
    if (!written.ok()) {
      // Roll the torn record back off the disk so the file ends at the last
      // good boundary; leaving it mid-file would poison the next recovery.
      (void)std::fflush(file_);
      (void)::ftruncate(::fileno(file_), tail_bytes_);
      (void)std::fseek(file_, tail_bytes_, SEEK_SET);
      return written.status();
    }
    tail_bytes_ += static_cast<long>(*written);
    TR_RETURN_IF_ERROR(SyncFile(file_, sync_, path_));
  }
  records_.push_back(msg);
  return static_cast<Offset>(records_.size()) - 1;
}

Result<std::vector<Message>> SegmentLog::Read(Offset from,
                                              size_t max_records) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (from < 0) return Status::InvalidArgument("negative offset");
  std::vector<Message> out;
  for (size_t i = static_cast<size_t>(from);
       i < records_.size() && out.size() < max_records; ++i) {
    out.push_back(records_[i]);
  }
  return out;
}

Offset SegmentLog::EndOffset() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<Offset>(records_.size());
}

Status SegmentLog::Close() {
  std::lock_guard<std::mutex> lock(mu_);
  open_ = false;
  if (file_ != nullptr) {
    std::fflush(file_);
    std::fclose(file_);
    file_ = nullptr;
  }
  return Status::OK();
}

}  // namespace tencentrec::tdaccess
