#include "tdaccess/segment_log.h"

#include <cstring>

#include "common/crc32.h"

namespace tencentrec::tdaccess {

namespace {

// On-disk record: [u32 crc][u32 key_len][u32 payload_len][i64 ts][key][payload]
// crc covers everything after the crc field.
constexpr size_t kHeaderSize = 4 + 4 + 4 + 8;

void PutU32(std::string* buf, uint32_t v) {
  char b[4];
  std::memcpy(b, &v, 4);
  buf->append(b, 4);
}

void PutI64(std::string* buf, int64_t v) {
  char b[8];
  std::memcpy(b, &v, 8);
  buf->append(b, 8);
}

uint32_t GetU32(const char* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}

int64_t GetI64(const char* p) {
  int64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

std::string EncodeRecord(const Message& msg) {
  std::string body;
  PutU32(&body, static_cast<uint32_t>(msg.key.size()));
  PutU32(&body, static_cast<uint32_t>(msg.payload.size()));
  PutI64(&body, msg.timestamp);
  body += msg.key;
  body += msg.payload;
  std::string out;
  PutU32(&out, Crc32(body));
  out += body;
  return out;
}

}  // namespace

SegmentLog::~SegmentLog() { Close(); }

Status SegmentLog::Open(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  if (open_) return Status::FailedPrecondition("log already open");
  open_ = true;
  path_ = path;
  records_.clear();
  if (path_.empty()) return Status::OK();  // memory-only

  // Recover any existing records first.
  std::FILE* existing = std::fopen(path_.c_str(), "rb");
  long valid_bytes = 0;
  if (existing != nullptr) {
    std::string header(kHeaderSize, '\0');
    while (true) {
      size_t n = std::fread(header.data(), 1, kHeaderSize, existing);
      if (n != kHeaderSize) break;  // clean end or torn header
      uint32_t crc = GetU32(header.data());
      uint32_t key_len = GetU32(header.data() + 4);
      uint32_t payload_len = GetU32(header.data() + 8);
      int64_t ts = GetI64(header.data() + 12);
      if (key_len > (1u << 24) || payload_len > (1u << 28)) break;  // insane
      std::string data(static_cast<size_t>(key_len) + payload_len, '\0');
      if (std::fread(data.data(), 1, data.size(), existing) != data.size()) {
        break;  // torn record body
      }
      std::string body = header.substr(4);
      body += data;
      if (Crc32(body) != crc) break;  // corrupted tail
      Message msg;
      msg.key = data.substr(0, key_len);
      msg.payload = data.substr(key_len);
      msg.timestamp = ts;
      records_.push_back(std::move(msg));
      valid_bytes += static_cast<long>(kHeaderSize + data.size());
    }
    std::fclose(existing);
  }

  // Reopen for appending, truncating any torn tail.
  file_ = std::fopen(path_.c_str(), existing != nullptr ? "rb+" : "wb+");
  if (file_ == nullptr) return Status::IOError("cannot open " + path_);
  if (std::fseek(file_, valid_bytes, SEEK_SET) != 0) {
    std::fclose(file_);
    file_ = nullptr;
    return Status::IOError("cannot seek " + path_);
  }
  return Status::OK();
}

Result<Offset> SegmentLog::Append(const Message& msg) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!path_.empty()) {
    if (file_ == nullptr) return Status::FailedPrecondition("log not open");
    std::string record = EncodeRecord(msg);
    if (std::fwrite(record.data(), 1, record.size(), file_) != record.size()) {
      return Status::IOError("append failed on " + path_);
    }
  }
  records_.push_back(msg);
  return static_cast<Offset>(records_.size()) - 1;
}

Result<std::vector<Message>> SegmentLog::Read(Offset from,
                                              size_t max_records) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (from < 0) return Status::InvalidArgument("negative offset");
  std::vector<Message> out;
  for (size_t i = static_cast<size_t>(from);
       i < records_.size() && out.size() < max_records; ++i) {
    out.push_back(records_[i]);
  }
  return out;
}

Offset SegmentLog::EndOffset() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<Offset>(records_.size());
}

Status SegmentLog::Close() {
  std::lock_guard<std::mutex> lock(mu_);
  open_ = false;
  if (file_ != nullptr) {
    std::fflush(file_);
    std::fclose(file_);
    file_ = nullptr;
  }
  return Status::OK();
}

}  // namespace tencentrec::tdaccess
