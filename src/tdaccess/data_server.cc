#include "tdaccess/data_server.h"

namespace tencentrec::tdaccess {

DataServer::DataServer(int server_id, std::string data_dir)
    : server_id_(server_id), data_dir_(std::move(data_dir)) {}

Status DataServer::CreatePartition(const std::string& topic, int partition) {
  if (down_.load()) return Status::Unavailable("data server down");
  std::lock_guard<std::mutex> lock(mu_);
  auto key = std::make_pair(topic, partition);
  if (logs_.count(key) > 0) {
    return Status::AlreadyExists("partition exists: " + topic + "/" +
                                 std::to_string(partition));
  }
  auto log = std::make_unique<SegmentLog>();
  std::string path;
  if (!data_dir_.empty()) {
    path = data_dir_ + "/" + topic + "." + std::to_string(partition) + ".s" +
           std::to_string(server_id_) + ".log";
  }
  // Flush-per-append: a record the broker acknowledged must survive broker
  // process death (fsync-grade durability is the TDStore WAL's job; the
  // stream tier's contract is replayability across restarts, §3.2).
  TR_RETURN_IF_ERROR(log->Open(path, SyncPolicy::kFlushEveryAppend));
  logs_[key] = std::move(log);
  return Status::OK();
}

SegmentLog* DataServer::FindLog(const std::string& topic,
                                int partition) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = logs_.find(std::make_pair(topic, partition));
  return it == logs_.end() ? nullptr : it->second.get();
}

Result<Offset> DataServer::Append(const std::string& topic, int partition,
                                  const Message& msg) {
  if (down_.load()) return Status::Unavailable("data server down");
  SegmentLog* log = FindLog(topic, partition);
  if (log == nullptr) {
    return Status::NotFound("no partition " + topic + "/" +
                            std::to_string(partition));
  }
  return log->Append(msg);
}

Result<std::vector<Message>> DataServer::Fetch(const std::string& topic,
                                               int partition, Offset from,
                                               size_t max_records) const {
  if (down_.load()) return Status::Unavailable("data server down");
  SegmentLog* log = FindLog(topic, partition);
  if (log == nullptr) {
    return Status::NotFound("no partition " + topic + "/" +
                            std::to_string(partition));
  }
  return log->Read(from, max_records);
}

Result<Offset> DataServer::EndOffset(const std::string& topic,
                                     int partition) const {
  if (down_.load()) return Status::Unavailable("data server down");
  SegmentLog* log = FindLog(topic, partition);
  if (log == nullptr) {
    return Status::NotFound("no partition " + topic + "/" +
                            std::to_string(partition));
  }
  return log->EndOffset();
}

}  // namespace tencentrec::tdaccess
