#include "tdaccess/cluster.h"

namespace tencentrec::tdaccess {

Cluster::Cluster(const Options& options) {
  masters_[0] = std::make_unique<MasterServer>();
  masters_[1] = std::make_unique<MasterServer>();
  masters_[0]->SetStandby(masters_[1].get());
  int n = options.num_data_servers < 1 ? 1 : options.num_data_servers;
  for (int i = 0; i < n; ++i) {
    servers_.push_back(std::make_unique<DataServer>(i, options.data_dir));
    masters_[0]->AddDataServer(servers_.back().get());
  }
}

DataServer* Cluster::data_server(int server_id) {
  if (server_id < 0 || server_id >= static_cast<int>(servers_.size())) {
    return nullptr;
  }
  return servers_[static_cast<size_t>(server_id)].get();
}

Status Cluster::FailActiveMaster() {
  if (master_failed_once_) {
    return Status::FailedPrecondition("no standby left");
  }
  master_failed_once_ = true;
  // The standby stops mirroring (its peer is gone) and becomes active.
  masters_[1]->SetStandby(nullptr);
  active_master_ = 1;
  return Status::OK();
}

}  // namespace tencentrec::tdaccess
