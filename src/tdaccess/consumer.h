#ifndef TENCENTREC_TDACCESS_CONSUMER_H_
#define TENCENTREC_TDACCESS_CONSUMER_H_

#include <atomic>
#include <map>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"
#include "tdaccess/cluster.h"

namespace tencentrec::tdaccess {

/// A consumer-group member. On Subscribe() the master assigns it a share of
/// the topic's partitions; Poll() then drains those partitions in order,
/// starting from the group's last committed offsets (so a restarted
/// consumer resumes, and a brand-new group can replay the full history the
/// data servers cached on disk).
class Consumer {
 public:
  Consumer(Cluster* cluster, std::string topic, std::string group,
           std::string member_id);
  ~Consumer();

  Consumer(const Consumer&) = delete;
  Consumer& operator=(const Consumer&) = delete;

  /// Joins the group and positions at the committed offsets.
  Status Subscribe();

  /// Repositions all assigned partitions at offset 0 (historical replay).
  Status SeekToBeginning();

  /// Fetches up to `max_messages` across assigned partitions. Empty result
  /// means caught up.
  Result<std::vector<ConsumedMessage>> Poll(size_t max_messages);

  /// Persists the current positions to the master for the group.
  Status Commit();

  /// Total messages this member has not yet consumed (end - position summed
  /// over assigned partitions).
  Result<int64_t> Lag() const;

  const std::vector<int>& assigned_partitions() const { return assigned_; }

  /// Monotone progress counters, readable from any thread (the stall
  /// watchdog samples them while the owning spout keeps polling): polls()
  /// advances even on empty fetches, messages_consumed() only on delivery.
  uint64_t polls() const { return polls_.load(std::memory_order_relaxed); }
  uint64_t messages_consumed() const {
    return messages_consumed_.load(std::memory_order_relaxed);
  }

 private:
  /// Re-reads the assignment (after a rebalance) and seeds positions for
  /// newly acquired partitions from committed offsets.
  Status SyncAssignment();

  Cluster* cluster_;
  std::string topic_;
  std::string group_;
  std::string member_id_;
  bool subscribed_ = false;
  std::vector<int> assigned_;
  std::map<int, Offset> positions_;
  TopicRoute route_;

  /// Staleness instruments, scoped per (topic, group) so multiple pipelines
  /// reading the same bus stay distinguishable. Null when metrics are off.
  Gauge* lag_gauge_ = nullptr;
  Counter* consumed_ = nullptr;
  LatencyHistogram* poll_us_ = nullptr;

  std::atomic<uint64_t> polls_{0};
  std::atomic<uint64_t> messages_consumed_{0};
};

}  // namespace tencentrec::tdaccess

#endif  // TENCENTREC_TDACCESS_CONSUMER_H_
