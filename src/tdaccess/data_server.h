#ifndef TENCENTREC_TDACCESS_DATA_SERVER_H_
#define TENCENTREC_TDACCESS_DATA_SERVER_H_

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "tdaccess/message.h"
#include "tdaccess/segment_log.h"

namespace tencentrec::tdaccess {

/// A TDAccess data server: caches partition data (on disk when a data
/// directory is configured) and serves publish/subscribe traffic for the
/// partitions the master assigned to it. Data servers share nothing with
/// each other (§3.2), which is what makes the tier linearly scalable.
class DataServer {
 public:
  /// `server_id` names the server; `data_dir` empty = memory-only logs.
  DataServer(int server_id, std::string data_dir);

  int server_id() const { return server_id_; }

  Status CreatePartition(const std::string& topic, int partition);

  Result<Offset> Append(const std::string& topic, int partition,
                        const Message& msg);

  Result<std::vector<Message>> Fetch(const std::string& topic, int partition,
                                     Offset from, size_t max_records) const;

  Result<Offset> EndOffset(const std::string& topic, int partition) const;

  /// Failure injection: while down, every call returns Unavailable.
  void SetDown(bool down) { down_.store(down); }
  bool IsDown() const { return down_.load(); }

 private:
  SegmentLog* FindLog(const std::string& topic, int partition) const;

  const int server_id_;
  const std::string data_dir_;
  std::atomic<bool> down_{false};
  mutable std::mutex mu_;
  std::map<std::pair<std::string, int>, std::unique_ptr<SegmentLog>> logs_;
};

}  // namespace tencentrec::tdaccess

#endif  // TENCENTREC_TDACCESS_DATA_SERVER_H_
