#ifndef TENCENTREC_TDACCESS_MASTER_H_
#define TENCENTREC_TDACCESS_MASTER_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "tdaccess/data_server.h"

namespace tencentrec::tdaccess {

/// Where one partition of a topic lives.
struct PartitionAssignment {
  int partition = -1;
  int server_id = -1;
};

/// Route for a whole topic, handed to producers/consumers by the master so
/// they can then talk to data servers directly (§3.2: "the producer or
/// consumer cluster can communicate with these data servers directly").
struct TopicRoute {
  std::string topic;
  std::vector<PartitionAssignment> partitions;
};

/// The master server: tracks data servers, balances partitions across them
/// at topic creation, stores consumer-group offsets, and assigns partitions
/// to the members of a consumer group.
///
/// Deployed as an active/standby pair (see Cluster): every mutation on the
/// active is synchronously mirrored to the standby, so promotion loses
/// nothing.
class MasterServer {
 public:
  MasterServer() = default;

  /// Registers a data server the master may assign partitions to.
  void AddDataServer(DataServer* server);

  /// Creates `topic` with `num_partitions`, balancing partitions round-robin
  /// across data servers (partition granularity, §3.2).
  Status CreateTopic(const std::string& topic, int num_partitions);

  Result<TopicRoute> GetRoute(const std::string& topic) const;

  /// --- consumer-group coordination ---

  /// Adds a member and rebalances the group's partition assignment. Returns
  /// this member's assigned partitions.
  Result<std::vector<int>> JoinGroup(const std::string& topic,
                                     const std::string& group,
                                     const std::string& member);
  Status LeaveGroup(const std::string& topic, const std::string& group,
                    const std::string& member);
  /// Partitions currently assigned to `member` (rebalance may have changed
  /// them since Join).
  Result<std::vector<int>> GetAssignment(const std::string& topic,
                                         const std::string& group,
                                         const std::string& member) const;

  Status CommitOffset(const std::string& topic, const std::string& group,
                      int partition, Offset offset);
  /// Returns 0 when the group has no committed offset for the partition.
  Result<Offset> FetchOffset(const std::string& topic,
                             const std::string& group, int partition) const;

  /// Mirrors every mutation into `standby` (active/standby replication).
  void SetStandby(MasterServer* standby) { standby_ = standby; }

 private:
  void Rebalance(const std::string& topic, const std::string& group);

  mutable std::mutex mu_;
  std::vector<DataServer*> servers_;
  std::map<std::string, TopicRoute> topics_;
  /// (topic, group) -> members in join order.
  std::map<std::pair<std::string, std::string>, std::vector<std::string>>
      groups_;
  /// (topic, group, partition) -> committed offset.
  std::map<std::tuple<std::string, std::string, int>, Offset> offsets_;
  /// (topic, group, member) -> assigned partitions.
  std::map<std::tuple<std::string, std::string, std::string>, std::vector<int>>
      assignments_;
  MasterServer* standby_ = nullptr;
};

}  // namespace tencentrec::tdaccess

#endif  // TENCENTREC_TDACCESS_MASTER_H_
