#ifndef TENCENTREC_TDACCESS_SEGMENT_LOG_H_
#define TENCENTREC_TDACCESS_SEGMENT_LOG_H_

#include <cstdio>
#include <mutex>
#include <string>
#include <vector>

#include "common/recordio.h"
#include "common/status.h"
#include "tdaccess/message.h"

namespace tencentrec::tdaccess {

/// Append-only record log backing one partition.
///
/// TDAccess differs from a classic message queue in that it *stores* the
/// data (to serve late/offline consumers and survive consumer absence,
/// §3.2), relying on sequential I/O for speed. This log appends
/// length-prefixed CRC-checked records to a file and keeps an in-memory
/// offset index for random reads; Open() on an existing file replays it and
/// truncates a torn tail — physically (ftruncate), so stale torn bytes can
/// never survive an open/close cycle and later mis-frame as a record.
///
/// On-disk format (common/recordio): an 8-byte `[magic][version]` file
/// header, then per record a crc frame whose payload is
/// `[u32 key_len][u32 payload_len][i64 ts][key][payload]`, all integers
/// explicit little-endian so logs are portable across hosts.
///
/// With an empty path the log is memory-only (used by unit tests and
/// benchmarks that don't exercise durability).
class SegmentLog {
 public:
  SegmentLog() = default;
  ~SegmentLog();

  SegmentLog(const SegmentLog&) = delete;
  SegmentLog& operator=(const SegmentLog&) = delete;

  /// Opens (creating or recovering) the log. `path` empty = memory-only.
  /// `sync` decides what each Append pays for durability; the tdaccess
  /// broker opens its partition logs with kFlushEveryAppend so an appended
  /// record survives process death, not just Close(). kGroupCommit is
  /// treated as kFlushEveryAppend here (the WAL owns group-commit cadence).
  Status Open(const std::string& path,
              SyncPolicy sync = SyncPolicy::kNone);

  /// Appends and returns the record's offset. A short write truncates the
  /// file back to the last good record boundary before reporting the error,
  /// so a failed append never leaves a torn record mid-file.
  Result<Offset> Append(const Message& msg);

  /// Reads up to `max_records` starting at `from` (inclusive). Returns fewer
  /// (possibly zero) records at end of log.
  Result<std::vector<Message>> Read(Offset from, size_t max_records) const;

  /// One past the last appended offset.
  Offset EndOffset() const;

  Status Close();

 private:
  mutable std::mutex mu_;
  bool open_ = false;
  std::string path_;
  SyncPolicy sync_ = SyncPolicy::kNone;
  std::FILE* file_ = nullptr;
  /// Byte offset of the end of the last durable record (== file size after
  /// Open/Append); short appends truncate back to it.
  long tail_bytes_ = 0;
  // In-memory copy of all records. The file is the durable story; this is
  // the "cache in disk ... sequential operations" trade made readable: reads
  // never touch the file after recovery.
  std::vector<Message> records_;
};

}  // namespace tencentrec::tdaccess

#endif  // TENCENTREC_TDACCESS_SEGMENT_LOG_H_
