#ifndef TENCENTREC_TDACCESS_SEGMENT_LOG_H_
#define TENCENTREC_TDACCESS_SEGMENT_LOG_H_

#include <cstdio>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "tdaccess/message.h"

namespace tencentrec::tdaccess {

/// Append-only record log backing one partition.
///
/// TDAccess differs from a classic message queue in that it *stores* the
/// data (to serve late/offline consumers and survive consumer absence,
/// §3.2), relying on sequential I/O for speed. This log appends
/// length-prefixed CRC-checked records to a file and keeps an in-memory
/// offset index for random reads; Open() on an existing file replays it and
/// truncates a torn tail.
///
/// With an empty path the log is memory-only (used by unit tests and
/// benchmarks that don't exercise durability).
class SegmentLog {
 public:
  SegmentLog() = default;
  ~SegmentLog();

  SegmentLog(const SegmentLog&) = delete;
  SegmentLog& operator=(const SegmentLog&) = delete;

  /// Opens (creating or recovering) the log. `path` empty = memory-only.
  Status Open(const std::string& path);

  /// Appends and returns the record's offset.
  Result<Offset> Append(const Message& msg);

  /// Reads up to `max_records` starting at `from` (inclusive). Returns fewer
  /// (possibly zero) records at end of log.
  Result<std::vector<Message>> Read(Offset from, size_t max_records) const;

  /// One past the last appended offset.
  Offset EndOffset() const;

  Status Close();

 private:
  Status Recover();

  mutable std::mutex mu_;
  bool open_ = false;
  std::string path_;
  std::FILE* file_ = nullptr;
  // In-memory copy of all records. The file is the durable story; this is
  // the "cache in disk ... sequential operations" trade made readable: reads
  // never touch the file after recovery.
  std::vector<Message> records_;
};

}  // namespace tencentrec::tdaccess

#endif  // TENCENTREC_TDACCESS_SEGMENT_LOG_H_
