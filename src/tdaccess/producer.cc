#include "tdaccess/producer.h"

namespace tencentrec::tdaccess {

Producer::Producer(Cluster* cluster, std::string topic)
    : cluster_(cluster), topic_(std::move(topic)) {}

Status Producer::RefreshRoute() {
  auto route = cluster_->master().GetRoute(topic_);
  if (!route.ok()) return route.status();
  route_ = std::move(route).value();
  have_route_ = true;
  return Status::OK();
}

Status Producer::Send(const Message& msg) {
  if (!have_route_) TR_RETURN_IF_ERROR(RefreshRoute());
  if (route_.partitions.empty()) {
    return Status::Internal("topic has no partitions: " + topic_);
  }
  size_t index;
  if (msg.key.empty()) {
    index = round_robin_++ % route_.partitions.size();
  } else {
    index = HashString(msg.key) % route_.partitions.size();
  }

  for (int attempt = 0; attempt < 2; ++attempt) {
    const PartitionAssignment& pa = route_.partitions[index];
    DataServer* server = cluster_->data_server(pa.server_id);
    if (server == nullptr) return Status::Internal("route names bad server");
    auto appended = server->Append(topic_, pa.partition, msg);
    if (appended.ok()) {
      ++sent_;
      return Status::OK();
    }
    if (!appended.status().IsUnavailable() || attempt == 1) {
      return appended.status();
    }
    TR_RETURN_IF_ERROR(RefreshRoute());
  }
  return Status::Internal("unreachable");
}

}  // namespace tencentrec::tdaccess
