#include "tdaccess/master.h"

#include <algorithm>

namespace tencentrec::tdaccess {

void MasterServer::AddDataServer(DataServer* server) {
  std::lock_guard<std::mutex> lock(mu_);
  servers_.push_back(server);
  if (standby_ != nullptr) standby_->AddDataServer(server);
}

Status MasterServer::CreateTopic(const std::string& topic,
                                 int num_partitions) {
  if (num_partitions < 1) {
    return Status::InvalidArgument("num_partitions must be >= 1");
  }
  std::vector<DataServer*> servers;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (servers_.empty()) {
      return Status::FailedPrecondition("no data servers registered");
    }
    if (topics_.count(topic) > 0) {
      return Status::AlreadyExists("topic exists: " + topic);
    }
    servers = servers_;
  }

  TopicRoute route;
  route.topic = topic;
  for (int p = 0; p < num_partitions; ++p) {
    DataServer* server = servers[static_cast<size_t>(p) % servers.size()];
    TR_RETURN_IF_ERROR(server->CreatePartition(topic, p));
    route.partitions.push_back({p, server->server_id()});
  }

  std::lock_guard<std::mutex> lock(mu_);
  topics_[topic] = route;
  if (standby_ != nullptr) {
    std::lock_guard<std::mutex> slock(standby_->mu_);
    standby_->topics_[topic] = route;
  }
  return Status::OK();
}

Result<TopicRoute> MasterServer::GetRoute(const std::string& topic) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = topics_.find(topic);
  if (it == topics_.end()) return Status::NotFound("no topic: " + topic);
  return it->second;
}

void MasterServer::Rebalance(const std::string& topic,
                             const std::string& group) {
  // Called with mu_ held. Splits partitions contiguously across members in
  // join order.
  auto topic_it = topics_.find(topic);
  if (topic_it == topics_.end()) return;
  const size_t num_partitions = topic_it->second.partitions.size();
  const auto& members = groups_[{topic, group}];
  // Clear old assignments for this (topic, group).
  for (auto it = assignments_.begin(); it != assignments_.end();) {
    if (std::get<0>(it->first) == topic && std::get<1>(it->first) == group) {
      it = assignments_.erase(it);
    } else {
      ++it;
    }
  }
  if (members.empty()) return;
  const size_t per = num_partitions / members.size();
  const size_t extra = num_partitions % members.size();
  size_t next = 0;
  for (size_t m = 0; m < members.size(); ++m) {
    size_t count = per + (m < extra ? 1 : 0);
    std::vector<int> assigned;
    for (size_t i = 0; i < count && next < num_partitions; ++i) {
      assigned.push_back(static_cast<int>(next++));
    }
    assignments_[{topic, group, members[m]}] = std::move(assigned);
  }
}

Result<std::vector<int>> MasterServer::JoinGroup(const std::string& topic,
                                                 const std::string& group,
                                                 const std::string& member) {
  std::lock_guard<std::mutex> lock(mu_);
  if (topics_.count(topic) == 0) return Status::NotFound("no topic: " + topic);
  auto& members = groups_[{topic, group}];
  if (std::find(members.begin(), members.end(), member) != members.end()) {
    return Status::AlreadyExists("member already in group: " + member);
  }
  members.push_back(member);
  Rebalance(topic, group);
  if (standby_ != nullptr) {
    std::lock_guard<std::mutex> slock(standby_->mu_);
    standby_->groups_ = groups_;
    standby_->assignments_ = assignments_;
  }
  return assignments_[{topic, group, member}];
}

Status MasterServer::LeaveGroup(const std::string& topic,
                                const std::string& group,
                                const std::string& member) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& members = groups_[{topic, group}];
  auto it = std::find(members.begin(), members.end(), member);
  if (it == members.end()) return Status::NotFound("not a member: " + member);
  members.erase(it);
  Rebalance(topic, group);
  if (standby_ != nullptr) {
    std::lock_guard<std::mutex> slock(standby_->mu_);
    standby_->groups_ = groups_;
    standby_->assignments_ = assignments_;
  }
  return Status::OK();
}

Result<std::vector<int>> MasterServer::GetAssignment(
    const std::string& topic, const std::string& group,
    const std::string& member) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = assignments_.find({topic, group, member});
  if (it == assignments_.end()) {
    return Status::NotFound("no assignment for member: " + member);
  }
  return it->second;
}

Status MasterServer::CommitOffset(const std::string& topic,
                                  const std::string& group, int partition,
                                  Offset offset) {
  std::lock_guard<std::mutex> lock(mu_);
  offsets_[{topic, group, partition}] = offset;
  if (standby_ != nullptr) {
    std::lock_guard<std::mutex> slock(standby_->mu_);
    standby_->offsets_[{topic, group, partition}] = offset;
  }
  return Status::OK();
}

Result<Offset> MasterServer::FetchOffset(const std::string& topic,
                                         const std::string& group,
                                         int partition) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = offsets_.find({topic, group, partition});
  if (it == offsets_.end()) return static_cast<Offset>(0);
  return it->second;
}

}  // namespace tencentrec::tdaccess
