#ifndef TENCENTREC_TSTORM_CONFIG_H_
#define TENCENTREC_TSTORM_CONFIG_H_

#include <map>
#include <string>
#include <string_view>

#include "common/status.h"
#include "tstorm/topology.h"

namespace tencentrec::tstorm {

/// Maps XML `class` names to component factories. The paper generates Storm
/// topologies from XML configuration files so new applications only need a
/// new config, not new deployment code (Fig. 7); the registry provides the
/// class-name -> code binding.
class ComponentRegistry {
 public:
  void RegisterSpout(const std::string& class_name, SpoutFactory factory);
  void RegisterBolt(const std::string& class_name, BoltFactory factory);

  const SpoutFactory* FindSpout(const std::string& class_name) const;
  const BoltFactory* FindBolt(const std::string& class_name) const;

 private:
  std::map<std::string, SpoutFactory> spouts_;
  std::map<std::string, BoltFactory> bolts_;
};

/// Builds a TopologySpec from an XML document of the form used in the
/// paper's Figure 7:
///
///   <topology name="cf-test">
///     <spout name="spout" class="Spout"/>
///     <bolts>
///       <bolt name="pretreatment" class="Pretreatment" parallelism="2">
///         <grouping type="field">
///           <source>spout</source>          <!-- optional; defaults to the
///                                                previously declared
///                                                component (linear chains) -->
///           <stream_id>user_action</stream_id>
///           <fields>user</fields>
///         </grouping>
///         <tick_interval>100</tick_interval> <!-- optional -->
///       </bolt>
///       ...
///     </bolts>
///   </topology>
///
/// Grouping types: "field"/"fields", "shuffle", "global", "all". A bolt
/// without any <grouping> is shuffle-grouped on the previous component.
Result<TopologySpec> BuildTopologyFromXml(std::string_view xml,
                                          const ComponentRegistry& registry);

}  // namespace tencentrec::tstorm

#endif  // TENCENTREC_TSTORM_CONFIG_H_
