#include "tstorm/cluster.h"

#include <chrono>
#include <set>

#include "common/hash.h"
#include "common/logging.h"
#include "common/stage.h"

namespace tencentrec::tstorm {

namespace {

/// What travels between tasks. `eos` marks the end of one upstream task's
/// output; a consumer finishes after hearing EOS from every upstream task.
struct Envelope {
  Tuple tuple;
  TupleSource source;
  bool eos = false;
};

uint64_t NowMicros() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

/// A resolved subscription edge from one producer stream to one consumer
/// component.
struct LocalCluster::Route {
  int consumer_component = -1;
  GroupingType grouping = GroupingType::kShuffle;
  std::vector<int> field_indices;  ///< for kFields
};

/// One running instance of a component.
struct LocalCluster::Task {
  int component_id = -1;
  int instance = 0;
  bool is_spout = false;
  std::unique_ptr<ISpout> spout;
  std::unique_ptr<IBolt> bolt;
  std::unique_ptr<BoundedQueue<Envelope>> input;  ///< bolts only
  int expected_eos = 0;
  int tick_interval = 0;

  std::thread thread;
  std::atomic<bool> restart_requested{false};

  /// Liveness heartbeat for the stall watchdog: bumped (relaxed) once per
  /// popped envelope / spout batch, readable mid-run. Kept separate from
  /// the plain counters below so those stay single-writer non-atomics.
  std::atomic<uint64_t> heartbeat{0};

  // Counters are written only by this task's thread; read after Run().
  uint64_t executed = 0;
  uint64_t emitted = 0;
  uint64_t restarts = 0;
  uint64_t busy_micros = 0;

  // Per-route round-robin cursors for shuffle grouping (indexed in the same
  // order the collector walks routes: stable per stream).
  std::vector<uint64_t> shuffle_cursors;
};

/// Routes emitted tuples to consumer task queues according to groupings.
class LocalCluster::Collector : public OutputCollector {
 public:
  Collector(LocalCluster* cluster, Task* task)
      : cluster_(cluster), task_(task) {}

  void Emit(Tuple tuple) override { EmitTo(0, std::move(tuple)); }

  void EmitTo(int stream_index, Tuple tuple) override {
    ++task_->emitted;
    const auto& stream_routes = cluster_->routes_[task_->component_id];
    TR_CHECK(stream_index >= 0 &&
             stream_index < static_cast<int>(stream_routes.size()));
    const std::vector<Route>& routes = stream_routes[stream_index];
    if (routes.empty()) return;  // no subscribers

    TupleSource src{task_->component_id, stream_index, task_->instance};
    for (size_t r = 0; r < routes.size(); ++r) {
      const Route& route = routes[r];
      const std::vector<int>& consumer_tasks =
          cluster_->tasks_by_component_[route.consumer_component];
      switch (route.grouping) {
        case GroupingType::kShuffle: {
          uint64_t cursor_key = Key(stream_index, r);
          if (task_->shuffle_cursors.size() <= cursor_key) {
            task_->shuffle_cursors.resize(cursor_key + 1, 0);
          }
          uint64_t c = task_->shuffle_cursors[cursor_key]++;
          Deliver(consumer_tasks[c % consumer_tasks.size()],
                  {tuple, src, false});
          break;
        }
        case GroupingType::kFields: {
          uint64_t h = 0;
          for (int fi : route.field_indices) {
            TR_CHECK(fi < static_cast<int>(tuple.size()));
            h = HashCombine(h, HashValue(tuple.at(static_cast<size_t>(fi))));
          }
          Deliver(consumer_tasks[h % consumer_tasks.size()],
                  {tuple, src, false});
          break;
        }
        case GroupingType::kGlobal:
          Deliver(consumer_tasks[0], {tuple, src, false});
          break;
        case GroupingType::kAll:
          for (int t : consumer_tasks) Deliver(t, {tuple, src, false});
          break;
      }
    }
  }

 private:
  static uint64_t Key(int stream_index, size_t route) {
    // Streams and routes are both small; 16 bits each is ample.
    return (static_cast<uint64_t>(stream_index) << 16) | route;
  }

  void Deliver(int task_index, Envelope env) {
    cluster_->tasks_[static_cast<size_t>(task_index)]->input->Push(
        std::move(env));
  }

  LocalCluster* cluster_;
  Task* task_;
};

LocalCluster::LocalCluster(TopologySpec spec, Options options)
    : spec_(std::move(spec)), options_(options) {}

LocalCluster::~LocalCluster() {
  for (auto& t : tasks_) {
    if (t->thread.joinable()) t->thread.join();
  }
}

Result<std::unique_ptr<LocalCluster>> LocalCluster::Create(TopologySpec spec,
                                                           Options options) {
  std::unique_ptr<LocalCluster> cluster(
      new LocalCluster(std::move(spec), options));
  Status s = cluster->Init();
  if (!s.ok()) return s;
  return cluster;
}

Status LocalCluster::Init() {
  const int num_components = static_cast<int>(spec_.components.size());
  tasks_by_component_.resize(static_cast<size_t>(num_components));
  streams_.resize(static_cast<size_t>(num_components));
  routes_.resize(static_cast<size_t>(num_components));

  // Instantiate every task; record stream declarations from instance 0.
  for (int c = 0; c < num_components; ++c) {
    const auto& comp = spec_.components[static_cast<size_t>(c)];
    for (int i = 0; i < comp.parallelism; ++i) {
      auto task = std::make_unique<Task>();
      task->component_id = c;
      task->instance = i;
      task->is_spout = comp.is_spout;
      task->tick_interval = comp.tick_interval;
      if (comp.is_spout) {
        task->spout = comp.spout_factory();
        if (i == 0) streams_[static_cast<size_t>(c)] = task->spout->DeclareOutputs();
      } else {
        task->bolt = comp.bolt_factory();
        task->input =
            std::make_unique<BoundedQueue<Envelope>>(options_.queue_capacity);
        if (i == 0) streams_[static_cast<size_t>(c)] = task->bolt->DeclareOutputs();
      }
      tasks_by_component_[static_cast<size_t>(c)].push_back(
          static_cast<int>(tasks_.size()));
      tasks_.push_back(std::move(task));
    }
    routes_[static_cast<size_t>(c)].resize(
        std::max<size_t>(1, streams_[static_cast<size_t>(c)].size()));
  }

  // Resolve edges: stream names -> indices, field names -> field indices.
  for (const auto& edge : spec_.edges) {
    int producer = -1, consumer = -1;
    for (int c = 0; c < num_components; ++c) {
      if (spec_.components[static_cast<size_t>(c)].name == edge.producer) producer = c;
      if (spec_.components[static_cast<size_t>(c)].name == edge.consumer) consumer = c;
    }
    TR_CHECK(producer >= 0 && consumer >= 0);  // validated by builder

    const auto& decls = streams_[static_cast<size_t>(producer)];
    if (decls.empty()) {
      return Status::InvalidArgument("component " + edge.producer +
                                     " declares no output streams");
    }
    int stream_index = -1;
    if (edge.stream.empty()) {
      stream_index = 0;
    } else {
      for (size_t s = 0; s < decls.size(); ++s) {
        if (decls[s].name == edge.stream) {
          stream_index = static_cast<int>(s);
          break;
        }
      }
      if (stream_index < 0) {
        return Status::InvalidArgument("unknown stream '" + edge.stream +
                                       "' on " + edge.producer);
      }
    }

    Route route;
    route.consumer_component = consumer;
    route.grouping = edge.grouping.type;
    if (edge.grouping.type == GroupingType::kFields) {
      const auto& fields = decls[static_cast<size_t>(stream_index)].fields;
      for (const auto& fname : edge.grouping.fields) {
        int fi = -1;
        for (size_t f = 0; f < fields.size(); ++f) {
          if (fields[f] == fname) {
            fi = static_cast<int>(f);
            break;
          }
        }
        if (fi < 0) {
          return Status::InvalidArgument("unknown field '" + fname +
                                         "' on stream '" +
                                         decls[static_cast<size_t>(stream_index)].name +
                                         "' of " + edge.producer);
        }
        route.field_indices.push_back(fi);
      }
    }
    routes_[static_cast<size_t>(producer)][static_cast<size_t>(stream_index)]
        .push_back(route);
  }

  // Expected EOS per consumer task: one per upstream task of each distinct
  // producer component feeding it (EOS is broadcast to all instances).
  for (int c = 0; c < num_components; ++c) {
    std::set<int> producers;
    for (const auto& edge : spec_.edges) {
      if (edge.consumer != spec_.components[static_cast<size_t>(c)].name) continue;
      for (int p = 0; p < num_components; ++p) {
        if (spec_.components[static_cast<size_t>(p)].name == edge.producer) {
          producers.insert(p);
        }
      }
    }
    int expected = 0;
    for (int p : producers) {
      expected += spec_.components[static_cast<size_t>(p)].parallelism;
    }
    for (int t : tasks_by_component_[static_cast<size_t>(c)]) {
      tasks_[static_cast<size_t>(t)]->expected_eos = expected;
    }
    if (!spec_.components[static_cast<size_t>(c)].is_spout && expected == 0) {
      return Status::InvalidArgument(
          "bolt " + spec_.components[static_cast<size_t>(c)].name +
          " has no input streams");
    }
  }
  return Status::OK();
}

void LocalCluster::BroadcastEos(Task* task) {
  const auto& stream_routes = routes_[static_cast<size_t>(task->component_id)];
  std::set<int> consumers;
  for (const auto& per_stream : stream_routes) {
    for (const auto& route : per_stream) {
      consumers.insert(route.consumer_component);
    }
  }
  TupleSource src{task->component_id, 0, task->instance};
  for (int c : consumers) {
    for (int t : tasks_by_component_[static_cast<size_t>(c)]) {
      tasks_[static_cast<size_t>(t)]->input->Push({Tuple(), src, true});
    }
  }
}

void LocalCluster::RunSpoutTask(Task* task) {
  TaskContext ctx;
  ctx.component_name = spec_.components[static_cast<size_t>(task->component_id)].name;
  ctx.component_id = task->component_id;
  ctx.instance = task->instance;
  ctx.parallelism =
      spec_.components[static_cast<size_t>(task->component_id)].parallelism;
  RegisterStageThread("spout." + ctx.component_name);

  Collector collector(this, task);
  task->spout->Open(ctx);
  for (;;) {
    const uint64_t t0 = NowMicros();
    const bool more = task->spout->NextBatch(collector);
    task->busy_micros += NowMicros() - t0;
    task->heartbeat.fetch_add(1, std::memory_order_relaxed);
    if (!more) break;
  }
  task->spout->Close();
  BroadcastEos(task);
}

void LocalCluster::RunBoltTask(Task* task) {
  const auto& comp = spec_.components[static_cast<size_t>(task->component_id)];
  TaskContext ctx;
  ctx.component_name = comp.name;
  ctx.component_id = task->component_id;
  ctx.instance = task->instance;
  ctx.parallelism = comp.parallelism;
  RegisterStageThread("bolt." + ctx.component_name);

  Collector collector(this, task);
  task->bolt->Prepare(ctx);

  int eos_seen = 0;
  uint64_t since_tick = 0;
  while (eos_seen < task->expected_eos) {
    if (task->restart_requested.exchange(false)) {
      // Simulated supervised worker restart: flush transient buffers (in
      // production, Storm's at-least-once replay covers tuples a crashed
      // combiner had buffered; this engine is acker-less, so the supervisor
      // drains instead), then lose the bolt object and recover the way
      // Storm does — a fresh instance re-Prepared against durable state.
      // Tick + Cleanup mirrors the end-of-task sequence below: Tick drains
      // combiners, Cleanup ships write-behind ops still staged on the batch
      // writer — both must reach the store before the replacement instance
      // re-reads it.
      task->bolt->Tick(collector);
      task->bolt->Cleanup();
      task->bolt.reset();
      task->bolt = comp.bolt_factory();
      task->bolt->Prepare(ctx);
      ++task->restarts;
    }
    std::optional<Envelope> env = task->input->Pop();
    if (!env.has_value()) break;  // queue closed (cluster teardown)
    task->heartbeat.fetch_add(1, std::memory_order_relaxed);
    if (env->eos) {
      ++eos_seen;
      continue;
    }
    ++task->executed;
    const uint64_t t0 = NowMicros();
    task->bolt->Execute(env->tuple, env->source, collector);
    if (task->tick_interval > 0 &&
        ++since_tick >= static_cast<uint64_t>(task->tick_interval)) {
      since_tick = 0;
      task->bolt->Tick(collector);
    }
    task->busy_micros += NowMicros() - t0;
  }
  // Final flush before declaring this task's output finished.
  task->bolt->Tick(collector);
  task->bolt->Cleanup();
  BroadcastEos(task);
}

void LocalCluster::RunTask(Task* task) {
  if (task->is_spout) {
    RunSpoutTask(task);
  } else {
    RunBoltTask(task);
  }
}

Status LocalCluster::Run() {
  if (started_) return Status::FailedPrecondition("cluster already ran");
  started_ = true;

  // Start bolts first so spout emissions always find live consumers.
  for (auto& t : tasks_) {
    if (!t->is_spout) {
      t->thread = std::thread([this, task = t.get()] { RunTask(task); });
    }
  }
  for (auto& t : tasks_) {
    if (t->is_spout) {
      t->thread = std::thread([this, task = t.get()] { RunTask(task); });
    }
  }
  for (auto& t : tasks_) {
    t->thread.join();
  }
  return Status::OK();
}

Status LocalCluster::RequestRestart(const std::string& component) {
  for (size_t c = 0; c < spec_.components.size(); ++c) {
    if (spec_.components[c].name != component) continue;
    if (spec_.components[c].is_spout) {
      return Status::InvalidArgument("cannot restart a spout: " + component);
    }
    for (int t : tasks_by_component_[c]) {
      tasks_[static_cast<size_t>(t)]->restart_requested.store(true);
    }
    return Status::OK();
  }
  return Status::NotFound("no such component: " + component);
}

std::vector<ComponentMetrics> LocalCluster::Metrics() const {
  std::vector<ComponentMetrics> out;
  for (size_t c = 0; c < spec_.components.size(); ++c) {
    ComponentMetrics m;
    m.component = spec_.components[c].name;
    for (int t : tasks_by_component_[c]) {
      const Task& task = *tasks_[static_cast<size_t>(t)];
      m.tuples_executed += task.executed;
      m.tuples_emitted += task.emitted;
      m.restarts += task.restarts;
      m.busy_micros += task.busy_micros;
    }
    out.push_back(std::move(m));
  }
  return out;
}

std::vector<ComponentWatch> LocalCluster::WatchRows() const {
  std::vector<ComponentWatch> out;
  for (size_t c = 0; c < spec_.components.size(); ++c) {
    ComponentWatch w;
    w.component = spec_.components[c].name;
    w.is_spout = spec_.components[c].is_spout;
    for (int t : tasks_by_component_[c]) {
      const Task& task = *tasks_[static_cast<size_t>(t)];
      w.progress += task.heartbeat.load(std::memory_order_relaxed);
      if (task.input != nullptr) w.backlog += task.input->size();
    }
    out.push_back(std::move(w));
  }
  return out;
}

}  // namespace tencentrec::tstorm
