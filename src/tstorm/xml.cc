#include "tstorm/xml.h"

#include "common/strings.h"

namespace tencentrec::tstorm {

namespace {

class Parser {
 public:
  explicit Parser(std::string_view input) : input_(input) {}

  Result<std::unique_ptr<XmlNode>> ParseDocument() {
    SkipMisc();
    if (Eof()) return Status::InvalidArgument("xml: empty document");
    auto root = ParseElement();
    if (!root.ok()) return root.status();
    SkipMisc();
    if (!Eof()) {
      return Status::InvalidArgument("xml: trailing content after root");
    }
    return std::move(root).value();
  }

 private:
  bool Eof() const { return pos_ >= input_.size(); }
  char Peek() const { return input_[pos_]; }
  bool Match(std::string_view s) {
    if (input_.substr(pos_, s.size()) != s) return false;
    pos_ += s.size();
    return true;
  }

  void SkipWhitespace() {
    while (!Eof() && std::isspace(static_cast<unsigned char>(Peek()))) ++pos_;
  }

  /// Skips whitespace, comments, processing instructions and the XML
  /// declaration between markup.
  void SkipMisc() {
    while (true) {
      SkipWhitespace();
      if (Match("<!--")) {
        size_t end = input_.find("-->", pos_);
        pos_ = end == std::string_view::npos ? input_.size() : end + 3;
      } else if (Match("<?")) {
        size_t end = input_.find("?>", pos_);
        pos_ = end == std::string_view::npos ? input_.size() : end + 2;
      } else {
        return;
      }
    }
  }

  static bool IsNameChar(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
           c == '-' || c == '.' || c == ':';
  }

  std::string ParseName() {
    size_t start = pos_;
    while (!Eof() && IsNameChar(Peek())) ++pos_;
    return std::string(input_.substr(start, pos_ - start));
  }

  static void AppendDecoded(std::string_view raw, std::string* out) {
    for (size_t i = 0; i < raw.size(); ++i) {
      if (raw[i] != '&') {
        out->push_back(raw[i]);
        continue;
      }
      size_t semi = raw.find(';', i);
      std::string_view ent =
          semi == std::string_view::npos ? "" : raw.substr(i + 1, semi - i - 1);
      if (ent == "lt") {
        out->push_back('<');
      } else if (ent == "gt") {
        out->push_back('>');
      } else if (ent == "amp") {
        out->push_back('&');
      } else if (ent == "quot") {
        out->push_back('"');
      } else if (ent == "apos") {
        out->push_back('\'');
      } else {
        out->push_back('&');  // unknown entity: keep literal
        continue;
      }
      i = semi;
    }
  }

  Result<std::unique_ptr<XmlNode>> ParseElement() {
    if (!Match("<")) return Status::InvalidArgument("xml: expected '<'");
    auto node = std::make_unique<XmlNode>();
    node->name = ParseName();
    if (node->name.empty()) {
      return Status::InvalidArgument("xml: element with empty name");
    }

    // Attributes.
    while (true) {
      SkipWhitespace();
      if (Eof()) return Status::InvalidArgument("xml: unexpected end in tag");
      if (Match("/>")) return node;
      if (Match(">")) break;
      std::string key = ParseName();
      if (key.empty()) {
        return Status::InvalidArgument("xml: bad attribute in <" + node->name +
                                       ">");
      }
      SkipWhitespace();
      if (!Match("=")) {
        return Status::InvalidArgument("xml: attribute without '=' in <" +
                                       node->name + ">");
      }
      SkipWhitespace();
      if (Eof() || (Peek() != '"' && Peek() != '\'')) {
        return Status::InvalidArgument("xml: unquoted attribute value in <" +
                                       node->name + ">");
      }
      char quote = Peek();
      ++pos_;
      size_t end = input_.find(quote, pos_);
      if (end == std::string_view::npos) {
        return Status::InvalidArgument("xml: unterminated attribute value");
      }
      std::string value;
      AppendDecoded(input_.substr(pos_, end - pos_), &value);
      pos_ = end + 1;
      node->attributes.emplace_back(std::move(key), std::move(value));
    }

    // Content: text, children, comments; until matching close tag.
    while (true) {
      if (Eof()) {
        return Status::InvalidArgument("xml: unterminated element <" +
                                       node->name + ">");
      }
      if (Match("<!--")) {
        size_t end = input_.find("-->", pos_);
        if (end == std::string_view::npos) {
          return Status::InvalidArgument("xml: unterminated comment");
        }
        pos_ = end + 3;
        continue;
      }
      if (input_.substr(pos_, 2) == "</") {
        pos_ += 2;
        std::string close = ParseName();
        SkipWhitespace();
        if (!Match(">")) {
          return Status::InvalidArgument("xml: malformed close tag");
        }
        if (close != node->name) {
          return Status::InvalidArgument("xml: mismatched close tag </" +
                                         close + "> for <" + node->name + ">");
        }
        return node;
      }
      if (Peek() == '<') {
        auto child = ParseElement();
        if (!child.ok()) return child.status();
        node->children.push_back(std::move(child).value());
        continue;
      }
      size_t next = input_.find('<', pos_);
      if (next == std::string_view::npos) {
        return Status::InvalidArgument("xml: unterminated element <" +
                                       node->name + ">");
      }
      AppendDecoded(input_.substr(pos_, next - pos_), &node->text);
      pos_ = next;
    }
  }

  std::string_view input_;
  size_t pos_ = 0;
};

}  // namespace

std::string XmlNode::Attr(std::string_view key) const {
  for (const auto& [k, v] : attributes) {
    if (k == key) return v;
  }
  return "";
}

bool XmlNode::HasAttr(std::string_view key) const {
  for (const auto& [k, v] : attributes) {
    if (k == key) return true;
  }
  return false;
}

const XmlNode* XmlNode::Child(std::string_view name) const {
  for (const auto& c : children) {
    if (c->name == name) return c.get();
  }
  return nullptr;
}

std::vector<const XmlNode*> XmlNode::Children(std::string_view name) const {
  std::vector<const XmlNode*> out;
  for (const auto& c : children) {
    if (c->name == name) out.push_back(c.get());
  }
  return out;
}

std::string XmlNode::ChildText(std::string_view name) const {
  const XmlNode* c = Child(name);
  if (c == nullptr) return "";
  return std::string(Trim(c->text));
}

Result<std::unique_ptr<XmlNode>> ParseXml(std::string_view input) {
  Parser parser(input);
  return parser.ParseDocument();
}

}  // namespace tencentrec::tstorm
