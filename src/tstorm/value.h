#ifndef TENCENTREC_TSTORM_VALUE_H_
#define TENCENTREC_TSTORM_VALUE_H_

#include <cassert>
#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "common/hash.h"

namespace tencentrec::tstorm {

/// A single field of a stream tuple. Streams are schemaful (each stream
/// declares named fields) but values are dynamically typed, mirroring
/// Storm's Values/Fields model.
using Value = std::variant<int64_t, double, std::string>;

inline uint64_t HashValue(const Value& v) {
  switch (v.index()) {
    case 0:
      return HashInt(static_cast<uint64_t>(std::get<int64_t>(v)));
    case 1: {
      double d = std::get<double>(v);
      uint64_t bits;
      static_assert(sizeof(bits) == sizeof(d));
      __builtin_memcpy(&bits, &d, sizeof(bits));
      return HashInt(bits);
    }
    default:
      return HashString(std::get<std::string>(v));
  }
}

/// An immutable-after-emit data record flowing through a topology.
class Tuple {
 public:
  Tuple() = default;
  explicit Tuple(std::vector<Value> values) : values_(std::move(values)) {}

  static Tuple Of(std::initializer_list<Value> values) {
    return Tuple(std::vector<Value>(values));
  }

  size_t size() const { return values_.size(); }

  const Value& at(size_t i) const {
    assert(i < values_.size());
    return values_[i];
  }

  int64_t GetInt(size_t i) const { return std::get<int64_t>(at(i)); }
  double GetDouble(size_t i) const {
    const Value& v = at(i);
    // Accept ints where a double is expected; emitters routinely mix them.
    if (std::holds_alternative<int64_t>(v)) {
      return static_cast<double>(std::get<int64_t>(v));
    }
    return std::get<double>(v);
  }
  const std::string& GetString(size_t i) const {
    return std::get<std::string>(at(i));
  }

  void Append(Value v) { values_.push_back(std::move(v)); }

  const std::vector<Value>& values() const { return values_; }

 private:
  std::vector<Value> values_;
};

}  // namespace tencentrec::tstorm

#endif  // TENCENTREC_TSTORM_VALUE_H_
