#ifndef TENCENTREC_TSTORM_TOPOLOGY_H_
#define TENCENTREC_TSTORM_TOPOLOGY_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "tstorm/component.h"
#include "tstorm/grouping.h"

namespace tencentrec::tstorm {

/// One subscription edge: `consumer` receives `stream` of `producer` under
/// `grouping`.
struct EdgeSpec {
  std::string producer;
  std::string stream;  ///< empty = producer's default stream
  std::string consumer;
  Grouping grouping;
};

/// Declarative description of a topology, assembled by TopologyBuilder (or
/// parsed from an XML config) and validated/instantiated by LocalCluster.
struct TopologySpec {
  struct Component {
    std::string name;
    bool is_spout = false;
    SpoutFactory spout_factory;
    BoltFactory bolt_factory;
    int parallelism = 1;
    /// Call IBolt::Tick every this many executed tuples (0 = never, except
    /// the guaranteed pre-EOS tick).
    int tick_interval = 0;
  };

  std::string name;
  std::vector<Component> components;
  std::vector<EdgeSpec> edges;

  const Component* FindComponent(const std::string& name) const {
    for (const auto& c : components) {
      if (c.name == name) return &c;
    }
    return nullptr;
  }
};

/// Fluent builder mirroring Storm's TopologyBuilder.
///
///   TopologyBuilder b("cf");
///   b.SetSpout("spout", MakeActionSpout, 1);
///   b.SetBolt("pretreat", MakePretreatment, 4)
///       .FieldsGrouping("spout", {"user"});
///   TopologySpec spec = std::move(b).Build();
class TopologyBuilder {
 public:
  /// Declares groupings for the bolt added last.
  class BoltConfigurer {
   public:
    BoltConfigurer(TopologyBuilder* builder, std::string bolt)
        : builder_(builder), bolt_(std::move(bolt)) {}

    BoltConfigurer& ShuffleGrouping(const std::string& producer,
                                    const std::string& stream = "");
    BoltConfigurer& FieldsGrouping(const std::string& producer,
                                   std::vector<std::string> fields,
                                   const std::string& stream = "");
    BoltConfigurer& GlobalGrouping(const std::string& producer,
                                   const std::string& stream = "");
    BoltConfigurer& AllGrouping(const std::string& producer,
                                const std::string& stream = "");
    /// Sets the tick interval (in executed tuples) for this bolt.
    BoltConfigurer& TickInterval(int tuples);

   private:
    TopologyBuilder* builder_;
    std::string bolt_;
  };

  explicit TopologyBuilder(std::string name) { spec_.name = std::move(name); }

  TopologyBuilder& SetSpout(const std::string& name, SpoutFactory factory,
                            int parallelism = 1);

  BoltConfigurer SetBolt(const std::string& name, BoltFactory factory,
                         int parallelism = 1);

  /// Validates naming/edges; consumes the builder.
  Result<TopologySpec> Build() &&;

 private:
  friend class BoltConfigurer;
  TopologySpec spec_;
};

/// Renders a topology as Graphviz DOT: components as nodes (spouts as
/// diamonds) annotated with parallelism, edges labeled stream/grouping.
/// Useful for documenting generated topologies (cf. the paper's Fig. 6/7).
std::string ToDot(const TopologySpec& spec);

}  // namespace tencentrec::tstorm

#endif  // TENCENTREC_TSTORM_TOPOLOGY_H_
