#ifndef TENCENTREC_TSTORM_GROUPING_H_
#define TENCENTREC_TSTORM_GROUPING_H_

#include <cstdint>
#include <string>
#include <vector>

namespace tencentrec::tstorm {

/// How tuples of a stream are partitioned across the consuming bolt's
/// parallel instances.
enum class GroupingType {
  kShuffle,  ///< round-robin across instances
  kFields,   ///< hash of the named fields; same key -> same instance.
             ///< This is the mechanism behind the paper's guarantee that
             ///< "only a single worker node should operate over a specific
             ///< item pair".
  kGlobal,   ///< everything to instance 0
  kAll,      ///< broadcast to every instance
};

struct Grouping {
  GroupingType type = GroupingType::kShuffle;
  /// Field names (resolved to indices at topology build time) for kFields.
  std::vector<std::string> fields;

  static Grouping Shuffle() { return {GroupingType::kShuffle, {}}; }
  static Grouping Fields(std::vector<std::string> names) {
    return {GroupingType::kFields, std::move(names)};
  }
  static Grouping Global() { return {GroupingType::kGlobal, {}}; }
  static Grouping All() { return {GroupingType::kAll, {}}; }
};

}  // namespace tencentrec::tstorm

#endif  // TENCENTREC_TSTORM_GROUPING_H_
