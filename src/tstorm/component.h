#ifndef TENCENTREC_TSTORM_COMPONENT_H_
#define TENCENTREC_TSTORM_COMPONENT_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "tstorm/value.h"

namespace tencentrec::tstorm {

/// Schema of one output stream: a name plus named fields.
struct StreamDecl {
  std::string name;
  std::vector<std::string> fields;
};

/// Identifies which task emitted a tuple and on which of its streams; bolts
/// with several input streams dispatch on this.
struct TupleSource {
  int component = -1;  ///< component id within the topology
  int stream = 0;      ///< stream index within the emitting component
  int instance = 0;    ///< emitting task instance
};

/// Per-task runtime information handed to components at Prepare/Open time.
struct TaskContext {
  std::string component_name;
  int component_id = 0;
  int instance = 0;          ///< this task's index within the component
  int parallelism = 1;       ///< number of instances of this component
};

/// Emits tuples from inside a spout or bolt. Implemented by the executor;
/// routing (grouping, queueing, backpressure) happens behind this interface.
class OutputCollector {
 public:
  virtual ~OutputCollector() = default;

  /// Emits on the component's default (first-declared) stream.
  virtual void Emit(Tuple tuple) = 0;

  /// Emits on the stream declared at `stream_index` (declaration order).
  virtual void EmitTo(int stream_index, Tuple tuple) = 0;
};

/// A stream source. NextBatch is pull-based: the executor calls it until it
/// returns false (source exhausted), after which end-of-stream propagates
/// through the topology and Run() drains.
class ISpout {
 public:
  virtual ~ISpout() = default;

  virtual std::vector<StreamDecl> DeclareOutputs() const = 0;

  virtual void Open(const TaskContext& ctx) { (void)ctx; }

  /// Emits zero or more tuples; returns false when exhausted.
  virtual bool NextBatch(OutputCollector& out) = 0;

  virtual void Close() {}
};

/// A stream transformer. Bolts must be restartable: all durable state lives
/// in TDStore, so Prepare() after a crash-restart must fully rebuild any
/// working set (the topology runner exercises this in failure tests).
class IBolt {
 public:
  virtual ~IBolt() = default;

  virtual std::vector<StreamDecl> DeclareOutputs() const { return {}; }

  virtual void Prepare(const TaskContext& ctx) { (void)ctx; }

  virtual void Execute(const Tuple& input, const TupleSource& source,
                       OutputCollector& out) = 0;

  /// Periodic hook (every `tick_interval` executed tuples, and once before
  /// end-of-stream). Combiners and cache-flushing bolts use it.
  virtual void Tick(OutputCollector& out) { (void)out; }

  virtual void Cleanup() {}
};

using SpoutFactory = std::function<std::unique_ptr<ISpout>()>;
using BoltFactory = std::function<std::unique_ptr<IBolt>()>;

}  // namespace tencentrec::tstorm

#endif  // TENCENTREC_TSTORM_COMPONENT_H_
