#ifndef TENCENTREC_TSTORM_XML_H_
#define TENCENTREC_TSTORM_XML_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace tencentrec::tstorm {

/// A parsed XML element. The subset implemented (elements, attributes,
/// text, comments, XML declaration, standard entities) is exactly what the
/// paper's topology configuration files (Fig. 7) need.
struct XmlNode {
  std::string name;
  std::vector<std::pair<std::string, std::string>> attributes;
  std::vector<std::unique_ptr<XmlNode>> children;
  std::string text;  ///< concatenated character data directly inside this node

  /// First attribute value by name, or "" if absent.
  std::string Attr(std::string_view key) const;
  bool HasAttr(std::string_view key) const;

  /// First child element by name, or nullptr.
  const XmlNode* Child(std::string_view name) const;

  /// All child elements by name.
  std::vector<const XmlNode*> Children(std::string_view name) const;

  /// Text of child `name`, trimmed; "" if the child is absent.
  std::string ChildText(std::string_view name) const;
};

/// Parses a document; returns its root element.
Result<std::unique_ptr<XmlNode>> ParseXml(std::string_view input);

}  // namespace tencentrec::tstorm

#endif  // TENCENTREC_TSTORM_XML_H_
