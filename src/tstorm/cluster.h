#ifndef TENCENTREC_TSTORM_CLUSTER_H_
#define TENCENTREC_TSTORM_CLUSTER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/queue.h"
#include "common/status.h"
#include "tstorm/component.h"
#include "tstorm/topology.h"

namespace tencentrec::tstorm {

/// Live liveness view of one component, summed over instances: `progress`
/// is a monotone heartbeat that advances whenever any instance pops an
/// envelope (bolts) or runs a NextBatch (spouts); `backlog` is the current
/// depth of the instances' input queues. A watchdog samples rows while
/// Run() is in flight: unchanged progress with nonzero backlog means the
/// component is stuck, not idle.
struct ComponentWatch {
  std::string component;
  bool is_spout = false;
  uint64_t progress = 0;
  uint64_t backlog = 0;
};

/// Per-component execution counters, summed over instances.
struct ComponentMetrics {
  std::string component;
  uint64_t tuples_executed = 0;  ///< tuples consumed (bolts only)
  uint64_t tuples_emitted = 0;
  uint64_t restarts = 0;
  /// Wall time spent inside Execute/NextBatch/Tick, summed over instances;
  /// busy_micros / tuples_executed is the stage's mean per-tuple latency.
  uint64_t busy_micros = 0;
};

/// Runs a TopologySpec to completion on a pool of threads, one per task
/// (component instance), with bounded queues between tasks providing
/// backpressure.
///
/// Lifecycle: spouts pull until exhausted, then end-of-stream markers
/// propagate topologically; every bolt gets a final Tick() (flushing
/// combiners/caches) before Cleanup(). Run() returns when every task has
/// drained — results persisted by storage bolts (e.g. in TDStore) are then
/// complete and consistent.
///
/// Fault injection: RequestRestart() makes each instance of a bolt flush
/// its transient buffers (a final Tick — standing in for the at-least-once
/// replay a production Storm acker would provide), destroy its IBolt object
/// mid-stream, and recreate it via the factory (Prepare() runs again).
/// Because all durable state lives in TDStore, a correct bolt must produce
/// the same final state regardless of restarts; tests assert this.
class LocalCluster {
 public:
  struct Options {
    size_t queue_capacity = 4096;
  };

  /// Validates the spec against the options and instantiates all tasks
  /// (factories run here, Prepare/Open do not).
  static Result<std::unique_ptr<LocalCluster>> Create(TopologySpec spec,
                                                      Options options);
  static Result<std::unique_ptr<LocalCluster>> Create(TopologySpec spec) {
    return Create(std::move(spec), Options());
  }

  ~LocalCluster();

  LocalCluster(const LocalCluster&) = delete;
  LocalCluster& operator=(const LocalCluster&) = delete;

  /// Runs the topology to completion. Single use.
  Status Run();

  /// Requests that all instances of `component` (a bolt) be torn down and
  /// recreated. Safe to call before or during Run().
  Status RequestRestart(const std::string& component);

  std::vector<ComponentMetrics> Metrics() const;

  /// Safe to call concurrently with Run() (heartbeats are atomics, queue
  /// depths take the queue locks); rows are in component declaration order.
  std::vector<ComponentWatch> WatchRows() const;

 private:
  struct Task;
  struct Route;
  class Collector;

  explicit LocalCluster(TopologySpec spec, Options options);

  Status Init();
  void RunTask(Task* task);
  void RunSpoutTask(Task* task);
  void RunBoltTask(Task* task);
  void BroadcastEos(Task* task);

  TopologySpec spec_;
  Options options_;
  std::vector<std::unique_ptr<Task>> tasks_;
  /// tasks_by_component_[c] lists task indices of component id c.
  std::vector<std::vector<int>> tasks_by_component_;
  /// routes_[c][stream_index] lists resolved consumer edges.
  std::vector<std::vector<std::vector<Route>>> routes_;
  /// Output stream declarations per component id.
  std::vector<std::vector<StreamDecl>> streams_;
  bool started_ = false;
};

}  // namespace tencentrec::tstorm

#endif  // TENCENTREC_TSTORM_CLUSTER_H_
