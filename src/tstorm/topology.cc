#include "tstorm/topology.h"

#include <set>

namespace tencentrec::tstorm {

TopologyBuilder::BoltConfigurer& TopologyBuilder::BoltConfigurer::ShuffleGrouping(
    const std::string& producer, const std::string& stream) {
  builder_->spec_.edges.push_back(
      {producer, stream, bolt_, Grouping::Shuffle()});
  return *this;
}

TopologyBuilder::BoltConfigurer& TopologyBuilder::BoltConfigurer::FieldsGrouping(
    const std::string& producer, std::vector<std::string> fields,
    const std::string& stream) {
  builder_->spec_.edges.push_back(
      {producer, stream, bolt_, Grouping::Fields(std::move(fields))});
  return *this;
}

TopologyBuilder::BoltConfigurer& TopologyBuilder::BoltConfigurer::GlobalGrouping(
    const std::string& producer, const std::string& stream) {
  builder_->spec_.edges.push_back({producer, stream, bolt_, Grouping::Global()});
  return *this;
}

TopologyBuilder::BoltConfigurer& TopologyBuilder::BoltConfigurer::AllGrouping(
    const std::string& producer, const std::string& stream) {
  builder_->spec_.edges.push_back({producer, stream, bolt_, Grouping::All()});
  return *this;
}

TopologyBuilder::BoltConfigurer& TopologyBuilder::BoltConfigurer::TickInterval(
    int tuples) {
  for (auto& c : builder_->spec_.components) {
    if (c.name == bolt_) {
      c.tick_interval = tuples;
      break;
    }
  }
  return *this;
}

TopologyBuilder& TopologyBuilder::SetSpout(const std::string& name,
                                           SpoutFactory factory,
                                           int parallelism) {
  TopologySpec::Component c;
  c.name = name;
  c.is_spout = true;
  c.spout_factory = std::move(factory);
  c.parallelism = parallelism;
  spec_.components.push_back(std::move(c));
  return *this;
}

TopologyBuilder::BoltConfigurer TopologyBuilder::SetBolt(
    const std::string& name, BoltFactory factory, int parallelism) {
  TopologySpec::Component c;
  c.name = name;
  c.is_spout = false;
  c.bolt_factory = std::move(factory);
  c.parallelism = parallelism;
  spec_.components.push_back(std::move(c));
  return BoltConfigurer(this, name);
}

Result<TopologySpec> TopologyBuilder::Build() && {
  std::set<std::string> names;
  bool has_spout = false;
  for (const auto& c : spec_.components) {
    if (c.name.empty()) {
      return Status::InvalidArgument("component with empty name");
    }
    if (!names.insert(c.name).second) {
      return Status::InvalidArgument("duplicate component name: " + c.name);
    }
    if (c.parallelism < 1) {
      return Status::InvalidArgument("parallelism < 1 for " + c.name);
    }
    if (c.is_spout) {
      has_spout = true;
      if (!c.spout_factory) {
        return Status::InvalidArgument("spout " + c.name + " has no factory");
      }
    } else if (!c.bolt_factory) {
      return Status::InvalidArgument("bolt " + c.name + " has no factory");
    }
  }
  if (!has_spout) return Status::InvalidArgument("topology has no spout");
  for (const auto& e : spec_.edges) {
    if (names.count(e.producer) == 0) {
      return Status::InvalidArgument("edge references unknown producer: " +
                                     e.producer);
    }
    if (names.count(e.consumer) == 0) {
      return Status::InvalidArgument("edge references unknown consumer: " +
                                     e.consumer);
    }
    const TopologySpec::Component* consumer = spec_.FindComponent(e.consumer);
    if (consumer->is_spout) {
      return Status::InvalidArgument("spout cannot consume a stream: " +
                                     e.consumer);
    }
    if (e.grouping.type == GroupingType::kFields && e.grouping.fields.empty()) {
      return Status::InvalidArgument("fields grouping with no fields into " +
                                     e.consumer);
    }
  }
  return std::move(spec_);
}

namespace {

const char* GroupingName(GroupingType type) {
  switch (type) {
    case GroupingType::kShuffle:
      return "shuffle";
    case GroupingType::kFields:
      return "fields";
    case GroupingType::kGlobal:
      return "global";
    case GroupingType::kAll:
      return "all";
  }
  return "?";
}

}  // namespace

std::string ToDot(const TopologySpec& spec) {
  std::string out = "digraph \"" + spec.name + "\" {\n  rankdir=LR;\n";
  for (const auto& c : spec.components) {
    out += "  \"" + c.name + "\" [label=\"" + c.name + "\\nx" +
           std::to_string(c.parallelism) + "\", shape=" +
           (c.is_spout ? "diamond" : "box") + "];\n";
  }
  for (const auto& e : spec.edges) {
    std::string label = GroupingName(e.grouping.type);
    if (!e.stream.empty()) label = e.stream + "\\n" + label;
    if (e.grouping.type == GroupingType::kFields) {
      label += "(";
      for (size_t i = 0; i < e.grouping.fields.size(); ++i) {
        if (i > 0) label += ",";
        label += e.grouping.fields[i];
      }
      label += ")";
    }
    out += "  \"" + e.producer + "\" -> \"" + e.consumer + "\" [label=\"" +
           label + "\"];\n";
  }
  out += "}\n";
  return out;
}

}  // namespace tencentrec::tstorm
