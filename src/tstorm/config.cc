#include "tstorm/config.h"

#include "common/strings.h"
#include "tstorm/xml.h"

namespace tencentrec::tstorm {

void ComponentRegistry::RegisterSpout(const std::string& class_name,
                                      SpoutFactory factory) {
  spouts_[class_name] = std::move(factory);
}

void ComponentRegistry::RegisterBolt(const std::string& class_name,
                                     BoltFactory factory) {
  bolts_[class_name] = std::move(factory);
}

const SpoutFactory* ComponentRegistry::FindSpout(
    const std::string& class_name) const {
  auto it = spouts_.find(class_name);
  return it == spouts_.end() ? nullptr : &it->second;
}

const BoltFactory* ComponentRegistry::FindBolt(
    const std::string& class_name) const {
  auto it = bolts_.find(class_name);
  return it == bolts_.end() ? nullptr : &it->second;
}

namespace {

int ParseParallelism(const XmlNode& node) {
  int64_t v = 1;
  if (node.HasAttr("parallelism")) {
    if (!ParseInt64(node.Attr("parallelism"), &v) || v < 1) return -1;
  }
  return static_cast<int>(v);
}

Status AddGroupings(const XmlNode& bolt_node, const std::string& bolt_name,
                    const std::string& previous_component,
                    TopologyBuilder::BoltConfigurer* cfg) {
  auto groupings = bolt_node.Children("grouping");
  if (groupings.empty()) {
    if (previous_component.empty()) {
      return Status::InvalidArgument("bolt '" + bolt_name +
                                     "' has no grouping and no predecessor");
    }
    cfg->ShuffleGrouping(previous_component);
    return Status::OK();
  }
  for (const XmlNode* g : groupings) {
    std::string source = g->ChildText("source");
    if (source.empty()) source = g->Attr("source");
    if (source.empty()) source = previous_component;
    if (source.empty()) {
      return Status::InvalidArgument("grouping on '" + bolt_name +
                                     "' has no <source> and no predecessor");
    }
    std::string stream = g->ChildText("stream_id");
    std::string type = g->Attr("type");
    if (type.empty()) type = "shuffle";
    if (type == "field" || type == "fields") {
      std::string fields_text = g->ChildText("fields");
      std::vector<std::string> fields;
      for (const auto& f : Split(fields_text, ',')) {
        std::string trimmed(Trim(f));
        if (!trimmed.empty()) fields.push_back(std::move(trimmed));
      }
      if (fields.empty()) {
        return Status::InvalidArgument("fields grouping on '" + bolt_name +
                                       "' lists no fields");
      }
      cfg->FieldsGrouping(source, std::move(fields), stream);
    } else if (type == "shuffle") {
      cfg->ShuffleGrouping(source, stream);
    } else if (type == "global") {
      cfg->GlobalGrouping(source, stream);
    } else if (type == "all") {
      cfg->AllGrouping(source, stream);
    } else {
      return Status::InvalidArgument("unknown grouping type '" + type +
                                     "' on '" + bolt_name + "'");
    }
  }
  return Status::OK();
}

}  // namespace

Result<TopologySpec> BuildTopologyFromXml(std::string_view xml,
                                          const ComponentRegistry& registry) {
  auto doc = ParseXml(xml);
  if (!doc.ok()) return doc.status();
  const XmlNode& root = **doc;
  if (root.name != "topology") {
    return Status::InvalidArgument("root element must be <topology>, got <" +
                                   root.name + ">");
  }
  std::string topo_name = root.Attr("name");
  if (topo_name.empty()) topo_name = "topology";

  TopologyBuilder builder(topo_name);
  std::string previous;

  // Spouts may appear directly under <topology> or inside <spouts>.
  std::vector<const XmlNode*> spout_nodes = root.Children("spout");
  if (const XmlNode* spouts = root.Child("spouts")) {
    for (const XmlNode* n : spouts->Children("spout")) spout_nodes.push_back(n);
  }
  if (spout_nodes.empty()) {
    return Status::InvalidArgument("topology declares no <spout>");
  }
  for (const XmlNode* node : spout_nodes) {
    std::string name = node->Attr("name");
    std::string class_name = node->Attr("class");
    if (name.empty() || class_name.empty()) {
      return Status::InvalidArgument("spout needs name and class attributes");
    }
    const SpoutFactory* factory = registry.FindSpout(class_name);
    if (factory == nullptr) {
      return Status::NotFound("spout class not registered: " + class_name);
    }
    int parallelism = ParseParallelism(*node);
    if (parallelism < 1) {
      return Status::InvalidArgument("bad parallelism on spout " + name);
    }
    builder.SetSpout(name, *factory, parallelism);
    previous = name;
  }

  std::vector<const XmlNode*> bolt_nodes = root.Children("bolt");
  if (const XmlNode* bolts = root.Child("bolts")) {
    for (const XmlNode* n : bolts->Children("bolt")) bolt_nodes.push_back(n);
  }
  for (const XmlNode* node : bolt_nodes) {
    std::string name = node->Attr("name");
    std::string class_name = node->Attr("class");
    if (name.empty() || class_name.empty()) {
      return Status::InvalidArgument("bolt needs name and class attributes");
    }
    const BoltFactory* factory = registry.FindBolt(class_name);
    if (factory == nullptr) {
      return Status::NotFound("bolt class not registered: " + class_name);
    }
    int parallelism = ParseParallelism(*node);
    if (parallelism < 1) {
      return Status::InvalidArgument("bad parallelism on bolt " + name);
    }
    auto cfg = builder.SetBolt(name, *factory, parallelism);
    std::string tick = node->ChildText("tick_interval");
    if (!tick.empty()) {
      int64_t v = 0;
      if (!ParseInt64(tick, &v) || v < 0) {
        return Status::InvalidArgument("bad tick_interval on bolt " + name);
      }
      cfg.TickInterval(static_cast<int>(v));
    }
    TR_RETURN_IF_ERROR(AddGroupings(*node, name, previous, &cfg));
    previous = name;
  }

  return std::move(builder).Build();
}

}  // namespace tencentrec::tstorm
