#ifndef TENCENTREC_TOPO_SPOUTS_H_
#define TENCENTREC_TOPO_SPOUTS_H_

#include <memory>
#include <vector>

#include "common/metrics.h"
#include "common/trace.h"
#include "obs/freshness.h"
#include "tdaccess/consumer.h"
#include "topo/action_codec.h"

namespace tencentrec::topo {

/// Emits a fixed batch of actions (Application Specific Unit). Multiple
/// instances split the batch round-robin. Simulation and tests feed the
/// topology through this.
class VectorActionSpout : public tstorm::ISpout {
 public:
  /// `actions` must outlive the topology run.
  VectorActionSpout(const std::vector<core::UserAction>* actions,
                    size_t batch_size = 256)
      : actions_(actions), batch_size_(batch_size == 0 ? 1 : batch_size) {}

  std::vector<tstorm::StreamDecl> DeclareOutputs() const override {
    return {ActionStreamDecl("user_action")};
  }

  void Open(const tstorm::TaskContext& ctx) override {
    next_ = static_cast<size_t>(ctx.instance);
    stride_ = static_cast<size_t>(ctx.parallelism);
    freshness_ = obs::FreshnessTracker::Default().RegisterSlot(
        ctx.component_name.empty() ? "spout" : ctx.component_name);
  }

  bool NextBatch(tstorm::OutputCollector& out) override {
    size_t emitted = 0;
    while (next_ < actions_->size() && emitted < batch_size_) {
      core::UserAction action = (*actions_)[next_];
      // Simulation feeds enter the system here; stamp them unless the
      // driver already did (e.g. replaying pre-stamped publish traffic).
      if (action.ingest_micros == 0 && MetricsEnabled()) {
        action.ingest_micros = MonoMicros();
      }
      // Sampling decision for per-tuple tracing is made here, at the edge.
      if (action.trace_id == 0) action.trace_id = MaybeStartTrace();
      ScopedSpan span(action.trace_id, "spout");
      out.Emit(ActionToTuple(action));
      // Emitted watermark: everything this instance will ever emit at or
      // below this stamp is now in flight.
      freshness_.Advance(action.ingest_micros);
      next_ += stride_;
      ++emitted;
    }
    return next_ < actions_->size();
  }

 private:
  const std::vector<core::UserAction>* actions_;
  const size_t batch_size_;
  size_t next_ = 0;
  size_t stride_ = 1;
  obs::FreshnessTracker::ScopedSlot freshness_;
};

/// Consumes action payloads from a TDAccess topic until caught up, then
/// finishes — the production wiring of Fig. 6/9 (TDAccess -> spout), with
/// drain-on-idle semantics suited to batch-style simulation runs.
class TdAccessActionSpout : public tstorm::ISpout {
 public:
  TdAccessActionSpout(tdaccess::Cluster* cluster, std::string topic,
                      std::string group, size_t poll_batch = 256)
      : cluster_(cluster),
        topic_(std::move(topic)),
        group_(std::move(group)),
        poll_batch_(poll_batch == 0 ? 1 : poll_batch) {}

  std::vector<tstorm::StreamDecl> DeclareOutputs() const override {
    return {ActionStreamDecl("user_action")};
  }

  void Open(const tstorm::TaskContext& ctx) override;
  bool NextBatch(tstorm::OutputCollector& out) override;
  void Close() override;

  int64_t decode_errors() const { return decode_errors_; }

 private:
  tdaccess::Cluster* cluster_;
  std::string topic_;
  std::string group_;
  const size_t poll_batch_;
  std::unique_ptr<tdaccess::Consumer> consumer_;
  int64_t decode_errors_ = 0;
  obs::FreshnessTracker::ScopedSlot freshness_;
};

}  // namespace tencentrec::topo

#endif  // TENCENTREC_TOPO_SPOUTS_H_
