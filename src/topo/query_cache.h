#ifndef TENCENTREC_TOPO_QUERY_CACHE_H_
#define TENCENTREC_TOPO_QUERY_CACHE_H_

#include <condition_variable>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/metrics.h"
#include "common/profiled_mutex.h"
#include "common/status.h"

namespace tencentrec::topo {

/// The batched query tier's read cache (arXiv:2409.00400): a thread-safe,
/// short-TTL cache of per-key read results with three jobs on the
/// recommendation path:
///
///  1. **Dedupe.** A batch handed to GetBatch() is resolved per *unique*
///     key; repeated keys within one query plan cost one store read.
///  2. **Single-flight coalescing.** Concurrent identical reads from other
///     threads (hot users/items during a burst, §5.2 of the paper) find the
///     key in flight and wait for the owner's round-trip instead of issuing
///     their own — N querents, one store invocation.
///  3. **Positive *and* negative caching.** Both a value and a NotFound are
///     remembered for `ttl_micros`; misses on dead keys (deregistered
///     items, users without history) stop hammering the store.
///
/// Caching is at key-value granularity, *not* query-result granularity: a
/// query recomputes its scores from cached KV reads, so batched and
/// unbatched paths stay bit-identical while the TTL only bounds how stale a
/// single counter read may be. TDStore remains the single source of truth
/// (the Monolith argument, arXiv:2209.07663); the engine clears this cache
/// at batch boundaries and invalidates keys it rewrites out of band.
///
/// Statuses other than OK/NotFound (transient Unavailable etc.) are handed
/// to all coalesced waiters but never cached.
class QueryCache {
 public:
  struct Options {
    size_t capacity = 1 << 14;
    /// Entry lifetime; <= 0 keeps dedupe + coalescing but caches nothing.
    int64_t ttl_micros = 250'000;
    /// Injectable clock for TTL tests; nullptr = MonoMicros.
    std::function<uint64_t()> now_fn;
    /// Registry prefix for the exported counters (/vars, /metrics).
    std::string metrics_scope = "topo.query_cache";
  };

  /// Mutex-consistent view for tests (registry counters are process-wide
  /// and may be disabled; these always count).
  struct Stats {
    int64_t hits = 0;           ///< fresh positive entry served
    int64_t negative_hits = 0;  ///< fresh NotFound entry served
    int64_t misses = 0;         ///< keys this cache had to own a fetch for
    int64_t coalesced = 0;      ///< keys answered by waiting on another's fetch
    int64_t evictions = 0;
    int64_t invalidations = 0;
  };

  /// One grouped store read for a set of unique keys; fills `out` with one
  /// entry per key (OK value, NotFound, or a transient error).
  using FetchFn = std::function<Status(const std::vector<std::string>& keys,
                                       std::vector<Result<std::string>>* out)>;

  explicit QueryCache(Options options);

  /// Resolves every key: fresh cache entries are served directly, keys
  /// already in flight are coalesced onto the owner's round-trip, and the
  /// remainder is fetched with ONE `fetch` call. `out` gets exactly one
  /// entry per input key (duplicates share the unique key's result). The
  /// returned Status is non-OK only when the owned fetch itself failed
  /// wholesale (e.g. no route table); per-key errors live in `out`.
  Status GetBatch(const std::vector<std::string>& keys, const FetchFn& fetch,
                  std::vector<Result<std::string>>* out);

  /// Single-key convenience over GetBatch.
  Result<std::string> Get(const std::string& key, const FetchFn& fetch);

  /// Drops `key`'s entry (positive or negative) immediately — the
  /// write-through hook for out-of-band writers (RegisterItem etc.).
  void Invalidate(const std::string& key);

  /// Drops every entry (batch-boundary consistency point). In-flight
  /// fetches are unaffected; their results land with a fresh TTL.
  void Clear();

  Stats stats() const;
  size_t size() const;

 private:
  struct Entry {
    /// OK (value below) or NotFound; nothing else is ever cached.
    Status status;
    std::string value;
    uint64_t expires_at = 0;
    std::list<std::string>::iterator lru_it;
  };

  /// One in-flight store round-trip; waiters block on `cv` until the owner
  /// publishes.
  struct Flight {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    Result<std::string> result{Status::Internal("query cache: pending")};

    void Publish(Result<std::string> r) {
      {
        std::lock_guard<std::mutex> lock(mu);
        result = std::move(r);
        done = true;
      }
      cv.notify_all();
    }
    const Result<std::string>& Await() {
      std::unique_lock<std::mutex> lock(mu);
      cv.wait(lock, [&] { return done; });
      return result;
    }
  };

  uint64_t Now() const {
    return options_.now_fn != nullptr ? options_.now_fn() : MonoMicros();
  }
  bool CachingEnabled() const {
    return options_.capacity > 0 && options_.ttl_micros > 0;
  }
  /// Inserts/overwrites under mu_; evicts LRU entries past capacity.
  void InsertLocked(const std::string& key, const Result<std::string>& r,
                    uint64_t now);
  void EraseLocked(const std::unordered_map<std::string, Entry>::iterator& it);

  const Options options_;

  /// Profiled (DESIGN.md §13): every batched read from every querent
  /// funnels through this lock, making it the canonical read-side
  /// contention point at /profile/contention.
  mutable ProfiledMutex mu_{"topo.query_cache"};
  /// LRU list, most-recent first; entries point into it.
  std::list<std::string> lru_;
  std::unordered_map<std::string, Entry> entries_;
  std::unordered_map<std::string, std::shared_ptr<Flight>> inflight_;
  Stats stats_;

  // Registry mirrors of stats_ (null when metrics are disabled).
  Counter* hits_ = nullptr;
  Counter* negative_hits_ = nullptr;
  Counter* misses_ = nullptr;
  Counter* coalesced_ = nullptr;
  Counter* evictions_ = nullptr;
  Counter* invalidations_ = nullptr;
};

}  // namespace tencentrec::topo

#endif  // TENCENTREC_TOPO_QUERY_CACHE_H_
