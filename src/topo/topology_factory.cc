#include "topo/topology_factory.h"
#include <cmath>

#include "topo/bolts.h"

namespace tencentrec::topo {

int SuggestParallelism(double events_per_second, double per_event_cost_us,
                       double target_utilization, int min_parallelism,
                       int max_parallelism) {
  if (events_per_second <= 0.0 || per_event_cost_us <= 0.0) {
    return min_parallelism;
  }
  if (target_utilization <= 0.0 || target_utilization > 1.0) {
    target_utilization = 0.6;
  }
  const double busy_fraction = events_per_second * per_event_cost_us / 1e6;
  int suggested =
      static_cast<int>(std::ceil(busy_fraction / target_utilization));
  if (suggested < min_parallelism) suggested = min_parallelism;
  if (suggested > max_parallelism) suggested = max_parallelism;
  return suggested;
}

Result<tstorm::TopologySpec> BuildAppTopology(const AppContext* app,
                                              tstorm::SpoutFactory spout,
                                              bool materialize_results,
                                              int spout_parallelism) {
  const AppOptions& opts = app->options;
  const int p = opts.parallelism < 1 ? 1 : opts.parallelism;
  const int tick = opts.combiner_interval < 1 ? 64 : opts.combiner_interval;

  tstorm::TopologyBuilder builder(opts.app);
  builder.SetSpout("spout", std::move(spout),
                   spout_parallelism < 1 ? 1 : spout_parallelism);

  builder
      .SetBolt("pretreatment",
               [app] { return std::make_unique<PretreatmentBolt>(app); }, p)
      .ShuffleGrouping("spout");

  builder
      .SetBolt("user_history",
               [app] { return std::make_unique<UserHistoryBolt>(app); }, p)
      .FieldsGrouping("pretreatment", {"user"});

  if (opts.algorithms.item_cf) {
    builder
        .SetBolt("item_count",
                 [app] { return std::make_unique<ItemCountBolt>(app); }, p)
        .FieldsGrouping("user_history", {"item"}, "item_delta")
        .TickInterval(tick);
    builder
        .SetBolt("cf_pair",
                 [app] { return std::make_unique<CfPairBolt>(app); }, p)
        .FieldsGrouping("user_history", {"lo", "hi"}, "pair_delta");
    builder
        .SetBolt("similar_list",
                 [app] { return std::make_unique<SimilarListBolt>(app); }, p)
        .FieldsGrouping("cf_pair", {"item"}, "sim_update")
        .FieldsGrouping("cf_pair", {"item"}, "prune");
  }

  if (opts.algorithms.demographic) {
    builder
        .SetBolt("group_count",
                 [app] { return std::make_unique<GroupCountBolt>(app); }, p)
        .FieldsGrouping("user_history", {"group", "item"}, "group_delta")
        .TickInterval(tick);
    builder
        .SetBolt("hot_list",
                 [app] { return std::make_unique<HotListBolt>(app); }, p)
        .FieldsGrouping("group_count", {"group"}, "hot_touch");
  }

  if (opts.algorithms.ctr) {
    builder
        .SetBolt("ctr_stats",
                 [app] { return std::make_unique<CtrStatsBolt>(app); }, p)
        .FieldsGrouping("pretreatment", {"item"}, "user_action")
        .TickInterval(tick);
  }

  if (opts.algorithms.content_based) {
    builder
        .SetBolt("cb_profile",
                 [app] { return std::make_unique<CbProfileBolt>(app); }, p)
        .FieldsGrouping("pretreatment", {"user"}, "user_action");
  }

  if (materialize_results) {
    builder
        .SetBolt("result_storage",
                 [app] { return std::make_unique<ResultStorageBolt>(app); },
                 p)
        .FieldsGrouping("pretreatment", {"user"}, "user_action")
        .TickInterval(tick);
  }

  return std::move(builder).Build();
}

void RegisterComponents(tstorm::ComponentRegistry* registry,
                        const AppContext* app, const std::string& spout_class,
                        tstorm::SpoutFactory spout) {
  registry->RegisterSpout(spout_class, std::move(spout));
  registry->RegisterBolt("Pretreatment", [app] {
    return std::make_unique<PretreatmentBolt>(app);
  });
  registry->RegisterBolt("UserHistory", [app] {
    return std::make_unique<UserHistoryBolt>(app);
  });
  registry->RegisterBolt("ItemCount", [app] {
    return std::make_unique<ItemCountBolt>(app);
  });
  registry->RegisterBolt("CfPair", [app] {
    return std::make_unique<CfPairBolt>(app);
  });
  registry->RegisterBolt("SimilarList", [app] {
    return std::make_unique<SimilarListBolt>(app);
  });
  registry->RegisterBolt("GroupCount", [app] {
    return std::make_unique<GroupCountBolt>(app);
  });
  registry->RegisterBolt("HotList", [app] {
    return std::make_unique<HotListBolt>(app);
  });
  registry->RegisterBolt("CtrStats", [app] {
    return std::make_unique<CtrStatsBolt>(app);
  });
  registry->RegisterBolt("CbProfile", [app] {
    return std::make_unique<CbProfileBolt>(app);
  });
  registry->RegisterBolt("ResultStorage", [app] {
    return std::make_unique<ResultStorageBolt>(app);
  });
}

}  // namespace tencentrec::topo
