#ifndef TENCENTREC_TOPO_STORE_CACHE_H_
#define TENCENTREC_TOPO_STORE_CACHE_H_

#include <functional>
#include <list>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/status.h"
#include "tdstore/batch_writer.h"
#include "tdstore/client.h"

namespace tencentrec::topo {

/// Fine-grained read-through/write-through cache in front of a TDStore
/// client (§5.2, temporal burst events). Cached "in the granularity of data
/// instance, i.e., a key-value pair"; consistency holds because stream
/// grouping sends all tuples for a key to the same worker, making each
/// cached key single-writer. Writes update cache and store together so
/// other workers reading the key from TDStore see fresh data.
///
/// LRU-bounded; a bolt restart naturally drops the cache and re-reads from
/// TDStore (the recovery story of §3.3).
///
/// With set_writer() the cache goes WRITE-BEHIND: Put/AddDouble update the
/// cache immediately (single-writer-per-key makes it the authoritative
/// copy) and stage the store op on a BatchWriter instead of issuing a point
/// call per key — so a batch of hot-key updates ships as a handful of
/// Multi* runs (and one WAL record per run) rather than thousands of
/// single-op writes. Reads consult the writer's staged puts on a cache
/// miss, so read-your-writes survives eviction; a staged-op error fires the
/// op's callback at flush time and invalidates the cache entry that got
/// ahead of the store.
///
/// Absence is cached too: a Get that comes back NotFound leaves a negative
/// entry, so repeated probes of a dead key (deregistered item, fresh user)
/// stop hitting the store. The single-writer-per-key grouping keeps this
/// sound — the only writer that could create the key is this worker, and
/// every write path (Put / AddDouble / AddDoubleBatch) overwrites the
/// negative entry in the same call, so a write after a cached NotFound is
/// visible on the very next read.
class StoreCache {
 public:
  struct Stats {
    int64_t hits = 0;
    int64_t negative_hits = 0;  ///< cached NotFound served without a store read
    int64_t misses = 0;
    int64_t writes = 0;
  };

  /// `enabled = false` turns the cache into a transparent pass-through
  /// (every call hits TDStore) — the baseline for the cache ablation bench.
  /// `capacity = 0` is equivalent: nothing can be held, so the cache is
  /// disabled rather than evicting on every insert.
  StoreCache(tdstore::Client* client, size_t capacity, bool enabled = true)
      : client_(client), capacity_(capacity), enabled_(enabled) {}

  /// Arms write-behind mode (see class comment). The writer must be flushed
  /// at every point the store is required to be current — batch end, before
  /// a barrier commit — and this cache must outlive those flushes (the
  /// staged callbacks capture it). nullptr restores write-through point ops.
  void set_writer(tdstore::BatchWriter* writer) { writer_ = writer; }

  /// Cache hit, else TDStore read. A NotFound result is cached as a
  /// negative entry; this worker's own writes overwrite it immediately, so
  /// serving cached absence never hides a value this key could have.
  Result<std::string> Get(const std::string& key);

  /// Write-through: cache + TDStore. Replaces a negative entry, making the
  /// write visible to the next Get without a store read.
  Status Put(const std::string& key, std::string value);

  /// Read-modify-write add on a double; uses the cached value when present
  /// (saving the TDStore read, exactly the §5.2 optimization), writes
  /// through. Safe because this worker is the key's only writer.
  Result<double> AddDouble(const std::string& key, double delta);

  /// Batched AddDouble: stages every write on `writer` instead of issuing a
  /// store op per key. Cache hits compute the new value locally, update the
  /// cache immediately, and stage a Put (invalidated again if the put later
  /// fails); misses stage an IncrDouble whose callback inserts the
  /// server-computed value. `on_error(key, status)` fires during the
  /// writer's flush for each key whose write ultimately fails. This cache
  /// must outlive the flush that ships the staged ops.
  void AddDoubleBatch(
      const std::vector<std::pair<std::string, double>>& adds,
      tdstore::BatchWriter* writer,
      const std::function<void(const std::string&, const Status&)>& on_error);

  void Invalidate(const std::string& key);
  void Clear();

  const Stats& stats() const { return stats_; }
  size_t size() const { return entries_.size(); }

 private:
  struct Entry {
    std::string value;
    bool negative = false;  ///< cached NotFound; `value` is empty
    std::list<std::string>::iterator lru_it;
  };

  /// True when the cache actually holds entries (explicitly enabled and
  /// able to store at least one).
  bool Active() const { return enabled_ && capacity_ > 0; }
  /// Moves an already-found entry to the LRU front (no extra hash lookup;
  /// splice keeps `lru_it` valid).
  void Touch(Entry& entry);
  void InsertOrUpdate(const std::string& key, std::string value,
                      bool negative = false);
  /// Store read that sees through write-behind: serves the writer's staged
  /// put if one exists, flushes first when a staged incr makes the store
  /// value stale, else reads the store.
  Result<std::string> StoreRead(const std::string& key);

  tdstore::Client* client_;
  tdstore::BatchWriter* writer_ = nullptr;
  const size_t capacity_;
  const bool enabled_;
  /// LRU list, most-recent first; map values point into it.
  std::list<std::string> lru_;
  std::unordered_map<std::string, Entry> entries_;
  Stats stats_;
};

}  // namespace tencentrec::topo

#endif  // TENCENTREC_TOPO_STORE_CACHE_H_
