#ifndef TENCENTREC_TOPO_KEYS_H_
#define TENCENTREC_TOPO_KEYS_H_

#include <string>

#include "core/action.h"
#include "core/content.h"

namespace tencentrec::topo {

/// TDStore key schema for one application's recommendation state. All keys
/// are namespaced by app so applications sharing a cluster cannot collide,
/// while algorithm-common statistics (itemCount etc.) are shared between
/// algorithms of the same app (§5.1: "multiple algorithms share the
/// statistical data").
///
/// Session-scoped counters (`ic`, `pc`, `hot`, `ctr`) embed the session id
/// so the sliding window of Eq. 10 is a prefix sum over live sessions.
class Keys {
 public:
  explicit Keys(std::string app) : app_(std::move(app)) {}

  const std::string& app() const { return app_; }

  /// Serialized UserHistory blob.
  std::string UserHistory(core::UserId user) const {
    return "uh:" + app_ + ":" + std::to_string(user);
  }

  /// itemCount_w (double) for one session.
  std::string ItemCount(int64_t session, core::ItemId item) const {
    return "ic:" + app_ + ":" + std::to_string(session) + ":" +
           std::to_string(item);
  }

  /// pairCount_w (double) for one session; callers pass canonical lo<=hi.
  std::string PairCount(int64_t session, core::ItemId lo,
                        core::ItemId hi) const {
    return "pc:" + app_ + ":" + std::to_string(session) + ":" +
           std::to_string(lo) + ":" + std::to_string(hi);
  }

  /// n_ij (int64): observations of the pair (Algorithm 1).
  std::string PairObservations(core::ItemId lo, core::ItemId hi) const {
    return "po:" + app_ + ":" + std::to_string(lo) + ":" + std::to_string(hi);
  }

  /// Pruned-pair flag (presence = pruned; monotone, safe to cache).
  std::string Pruned(core::ItemId lo, core::ItemId hi) const {
    return "pr:" + app_ + ":" + std::to_string(lo) + ":" + std::to_string(hi);
  }

  /// Serialized similar-items top-K list of an item.
  std::string SimilarItems(core::ItemId item) const {
    return "sim:" + app_ + ":" + std::to_string(item);
  }

  /// Admission threshold (double) of an item's similar-items list.
  std::string SimilarThreshold(core::ItemId item) const {
    return "st:" + app_ + ":" + std::to_string(item);
  }

  /// Group popularity count (double) for one session (DB algorithm).
  std::string GroupHot(core::GroupId group, int64_t session,
                       core::ItemId item) const {
    return "gh:" + app_ + ":" + std::to_string(group) + ":" +
           std::to_string(session) + ":" + std::to_string(item);
  }

  /// Serialized hot-items top-K list of a group.
  std::string HotList(core::GroupId group) const {
    return "hl:" + app_ + ":" + std::to_string(group);
  }

  /// CTR counts (impressions, clicks — two doubles) per level key/session.
  std::string CtrCounts(uint64_t level_key, int64_t session) const {
    return "ctr:" + app_ + ":" + std::to_string(session) + ":" +
           std::to_string(level_key);
  }

  /// Serialized content profile of a user (CB algorithm).
  std::string ContentProfile(core::UserId user) const {
    return "cp:" + app_ + ":" + std::to_string(user);
  }

  /// Serialized tag vector of an item (CB catalog).
  std::string ItemTags(core::ItemId item) const {
    return "it:" + app_ + ":" + std::to_string(item);
  }

  /// Serialized item list for a tag (CB inverted index).
  std::string TagIndex(core::TagId tag) const {
    return "ti:" + app_ + ":" + std::to_string(tag);
  }

  /// Materialized recommendation list of a user (storage layer).
  std::string Results(core::UserId user) const {
    return "rec:" + app_ + ":" + std::to_string(user);
  }

  /// Windowed itemCount total exported from the in-memory CF mirror at
  /// checkpoint time (double).
  std::string MirrorItemCount(core::ItemId item) const {
    return "mic:" + app_ + ":" + std::to_string(item);
  }

  /// Serialized similar-items top-K list exported from the CF mirror.
  std::string MirrorSimilar(core::ItemId item) const {
    return "msim:" + app_ + ":" + std::to_string(item);
  }

 private:
  std::string app_;
};

}  // namespace tencentrec::topo

#endif  // TENCENTREC_TOPO_KEYS_H_
