#include "topo/bolts.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "core/ctr.h"
#include "core/rating.h"
#include "topo/blob_codec.h"
#include "topo/query.h"

namespace tencentrec::topo {

namespace {

/// Upserts (other, score) into a descending scored list capped at `cap`.
/// Returns true if the list changed.
bool UpsertScored(core::Recommendations* list, core::ItemId other,
                  double score, size_t cap) {
  for (auto& e : *list) {
    if (e.item == other) {
      if (e.score == score) return false;
      e.score = score;
      std::sort(list->begin(), list->end(),
                [](const core::ScoredItem& a, const core::ScoredItem& b) {
                  if (a.score != b.score) return a.score > b.score;
                  return a.item < b.item;
                });
      return true;
    }
  }
  if (list->size() >= cap && score <= list->back().score) return false;
  list->push_back({other, score});
  std::sort(list->begin(), list->end(),
            [](const core::ScoredItem& a, const core::ScoredItem& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.item < b.item;
            });
  if (list->size() > cap) list->resize(cap);
  return true;
}

}  // namespace

void StoreBolt::Prepare(const tstorm::TaskContext& ctx) {
  ctx_ = ctx;
  client_ = std::make_unique<tdstore::Client>(app_->store);
  cache_ = std::make_unique<StoreCache>(client_.get(),
                                        app_->options.cache_capacity,
                                        app_->options.enable_cache);
  if (app_->options.enable_store_batching) {
    tdstore::BatchWriter::Options wopts;
    wopts.max_ops = app_->options.store_batch_max_ops;
    wopts.max_age_micros = app_->options.store_batch_max_age_micros;
    writer_ = std::make_unique<tdstore::BatchWriter>(client_.get(), wopts);
  } else {
    writer_.reset();
  }
  // Write-behind: with batching on, every cache write stages on the writer
  // instead of issuing a point store op per key (no-op set when batching is
  // off). Cleanup() ships whatever the auto-flush thresholds left staged.
  cache_->set_writer(writer_.get());
  // Resolve the event-to-store histogram once; a null pointer makes every
  // RecordEventToStore a branch-and-return with no clock read.
  e2s_ = MetricsEnabled()
             ? MetricRegistry::Default().GetHistogram(
                   "topo." + app_->options.app + "." + ctx.component_name +
                   ".event_to_store_us")
             : nullptr;
  span_name_ = ctx.component_name;
  flush_span_name_ = ctx.component_name + ".flush";
  freshness_ = obs::FreshnessTracker::Default().RegisterSlot(
      ctx.component_name.empty() ? "bolt" : ctx.component_name);
}

void StoreBolt::Cleanup() {
  if (writer_ == nullptr) return;
  Status s = writer_->Flush();
  if (!s.ok()) {
    TR_LOG(kError, "write-behind flush at cleanup failed: %s",
           s.ToString().c_str());
  }
}

Status StoreBolt::FlushCombinerBatched(Combiner* combiner) {
  std::vector<std::pair<std::string, double>> drained;
  combiner->Drain(&drained);
  if (drained.empty()) return Status::OK();
  // Keep the deltas addressable by key so a failed write can be re-buffered
  // (the combiner re-merges it with anything that arrived meanwhile).
  std::unordered_map<std::string, double> deltas;
  deltas.reserve(drained.size());
  for (const auto& [key, delta] : drained) deltas.emplace(key, delta);
  Status first_error;
  cache_->AddDoubleBatch(drained, writer_.get(),
                         [&](const std::string& key, const Status& s) {
                           if (first_error.ok()) first_error = s;
                           auto it = deltas.find(key);
                           if (it != deltas.end()) {
                             combiner->Add(key, it->second);
                           }
                         });
  Status flush = writer_->Flush();
  if (!first_error.ok()) return first_error;
  return flush;
}

Result<double> StoreBolt::WindowSum(
    const std::function<std::string(int64_t session)>& key_of, EventTime now,
    bool use_cache) {
  const int64_t last = app_->SessionOf(now);
  const int64_t first = app_->WindowStart(now);
  double sum = 0.0;
  for (int64_t s = first; s <= last; ++s) {
    auto v = use_cache ? cache_->Get(key_of(s)) : client_->Get(key_of(s));
    if (v.ok()) {
      auto decoded = tdstore::DecodeDouble(*v);
      if (!decoded.ok()) return decoded.status();
      sum += *decoded;
    } else if (!v.status().IsNotFound()) {
      return v.status();
    }
  }
  return sum;
}

// --- PretreatmentBolt -------------------------------------------------------

void PretreatmentBolt::Execute(const tstorm::Tuple& input,
                               const tstorm::TupleSource& source,
                               tstorm::OutputCollector& out) {
  (void)source;
  auto action = ActionFromTuple(input);
  if (!action.ok() || action->user <= 0 || action->item <= 0 ||
      action->timestamp < 0) {
    ++dropped_;
    return;
  }
  ScopedSpan span(action->trace_id, span_name_);
  out.Emit(ActionToTuple(*action));
  // Pass-through stage: forwarding IS full processing here.
  AdvanceFreshness(action->ingest_micros);
}

// --- UserHistoryBolt --------------------------------------------------------

void UserHistoryBolt::Execute(const tstorm::Tuple& input,
                              const tstorm::TupleSource& source,
                              tstorm::OutputCollector& out) {
  (void)source;
  auto action = ActionFromTuple(input);
  if (!action.ok()) return;
  const auto ingest = static_cast<int64_t>(action->ingest_micros);
  const auto trace = static_cast<int64_t>(action->trace_id);
  ScopedSpan span(action->trace_id, span_name_);

  // Demographic path (multi-hash stage 1 -> 2 handoff): popularity weight
  // per action, routed by (group, item).
  if (options().algorithms.demographic) {
    const double w = options().weights.Weight(action->action);
    if (w > 0.0) {
      const auto group =
          static_cast<int64_t>(core::DemographicGroup(action->demographics));
      out.EmitTo(2, tstorm::Tuple::Of({group, action->item, w,
                                       action->timestamp, ingest, trace}));
      if (group != 0) {
        out.EmitTo(2, tstorm::Tuple::Of({static_cast<int64_t>(0),
                                         action->item, w,
                                         action->timestamp, ingest, trace}));
      }
    }
  }

  if (!options().algorithms.item_cf) return;

  // Load + update the user's history blob.
  const std::string key = keys().UserHistory(action->user);
  core::UserHistory history;
  auto blob = cache_->Get(key);
  if (blob.ok()) {
    auto decoded = DecodeUserHistory(*blob);
    if (decoded.ok()) {
      history = std::move(decoded).value();
    } else {
      TR_LOG(kWarning, "corrupt user history for %lld; resetting",
             static_cast<long long>(action->user));
    }
  } else if (!blob.status().IsNotFound()) {
    TR_LOG(kError, "user history read failed: %s",
           blob.status().ToString().c_str());
    return;
  }

  core::RatingUpdate update =
      history.Apply(*action, options().weights, options().linked_time);
  Status put = cache_->Put(key, EncodeUserHistory(history));
  if (!put.ok()) {
    TR_LOG(kError, "user history write failed: %s", put.ToString().c_str());
    return;
  }
  RecordEventToStore(action->ingest_micros, action->trace_id);

  if (update.rating_delta > 0.0) {
    out.EmitTo(0, tstorm::Tuple::Of({update.item, update.rating_delta,
                                     action->timestamp, ingest, trace}));
  }
  for (const auto& pair : update.pairs) {
    const core::ItemId lo = std::min(update.item, pair.other);
    const core::ItemId hi = std::max(update.item, pair.other);
    out.EmitTo(1, tstorm::Tuple::Of({lo, hi, pair.co_rating_delta,
                                     action->timestamp, ingest, trace}));
  }
}

// --- ItemCountBolt ----------------------------------------------------------

void ItemCountBolt::Execute(const tstorm::Tuple& input,
                            const tstorm::TupleSource& source,
                            tstorm::OutputCollector& out) {
  (void)source;
  const core::ItemId item = input.GetInt(0);
  const double delta = input.GetDouble(1);
  const EventTime ts = input.GetInt(2);
  const auto ingest = static_cast<uint64_t>(input.GetInt(3));
  const auto trace = static_cast<uint64_t>(input.GetInt(4));
  ScopedSpan span(trace, span_name_);
  const std::string key = keys().ItemCount(app_->SessionOf(ts), item);
  if (options().enable_combiner) {
    combiner_.Add(key, delta);
    // The delta reaches the store only at the next flush; remember the
    // oldest buffered stamp so the flush records an honest latency.
    if (ingest != 0 &&
        (oldest_pending_ingest_ == 0 || ingest < oldest_pending_ingest_)) {
      oldest_pending_ingest_ = ingest;
    }
    pending_max_ingest_ = std::max(pending_max_ingest_, ingest);
    if (oldest_pending_trace_ == 0) oldest_pending_trace_ = trace;
  } else {
    auto r = cache_->AddDouble(key, delta);
    if (!r.ok()) {
      TR_LOG(kError, "itemCount update failed: %s",
             r.status().ToString().c_str());
      return;
    }
    RecordEventToStore(ingest, trace);
  }
  (void)out;
}

void ItemCountBolt::Tick(tstorm::OutputCollector& out) {
  (void)out;
  const uint64_t flush_trace = oldest_pending_trace_;
  ScopedSpan span(flush_trace, flush_span_name_);
  oldest_pending_trace_ = 0;
  Status s = writer_ != nullptr
                 ? FlushCombinerBatched(&combiner_)
                 : combiner_.Flush([&](const std::string& key, double delta) {
                     return cache_->AddDouble(key, delta).status();
                   });
  if (!s.ok()) {
    TR_LOG(kError, "itemCount flush failed: %s", s.ToString().c_str());
    return;
  }
  RecordEventToStore(oldest_pending_ingest_, flush_trace);
  AdvanceFreshness(pending_max_ingest_);
  oldest_pending_ingest_ = 0;
  pending_max_ingest_ = 0;
}

// --- CfPairBolt -------------------------------------------------------------

void CfPairBolt::Prepare(const tstorm::TaskContext& ctx) {
  StoreBolt::Prepare(ctx);
  double delta = options().hoeffding_delta;
  if (delta <= 0.0 || delta >= 1.0) delta = 0.05;
  hoeffding_ln_inv_delta_ = std::log(1.0 / delta);
}

void CfPairBolt::Execute(const tstorm::Tuple& input,
                         const tstorm::TupleSource& source,
                         tstorm::OutputCollector& out) {
  (void)source;
  const core::ItemId lo = input.GetInt(0);
  const core::ItemId hi = input.GetInt(1);
  const double co_delta = input.GetDouble(2);
  const EventTime ts = input.GetInt(3);
  const int64_t ingest = input.GetInt(4);
  const int64_t trace = input.GetInt(5);
  ScopedSpan span(static_cast<uint64_t>(trace), span_name_);

  // Algorithm 1, line 3–5: pruned pairs are skipped outright. The flag is
  // monotone (never unset), so caching it is safe.
  if (options().enable_pruning) {
    auto flag = cache_->Get(keys().Pruned(lo, hi));
    if (flag.ok()) {
      ++pruned_skips_;
      // Skipping a pruned pair completes the tuple.
      AdvanceFreshness(static_cast<uint64_t>(ingest));
      return;
    }
    if (!flag.status().IsNotFound()) {
      TR_LOG(kError, "prune flag read failed: %s",
             flag.status().ToString().c_str());
      return;
    }
  }

  // pairCount update (Eq. 8) in this event's session bucket.
  const int64_t session = app_->SessionOf(ts);
  auto pc = cache_->AddDouble(keys().PairCount(session, lo, hi), co_delta);
  if (!pc.ok()) {
    TR_LOG(kError, "pairCount update failed: %s",
           pc.status().ToString().c_str());
    return;
  }
  ++pair_updates_;
  RecordEventToStore(static_cast<uint64_t>(ingest),
                     static_cast<uint64_t>(trace));

  // Read the windowed sums and combine into the new similarity (Eq. 5/10).
  // itemCounts are maintained by ItemCountBolt; the statistics/computation
  // decoupling of §5.1 means we may read a slightly stale subtotal while
  // its combiner holds a delta — the next touch of this pair refreshes it.
  // pairCounts are this bolt's own keys (cacheable); itemCounts belong to
  // ItemCountBolt and must be read fresh.
  auto pc_sum = WindowSum(
      [&](int64_t s) { return keys().PairCount(s, lo, hi); }, ts,
      /*use_cache=*/true);
  auto ic_lo = WindowSum(
      [&](int64_t s) { return keys().ItemCount(s, lo); }, ts,
      /*use_cache=*/false);
  auto ic_hi = WindowSum(
      [&](int64_t s) { return keys().ItemCount(s, hi); }, ts,
      /*use_cache=*/false);
  if (!pc_sum.ok() || !ic_lo.ok() || !ic_hi.ok()) {
    TR_LOG(kError, "window sum read failed");
    return;
  }
  double sim = 0.0;
  if (*ic_lo > 0.0 && *ic_hi > 0.0 && *pc_sum > 0.0) {
    sim = *pc_sum / (std::sqrt(*ic_lo) * std::sqrt(*ic_hi));
  }

  out.EmitTo(0, tstorm::Tuple::Of({lo, hi, sim, ingest, trace}));
  out.EmitTo(0, tstorm::Tuple::Of({hi, lo, sim, ingest, trace}));

  if (!options().enable_pruning) return;

  // Algorithm 1 lines 9–17.
  auto n = client_->IncrInt64(keys().PairObservations(lo, hi), 1);
  if (!n.ok()) return;
  // Both admission thresholds in one grouped read (they hash to arbitrary
  // instances, so this is one store call per distinct host instead of two
  // unconditional calls).
  std::vector<Result<double>> thresholds;
  Status t_status = client_->MultiGetDouble(
      {keys().SimilarThreshold(lo), keys().SimilarThreshold(hi)}, 0.0,
      &thresholds);
  if (!t_status.ok() || !thresholds[0].ok() || !thresholds[1].ok()) return;
  const double t = std::min(*thresholds[0], *thresholds[1]);
  if (t <= 0.0) return;
  const double epsilon = std::sqrt(hoeffding_ln_inv_delta_ /
                                   (2.0 * static_cast<double>(*n)));
  if (epsilon < t - sim) {
    Status s = cache_->Put(keys().Pruned(lo, hi), "1");
    if (!s.ok()) return;
    ++prune_decisions_;
    out.EmitTo(1, tstorm::Tuple::Of({lo, hi}));
    out.EmitTo(1, tstorm::Tuple::Of({hi, lo}));
  }
}

// --- SimilarListBolt --------------------------------------------------------

void SimilarListBolt::Execute(const tstorm::Tuple& input,
                              const tstorm::TupleSource& source,
                              tstorm::OutputCollector& out) {
  (void)source;
  (void)out;
  const core::ItemId item = input.GetInt(0);
  const core::ItemId other = input.GetInt(1);
  const bool is_prune = input.size() == 2;  // "prune" stream has two fields
  ScopedSpan span(is_prune ? 0 : static_cast<uint64_t>(input.GetInt(4)),
                  span_name_);

  const std::string key = keys().SimilarItems(item);
  core::Recommendations list;
  auto blob = cache_->Get(key);
  if (blob.ok()) {
    auto decoded = DecodeScoredList(*blob);
    if (decoded.ok()) list = std::move(decoded).value();
  } else if (!blob.status().IsNotFound()) {
    TR_LOG(kError, "similar list read failed: %s",
           blob.status().ToString().c_str());
    return;
  }

  bool changed;
  if (is_prune) {
    const size_t before = list.size();
    std::erase_if(list, [&](const core::ScoredItem& s) {
      return s.item == other;
    });
    changed = list.size() != before;
  } else {
    const double sim = input.GetDouble(2);
    changed = UpsertScored(&list, other, sim,
                           static_cast<size_t>(options().top_k));
  }
  if (!changed) {
    // No-op upsert: the tuple is fully handled, just nothing to write.
    if (!is_prune) AdvanceFreshness(static_cast<uint64_t>(input.GetInt(3)));
    return;
  }

  Status s = cache_->Put(key, EncodeScoredList(list));
  if (!s.ok()) {
    TR_LOG(kError, "similar list write failed: %s", s.ToString().c_str());
    return;
  }
  if (!is_prune) {
    RecordEventToStore(static_cast<uint64_t>(input.GetInt(3)),
                       static_cast<uint64_t>(input.GetInt(4)));
  }
  // Publish the admission threshold for the pruning stage: the K-th best
  // score once the list is full, else 0 (everything admissible).
  const double threshold =
      list.size() >= static_cast<size_t>(options().top_k) ? list.back().score
                                                          : 0.0;
  s = cache_->Put(keys().SimilarThreshold(item),
                  tdstore::EncodeDouble(threshold));
  if (!s.ok()) {
    TR_LOG(kError, "threshold write failed: %s", s.ToString().c_str());
  }
}

// --- GroupCountBolt ---------------------------------------------------------

void GroupCountBolt::Execute(const tstorm::Tuple& input,
                             const tstorm::TupleSource& source,
                             tstorm::OutputCollector& out) {
  (void)source;
  const int64_t group = input.GetInt(0);
  const core::ItemId item = input.GetInt(1);
  const double delta = input.GetDouble(2);
  const EventTime ts = input.GetInt(3);
  const int64_t ingest = input.GetInt(4);
  const int64_t trace = input.GetInt(5);
  ScopedSpan span(static_cast<uint64_t>(trace), span_name_);
  latest_ts_ = std::max(latest_ts_, ts);

  const std::string key = keys().GroupHot(static_cast<core::GroupId>(group),
                                          app_->SessionOf(ts), item);
  if (options().enable_combiner) {
    combiner_.Add(key, delta);
    touched_.insert({group, item});
    const auto stamp = static_cast<uint64_t>(ingest);
    if (stamp != 0 &&
        (oldest_pending_ingest_ == 0 || stamp < oldest_pending_ingest_)) {
      oldest_pending_ingest_ = stamp;
    }
    pending_max_ingest_ = std::max(pending_max_ingest_, stamp);
    if (oldest_pending_trace_ == 0) {
      oldest_pending_trace_ = static_cast<uint64_t>(trace);
    }
  } else {
    auto r = cache_->AddDouble(key, delta);
    if (!r.ok()) return;
    RecordEventToStore(static_cast<uint64_t>(ingest),
                       static_cast<uint64_t>(trace));
    out.Emit(tstorm::Tuple::Of({group, item, ts, ingest, trace}));
  }
}

void GroupCountBolt::Tick(tstorm::OutputCollector& out) {
  const uint64_t flush_trace = oldest_pending_trace_;
  ScopedSpan span(flush_trace, flush_span_name_);
  oldest_pending_trace_ = 0;
  Status s = writer_ != nullptr
                 ? FlushCombinerBatched(&combiner_)
                 : combiner_.Flush([&](const std::string& key, double delta) {
                     return cache_->AddDouble(key, delta).status();
                   });
  if (!s.ok()) {
    TR_LOG(kError, "group count flush failed: %s", s.ToString().c_str());
    return;
  }
  RecordEventToStore(oldest_pending_ingest_, flush_trace);
  AdvanceFreshness(pending_max_ingest_);
  // Forward the flushed batch's watermark downstream: everything buffered up
  // to pending_max_ingest_ is now landed, so the hot-list stage may advance
  // that far once it re-derives the touched groups.
  const auto flush_ingest = static_cast<int64_t>(pending_max_ingest_);
  oldest_pending_ingest_ = 0;
  pending_max_ingest_ = 0;
  for (const auto& [group, item] : touched_) {
    out.Emit(tstorm::Tuple::Of({group, item, latest_ts_, flush_ingest,
                                static_cast<int64_t>(flush_trace)}));
  }
  touched_.clear();
}

// --- HotListBolt ------------------------------------------------------------

void HotListBolt::Execute(const tstorm::Tuple& input,
                          const tstorm::TupleSource& source,
                          tstorm::OutputCollector& out) {
  (void)source;
  (void)out;
  const int64_t group = input.GetInt(0);
  const core::ItemId item = input.GetInt(1);
  ScopedSpan span(static_cast<uint64_t>(input.GetInt(4)), span_name_);
  latest_ts_ = std::max(latest_ts_, input.GetInt(2));

  // Windowed popularity of the touched item (window end = the latest event
  // time this bolt has seen), then upsert into the group's hot list blob.
  // Group counters are written by GroupCountBolt — never cache them here.
  auto pop = WindowSum(
      [&](int64_t s) {
        return keys().GroupHot(static_cast<core::GroupId>(group), s, item);
      },
      latest_ts_, /*use_cache=*/false);
  if (!pop.ok()) return;

  const std::string key = keys().HotList(static_cast<core::GroupId>(group));
  core::Recommendations list;
  auto blob = cache_->Get(key);
  if (blob.ok()) {
    auto decoded = DecodeScoredList(*blob);
    if (decoded.ok()) list = std::move(decoded).value();
  } else if (!blob.status().IsNotFound()) {
    return;
  }
  if (!UpsertScored(&list, item, *pop,
                    static_cast<size_t>(options().hot_list_size))) {
    return;
  }
  Status s = cache_->Put(key, EncodeScoredList(list));
  if (!s.ok()) {
    TR_LOG(kError, "hot list write failed: %s", s.ToString().c_str());
    return;
  }
  RecordEventToStore(static_cast<uint64_t>(input.GetInt(3)),
                     static_cast<uint64_t>(input.GetInt(4)));
}

// --- CtrStatsBolt -----------------------------------------------------------

void CtrStatsBolt::Execute(const tstorm::Tuple& input,
                           const tstorm::TupleSource& source,
                           tstorm::OutputCollector& out) {
  (void)source;
  (void)out;
  auto action = ActionFromTuple(input);
  if (!action.ok()) return;
  const bool click = action->action == core::ActionType::kClick;
  if (!click && action->action != core::ActionType::kImpression) return;
  ScopedSpan span(action->trace_id, span_name_);

  const int64_t session = app_->SessionOf(action->timestamp);
  const int max_level = core::CtrMaxLevel(action->demographics);
  for (int level = 0; level <= max_level; ++level) {
    const uint64_t level_key =
        core::CtrLevelKey(action->item, level, action->demographics);
    const std::string key =
        keys().CtrCounts(level_key, session) + (click ? ":c" : ":i");
    if (options().enable_combiner) {
      combiner_.Add(key, 1.0);
    } else {
      auto r = cache_->AddDouble(key, 1.0);
      if (!r.ok()) return;
    }
  }
  if (options().enable_combiner) {
    const uint64_t stamp = action->ingest_micros;
    if (stamp != 0 &&
        (oldest_pending_ingest_ == 0 || stamp < oldest_pending_ingest_)) {
      oldest_pending_ingest_ = stamp;
    }
    pending_max_ingest_ = std::max(pending_max_ingest_, stamp);
    if (oldest_pending_trace_ == 0) oldest_pending_trace_ = action->trace_id;
  } else {
    RecordEventToStore(action->ingest_micros, action->trace_id);
  }
}

void CtrStatsBolt::Tick(tstorm::OutputCollector& out) {
  (void)out;
  const uint64_t flush_trace = oldest_pending_trace_;
  ScopedSpan span(flush_trace, flush_span_name_);
  oldest_pending_trace_ = 0;
  Status s = writer_ != nullptr
                 ? FlushCombinerBatched(&combiner_)
                 : combiner_.Flush([&](const std::string& key, double delta) {
                     return cache_->AddDouble(key, delta).status();
                   });
  if (!s.ok()) {
    TR_LOG(kError, "ctr flush failed: %s", s.ToString().c_str());
    return;
  }
  RecordEventToStore(oldest_pending_ingest_, flush_trace);
  AdvanceFreshness(pending_max_ingest_);
  oldest_pending_ingest_ = 0;
  pending_max_ingest_ = 0;
}

// --- CbProfileBolt ----------------------------------------------------------

void CbProfileBolt::Prepare(const tstorm::TaskContext& ctx) {
  StoreBolt::Prepare(ctx);
  const EventTime hl =
      options().profile_half_life < 1 ? 1 : options().profile_half_life;
  decay_lambda_ = std::log(2.0) / static_cast<double>(hl);
}

void CbProfileBolt::Execute(const tstorm::Tuple& input,
                            const tstorm::TupleSource& source,
                            tstorm::OutputCollector& out) {
  (void)source;
  (void)out;
  auto action = ActionFromTuple(input);
  if (!action.ok()) return;
  const double w = options().weights.Weight(action->action);
  if (w <= 0.0) return;
  ScopedSpan span(action->trace_id, span_name_);

  auto tags_blob = cache_->Get(keys().ItemTags(action->item));
  if (!tags_blob.ok()) return;  // untagged item: nothing to learn
  auto tags = DecodeTagVector(*tags_blob);
  if (!tags.ok()) return;

  const std::string key = keys().ContentProfile(action->user);
  ContentProfileBlob profile;
  auto blob = cache_->Get(key);
  if (blob.ok()) {
    auto decoded = DecodeContentProfile(*blob);
    if (decoded.ok()) profile = std::move(decoded).value();
  } else if (!blob.status().IsNotFound()) {
    return;
  }

  // Decay to the action time, then fold the item's tags in.
  if (action->timestamp > profile.last_update && !profile.weights.empty()) {
    const double factor = std::exp(
        -decay_lambda_ *
        static_cast<double>(action->timestamp - profile.last_update));
    for (auto& [tag, weight] : profile.weights) weight *= factor;
    std::erase_if(profile.weights,
                  [](const auto& p) { return p.second < 1e-9; });
  }
  profile.last_update = std::max(profile.last_update, action->timestamp);
  for (const auto& [tag, tw] : *tags) {
    bool found = false;
    for (auto& [pt, pw] : profile.weights) {
      if (pt == tag) {
        pw += w * tw;
        found = true;
        break;
      }
    }
    if (!found) profile.weights.emplace_back(tag, w * tw);
  }

  Status s = cache_->Put(key, EncodeContentProfile(profile));
  if (!s.ok()) {
    TR_LOG(kError, "profile write failed: %s", s.ToString().c_str());
    return;
  }
  RecordEventToStore(action->ingest_micros, action->trace_id);
}

// --- ResultStorageBolt ------------------------------------------------------

void ResultStorageBolt::Execute(const tstorm::Tuple& input,
                                const tstorm::TupleSource& source,
                                tstorm::OutputCollector& out) {
  (void)source;
  (void)out;
  auto action = ActionFromTuple(input);
  if (!action.ok()) return;
  ScopedSpan span(action->trace_id, span_name_);
  TouchedUser& t = pending_[action->user];
  t.demographics = action->demographics;
  t.ts = std::max(t.ts, action->timestamp);
  if (t.ingest_micros == 0 ||
      (action->ingest_micros != 0 && action->ingest_micros < t.ingest_micros)) {
    t.ingest_micros = action->ingest_micros;
  }
  if (t.trace_id == 0) t.trace_id = action->trace_id;
  pending_max_ingest_ = std::max(pending_max_ingest_, action->ingest_micros);
}

void ResultStorageBolt::Tick(tstorm::OutputCollector& out) {
  (void)out;
  if (pending_.empty()) return;
  StoreQuery query(app_);
  size_t failures = 0;
  for (const auto& [user, touched] : pending_) {
    ScopedSpan span(touched.trace_id, flush_span_name_);
    auto recs = query.Recommend(user, touched.demographics,
                                static_cast<size_t>(options().top_k),
                                touched.ts);
    if (!recs.ok()) {
      ++failures;
      continue;
    }
    Status s = client_->Put(keys().Results(user), EncodeScoredList(*recs));
    if (!s.ok()) {
      ++failures;
      continue;
    }
    ++results_written_;
    // Event -> final recommendation blob: the paper's headline freshness
    // number, measured from the oldest action folded into this refresh.
    RecordEventToStore(touched.ingest_micros, touched.trace_id);
  }
  // Every pending action has been served only if no refresh failed; a
  // partial tick keeps the watermark where the per-user records put it.
  if (failures == 0) AdvanceFreshness(pending_max_ingest_);
  pending_max_ingest_ = 0;
  pending_.clear();
}

}  // namespace tencentrec::topo
