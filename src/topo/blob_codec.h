#ifndef TENCENTREC_TOPO_BLOB_CODEC_H_
#define TENCENTREC_TOPO_BLOB_CODEC_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "core/content.h"
#include "core/rating.h"
#include "core/scored.h"

namespace tencentrec::topo {

/// Binary serialization for the structured blobs bolts keep in TDStore.
/// Fixed-width little-endian records behind a count header; Decode*
/// functions return Corruption on any size mismatch.

/// UserHistory <-> blob of (item, rating, last_action) records.
std::string EncodeUserHistory(const core::UserHistory& history);
Result<core::UserHistory> DecodeUserHistory(std::string_view blob);

/// Scored list (similar items, hot items, results) <-> blob.
std::string EncodeScoredList(const core::Recommendations& list);
Result<core::Recommendations> DecodeScoredList(std::string_view blob);

/// Tag vector <-> blob.
std::string EncodeTagVector(const core::TagVector& tags);
Result<core::TagVector> DecodeTagVector(std::string_view blob);

/// Item id list (tag inverted index) <-> blob.
std::string EncodeItemList(const std::vector<core::ItemId>& items);
Result<std::vector<core::ItemId>> DecodeItemList(std::string_view blob);

/// Content profile: (tag, weight) pairs plus last-update time.
struct ContentProfileBlob {
  std::vector<std::pair<core::TagId, double>> weights;
  EventTime last_update = 0;
};
std::string EncodeContentProfile(const ContentProfileBlob& profile);
Result<ContentProfileBlob> DecodeContentProfile(std::string_view blob);

/// Two doubles (CTR impressions/clicks).
std::string EncodeDoublePair(double a, double b);
Result<std::pair<double, double>> DecodeDoublePair(std::string_view blob);

}  // namespace tencentrec::topo

#endif  // TENCENTREC_TOPO_BLOB_CODEC_H_
