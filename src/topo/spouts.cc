#include "topo/spouts.h"

#include "common/logging.h"

namespace tencentrec::topo {

void TdAccessActionSpout::Open(const tstorm::TaskContext& ctx) {
  freshness_ = obs::FreshnessTracker::Default().RegisterSlot(
      ctx.component_name.empty() ? "spout" : ctx.component_name);
  consumer_ = std::make_unique<tdaccess::Consumer>(
      cluster_, topic_, group_,
      ctx.component_name + "#" + std::to_string(ctx.instance));
  Status s = consumer_->Subscribe();
  if (!s.ok()) {
    TR_LOG(kError, "spout subscribe failed: %s", s.ToString().c_str());
    consumer_.reset();
  }
}

bool TdAccessActionSpout::NextBatch(tstorm::OutputCollector& out) {
  if (consumer_ == nullptr) return false;
  auto batch = consumer_->Poll(poll_batch_);
  if (!batch.ok()) {
    TR_LOG(kError, "spout poll failed: %s",
           batch.status().ToString().c_str());
    return false;
  }
  if (batch->empty()) return false;  // caught up: drain and finish
  for (const auto& cm : *batch) {
    auto action = DecodeActionPayload(cm.message.payload);
    if (!action.ok()) {
      ++decode_errors_;
      continue;
    }
    // Legacy payloads (and producers that predate stamping) arrive with
    // ingest 0; stamp at the spout so the topology leg is still traced.
    if (action->ingest_micros == 0 && MetricsEnabled()) {
      action->ingest_micros = MonoMicros();
    }
    // Payloads published before tracing existed (or with sampling off at
    // the producer) get their sampling decision here instead.
    if (action->trace_id == 0) action->trace_id = MaybeStartTrace();
    ScopedSpan span(action->trace_id, "spout");
    out.Emit(ActionToTuple(*action));
    freshness_.Advance(action->ingest_micros);
  }
  return true;
}

void TdAccessActionSpout::Close() {
  if (consumer_ != nullptr) {
    Status s = consumer_->Commit();
    if (!s.ok()) {
      TR_LOG(kWarning, "spout commit failed: %s", s.ToString().c_str());
    }
  }
}

}  // namespace tencentrec::topo
