#ifndef TENCENTREC_TOPO_APP_H_
#define TENCENTREC_TOPO_APP_H_

#include <functional>
#include <memory>
#include <string>

#include "core/action.h"
#include "tdstore/cluster.h"
#include "topo/keys.h"

namespace tencentrec::topo {

/// Which algorithm bolts an application's topology runs (§5.1: the
/// framework contains all required algorithms; each application's config
/// enables the ones it needs).
struct AlgorithmSet {
  bool item_cf = true;
  bool demographic = true;  ///< DB complement; "used by all applications"
  bool content_based = false;
  bool assoc_rules = false;
  bool ctr = false;
};

/// Application-specific item filter for the storage layer's FilterBolt
/// ("the recommended items should be of one specific category or of price
/// within a certain range"). Returns true to keep the item.
using ItemFilter = std::function<bool(core::ItemId)>;

/// Per-application tuning shared by the topology bolts and the query path.
struct AppOptions {
  std::string app = "app";
  AlgorithmSet algorithms;
  core::ActionWeights weights;

  // --- item CF (§4.1) ---
  EventTime linked_time = Hours(6);
  int top_k = 20;
  int recent_k = 10;
  EventTime session_length = Hours(1);
  int window_sessions = 0;  ///< 0 = cumulative counts
  bool enable_pruning = false;
  double hoeffding_delta = 0.05;
  /// In-process CF state kernel (see PracticalItemCf::Options): flat
  /// open-addressing tables (default) vs legacy std::unordered_map.
  bool use_flat_kernels = true;

  // --- DB ---
  int hot_list_size = 50;

  // --- CB ---
  EventTime profile_half_life = Hours(12);
  EventTime item_ttl = 0;

  // --- CTR ---
  double ctr_prior_strength = 20.0;
  double ctr_base = 0.02;

  // --- implementation mechanisms (§5.2–5.3) ---
  bool enable_cache = true;
  size_t cache_capacity = 1 << 14;
  bool enable_combiner = true;
  /// Tick interval (executed tuples) at which combiners flush.
  int combiner_interval = 64;

  // --- host-aware batched store I/O ---
  /// Route combiner flushes (and other write-behind paths) through a
  /// BatchWriter: grouped per-host Multi* calls instead of one store op per
  /// key. Point semantics are preserved bit-for-bit; this only changes how
  /// many server invocations carry the same ops.
  bool enable_store_batching = true;
  /// BatchWriter auto-flush threshold (staged ops).
  size_t store_batch_max_ops = 256;
  /// BatchWriter max staging age before auto-flush; 0 = flush only on
  /// size/explicit Flush (bolt ticks already bound staleness).
  int64_t store_batch_max_age_micros = 0;

  // --- batched query tier (read-side mirror of the write batching) ---
  /// Route StoreQuery reads through the batched query tier: each query
  /// plans its full key set, dedupes repeated keys, and issues grouped
  /// MultiGets through a QueryCache (short-TTL positive + negative entries,
  /// single-flight coalescing of concurrent identical reads). Off = the
  /// original one-point-Get-per-key path; results are bit-identical either
  /// way on a healthy store.
  bool enable_query_batching = true;
  /// QueryCache entry bound (key-value read results). 0 disables caching
  /// while keeping per-query dedupe and cross-thread coalescing.
  size_t query_cache_capacity = 1 << 14;
  /// Positive/negative entry lifetime. Short by design: the cache only has
  /// to absorb read bursts (§5.2), the store stays authoritative. 0
  /// disables result caching (dedupe + coalescing remain).
  int64_t query_cache_ttl_micros = 250'000;

  // --- topology shape ---
  int parallelism = 2;  ///< instances for the keyed bolts

  ItemFilter result_filter;  ///< nullptr = keep everything
};

/// Everything a bolt factory needs to wire an instance: the TDStore cluster
/// holding all state, the key schema, and the app options. Owned by the
/// engine; outlives every topology run.
struct AppContext {
  tdstore::Cluster* store = nullptr;
  AppOptions options;
  Keys keys{"app"};

  AppContext(tdstore::Cluster* store_cluster, AppOptions opts)
      : store(store_cluster), options(std::move(opts)), keys(options.app) {}

  /// Session containing `ts`; cumulative mode (window_sessions == 0) pools
  /// everything into pseudo-session 0.
  int64_t SessionOf(EventTime ts) const {
    if (options.window_sessions <= 0) return 0;
    const EventTime len =
        options.session_length < 1 ? 1 : options.session_length;
    return ts / len;
  }

  /// First live session of the window ending at the session of `now`.
  int64_t WindowStart(EventTime now) const {
    if (options.window_sessions <= 0) return 0;
    return SessionOf(now) - options.window_sessions + 1;
  }
};

}  // namespace tencentrec::topo

#endif  // TENCENTREC_TOPO_APP_H_
