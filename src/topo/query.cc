#include "topo/query.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "core/ctr.h"

namespace tencentrec::topo {

namespace {

/// Flat, range-addressed key plan of one batched query: callers append the
/// session keys of each windowed counter they will need, fetch the whole
/// plan with ONE deduped grouped read, then reduce each counter's range to
/// its window sum. Summation runs in session order (first..last), exactly
/// like the unbatched point loop, so sums are bit-identical.
struct WindowPlan {
  struct Range {
    size_t begin = 0;
    size_t end = 0;  // half-open
  };

  WindowPlan(const AppContext* app, EventTime now)
      : first(app->WindowStart(now)), last(app->SessionOf(now)) {}

  Range Add(const std::function<std::string(int64_t session)>& key_of) {
    Range r;
    r.begin = keys.size();
    for (int64_t s = first; s <= last; ++s) keys.push_back(key_of(s));
    r.end = keys.size();
    return r;
  }

  /// Window sum over a fetched range; NotFound decodes as 0 (GetDouble's
  /// fallback), the first hard error wins.
  static Result<double> SumOf(const std::vector<Result<std::string>>& vals,
                              const Range& r) {
    double sum = 0.0;
    for (size_t i = r.begin; i < r.end; ++i) {
      const Result<std::string>& v = vals[i];
      if (!v.ok()) {
        if (v.status().IsNotFound()) continue;
        return v.status();
      }
      auto d = tdstore::DecodeDouble(*v);
      if (!d.ok()) return d.status();
      sum += *d;
    }
    return sum;
  }

  const int64_t first;
  const int64_t last;
  std::vector<std::string> keys;
};

}  // namespace

StoreQuery::StoreQuery(const AppContext* app) : StoreQuery(app, nullptr) {}

StoreQuery::StoreQuery(const AppContext* app,
                       std::shared_ptr<QueryCache> cache)
    : app_(app),
      client_(std::make_unique<tdstore::Client>(app->store)),
      batched_(app->options.enable_query_batching) {
  if (batched_) {
    if (cache != nullptr) {
      cache_ = std::move(cache);
    } else {
      QueryCache::Options copts;
      copts.capacity = app_->options.query_cache_capacity;
      copts.ttl_micros = app_->options.query_cache_ttl_micros;
      cache_ = std::make_shared<QueryCache>(std::move(copts));
    }
  }
  if (MetricsEnabled()) {
    auto& reg = MetricRegistry::Default();
    fetch_keys_ = reg.GetHistogram("topo.query.fetch_keys");
    fetch_us_ = reg.GetHistogram("topo.query.fetch_us");
    degraded_ = reg.GetCounter("topo.query.degraded_candidates");
  }
}

void StoreQuery::Degraded() {
  if (degraded_ != nullptr) degraded_->Add();
}

Status StoreQuery::FetchMany(const std::vector<std::string>& keys,
                             std::vector<Result<std::string>>* out) {
  if (fetch_keys_ != nullptr) fetch_keys_->Record(keys.size());
  ScopedLatencyTimer timer(fetch_us_);
  if (cache_ != nullptr) {
    return cache_->GetBatch(
        keys,
        [this](const std::vector<std::string>& k,
               std::vector<Result<std::string>>* o) {
          return client_->MultiGetBatch(k, o);
        },
        out);
  }
  // No cache layer: still honor the plan's dedupe contract before the
  // grouped read.
  std::vector<std::string> uniq;
  std::unordered_map<std::string, size_t> index;
  uniq.reserve(keys.size());
  for (const std::string& k : keys) {
    if (index.emplace(k, uniq.size()).second) uniq.push_back(k);
  }
  std::vector<Result<std::string>> fetched;
  TR_RETURN_IF_ERROR(client_->MultiGetBatch(uniq, &fetched));
  out->clear();
  out->reserve(keys.size());
  for (const std::string& k : keys) out->push_back(fetched[index.at(k)]);
  return Status::OK();
}

Result<std::string> StoreQuery::FetchOne(const std::string& key) {
  std::vector<Result<std::string>> out;
  Status s = FetchMany({key}, &out);
  if (!s.ok()) return s;
  return std::move(out[0]);
}

Result<std::string> StoreQuery::ReadBlob(const std::string& key) {
  return batched_ ? FetchOne(key) : client_->Get(key);
}

Result<double> StoreQuery::WindowSum(
    const std::function<std::string(int64_t session)>& key_of, EventTime now) {
  if (batched_) {
    WindowPlan plan(app_, now);
    const WindowPlan::Range range = plan.Add(key_of);
    std::vector<Result<std::string>> vals;
    TR_RETURN_IF_ERROR(FetchMany(plan.keys, &vals));
    return WindowPlan::SumOf(vals, range);
  }
  const int64_t last = app_->SessionOf(now);
  const int64_t first = app_->WindowStart(now);
  double sum = 0.0;
  for (int64_t s = first; s <= last; ++s) {
    auto v = client_->GetDouble(key_of(s), 0.0);
    if (!v.ok()) return v.status();
    sum += *v;
  }
  return sum;
}

Result<core::UserHistory> StoreQuery::LoadHistory(core::UserId user) {
  auto blob = ReadBlob(app_->keys.UserHistory(user));
  if (!blob.ok()) {
    if (blob.status().IsNotFound()) return core::UserHistory();
    return blob.status();
  }
  return DecodeUserHistory(*blob);
}

Result<double> StoreQuery::WindowItemCount(core::ItemId item, EventTime now) {
  return WindowSum(
      [&](int64_t s) { return app_->keys.ItemCount(s, item); }, now);
}

Result<double> StoreQuery::WindowPairCount(core::ItemId a, core::ItemId b,
                                           EventTime now) {
  const core::ItemId lo = std::min(a, b);
  const core::ItemId hi = std::max(a, b);
  return WindowSum(
      [&](int64_t s) { return app_->keys.PairCount(s, lo, hi); }, now);
}

Result<double> StoreQuery::SimilarityFromCounts(core::ItemId a, core::ItemId b,
                                                EventTime now) {
  if (batched_) {
    // Both item counts and the pair count planned as one deduped fetch.
    WindowPlan plan(app_, now);
    const auto ra =
        plan.Add([&](int64_t s) { return app_->keys.ItemCount(s, a); });
    const auto rb =
        plan.Add([&](int64_t s) { return app_->keys.ItemCount(s, b); });
    const core::ItemId lo = std::min(a, b);
    const core::ItemId hi = std::max(a, b);
    const auto rp =
        plan.Add([&](int64_t s) { return app_->keys.PairCount(s, lo, hi); });
    std::vector<Result<std::string>> vals;
    TR_RETURN_IF_ERROR(FetchMany(plan.keys, &vals));
    auto ca = WindowPlan::SumOf(vals, ra);
    if (!ca.ok()) return ca.status();
    auto cb = WindowPlan::SumOf(vals, rb);
    if (!cb.ok()) return cb.status();
    if (*ca <= 0.0 || *cb <= 0.0) return 0.0;
    auto pc = WindowPlan::SumOf(vals, rp);
    if (!pc.ok()) return pc.status();
    if (*pc <= 0.0) return 0.0;
    return *pc / (std::sqrt(*ca) * std::sqrt(*cb));
  }
  auto ca = WindowItemCount(a, now);
  if (!ca.ok()) return ca.status();
  auto cb = WindowItemCount(b, now);
  if (!cb.ok()) return cb.status();
  if (*ca <= 0.0 || *cb <= 0.0) return 0.0;
  auto pc = WindowPairCount(a, b, now);
  if (!pc.ok()) return pc.status();
  if (*pc <= 0.0) return 0.0;
  return *pc / (std::sqrt(*ca) * std::sqrt(*cb));
}

Result<core::Recommendations> StoreQuery::RecommendCfBatched(core::UserId user,
                                                             size_t n,
                                                             EventTime now) {
  auto history = LoadHistory(user);
  if (!history.ok()) return history.status();
  const int recent_k = app_->options.recent_k;
  const std::vector<core::ItemId> recent = history->RecentItems(
      recent_k > 0 ? static_cast<size_t>(recent_k) : history->size());
  if (recent.empty()) return core::Recommendations{};

  // Stage 1: every sim:<q> candidate list in one deduped grouped read.
  std::vector<std::string> sim_keys;
  sim_keys.reserve(recent.size());
  for (core::ItemId q : recent) sim_keys.push_back(app_->keys.SimilarItems(q));
  std::vector<Result<std::string>> sim_blobs;
  TR_RETURN_IF_ERROR(FetchMany(sim_keys, &sim_blobs));

  std::unordered_map<core::ItemId, std::vector<core::ItemId>> cand_recents;
  for (size_t i = 0; i < recent.size(); ++i) {
    const Result<std::string>& blob = sim_blobs[i];
    if (!blob.ok()) {
      if (blob.status().IsNotFound()) continue;
      return blob.status();
    }
    auto list = DecodeScoredList(*blob);
    if (!list.ok()) return list.status();
    for (const auto& entry : *list) {
      if (history->RatingOf(entry.item) > 0.0) continue;  // already rated
      cand_recents[entry.item].push_back(recent[i]);
    }
  }

  // Stage 2: plan EVERY windowed count the scoring loop will touch — the
  // itemCount windows of all candidates and recent items, plus the
  // pairCount window of every (p, q) edge — and fetch the whole plan with
  // one deduped grouped read (candidates share the recent items; dedupe is
  // the memoization).
  WindowPlan plan(app_, now);
  std::unordered_map<core::ItemId, WindowPlan::Range> item_range;
  auto plan_item = [&](core::ItemId item) {
    if (item_range.count(item) != 0) return;
    item_range[item] = plan.Add(
        [&](int64_t s) { return app_->keys.ItemCount(s, item); });
  };
  std::map<std::pair<core::ItemId, core::ItemId>, WindowPlan::Range>
      pair_range;
  for (const auto& [p, qs] : cand_recents) {
    plan_item(p);
    for (core::ItemId q : qs) {
      plan_item(q);
      const core::ItemId lo = std::min(p, q);
      const core::ItemId hi = std::max(p, q);
      if (pair_range.count({lo, hi}) != 0) continue;
      pair_range[{lo, hi}] = plan.Add(
          [&](int64_t s) { return app_->keys.PairCount(s, lo, hi); });
    }
  }
  std::vector<Result<std::string>> vals;
  TR_RETURN_IF_ERROR(FetchMany(plan.keys, &vals));

  std::unordered_map<core::ItemId, Result<double>> item_count;
  for (const auto& [item, range] : item_range) {
    item_count.emplace(item, WindowPlan::SumOf(vals, range));
  }

  // Scoring is the unbatched loop verbatim, except that a transient per-key
  // store error drops only the affected candidate (PR 4's per-key-status
  // semantics) instead of failing the whole recommendation.
  core::Recommendations scored;
  scored.reserve(cand_recents.size());
  for (const auto& [p, qs] : cand_recents) {
    const Result<double>& cp = item_count.at(p);
    if (!cp.ok()) {
      Degraded();
      continue;
    }
    if (*cp <= 0.0) continue;
    double num = 0.0;
    double den = 0.0;
    bool degraded = false;
    for (core::ItemId q : qs) {
      const Result<double>& cq = item_count.at(q);
      if (!cq.ok()) {
        degraded = true;
        break;
      }
      if (*cq <= 0.0) continue;
      const core::ItemId lo = std::min(p, q);
      const core::ItemId hi = std::max(p, q);
      auto pc = WindowPlan::SumOf(vals, pair_range.at({lo, hi}));
      if (!pc.ok()) {
        degraded = true;
        break;
      }
      if (*pc <= 0.0) continue;
      const double sim = *pc / (std::sqrt(*cp) * std::sqrt(*cq));
      num += sim * history->RatingOf(q);
      den += sim;
    }
    if (degraded) {
      Degraded();
      continue;
    }
    if (den <= 0.0) continue;
    scored.push_back({p, (num / den) * (1.0 + std::log1p(den))});
  }
  std::sort(scored.begin(), scored.end(),
            [](const core::ScoredItem& a, const core::ScoredItem& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.item < b.item;
            });
  if (scored.size() > n) scored.resize(n);
  return scored;
}

Result<core::Recommendations> StoreQuery::RecommendCf(core::UserId user,
                                                      size_t n,
                                                      EventTime now) {
  if (batched_) return RecommendCfBatched(user, n, now);
  auto history = LoadHistory(user);
  if (!history.ok()) return history.status();
  const int recent_k = app_->options.recent_k;
  const std::vector<core::ItemId> recent = history->RecentItems(
      recent_k > 0 ? static_cast<size_t>(recent_k) : history->size());
  if (recent.empty()) return core::Recommendations{};

  // The sim:<item> lists are the candidate index; scores are recomputed
  // from the *current* windowed counts (the "algorithm computation part
  // reads statistical data from TDStore" split of §5.1). This also heals
  // any staleness from the decoupled statistics paths — a pair whose
  // similarity was computed before the itemCount combiner flushed scores
  // correctly here.
  std::unordered_map<core::ItemId, std::vector<core::ItemId>> cand_recents;
  for (core::ItemId q : recent) {
    auto blob = client_->Get(app_->keys.SimilarItems(q));
    if (!blob.ok()) {
      if (blob.status().IsNotFound()) continue;
      return blob.status();
    }
    auto list = DecodeScoredList(*blob);
    if (!list.ok()) return list.status();
    for (const auto& entry : *list) {
      if (history->RatingOf(entry.item) > 0.0) continue;  // already rated
      cand_recents[entry.item].push_back(q);
    }
  }

  // Memoize windowed item counts: candidates share the recent items.
  std::unordered_map<core::ItemId, double> item_counts;
  auto count_of = [&](core::ItemId item) -> Result<double> {
    auto it = item_counts.find(item);
    if (it != item_counts.end()) return it->second;
    auto c = WindowItemCount(item, now);
    if (!c.ok()) return c.status();
    item_counts[item] = *c;
    return *c;
  };

  core::Recommendations scored;
  scored.reserve(cand_recents.size());
  for (const auto& [p, qs] : cand_recents) {
    auto cp = count_of(p);
    if (!cp.ok()) return cp.status();
    if (*cp <= 0.0) continue;
    double num = 0.0;
    double den = 0.0;
    for (core::ItemId q : qs) {
      auto cq = count_of(q);
      if (!cq.ok()) return cq.status();
      if (*cq <= 0.0) continue;
      auto pc = WindowPairCount(p, q, now);
      if (!pc.ok()) return pc.status();
      if (*pc <= 0.0) continue;
      const double sim = *pc / (std::sqrt(*cp) * std::sqrt(*cq));
      num += sim * history->RatingOf(q);
      den += sim;
    }
    if (den <= 0.0) continue;
    scored.push_back({p, (num / den) * (1.0 + std::log1p(den))});
  }
  std::sort(scored.begin(), scored.end(),
            [](const core::ScoredItem& a, const core::ScoredItem& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.item < b.item;
            });
  if (scored.size() > n) scored.resize(n);
  return scored;
}

Result<core::Recommendations> StoreQuery::HotItems(core::GroupId group,
                                                   size_t n, EventTime now) {
  (void)now;
  auto blob = ReadBlob(app_->keys.HotList(group));
  if (!blob.ok()) {
    if (blob.status().IsNotFound()) {
      if (group == 0) return core::Recommendations{};
      return HotItems(0, n, now);
    }
    return blob.status();
  }
  auto list = DecodeScoredList(*blob);
  if (!list.ok()) return list.status();
  if (list->empty() && group != 0) return HotItems(0, n, now);
  if (list->size() > n) list->resize(n);
  return list;
}

Result<core::Recommendations> StoreQuery::Recommend(
    core::UserId user, const core::Demographics& d, size_t n, EventTime now) {
  auto cf = RecommendCf(user, n, now);
  if (!cf.ok()) return cf.status();
  core::Recommendations out = std::move(cf).value();
  if (app_->options.result_filter) {
    std::erase_if(out, [&](const core::ScoredItem& s) {
      return !app_->options.result_filter(s.item);
    });
  }
  if (out.size() >= n) return out;

  std::unordered_set<core::ItemId> exclude;
  for (const auto& s : out) exclude.insert(s.item);
  auto history = LoadHistory(user);
  if (history.ok()) {
    for (const auto& [item, st] : history->items()) {
      if (st.rating > 0.0) exclude.insert(item);
    }
  }

  auto hot = HotItems(core::DemographicGroup(d), n + exclude.size(), now);
  if (!hot.ok()) return hot.status();
  for (const auto& h : *hot) {
    if (out.size() >= n) break;
    if (exclude.count(h.item) > 0) continue;
    if (app_->options.result_filter && !app_->options.result_filter(h.item)) {
      continue;
    }
    out.push_back(h);
  }
  return out;
}

Result<core::Recommendations> StoreQuery::RecommendCbBatched(core::UserId user,
                                                             size_t n,
                                                             EventTime now) {
  auto blob = FetchOne(app_->keys.ContentProfile(user));
  if (!blob.ok()) {
    if (blob.status().IsNotFound()) return core::Recommendations{};
    return blob.status();
  }
  auto profile = DecodeContentProfile(*blob);
  if (!profile.ok()) return profile.status();

  double factor = 1.0;
  if (now > profile->last_update && app_->options.profile_half_life > 0) {
    const double lambda =
        std::log(2.0) / static_cast<double>(app_->options.profile_half_life);
    factor =
        std::exp(-lambda * static_cast<double>(now - profile->last_update));
  }
  double profile_norm2 = 0.0;
  for (const auto& [tag, w] : profile->weights) {
    profile_norm2 += (w * factor) * (w * factor);
  }
  if (profile_norm2 <= 0.0) return core::Recommendations{};
  const double profile_norm = std::sqrt(profile_norm2);

  auto history = LoadHistory(user);
  if (!history.ok()) return history.status();

  // Stage 1: every tag inverted index in one deduped grouped read.
  std::vector<std::string> idx_keys;
  idx_keys.reserve(profile->weights.size());
  for (const auto& [tag, w] : profile->weights) {
    idx_keys.push_back(app_->keys.TagIndex(tag));
  }
  std::vector<Result<std::string>> idx_blobs;
  TR_RETURN_IF_ERROR(FetchMany(idx_keys, &idx_blobs));

  // Unseen candidate items, first-seen order; an item appearing in K tag
  // indexes is planned (and fetched) once — the plan's dedupe IS the miss
  // memo the unbatched path needs for deregistered items.
  std::vector<core::ItemId> candidates;
  std::unordered_set<core::ItemId> planned;
  for (size_t t = 0; t < idx_blobs.size(); ++t) {
    const Result<std::string>& idx_blob = idx_blobs[t];
    if (!idx_blob.ok()) {
      if (idx_blob.status().IsNotFound()) continue;
      return idx_blob.status();
    }
    auto items = DecodeItemList(*idx_blob);
    if (!items.ok()) return items.status();
    for (core::ItemId item : *items) {
      if (history->RatingOf(item) > 0.0) continue;  // seen
      if (planned.insert(item).second) candidates.push_back(item);
    }
  }
  if (candidates.empty()) return core::Recommendations{};

  // Stage 2: every candidate's tag vector in one grouped read.
  std::vector<std::string> tag_keys;
  tag_keys.reserve(candidates.size());
  for (core::ItemId item : candidates) {
    tag_keys.push_back(app_->keys.ItemTags(item));
  }
  std::vector<Result<std::string>> tag_blobs;
  TR_RETURN_IF_ERROR(FetchMany(tag_keys, &tag_blobs));

  std::unordered_map<core::ItemId, double> dots;
  std::unordered_map<core::ItemId, double> norms;
  for (size_t i = 0; i < candidates.size(); ++i) {
    const core::ItemId item = candidates[i];
    const Result<std::string>& tags_blob = tag_blobs[i];
    if (!tags_blob.ok()) {
      if (tags_blob.status().IsNotFound()) continue;  // deregistered
      Degraded();
      continue;
    }
    auto tags = DecodeTagVector(*tags_blob);
    if (!tags.ok()) return tags.status();
    double norm2 = 0.0;
    double dot = 0.0;
    for (const auto& [t2, w2] : *tags) {
      norm2 += w2 * w2;
      for (const auto& [pt, pw] : profile->weights) {
        if (pt == t2) dot += (pw * factor) * w2;
      }
    }
    norms[item] = std::sqrt(norm2);
    dots[item] = dot;
  }

  core::Recommendations scored;
  for (const auto& [item, dot] : dots) {
    const double norm = norms[item];
    if (norm <= 0.0 || dot <= 0.0) continue;
    scored.push_back({item, dot / (profile_norm * norm)});
  }
  std::sort(scored.begin(), scored.end(),
            [](const core::ScoredItem& a, const core::ScoredItem& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.item < b.item;
            });
  if (scored.size() > n) scored.resize(n);
  return scored;
}

Result<core::Recommendations> StoreQuery::RecommendCb(core::UserId user,
                                                      size_t n,
                                                      EventTime now) {
  if (batched_) return RecommendCbBatched(user, n, now);
  auto blob = client_->Get(app_->keys.ContentProfile(user));
  if (!blob.ok()) {
    if (blob.status().IsNotFound()) return core::Recommendations{};
    return blob.status();
  }
  auto profile = DecodeContentProfile(*blob);
  if (!profile.ok()) return profile.status();

  double factor = 1.0;
  if (now > profile->last_update && app_->options.profile_half_life > 0) {
    const double lambda =
        std::log(2.0) / static_cast<double>(app_->options.profile_half_life);
    factor =
        std::exp(-lambda * static_cast<double>(now - profile->last_update));
  }
  double profile_norm2 = 0.0;
  for (const auto& [tag, w] : profile->weights) {
    profile_norm2 += (w * factor) * (w * factor);
  }
  if (profile_norm2 <= 0.0) return core::Recommendations{};
  const double profile_norm = std::sqrt(profile_norm2);

  auto history = LoadHistory(user);
  if (!history.ok()) return history.status();

  // Candidate items via the tag inverted index; dot products accumulated
  // tag by tag.
  std::unordered_map<core::ItemId, double> dots;
  std::unordered_map<core::ItemId, double> norms;
  // Items whose tag vector came back NotFound (deregistered). Memoized so a
  // dead item appearing in K tag indexes costs ONE store read, not K.
  std::unordered_set<core::ItemId> deregistered;
  for (const auto& [tag, w] : profile->weights) {
    auto idx_blob = client_->Get(app_->keys.TagIndex(tag));
    if (!idx_blob.ok()) {
      if (idx_blob.status().IsNotFound()) continue;
      return idx_blob.status();
    }
    auto items = DecodeItemList(*idx_blob);
    if (!items.ok()) return items.status();
    for (core::ItemId item : *items) {
      if (history->RatingOf(item) > 0.0) continue;  // seen
      if (norms.count(item) == 0 && deregistered.count(item) == 0) {
        auto tags_blob = client_->Get(app_->keys.ItemTags(item));
        if (!tags_blob.ok()) {
          if (tags_blob.status().IsNotFound()) {
            deregistered.insert(item);
            continue;
          }
          return tags_blob.status();
        }
        auto tags = DecodeTagVector(*tags_blob);
        if (!tags.ok()) return tags.status();
        double norm2 = 0.0;
        double dot = 0.0;
        for (const auto& [t2, w2] : *tags) {
          norm2 += w2 * w2;
          // Accumulate the full dot product here (once per item) instead of
          // per tag-index hit.
          for (const auto& [pt, pw] : profile->weights) {
            if (pt == t2) dot += (pw * factor) * w2;
          }
        }
        norms[item] = std::sqrt(norm2);
        dots[item] = dot;
      }
    }
  }

  core::Recommendations scored;
  for (const auto& [item, dot] : dots) {
    const double norm = norms[item];
    if (norm <= 0.0 || dot <= 0.0) continue;
    scored.push_back({item, dot / (profile_norm * norm)});
  }
  std::sort(scored.begin(), scored.end(),
            [](const core::ScoredItem& a, const core::ScoredItem& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.item < b.item;
            });
  if (scored.size() > n) scored.resize(n);
  return scored;
}

Result<core::Recommendations> StoreQuery::RecommendArBatched(
    core::ItemId from, size_t n, EventTime now, double min_support,
    double min_confidence) {
  auto blob = FetchOne(app_->keys.SimilarItems(from));
  if (!blob.ok()) {
    if (blob.status().IsNotFound()) return core::Recommendations{};
    return blob.status();
  }
  auto list = DecodeScoredList(*blob);
  if (!list.ok()) return list.status();

  // Base count and every joint count in one deduped grouped read.
  WindowPlan plan(app_, now);
  const auto base_range =
      plan.Add([&](int64_t s) { return app_->keys.ItemCount(s, from); });
  std::vector<WindowPlan::Range> joint_ranges;
  joint_ranges.reserve(list->size());
  for (const auto& entry : *list) {
    const core::ItemId lo = std::min(from, entry.item);
    const core::ItemId hi = std::max(from, entry.item);
    joint_ranges.push_back(plan.Add(
        [&](int64_t s) { return app_->keys.PairCount(s, lo, hi); }));
  }
  std::vector<Result<std::string>> vals;
  TR_RETURN_IF_ERROR(FetchMany(plan.keys, &vals));

  auto base = WindowPlan::SumOf(vals, base_range);
  if (!base.ok()) return base.status();
  if (*base <= 0.0) return core::Recommendations{};

  core::Recommendations scored;
  for (size_t i = 0; i < list->size(); ++i) {
    auto joint = WindowPlan::SumOf(vals, joint_ranges[i]);
    if (!joint.ok()) {
      Degraded();
      continue;
    }
    if (*joint < min_support) continue;
    const double conf = *joint / *base;
    if (conf < min_confidence) continue;
    scored.push_back({(*list)[i].item, conf});
  }
  std::sort(scored.begin(), scored.end(),
            [](const core::ScoredItem& a, const core::ScoredItem& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.item < b.item;
            });
  if (scored.size() > n) scored.resize(n);
  return scored;
}

Result<core::Recommendations> StoreQuery::RecommendAr(core::ItemId from,
                                                      size_t n, EventTime now,
                                                      double min_support,
                                                      double min_confidence) {
  if (batched_) {
    return RecommendArBatched(from, n, now, min_support, min_confidence);
  }
  auto blob = client_->Get(app_->keys.SimilarItems(from));
  if (!blob.ok()) {
    if (blob.status().IsNotFound()) return core::Recommendations{};
    return blob.status();
  }
  auto list = DecodeScoredList(*blob);
  if (!list.ok()) return list.status();

  auto base = WindowItemCount(from, now);
  if (!base.ok()) return base.status();
  if (*base <= 0.0) return core::Recommendations{};

  core::Recommendations scored;
  for (const auto& entry : *list) {
    auto joint = WindowPairCount(from, entry.item, now);
    if (!joint.ok()) return joint.status();
    if (*joint < min_support) continue;
    const double conf = *joint / *base;
    if (conf < min_confidence) continue;
    scored.push_back({entry.item, conf});
  }
  std::sort(scored.begin(), scored.end(),
            [](const core::ScoredItem& a, const core::ScoredItem& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.item < b.item;
            });
  if (scored.size() > n) scored.resize(n);
  return scored;
}

Result<double> StoreQuery::PredictCtr(core::ItemId item,
                                      const core::Demographics& d,
                                      EventTime now) {
  const int max_level = core::CtrMaxLevel(d);
  if (batched_) {
    // All levels' impression/click windows in one deduped grouped read; the
    // shrinkage recursion then runs store-free.
    WindowPlan plan(app_, now);
    std::vector<WindowPlan::Range> imp_ranges;
    std::vector<WindowPlan::Range> click_ranges;
    for (int level = 0; level <= max_level; ++level) {
      const uint64_t level_key = core::CtrLevelKey(item, level, d);
      imp_ranges.push_back(plan.Add([&](int64_t s) {
        return app_->keys.CtrCounts(level_key, s) + ":i";
      }));
      click_ranges.push_back(plan.Add([&](int64_t s) {
        return app_->keys.CtrCounts(level_key, s) + ":c";
      }));
    }
    std::vector<Result<std::string>> vals;
    TR_RETURN_IF_ERROR(FetchMany(plan.keys, &vals));
    double estimate = app_->options.ctr_base;
    for (int level = 0; level <= max_level; ++level) {
      auto imp = WindowPlan::SumOf(vals, imp_ranges[level]);
      if (!imp.ok()) return imp.status();
      auto clicks = WindowPlan::SumOf(vals, click_ranges[level]);
      if (!clicks.ok()) return clicks.status();
      estimate = (*clicks + app_->options.ctr_prior_strength * estimate) /
                 (*imp + app_->options.ctr_prior_strength);
    }
    return estimate;
  }
  double estimate = app_->options.ctr_base;
  for (int level = 0; level <= max_level; ++level) {
    const uint64_t level_key = core::CtrLevelKey(item, level, d);
    auto imp = WindowSum(
        [&](int64_t s) { return app_->keys.CtrCounts(level_key, s) + ":i"; },
        now);
    if (!imp.ok()) return imp.status();
    auto clicks = WindowSum(
        [&](int64_t s) { return app_->keys.CtrCounts(level_key, s) + ":c"; },
        now);
    if (!clicks.ok()) return clicks.status();
    estimate = (*clicks + app_->options.ctr_prior_strength * estimate) /
               (*imp + app_->options.ctr_prior_strength);
  }
  return estimate;
}

Result<std::pair<double, double>> StoreQuery::SituationCounts(
    core::ItemId item, const core::Demographics& d, EventTime now) {
  const uint64_t level_key =
      core::CtrLevelKey(item, core::CtrMaxLevel(d), d);
  if (batched_) {
    WindowPlan plan(app_, now);
    const auto ri = plan.Add([&](int64_t s) {
      return app_->keys.CtrCounts(level_key, s) + ":i";
    });
    const auto rc = plan.Add([&](int64_t s) {
      return app_->keys.CtrCounts(level_key, s) + ":c";
    });
    std::vector<Result<std::string>> vals;
    TR_RETURN_IF_ERROR(FetchMany(plan.keys, &vals));
    auto imp = WindowPlan::SumOf(vals, ri);
    if (!imp.ok()) return imp.status();
    auto clicks = WindowPlan::SumOf(vals, rc);
    if (!clicks.ok()) return clicks.status();
    return std::make_pair(*imp, *clicks);
  }
  auto imp = WindowSum(
      [&](int64_t s) { return app_->keys.CtrCounts(level_key, s) + ":i"; },
      now);
  if (!imp.ok()) return imp.status();
  auto clicks = WindowSum(
      [&](int64_t s) { return app_->keys.CtrCounts(level_key, s) + ":c"; },
      now);
  if (!clicks.ok()) return clicks.status();
  return std::make_pair(*imp, *clicks);
}

Result<core::Recommendations> StoreQuery::MaterializedResults(
    core::UserId user) {
  auto blob = ReadBlob(app_->keys.Results(user));
  if (!blob.ok()) {
    if (blob.status().IsNotFound()) return core::Recommendations{};
    return blob.status();
  }
  return DecodeScoredList(*blob);
}

}  // namespace tencentrec::topo
