#include "topo/query.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <unordered_set>

#include "core/ctr.h"

namespace tencentrec::topo {

StoreQuery::StoreQuery(const AppContext* app)
    : app_(app), client_(std::make_unique<tdstore::Client>(app->store)) {}

Result<double> StoreQuery::WindowSum(
    const std::function<std::string(int64_t session)>& key_of, EventTime now) {
  const int64_t last = app_->SessionOf(now);
  const int64_t first = app_->WindowStart(now);
  double sum = 0.0;
  for (int64_t s = first; s <= last; ++s) {
    auto v = client_->GetDouble(key_of(s), 0.0);
    if (!v.ok()) return v.status();
    sum += *v;
  }
  return sum;
}

Result<core::UserHistory> StoreQuery::LoadHistory(core::UserId user) {
  auto blob = client_->Get(app_->keys.UserHistory(user));
  if (!blob.ok()) {
    if (blob.status().IsNotFound()) return core::UserHistory();
    return blob.status();
  }
  return DecodeUserHistory(*blob);
}

Result<double> StoreQuery::WindowItemCount(core::ItemId item, EventTime now) {
  return WindowSum(
      [&](int64_t s) { return app_->keys.ItemCount(s, item); }, now);
}

Result<double> StoreQuery::WindowPairCount(core::ItemId a, core::ItemId b,
                                           EventTime now) {
  const core::ItemId lo = std::min(a, b);
  const core::ItemId hi = std::max(a, b);
  return WindowSum(
      [&](int64_t s) { return app_->keys.PairCount(s, lo, hi); }, now);
}

Result<double> StoreQuery::SimilarityFromCounts(core::ItemId a, core::ItemId b,
                                                EventTime now) {
  auto ca = WindowItemCount(a, now);
  if (!ca.ok()) return ca.status();
  auto cb = WindowItemCount(b, now);
  if (!cb.ok()) return cb.status();
  if (*ca <= 0.0 || *cb <= 0.0) return 0.0;
  auto pc = WindowPairCount(a, b, now);
  if (!pc.ok()) return pc.status();
  if (*pc <= 0.0) return 0.0;
  return *pc / (std::sqrt(*ca) * std::sqrt(*cb));
}

Result<core::Recommendations> StoreQuery::RecommendCf(core::UserId user,
                                                      size_t n,
                                                      EventTime now) {
  auto history = LoadHistory(user);
  if (!history.ok()) return history.status();
  const int recent_k = app_->options.recent_k;
  const std::vector<core::ItemId> recent = history->RecentItems(
      recent_k > 0 ? static_cast<size_t>(recent_k) : history->size());
  if (recent.empty()) return core::Recommendations{};

  // The sim:<item> lists are the candidate index; scores are recomputed
  // from the *current* windowed counts (the "algorithm computation part
  // reads statistical data from TDStore" split of §5.1). This also heals
  // any staleness from the decoupled statistics paths — a pair whose
  // similarity was computed before the itemCount combiner flushed scores
  // correctly here.
  std::unordered_map<core::ItemId, std::vector<core::ItemId>> cand_recents;
  for (core::ItemId q : recent) {
    auto blob = client_->Get(app_->keys.SimilarItems(q));
    if (!blob.ok()) {
      if (blob.status().IsNotFound()) continue;
      return blob.status();
    }
    auto list = DecodeScoredList(*blob);
    if (!list.ok()) return list.status();
    for (const auto& entry : *list) {
      if (history->RatingOf(entry.item) > 0.0) continue;  // already rated
      cand_recents[entry.item].push_back(q);
    }
  }

  // Memoize windowed item counts: candidates share the recent items.
  std::unordered_map<core::ItemId, double> item_counts;
  auto count_of = [&](core::ItemId item) -> Result<double> {
    auto it = item_counts.find(item);
    if (it != item_counts.end()) return it->second;
    auto c = WindowItemCount(item, now);
    if (!c.ok()) return c.status();
    item_counts[item] = *c;
    return *c;
  };

  core::Recommendations scored;
  scored.reserve(cand_recents.size());
  for (const auto& [p, qs] : cand_recents) {
    auto cp = count_of(p);
    if (!cp.ok()) return cp.status();
    if (*cp <= 0.0) continue;
    double num = 0.0;
    double den = 0.0;
    for (core::ItemId q : qs) {
      auto cq = count_of(q);
      if (!cq.ok()) return cq.status();
      if (*cq <= 0.0) continue;
      auto pc = WindowPairCount(p, q, now);
      if (!pc.ok()) return pc.status();
      if (*pc <= 0.0) continue;
      const double sim = *pc / (std::sqrt(*cp) * std::sqrt(*cq));
      num += sim * history->RatingOf(q);
      den += sim;
    }
    if (den <= 0.0) continue;
    scored.push_back({p, (num / den) * (1.0 + std::log1p(den))});
  }
  std::sort(scored.begin(), scored.end(),
            [](const core::ScoredItem& a, const core::ScoredItem& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.item < b.item;
            });
  if (scored.size() > n) scored.resize(n);
  return scored;
}

Result<core::Recommendations> StoreQuery::HotItems(core::GroupId group,
                                                   size_t n, EventTime now) {
  (void)now;
  auto blob = client_->Get(app_->keys.HotList(group));
  if (!blob.ok()) {
    if (blob.status().IsNotFound()) {
      if (group == 0) return core::Recommendations{};
      return HotItems(0, n, now);
    }
    return blob.status();
  }
  auto list = DecodeScoredList(*blob);
  if (!list.ok()) return list.status();
  if (list->empty() && group != 0) return HotItems(0, n, now);
  if (list->size() > n) list->resize(n);
  return list;
}

Result<core::Recommendations> StoreQuery::Recommend(
    core::UserId user, const core::Demographics& d, size_t n, EventTime now) {
  auto cf = RecommendCf(user, n, now);
  if (!cf.ok()) return cf.status();
  core::Recommendations out = std::move(cf).value();
  if (app_->options.result_filter) {
    std::erase_if(out, [&](const core::ScoredItem& s) {
      return !app_->options.result_filter(s.item);
    });
  }
  if (out.size() >= n) return out;

  std::unordered_set<core::ItemId> exclude;
  for (const auto& s : out) exclude.insert(s.item);
  auto history = LoadHistory(user);
  if (history.ok()) {
    for (const auto& [item, st] : history->items()) {
      if (st.rating > 0.0) exclude.insert(item);
    }
  }

  auto hot = HotItems(core::DemographicGroup(d), n + exclude.size(), now);
  if (!hot.ok()) return hot.status();
  for (const auto& h : *hot) {
    if (out.size() >= n) break;
    if (exclude.count(h.item) > 0) continue;
    if (app_->options.result_filter && !app_->options.result_filter(h.item)) {
      continue;
    }
    out.push_back(h);
  }
  return out;
}

Result<core::Recommendations> StoreQuery::RecommendCb(core::UserId user,
                                                      size_t n,
                                                      EventTime now) {
  auto blob = client_->Get(app_->keys.ContentProfile(user));
  if (!blob.ok()) {
    if (blob.status().IsNotFound()) return core::Recommendations{};
    return blob.status();
  }
  auto profile = DecodeContentProfile(*blob);
  if (!profile.ok()) return profile.status();

  double factor = 1.0;
  if (now > profile->last_update && app_->options.profile_half_life > 0) {
    const double lambda =
        std::log(2.0) / static_cast<double>(app_->options.profile_half_life);
    factor =
        std::exp(-lambda * static_cast<double>(now - profile->last_update));
  }
  double profile_norm2 = 0.0;
  for (const auto& [tag, w] : profile->weights) {
    profile_norm2 += (w * factor) * (w * factor);
  }
  if (profile_norm2 <= 0.0) return core::Recommendations{};
  const double profile_norm = std::sqrt(profile_norm2);

  auto history = LoadHistory(user);
  if (!history.ok()) return history.status();

  // Candidate items via the tag inverted index; dot products accumulated
  // tag by tag.
  std::unordered_map<core::ItemId, double> dots;
  std::unordered_map<core::ItemId, double> norms;
  for (const auto& [tag, w] : profile->weights) {
    auto idx_blob = client_->Get(app_->keys.TagIndex(tag));
    if (!idx_blob.ok()) {
      if (idx_blob.status().IsNotFound()) continue;
      return idx_blob.status();
    }
    auto items = DecodeItemList(*idx_blob);
    if (!items.ok()) return items.status();
    for (core::ItemId item : *items) {
      if (history->RatingOf(item) > 0.0) continue;  // seen
      if (norms.count(item) == 0) {
        auto tags_blob = client_->Get(app_->keys.ItemTags(item));
        if (!tags_blob.ok()) {
          if (tags_blob.status().IsNotFound()) continue;  // deregistered
          return tags_blob.status();
        }
        auto tags = DecodeTagVector(*tags_blob);
        if (!tags.ok()) return tags.status();
        double norm2 = 0.0;
        double dot = 0.0;
        for (const auto& [t2, w2] : *tags) {
          norm2 += w2 * w2;
          // Accumulate the full dot product here (once per item) instead of
          // per tag-index hit.
          for (const auto& [pt, pw] : profile->weights) {
            if (pt == t2) dot += (pw * factor) * w2;
          }
        }
        norms[item] = std::sqrt(norm2);
        dots[item] = dot;
      }
    }
  }

  core::Recommendations scored;
  for (const auto& [item, dot] : dots) {
    const double norm = norms[item];
    if (norm <= 0.0 || dot <= 0.0) continue;
    scored.push_back({item, dot / (profile_norm * norm)});
  }
  std::sort(scored.begin(), scored.end(),
            [](const core::ScoredItem& a, const core::ScoredItem& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.item < b.item;
            });
  if (scored.size() > n) scored.resize(n);
  return scored;
}

Result<core::Recommendations> StoreQuery::RecommendAr(core::ItemId from,
                                                      size_t n, EventTime now,
                                                      double min_support,
                                                      double min_confidence) {
  auto blob = client_->Get(app_->keys.SimilarItems(from));
  if (!blob.ok()) {
    if (blob.status().IsNotFound()) return core::Recommendations{};
    return blob.status();
  }
  auto list = DecodeScoredList(*blob);
  if (!list.ok()) return list.status();

  auto base = WindowItemCount(from, now);
  if (!base.ok()) return base.status();
  if (*base <= 0.0) return core::Recommendations{};

  core::Recommendations scored;
  for (const auto& entry : *list) {
    auto joint = WindowPairCount(from, entry.item, now);
    if (!joint.ok()) return joint.status();
    if (*joint < min_support) continue;
    const double conf = *joint / *base;
    if (conf < min_confidence) continue;
    scored.push_back({entry.item, conf});
  }
  std::sort(scored.begin(), scored.end(),
            [](const core::ScoredItem& a, const core::ScoredItem& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.item < b.item;
            });
  if (scored.size() > n) scored.resize(n);
  return scored;
}

Result<double> StoreQuery::PredictCtr(core::ItemId item,
                                      const core::Demographics& d,
                                      EventTime now) {
  double estimate = app_->options.ctr_base;
  const int max_level = core::CtrMaxLevel(d);
  for (int level = 0; level <= max_level; ++level) {
    const uint64_t level_key = core::CtrLevelKey(item, level, d);
    auto imp = WindowSum(
        [&](int64_t s) { return app_->keys.CtrCounts(level_key, s) + ":i"; },
        now);
    if (!imp.ok()) return imp.status();
    auto clicks = WindowSum(
        [&](int64_t s) { return app_->keys.CtrCounts(level_key, s) + ":c"; },
        now);
    if (!clicks.ok()) return clicks.status();
    estimate = (*clicks + app_->options.ctr_prior_strength * estimate) /
               (*imp + app_->options.ctr_prior_strength);
  }
  return estimate;
}

Result<std::pair<double, double>> StoreQuery::SituationCounts(
    core::ItemId item, const core::Demographics& d, EventTime now) {
  const uint64_t level_key =
      core::CtrLevelKey(item, core::CtrMaxLevel(d), d);
  auto imp = WindowSum(
      [&](int64_t s) { return app_->keys.CtrCounts(level_key, s) + ":i"; },
      now);
  if (!imp.ok()) return imp.status();
  auto clicks = WindowSum(
      [&](int64_t s) { return app_->keys.CtrCounts(level_key, s) + ":c"; },
      now);
  if (!clicks.ok()) return clicks.status();
  return std::make_pair(*imp, *clicks);
}

Result<core::Recommendations> StoreQuery::MaterializedResults(
    core::UserId user) {
  auto blob = client_->Get(app_->keys.Results(user));
  if (!blob.ok()) {
    if (blob.status().IsNotFound()) return core::Recommendations{};
    return blob.status();
  }
  return DecodeScoredList(*blob);
}

}  // namespace tencentrec::topo
