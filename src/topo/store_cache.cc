#include "topo/store_cache.h"

#include "tdstore/codec.h"

namespace tencentrec::topo {

void StoreCache::Touch(Entry& entry) {
  lru_.splice(lru_.begin(), lru_, entry.lru_it);
}

void StoreCache::InsertOrUpdate(const std::string& key, std::string value) {
  if (capacity_ == 0) return;  // cache disabled: nothing can be held
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    it->second.value = std::move(value);
    Touch(it->second);
    return;
  }
  while (entries_.size() >= capacity_) {
    entries_.erase(lru_.back());
    lru_.pop_back();
  }
  lru_.push_front(key);
  entries_[key] = Entry{std::move(value), lru_.begin()};
}

Result<std::string> StoreCache::Get(const std::string& key) {
  if (!Active()) {
    ++stats_.misses;
    return client_->Get(key);
  }
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    ++stats_.hits;
    Touch(it->second);
    return it->second.value;
  }
  ++stats_.misses;
  auto value = client_->Get(key);
  if (!value.ok()) return value.status();
  InsertOrUpdate(key, *value);
  return value;
}

Status StoreCache::Put(const std::string& key, std::string value) {
  ++stats_.writes;
  TR_RETURN_IF_ERROR(client_->Put(key, value));
  if (Active()) InsertOrUpdate(key, std::move(value));
  return Status::OK();
}

Result<double> StoreCache::AddDouble(const std::string& key, double delta) {
  if (!Active()) {
    ++stats_.misses;
    ++stats_.writes;
    return client_->IncrDouble(key, delta);
  }
  double current = 0.0;
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    ++stats_.hits;
    auto decoded = tdstore::DecodeDouble(it->second.value);
    if (!decoded.ok()) return decoded.status();
    current = *decoded;
  } else {
    ++stats_.misses;
    auto value = client_->Get(key);
    if (value.ok()) {
      auto decoded = tdstore::DecodeDouble(*value);
      if (!decoded.ok()) return decoded.status();
      current = *decoded;
    } else if (!value.status().IsNotFound()) {
      return value.status();
    }
  }
  const double next = current + delta;
  TR_RETURN_IF_ERROR(Put(key, tdstore::EncodeDouble(next)));
  return next;
}

void StoreCache::Invalidate(const std::string& key) {
  auto it = entries_.find(key);
  if (it == entries_.end()) return;
  lru_.erase(it->second.lru_it);
  entries_.erase(it);
}

void StoreCache::Clear() {
  lru_.clear();
  entries_.clear();
}

}  // namespace tencentrec::topo
