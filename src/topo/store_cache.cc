#include "topo/store_cache.h"

#include "tdstore/codec.h"

namespace tencentrec::topo {

void StoreCache::Touch(Entry& entry) {
  lru_.splice(lru_.begin(), lru_, entry.lru_it);
}

void StoreCache::InsertOrUpdate(const std::string& key, std::string value,
                                bool negative) {
  if (capacity_ == 0) return;  // cache disabled: nothing can be held
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    it->second.value = std::move(value);
    it->second.negative = negative;
    Touch(it->second);
    return;
  }
  while (entries_.size() >= capacity_) {
    entries_.erase(lru_.back());
    lru_.pop_back();
  }
  lru_.push_front(key);
  entries_[key] = Entry{std::move(value), negative, lru_.begin()};
}

Result<std::string> StoreCache::StoreRead(const std::string& key) {
  if (writer_ != nullptr) {
    // A staged put that has not shipped yet is the key's newest value (the
    // cached copy may have been evicted since staging); a staged incr means
    // the store is behind by the delta, so ship the batch before reading.
    if (const std::string* staged = writer_->StagedPut(key)) return *staged;
    if (writer_->HasStaged(key)) TR_RETURN_IF_ERROR(writer_->Flush());
  }
  return client_->Get(key);
}

Result<std::string> StoreCache::Get(const std::string& key) {
  if (!Active()) {
    ++stats_.misses;
    return StoreRead(key);
  }
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    if (it->second.negative) {
      ++stats_.negative_hits;
      Touch(it->second);
      return Status::NotFound(key);
    }
    ++stats_.hits;
    Touch(it->second);
    return it->second.value;
  }
  ++stats_.misses;
  auto value = StoreRead(key);
  if (!value.ok()) {
    if (value.status().IsNotFound()) {
      InsertOrUpdate(key, "", /*negative=*/true);
    }
    return value.status();
  }
  InsertOrUpdate(key, *value);
  return value;
}

Status StoreCache::Put(const std::string& key, std::string value) {
  ++stats_.writes;
  if (writer_ != nullptr) {
    // Write-behind: cache first, stage second. A flush-time failure
    // invalidates the entry that got ahead of the store and surfaces
    // through the writer's flush status / last_error().
    if (Active()) InsertOrUpdate(key, value);
    writer_->Put(key, value, [this, key](const Status& s) {
      if (!s.ok()) Invalidate(key);
    });
    return Status::OK();
  }
  TR_RETURN_IF_ERROR(client_->Put(key, value));
  if (Active()) InsertOrUpdate(key, std::move(value));
  return Status::OK();
}

Result<double> StoreCache::AddDouble(const std::string& key, double delta) {
  if (!Active()) {
    ++stats_.misses;
    ++stats_.writes;
    if (writer_ != nullptr && writer_->HasStaged(key)) {
      // The staged op must land before a point incr, or its later flush
      // would clobber the increment.
      TR_RETURN_IF_ERROR(writer_->Flush());
    }
    return client_->IncrDouble(key, delta);
  }
  double current = 0.0;
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    if (it->second.negative) {
      // Known-absent: the add starts from 0 with no store read; the Put
      // below replaces the negative entry.
      ++stats_.negative_hits;
    } else {
      ++stats_.hits;
      auto decoded = tdstore::DecodeDouble(it->second.value);
      if (!decoded.ok()) return decoded.status();
      current = *decoded;
    }
  } else {
    ++stats_.misses;
    auto value = StoreRead(key);
    if (value.ok()) {
      auto decoded = tdstore::DecodeDouble(*value);
      if (!decoded.ok()) return decoded.status();
      current = *decoded;
    } else if (!value.status().IsNotFound()) {
      return value.status();
    }
  }
  const double next = current + delta;
  TR_RETURN_IF_ERROR(Put(key, tdstore::EncodeDouble(next)));
  return next;
}

void StoreCache::AddDoubleBatch(
    const std::vector<std::pair<std::string, double>>& adds,
    tdstore::BatchWriter* writer,
    const std::function<void(const std::string&, const Status&)>& on_error) {
  for (const auto& [key, delta] : adds) {
    if (!Active()) {
      ++stats_.misses;
      ++stats_.writes;
      writer->IncrDouble(key, delta,
                         [key, on_error](const Result<double>& r) {
                           if (!r.ok() && on_error) on_error(key, r.status());
                         });
      continue;
    }
    auto it = entries_.find(key);
    if (it != entries_.end()) {
      ++stats_.writes;
      double current = 0.0;
      if (it->second.negative) {
        ++stats_.negative_hits;  // known-absent: add starts from 0
      } else {
        ++stats_.hits;
        auto decoded = tdstore::DecodeDouble(it->second.value);
        if (!decoded.ok()) {
          if (on_error) on_error(key, decoded.status());
          continue;
        }
        current = *decoded;
      }
      const double next = current + delta;
      // Single-writer-per-key: updating the cache before the put ships is
      // safe, and lets later adds in this same batch hit the fresh value.
      InsertOrUpdate(key, tdstore::EncodeDouble(next));
      writer->PutDouble(key, next,
                        [this, key, on_error](const Status& s) {
                          if (s.ok()) return;
                          Invalidate(key);  // cache is ahead of the store
                          if (on_error) on_error(key, s);
                        });
      continue;
    }
    ++stats_.misses;
    ++stats_.writes;
    // Unknown current value: let the server do the read-modify-write and
    // adopt its result into the cache when the batch lands.
    writer->IncrDouble(key, delta,
                       [this, key, on_error](const Result<double>& r) {
                         if (!r.ok()) {
                           if (on_error) on_error(key, r.status());
                           return;
                         }
                         InsertOrUpdate(key, tdstore::EncodeDouble(*r));
                       });
  }
}

void StoreCache::Invalidate(const std::string& key) {
  auto it = entries_.find(key);
  if (it == entries_.end()) return;
  lru_.erase(it->second.lru_it);
  entries_.erase(it);
}

void StoreCache::Clear() {
  lru_.clear();
  entries_.clear();
}

}  // namespace tencentrec::topo
