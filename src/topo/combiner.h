#ifndef TENCENTREC_TOPO_COMBINER_H_
#define TENCENTREC_TOPO_COMBINER_H_

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/status.h"

namespace tencentrec::topo {

/// The combiner of §5.3 (hot item problem): a map buffering incoming tuples
/// and partially merging those with the same key, so that one expensive
/// TDStore write replaces many. Flush() is called from the bolt's Tick()
/// (the "predefined intervals") and before end-of-stream.
///
/// Under a temporal burst the same hot key is hit over and over inside one
/// interval, so the combine ratio — and the saving — *increases* exactly
/// when the system is under the most load.
class Combiner {
 public:
  struct Stats {
    int64_t added = 0;    ///< tuples absorbed
    int64_t flushed = 0;  ///< store writes issued
  };

  /// Merges `delta` into the buffered value for `key` (combine op = add).
  void Add(const std::string& key, double delta) {
    buffer_[key] += delta;
    ++stats_.added;
  }

  /// Drains the buffer through `write` (one call per distinct key). Stops
  /// at the first error, leaving undrained entries buffered.
  Status Flush(
      const std::function<Status(const std::string& key, double delta)>&
          write) {
    for (auto it = buffer_.begin(); it != buffer_.end();) {
      Status s = write(it->first, it->second);
      if (!s.ok()) return s;
      ++stats_.flushed;
      it = buffer_.erase(it);
    }
    return Status::OK();
  }

  /// Moves the whole buffer out at once (the batched-flush path: the caller
  /// ships entries through a BatchWriter and re-Adds any that fail, keeping
  /// the at-least-once story of Flush). Every drained entry counts as
  /// flushed.
  void Drain(std::vector<std::pair<std::string, double>>* out) {
    out->clear();
    out->reserve(buffer_.size());
    for (auto& [key, delta] : buffer_) out->emplace_back(key, delta);
    stats_.flushed += static_cast<int64_t>(buffer_.size());
    buffer_.clear();
  }

  size_t pending() const { return buffer_.size(); }
  const Stats& stats() const { return stats_; }

 private:
  std::unordered_map<std::string, double> buffer_;
  Stats stats_;
};

}  // namespace tencentrec::topo

#endif  // TENCENTREC_TOPO_COMBINER_H_
