#ifndef TENCENTREC_TOPO_BOLTS_H_
#define TENCENTREC_TOPO_BOLTS_H_

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/trace.h"
#include "obs/freshness.h"
#include "tdstore/batch_writer.h"
#include "tdstore/client.h"
#include "topo/action_codec.h"
#include "topo/app.h"
#include "topo/combiner.h"
#include "topo/store_cache.h"

namespace tencentrec::topo {

/// Shared plumbing: every bolt owns a TDStore client and a fine-grained
/// cache, both created in Prepare() — so a simulated worker crash-restart
/// drops all transient state and must recover from TDStore, which is the
/// paper's fault-tolerance contract (§3.3, §5.1).
class StoreBolt : public tstorm::IBolt {
 public:
  explicit StoreBolt(const AppContext* app) : app_(app) {}

  void Prepare(const tstorm::TaskContext& ctx) override;

  /// Ships any write-behind ops still staged on the batch writer. tstorm
  /// runs Cleanup after the last Execute/Tick and before Run() returns, so
  /// every batch's writes reach the store before the engine commits the
  /// batch barrier (or a query reads the batch's results).
  void Cleanup() override;

  const StoreCache::Stats& cache_stats() const { return cache_->stats(); }

  /// Write-behind batch writer, or nullptr when store batching is off.
  tdstore::BatchWriter* batch_writer() const { return writer_.get(); }

 protected:
  const AppOptions& options() const { return app_->options; }
  const Keys& keys() const { return app_->keys; }

  /// Ships `combiner`'s whole buffer through the batch writer: one grouped
  /// per-host store call per op kind instead of an AddDouble round trip per
  /// key. Keys whose write fails are re-buffered into the combiner, keeping
  /// the point path's at-least-once behavior. Requires batching enabled.
  Status FlushCombinerBatched(Combiner* combiner);

  /// Sliding-window sum of a per-session double counter (Eq. 10 read side):
  /// sums `key_of(session)` over the window ending at the session of `now`.
  ///
  /// `use_cache` must be false for counters OWNED BY A DIFFERENT BOLT: the
  /// fine-grained cache is only valid for keys this worker writes (§5.2 —
  /// stream grouping guarantees single-writer, which is what makes cached
  /// values trustworthy); caching another bolt's counter would pin its
  /// first-seen value forever.
  Result<double> WindowSum(
      const std::function<std::string(int64_t session)>& key_of,
      EventTime now, bool use_cache);

  /// Records `now - ingest_micros` against this component's event-to-store
  /// histogram ("topo.<app>.<component>.event_to_store_us") and advances
  /// this instance's freshness watermark. Call right after the derived
  /// state lands in TDStore. A traced tuple's id is captured as the
  /// bucket's exemplar, linking /metrics to /traces. No-op for unstamped
  /// tuples (ingest == 0); with metrics disabled at Prepare time only the
  /// watermark advances (freshness is an obs-plane invariant, not a
  /// measurement).
  void RecordEventToStore(uint64_t ingest_micros, uint64_t trace_id = 0) {
    freshness_.Advance(ingest_micros);
    if (e2s_ == nullptr || ingest_micros == 0) return;
    const uint64_t now = MonoMicros();
    const uint64_t latency = now > ingest_micros ? now - ingest_micros : 0;
    if (trace_id != 0) {
      e2s_->RecordWithExemplar(latency, trace_id);
    } else {
      e2s_->Record(latency);
    }
  }

  /// Watermark-only advance, for completion paths with no store write (a
  /// pass-through emit, a no-change upsert) and for combiner flushes, which
  /// land everything buffered up to the *max* pending stamp while the
  /// latency histogram gets the honest *oldest* stamp.
  void AdvanceFreshness(uint64_t ingest_micros) {
    freshness_.Advance(ingest_micros);
  }

  const AppContext* app_;
  tstorm::TaskContext ctx_;
  std::unique_ptr<tdstore::Client> client_;
  std::unique_ptr<StoreCache> cache_;
  std::unique_ptr<tdstore::BatchWriter> writer_;
  LatencyHistogram* e2s_ = nullptr;
  /// This instance's event-time watermark register (stage = component name).
  obs::FreshnessTracker::ScopedSlot freshness_;
  /// Span names for this component's hops, resolved once in Prepare so the
  /// per-tuple ScopedSpan constructors never allocate. Stable for the task's
  /// lifetime, as ScopedSpan requires.
  std::string span_name_;
  std::string flush_span_name_;
};

/// Preprocessing layer (Fig. 6): parses and validates raw action tuples,
/// drops unqualified ones, forwards the rest. Application Common Unit.
class PretreatmentBolt : public StoreBolt {
 public:
  explicit PretreatmentBolt(const AppContext* app) : StoreBolt(app) {}

  std::vector<tstorm::StreamDecl> DeclareOutputs() const override {
    return {ActionStreamDecl("user_action")};
  }

  void Execute(const tstorm::Tuple& input, const tstorm::TupleSource& source,
               tstorm::OutputCollector& out) override;

  int64_t dropped() const { return dropped_; }

 private:
  int64_t dropped_ = 0;
};

/// Layer 1 of the multi-layer CF (Fig. 4): grouped by user id, owns the
/// user's behaviour history in TDStore, turns each action into ∆rating and
/// ∆co-rating tuples (§4.1.3), and fans them out (every derived stream
/// carries the source action's ingest stamp for latency tracing):
///   "item_delta"  (item, ∆r, ts, ingest, trace)       -> ItemCountBolt
///   "pair_delta"  (lo, hi, ∆co, ts, ingest, trace)    -> CfPairBolt
///   "group_delta" (group, item, w, ts, ingest, trace) -> GroupCountBolt
/// The group_delta hop is the multi-hash technique of §5.4: demographic
/// counters are keyed by group, not user, so they take a second hash stage
/// instead of conflicting writes from user-grouped workers.
class UserHistoryBolt : public StoreBolt {
 public:
  explicit UserHistoryBolt(const AppContext* app) : StoreBolt(app) {}

  std::vector<tstorm::StreamDecl> DeclareOutputs() const override {
    return {
        {"item_delta", {"item", "delta", "ts", "ingest", "trace"}},
        {"pair_delta", {"lo", "hi", "delta", "ts", "ingest", "trace"}},
        {"group_delta", {"group", "item", "delta", "ts", "ingest", "trace"}},
    };
  }

  void Execute(const tstorm::Tuple& input, const tstorm::TupleSource& source,
               tstorm::OutputCollector& out) override;
};

/// Layer 2a (Fig. 4): grouped by item id, incrementally accumulates
/// itemCount_w in TDStore (Eq. 6/8/10) through the combiner (§5.3).
class ItemCountBolt : public StoreBolt {
 public:
  explicit ItemCountBolt(const AppContext* app) : StoreBolt(app) {}

  void Execute(const tstorm::Tuple& input, const tstorm::TupleSource& source,
               tstorm::OutputCollector& out) override;
  void Tick(tstorm::OutputCollector& out) override;

  const Combiner::Stats& combiner_stats() const { return combiner_.stats(); }

 private:
  Combiner combiner_;
  /// Oldest ingest stamp buffered in the combiner; its delta is recorded
  /// once per flush, when those counts actually reach the store.
  uint64_t oldest_pending_ingest_ = 0;
  /// Newest buffered stamp: the watermark this instance reaches once the
  /// flush lands (latency reports the oldest, the watermark the newest).
  uint64_t pending_max_ingest_ = 0;
  /// First sampled trace id buffered since the last flush (arrival order =
  /// oldest); the flush span is attributed to it.
  uint64_t oldest_pending_trace_ = 0;
};

/// Layer 2b + 3 (Fig. 4, Algorithm 1): grouped by item pair — the key
/// grouping is what lets the paper claim "only a single worker node should
/// operate over a specific item pair ... the calculation can be safely
/// scaled". Updates pairCount_w, computes the new similarity from windowed
/// counts (Eq. 5/10), maintains the pair's Hoeffding state (n_ij, pruned
/// flag; Eq. 9) and emits:
///   "sim_update" (item, other, sim, ingest, trace) x2 -> SimilarListBolt
///   "prune"      (item, other)                     x2 -> SimilarListBolt
class CfPairBolt : public StoreBolt {
 public:
  explicit CfPairBolt(const AppContext* app) : StoreBolt(app) {}

  std::vector<tstorm::StreamDecl> DeclareOutputs() const override {
    return {
        {"sim_update", {"item", "other", "sim", "ingest", "trace"}},
        {"prune", {"item", "other"}},
    };
  }

  void Execute(const tstorm::Tuple& input, const tstorm::TupleSource& source,
               tstorm::OutputCollector& out) override;

  int64_t pair_updates() const { return pair_updates_; }
  int64_t pruned_skips() const { return pruned_skips_; }
  int64_t prune_decisions() const { return prune_decisions_; }

 private:
  double hoeffding_ln_inv_delta_ = 0.0;
  int64_t pair_updates_ = 0;
  int64_t pruned_skips_ = 0;
  int64_t prune_decisions_ = 0;

  void Prepare(const tstorm::TaskContext& ctx) override;
};

/// Owns each item's similar-items top-K blob and its admission threshold
/// key (grouped by item — the second stage that serializes writes to
/// sim:<item> the same way §5.4 serializes group counters).
///
/// List scores are the similarities computed upstream at emission time;
/// because the statistics paths are decoupled (§5.1), a score can be
/// transiently stale, and a list frozen at end-of-stream can hold a
/// transient ordering. Continued traffic self-corrects (every touch of a
/// pair rewrites its entry), and the serving path recomputes scores from
/// current counts — the same convergence argument the production system
/// relies on at 4B events/day.
class SimilarListBolt : public StoreBolt {
 public:
  explicit SimilarListBolt(const AppContext* app) : StoreBolt(app) {}

  void Execute(const tstorm::Tuple& input, const tstorm::TupleSource& source,
               tstorm::OutputCollector& out) override;
};

/// DB statistics: grouped by (group, item), accumulates windowed group
/// popularity counts through the combiner, then notifies the hot-list
/// stage:
///   "hot_touch" (group, item, ts, ingest, trace) -> HotListBolt [by group]
/// Combiner-path touches flush at Tick, after the source stamps have been
/// batched away, so those emit ingest = 0 and trace = 0 (untraced).
class GroupCountBolt : public StoreBolt {
 public:
  explicit GroupCountBolt(const AppContext* app) : StoreBolt(app) {}

  std::vector<tstorm::StreamDecl> DeclareOutputs() const override {
    return {{"hot_touch", {"group", "item", "ts", "ingest", "trace"}}};
  }

  void Execute(const tstorm::Tuple& input, const tstorm::TupleSource& source,
               tstorm::OutputCollector& out) override;
  void Tick(tstorm::OutputCollector& out) override;

  const Combiner::Stats& combiner_stats() const { return combiner_.stats(); }

 private:
  Combiner combiner_;
  std::set<std::pair<int64_t, int64_t>> touched_;  ///< (group, item)
  EventTime latest_ts_ = 0;
  uint64_t oldest_pending_ingest_ = 0;
  uint64_t pending_max_ingest_ = 0;
  uint64_t oldest_pending_trace_ = 0;
};

/// Maintains each demographic group's hot-items top-K blob (grouped by
/// group id).
class HotListBolt : public StoreBolt {
 public:
  explicit HotListBolt(const AppContext* app) : StoreBolt(app) {}

  void Execute(const tstorm::Tuple& input, const tstorm::TupleSource& source,
               tstorm::OutputCollector& out) override;

 private:
  EventTime latest_ts_ = 0;
};

/// Situational CTR statistics (grouped by item): counts impressions and
/// clicks per situation level per window session, combiner-buffered.
class CtrStatsBolt : public StoreBolt {
 public:
  explicit CtrStatsBolt(const AppContext* app) : StoreBolt(app) {}

  void Execute(const tstorm::Tuple& input, const tstorm::TupleSource& source,
               tstorm::OutputCollector& out) override;
  void Tick(tstorm::OutputCollector& out) override;

  const Combiner::Stats& combiner_stats() const { return combiner_.stats(); }

 private:
  Combiner combiner_;
  uint64_t oldest_pending_ingest_ = 0;
  uint64_t pending_max_ingest_ = 0;
  uint64_t oldest_pending_trace_ = 0;
};

/// CB statistics (grouped by user): folds actions into the user's decayed
/// tag profile blob using the item tag vectors registered in TDStore.
class CbProfileBolt : public StoreBolt {
 public:
  explicit CbProfileBolt(const AppContext* app) : StoreBolt(app) {}

  void Execute(const tstorm::Tuple& input, const tstorm::TupleSource& source,
               tstorm::OutputCollector& out) override;

 private:
  double decay_lambda_ = 0.0;

  void Prepare(const tstorm::TaskContext& ctx) override;
};

/// Storage layer (Fig. 6): grouped by user, tracks users with fresh
/// activity and on each tick recomputes their recommendations from TDStore
/// state, applies the application's filter rules, and materializes the
/// result blob — so that "whenever an event occurs, it costs less than one
/// second for TencentRec to ... update the recommendation results".
class ResultStorageBolt : public StoreBolt {
 public:
  explicit ResultStorageBolt(const AppContext* app) : StoreBolt(app) {}

  void Execute(const tstorm::Tuple& input, const tstorm::TupleSource& source,
               tstorm::OutputCollector& out) override;
  void Tick(tstorm::OutputCollector& out) override;

  int64_t results_written() const { return results_written_; }

 private:
  struct TouchedUser {
    core::Demographics demographics;
    EventTime ts = 0;
    /// Oldest unserved ingest stamp — the pessimistic bound on how long
    /// this user's freshest recommendation has been pending.
    uint64_t ingest_micros = 0;
    /// First sampled trace among the pending actions; the Tick-time
    /// recommend+write span is attributed to it.
    uint64_t trace_id = 0;
  };
  std::unordered_map<int64_t, TouchedUser> pending_;
  /// Newest ingest stamp across all pending users; the instance watermark
  /// once a fully successful Tick has refreshed every touched user.
  uint64_t pending_max_ingest_ = 0;
  int64_t results_written_ = 0;
};

}  // namespace tencentrec::topo

#endif  // TENCENTREC_TOPO_BOLTS_H_
