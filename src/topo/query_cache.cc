#include "topo/query_cache.h"

#include <utility>

namespace tencentrec::topo {

QueryCache::QueryCache(Options options) : options_(std::move(options)) {
  if (MetricsEnabled()) {
    auto& reg = MetricRegistry::Default();
    const std::string& scope = options_.metrics_scope;
    hits_ = reg.GetCounter(scope + ".hits");
    negative_hits_ = reg.GetCounter(scope + ".negative_hits");
    misses_ = reg.GetCounter(scope + ".misses");
    coalesced_ = reg.GetCounter(scope + ".coalesced");
    evictions_ = reg.GetCounter(scope + ".evictions");
    invalidations_ = reg.GetCounter(scope + ".invalidations");
  }
}

void QueryCache::EraseLocked(
    const std::unordered_map<std::string, Entry>::iterator& it) {
  lru_.erase(it->second.lru_it);
  entries_.erase(it);
}

void QueryCache::InsertLocked(const std::string& key,
                              const Result<std::string>& r, uint64_t now) {
  Entry entry;
  entry.status = r.ok() ? Status::OK() : r.status();
  if (r.ok()) entry.value = *r;
  entry.expires_at = now + static_cast<uint64_t>(options_.ttl_micros);
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    entry.lru_it = it->second.lru_it;
    it->second = std::move(entry);
    lru_.splice(lru_.begin(), lru_, it->second.lru_it);
    return;
  }
  while (entries_.size() >= options_.capacity) {
    entries_.erase(lru_.back());
    lru_.pop_back();
    ++stats_.evictions;
    if (evictions_ != nullptr) evictions_->Add();
  }
  lru_.push_front(key);
  entry.lru_it = lru_.begin();
  entries_[key] = std::move(entry);
}

Status QueryCache::GetBatch(const std::vector<std::string>& keys,
                            const FetchFn& fetch,
                            std::vector<Result<std::string>>* out) {
  out->assign(keys.size(),
              Result<std::string>(Status::Internal("query cache: unresolved")));
  if (keys.empty()) return Status::OK();

  // One record per unique key that could not be served from cache; `idxs`
  // are the output slots (duplicates included) this key resolves.
  struct Wait {
    std::string key;
    std::shared_ptr<Flight> flight;
    std::vector<size_t> idxs;
    bool owner = false;
  };
  std::vector<Wait> waits;
  // Unique-key directory for this batch: resolved-from-cache keys map to
  // the first output slot holding their result, unresolved keys to their
  // Wait record.
  std::unordered_map<std::string, size_t> cached_at;
  std::unordered_map<std::string, size_t> wait_at;

  {
    std::lock_guard<ProfiledMutex> lock(mu_);
    const uint64_t now = Now();
    for (size_t i = 0; i < keys.size(); ++i) {
      const std::string& key = keys[i];
      auto dup = cached_at.find(key);
      if (dup != cached_at.end()) {
        (*out)[i] = (*out)[dup->second];
        continue;
      }
      auto w = wait_at.find(key);
      if (w != wait_at.end()) {
        waits[w->second].idxs.push_back(i);
        continue;
      }
      auto it = entries_.find(key);
      if (it != entries_.end()) {
        if (now < it->second.expires_at) {
          if (it->second.status.ok()) {
            ++stats_.hits;
            if (hits_ != nullptr) hits_->Add();
            (*out)[i] = it->second.value;
          } else {
            ++stats_.negative_hits;
            if (negative_hits_ != nullptr) negative_hits_->Add();
            (*out)[i] = it->second.status;
          }
          lru_.splice(lru_.begin(), lru_, it->second.lru_it);
          cached_at.emplace(key, i);
          continue;
        }
        EraseLocked(it);  // expired: drop eagerly, fetch below
      }
      auto f = inflight_.find(key);
      if (f != inflight_.end()) {
        ++stats_.coalesced;
        if (coalesced_ != nullptr) coalesced_->Add();
        wait_at.emplace(key, waits.size());
        waits.push_back(Wait{key, f->second, {i}, /*owner=*/false});
        continue;
      }
      ++stats_.misses;
      if (misses_ != nullptr) misses_->Add();
      auto flight = std::make_shared<Flight>();
      inflight_.emplace(key, flight);
      wait_at.emplace(key, waits.size());
      waits.push_back(Wait{key, std::move(flight), {i}, /*owner=*/true});
    }
  }

  // Fetch every key this call owns in ONE grouped store read, then publish.
  // Owners never wait on anyone before publishing, so coalescing cannot
  // deadlock across threads resolving overlapping key sets.
  std::vector<size_t> owned;
  std::vector<std::string> owned_keys;
  for (size_t w = 0; w < waits.size(); ++w) {
    if (waits[w].owner) {
      owned.push_back(w);
      owned_keys.push_back(waits[w].key);
    }
  }
  Status fetch_status = Status::OK();
  if (!owned_keys.empty()) {
    std::vector<Result<std::string>> fetched;
    fetch_status = fetch(owned_keys, &fetched);
    const bool have =
        fetch_status.ok() && fetched.size() == owned_keys.size();
    if (fetch_status.ok() && !have) {
      fetch_status = Status::Internal("query cache: short fetch result");
    }
    {
      std::lock_guard<ProfiledMutex> lock(mu_);
      const uint64_t now = Now();
      for (size_t j = 0; j < owned.size(); ++j) {
        const Wait& w = waits[owned[j]];
        const Result<std::string>& r =
            have ? fetched[j] : Result<std::string>(fetch_status);
        if (CachingEnabled() && (r.ok() || r.status().IsNotFound())) {
          InsertLocked(w.key, r, now);
        }
        inflight_.erase(w.key);
      }
    }
    // Publish outside mu_ so waiters wake without contending on the cache.
    for (size_t j = 0; j < owned.size(); ++j) {
      waits[owned[j]].flight->Publish(
          have ? fetched[j] : Result<std::string>(fetch_status));
    }
  }

  for (const Wait& w : waits) {
    const Result<std::string>& r =
        w.owner ? w.flight->result : w.flight->Await();
    for (size_t i : w.idxs) (*out)[i] = r;
  }
  return fetch_status;
}

Result<std::string> QueryCache::Get(const std::string& key,
                                    const FetchFn& fetch) {
  std::vector<Result<std::string>> out;
  Status s = GetBatch({key}, fetch, &out);
  if (!s.ok()) return s;
  return std::move(out[0]);
}

void QueryCache::Invalidate(const std::string& key) {
  std::lock_guard<ProfiledMutex> lock(mu_);
  auto it = entries_.find(key);
  if (it == entries_.end()) return;
  EraseLocked(it);
  ++stats_.invalidations;
  if (invalidations_ != nullptr) invalidations_->Add();
}

void QueryCache::Clear() {
  std::lock_guard<ProfiledMutex> lock(mu_);
  lru_.clear();
  entries_.clear();
}

QueryCache::Stats QueryCache::stats() const {
  std::lock_guard<ProfiledMutex> lock(mu_);
  return stats_;
}

size_t QueryCache::size() const {
  std::lock_guard<ProfiledMutex> lock(mu_);
  return entries_.size();
}

}  // namespace tencentrec::topo
