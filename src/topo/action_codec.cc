#include "topo/action_codec.h"

#include <cstring>

namespace tencentrec::topo {

const std::vector<std::string>& ActionFields() {
  static const std::vector<std::string>* kFields = new std::vector<std::string>{
      "user", "item",   "action", "ts",    "gender",
      "age",  "region", "ingest", "trace"};
  return *kFields;
}

tstorm::StreamDecl ActionStreamDecl(const std::string& stream_name) {
  return tstorm::StreamDecl{stream_name, ActionFields()};
}

tstorm::Tuple ActionToTuple(const core::UserAction& action) {
  return tstorm::Tuple(std::vector<tstorm::Value>{
      static_cast<int64_t>(action.user),
      static_cast<int64_t>(action.item),
      static_cast<int64_t>(action.action),
      static_cast<int64_t>(action.timestamp),
      static_cast<int64_t>(action.demographics.gender),
      static_cast<int64_t>(action.demographics.age_band),
      static_cast<int64_t>(action.demographics.region),
      static_cast<int64_t>(action.ingest_micros),
      static_cast<int64_t>(action.trace_id),
  });
}

Result<core::UserAction> ActionFromTuple(const tstorm::Tuple& tuple) {
  if (tuple.size() != ActionFields().size()) {
    return Status::Corruption("action tuple: wrong arity");
  }
  for (size_t i = 0; i < tuple.size(); ++i) {
    if (!std::holds_alternative<int64_t>(tuple.at(i))) {
      return Status::Corruption("action tuple: non-integer field");
    }
  }
  core::UserAction action;
  action.user = tuple.GetInt(0);
  action.item = tuple.GetInt(1);
  const int64_t action_code = tuple.GetInt(2);
  if (action_code < 0 ||
      action_code >= static_cast<int64_t>(core::kNumActionTypes)) {
    return Status::Corruption("action tuple: bad action type");
  }
  action.action = static_cast<core::ActionType>(action_code);
  action.timestamp = tuple.GetInt(3);
  const int64_t gender = tuple.GetInt(4);
  if (gender < 0 || gender > core::Demographics::kFemale) {
    return Status::Corruption("action tuple: bad gender");
  }
  action.demographics.gender =
      static_cast<core::Demographics::Gender>(gender);
  action.demographics.age_band = static_cast<uint8_t>(tuple.GetInt(5));
  action.demographics.region = static_cast<uint16_t>(tuple.GetInt(6));
  action.ingest_micros = static_cast<uint64_t>(tuple.GetInt(7));
  action.trace_id = static_cast<uint64_t>(tuple.GetInt(8));
  return action;
}

namespace {
constexpr size_t kLegacyPayloadSize = 8 + 8 + 1 + 8 + 1 + 1 + 2;
constexpr size_t kIngestPayloadSize = kLegacyPayloadSize + 8;  // + ingest stamp
constexpr size_t kPayloadSize = kIngestPayloadSize + 8;        // + trace id
}  // namespace

std::string EncodeActionPayload(const core::UserAction& action) {
  std::string out;
  out.reserve(kPayloadSize);
  auto put = [&out](const void* p, size_t n) {
    out.append(static_cast<const char*>(p), n);
  };
  int64_t user = action.user;
  int64_t item = action.item;
  uint8_t type = static_cast<uint8_t>(action.action);
  int64_t ts = action.timestamp;
  uint8_t gender = static_cast<uint8_t>(action.demographics.gender);
  uint8_t age = action.demographics.age_band;
  uint16_t region = action.demographics.region;
  uint64_t ingest = action.ingest_micros;
  uint64_t trace = action.trace_id;
  put(&user, 8);
  put(&item, 8);
  put(&type, 1);
  put(&ts, 8);
  put(&gender, 1);
  put(&age, 1);
  put(&region, 2);
  put(&ingest, 8);
  put(&trace, 8);
  return out;
}

Result<core::UserAction> DecodeActionPayload(std::string_view payload) {
  if (payload.size() != kPayloadSize &&
      payload.size() != kIngestPayloadSize &&
      payload.size() != kLegacyPayloadSize) {
    return Status::Corruption("action payload: bad size");
  }
  size_t pos = 0;
  auto get = [&payload, &pos](void* p, size_t n) {
    std::memcpy(p, payload.data() + pos, n);
    pos += n;
  };
  core::UserAction action;
  int64_t user, item, ts;
  uint8_t type, gender, age;
  uint16_t region;
  uint64_t ingest = 0;
  uint64_t trace = 0;
  get(&user, 8);
  get(&item, 8);
  get(&type, 1);
  get(&ts, 8);
  get(&gender, 1);
  get(&age, 1);
  get(&region, 2);
  if (payload.size() >= kIngestPayloadSize) get(&ingest, 8);
  if (payload.size() == kPayloadSize) get(&trace, 8);
  if (type >= core::kNumActionTypes) {
    return Status::Corruption("action payload: bad action type");
  }
  if (gender > core::Demographics::kFemale) {
    return Status::Corruption("action payload: bad gender");
  }
  action.user = user;
  action.item = item;
  action.action = static_cast<core::ActionType>(type);
  action.timestamp = ts;
  action.demographics.gender = static_cast<core::Demographics::Gender>(gender);
  action.demographics.age_band = age;
  action.demographics.region = region;
  action.ingest_micros = ingest;
  action.trace_id = trace;
  return action;
}

}  // namespace tencentrec::topo
