#ifndef TENCENTREC_TOPO_QUERY_H_
#define TENCENTREC_TOPO_QUERY_H_

#include <memory>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "core/scored.h"
#include "tdstore/client.h"
#include "topo/app.h"
#include "topo/blob_codec.h"
#include "topo/query_cache.h"

namespace tencentrec::topo {

/// The recommender-engine read path (Fig. 9): answers recommendation
/// queries purely from the state the topology maintains in TDStore. This is
/// what the "Recommender Engine" box does — it never touches the stream
/// pipeline, so queries scale independently of ingestion.
///
/// With `AppOptions::enable_query_batching` (the default) every query plans
/// its full key set up front — all session keys for all candidate
/// items/pairs, similar-item lists, tag indexes, item tags — dedupes
/// repeated keys, and issues grouped MultiGets through a QueryCache
/// (short-TTL positive/negative entries + single-flight coalescing) instead
/// of one point Get per key. Results are bit-identical to the unbatched
/// path on a healthy store; under per-key transient store errors the
/// batched path degrades per candidate (PR 4's per-key-status semantics)
/// where the unbatched path fails the whole query.
///
/// Not thread-safe; create one per serving thread (each owns a client).
/// Concurrent serving threads SHOULD share one QueryCache (second
/// constructor) — that sharing is what collapses identical in-flight reads
/// across threads into one store round-trip.
class StoreQuery {
 public:
  /// Batching per `app->options`; when enabled, owns a private QueryCache
  /// sized from the options.
  explicit StoreQuery(const AppContext* app);
  /// Same, but sharing `cache` with other StoreQuery instances (the engine
  /// wires all serving threads to one cache). Ignored when batching is off.
  StoreQuery(const AppContext* app, std::shared_ptr<QueryCache> cache);

  /// Item-based CF prediction (Eq. 2 over the user's recent-k items, §4.3)
  /// from the sim:<item> lists. Excludes items the user already rated.
  Result<core::Recommendations> RecommendCf(core::UserId user, size_t n,
                                            EventTime now);

  /// Demographic hot items with global-group fallback.
  Result<core::Recommendations> HotItems(core::GroupId group, size_t n,
                                         EventTime now);

  /// The production composition: CF, filtered by the app's result_filter,
  /// complemented by DB hot items (§4.2/§6.4).
  Result<core::Recommendations> Recommend(core::UserId user,
                                          const core::Demographics& d,
                                          size_t n, EventTime now);

  /// Content-based recommendation from the cp:<user> profile blob and the
  /// tag inverted index. Excludes seen (rated) and expired items.
  Result<core::Recommendations> RecommendCb(core::UserId user, size_t n,
                                            EventTime now);

  /// Association-rule recommendation: confidence(from -> to) =
  /// windowPairCount / windowItemCount(from), candidates drawn from the
  /// similar-items list of `from`.
  Result<core::Recommendations> RecommendAr(core::ItemId from, size_t n,
                                            EventTime now,
                                            double min_support = 2.0,
                                            double min_confidence = 0.05);

  /// Situational CTR estimate (hierarchical shrinkage over window counts).
  Result<double> PredictCtr(core::ItemId item, const core::Demographics& d,
                            EventTime now);

  /// Raw windowed (impressions, clicks) at the situation's deepest level —
  /// the §1 "CTR during the last ten seconds among male users..." query.
  Result<std::pair<double, double>> SituationCounts(
      core::ItemId item, const core::Demographics& d, EventTime now);

  /// The list materialized by ResultStorageBolt (empty if none).
  Result<core::Recommendations> MaterializedResults(core::UserId user);

  /// Windowed similarity of a pair recomputed from counts (test hook).
  Result<double> SimilarityFromCounts(core::ItemId a, core::ItemId b,
                                      EventTime now);

  /// Windowed itemCount (test hook / AR support).
  Result<double> WindowItemCount(core::ItemId item, EventTime now);
  Result<double> WindowPairCount(core::ItemId a, core::ItemId b,
                                 EventTime now);

  /// The cache behind the batched tier (nullptr when batching is off).
  QueryCache* cache() { return cache_.get(); }

 private:
  Result<double> WindowSum(
      const std::function<std::string(int64_t session)>& key_of,
      EventTime now);
  Result<core::UserHistory> LoadHistory(core::UserId user);

  /// Batched read of `keys`: through the QueryCache (dedupe + TTL cache +
  /// coalescing) when present, else a locally-deduped grouped MultiGet.
  /// `out` gets one Result per input key.
  Status FetchMany(const std::vector<std::string>& keys,
                   std::vector<Result<std::string>>* out);
  /// Single-key read through the same tier (still coalesces/caches).
  Result<std::string> FetchOne(const std::string& key);
  /// One blob read: FetchOne when batching, point Get otherwise.
  Result<std::string> ReadBlob(const std::string& key);

  Result<core::Recommendations> RecommendCfBatched(core::UserId user,
                                                   size_t n, EventTime now);
  Result<core::Recommendations> RecommendCbBatched(core::UserId user,
                                                   size_t n, EventTime now);
  Result<core::Recommendations> RecommendArBatched(core::ItemId from,
                                                   size_t n, EventTime now,
                                                   double min_support,
                                                   double min_confidence);
  /// Counts one candidate dropped for a transient per-key store error.
  void Degraded();

  const AppContext* app_;
  std::unique_ptr<tdstore::Client> client_;
  bool batched_ = false;
  std::shared_ptr<QueryCache> cache_;

  LatencyHistogram* fetch_keys_ = nullptr;  ///< keys per batched fetch
  LatencyHistogram* fetch_us_ = nullptr;    ///< batched fetch latency
  Counter* degraded_ = nullptr;  ///< candidates dropped on per-key errors
};

}  // namespace tencentrec::topo

#endif  // TENCENTREC_TOPO_QUERY_H_
