#ifndef TENCENTREC_TOPO_QUERY_H_
#define TENCENTREC_TOPO_QUERY_H_

#include <memory>

#include "core/scored.h"
#include "tdstore/client.h"
#include "topo/app.h"
#include "topo/blob_codec.h"

namespace tencentrec::topo {

/// The recommender-engine read path (Fig. 9): answers recommendation
/// queries purely from the state the topology maintains in TDStore. This is
/// what the "Recommender Engine" box does — it never touches the stream
/// pipeline, so queries scale independently of ingestion.
///
/// Not thread-safe; create one per serving thread (each owns a client).
class StoreQuery {
 public:
  explicit StoreQuery(const AppContext* app);

  /// Item-based CF prediction (Eq. 2 over the user's recent-k items, §4.3)
  /// from the sim:<item> lists. Excludes items the user already rated.
  Result<core::Recommendations> RecommendCf(core::UserId user, size_t n,
                                            EventTime now);

  /// Demographic hot items with global-group fallback.
  Result<core::Recommendations> HotItems(core::GroupId group, size_t n,
                                         EventTime now);

  /// The production composition: CF, filtered by the app's result_filter,
  /// complemented by DB hot items (§4.2/§6.4).
  Result<core::Recommendations> Recommend(core::UserId user,
                                          const core::Demographics& d,
                                          size_t n, EventTime now);

  /// Content-based recommendation from the cp:<user> profile blob and the
  /// tag inverted index. Excludes seen (rated) and expired items.
  Result<core::Recommendations> RecommendCb(core::UserId user, size_t n,
                                            EventTime now);

  /// Association-rule recommendation: confidence(from -> to) =
  /// windowPairCount / windowItemCount(from), candidates drawn from the
  /// similar-items list of `from`.
  Result<core::Recommendations> RecommendAr(core::ItemId from, size_t n,
                                            EventTime now,
                                            double min_support = 2.0,
                                            double min_confidence = 0.05);

  /// Situational CTR estimate (hierarchical shrinkage over window counts).
  Result<double> PredictCtr(core::ItemId item, const core::Demographics& d,
                            EventTime now);

  /// Raw windowed (impressions, clicks) at the situation's deepest level —
  /// the §1 "CTR during the last ten seconds among male users..." query.
  Result<std::pair<double, double>> SituationCounts(
      core::ItemId item, const core::Demographics& d, EventTime now);

  /// The list materialized by ResultStorageBolt (empty if none).
  Result<core::Recommendations> MaterializedResults(core::UserId user);

  /// Windowed similarity of a pair recomputed from counts (test hook).
  Result<double> SimilarityFromCounts(core::ItemId a, core::ItemId b,
                                      EventTime now);

  /// Windowed itemCount (test hook / AR support).
  Result<double> WindowItemCount(core::ItemId item, EventTime now);
  Result<double> WindowPairCount(core::ItemId a, core::ItemId b,
                                 EventTime now);

 private:
  Result<double> WindowSum(
      const std::function<std::string(int64_t session)>& key_of,
      EventTime now);
  Result<core::UserHistory> LoadHistory(core::UserId user);

  const AppContext* app_;
  std::unique_ptr<tdstore::Client> client_;
};

}  // namespace tencentrec::topo

#endif  // TENCENTREC_TOPO_QUERY_H_
