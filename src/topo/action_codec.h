#ifndef TENCENTREC_TOPO_ACTION_CODEC_H_
#define TENCENTREC_TOPO_ACTION_CODEC_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "core/action.h"
#include "tstorm/component.h"
#include "tstorm/value.h"

namespace tencentrec::topo {

/// Field names of an action tuple, in order: user, item, action, ts,
/// gender, age, region, ingest, trace. The canonical schema every action
/// stream declares. `ingest` is the wall-clock ingest stamp (UserAction::
/// ingest_micros) riding along for end-to-end latency tracing; `trace` is
/// the sampled-tracing id (UserAction::trace_id, common/trace.h).
const std::vector<std::string>& ActionFields();

tstorm::StreamDecl ActionStreamDecl(const std::string& stream_name);

/// UserAction -> stream tuple (all int64 fields).
tstorm::Tuple ActionToTuple(const core::UserAction& action);

/// Stream tuple -> UserAction. Corruption on arity/type mismatch.
Result<core::UserAction> ActionFromTuple(const tstorm::Tuple& tuple);

/// UserAction <-> TDAccess message payload (fixed 45-byte binary record:
/// the original 29 bytes plus the 8-byte ingest stamp plus the 8-byte
/// trace id). Decode also accepts the two legacy record sizes — 29 bytes
/// (ingest = 0, trace = 0) and 37 bytes (trace = 0) — so disk-cached
/// history written by older builds stays replayable.
std::string EncodeActionPayload(const core::UserAction& action);
Result<core::UserAction> DecodeActionPayload(std::string_view payload);

}  // namespace tencentrec::topo

#endif  // TENCENTREC_TOPO_ACTION_CODEC_H_
