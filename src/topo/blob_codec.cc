#include "topo/blob_codec.h"

#include <cstring>

namespace tencentrec::topo {

namespace {

template <typename T>
void PutRaw(std::string* out, const T& v) {
  char buf[sizeof(T)];
  std::memcpy(buf, &v, sizeof(T));
  out->append(buf, sizeof(T));
}

template <typename T>
bool GetRaw(std::string_view blob, size_t* pos, T* out) {
  if (*pos + sizeof(T) > blob.size()) return false;
  std::memcpy(out, blob.data() + *pos, sizeof(T));
  *pos += sizeof(T);
  return true;
}

/// Caps a decoded count header before vector::reserve: an adversarial or
/// corrupt header must not demand a huge allocation when the blob cannot
/// possibly hold that many `record_size`-byte records.
size_t PlausibleCount(uint32_t count, std::string_view blob, size_t pos,
                      size_t record_size) {
  const size_t fit = (blob.size() - pos) / record_size;
  return count < fit ? count : fit;
}


}  // namespace

std::string EncodeUserHistory(const core::UserHistory& history) {
  std::string out;
  PutRaw<uint32_t>(&out, static_cast<uint32_t>(history.items().size()));
  for (const auto& [item, state] : history.items()) {
    PutRaw<int64_t>(&out, item);
    PutRaw<double>(&out, state.rating);
    PutRaw<int64_t>(&out, state.last_action);
  }
  return out;
}

Result<core::UserHistory> DecodeUserHistory(std::string_view blob) {
  core::UserHistory history;
  size_t pos = 0;
  uint32_t count = 0;
  if (!GetRaw(blob, &pos, &count)) {
    return Status::Corruption("user history: bad header");
  }
  for (uint32_t i = 0; i < count; ++i) {
    int64_t item;
    double rating;
    int64_t last_action;
    if (!GetRaw(blob, &pos, &item) || !GetRaw(blob, &pos, &rating) ||
        !GetRaw(blob, &pos, &last_action)) {
      return Status::Corruption("user history: truncated record");
    }
    history.Restore(item, rating, last_action);
  }
  if (pos != blob.size()) {
    return Status::Corruption("user history: trailing bytes");
  }
  return history;
}

std::string EncodeScoredList(const core::Recommendations& list) {
  std::string out;
  PutRaw<uint32_t>(&out, static_cast<uint32_t>(list.size()));
  for (const auto& s : list) {
    PutRaw<int64_t>(&out, s.item);
    PutRaw<double>(&out, s.score);
  }
  return out;
}

Result<core::Recommendations> DecodeScoredList(std::string_view blob) {
  core::Recommendations list;
  size_t pos = 0;
  uint32_t count = 0;
  if (!GetRaw(blob, &pos, &count)) {
    return Status::Corruption("scored list: bad header");
  }
  list.reserve(PlausibleCount(count, blob, pos, 16));
  for (uint32_t i = 0; i < count; ++i) {
    core::ScoredItem s;
    if (!GetRaw(blob, &pos, &s.item) || !GetRaw(blob, &pos, &s.score)) {
      return Status::Corruption("scored list: truncated record");
    }
    list.push_back(s);
  }
  if (pos != blob.size()) return Status::Corruption("scored list: trailing");
  return list;
}

std::string EncodeTagVector(const core::TagVector& tags) {
  std::string out;
  PutRaw<uint32_t>(&out, static_cast<uint32_t>(tags.size()));
  for (const auto& [tag, w] : tags) {
    PutRaw<int32_t>(&out, tag);
    PutRaw<double>(&out, w);
  }
  return out;
}

Result<core::TagVector> DecodeTagVector(std::string_view blob) {
  core::TagVector tags;
  size_t pos = 0;
  uint32_t count = 0;
  if (!GetRaw(blob, &pos, &count)) {
    return Status::Corruption("tag vector: bad header");
  }
  tags.reserve(PlausibleCount(count, blob, pos, 12));
  for (uint32_t i = 0; i < count; ++i) {
    int32_t tag;
    double w;
    if (!GetRaw(blob, &pos, &tag) || !GetRaw(blob, &pos, &w)) {
      return Status::Corruption("tag vector: truncated record");
    }
    tags.emplace_back(tag, w);
  }
  if (pos != blob.size()) return Status::Corruption("tag vector: trailing");
  return tags;
}

std::string EncodeItemList(const std::vector<core::ItemId>& items) {
  std::string out;
  PutRaw<uint32_t>(&out, static_cast<uint32_t>(items.size()));
  for (core::ItemId item : items) PutRaw<int64_t>(&out, item);
  return out;
}

Result<std::vector<core::ItemId>> DecodeItemList(std::string_view blob) {
  std::vector<core::ItemId> items;
  size_t pos = 0;
  uint32_t count = 0;
  if (!GetRaw(blob, &pos, &count)) {
    return Status::Corruption("item list: bad header");
  }
  items.reserve(PlausibleCount(count, blob, pos, 8));
  for (uint32_t i = 0; i < count; ++i) {
    int64_t item;
    if (!GetRaw(blob, &pos, &item)) {
      return Status::Corruption("item list: truncated record");
    }
    items.push_back(item);
  }
  if (pos != blob.size()) return Status::Corruption("item list: trailing");
  return items;
}

std::string EncodeContentProfile(const ContentProfileBlob& profile) {
  std::string out;
  PutRaw<int64_t>(&out, profile.last_update);
  PutRaw<uint32_t>(&out, static_cast<uint32_t>(profile.weights.size()));
  for (const auto& [tag, w] : profile.weights) {
    PutRaw<int32_t>(&out, tag);
    PutRaw<double>(&out, w);
  }
  return out;
}

Result<ContentProfileBlob> DecodeContentProfile(std::string_view blob) {
  ContentProfileBlob profile;
  size_t pos = 0;
  uint32_t count = 0;
  if (!GetRaw(blob, &pos, &profile.last_update) ||
      !GetRaw(blob, &pos, &count)) {
    return Status::Corruption("content profile: bad header");
  }
  profile.weights.reserve(PlausibleCount(count, blob, pos, 12));
  for (uint32_t i = 0; i < count; ++i) {
    int32_t tag;
    double w;
    if (!GetRaw(blob, &pos, &tag) || !GetRaw(blob, &pos, &w)) {
      return Status::Corruption("content profile: truncated record");
    }
    profile.weights.emplace_back(tag, w);
  }
  if (pos != blob.size()) {
    return Status::Corruption("content profile: trailing");
  }
  return profile;
}

std::string EncodeDoublePair(double a, double b) {
  std::string out;
  PutRaw<double>(&out, a);
  PutRaw<double>(&out, b);
  return out;
}

Result<std::pair<double, double>> DecodeDoublePair(std::string_view blob) {
  size_t pos = 0;
  double a, b;
  if (!GetRaw(blob, &pos, &a) || !GetRaw(blob, &pos, &b) ||
      pos != blob.size()) {
    return Status::Corruption("double pair: bad blob");
  }
  return std::make_pair(a, b);
}

}  // namespace tencentrec::topo
