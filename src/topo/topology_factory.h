#ifndef TENCENTREC_TOPO_TOPOLOGY_FACTORY_H_
#define TENCENTREC_TOPO_TOPOLOGY_FACTORY_H_

#include "tstorm/config.h"
#include "tstorm/topology.h"
#include "topo/app.h"

namespace tencentrec::topo {

/// Assembles the TencentRec topology of Fig. 6 for one application: the
/// preprocessing layer (Pretreatment), the algorithm layer (the bolts the
/// app's AlgorithmSet enables, statistics and computation decoupled via
/// TDStore), and the storage layer (ResultStorageBolt when
/// `materialize_results`).
///
/// The returned spec is what a production deployment would generate from
/// the application's XML file; RegisterComponents() + an XML config
/// produces the same thing through the generic path.
Result<tstorm::TopologySpec> BuildAppTopology(
    const AppContext* app, tstorm::SpoutFactory spout,
    bool materialize_results = false, int spout_parallelism = 1);

/// Automatic parallelism (the paper's stated future work, §7: "It is
/// desirable for TencentRec to set the parallelism automatically according
/// to the data size"): suggests the number of instances for the keyed
/// bolts from the expected event rate, a per-event processing cost, and a
/// target utilization, clamped to [min_parallelism, max_parallelism].
int SuggestParallelism(double events_per_second,
                       double per_event_cost_us = 50.0,
                       double target_utilization = 0.6,
                       int min_parallelism = 1, int max_parallelism = 64);

/// Registers every TencentRec component class ("Pretreatment",
/// "UserHistory", "ItemCount", "CfPair", "SimilarList", "GroupCount",
/// "HotList", "CtrStats", "CbProfile", "ResultStorage", plus the spout
/// class name given) so XML topology configs can reference them.
void RegisterComponents(tstorm::ComponentRegistry* registry,
                        const AppContext* app,
                        const std::string& spout_class,
                        tstorm::SpoutFactory spout);

}  // namespace tencentrec::topo

#endif  // TENCENTREC_TOPO_TOPOLOGY_FACTORY_H_
