#include "tdstore/engine.h"

#include "tdstore/fdb_engine.h"
#include "tdstore/ldb_engine.h"
#include "tdstore/mdb_engine.h"
#include "tdstore/rdb_engine.h"

namespace tencentrec::tdstore {

Result<std::unique_ptr<Engine>> CreateEngine(const EngineOptions& options) {
  switch (options.type) {
    case EngineType::kMdb:
      return std::unique_ptr<Engine>(std::make_unique<MdbEngine>());
    case EngineType::kLdb:
      return std::unique_ptr<Engine>(std::make_unique<LdbEngine>(options));
    case EngineType::kFdb: {
      auto engine = FdbEngine::Open(options);
      if (!engine.ok()) return engine.status();
      return std::unique_ptr<Engine>(std::move(engine).value());
    }
    case EngineType::kRdb: {
      auto engine = RdbEngine::Open(options);
      if (!engine.ok()) return engine.status();
      return std::unique_ptr<Engine>(std::move(engine).value());
    }
  }
  return Status::InvalidArgument("unknown engine type");
}

}  // namespace tencentrec::tdstore
