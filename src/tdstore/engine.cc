#include "tdstore/engine.h"

#include <unistd.h>

#include <cstdio>

#include "common/recordio.h"
#include "tdstore/fdb_engine.h"
#include "tdstore/ldb_engine.h"
#include "tdstore/mdb_engine.h"
#include "tdstore/rdb_engine.h"

namespace tencentrec::tdstore {

namespace {

// Engine snapshot file ("TDSN", version 1). Frame payloads:
//   kv record: [u8 0][u32 key_len][u32 value_len][key][value]
//   footer:    [u8 1][u64 count]
constexpr uint32_t kSnapMagic = 0x4e534454;
constexpr uint32_t kSnapVersion = 1;
constexpr uint8_t kTagKv = 0;
constexpr uint8_t kTagFooter = 1;
constexpr size_t kMaxSnapKeyLen = 1u << 24;
constexpr size_t kMaxSnapValueLen = 1u << 28;

}  // namespace

Result<std::unique_ptr<SnapshotWriter>> SnapshotWriter::Create(
    const std::string& path) {
  if (path.empty()) return Status::InvalidArgument("snapshot needs a path");
  std::string tmp = path + ".tmp";
  std::FILE* file = std::fopen(tmp.c_str(), "wb");
  if (file == nullptr) return Status::IOError("cannot open " + tmp);
  Status header = WriteLogHeader(file, kSnapMagic, kSnapVersion, tmp);
  if (!header.ok()) {
    std::fclose(file);
    std::remove(tmp.c_str());
    return header;
  }
  return std::unique_ptr<SnapshotWriter>(
      new SnapshotWriter(path, std::move(tmp), file));
}

SnapshotWriter::~SnapshotWriter() {
  if (file_ != nullptr) {  // dropped without Finish: abandon the temp file
    std::fclose(file_);
    std::remove(tmp_.c_str());
  }
}

Status SnapshotWriter::Add(std::string_view key, std::string_view value) {
  if (file_ == nullptr) return Status::FailedPrecondition("snapshot finished");
  std::string payload;
  payload.reserve(9 + key.size() + value.size());
  payload.push_back(static_cast<char>(kTagKv));
  PutFixed32LE(&payload, static_cast<uint32_t>(key.size()));
  PutFixed32LE(&payload, static_cast<uint32_t>(value.size()));
  payload += key;
  payload += value;
  auto written = AppendFrame(file_, payload, tmp_);
  if (!written.ok()) return written.status();
  ++count_;
  return Status::OK();
}

Status SnapshotWriter::Finish() {
  if (file_ == nullptr) return Status::FailedPrecondition("snapshot finished");
  std::string footer;
  footer.push_back(static_cast<char>(kTagFooter));
  PutFixed64LE(&footer, count_);
  Status s = AppendFrame(file_, footer, tmp_).status();
  if (s.ok() && std::fflush(file_) != 0) {
    s = Status::IOError("fflush failed on " + tmp_);
  }
  if (s.ok() && ::fsync(::fileno(file_)) != 0) {
    s = Status::IOError("fsync failed on " + tmp_);
  }
  std::fclose(file_);
  file_ = nullptr;
  if (!s.ok()) {
    std::remove(tmp_.c_str());
    return s;
  }
  if (std::rename(tmp_.c_str(), path_.c_str()) != 0) {
    std::remove(tmp_.c_str());
    return Status::IOError("rename failed: " + tmp_ + " -> " + path_);
  }
  return Status::OK();
}

Status ReadSnapshot(
    const std::string& path,
    const std::function<Status(std::string key, std::string value)>& apply) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) return Status::NotFound("no snapshot at " + path);
  Status header = ReadLogHeader(file, kSnapMagic, kSnapVersion, path);
  if (!header.ok()) {
    std::fclose(file);
    return header.IsNotFound()
               ? Status::Corruption("snapshot header truncated: " + path)
               : header;
  }
  uint64_t applied = 0;
  bool saw_footer = false;
  Status result = Status::OK();
  while (true) {
    auto frame = ReadFrame(file, 9 + kMaxSnapKeyLen + kMaxSnapValueLen, path);
    if (frame.status().IsNotFound()) break;  // clean EOF
    if (!frame.ok()) {
      result = frame.status();
      break;
    }
    if (saw_footer) {
      result = Status::Corruption("snapshot records after footer: " + path);
      break;
    }
    const std::string& payload = *frame;
    if (payload.empty()) {
      result = Status::Corruption("empty snapshot record: " + path);
      break;
    }
    const uint8_t tag = static_cast<uint8_t>(payload[0]);
    if (tag == kTagFooter) {
      if (payload.size() != 9 || GetFixed64LE(payload.data() + 1) != applied) {
        result = Status::Corruption("snapshot footer mismatch: " + path);
        break;
      }
      saw_footer = true;
      continue;
    }
    if (tag != kTagKv || payload.size() < 9) {
      result = Status::Corruption("bad snapshot record: " + path);
      break;
    }
    const uint32_t key_len = GetFixed32LE(payload.data() + 1);
    const uint32_t value_len = GetFixed32LE(payload.data() + 5);
    if (payload.size() != 9 + static_cast<size_t>(key_len) + value_len) {
      result = Status::Corruption("snapshot record length mismatch: " + path);
      break;
    }
    result = apply(payload.substr(9, key_len), payload.substr(9 + key_len));
    if (!result.ok()) break;
    ++applied;
  }
  std::fclose(file);
  TR_RETURN_IF_ERROR(result);
  if (!saw_footer) {
    // The footer is the commit marker: without it this file is a snapshot
    // that never finished (and Finish()'s rename should have kept it from
    // ever landing at `path`).
    return Status::Corruption("snapshot missing footer: " + path);
  }
  return Status::OK();
}

Status Engine::SnapshotTo(const std::string& path) const {
  auto writer = SnapshotWriter::Create(path);
  if (!writer.ok()) return writer.status();
  Status add = Status::OK();
  Status scan =
      ScanPrefix("", [&](std::string_view key, std::string_view value) {
        add = (*writer)->Add(key, value);
        return add.ok();
      });
  TR_RETURN_IF_ERROR(scan);
  TR_RETURN_IF_ERROR(add);
  return (*writer)->Finish();
}

Status Engine::RestoreFrom(const std::string& path) {
  // Batched so engines with a MultiPut fast path (one lock/seal check per
  // batch) restore at bulk-load speed rather than per-record.
  std::vector<std::pair<std::string, std::string>> batch;
  constexpr size_t kBatch = 1024;
  Status s = ReadSnapshot(path, [&](std::string key, std::string value) {
    batch.emplace_back(std::move(key), std::move(value));
    if (batch.size() >= kBatch) {
      Status put = MultiPut(batch);
      batch.clear();
      return put;
    }
    return Status::OK();
  });
  TR_RETURN_IF_ERROR(s);
  if (!batch.empty()) TR_RETURN_IF_ERROR(MultiPut(batch));
  return Status::OK();
}

Result<std::unique_ptr<Engine>> CreateEngine(const EngineOptions& options) {
  switch (options.type) {
    case EngineType::kMdb:
      return std::unique_ptr<Engine>(std::make_unique<MdbEngine>());
    case EngineType::kLdb:
      return std::unique_ptr<Engine>(std::make_unique<LdbEngine>(options));
    case EngineType::kFdb: {
      auto engine = FdbEngine::Open(options);
      if (!engine.ok()) return engine.status();
      return std::unique_ptr<Engine>(std::move(engine).value());
    }
    case EngineType::kRdb: {
      auto engine = RdbEngine::Open(options);
      if (!engine.ok()) return engine.status();
      return std::unique_ptr<Engine>(std::move(engine).value());
    }
  }
  return Status::InvalidArgument("unknown engine type");
}

}  // namespace tencentrec::tdstore
