#include "tdstore/batch_writer.h"

#include <memory>

#include "common/trace.h"
#include "tdstore/codec.h"

namespace tencentrec::tdstore {

BatchWriter::BatchWriter(Client* client, Options options)
    : client_(client), options_(options) {
  if (options_.max_ops == 0) options_.max_ops = 1;
  if (MetricsEnabled()) {
    auto& reg = MetricRegistry::Default();
    staged_ops_ = reg.GetCounter("tdstore.batch_writer.staged_ops");
    flushed_batches_ = reg.GetCounter("tdstore.batch_writer.flushes");
    coalesced_puts_ = reg.GetCounter("tdstore.batch_writer.coalesced_puts");
  }
}

void BatchWriter::ResolveKindConflict(std::string_view key, Kind kind) {
  auto it = staged_kind_.find(std::string(key));
  if (it != staged_kind_.end() && it->second != kind) (void)Flush();
}

void BatchWriter::Put(std::string_view key, std::string_view value,
                      PutCallback cb) {
  ResolveKindConflict(key, Kind::kPut);
  if (staged_ops_ != nullptr) staged_ops_->Add();
  std::string k(key);
  auto idx_it = put_index_.find(k);
  if (idx_it != put_index_.end()) {
    // Last value wins; the superseded op's callback fires with the final
    // op's outcome (the overwrite made its effect unobservable anyway).
    StagedOp& op = ops_[idx_it->second];
    op.value = std::string(value);
    if (op.trace_id == 0) op.trace_id = CurrentTraceId();
    if (cb != nullptr) {
      if (op.put_cb != nullptr) {
        PutCallback prev = std::move(op.put_cb);
        op.put_cb = [prev = std::move(prev),
                     cb = std::move(cb)](const Status& s) {
          prev(s);
          cb(s);
        };
      } else {
        op.put_cb = std::move(cb);
      }
    }
    if (coalesced_puts_ != nullptr) coalesced_puts_->Add();
    return;
  }
  StagedOp op;
  op.kind = Kind::kPut;
  op.key = k;
  op.value = std::string(value);
  op.put_cb = std::move(cb);
  op.trace_id = CurrentTraceId();
  put_index_[k] = ops_.size();
  staged_kind_[std::move(k)] = Kind::kPut;
  ops_.push_back(std::move(op));
  MaybeAutoFlush();
}

void BatchWriter::PutDouble(std::string_view key, double value,
                            PutCallback cb) {
  Put(key, EncodeDouble(value), std::move(cb));
}

void BatchWriter::IncrDouble(std::string_view key, double delta,
                             IncrDoubleCallback cb) {
  ResolveKindConflict(key, Kind::kIncrDouble);
  if (staged_ops_ != nullptr) staged_ops_->Add();
  StagedOp op;
  op.kind = Kind::kIncrDouble;
  op.key = std::string(key);
  op.ddelta = delta;
  op.incr_double_cb = std::move(cb);
  op.trace_id = CurrentTraceId();
  staged_kind_[op.key] = Kind::kIncrDouble;
  ops_.push_back(std::move(op));
  MaybeAutoFlush();
}

void BatchWriter::IncrInt64(std::string_view key, int64_t delta,
                            IncrInt64Callback cb) {
  ResolveKindConflict(key, Kind::kIncrInt64);
  if (staged_ops_ != nullptr) staged_ops_->Add();
  StagedOp op;
  op.kind = Kind::kIncrInt64;
  op.key = std::string(key);
  op.idelta = delta;
  op.incr_int64_cb = std::move(cb);
  op.trace_id = CurrentTraceId();
  staged_kind_[op.key] = Kind::kIncrInt64;
  ops_.push_back(std::move(op));
  MaybeAutoFlush();
}

const std::string* BatchWriter::StagedPut(const std::string& key) const {
  auto it = put_index_.find(key);
  if (it == put_index_.end()) return nullptr;
  return &ops_[it->second].value;
}

bool BatchWriter::HasStaged(const std::string& key) const {
  return staged_kind_.find(key) != staged_kind_.end();
}

void BatchWriter::MaybeAutoFlush() {
  if (ops_.empty()) return;
  if (ops_.size() == 1) oldest_staged_micros_ = static_cast<int64_t>(MonoMicros());
  if (ops_.size() >= options_.max_ops) {
    (void)Flush();
    return;
  }
  if (options_.max_age_micros > 0 &&
      static_cast<int64_t>(MonoMicros()) - oldest_staged_micros_ >=
          options_.max_age_micros) {
    (void)Flush();
  }
}

Status BatchWriter::Flush() {
  if (ops_.empty()) return Status::OK();
  std::vector<StagedOp> ops = std::move(ops_);
  ops_.clear();
  put_index_.clear();
  staged_kind_.clear();
  ++flushes_;
  if (flushed_batches_ != nullptr) flushed_batches_->Add();

  // Partition by kind, remembering where each op landed. Per-key ordering
  // survives because staging never mixes kinds for one key.
  std::vector<std::pair<std::string, std::string>> puts;
  std::vector<size_t> put_src;
  std::vector<std::pair<std::string, double>> dadds;
  std::vector<size_t> dadd_src;
  std::vector<std::pair<std::string, int64_t>> iadds;
  std::vector<size_t> iadd_src;
  for (size_t i = 0; i < ops.size(); ++i) {
    switch (ops[i].kind) {
      case Kind::kPut:
        puts.emplace_back(ops[i].key, std::move(ops[i].value));
        put_src.push_back(i);
        break;
      case Kind::kIncrDouble:
        dadds.emplace_back(ops[i].key, ops[i].ddelta);
        dadd_src.push_back(i);
        break;
      case Kind::kIncrInt64:
        iadds.emplace_back(ops[i].key, ops[i].idelta);
        iadd_src.push_back(i);
        break;
    }
  }

  Status first_error;
  auto note = [&first_error, this](const Status& s) {
    if (s.ok()) return;
    if (first_error.ok()) first_error = s;
    if (last_error_.ok()) last_error_ = s;
  };
  // Staging detached these writes from the Executes that issued them;
  // re-attach each sampled op by spanning this flush's store call under its
  // staged trace id, so a sampled trace still reaches tdstore.write.
  auto sampled_spans = [&ops](const std::vector<size_t>& src) {
    std::vector<std::unique_ptr<ScopedSpan>> spans;
    for (size_t i : src) {
      if (ops[i].trace_id != 0) {
        spans.push_back(
            std::make_unique<ScopedSpan>(ops[i].trace_id, "tdstore.write"));
      }
    }
    return spans;
  };

  if (!puts.empty()) {
    std::vector<Status> statuses;
    Status overall;
    {
      auto spans = sampled_spans(put_src);
      overall = client_->MultiPut(puts, &statuses);
    }
    for (size_t i = 0; i < put_src.size(); ++i) {
      const Status& s = overall.ok() ? statuses[i] : overall;
      note(s);
      if (ops[put_src[i]].put_cb != nullptr) ops[put_src[i]].put_cb(s);
    }
  }
  if (!dadds.empty()) {
    std::vector<Result<double>> results;
    Status overall;
    {
      auto spans = sampled_spans(dadd_src);
      overall = client_->MultiIncrDouble(dadds, &results);
    }
    for (size_t i = 0; i < dadd_src.size(); ++i) {
      Result<double> r = overall.ok() ? std::move(results[i])
                                      : Result<double>(overall);
      note(r.status());
      if (ops[dadd_src[i]].incr_double_cb != nullptr) {
        ops[dadd_src[i]].incr_double_cb(r);
      }
    }
  }
  if (!iadds.empty()) {
    std::vector<Result<int64_t>> results;
    Status overall;
    {
      auto spans = sampled_spans(iadd_src);
      overall = client_->MultiIncrInt64(iadds, &results);
    }
    for (size_t i = 0; i < iadd_src.size(); ++i) {
      Result<int64_t> r = overall.ok() ? std::move(results[i])
                                       : Result<int64_t>(overall);
      note(r.status());
      if (ops[iadd_src[i]].incr_int64_cb != nullptr) {
        ops[iadd_src[i]].incr_int64_cb(r);
      }
    }
  }
  return first_error;
}

}  // namespace tencentrec::tdstore
