#include "tdstore/rdb_engine.h"

#include <cstdio>
#include <cstring>

#include "common/crc32.h"
#include "common/strings.h"

namespace tencentrec::tdstore {

namespace {

// Snapshot format: [u32 crc over body][u32 count] then per entry
// [u32 key_len][u32 value_len][key][value].
std::string EncodeSnapshot(
    const std::unordered_map<std::string, std::string>& map) {
  std::string body;
  uint32_t count = static_cast<uint32_t>(map.size());
  body.append(reinterpret_cast<const char*>(&count), 4);
  for (const auto& [key, value] : map) {
    uint32_t key_len = static_cast<uint32_t>(key.size());
    uint32_t value_len = static_cast<uint32_t>(value.size());
    body.append(reinterpret_cast<const char*>(&key_len), 4);
    body.append(reinterpret_cast<const char*>(&value_len), 4);
    body += key;
    body += value;
  }
  uint32_t crc = Crc32(body);
  std::string out;
  out.append(reinterpret_cast<const char*>(&crc), 4);
  out += body;
  return out;
}

}  // namespace

Result<std::unique_ptr<RdbEngine>> RdbEngine::Open(
    const EngineOptions& options) {
  if (options.rdb_path.empty()) {
    return Status::InvalidArgument("RDB engine requires rdb_path");
  }
  std::unique_ptr<RdbEngine> engine(
      new RdbEngine(options.rdb_path, options.rdb_snapshot_interval_ops));
  Status s = engine->Load();
  if (!s.ok()) return s;
  return engine;
}

Status RdbEngine::Load() {
  std::lock_guard lock(mu_);
  std::FILE* f = std::fopen(path_.c_str(), "rb");
  if (f == nullptr) return Status::OK();  // no snapshot yet
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  std::string data(static_cast<size_t>(size), '\0');
  const size_t read = std::fread(data.data(), 1, data.size(), f);
  std::fclose(f);
  if (read != data.size() || data.size() < 8) {
    return Status::Corruption("rdb snapshot unreadable: " + path_);
  }
  uint32_t crc;
  std::memcpy(&crc, data.data(), 4);
  if (Crc32(data.data() + 4, data.size() - 4) != crc) {
    return Status::Corruption("rdb snapshot crc mismatch: " + path_);
  }
  size_t pos = 4;
  uint32_t count;
  std::memcpy(&count, data.data() + pos, 4);
  pos += 4;
  for (uint32_t i = 0; i < count; ++i) {
    if (pos + 8 > data.size()) {
      return Status::Corruption("rdb snapshot truncated: " + path_);
    }
    uint32_t key_len, value_len;
    std::memcpy(&key_len, data.data() + pos, 4);
    std::memcpy(&value_len, data.data() + pos + 4, 4);
    pos += 8;
    if (pos + key_len + value_len > data.size()) {
      return Status::Corruption("rdb snapshot truncated: " + path_);
    }
    std::string key = data.substr(pos, key_len);
    pos += key_len;
    map_[std::move(key)] = data.substr(pos, value_len);
    pos += value_len;
  }
  return Status::OK();
}

Status RdbEngine::SnapshotLocked() {
  const std::string tmp = path_ + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) return Status::IOError("cannot open " + tmp);
  const std::string data = EncodeSnapshot(map_);
  const bool ok = std::fwrite(data.data(), 1, data.size(), f) == data.size();
  std::fflush(f);
  std::fclose(f);
  if (!ok) {
    std::remove(tmp.c_str());
    return Status::IOError("snapshot write failed: " + tmp);
  }
  if (std::rename(tmp.c_str(), path_.c_str()) != 0) {
    return Status::IOError("snapshot rename failed: " + path_);
  }
  mutations_since_snapshot_ = 0;
  ++snapshots_;
  return Status::OK();
}

Status RdbEngine::AfterMutationLocked() {
  ++mutations_since_snapshot_;
  if (snapshot_interval_ops_ > 0 &&
      mutations_since_snapshot_ >= snapshot_interval_ops_) {
    return SnapshotLocked();
  }
  return Status::OK();
}

Status RdbEngine::Put(std::string_view key, std::string_view value) {
  std::lock_guard lock(mu_);
  map_[std::string(key)] = std::string(value);
  return AfterMutationLocked();
}

Result<std::string> RdbEngine::Get(std::string_view key) const {
  std::lock_guard lock(mu_);
  auto it = map_.find(std::string(key));
  if (it == map_.end()) return Status::NotFound();
  return it->second;
}

Status RdbEngine::Delete(std::string_view key) {
  std::lock_guard lock(mu_);
  map_.erase(std::string(key));
  return AfterMutationLocked();
}

Status RdbEngine::ScanPrefix(
    std::string_view prefix,
    const std::function<bool(std::string_view, std::string_view)>& visitor)
    const {
  std::lock_guard lock(mu_);
  for (const auto& [k, v] : map_) {
    if (StartsWith(k, prefix)) {
      if (!visitor(k, v)) break;
    }
  }
  return Status::OK();
}

size_t RdbEngine::Count() const {
  std::lock_guard lock(mu_);
  return map_.size();
}

Status RdbEngine::Flush() {
  std::lock_guard lock(mu_);
  return SnapshotLocked();
}

}  // namespace tencentrec::tdstore
