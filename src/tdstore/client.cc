#include "tdstore/client.h"

#include <algorithm>
#include <map>
#include <numeric>

#include "common/trace.h"

namespace tencentrec::tdstore {

Status Client::RefreshRoute() {
  auto table = cluster_->config().GetRouteTable();
  if (!table.ok()) return table.status();
  route_ = std::move(table).value();
  have_route_ = true;
  ++route_refreshes_;
  return Status::OK();
}

Status Client::EnsureRoute() {
  if (have_route_) return Status::OK();
  return RefreshRoute();
}

template <typename Op>
auto Client::WithHost(std::string_view key, Op op) -> decltype(op(nullptr, 0)) {
  Status ensure = EnsureRoute();
  if (!ensure.ok()) return ensure;
  for (int attempt = 0; attempt < 2; ++attempt) {
    const size_t instance =
        HashString(key) % route_.placements.size();
    const InstancePlacement& p = route_.placements[instance];
    DataServer* host = cluster_->data_server(p.host_server);
    if (host == nullptr) return Status::Internal("route names bad server");
    auto result = op(host, p.instance_id);
    if (result.ok() || !result.status().IsUnavailable() || attempt == 1) {
      return result;
    }
    Status refresh = RefreshRoute();
    if (!refresh.ok()) return refresh;
  }
  return Status::Internal("unreachable");
}

namespace {
/// Adapts Status-returning ops to the Result-shaped WithHost contract.
struct StatusResult {
  Status status_;
  StatusResult(Status s) : status_(std::move(s)) {}  // NOLINT(implicit)
  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }
};
}  // namespace

// Store ops run under the caller's tuple context (published by the bolt's
// ScopedSpan), so sampled tuples get a nested store-side span with no
// signature change here.
Status Client::Put(std::string_view key, std::string_view value) {
  ScopedLatencyTimer timer(write_us_);
  ScopedSpan span(CurrentTraceId(), "tdstore.write");
  if (point_ops_ != nullptr) point_ops_->Add();
  auto r = WithHost(key, [&](DataServer* host, int instance) -> StatusResult {
    return host->Put(instance, key, value);
  });
  CountOp(r.status());
  return r.status();
}

Result<std::string> Client::Get(std::string_view key) {
  ScopedLatencyTimer timer(read_us_);
  ScopedSpan span(CurrentTraceId(), "tdstore.read");
  if (point_ops_ != nullptr) point_ops_->Add();
  auto r = WithHost(key,
                    [&](DataServer* host, int instance) -> Result<std::string> {
                      return host->Get(instance, key);
                    });
  CountOp(r.status());
  return r;
}

Status Client::Delete(std::string_view key) {
  ScopedLatencyTimer timer(write_us_);
  ScopedSpan span(CurrentTraceId(), "tdstore.write");
  if (point_ops_ != nullptr) point_ops_->Add();
  auto r = WithHost(key, [&](DataServer* host, int instance) -> StatusResult {
    return host->Delete(instance, key);
  });
  CountOp(r.status());
  return r.status();
}

Result<double> Client::IncrDouble(std::string_view key, double delta) {
  ScopedLatencyTimer timer(write_us_);
  ScopedSpan span(CurrentTraceId(), "tdstore.write");
  if (point_ops_ != nullptr) point_ops_->Add();
  auto r = WithHost(key, [&](DataServer* host, int instance) -> Result<double> {
    return host->IncrDouble(instance, key, delta);
  });
  CountOp(r.status());
  return r;
}

Result<int64_t> Client::IncrInt64(std::string_view key, int64_t delta) {
  ScopedLatencyTimer timer(write_us_);
  ScopedSpan span(CurrentTraceId(), "tdstore.write");
  if (point_ops_ != nullptr) point_ops_->Add();
  auto r =
      WithHost(key, [&](DataServer* host, int instance) -> Result<int64_t> {
        return host->IncrInt64(instance, key, delta);
      });
  CountOp(r.status());
  return r;
}

Result<double> Client::GetDouble(std::string_view key, double fallback) {
  auto raw = Get(key);
  if (!raw.ok()) {
    if (raw.status().IsNotFound()) return fallback;
    return raw.status();
  }
  return DecodeDouble(*raw);
}

Result<int64_t> Client::GetInt64(std::string_view key, int64_t fallback) {
  auto raw = Get(key);
  if (!raw.ok()) {
    if (raw.status().IsNotFound()) return fallback;
    return raw.status();
  }
  return DecodeInt64(*raw);
}

namespace {
// GroupedDispatch stitches per-item outcomes of heterogeneous shape (Status
// for puts, Result<T> otherwise); these give it a uniform status view.
inline const Status& StatusOf(const Status& s) { return s; }
template <typename T>
const Status& StatusOf(const Result<T>& r) {
  return r.status();
}
}  // namespace

template <typename KeyOf, typename MakeItem, typename Dispatch, typename OutT>
Status Client::GroupedDispatch(size_t n, KeyOf key_of, MakeItem make_item,
                               Dispatch dispatch, std::vector<OutT>* out) {
  TR_RETURN_IF_ERROR(EnsureRoute());
  if (batch_ops_ != nullptr) batch_ops_->Add();
  if (batch_keys_ != nullptr) batch_keys_->Add(n);
  std::vector<size_t> pending(n);
  std::iota(pending.begin(), pending.end(), 0);
  for (int attempt = 0; attempt < 2 && !pending.empty(); ++attempt) {
    if (attempt > 0) TR_RETURN_IF_ERROR(RefreshRoute());
    // Group the still-pending inputs by current host. Within a host, items
    // are ordered by (instance_id, input index): same-instance runs stay
    // contiguous for the server's one-lock-per-run processing, and the
    // stable sort keeps same-key ops in input order (the bit-identical
    // increment guarantee rides on this).
    std::map<int, std::vector<std::pair<int, size_t>>> by_host;
    for (size_t idx : pending) {
      const size_t slot = HashString(key_of(idx)) % route_.placements.size();
      const InstancePlacement& p = route_.placements[slot];
      by_host[p.host_server].emplace_back(p.instance_id, idx);
    }
    std::vector<size_t> failed;
    for (auto& [host_id, entries] : by_host) {
      std::stable_sort(
          entries.begin(), entries.end(),
          [](const auto& a, const auto& b) { return a.first < b.first; });
      DataServer* host = cluster_->data_server(host_id);
      if (host == nullptr) return Status::Internal("route names bad server");
      using Item = decltype(make_item(size_t{0}, 0));
      std::vector<Item> items;
      items.reserve(entries.size());
      for (const auto& [instance_id, idx] : entries) {
        items.push_back(make_item(idx, instance_id));
      }
      if (host_batches_ != nullptr) host_batches_->Add();
      std::vector<OutT> batch_out;
      Status s = dispatch(host, items, &batch_out);
      if (!s.ok()) {
        // Whole-server failure (down): every item of this sub-batch gets the
        // verdict, and — if retryable — a spot in the next attempt.
        for (const auto& [instance_id, idx] : entries) {
          (*out)[idx] = OutT(s);
          if (s.IsUnavailable() && attempt == 0) failed.push_back(idx);
        }
        continue;
      }
      for (size_t i = 0; i < entries.size(); ++i) {
        const size_t idx = entries[i].second;
        (*out)[idx] = std::move(batch_out[i]);
        if (StatusOf((*out)[idx]).IsUnavailable() && attempt == 0) {
          failed.push_back(idx);
        }
      }
    }
    std::sort(failed.begin(), failed.end());
    pending = std::move(failed);
  }
  // Final per-key verdicts feed the error-rate instruments once, after
  // retries have had their say.
  for (const OutT& o : *out) CountOp(StatusOf(o));
  return Status::OK();
}

Status Client::MultiGetBatch(const std::vector<std::string>& keys,
                             std::vector<Result<std::string>>* out) {
  ScopedLatencyTimer timer(batch_read_us_);
  ScopedSpan span(CurrentTraceId(), "tdstore.batch_read");
  out->assign(keys.size(), Result<std::string>(Status::Internal("unset")));
  return GroupedDispatch(
      keys.size(),
      [&](size_t i) -> std::string_view { return keys[i]; },
      [&](size_t i, int instance_id) {
        return BatchGet{instance_id, keys[i]};
      },
      [](DataServer* host, const std::vector<BatchGet>& items,
         std::vector<Result<std::string>>* batch_out) {
        return host->MultiGet(items, batch_out);
      },
      out);
}

Status Client::MultiPut(
    const std::vector<std::pair<std::string, std::string>>& kvs,
    std::vector<Status>* out) {
  ScopedLatencyTimer timer(batch_write_us_);
  ScopedSpan span(CurrentTraceId(), "tdstore.batch_write");
  out->assign(kvs.size(), Status::Internal("unset"));
  return GroupedDispatch(
      kvs.size(),
      [&](size_t i) -> std::string_view { return kvs[i].first; },
      [&](size_t i, int instance_id) {
        return BatchPut{instance_id, kvs[i].first, kvs[i].second};
      },
      [](DataServer* host, const std::vector<BatchPut>& items,
         std::vector<Status>* batch_out) {
        return host->MultiPut(items, batch_out);
      },
      out);
}

Status Client::MultiIncrDouble(
    const std::vector<std::pair<std::string, double>>& adds,
    std::vector<Result<double>>* out) {
  ScopedLatencyTimer timer(batch_write_us_);
  ScopedSpan span(CurrentTraceId(), "tdstore.batch_write");
  out->assign(adds.size(), Result<double>(Status::Internal("unset")));
  return GroupedDispatch(
      adds.size(),
      [&](size_t i) -> std::string_view { return adds[i].first; },
      [&](size_t i, int instance_id) {
        return BatchIncrDouble{instance_id, adds[i].first, adds[i].second};
      },
      [](DataServer* host, const std::vector<BatchIncrDouble>& items,
         std::vector<Result<double>>* batch_out) {
        return host->MultiIncrDouble(items, batch_out);
      },
      out);
}

Status Client::MultiIncrInt64(
    const std::vector<std::pair<std::string, int64_t>>& adds,
    std::vector<Result<int64_t>>* out) {
  ScopedLatencyTimer timer(batch_write_us_);
  ScopedSpan span(CurrentTraceId(), "tdstore.batch_write");
  out->assign(adds.size(), Result<int64_t>(Status::Internal("unset")));
  return GroupedDispatch(
      adds.size(),
      [&](size_t i) -> std::string_view { return adds[i].first; },
      [&](size_t i, int instance_id) {
        return BatchIncrInt64{instance_id, adds[i].first, adds[i].second};
      },
      [](DataServer* host, const std::vector<BatchIncrInt64>& items,
         std::vector<Result<int64_t>>* batch_out) {
        return host->MultiIncrInt64(items, batch_out);
      },
      out);
}

Status Client::MultiGetDouble(const std::vector<std::string>& keys,
                              double fallback,
                              std::vector<Result<double>>* out) {
  std::vector<Result<std::string>> raw;
  TR_RETURN_IF_ERROR(MultiGetBatch(keys, &raw));
  out->clear();
  out->reserve(raw.size());
  for (auto& r : raw) {
    if (r.ok()) {
      out->push_back(DecodeDouble(*r));
    } else if (r.status().IsNotFound()) {
      out->push_back(fallback);
    } else {
      out->push_back(r.status());
    }
  }
  return Status::OK();
}

Result<std::vector<std::optional<std::string>>> Client::MultiGet(
    const std::vector<std::string>& keys) {
  std::vector<Result<std::string>> raw;
  Status s = MultiGetBatch(keys, &raw);
  if (!s.ok()) return s;
  std::vector<std::optional<std::string>> out;
  out.reserve(raw.size());
  for (auto& r : raw) {
    if (r.ok()) {
      out.emplace_back(std::move(r).value());
    } else if (r.status().IsNotFound()) {
      out.emplace_back(std::nullopt);
    } else {
      // Legacy shape can't carry per-key statuses; use MultiGetBatch when
      // partial results matter.
      return r.status();
    }
  }
  return out;
}

Status Client::ScanPrefix(
    std::string_view prefix,
    const std::function<bool(std::string_view, std::string_view)>& visitor) {
  TR_RETURN_IF_ERROR(EnsureRoute());
  bool keep_going = true;
  // Copy: RefreshRoute() inside the loop would invalidate iterators into
  // route_.placements.
  const std::vector<InstancePlacement> placements = route_.placements;
  for (const auto& p : placements) {
    if (!keep_going) break;
    DataServer* host = cluster_->data_server(p.host_server);
    if (host == nullptr) return Status::Internal("route names bad server");
    Status s = host->ScanPrefix(p.instance_id, prefix,
                                [&](std::string_view k, std::string_view v) {
                                  keep_going = visitor(k, v);
                                  return keep_going;
                                });
    if (s.IsUnavailable()) {
      TR_RETURN_IF_ERROR(RefreshRoute());
      // Re-find this instance's placement by instance_id — a route table is
      // not necessarily ordered so that placements[i].instance_id == i
      // (indexing by instance_id here used to retry against the wrong
      // server's engine under permuted tables).
      const InstancePlacement* refreshed = nullptr;
      for (const auto& q : route_.placements) {
        if (q.instance_id == p.instance_id) {
          refreshed = &q;
          break;
        }
      }
      if (refreshed == nullptr) {
        return Status::Internal("instance missing from refreshed route");
      }
      DataServer* retry_host = cluster_->data_server(refreshed->host_server);
      if (retry_host == nullptr) {
        return Status::Internal("route names bad server");
      }
      s = retry_host->ScanPrefix(p.instance_id, prefix,
                                 [&](std::string_view k, std::string_view v) {
                                   keep_going = visitor(k, v);
                                   return keep_going;
                                 });
    }
    TR_RETURN_IF_ERROR(s);
  }
  return Status::OK();
}

}  // namespace tencentrec::tdstore
