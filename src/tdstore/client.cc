#include "tdstore/client.h"

#include "common/trace.h"

namespace tencentrec::tdstore {

Status Client::RefreshRoute() {
  auto table = cluster_->config().GetRouteTable();
  if (!table.ok()) return table.status();
  route_ = std::move(table).value();
  have_route_ = true;
  ++route_refreshes_;
  return Status::OK();
}

Status Client::EnsureRoute() {
  if (have_route_) return Status::OK();
  return RefreshRoute();
}

template <typename Op>
auto Client::WithHost(std::string_view key, Op op) -> decltype(op(nullptr, 0)) {
  Status ensure = EnsureRoute();
  if (!ensure.ok()) return ensure;
  for (int attempt = 0; attempt < 2; ++attempt) {
    const size_t instance =
        HashString(key) % route_.placements.size();
    const InstancePlacement& p = route_.placements[instance];
    DataServer* host = cluster_->data_server(p.host_server);
    if (host == nullptr) return Status::Internal("route names bad server");
    auto result = op(host, p.instance_id);
    if (result.ok() || !result.status().IsUnavailable() || attempt == 1) {
      return result;
    }
    Status refresh = RefreshRoute();
    if (!refresh.ok()) return refresh;
  }
  return Status::Internal("unreachable");
}

namespace {
/// Adapts Status-returning ops to the Result-shaped WithHost contract.
struct StatusResult {
  Status status_;
  StatusResult(Status s) : status_(std::move(s)) {}  // NOLINT(implicit)
  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }
};
}  // namespace

// Store ops run under the caller's tuple context (published by the bolt's
// ScopedSpan), so sampled tuples get a nested store-side span with no
// signature change here.
Status Client::Put(std::string_view key, std::string_view value) {
  ScopedLatencyTimer timer(write_us_);
  ScopedSpan span(CurrentTraceId(), "tdstore.write");
  auto r = WithHost(key, [&](DataServer* host, int instance) -> StatusResult {
    return host->Put(instance, key, value);
  });
  return r.status();
}

Result<std::string> Client::Get(std::string_view key) {
  ScopedLatencyTimer timer(read_us_);
  ScopedSpan span(CurrentTraceId(), "tdstore.read");
  return WithHost(key,
                  [&](DataServer* host, int instance) -> Result<std::string> {
                    return host->Get(instance, key);
                  });
}

Status Client::Delete(std::string_view key) {
  ScopedLatencyTimer timer(write_us_);
  ScopedSpan span(CurrentTraceId(), "tdstore.write");
  auto r = WithHost(key, [&](DataServer* host, int instance) -> StatusResult {
    return host->Delete(instance, key);
  });
  return r.status();
}

Result<double> Client::IncrDouble(std::string_view key, double delta) {
  ScopedLatencyTimer timer(write_us_);
  ScopedSpan span(CurrentTraceId(), "tdstore.write");
  return WithHost(key, [&](DataServer* host, int instance) -> Result<double> {
    return host->IncrDouble(instance, key, delta);
  });
}

Result<int64_t> Client::IncrInt64(std::string_view key, int64_t delta) {
  ScopedLatencyTimer timer(write_us_);
  ScopedSpan span(CurrentTraceId(), "tdstore.write");
  return WithHost(key, [&](DataServer* host, int instance) -> Result<int64_t> {
    return host->IncrInt64(instance, key, delta);
  });
}

Result<double> Client::GetDouble(std::string_view key, double fallback) {
  auto raw = Get(key);
  if (!raw.ok()) {
    if (raw.status().IsNotFound()) return fallback;
    return raw.status();
  }
  return DecodeDouble(*raw);
}

Result<int64_t> Client::GetInt64(std::string_view key, int64_t fallback) {
  auto raw = Get(key);
  if (!raw.ok()) {
    if (raw.status().IsNotFound()) return fallback;
    return raw.status();
  }
  return DecodeInt64(*raw);
}

Result<std::vector<std::optional<std::string>>> Client::MultiGet(
    const std::vector<std::string>& keys) {
  std::vector<std::optional<std::string>> out;
  out.reserve(keys.size());
  for (const auto& key : keys) {
    auto v = Get(key);
    if (v.ok()) {
      out.emplace_back(std::move(v).value());
    } else if (v.status().IsNotFound()) {
      out.emplace_back(std::nullopt);
    } else {
      return v.status();
    }
  }
  return out;
}

Status Client::ScanPrefix(
    std::string_view prefix,
    const std::function<bool(std::string_view, std::string_view)>& visitor) {
  TR_RETURN_IF_ERROR(EnsureRoute());
  bool keep_going = true;
  // Copy: RefreshRoute() inside the loop would invalidate iterators into
  // route_.placements.
  const std::vector<InstancePlacement> placements = route_.placements;
  for (const auto& p : placements) {
    if (!keep_going) break;
    DataServer* host = cluster_->data_server(p.host_server);
    if (host == nullptr) return Status::Internal("route names bad server");
    Status s = host->ScanPrefix(p.instance_id, prefix,
                                [&](std::string_view k, std::string_view v) {
                                  keep_going = visitor(k, v);
                                  return keep_going;
                                });
    if (s.IsUnavailable()) {
      TR_RETURN_IF_ERROR(RefreshRoute());
      DataServer* retry_host =
          cluster_->data_server(route_.placements[static_cast<size_t>(
                                  p.instance_id)].host_server);
      if (retry_host == nullptr) {
        return Status::Internal("route names bad server");
      }
      s = retry_host->ScanPrefix(p.instance_id, prefix,
                                 [&](std::string_view k, std::string_view v) {
                                   keep_going = visitor(k, v);
                                   return keep_going;
                                 });
    }
    TR_RETURN_IF_ERROR(s);
  }
  return Status::OK();
}

}  // namespace tencentrec::tdstore
