#ifndef TENCENTREC_TDSTORE_LDB_ENGINE_H_
#define TENCENTREC_TDSTORE_LDB_ENGINE_H_

#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "tdstore/engine.h"

namespace tencentrec::tdstore {

/// Level DataBase engine: a miniature LSM tree. Writes land in a sorted
/// memtable; when it reaches `ldb_memtable_limit` entries it is sealed into
/// an immutable sorted run. Reads consult memtable first, then runs newest
/// to oldest. Deletes are tombstones. When more than `ldb_max_runs` runs
/// accumulate, all runs merge into one, dropping shadowed entries and
/// tombstones.
class LdbEngine : public Engine {
 public:
  explicit LdbEngine(const EngineOptions& options)
      : memtable_limit_(options.ldb_memtable_limit == 0
                            ? 1
                            : options.ldb_memtable_limit),
        max_runs_(options.ldb_max_runs == 0 ? 1 : options.ldb_max_runs) {}

  Status Put(std::string_view key, std::string_view value) override;
  /// One lock acquisition and one seal/compaction check for the whole batch
  /// (the memtable may transiently overshoot its limit by the batch size).
  Status MultiPut(
      const std::vector<std::pair<std::string, std::string>>& kvs) override;
  Result<std::string> Get(std::string_view key) const override;
  Status Delete(std::string_view key) override;
  Status ScanPrefix(
      std::string_view prefix,
      const std::function<bool(std::string_view, std::string_view)>& visitor)
      const override;
  size_t Count() const override;
  /// Seals the memtable into a run (mostly useful to force merge behaviour
  /// in tests).
  Status Flush() override;

  size_t NumRuns() const;

 private:
  // nullopt value = tombstone.
  using Entry = std::pair<std::string, std::optional<std::string>>;
  using Run = std::vector<Entry>;  // sorted by key, unique keys

  void SealMemtableLocked();
  void MaybeCompactLocked();
  static const std::optional<std::string>* FindInRun(const Run& run,
                                                     std::string_view key);

  const size_t memtable_limit_;
  const size_t max_runs_;
  mutable std::mutex mu_;
  std::map<std::string, std::optional<std::string>> memtable_;
  std::vector<Run> runs_;  // oldest first
};

}  // namespace tencentrec::tdstore

#endif  // TENCENTREC_TDSTORE_LDB_ENGINE_H_
