#include "tdstore/ldb_engine.h"

#include <algorithm>

#include "common/strings.h"

namespace tencentrec::tdstore {

Status LdbEngine::Put(std::string_view key, std::string_view value) {
  std::lock_guard lock(mu_);
  memtable_[std::string(key)] = std::string(value);
  if (memtable_.size() >= memtable_limit_) {
    SealMemtableLocked();
    MaybeCompactLocked();
  }
  return Status::OK();
}

Status LdbEngine::MultiPut(
    const std::vector<std::pair<std::string, std::string>>& kvs) {
  std::lock_guard lock(mu_);
  for (const auto& [key, value] : kvs) memtable_[key] = value;
  if (memtable_.size() >= memtable_limit_) {
    SealMemtableLocked();
    MaybeCompactLocked();
  }
  return Status::OK();
}

Status LdbEngine::Delete(std::string_view key) {
  std::lock_guard lock(mu_);
  memtable_[std::string(key)] = std::nullopt;  // tombstone
  if (memtable_.size() >= memtable_limit_) {
    SealMemtableLocked();
    MaybeCompactLocked();
  }
  return Status::OK();
}

const std::optional<std::string>* LdbEngine::FindInRun(const Run& run,
                                                       std::string_view key) {
  auto it = std::lower_bound(
      run.begin(), run.end(), key,
      [](const Entry& e, std::string_view k) { return e.first < k; });
  if (it != run.end() && it->first == key) return &it->second;
  return nullptr;
}

Result<std::string> LdbEngine::Get(std::string_view key) const {
  std::lock_guard lock(mu_);
  auto mit = memtable_.find(std::string(key));
  if (mit != memtable_.end()) {
    if (!mit->second.has_value()) return Status::NotFound();
    return *mit->second;
  }
  for (auto rit = runs_.rbegin(); rit != runs_.rend(); ++rit) {
    const std::optional<std::string>* v = FindInRun(*rit, key);
    if (v != nullptr) {
      if (!v->has_value()) return Status::NotFound();
      return **v;
    }
  }
  return Status::NotFound();
}

Status LdbEngine::ScanPrefix(
    std::string_view prefix,
    const std::function<bool(std::string_view, std::string_view)>& visitor)
    const {
  std::lock_guard lock(mu_);
  // Merge view: newest source wins. Collect winners into a sorted map of the
  // prefix range (prefix scans here back small admin/debug surfaces, not the
  // hot path, so materializing is fine).
  std::map<std::string, std::optional<std::string>> view;
  for (const auto& run : runs_) {
    auto it = std::lower_bound(
        run.begin(), run.end(), prefix,
        [](const Entry& e, std::string_view k) { return e.first < k; });
    for (; it != run.end() && StartsWith(it->first, prefix); ++it) {
      view[it->first] = it->second;  // later (newer) runs overwrite
    }
  }
  for (auto it = memtable_.lower_bound(std::string(prefix));
       it != memtable_.end() && StartsWith(it->first, prefix); ++it) {
    view[it->first] = it->second;
  }
  for (const auto& [k, v] : view) {
    if (!v.has_value()) continue;  // tombstone
    if (!visitor(k, *v)) break;
  }
  return Status::OK();
}

size_t LdbEngine::Count() const {
  std::lock_guard lock(mu_);
  // Exact count via merge (cheap at the scales the tests/benches use; the
  // interface allows approximation but exactness keeps tests strict).
  std::map<std::string_view, bool> live;
  for (const auto& run : runs_) {
    for (const auto& [k, v] : run) live[k] = v.has_value();
  }
  for (const auto& [k, v] : memtable_) live[k] = v.has_value();
  size_t n = 0;
  for (const auto& [k, alive] : live) {
    if (alive) ++n;
  }
  return n;
}

Status LdbEngine::Flush() {
  std::lock_guard lock(mu_);
  SealMemtableLocked();
  MaybeCompactLocked();
  return Status::OK();
}

void LdbEngine::SealMemtableLocked() {
  if (memtable_.empty()) return;
  Run run;
  run.reserve(memtable_.size());
  for (auto& [k, v] : memtable_) run.emplace_back(k, std::move(v));
  runs_.push_back(std::move(run));
  memtable_.clear();
}

void LdbEngine::MaybeCompactLocked() {
  if (runs_.size() <= max_runs_) return;
  // Full merge, newest wins, tombstones dropped (nothing older remains).
  std::map<std::string, std::optional<std::string>> merged;
  for (const auto& run : runs_) {
    for (const auto& [k, v] : run) merged[k] = v;
  }
  Run out;
  out.reserve(merged.size());
  for (auto& [k, v] : merged) {
    if (v.has_value()) out.emplace_back(k, std::move(v));
  }
  runs_.clear();
  if (!out.empty()) runs_.push_back(std::move(out));
}

size_t LdbEngine::NumRuns() const {
  std::lock_guard lock(mu_);
  return runs_.size();
}

}  // namespace tencentrec::tdstore
