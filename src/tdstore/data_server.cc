#include "tdstore/data_server.h"

#include "tdstore/codec.h"

namespace tencentrec::tdstore {

Status DataServer::CreateInstance(int instance_id,
                                  const EngineOptions& options) {
  if (down_.load()) return Status::Unavailable("data server down");
  std::lock_guard lock(map_mu_);
  if (instances_.count(instance_id) > 0) {
    return Status::AlreadyExists("instance exists: " +
                                 std::to_string(instance_id));
  }
  auto engine = CreateEngine(options);
  if (!engine.ok()) return engine.status();
  auto inst = std::make_unique<Instance>();
  inst->engine = std::move(engine).value();
  instances_[instance_id] = std::move(inst);
  return Status::OK();
}

bool DataServer::HasInstance(int instance_id) const {
  std::lock_guard lock(map_mu_);
  return instances_.count(instance_id) > 0;
}

DataServer::Instance* DataServer::FindInstance(int instance_id) const {
  std::lock_guard lock(map_mu_);
  auto it = instances_.find(instance_id);
  return it == instances_.end() ? nullptr : it->second.get();
}

Status DataServer::SetSlave(int instance_id, DataServer* slave) {
  Instance* inst = FindInstance(instance_id);
  if (inst == nullptr) {
    return Status::NotFound("no instance " + std::to_string(instance_id));
  }
  std::lock_guard lock(inst->mu);
  inst->slave = slave;
  return Status::OK();
}

void DataServer::ClearAllSlaves() {
  std::lock_guard lock(map_mu_);
  for (auto& [id, inst] : instances_) {
    std::lock_guard ilock(inst->mu);
    inst->slave = nullptr;
    inst->is_host = false;
    inst->pending.clear();
  }
}

Status DataServer::SetHostRole(int instance_id, bool is_host) {
  Instance* inst = FindInstance(instance_id);
  if (inst == nullptr) {
    return Status::NotFound("no instance " + std::to_string(instance_id));
  }
  std::lock_guard lock(inst->mu);
  inst->is_host = is_host;
  return Status::OK();
}

Status DataServer::ClearInstance(int instance_id) {
  Instance* inst = FindInstance(instance_id);
  if (inst == nullptr) {
    return Status::NotFound("no instance " + std::to_string(instance_id));
  }
  std::lock_guard lock(inst->mu);
  std::vector<std::string> keys;
  TR_RETURN_IF_ERROR(inst->engine->ScanPrefix(
      "", [&](std::string_view key, std::string_view) {
        keys.emplace_back(key);
        return true;
      }));
  for (const auto& key : keys) {
    TR_RETURN_IF_ERROR(inst->engine->Delete(key));
  }
  return Status::OK();
}

Status DataServer::Put(int instance_id, std::string_view key,
                       std::string_view value) {
  if (down_.load()) return Status::Unavailable("data server down");
  writes_.fetch_add(1, std::memory_order_relaxed);
  Instance* inst = FindInstance(instance_id);
  if (inst == nullptr) {
    return Status::NotFound("no instance " + std::to_string(instance_id));
  }
  std::lock_guard lock(inst->mu);
  if (!inst->is_host) return Status::Unavailable("not the host replica");
  TR_RETURN_IF_ERROR(inst->engine->Put(key, value));
  ReplicationOp op;
  op.key = std::string(key);
  op.value = std::string(value);
  if (inst->slave != nullptr) {
    if (sync_replication_) {
      (void)inst->slave->ApplyReplicated(instance_id, op);
    } else {
      inst->pending.push_back(std::move(op));
    }
  }
  return Status::OK();
}

Result<std::string> DataServer::Get(int instance_id,
                                    std::string_view key) const {
  if (down_.load()) return Status::Unavailable("data server down");
  reads_.fetch_add(1, std::memory_order_relaxed);
  Instance* inst = FindInstance(instance_id);
  if (inst == nullptr) {
    return Status::NotFound("no instance " + std::to_string(instance_id));
  }
  {
    std::lock_guard lock(inst->mu);
    if (!inst->is_host) return Status::Unavailable("not the host replica");
  }
  return inst->engine->Get(key);
}

Status DataServer::Delete(int instance_id, std::string_view key) {
  if (down_.load()) return Status::Unavailable("data server down");
  writes_.fetch_add(1, std::memory_order_relaxed);
  Instance* inst = FindInstance(instance_id);
  if (inst == nullptr) {
    return Status::NotFound("no instance " + std::to_string(instance_id));
  }
  std::lock_guard lock(inst->mu);
  if (!inst->is_host) return Status::Unavailable("not the host replica");
  TR_RETURN_IF_ERROR(inst->engine->Delete(key));
  ReplicationOp op;
  op.key = std::string(key);
  op.is_delete = true;
  if (inst->slave != nullptr) {
    if (sync_replication_) {
      (void)inst->slave->ApplyReplicated(instance_id, op);
    } else {
      inst->pending.push_back(std::move(op));
    }
  }
  return Status::OK();
}

Result<double> DataServer::IncrDouble(int instance_id, std::string_view key,
                                      double delta) {
  if (down_.load()) return Status::Unavailable("data server down");
  writes_.fetch_add(1, std::memory_order_relaxed);
  Instance* inst = FindInstance(instance_id);
  if (inst == nullptr) {
    return Status::NotFound("no instance " + std::to_string(instance_id));
  }
  std::lock_guard lock(inst->mu);
  if (!inst->is_host) return Status::Unavailable("not the host replica");
  double current = 0.0;
  auto existing = inst->engine->Get(key);
  if (existing.ok()) {
    auto decoded = DecodeDouble(*existing);
    if (!decoded.ok()) return decoded.status();
    current = *decoded;
  } else if (!existing.status().IsNotFound()) {
    return existing.status();
  }
  double next = current + delta;
  std::string encoded = EncodeDouble(next);
  TR_RETURN_IF_ERROR(inst->engine->Put(key, encoded));
  ReplicationOp op;
  op.key = std::string(key);
  op.value = std::move(encoded);
  if (inst->slave != nullptr) {
    if (sync_replication_) {
      (void)inst->slave->ApplyReplicated(instance_id, op);
    } else {
      inst->pending.push_back(std::move(op));
    }
  }
  return next;
}

Result<int64_t> DataServer::IncrInt64(int instance_id, std::string_view key,
                                      int64_t delta) {
  if (down_.load()) return Status::Unavailable("data server down");
  writes_.fetch_add(1, std::memory_order_relaxed);
  Instance* inst = FindInstance(instance_id);
  if (inst == nullptr) {
    return Status::NotFound("no instance " + std::to_string(instance_id));
  }
  std::lock_guard lock(inst->mu);
  if (!inst->is_host) return Status::Unavailable("not the host replica");
  int64_t current = 0;
  auto existing = inst->engine->Get(key);
  if (existing.ok()) {
    auto decoded = DecodeInt64(*existing);
    if (!decoded.ok()) return decoded.status();
    current = *decoded;
  } else if (!existing.status().IsNotFound()) {
    return existing.status();
  }
  int64_t next = current + delta;
  std::string encoded = EncodeInt64(next);
  TR_RETURN_IF_ERROR(inst->engine->Put(key, encoded));
  ReplicationOp op;
  op.key = std::string(key);
  op.value = std::move(encoded);
  if (inst->slave != nullptr) {
    if (sync_replication_) {
      (void)inst->slave->ApplyReplicated(instance_id, op);
    } else {
      inst->pending.push_back(std::move(op));
    }
  }
  return next;
}

Status DataServer::ScanPrefix(
    int instance_id, std::string_view prefix,
    const std::function<bool(std::string_view, std::string_view)>& visitor)
    const {
  if (down_.load()) return Status::Unavailable("data server down");
  Instance* inst = FindInstance(instance_id);
  if (inst == nullptr) {
    return Status::NotFound("no instance " + std::to_string(instance_id));
  }
  {
    std::lock_guard lock(inst->mu);
    if (!inst->is_host) return Status::Unavailable("not the host replica");
  }
  return inst->engine->ScanPrefix(prefix, visitor);
}

Status DataServer::FlushReplication() {
  if (down_.load()) return Status::Unavailable("data server down");
  std::vector<std::pair<int, Instance*>> snapshot;
  {
    std::lock_guard lock(map_mu_);
    for (auto& [id, inst] : instances_) snapshot.emplace_back(id, inst.get());
  }
  for (auto& [id, inst] : snapshot) {
    std::deque<ReplicationOp> pending;
    DataServer* slave;
    {
      std::lock_guard lock(inst->mu);
      pending.swap(inst->pending);
      slave = inst->slave;
    }
    if (slave == nullptr) continue;
    for (const auto& op : pending) {
      Status s = slave->ApplyReplicated(id, op);
      if (!s.ok() && !s.IsUnavailable()) return s;
    }
  }
  return Status::OK();
}

size_t DataServer::PendingReplication() const {
  std::lock_guard lock(map_mu_);
  size_t n = 0;
  for (const auto& [id, inst] : instances_) {
    std::lock_guard ilock(inst->mu);
    n += inst->pending.size();
  }
  return n;
}

Status DataServer::ApplyReplicated(int instance_id, const ReplicationOp& op) {
  if (down_.load()) return Status::Unavailable("data server down");
  Instance* inst = FindInstance(instance_id);
  if (inst == nullptr) {
    return Status::NotFound("no instance " + std::to_string(instance_id));
  }
  std::lock_guard lock(inst->mu);
  // Slaves apply verbatim and never cascade.
  if (op.is_delete) return inst->engine->Delete(op.key);
  return inst->engine->Put(op.key, op.value);
}

Status DataServer::CopyInstanceTo(int instance_id, DataServer* target) const {
  if (down_.load()) return Status::Unavailable("data server down");
  Instance* inst = FindInstance(instance_id);
  if (inst == nullptr) {
    return Status::NotFound("no instance " + std::to_string(instance_id));
  }
  Status status = Status::OK();
  Status scan = inst->engine->ScanPrefix(
      "", [&](std::string_view key, std::string_view value) {
        ReplicationOp op;
        op.key = std::string(key);
        op.value = std::string(value);
        status = target->ApplyReplicated(instance_id, op);
        return status.ok();
      });
  TR_RETURN_IF_ERROR(scan);
  return status;
}

size_t DataServer::TotalKeys() const {
  std::lock_guard lock(map_mu_);
  size_t n = 0;
  for (const auto& [id, inst] : instances_) n += inst->engine->Count();
  return n;
}

}  // namespace tencentrec::tdstore
