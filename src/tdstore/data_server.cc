#include "tdstore/data_server.h"

#include <algorithm>

#include "common/metrics.h"
#include "tdstore/codec.h"

namespace tencentrec::tdstore {

Status DataServer::CreateInstance(int instance_id,
                                  const EngineOptions& options) {
  if (down_.load()) return Status::Unavailable("data server down");
  std::lock_guard lock(map_mu_);
  if (instances_.count(instance_id) > 0) {
    return Status::AlreadyExists("instance exists: " +
                                 std::to_string(instance_id));
  }
  auto engine = CreateEngine(options);
  if (!engine.ok()) return engine.status();
  auto inst = std::make_unique<Instance>();
  inst->engine = std::move(engine).value();
  instances_[instance_id] = std::move(inst);
  return Status::OK();
}

bool DataServer::HasInstance(int instance_id) const {
  std::lock_guard lock(map_mu_);
  return instances_.count(instance_id) > 0;
}

DataServer::Instance* DataServer::FindInstance(int instance_id) const {
  std::lock_guard lock(map_mu_);
  auto it = instances_.find(instance_id);
  return it == instances_.end() ? nullptr : it->second.get();
}

Status DataServer::SetSlave(int instance_id, DataServer* slave) {
  Instance* inst = FindInstance(instance_id);
  if (inst == nullptr) {
    return Status::NotFound("no instance " + std::to_string(instance_id));
  }
  std::lock_guard lock(inst->mu);
  inst->slave = slave;
  return Status::OK();
}

void DataServer::ClearAllSlaves() {
  std::lock_guard lock(map_mu_);
  for (auto& [id, inst] : instances_) {
    std::lock_guard ilock(inst->mu);
    inst->slave = nullptr;
    inst->is_host = false;
    inst->pending.clear();
  }
}

Status DataServer::SetHostRole(int instance_id, bool is_host) {
  Instance* inst = FindInstance(instance_id);
  if (inst == nullptr) {
    return Status::NotFound("no instance " + std::to_string(instance_id));
  }
  std::lock_guard lock(inst->mu);
  inst->is_host = is_host;
  return Status::OK();
}

Status DataServer::ClearInstance(int instance_id) {
  Instance* inst = FindInstance(instance_id);
  if (inst == nullptr) {
    return Status::NotFound("no instance " + std::to_string(instance_id));
  }
  std::lock_guard lock(inst->mu);
  std::vector<std::string> keys;
  TR_RETURN_IF_ERROR(inst->engine->ScanPrefix(
      "", [&](std::string_view key, std::string_view) {
        keys.emplace_back(key);
        return true;
      }));
  for (const auto& key : keys) {
    TR_RETURN_IF_ERROR(inst->engine->Delete(key));
  }
  return Status::OK();
}

void DataServer::ReplicateLocked(Instance* inst, int instance_id,
                                 ReplicationRecord&& rec) {
  if (inst->slave == nullptr || rec.ops.empty()) return;
  if (sync_replication_) {
    (void)inst->slave->ApplyReplicatedRecord(instance_id, rec);
  } else {
    inst->pending.push_back(std::move(rec));
  }
}

Status DataServer::Put(int instance_id, std::string_view key,
                       std::string_view value) {
  if (down_.load()) return Status::Unavailable("data server down");
  invocations_.fetch_add(1, std::memory_order_relaxed);
  writes_.fetch_add(1, std::memory_order_relaxed);
  Instance* inst = FindInstance(instance_id);
  if (inst == nullptr) {
    return Status::NotFound("no instance " + std::to_string(instance_id));
  }
  std::lock_guard lock(inst->mu);
  if (!inst->is_host) return Status::Unavailable("not the host replica");
  if (wal_ != nullptr) {
    const WalOpView op{false, key, value};
    TR_RETURN_IF_ERROR(WalAppendLocked(instance_id, &op, 1));
  }
  TR_RETURN_IF_ERROR(inst->engine->Put(key, value));
  ReplicationRecord rec;
  rec.ops.push_back({std::string(key), std::string(value), false});
  ReplicateLocked(inst, instance_id, std::move(rec));
  return Status::OK();
}

Result<std::string> DataServer::Get(int instance_id,
                                    std::string_view key) const {
  if (down_.load()) return Status::Unavailable("data server down");
  invocations_.fetch_add(1, std::memory_order_relaxed);
  reads_.fetch_add(1, std::memory_order_relaxed);
  Instance* inst = FindInstance(instance_id);
  if (inst == nullptr) {
    return Status::NotFound("no instance " + std::to_string(instance_id));
  }
  {
    std::lock_guard lock(inst->mu);
    if (!inst->is_host) return Status::Unavailable("not the host replica");
  }
  return inst->engine->Get(key);
}

Status DataServer::Delete(int instance_id, std::string_view key) {
  if (down_.load()) return Status::Unavailable("data server down");
  invocations_.fetch_add(1, std::memory_order_relaxed);
  writes_.fetch_add(1, std::memory_order_relaxed);
  Instance* inst = FindInstance(instance_id);
  if (inst == nullptr) {
    return Status::NotFound("no instance " + std::to_string(instance_id));
  }
  std::lock_guard lock(inst->mu);
  if (!inst->is_host) return Status::Unavailable("not the host replica");
  if (wal_ != nullptr) {
    const WalOpView op{true, key, {}};
    TR_RETURN_IF_ERROR(WalAppendLocked(instance_id, &op, 1));
  }
  TR_RETURN_IF_ERROR(inst->engine->Delete(key));
  ReplicationRecord rec;
  rec.ops.push_back({std::string(key), std::string(), true});
  ReplicateLocked(inst, instance_id, std::move(rec));
  return Status::OK();
}

namespace {

/// Read-modify-write of one 8-byte double counter. Caller holds the
/// instance lock. On success writes the encoded new value into `*encoded`.
Result<double> IncrDoubleLocked(Engine* engine, std::string_view key,
                                double delta, std::string* encoded) {
  double current = 0.0;
  auto existing = engine->Get(key);
  if (existing.ok()) {
    auto decoded = DecodeDouble(*existing);
    if (!decoded.ok()) return decoded.status();
    current = *decoded;
  } else if (!existing.status().IsNotFound()) {
    return existing.status();
  }
  double next = current + delta;
  EncodeDoubleTo(encoded, next);
  TR_RETURN_IF_ERROR(engine->Put(key, *encoded));
  return next;
}

Result<int64_t> IncrInt64Locked(Engine* engine, std::string_view key,
                                int64_t delta, std::string* encoded) {
  int64_t current = 0;
  auto existing = engine->Get(key);
  if (existing.ok()) {
    auto decoded = DecodeInt64(*existing);
    if (!decoded.ok()) return decoded.status();
    current = *decoded;
  } else if (!existing.status().IsNotFound()) {
    return existing.status();
  }
  int64_t next = current + delta;
  EncodeInt64To(encoded, next);
  TR_RETURN_IF_ERROR(engine->Put(key, *encoded));
  return next;
}

}  // namespace

Result<double> DataServer::IncrDouble(int instance_id, std::string_view key,
                                      double delta) {
  if (down_.load()) return Status::Unavailable("data server down");
  invocations_.fetch_add(1, std::memory_order_relaxed);
  writes_.fetch_add(1, std::memory_order_relaxed);
  Instance* inst = FindInstance(instance_id);
  if (inst == nullptr) {
    return Status::NotFound("no instance " + std::to_string(instance_id));
  }
  std::lock_guard lock(inst->mu);
  if (!inst->is_host) return Status::Unavailable("not the host replica");
  std::string encoded;
  Result<double> next = IncrDoubleLocked(inst->engine.get(), key, delta,
                                         &encoded);
  if (!next.ok()) return next;
  if (wal_ != nullptr) {
    // Logged as the encoded post-increment value (same shape replication
    // ships), so replay is an idempotent overwrite, never a re-add.
    const WalOpView op{false, key, encoded};
    TR_RETURN_IF_ERROR(WalAppendLocked(instance_id, &op, 1));
  }
  ReplicationRecord rec;
  rec.ops.push_back({std::string(key), std::move(encoded), false});
  ReplicateLocked(inst, instance_id, std::move(rec));
  return next;
}

Result<int64_t> DataServer::IncrInt64(int instance_id, std::string_view key,
                                      int64_t delta) {
  if (down_.load()) return Status::Unavailable("data server down");
  invocations_.fetch_add(1, std::memory_order_relaxed);
  writes_.fetch_add(1, std::memory_order_relaxed);
  Instance* inst = FindInstance(instance_id);
  if (inst == nullptr) {
    return Status::NotFound("no instance " + std::to_string(instance_id));
  }
  std::lock_guard lock(inst->mu);
  if (!inst->is_host) return Status::Unavailable("not the host replica");
  std::string encoded;
  Result<int64_t> next = IncrInt64Locked(inst->engine.get(), key, delta,
                                         &encoded);
  if (!next.ok()) return next;
  if (wal_ != nullptr) {
    const WalOpView op{false, key, encoded};
    TR_RETURN_IF_ERROR(WalAppendLocked(instance_id, &op, 1));
  }
  ReplicationRecord rec;
  rec.ops.push_back({std::string(key), std::move(encoded), false});
  ReplicateLocked(inst, instance_id, std::move(rec));
  return next;
}

Status DataServer::MultiGet(const std::vector<BatchGet>& items,
                            std::vector<Result<std::string>>* out) const {
  if (down_.load()) return Status::Unavailable("data server down");
  invocations_.fetch_add(1, std::memory_order_relaxed);
  out->assign(items.size(), Result<std::string>(Status::Internal("unset")));
  size_t i = 0;
  while (i < items.size()) {
    size_t j = i;
    while (j < items.size() && items[j].instance_id == items[i].instance_id) {
      ++j;
    }
    Instance* inst = FindInstance(items[i].instance_id);
    if (inst == nullptr) {
      Status s = Status::NotFound("no instance " +
                                  std::to_string(items[i].instance_id));
      for (size_t k = i; k < j; ++k) (*out)[k] = s;
      i = j;
      continue;
    }
    std::lock_guard lock(inst->mu);
    if (!inst->is_host) {
      Status s = Status::Unavailable("not the host replica");
      for (size_t k = i; k < j; ++k) (*out)[k] = s;
      i = j;
      continue;
    }
    for (size_t k = i; k < j; ++k) {
      reads_.fetch_add(1, std::memory_order_relaxed);
      (*out)[k] = inst->engine->Get(items[k].key);
    }
    i = j;
  }
  return Status::OK();
}

Status DataServer::MultiPut(const std::vector<BatchPut>& items,
                            std::vector<Status>* out) {
  if (down_.load()) return Status::Unavailable("data server down");
  invocations_.fetch_add(1, std::memory_order_relaxed);
  out->assign(items.size(), Status::Internal("unset"));
  size_t i = 0;
  while (i < items.size()) {
    size_t j = i;
    while (j < items.size() && items[j].instance_id == items[i].instance_id) {
      ++j;
    }
    Instance* inst = FindInstance(items[i].instance_id);
    if (inst == nullptr) {
      Status s = Status::NotFound("no instance " +
                                  std::to_string(items[i].instance_id));
      for (size_t k = i; k < j; ++k) (*out)[k] = s;
      i = j;
      continue;
    }
    std::lock_guard lock(inst->mu);
    if (!inst->is_host) {
      Status s = Status::Unavailable("not the host replica");
      for (size_t k = i; k < j; ++k) (*out)[k] = s;
      i = j;
      continue;
    }
    ReplicationRecord rec;
    std::vector<WalOpView> wal_ops;
    if (wal_ != nullptr) wal_ops.reserve(j - i);
    for (size_t k = i; k < j; ++k) {
      writes_.fetch_add(1, std::memory_order_relaxed);
      Status s = inst->engine->Put(items[k].key, items[k].value);
      (*out)[k] = s;
      if (s.ok() && inst->slave != nullptr) {
        rec.ops.push_back({items[k].key, items[k].value, false});
      }
      if (s.ok() && wal_ != nullptr) {
        wal_ops.push_back({false, items[k].key, items[k].value});
      }
    }
    // The whole run is one atomic WAL record: recovery replays all of it or
    // (past the commit barrier) none of it.
    TR_RETURN_IF_ERROR(WalAppendLocked(items[i].instance_id, wal_ops.data(),
                                       wal_ops.size()));
    ReplicateLocked(inst, items[i].instance_id, std::move(rec));
    i = j;
  }
  return Status::OK();
}

Status DataServer::MultiIncrDouble(const std::vector<BatchIncrDouble>& items,
                                   std::vector<Result<double>>* out) {
  if (down_.load()) return Status::Unavailable("data server down");
  invocations_.fetch_add(1, std::memory_order_relaxed);
  out->assign(items.size(), Result<double>(Status::Internal("unset")));
  size_t i = 0;
  while (i < items.size()) {
    size_t j = i;
    while (j < items.size() && items[j].instance_id == items[i].instance_id) {
      ++j;
    }
    Instance* inst = FindInstance(items[i].instance_id);
    if (inst == nullptr) {
      Status s = Status::NotFound("no instance " +
                                  std::to_string(items[i].instance_id));
      for (size_t k = i; k < j; ++k) (*out)[k] = s;
      i = j;
      continue;
    }
    std::lock_guard lock(inst->mu);
    if (!inst->is_host) {
      Status s = Status::Unavailable("not the host replica");
      for (size_t k = i; k < j; ++k) (*out)[k] = s;
      i = j;
      continue;
    }
    ReplicationRecord rec;
    std::vector<WalOpView> wal_ops;
    // Reserved upfront so views into wal_vals stay stable across push_back.
    std::vector<std::string> wal_vals;
    if (wal_ != nullptr) {
      wal_ops.reserve(j - i);
      wal_vals.reserve(j - i);
    }
    std::string encoded;
    for (size_t k = i; k < j; ++k) {
      writes_.fetch_add(1, std::memory_order_relaxed);
      Result<double> r = IncrDoubleLocked(inst->engine.get(), items[k].key,
                                          items[k].delta, &encoded);
      if (r.ok() && inst->slave != nullptr) {
        rec.ops.push_back({items[k].key, encoded, false});
      }
      if (r.ok() && wal_ != nullptr) {
        wal_vals.push_back(encoded);
        wal_ops.push_back({false, items[k].key, wal_vals.back()});
      }
      (*out)[k] = std::move(r);
    }
    TR_RETURN_IF_ERROR(WalAppendLocked(items[i].instance_id, wal_ops.data(),
                                       wal_ops.size()));
    ReplicateLocked(inst, items[i].instance_id, std::move(rec));
    i = j;
  }
  return Status::OK();
}

Status DataServer::MultiIncrInt64(const std::vector<BatchIncrInt64>& items,
                                  std::vector<Result<int64_t>>* out) {
  if (down_.load()) return Status::Unavailable("data server down");
  invocations_.fetch_add(1, std::memory_order_relaxed);
  out->assign(items.size(), Result<int64_t>(Status::Internal("unset")));
  size_t i = 0;
  while (i < items.size()) {
    size_t j = i;
    while (j < items.size() && items[j].instance_id == items[i].instance_id) {
      ++j;
    }
    Instance* inst = FindInstance(items[i].instance_id);
    if (inst == nullptr) {
      Status s = Status::NotFound("no instance " +
                                  std::to_string(items[i].instance_id));
      for (size_t k = i; k < j; ++k) (*out)[k] = s;
      i = j;
      continue;
    }
    std::lock_guard lock(inst->mu);
    if (!inst->is_host) {
      Status s = Status::Unavailable("not the host replica");
      for (size_t k = i; k < j; ++k) (*out)[k] = s;
      i = j;
      continue;
    }
    ReplicationRecord rec;
    std::vector<WalOpView> wal_ops;
    // Reserved upfront so views into wal_vals stay stable across push_back.
    std::vector<std::string> wal_vals;
    if (wal_ != nullptr) {
      wal_ops.reserve(j - i);
      wal_vals.reserve(j - i);
    }
    std::string encoded;
    for (size_t k = i; k < j; ++k) {
      writes_.fetch_add(1, std::memory_order_relaxed);
      Result<int64_t> r = IncrInt64Locked(inst->engine.get(), items[k].key,
                                          items[k].delta, &encoded);
      if (r.ok() && inst->slave != nullptr) {
        rec.ops.push_back({items[k].key, encoded, false});
      }
      if (r.ok() && wal_ != nullptr) {
        wal_vals.push_back(encoded);
        wal_ops.push_back({false, items[k].key, wal_vals.back()});
      }
      (*out)[k] = std::move(r);
    }
    TR_RETURN_IF_ERROR(WalAppendLocked(items[i].instance_id, wal_ops.data(),
                                       wal_ops.size()));
    ReplicateLocked(inst, items[i].instance_id, std::move(rec));
    i = j;
  }
  return Status::OK();
}

Status DataServer::ScanPrefix(
    int instance_id, std::string_view prefix,
    const std::function<bool(std::string_view, std::string_view)>& visitor)
    const {
  if (down_.load()) return Status::Unavailable("data server down");
  invocations_.fetch_add(1, std::memory_order_relaxed);
  Instance* inst = FindInstance(instance_id);
  if (inst == nullptr) {
    return Status::NotFound("no instance " + std::to_string(instance_id));
  }
  {
    std::lock_guard lock(inst->mu);
    if (!inst->is_host) return Status::Unavailable("not the host replica");
  }
  return inst->engine->ScanPrefix(prefix, visitor);
}

Status DataServer::FlushReplication() {
  if (down_.load()) return Status::Unavailable("data server down");
  std::vector<std::pair<int, Instance*>> snapshot;
  {
    std::lock_guard lock(map_mu_);
    for (auto& [id, inst] : instances_) snapshot.emplace_back(id, inst.get());
  }
  for (auto& [id, inst] : snapshot) {
    std::deque<ReplicationRecord> pending;
    DataServer* slave;
    {
      std::lock_guard lock(inst->mu);
      pending.swap(inst->pending);
      slave = inst->slave;
    }
    if (slave == nullptr) continue;
    for (const auto& rec : pending) {
      Status s = slave->ApplyReplicatedRecord(id, rec);
      if (!s.ok() && !s.IsUnavailable()) return s;
    }
  }
  return Status::OK();
}

size_t DataServer::PendingReplication() const {
  std::lock_guard lock(map_mu_);
  size_t n = 0;
  for (const auto& [id, inst] : instances_) {
    std::lock_guard ilock(inst->mu);
    for (const auto& rec : inst->pending) n += rec.ops.size();
  }
  return n;
}

Status DataServer::ApplyReplicated(int instance_id, const ReplicationOp& op) {
  if (down_.load()) return Status::Unavailable("data server down");
  Instance* inst = FindInstance(instance_id);
  if (inst == nullptr) {
    return Status::NotFound("no instance " + std::to_string(instance_id));
  }
  std::lock_guard lock(inst->mu);
  // Slaves apply verbatim and never cascade.
  if (op.is_delete) return inst->engine->Delete(op.key);
  return inst->engine->Put(op.key, op.value);
}

Status DataServer::ApplyReplicatedRecord(int instance_id,
                                         const ReplicationRecord& rec) {
  if (down_.load()) return Status::Unavailable("data server down");
  Instance* inst = FindInstance(instance_id);
  if (inst == nullptr) {
    return Status::NotFound("no instance " + std::to_string(instance_id));
  }
  std::lock_guard lock(inst->mu);
  bool all_puts = true;
  for (const auto& op : rec.ops) {
    if (op.is_delete) {
      all_puts = false;
      break;
    }
  }
  if (all_puts && rec.ops.size() > 1) {
    std::vector<std::pair<std::string, std::string>> kvs;
    kvs.reserve(rec.ops.size());
    for (const auto& op : rec.ops) kvs.emplace_back(op.key, op.value);
    return inst->engine->MultiPut(kvs);
  }
  for (const auto& op : rec.ops) {
    if (op.is_delete) {
      TR_RETURN_IF_ERROR(inst->engine->Delete(op.key));
    } else {
      TR_RETURN_IF_ERROR(inst->engine->Put(op.key, op.value));
    }
  }
  return Status::OK();
}

Status DataServer::CopyInstanceTo(int instance_id, DataServer* target) const {
  if (down_.load()) return Status::Unavailable("data server down");
  Instance* inst = FindInstance(instance_id);
  if (inst == nullptr) {
    return Status::NotFound("no instance " + std::to_string(instance_id));
  }
  Status status = Status::OK();
  Status scan = inst->engine->ScanPrefix(
      "", [&](std::string_view key, std::string_view value) {
        ReplicationOp op;
        op.key = std::string(key);
        op.value = std::string(value);
        status = target->ApplyReplicated(instance_id, op);
        return status.ok();
      });
  TR_RETURN_IF_ERROR(scan);
  return status;
}

size_t DataServer::TotalKeys() const {
  std::lock_guard lock(map_mu_);
  size_t n = 0;
  for (const auto& [id, inst] : instances_) n += inst->engine->Count();
  return n;
}

Status DataServer::WalAppendLocked(int instance_id, const WalOpView* ops,
                                   size_t count) {
  if (wal_ == nullptr || count == 0) return Status::OK();
  return wal_->AppendOps(instance_id, ops, count);
}

std::string DataServer::SnapshotPath(int instance_id) const {
  return durable_dir_ + "/server" + std::to_string(server_id_) + ".i" +
         std::to_string(instance_id) + ".snap";
}

Status DataServer::EnableDurability(const std::string& dir,
                                    const Wal::Options& options) {
  if (wal_ != nullptr) {
    return Status::FailedPrecondition("durability already enabled");
  }
  if (dir.empty()) return Status::InvalidArgument("durability needs a dir");
  auto wal = std::make_unique<Wal>();
  TR_RETURN_IF_ERROR(wal->Open(
      dir + "/server" + std::to_string(server_id_) + ".wal", options));
  durable_dir_ = dir;
  wal_ = std::move(wal);
  return Status::OK();
}

uint64_t DataServer::WalLastBarrier() const {
  return wal_ != nullptr ? wal_->recovered_last_barrier() : 0;
}

Status DataServer::RecoverDurable(uint64_t commit_barrier) {
  if (wal_ == nullptr) {
    return Status::FailedPrecondition("durability not enabled");
  }
  const uint64_t t0 = MonoMicros();
  std::vector<std::pair<int, Instance*>> snapshot;
  {
    std::lock_guard lock(map_mu_);
    for (auto& [id, inst] : instances_) snapshot.emplace_back(id, inst.get());
  }
  for (auto& [id, inst] : snapshot) {
    std::lock_guard lock(inst->mu);
    Status s = inst->engine->RestoreFrom(SnapshotPath(id));
    if (s.IsNotFound()) continue;  // never checkpointed (or slave role)
    TR_RETURN_IF_ERROR(s);
  }
  // Drop everything past the cluster-wide commit point, then redo the
  // surviving suffix. Replay writes straight into the engines: these are
  // absolute values whose replication happens when the cluster re-seeds
  // slaves from the recovered hosts.
  TR_RETURN_IF_ERROR(wal_->TruncateToBarrier(commit_barrier));
  uint64_t replayed = 0;
  for (const WalRecord& rec : wal_->recovered()) {
    if (rec.kind != WalRecord::Kind::kOps) continue;
    Instance* inst = FindInstance(rec.instance_id);
    if (inst == nullptr) {
      return Status::Internal("wal names unknown instance " +
                              std::to_string(rec.instance_id));
    }
    std::lock_guard lock(inst->mu);
    for (const WalOp& op : rec.ops) {
      if (op.is_delete) {
        TR_RETURN_IF_ERROR(inst->engine->Delete(op.key));
      } else {
        TR_RETURN_IF_ERROR(inst->engine->Put(op.key, op.value));
      }
    }
    ++replayed;
  }
  wal_->DropRecovered();
  auto& reg = MetricRegistry::Default();
  reg.GetCounter("store.recovery.replayed_records")->Add(replayed);
  reg.GetCounter("store.recovery.duration_us")->Add(MonoMicros() - t0);
  reg.GetCounter("store.recovery.count")->Add();
  reg.GetGauge("store.recovery.last_barrier")
      ->Set(static_cast<int64_t>(commit_barrier));
  return Status::OK();
}

Status DataServer::AppendBarrier(uint64_t barrier_id) {
  if (down_.load()) return Status::Unavailable("data server down");
  if (wal_ == nullptr) {
    return Status::FailedPrecondition("durability not enabled");
  }
  WalRecord rec;
  rec.kind = WalRecord::Kind::kBarrier;
  rec.barrier_id = barrier_id;
  return wal_->Append(rec);
}

Status DataServer::Checkpoint(uint64_t barrier_id) {
  if (down_.load()) return Status::Unavailable("data server down");
  if (wal_ == nullptr) {
    return Status::FailedPrecondition("durability not enabled");
  }
  const uint64_t t0 = MonoMicros();
  std::vector<std::pair<int, Instance*>> snapshot;
  {
    std::lock_guard lock(map_mu_);
    for (auto& [id, inst] : instances_) snapshot.emplace_back(id, inst.get());
  }
  // All instance locks at once (instances_ is id-ordered, so every
  // checkpointer acquires in the same order): the snapshots and the WAL
  // reset see one cut, with no append landing between them.
  std::vector<std::unique_lock<ProfiledMutex>> locks;
  locks.reserve(snapshot.size());
  for (auto& [id, inst] : snapshot) locks.emplace_back(inst->mu);
  for (auto& [id, inst] : snapshot) {
    if (!inst->is_host) continue;
    TR_RETURN_IF_ERROR(inst->engine->SnapshotTo(SnapshotPath(id)));
  }
  TR_RETURN_IF_ERROR(wal_->Reset());
  if (barrier_id != 0) {
    // Re-seed the committed barrier so recovery after a post-checkpoint
    // crash still reports it (the snapshots contain its state).
    WalRecord rec;
    rec.kind = WalRecord::Kind::kBarrier;
    rec.barrier_id = barrier_id;
    TR_RETURN_IF_ERROR(wal_->Append(rec));
  }
  auto& reg = MetricRegistry::Default();
  reg.GetCounter("store.checkpoint.count")->Add();
  reg.GetCounter("store.checkpoint.duration_us")->Add(MonoMicros() - t0);
  return Status::OK();
}

}  // namespace tencentrec::tdstore
