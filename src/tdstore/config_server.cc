#include "tdstore/config_server.h"

namespace tencentrec::tdstore {

Status ConfigServer::Install(RouteTable table) {
  std::lock_guard lock(mu_);
  table_ = std::move(table);
  table_.version = 1;
  if (backup_ != nullptr) {
    std::lock_guard block(backup_->mu_);
    backup_->table_ = table_;
  }
  return Status::OK();
}

Result<RouteTable> ConfigServer::GetRouteTable() const {
  std::lock_guard lock(mu_);
  if (table_.placements.empty()) {
    return Status::FailedPrecondition("route table not installed");
  }
  return table_;
}

uint64_t ConfigServer::Version() const {
  std::lock_guard lock(mu_);
  return table_.version;
}

Result<std::vector<int>> ConfigServer::OnServerDown(int server_id) {
  std::lock_guard lock(mu_);
  std::vector<int> affected;
  for (auto& p : table_.placements) {
    if (p.host_server == server_id) {
      if (p.slave_server < 0) {
        return Status::Internal("instance " + std::to_string(p.instance_id) +
                                " lost its only replica");
      }
      p.host_server = p.slave_server;
      p.slave_server = -1;
      affected.push_back(p.instance_id);
    } else if (p.slave_server == server_id) {
      p.slave_server = -1;
      affected.push_back(p.instance_id);
    }
  }
  ++table_.version;
  if (backup_ != nullptr) {
    std::lock_guard block(backup_->mu_);
    backup_->table_ = table_;
  }
  return affected;
}

Result<std::vector<int>> ConfigServer::OnServerRecovered(int server_id) {
  std::lock_guard lock(mu_);
  std::vector<int> reseeded;
  for (auto& p : table_.placements) {
    if (p.slave_server < 0 && p.host_server != server_id) {
      p.slave_server = server_id;
      reseeded.push_back(p.instance_id);
    }
  }
  ++table_.version;
  if (backup_ != nullptr) {
    std::lock_guard block(backup_->mu_);
    backup_->table_ = table_;
  }
  return reseeded;
}

}  // namespace tencentrec::tdstore
