#include "tdstore/cluster.h"

#include <algorithm>
#include <filesystem>

namespace tencentrec::tdstore {

Cluster::Cluster(const Options& options) : options_(options) {}

Result<std::unique_ptr<Cluster>> Cluster::Create(const Options& options) {
  if (options.num_data_servers < 1) {
    return Status::InvalidArgument("need at least one data server");
  }
  if (options.num_instances < 1) {
    return Status::InvalidArgument("need at least one instance");
  }
  std::unique_ptr<Cluster> cluster(new Cluster(options));
  Status s = cluster->Init();
  if (!s.ok()) return s;
  return cluster;
}

Status Cluster::Init() {
  num_instances_ = options_.num_instances;
  configs_[0] = std::make_unique<ConfigServer>();
  configs_[1] = std::make_unique<ConfigServer>();
  configs_[0]->SetBackup(configs_[1].get());

  for (int i = 0; i < options_.num_data_servers; ++i) {
    servers_.push_back(
        std::make_unique<DataServer>(i, options_.sync_replication));
  }

  const bool replicated = options_.num_data_servers >= 2;
  RouteTable table;
  for (int inst = 0; inst < num_instances_; ++inst) {
    InstancePlacement p;
    p.instance_id = inst;
    p.host_server = inst % options_.num_data_servers;
    p.slave_server =
        replicated ? (inst + 1) % options_.num_data_servers : -1;

    EngineOptions engine = options_.engine;
    if (engine.type == EngineType::kFdb) {
      engine.fdb_path = options_.engine.fdb_path + ".i" +
                        std::to_string(inst) + ".host.fdb";
    } else if (engine.type == EngineType::kRdb) {
      engine.rdb_path = options_.engine.rdb_path + ".i" +
                        std::to_string(inst) + ".host.rdb";
    }
    TR_RETURN_IF_ERROR(servers_[static_cast<size_t>(p.host_server)]
                           ->CreateInstance(inst, engine));
    TR_RETURN_IF_ERROR(
        servers_[static_cast<size_t>(p.host_server)]->SetHostRole(inst, true));
    if (replicated) {
      EngineOptions slave_engine = options_.engine;
      if (slave_engine.type == EngineType::kFdb) {
        slave_engine.fdb_path = options_.engine.fdb_path + ".i" +
                                std::to_string(inst) + ".slave.fdb";
      } else if (slave_engine.type == EngineType::kRdb) {
        slave_engine.rdb_path = options_.engine.rdb_path + ".i" +
                                std::to_string(inst) + ".slave.rdb";
      }
      TR_RETURN_IF_ERROR(servers_[static_cast<size_t>(p.slave_server)]
                             ->CreateInstance(inst, slave_engine));
      TR_RETURN_IF_ERROR(
          servers_[static_cast<size_t>(p.host_server)]->SetSlave(
              inst, servers_[static_cast<size_t>(p.slave_server)].get()));
    }
    table.placements.push_back(p);
  }

  if (options_.durability.enabled) {
    if (options_.durability.dir.empty()) {
      return Status::InvalidArgument("durability.dir is required");
    }
    std::error_code ec;
    std::filesystem::create_directories(options_.durability.dir, ec);
    if (ec) {
      return Status::IOError("cannot create durability dir " +
                             options_.durability.dir + ": " + ec.message());
    }
    for (auto& server : servers_) {
      TR_RETURN_IF_ERROR(server->EnableDurability(options_.durability.dir,
                                                  options_.durability.wal));
    }
    // The commit point is the newest barrier EVERY server holds durably. A
    // barrier only one server fsynced before the crash is not a consistent
    // cut — some other server's ops for that batch may be lost — so
    // recovery stops at the minimum and truncates everything after it.
    uint64_t commit = servers_[0]->WalLastBarrier();
    for (auto& server : servers_) {
      commit = std::min(commit, server->WalLastBarrier());
    }
    for (auto& server : servers_) {
      TR_RETURN_IF_ERROR(server->RecoverDurable(commit));
    }
    recovered_barrier_ = commit;
    // Slave copies are not separately checkpointed; re-seed them from the
    // recovered hosts (a no-op scan on a cold start).
    for (const auto& p : table.placements) {
      if (p.slave_server < 0) continue;
      DataServer* host = servers_[static_cast<size_t>(p.host_server)].get();
      DataServer* slave = servers_[static_cast<size_t>(p.slave_server)].get();
      TR_RETURN_IF_ERROR(host->CopyInstanceTo(p.instance_id, slave));
    }
  }

  return configs_[0]->Install(std::move(table));
}

DataServer* Cluster::data_server(int server_id) {
  if (server_id < 0 || server_id >= static_cast<int>(servers_.size())) {
    return nullptr;
  }
  return servers_[static_cast<size_t>(server_id)].get();
}

Status Cluster::FailDataServer(int server_id) {
  DataServer* server = data_server(server_id);
  if (server == nullptr) return Status::NotFound("no such server");
  if (server->IsDown()) return Status::FailedPrecondition("already down");

  // Snapshot the table before mutating it so we can stop replication from
  // hosts whose slave just died.
  auto before = config().GetRouteTable();
  if (!before.ok()) return before.status();

  server->SetDown(true);
  auto affected = config().OnServerDown(server_id);
  if (!affected.ok()) return affected.status();

  for (const auto& p : before->placements) {
    if (p.slave_server == server_id && p.host_server >= 0) {
      DataServer* host = data_server(p.host_server);
      if (host != nullptr && !host->IsDown()) {
        TR_RETURN_IF_ERROR(host->SetSlave(p.instance_id, nullptr));
      }
    }
    if (p.host_server == server_id && p.slave_server >= 0) {
      // Promote the slave: it now serves client traffic for the instance
      // (no slave of its own until a recovery re-seeds one).
      DataServer* promoted = data_server(p.slave_server);
      if (promoted != nullptr && !promoted->IsDown()) {
        TR_RETURN_IF_ERROR(promoted->SetHostRole(p.instance_id, true));
      }
    }
  }
  return Status::OK();
}

Status Cluster::RecoverDataServer(int server_id) {
  DataServer* server = data_server(server_id);
  if (server == nullptr) return Status::NotFound("no such server");
  if (!server->IsDown()) return Status::FailedPrecondition("not down");

  // The server lost its state; it comes back blank and, crucially, without
  // its old host-role replication pointers (otherwise clearing its stale
  // data would cascade deletes into the live hosts).
  server->SetDown(false);
  server->ClearAllSlaves();
  auto reseeded = config().OnServerRecovered(server_id);
  if (!reseeded.ok()) return reseeded.status();

  auto table = config().GetRouteTable();
  if (!table.ok()) return table.status();
  for (int inst : *reseeded) {
    const InstancePlacement& p = table->placements[static_cast<size_t>(inst)];
    DataServer* host = data_server(p.host_server);
    if (host == nullptr) return Status::Internal("route names bad server");
    // Blow away any stale copy, then full-copy from the host and resume
    // replication.
    if (server->HasInstance(inst)) {
      TR_RETURN_IF_ERROR(server->ClearInstance(inst));
    } else {
      EngineOptions engine = options_.engine;
      if (engine.type == EngineType::kFdb) {
        engine.fdb_path = options_.engine.fdb_path + ".i" +
                          std::to_string(inst) + ".recovered" +
                          std::to_string(table->version) + ".fdb";
      } else if (engine.type == EngineType::kRdb) {
        engine.rdb_path = options_.engine.rdb_path + ".i" +
                          std::to_string(inst) + ".recovered" +
                          std::to_string(table->version) + ".rdb";
      }
      TR_RETURN_IF_ERROR(server->CreateInstance(inst, engine));
    }
    TR_RETURN_IF_ERROR(host->CopyInstanceTo(inst, server));
    TR_RETURN_IF_ERROR(host->SetSlave(inst, server));
  }
  return Status::OK();
}

Status Cluster::FailActiveConfigServer() {
  if (config_failed_once_) return Status::FailedPrecondition("no backup left");
  config_failed_once_ = true;
  configs_[1]->SetBackup(nullptr);
  active_config_ = 1;
  return Status::OK();
}

Status Cluster::FlushReplication() {
  for (auto& server : servers_) {
    if (server->IsDown()) continue;
    TR_RETURN_IF_ERROR(server->FlushReplication());
  }
  return Status::OK();
}

Status Cluster::CommitBarrier(uint64_t barrier_id) {
  if (!options_.durability.enabled) return Status::OK();
  for (auto& server : servers_) {
    if (server->IsDown()) continue;
    TR_RETURN_IF_ERROR(server->AppendBarrier(barrier_id));
  }
  return Status::OK();
}

Status Cluster::Checkpoint(uint64_t barrier_id) {
  if (!options_.durability.enabled) return Status::OK();
  for (auto& server : servers_) {
    if (server->IsDown()) continue;
    TR_RETURN_IF_ERROR(server->Checkpoint(barrier_id));
  }
  return Status::OK();
}

}  // namespace tencentrec::tdstore
