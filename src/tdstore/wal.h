#ifndef TENCENTREC_TDSTORE_WAL_H_
#define TENCENTREC_TDSTORE_WAL_H_

#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/metrics.h"
#include "common/recordio.h"
#include "common/status.h"

namespace tencentrec::tdstore {

/// One logged mutation. The WAL is a *redo log of absolute values*: Incr
/// results are logged as the encoded post-increment value, never as deltas,
/// so replaying any suffix of the log over any state that already contains
/// its effects is idempotent — which is what lets a checkpoint snapshot race
/// benignly with appends and lets recovery replay without tracking applied
/// positions per key.
struct WalOp {
  bool is_delete = false;
  std::string key;
  std::string value;
};

/// Borrowed view of one mutation for the zero-copy append path: the apply
/// path logs straight from the caller's key/value buffers without building
/// WalOp strings. Views must outlive the AppendOps call only.
struct WalOpView {
  bool is_delete = false;
  std::string_view key;
  std::string_view value;
};

/// One crc-framed WAL record: either an atomic batch of ops against one
/// data instance (a point op or a whole contiguous Multi* run), or a
/// barrier — a marker the processing tier appends (fsynced) once everything
/// up to a batch boundary has been flushed to the store. Recovery replays
/// to the last barrier shared by every server, discarding the uncommitted
/// suffix of a batch that was mid-flight at the crash.
struct WalRecord {
  enum class Kind : uint8_t { kOps = 0, kBarrier = 1 };
  Kind kind = Kind::kOps;
  int32_t instance_id = 0;  ///< kOps: which data instance the ops hit
  uint64_t barrier_id = 0;  ///< kBarrier: monotone batch-boundary id
  std::vector<WalOp> ops;
};

/// Write-ahead log for one TDStore data server, covering every instance it
/// hosts (records carry the instance id). Single file, crc-framed records
/// over the common/recordio little-endian format, magic+version header.
///
/// Thread-safe: appends from concurrent per-instance critical sections
/// serialize on an internal mutex (within one instance the caller's
/// instance lock already orders apply and append identically).
class Wal {
 public:
  struct Options {
    /// Sync policy for OP records only — barrier records always fsync.
    /// Default kNone: in the barriered deployment recovery truncates to the
    /// last barrier every server holds, so an op record is never trusted
    /// until the next barrier fsync lands anyway; syncing ops between
    /// barriers spends fsyncs on bytes recovery would discard. Standalone
    /// users without barriers pick kGroupCommit (bounded loss) or
    /// kFsyncEveryAppend (no loss) to make op records durable on their own.
    SyncPolicy sync = SyncPolicy::kNone;
    /// kGroupCommit: fsync at most once per this interval; appends in
    /// between are buffered (lost on power cut, bounded by the interval —
    /// the classic group-commit trade).
    uint64_t group_commit_interval_micros = 2000;
  };

  Wal() = default;
  ~Wal();

  Wal(const Wal&) = delete;
  Wal& operator=(const Wal&) = delete;

  /// Opens (creating or recovering) the log. Existing records are read into
  /// recovered() and any torn tail is physically truncated off the file.
  Status Open(const std::string& path, const Options& options);

  /// Appends one record. Barrier records are always fsynced (a barrier IS
  /// the durability point); op records follow the sync policy.
  Status Append(const WalRecord& record);

  /// Zero-copy append of one kOps record: encodes straight from the views
  /// into a reusable scratch buffer (no WalOp/WalRecord construction). This
  /// is the hot apply-path entry — the wal_overhead_pct budget is measured
  /// against it.
  Status AppendOps(int32_t instance_id, const WalOpView* ops, size_t count);

  /// Forces buffered appends to disk now (checkpoint prologue, tests).
  Status Sync();

  /// Records recovered at Open(), valid prefix only, in append order.
  const std::vector<WalRecord>& recovered() const { return recovered_; }
  /// Highest barrier id among recovered records (0 = none).
  uint64_t recovered_last_barrier() const { return recovered_last_barrier_; }
  /// Frees the recovered records once the caller has replayed them.
  void DropRecovered();

  /// Truncates the recovered log to end exactly at the barrier record with
  /// `barrier_id` (file and recovered() both), discarding the uncommitted
  /// suffix. barrier_id 0 truncates to the header (nothing committed).
  /// Call before any Append. Fails if no such barrier was recovered.
  Status TruncateToBarrier(uint64_t barrier_id);

  /// Drops every record in the file (a checkpoint snapshot captured their
  /// effects). Atomic: writes a fresh header to a temp file and renames.
  Status Reset();

  /// Records appended (plus recovered) since Open, for tests.
  uint64_t record_count() const;

  Status Close();

 private:
  Status SyncLocked(SyncPolicy effective);
  /// Frames + writes one already-encoded payload and applies the op-record
  /// sync policy (or the unconditional barrier fsync). Callers hold mu_.
  Status AppendPayloadLocked(const std::string& payload, bool is_barrier);

  mutable std::mutex mu_;
  std::string encode_buf_;  ///< scratch for AppendOps, guarded by mu_
  std::string path_;
  Options options_;
  std::FILE* file_ = nullptr;
  long tail_bytes_ = 0;  ///< end of last durable record; short appends roll back
  uint64_t last_sync_micros_ = 0;
  uint64_t records_ = 0;
  std::vector<WalRecord> recovered_;
  /// Byte offset of the end of each recovered record (for barrier truncate).
  std::vector<long> recovered_ends_;
  uint64_t recovered_last_barrier_ = 0;
  Counter* appends_ = nullptr;
  Counter* appended_bytes_ = nullptr;
  Counter* syncs_ = nullptr;
};

/// Encodes/decodes one record payload (exposed for tests and the recovery
/// bench; framing is common/recordio's job).
std::string EncodeWalRecord(const WalRecord& record);
Result<WalRecord> DecodeWalRecord(const std::string& payload);

}  // namespace tencentrec::tdstore

#endif  // TENCENTREC_TDSTORE_WAL_H_
