#include "tdstore/wal.h"

#include <unistd.h>

#include <cstdio>

namespace tencentrec::tdstore {

namespace {

// File header identifying a TDStore write-ahead log ("TDWL", version 1).
constexpr uint32_t kMagic = 0x4c574454;
constexpr uint32_t kVersion = 1;

constexpr size_t kMaxKeyLen = 1u << 24;
constexpr size_t kMaxValueLen = 1u << 28;
// Record payload upper bound (a Multi* run is capped far below this by the
// batching layer; the bound only rejects garbage length fields).
constexpr size_t kMaxRecordLen = 1u << 30;

}  // namespace

std::string EncodeWalRecord(const WalRecord& record) {
  std::string payload;
  payload.push_back(static_cast<char>(record.kind));
  PutFixed32LE(&payload, static_cast<uint32_t>(record.instance_id));
  PutFixed64LE(&payload, record.barrier_id);
  PutFixed32LE(&payload, static_cast<uint32_t>(record.ops.size()));
  for (const auto& op : record.ops) {
    payload.push_back(op.is_delete ? 1 : 0);
    PutFixed32LE(&payload, static_cast<uint32_t>(op.key.size()));
    PutFixed32LE(&payload, static_cast<uint32_t>(op.value.size()));
    payload += op.key;
    payload += op.value;
  }
  return payload;
}

Result<WalRecord> DecodeWalRecord(const std::string& payload) {
  constexpr size_t kHeader = 1 + 4 + 8 + 4;
  if (payload.size() < kHeader) {
    return Status::Corruption("wal record too short");
  }
  WalRecord record;
  const uint8_t kind = static_cast<uint8_t>(payload[0]);
  if (kind > static_cast<uint8_t>(WalRecord::Kind::kBarrier)) {
    return Status::Corruption("unknown wal record kind");
  }
  record.kind = static_cast<WalRecord::Kind>(kind);
  record.instance_id = static_cast<int32_t>(GetFixed32LE(payload.data() + 1));
  record.barrier_id = GetFixed64LE(payload.data() + 5);
  const uint32_t op_count = GetFixed32LE(payload.data() + 13);
  size_t pos = kHeader;
  record.ops.reserve(op_count);
  for (uint32_t i = 0; i < op_count; ++i) {
    if (pos + 9 > payload.size()) {
      return Status::Corruption("wal record op header truncated");
    }
    WalOp op;
    op.is_delete = payload[pos] != 0;
    const uint32_t key_len = GetFixed32LE(payload.data() + pos + 1);
    const uint32_t value_len = GetFixed32LE(payload.data() + pos + 5);
    pos += 9;
    if (key_len > kMaxKeyLen || value_len > kMaxValueLen ||
        pos + key_len + value_len > payload.size()) {
      return Status::Corruption("wal record op body truncated");
    }
    op.key = payload.substr(pos, key_len);
    pos += key_len;
    op.value = payload.substr(pos, value_len);
    pos += value_len;
    record.ops.push_back(std::move(op));
  }
  if (pos != payload.size()) {
    return Status::Corruption("wal record trailing bytes");
  }
  return record;
}

Wal::~Wal() { Close(); }

Status Wal::Open(const std::string& path, const Options& options) {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ != nullptr) return Status::FailedPrecondition("wal already open");
  if (path.empty()) return Status::InvalidArgument("wal needs a path");
  path_ = path;
  options_ = options;
  recovered_.clear();
  recovered_ends_.clear();
  recovered_last_barrier_ = 0;
  records_ = 0;

  auto& reg = MetricRegistry::Default();
  appends_ = reg.GetCounter("store.wal.appends");
  appended_bytes_ = reg.GetCounter("store.wal.appended_bytes");
  syncs_ = reg.GetCounter("store.wal.syncs");

  std::FILE* existing = std::fopen(path_.c_str(), "rb");
  long valid_bytes = 0;
  bool has_header = false;
  if (existing != nullptr) {
    Status header = ReadLogHeader(existing, kMagic, kVersion, path_);
    if (header.IsCorruption()) {
      std::fclose(existing);
      return header;
    }
    if (header.ok()) {
      has_header = true;
      valid_bytes = static_cast<long>(kLogHeaderSize);
      while (true) {
        auto frame = ReadFrame(existing, kMaxRecordLen, path_);
        if (!frame.ok()) break;
        auto record = DecodeWalRecord(*frame);
        if (!record.ok()) break;
        if (record->kind == WalRecord::Kind::kBarrier &&
            record->barrier_id > recovered_last_barrier_) {
          recovered_last_barrier_ = record->barrier_id;
        }
        valid_bytes += static_cast<long>(kFrameOverhead + frame->size());
        recovered_.push_back(std::move(record).value());
        recovered_ends_.push_back(valid_bytes);
      }
    }
    std::fclose(existing);
  }

  file_ = std::fopen(path_.c_str(), existing != nullptr ? "rb+" : "wb+");
  if (file_ == nullptr) return Status::IOError("cannot open " + path_);
  // Physically drop the torn tail (or a header-less stub).
  if (::ftruncate(::fileno(file_), valid_bytes) != 0) {
    std::fclose(file_);
    file_ = nullptr;
    return Status::IOError("cannot truncate " + path_);
  }
  if (!has_header) {
    if (std::fseek(file_, 0, SEEK_SET) != 0 ||
        !WriteLogHeader(file_, kMagic, kVersion, path_).ok()) {
      std::fclose(file_);
      file_ = nullptr;
      return Status::IOError("cannot write header of " + path_);
    }
    valid_bytes = static_cast<long>(kLogHeaderSize);
    TR_RETURN_IF_ERROR(SyncLocked(SyncPolicy::kFsyncEveryAppend));
  } else if (std::fseek(file_, valid_bytes, SEEK_SET) != 0) {
    std::fclose(file_);
    file_ = nullptr;
    return Status::IOError("cannot seek " + path_);
  }
  tail_bytes_ = valid_bytes;
  records_ = recovered_.size();
  last_sync_micros_ = MonoMicros();
  return Status::OK();
}

Status Wal::SyncLocked(SyncPolicy effective) {
  TR_RETURN_IF_ERROR(SyncFile(file_, effective, path_));
  if (effective != SyncPolicy::kNone && syncs_ != nullptr) syncs_->Add();
  return Status::OK();
}

Status Wal::AppendPayloadLocked(const std::string& payload, bool is_barrier) {
  if (file_ == nullptr) return Status::FailedPrecondition("wal not open");
  auto written = AppendFrame(file_, payload, path_);
  if (!written.ok()) {
    // Roll the torn record off the disk: the file must always end at a
    // record boundary so the next Open recovers cleanly.
    (void)std::fflush(file_);
    (void)::ftruncate(::fileno(file_), tail_bytes_);
    (void)std::fseek(file_, tail_bytes_, SEEK_SET);
    return written.status();
  }
  tail_bytes_ += static_cast<long>(*written);
  ++records_;
  if (appends_ != nullptr) {
    appends_->Add();
    appended_bytes_->Add(*written);
  }

  if (is_barrier) {
    // The barrier is what recovery trusts; it must be on the platter.
    last_sync_micros_ = MonoMicros();
    return SyncLocked(SyncPolicy::kFsyncEveryAppend);
  }
  switch (options_.sync) {
    case SyncPolicy::kNone:
      return Status::OK();
    case SyncPolicy::kFlushEveryAppend:
    case SyncPolicy::kFsyncEveryAppend:
      return SyncLocked(options_.sync);
    case SyncPolicy::kGroupCommit: {
      const uint64_t now = MonoMicros();
      if (now - last_sync_micros_ >= options_.group_commit_interval_micros) {
        last_sync_micros_ = now;
        return SyncLocked(SyncPolicy::kFsyncEveryAppend);
      }
      return Status::OK();
    }
  }
  return Status::OK();
}

Status Wal::Append(const WalRecord& record) {
  std::lock_guard<std::mutex> lock(mu_);
  return AppendPayloadLocked(EncodeWalRecord(record),
                             record.kind == WalRecord::Kind::kBarrier);
}

Status Wal::AppendOps(int32_t instance_id, const WalOpView* ops,
                      size_t count) {
  std::lock_guard<std::mutex> lock(mu_);
  // Same payload EncodeWalRecord produces for a kOps record, built into the
  // reusable scratch buffer straight from the caller's views.
  std::string& payload = encode_buf_;
  payload.clear();
  size_t need = 1 + 4 + 8 + 4;
  for (size_t i = 0; i < count; ++i) {
    need += 9 + ops[i].key.size() + ops[i].value.size();
  }
  payload.reserve(need);
  payload.push_back(static_cast<char>(WalRecord::Kind::kOps));
  PutFixed32LE(&payload, static_cast<uint32_t>(instance_id));
  PutFixed64LE(&payload, 0);  // barrier_id
  PutFixed32LE(&payload, static_cast<uint32_t>(count));
  for (size_t i = 0; i < count; ++i) {
    payload.push_back(ops[i].is_delete ? 1 : 0);
    PutFixed32LE(&payload, static_cast<uint32_t>(ops[i].key.size()));
    PutFixed32LE(&payload, static_cast<uint32_t>(ops[i].value.size()));
    payload.append(ops[i].key);
    payload.append(ops[i].value);
  }
  return AppendPayloadLocked(payload, /*is_barrier=*/false);
}

Status Wal::Sync() {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ == nullptr) return Status::FailedPrecondition("wal not open");
  last_sync_micros_ = MonoMicros();
  return SyncLocked(SyncPolicy::kFsyncEveryAppend);
}

void Wal::DropRecovered() {
  std::lock_guard<std::mutex> lock(mu_);
  recovered_.clear();
  recovered_.shrink_to_fit();
  recovered_ends_.clear();
}

Status Wal::TruncateToBarrier(uint64_t barrier_id) {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ == nullptr) return Status::FailedPrecondition("wal not open");
  long end = static_cast<long>(kLogHeaderSize);
  size_t keep = 0;
  if (barrier_id != 0) {
    bool found = false;
    for (size_t i = 0; i < recovered_.size(); ++i) {
      if (recovered_[i].kind == WalRecord::Kind::kBarrier &&
          recovered_[i].barrier_id == barrier_id) {
        end = recovered_ends_[i];
        keep = i + 1;
        found = true;
        break;
      }
    }
    if (!found) {
      return Status::NotFound("no barrier " + std::to_string(barrier_id) +
                              " in " + path_);
    }
  }
  if (std::fflush(file_) != 0 || ::ftruncate(::fileno(file_), end) != 0 ||
      std::fseek(file_, end, SEEK_SET) != 0) {
    return Status::IOError("cannot truncate " + path_);
  }
  recovered_.resize(keep);
  recovered_ends_.resize(keep);
  recovered_last_barrier_ = barrier_id;
  tail_bytes_ = end;
  records_ = keep;
  return Status::OK();
}

Status Wal::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ == nullptr) return Status::FailedPrecondition("wal not open");
  const std::string tmp = path_ + ".tmp";
  std::FILE* fresh = std::fopen(tmp.c_str(), "wb");
  if (fresh == nullptr) return Status::IOError("cannot open " + tmp);
  Status header = WriteLogHeader(fresh, kMagic, kVersion, tmp);
  if (header.ok() && std::fflush(fresh) != 0) {
    header = Status::IOError("fflush failed on " + tmp);
  }
  if (header.ok() && ::fsync(::fileno(fresh)) != 0) {
    header = Status::IOError("fsync failed on " + tmp);
  }
  std::fclose(fresh);
  if (!header.ok()) {
    std::remove(tmp.c_str());
    return header;
  }
  std::fclose(file_);
  file_ = nullptr;
  if (std::rename(tmp.c_str(), path_.c_str()) != 0) {
    return Status::IOError("rename failed: " + tmp + " -> " + path_);
  }
  file_ = std::fopen(path_.c_str(), "rb+");
  if (file_ == nullptr) return Status::IOError("reopen failed: " + path_);
  if (std::fseek(file_, static_cast<long>(kLogHeaderSize), SEEK_SET) != 0) {
    return Status::IOError("seek failed: " + path_);
  }
  tail_bytes_ = static_cast<long>(kLogHeaderSize);
  records_ = 0;
  recovered_.clear();
  recovered_ends_.clear();
  recovered_last_barrier_ = 0;
  last_sync_micros_ = MonoMicros();
  return Status::OK();
}

uint64_t Wal::record_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return records_;
}

Status Wal::Close() {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ != nullptr) {
    std::fflush(file_);
    std::fclose(file_);
    file_ = nullptr;
  }
  return Status::OK();
}

}  // namespace tencentrec::tdstore
