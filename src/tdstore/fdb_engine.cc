#include "tdstore/fdb_engine.h"

#include <cstring>

#include "common/crc32.h"
#include "common/strings.h"

namespace tencentrec::tdstore {

namespace {

// Record: [u32 crc][u32 key_len][u32 value_len][u8 tombstone][key][value]
// crc covers everything after the crc field.
constexpr size_t kHeaderSize = 4 + 4 + 4 + 1;

size_t RecordSize(size_t key_len, size_t value_len) {
  return kHeaderSize + key_len + value_len;
}

}  // namespace

FdbEngine::~FdbEngine() {
  std::lock_guard lock(mu_);
  if (file_ != nullptr) {
    std::fflush(file_);
    std::fclose(file_);
    file_ = nullptr;
  }
}

Result<std::unique_ptr<FdbEngine>> FdbEngine::Open(
    const EngineOptions& options) {
  if (options.fdb_path.empty()) {
    return Status::InvalidArgument("FDB engine requires fdb_path");
  }
  std::unique_ptr<FdbEngine> engine(
      new FdbEngine(options.fdb_path, options.fdb_compact_garbage_ratio));
  Status s = engine->Recover();
  if (!s.ok()) return s;
  return engine;
}

Status FdbEngine::Recover() {
  std::lock_guard lock(mu_);
  std::FILE* existing = std::fopen(path_.c_str(), "rb");
  long valid = 0;
  if (existing != nullptr) {
    char header[kHeaderSize];
    while (true) {
      long record_start = std::ftell(existing);
      if (std::fread(header, 1, kHeaderSize, existing) != kHeaderSize) break;
      uint32_t crc, key_len, value_len;
      std::memcpy(&crc, header, 4);
      std::memcpy(&key_len, header + 4, 4);
      std::memcpy(&value_len, header + 8, 4);
      uint8_t tombstone = static_cast<uint8_t>(header[12]);
      if (key_len > (1u << 24) || value_len > (1u << 28)) break;
      std::string data(static_cast<size_t>(key_len) + value_len, '\0');
      if (std::fread(data.data(), 1, data.size(), existing) != data.size()) {
        break;
      }
      uint32_t actual = Crc32(header + 4, kHeaderSize - 4);
      actual = Crc32(data.data(), data.size(), actual);
      if (actual != crc) break;  // torn/corrupt tail
      std::string key = data.substr(0, key_len);
      auto it = index_.find(key);
      if (it != index_.end()) {
        dead_bytes_ += RecordSize(key.size(), it->second.value_len);
      }
      if (tombstone != 0) {
        if (it != index_.end()) index_.erase(it);
        dead_bytes_ += RecordSize(key.size(), value_len);
      } else {
        IndexEntry entry;
        entry.value_offset =
            record_start + static_cast<long>(kHeaderSize + key_len);
        entry.value_len = value_len;
        index_[key] = entry;
      }
      valid = record_start + static_cast<long>(RecordSize(key_len, value_len));
    }
    std::fclose(existing);
  }

  file_ = std::fopen(path_.c_str(), existing != nullptr ? "rb+" : "wb+");
  if (file_ == nullptr) return Status::IOError("cannot open " + path_);
  if (std::fseek(file_, valid, SEEK_SET) != 0) {
    return Status::IOError("cannot seek " + path_);
  }
  file_size_ = valid;
  return Status::OK();
}

Status FdbEngine::AppendRecordLocked(std::string_view key,
                                     std::string_view value, bool tombstone) {
  char header[kHeaderSize];
  uint32_t key_len = static_cast<uint32_t>(key.size());
  uint32_t value_len = static_cast<uint32_t>(value.size());
  std::memcpy(header + 4, &key_len, 4);
  std::memcpy(header + 8, &value_len, 4);
  header[12] = tombstone ? 1 : 0;
  uint32_t crc = Crc32(header + 4, kHeaderSize - 4);
  crc = Crc32(key.data(), key.size(), crc);
  crc = Crc32(value.data(), value.size(), crc);
  std::memcpy(header, &crc, 4);

  if (std::fseek(file_, file_size_, SEEK_SET) != 0) {
    return Status::IOError("seek failed on " + path_);
  }
  if (std::fwrite(header, 1, kHeaderSize, file_) != kHeaderSize ||
      std::fwrite(key.data(), 1, key.size(), file_) != key.size() ||
      std::fwrite(value.data(), 1, value.size(), file_) != value.size()) {
    return Status::IOError("append failed on " + path_);
  }
  file_size_ += static_cast<long>(RecordSize(key.size(), value.size()));
  return Status::OK();
}

Status FdbEngine::Put(std::string_view key, std::string_view value) {
  std::lock_guard lock(mu_);
  if (file_ == nullptr) return Status::FailedPrecondition("engine closed");
  auto it = index_.find(std::string(key));
  if (it != index_.end()) {
    dead_bytes_ += RecordSize(key.size(), it->second.value_len);
  }
  long value_offset = file_size_ + static_cast<long>(kHeaderSize + key.size());
  TR_RETURN_IF_ERROR(AppendRecordLocked(key, value, /*tombstone=*/false));
  IndexEntry entry;
  entry.value_offset = value_offset;
  entry.value_len = static_cast<uint32_t>(value.size());
  index_[std::string(key)] = entry;
  return MaybeCompactLocked();
}

Result<std::string> FdbEngine::Get(std::string_view key) const {
  std::lock_guard lock(mu_);
  if (file_ == nullptr) return Status::FailedPrecondition("engine closed");
  auto it = index_.find(std::string(key));
  if (it == index_.end()) return Status::NotFound();
  std::string value(it->second.value_len, '\0');
  if (std::fseek(file_, it->second.value_offset, SEEK_SET) != 0) {
    return Status::IOError("seek failed on " + path_);
  }
  if (std::fread(value.data(), 1, value.size(), file_) != value.size()) {
    return Status::IOError("read failed on " + path_);
  }
  return value;
}

Status FdbEngine::Delete(std::string_view key) {
  std::lock_guard lock(mu_);
  if (file_ == nullptr) return Status::FailedPrecondition("engine closed");
  auto it = index_.find(std::string(key));
  if (it == index_.end()) return Status::OK();
  dead_bytes_ += RecordSize(key.size(), it->second.value_len);
  TR_RETURN_IF_ERROR(AppendRecordLocked(key, "", /*tombstone=*/true));
  // The tombstone record itself is immediately dead weight too.
  dead_bytes_ += RecordSize(key.size(), 0);
  index_.erase(it);
  return MaybeCompactLocked();
}

Status FdbEngine::ScanPrefix(
    std::string_view prefix,
    const std::function<bool(std::string_view, std::string_view)>& visitor)
    const {
  // Snapshot keys first to avoid holding references into the index while
  // the visitor runs.
  std::vector<std::string> keys;
  {
    std::lock_guard lock(mu_);
    for (const auto& [k, e] : index_) {
      if (StartsWith(k, prefix)) keys.push_back(k);
    }
  }
  for (const auto& k : keys) {
    auto v = Get(k);
    if (!v.ok()) {
      if (v.status().IsNotFound()) continue;  // deleted since snapshot
      return v.status();
    }
    if (!visitor(k, *v)) break;
  }
  return Status::OK();
}

size_t FdbEngine::Count() const {
  std::lock_guard lock(mu_);
  return index_.size();
}

Status FdbEngine::Flush() {
  std::lock_guard lock(mu_);
  if (file_ != nullptr) std::fflush(file_);
  return Status::OK();
}

size_t FdbEngine::DeadBytes() const {
  std::lock_guard lock(mu_);
  return dead_bytes_;
}

Status FdbEngine::MaybeCompactLocked() {
  if (file_size_ <= 0 || compact_ratio_ <= 0.0) return Status::OK();
  if (static_cast<double>(dead_bytes_) <
      compact_ratio_ * static_cast<double>(file_size_)) {
    return Status::OK();
  }
  // Rewrite live records into a fresh file, then swap.
  std::string tmp_path = path_ + ".compact";
  std::FILE* tmp = std::fopen(tmp_path.c_str(), "wb+");
  if (tmp == nullptr) return Status::IOError("cannot open " + tmp_path);

  std::unordered_map<std::string, IndexEntry> new_index;
  long new_size = 0;
  for (const auto& [key, entry] : index_) {
    std::string value(entry.value_len, '\0');
    if (std::fseek(file_, entry.value_offset, SEEK_SET) != 0 ||
        std::fread(value.data(), 1, value.size(), file_) != value.size()) {
      std::fclose(tmp);
      std::remove(tmp_path.c_str());
      return Status::IOError("compaction read failed on " + path_);
    }
    char header[kHeaderSize];
    uint32_t key_len = static_cast<uint32_t>(key.size());
    uint32_t value_len = static_cast<uint32_t>(value.size());
    std::memcpy(header + 4, &key_len, 4);
    std::memcpy(header + 8, &value_len, 4);
    header[12] = 0;
    uint32_t crc = Crc32(header + 4, kHeaderSize - 4);
    crc = Crc32(key.data(), key.size(), crc);
    crc = Crc32(value.data(), value.size(), crc);
    std::memcpy(header, &crc, 4);
    if (std::fwrite(header, 1, kHeaderSize, tmp) != kHeaderSize ||
        std::fwrite(key.data(), 1, key.size(), tmp) != key.size() ||
        std::fwrite(value.data(), 1, value.size(), tmp) != value.size()) {
      std::fclose(tmp);
      std::remove(tmp_path.c_str());
      return Status::IOError("compaction write failed on " + tmp_path);
    }
    IndexEntry ne;
    ne.value_offset = new_size + static_cast<long>(kHeaderSize + key.size());
    ne.value_len = value_len;
    new_index[key] = ne;
    new_size += static_cast<long>(RecordSize(key.size(), value.size()));
  }
  std::fflush(tmp);
  std::fclose(std::exchange(file_, nullptr));
  std::fclose(tmp);
  if (std::rename(tmp_path.c_str(), path_.c_str()) != 0) {
    return Status::IOError("rename failed: " + tmp_path + " -> " + path_);
  }
  file_ = std::fopen(path_.c_str(), "rb+");
  if (file_ == nullptr) return Status::IOError("reopen failed: " + path_);
  if (std::fseek(file_, new_size, SEEK_SET) != 0) {
    return Status::IOError("seek failed after compaction: " + path_);
  }
  index_ = std::move(new_index);
  file_size_ = new_size;
  dead_bytes_ = 0;
  return Status::OK();
}

}  // namespace tencentrec::tdstore
