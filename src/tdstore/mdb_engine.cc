#include "tdstore/mdb_engine.h"
#include <mutex>

#include "common/strings.h"

namespace tencentrec::tdstore {

Status MdbEngine::Put(std::string_view key, std::string_view value) {
  std::unique_lock lock(mu_);
  map_[std::string(key)] = std::string(value);
  return Status::OK();
}

Status MdbEngine::MultiPut(
    const std::vector<std::pair<std::string, std::string>>& kvs) {
  std::unique_lock lock(mu_);
  map_.reserve(map_.size() + kvs.size());
  for (const auto& [key, value] : kvs) map_[key] = value;
  return Status::OK();
}

Result<std::string> MdbEngine::Get(std::string_view key) const {
  std::shared_lock lock(mu_);
  auto it = map_.find(std::string(key));
  if (it == map_.end()) return Status::NotFound();
  return it->second;
}

Status MdbEngine::Delete(std::string_view key) {
  std::unique_lock lock(mu_);
  map_.erase(std::string(key));
  return Status::OK();
}

Status MdbEngine::ScanPrefix(
    std::string_view prefix,
    const std::function<bool(std::string_view, std::string_view)>& visitor)
    const {
  std::shared_lock lock(mu_);
  for (const auto& [k, v] : map_) {
    if (StartsWith(k, prefix)) {
      if (!visitor(k, v)) break;
    }
  }
  return Status::OK();
}

size_t MdbEngine::Count() const {
  std::shared_lock lock(mu_);
  return map_.size();
}

Status MdbEngine::RestoreFrom(const std::string& path) {
  std::unique_lock lock(mu_);
  std::unordered_map<std::string, std::string> loaded;
  Status s = ReadSnapshot(path, [&](std::string key, std::string value) {
    loaded[std::move(key)] = std::move(value);
    return Status::OK();
  });
  TR_RETURN_IF_ERROR(s);
  // Swap in only after the whole file validated, so a corrupt snapshot
  // leaves the engine untouched.
  map_ = std::move(loaded);
  return Status::OK();
}

}  // namespace tencentrec::tdstore
