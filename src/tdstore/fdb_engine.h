#ifndef TENCENTREC_TDSTORE_FDB_ENGINE_H_
#define TENCENTREC_TDSTORE_FDB_ENGINE_H_

#include <cstdio>
#include <mutex>
#include <string>
#include <unordered_map>

#include "tdstore/engine.h"

namespace tencentrec::tdstore {

/// File DataBase engine: an append-only data file with an in-memory key ->
/// file-offset index (bitcask-style). Values are read back from the file on
/// Get, records carry CRCs, deletes are tombstone records, and Open()
/// rebuilds the index by scanning the file — so state survives process
/// restarts. Compaction rewrites live records once dead bytes pass
/// `fdb_compact_garbage_ratio`.
class FdbEngine : public Engine {
 public:
  ~FdbEngine() override;

  /// Creates or recovers the file at options.fdb_path (required).
  static Result<std::unique_ptr<FdbEngine>> Open(const EngineOptions& options);

  Status Put(std::string_view key, std::string_view value) override;
  Result<std::string> Get(std::string_view key) const override;
  Status Delete(std::string_view key) override;
  Status ScanPrefix(
      std::string_view prefix,
      const std::function<bool(std::string_view, std::string_view)>& visitor)
      const override;
  size_t Count() const override;
  Status Flush() override;

  /// Bytes occupied by shadowed/deleted records (compaction pressure).
  size_t DeadBytes() const;

 private:
  struct IndexEntry {
    long value_offset = 0;  ///< offset of the value bytes in the file
    uint32_t value_len = 0;
  };

  FdbEngine(std::string path, double compact_ratio)
      : path_(std::move(path)), compact_ratio_(compact_ratio) {}

  Status Recover();
  Status AppendRecordLocked(std::string_view key, std::string_view value,
                            bool tombstone);
  Status MaybeCompactLocked();

  const std::string path_;
  const double compact_ratio_;
  mutable std::mutex mu_;
  std::FILE* file_ = nullptr;
  long file_size_ = 0;
  size_t dead_bytes_ = 0;
  std::unordered_map<std::string, IndexEntry> index_;
};

}  // namespace tencentrec::tdstore

#endif  // TENCENTREC_TDSTORE_FDB_ENGINE_H_
