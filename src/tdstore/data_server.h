#ifndef TENCENTREC_TDSTORE_DATA_SERVER_H_
#define TENCENTREC_TDSTORE_DATA_SERVER_H_

#include <atomic>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "common/status.h"
#include "tdstore/engine.h"

namespace tencentrec::tdstore {

class DataServer;

/// One replication op queued from a host instance to its slave.
struct ReplicationOp {
  std::string key;
  std::string value;
  bool is_delete = false;
};

/// A TDStore data server hosting multiple data instances (shards). Backup is
/// done "in the granularity of data instance" (§3.3): this server may be
/// the host of instance 3 and the slave of instance 7 simultaneously, so
/// all servers serve traffic at once.
///
/// Replication is host-driven: after an update the host notifies the slave,
/// which applies it "when idle" — modeled as a per-instance pending queue
/// drained by FlushReplication() (or synchronously when
/// `sync_replication` is set, which the failover tests use).
class DataServer {
 public:
  DataServer(int server_id, bool sync_replication)
      : server_id_(server_id), sync_replication_(sync_replication) {}

  int server_id() const { return server_id_; }

  /// Creates a local engine for `instance_id` (created as non-host; the
  /// cluster assigns roles).
  Status CreateInstance(int instance_id, const EngineOptions& options);
  bool HasInstance(int instance_id) const;

  /// Marks this server as host (or not) for `instance_id`. Client-facing
  /// operations are only served in the host role — "only the host data
  /// server provides service for a certain data instance" (§3.3); a stale
  /// client hitting a demoted replica gets Unavailable and refreshes its
  /// route table. Replication traffic (ApplyReplicated) is exempt.
  Status SetHostRole(int instance_id, bool is_host);

  /// Wipes all data of a local instance (admin path used when re-seeding a
  /// recovered replica).
  Status ClearInstance(int instance_id);

  /// Points the host-side replication of `instance_id` at `slave` (nullptr
  /// to stop replicating).
  Status SetSlave(int instance_id, DataServer* slave);

  /// Drops every instance's slave pointer, pending replication, and host
  /// role. Called when this server rejoins as a pure slave after recovery —
  /// its stale host-role state must neither cascade operations into live
  /// hosts nor serve client traffic.
  void ClearAllSlaves();

  Status Put(int instance_id, std::string_view key, std::string_view value);
  Result<std::string> Get(int instance_id, std::string_view key) const;
  Status Delete(int instance_id, std::string_view key);

  /// Atomic add on an 8-byte double value (missing key = 0). Returns the new
  /// value. Single-writer-per-key is the common case (field grouping), but
  /// the per-instance lock makes this safe regardless.
  Result<double> IncrDouble(int instance_id, std::string_view key,
                            double delta);
  /// Atomic add on an 8-byte int64 value (missing key = 0).
  Result<int64_t> IncrInt64(int instance_id, std::string_view key,
                            int64_t delta);

  Status ScanPrefix(int instance_id, std::string_view prefix,
                    const std::function<bool(std::string_view,
                                             std::string_view)>& visitor) const;

  /// Drains pending replication ops for all hosted instances.
  Status FlushReplication();

  /// Number of pending (not yet replicated) ops across instances.
  size_t PendingReplication() const;

  /// Applies a replicated op coming from a host server.
  Status ApplyReplicated(int instance_id, const ReplicationOp& op);

  /// Copies the full content of `instance_id` into `target` (used to
  /// re-seed a replacement slave after failover/recovery).
  Status CopyInstanceTo(int instance_id, DataServer* target) const;

  /// Failure injection: while down, all calls return Unavailable.
  void SetDown(bool down) { down_.store(down); }
  bool IsDown() const { return down_.load(); }

  /// Total keys across hosted instances.
  size_t TotalKeys() const;

  /// Operation counters (reads = Get, writes = Put/Delete/Incr/replicated).
  /// The combiner and cache ablation benches measure load with these.
  int64_t reads() const { return reads_.load(); }
  int64_t writes() const { return writes_.load(); }
  void ResetCounters() {
    reads_.store(0);
    writes_.store(0);
  }

 private:
  struct Instance {
    std::unique_ptr<Engine> engine;
    bool is_host = false;
    DataServer* slave = nullptr;
    std::deque<ReplicationOp> pending;
    mutable std::mutex mu;  ///< serializes read-modify-write (Incr) and queue
  };

  Instance* FindInstance(int instance_id) const;

  const int server_id_;
  const bool sync_replication_;
  std::atomic<bool> down_{false};
  mutable std::atomic<int64_t> reads_{0};
  mutable std::atomic<int64_t> writes_{0};
  mutable std::mutex map_mu_;
  std::map<int, std::unique_ptr<Instance>> instances_;
};

}  // namespace tencentrec::tdstore

#endif  // TENCENTREC_TDSTORE_DATA_SERVER_H_
