#ifndef TENCENTREC_TDSTORE_DATA_SERVER_H_
#define TENCENTREC_TDSTORE_DATA_SERVER_H_

#include <atomic>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/profiled_mutex.h"
#include "common/status.h"
#include "tdstore/engine.h"
#include "tdstore/wal.h"

namespace tencentrec::tdstore {

class DataServer;

/// One replication op queued from a host instance to its slave.
struct ReplicationOp {
  std::string key;
  std::string value;
  bool is_delete = false;
};

/// A group of ops shipped host→slave as one unit. Point ops produce one-op
/// records; batch entry points ship the whole per-instance run as a single
/// record, so replication cost scales with batches, not keys.
struct ReplicationRecord {
  std::vector<ReplicationOp> ops;
};

/// Per-item inputs for the batch entry points. `instance_id` is carried per
/// item so one server call can span every instance this server hosts; the
/// caller is expected to sort items so same-instance ops are contiguous
/// (each contiguous run is applied under one lock acquisition).
struct BatchGet {
  int instance_id = 0;
  std::string key;
};
struct BatchPut {
  int instance_id = 0;
  std::string key;
  std::string value;
};
struct BatchIncrDouble {
  int instance_id = 0;
  std::string key;
  double delta = 0.0;
};
struct BatchIncrInt64 {
  int instance_id = 0;
  std::string key;
  int64_t delta = 0;
};

/// A TDStore data server hosting multiple data instances (shards). Backup is
/// done "in the granularity of data instance" (§3.3): this server may be
/// the host of instance 3 and the slave of instance 7 simultaneously, so
/// all servers serve traffic at once.
///
/// Replication is host-driven: after an update the host notifies the slave,
/// which applies it "when idle" — modeled as a per-instance pending queue
/// drained by FlushReplication() (or synchronously when
/// `sync_replication` is set, which the failover tests use).
class DataServer {
 public:
  DataServer(int server_id, bool sync_replication)
      : server_id_(server_id), sync_replication_(sync_replication) {}

  int server_id() const { return server_id_; }

  /// Creates a local engine for `instance_id` (created as non-host; the
  /// cluster assigns roles).
  Status CreateInstance(int instance_id, const EngineOptions& options);
  bool HasInstance(int instance_id) const;

  /// Marks this server as host (or not) for `instance_id`. Client-facing
  /// operations are only served in the host role — "only the host data
  /// server provides service for a certain data instance" (§3.3); a stale
  /// client hitting a demoted replica gets Unavailable and refreshes its
  /// route table. Replication traffic (ApplyReplicated) is exempt.
  Status SetHostRole(int instance_id, bool is_host);

  /// Wipes all data of a local instance (admin path used when re-seeding a
  /// recovered replica).
  Status ClearInstance(int instance_id);

  /// Points the host-side replication of `instance_id` at `slave` (nullptr
  /// to stop replicating).
  Status SetSlave(int instance_id, DataServer* slave);

  /// Drops every instance's slave pointer, pending replication, and host
  /// role. Called when this server rejoins as a pure slave after recovery —
  /// its stale host-role state must neither cascade operations into live
  /// hosts nor serve client traffic.
  void ClearAllSlaves();

  Status Put(int instance_id, std::string_view key, std::string_view value);
  Result<std::string> Get(int instance_id, std::string_view key) const;
  Status Delete(int instance_id, std::string_view key);

  /// Atomic add on an 8-byte double value (missing key = 0). Returns the new
  /// value. Single-writer-per-key is the common case (field grouping), but
  /// the per-instance lock makes this safe regardless.
  Result<double> IncrDouble(int instance_id, std::string_view key,
                            double delta);
  /// Atomic add on an 8-byte int64 value (missing key = 0).
  Result<int64_t> IncrInt64(int instance_id, std::string_view key,
                            int64_t delta);

  Status ScanPrefix(int instance_id, std::string_view prefix,
                    const std::function<bool(std::string_view,
                                             std::string_view)>& visitor) const;

  /// Batch entry points. Each call counts as ONE server invocation no matter
  /// how many items it carries; contiguous same-instance item runs are
  /// applied under a single lock acquisition and replicated as one record.
  /// Items are processed strictly in input order, so same-key increments in
  /// one batch produce bit-identical values to the equivalent point-op
  /// sequence. `out` gets one entry per item (aligned by index). The overall
  /// Status is non-OK only when the whole server is down — per-item failures
  /// (wrong host, missing instance, engine errors) land in `out` without
  /// aborting the rest of the batch.
  Status MultiGet(const std::vector<BatchGet>& items,
                  std::vector<Result<std::string>>* out) const;
  Status MultiPut(const std::vector<BatchPut>& items,
                  std::vector<Status>* out);
  Status MultiIncrDouble(const std::vector<BatchIncrDouble>& items,
                         std::vector<Result<double>>* out);
  Status MultiIncrInt64(const std::vector<BatchIncrInt64>& items,
                        std::vector<Result<int64_t>>* out);

  /// Drains pending replication ops for all hosted instances.
  Status FlushReplication();

  /// Number of pending (not yet replicated) ops across instances.
  size_t PendingReplication() const;

  /// Applies a replicated op coming from a host server.
  Status ApplyReplicated(int instance_id, const ReplicationOp& op);

  /// Applies a batched replication record coming from a host server. An
  /// all-put record goes through the engine's MultiPut fast path.
  Status ApplyReplicatedRecord(int instance_id, const ReplicationRecord& rec);

  /// Copies the full content of `instance_id` into `target` (used to
  /// re-seed a replacement slave after failover/recovery).
  Status CopyInstanceTo(int instance_id, DataServer* target) const;

  /// --- durable state (DESIGN.md §14) ---

  /// Opens this server's WAL at `dir`/server<id>.wal and arms WAL logging:
  /// from here on every host-side mutating op is appended (a Multi* run as
  /// one atomic record) in the same critical section that applies it. Call
  /// before any traffic; existing records wait in the WAL for
  /// RecoverDurable().
  Status EnableDurability(const std::string& dir, const Wal::Options& options);
  bool durability_enabled() const { return wal_ != nullptr; }

  /// Highest barrier id the WAL recovered at EnableDurability (0 = none).
  /// The cluster takes the minimum across servers as the commit point.
  uint64_t WalLastBarrier() const;

  /// Restores every local instance from its snapshot file (absent file =
  /// no checkpoint yet = start empty), truncates the WAL to `commit_barrier`
  /// (physically dropping the uncommitted suffix), and replays the surviving
  /// ops straight into the engines — bypassing replication; the cluster
  /// re-seeds slaves afterwards. Bumps store.recovery.{replayed_records,
  /// duration_us} and the store.recovery.last_barrier gauge.
  Status RecoverDurable(uint64_t commit_barrier);

  /// Appends a barrier record (always fsynced): everything before it is a
  /// consistent batch boundary recovery may stop at.
  Status AppendBarrier(uint64_t barrier_id);

  /// Snapshots every hosted (host-role) instance under ALL instance locks —
  /// one consistent cut across instances — then resets the WAL, whose
  /// records the snapshots now subsume. Slave-role copies are not
  /// checkpointed; their host's snapshot+WAL is the durable story.
  /// `barrier_id` (the last committed barrier, 0 = none yet) is re-seeded
  /// into the fresh WAL so a crash before the NEXT barrier still recovers
  /// to this one — without it, recovery would see an empty log, report
  /// barrier 0, and a resuming driver would replay batches the snapshots
  /// already contain.
  Status Checkpoint(uint64_t barrier_id);

  /// The WAL (nullptr until EnableDurability); tests poke at sync counters.
  Wal* wal() { return wal_.get(); }

  /// Failure injection: while down, all calls return Unavailable.
  void SetDown(bool down) { down_.store(down); }
  bool IsDown() const { return down_.load(); }

  /// Total keys across hosted instances.
  size_t TotalKeys() const;

  /// Operation counters (reads = Get, writes = Put/Delete/Incr/replicated).
  /// The combiner and cache ablation benches measure load with these.
  int64_t reads() const { return reads_.load(); }
  int64_t writes() const { return writes_.load(); }
  /// Client-facing entry calls: each point op and each Multi* batch counts
  /// once, regardless of how many items the batch carries. The micro_store
  /// bench asserts its ops-per-action reduction against this.
  int64_t invocations() const { return invocations_.load(); }
  void ResetCounters() {
    reads_.store(0);
    writes_.store(0);
    invocations_.store(0);
  }

 private:
  struct Instance {
    std::unique_ptr<Engine> engine;
    bool is_host = false;
    DataServer* slave = nullptr;
    std::deque<ReplicationRecord> pending;
    /// Serializes read-modify-write (Incr) and the replication queue.
    /// Profiled (DESIGN.md §13): each Multi* batch holds it for the whole
    /// run, so this is where write-side lock time concentrates — the
    /// BatchWriter itself is single-owner and lock-free by contract.
    mutable ProfiledMutex mu{"tdstore.instance"};
  };

  Instance* FindInstance(int instance_id) const;
  /// Ships or queues one record for `inst`'s slave. Caller holds inst->mu.
  void ReplicateLocked(Instance* inst, int instance_id,
                       ReplicationRecord&& rec);
  /// Appends one op record for `instance_id` (no-op with no WAL or no ops).
  /// Caller holds the instance lock, so the log order matches apply order.
  Status WalAppendLocked(int instance_id, const WalOpView* ops, size_t count);
  std::string SnapshotPath(int instance_id) const;

  const int server_id_;
  const bool sync_replication_;
  std::atomic<bool> down_{false};
  mutable std::atomic<int64_t> reads_{0};
  mutable std::atomic<int64_t> writes_{0};
  mutable std::atomic<int64_t> invocations_{0};
  mutable std::mutex map_mu_;
  std::map<int, std::unique_ptr<Instance>> instances_;
  /// Set once by EnableDurability before traffic; read lock-free after.
  std::string durable_dir_;
  std::unique_ptr<Wal> wal_;
};

}  // namespace tencentrec::tdstore

#endif  // TENCENTREC_TDSTORE_DATA_SERVER_H_
