#ifndef TENCENTREC_TDSTORE_ENGINE_H_
#define TENCENTREC_TDSTORE_ENGINE_H_

#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"

namespace tencentrec::tdstore {

/// Storage engine behind one data instance. TDStore supports multiple
/// engines (§3.3: MDB, LDB, RDB, FDB); this repo implements all four with
/// distinct trade-offs:
///  - MDB: in-memory hash table (the default for recommendation state);
///  - LDB: log-structured merge engine (memtable + sorted runs, tombstones,
///    compaction) in the LevelDB mold;
///  - FDB: append-only file engine with an in-memory index, durable across
///    reopen;
///  - RDB: Redis-style in-memory engine with point-in-time snapshot
///    persistence (mutations after the last snapshot are lost on restart).
class Engine {
 public:
  virtual ~Engine() = default;

  virtual Status Put(std::string_view key, std::string_view value) = 0;

  /// Applies a batch of puts in order. Engines override this when one pass
  /// beats repeated Put() calls (amortized locking, one memtable-seal check
  /// per batch); the default loops Put() and stops at the first error.
  virtual Status MultiPut(
      const std::vector<std::pair<std::string, std::string>>& kvs) {
    for (const auto& [key, value] : kvs) {
      Status s = Put(key, value);
      if (!s.ok()) return s;
    }
    return Status::OK();
  }

  /// NotFound if the key is absent (or deleted).
  virtual Result<std::string> Get(std::string_view key) const = 0;

  virtual Status Delete(std::string_view key) = 0;

  /// Visits all live keys with the given prefix, in unspecified order.
  /// The visitor returns false to stop early.
  virtual Status ScanPrefix(
      std::string_view prefix,
      const std::function<bool(std::string_view key, std::string_view value)>&
          visitor) const = 0;

  /// Number of live keys (may be approximate for engines with tombstones).
  virtual size_t Count() const = 0;

  /// Durability/compaction hook; no-op where meaningless.
  virtual Status Flush() = 0;

  /// Writes a point-in-time snapshot of every live key to `path`: an 8-byte
  /// `[magic][version]` header, crc-framed kv records, and a footer record
  /// carrying the count — the commit marker, so a snapshot torn mid-write is
  /// Corruption on read, never a silently shorter state. Written to a temp
  /// file, fsynced, then renamed, so a crash during snapshotting can never
  /// clobber the previous good snapshot at `path`. Callers serialize
  /// mutations around the call (the checkpoint path holds the instance
  /// lock); a concurrent writer would tear the cut.
  virtual Status SnapshotTo(const std::string& path) const;

  /// Loads a snapshot written by SnapshotTo. The default applies records
  /// with MultiPut over whatever is present (recovery restores into freshly
  /// created engines); engines with a cheap clear (MDB) override to start
  /// from empty. A missing, torn, or footer-less file is an error.
  virtual Status RestoreFrom(const std::string& path);
};

/// Streaming writer for the engine snapshot format (shared by the default
/// Engine::SnapshotTo, engine overrides, and the recovery bench). Records go
/// to `path` + ".tmp"; Finish() writes the footer, fsyncs, and renames over
/// `path`. Dropping the writer without Finish() deletes the temp file.
class SnapshotWriter {
 public:
  static Result<std::unique_ptr<SnapshotWriter>> Create(
      const std::string& path);
  ~SnapshotWriter();

  SnapshotWriter(const SnapshotWriter&) = delete;
  SnapshotWriter& operator=(const SnapshotWriter&) = delete;

  Status Add(std::string_view key, std::string_view value);
  Status Finish();

 private:
  SnapshotWriter(std::string path, std::string tmp, std::FILE* file)
      : path_(std::move(path)), tmp_(std::move(tmp)), file_(file) {}

  std::string path_;
  std::string tmp_;
  std::FILE* file_ = nullptr;
  uint64_t count_ = 0;
};

/// Reads a snapshot file, calling `apply` for each kv record in write order.
/// Fails with Corruption on a torn frame, a bad crc, a missing footer, or a
/// footer count that disagrees with the records actually present.
Status ReadSnapshot(
    const std::string& path,
    const std::function<Status(std::string key, std::string value)>& apply);

enum class EngineType {
  kMdb,  ///< memory database: hash table
  kLdb,  ///< level database: LSM (memtable + runs)
  kFdb,  ///< file database: append-only log + index
  kRdb,  ///< redis database: in-memory + point-in-time snapshots
};

struct EngineOptions {
  EngineType type = EngineType::kMdb;
  /// LDB: entries held in the memtable before flushing to a run.
  size_t ldb_memtable_limit = 4096;
  /// LDB: runs that trigger a full merge.
  size_t ldb_max_runs = 4;
  /// FDB: file path (required for kFdb).
  std::string fdb_path;
  /// FDB: rewrite the file when dead bytes exceed this fraction.
  double fdb_compact_garbage_ratio = 0.5;
  /// RDB: snapshot file path (required for kRdb).
  std::string rdb_path;
  /// RDB: auto-snapshot every this many mutations (0 = only on Flush()).
  int64_t rdb_snapshot_interval_ops = 0;
};

/// Instantiates the engine described by `options`.
Result<std::unique_ptr<Engine>> CreateEngine(const EngineOptions& options);

}  // namespace tencentrec::tdstore

#endif  // TENCENTREC_TDSTORE_ENGINE_H_
