#ifndef TENCENTREC_TDSTORE_ENGINE_H_
#define TENCENTREC_TDSTORE_ENGINE_H_

#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"

namespace tencentrec::tdstore {

/// Storage engine behind one data instance. TDStore supports multiple
/// engines (§3.3: MDB, LDB, RDB, FDB); this repo implements all four with
/// distinct trade-offs:
///  - MDB: in-memory hash table (the default for recommendation state);
///  - LDB: log-structured merge engine (memtable + sorted runs, tombstones,
///    compaction) in the LevelDB mold;
///  - FDB: append-only file engine with an in-memory index, durable across
///    reopen;
///  - RDB: Redis-style in-memory engine with point-in-time snapshot
///    persistence (mutations after the last snapshot are lost on restart).
class Engine {
 public:
  virtual ~Engine() = default;

  virtual Status Put(std::string_view key, std::string_view value) = 0;

  /// Applies a batch of puts in order. Engines override this when one pass
  /// beats repeated Put() calls (amortized locking, one memtable-seal check
  /// per batch); the default loops Put() and stops at the first error.
  virtual Status MultiPut(
      const std::vector<std::pair<std::string, std::string>>& kvs) {
    for (const auto& [key, value] : kvs) {
      Status s = Put(key, value);
      if (!s.ok()) return s;
    }
    return Status::OK();
  }

  /// NotFound if the key is absent (or deleted).
  virtual Result<std::string> Get(std::string_view key) const = 0;

  virtual Status Delete(std::string_view key) = 0;

  /// Visits all live keys with the given prefix, in unspecified order.
  /// The visitor returns false to stop early.
  virtual Status ScanPrefix(
      std::string_view prefix,
      const std::function<bool(std::string_view key, std::string_view value)>&
          visitor) const = 0;

  /// Number of live keys (may be approximate for engines with tombstones).
  virtual size_t Count() const = 0;

  /// Durability/compaction hook; no-op where meaningless.
  virtual Status Flush() = 0;
};

enum class EngineType {
  kMdb,  ///< memory database: hash table
  kLdb,  ///< level database: LSM (memtable + runs)
  kFdb,  ///< file database: append-only log + index
  kRdb,  ///< redis database: in-memory + point-in-time snapshots
};

struct EngineOptions {
  EngineType type = EngineType::kMdb;
  /// LDB: entries held in the memtable before flushing to a run.
  size_t ldb_memtable_limit = 4096;
  /// LDB: runs that trigger a full merge.
  size_t ldb_max_runs = 4;
  /// FDB: file path (required for kFdb).
  std::string fdb_path;
  /// FDB: rewrite the file when dead bytes exceed this fraction.
  double fdb_compact_garbage_ratio = 0.5;
  /// RDB: snapshot file path (required for kRdb).
  std::string rdb_path;
  /// RDB: auto-snapshot every this many mutations (0 = only on Flush()).
  int64_t rdb_snapshot_interval_ops = 0;
};

/// Instantiates the engine described by `options`.
Result<std::unique_ptr<Engine>> CreateEngine(const EngineOptions& options);

}  // namespace tencentrec::tdstore

#endif  // TENCENTREC_TDSTORE_ENGINE_H_
