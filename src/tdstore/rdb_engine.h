#ifndef TENCENTREC_TDSTORE_RDB_ENGINE_H_
#define TENCENTREC_TDSTORE_RDB_ENGINE_H_

#include <mutex>
#include <string>
#include <unordered_map>

#include "tdstore/engine.h"

namespace tencentrec::tdstore {

/// Redis DataBase engine: an in-memory hash table with Redis-style
/// point-in-time snapshot persistence. All reads and writes are served
/// from memory; Flush() (and, when `rdb_snapshot_interval_ops` is set,
/// every N mutations) dumps the full keyspace to the snapshot file
/// atomically (write temp + rename), and Open() reloads the last snapshot.
/// Mutations after the last snapshot are lost on restart — exactly Redis's
/// RDB durability model, trading durability for pure-memory write latency
/// (contrast FDB, which logs every mutation).
class RdbEngine : public Engine {
 public:
  ~RdbEngine() override = default;

  /// Creates or reloads the snapshot at options.rdb_path (required).
  static Result<std::unique_ptr<RdbEngine>> Open(const EngineOptions& options);

  Status Put(std::string_view key, std::string_view value) override;
  Result<std::string> Get(std::string_view key) const override;
  Status Delete(std::string_view key) override;
  Status ScanPrefix(
      std::string_view prefix,
      const std::function<bool(std::string_view, std::string_view)>& visitor)
      const override;
  size_t Count() const override;

  /// Writes a snapshot now.
  Status Flush() override;

  /// Snapshots written so far (tests/observability).
  int64_t snapshots_written() const { return snapshots_; }

 private:
  RdbEngine(std::string path, int64_t snapshot_interval_ops)
      : path_(std::move(path)),
        snapshot_interval_ops_(snapshot_interval_ops) {}

  Status Load();
  Status SnapshotLocked();
  Status AfterMutationLocked();

  const std::string path_;
  const int64_t snapshot_interval_ops_;
  mutable std::mutex mu_;
  std::unordered_map<std::string, std::string> map_;
  int64_t mutations_since_snapshot_ = 0;
  int64_t snapshots_ = 0;
};

}  // namespace tencentrec::tdstore

#endif  // TENCENTREC_TDSTORE_RDB_ENGINE_H_
