#ifndef TENCENTREC_TDSTORE_CLIENT_H_
#define TENCENTREC_TDSTORE_CLIENT_H_

#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/hash.h"
#include "common/metrics.h"
#include "common/status.h"
#include "tdstore/cluster.h"
#include "tdstore/codec.h"

namespace tencentrec::tdstore {

/// Client-side access to a TDStore cluster: fetches the route table from
/// the config server once, then talks to data servers directly (§3.3),
/// refreshing the table and retrying when a server turns out to be down.
///
/// Keys hash onto instances; all operations on one key are served by that
/// instance's current host.
class Client {
 public:
  explicit Client(Cluster* cluster) : cluster_(cluster) {
    // All clients share the process-wide op histograms — the paper's
    // storage tier is a shared service, so per-op latency is a service
    // property, not a per-caller one. Null when metrics are disabled.
    if (MetricsEnabled()) {
      auto& reg = MetricRegistry::Default();
      read_us_ = reg.GetHistogram("tdstore.client.read_us");
      write_us_ = reg.GetHistogram("tdstore.client.write_us");
      batch_read_us_ = reg.GetHistogram("tdstore.client.batch_read_us");
      batch_write_us_ = reg.GetHistogram("tdstore.client.batch_write_us");
      point_ops_ = reg.GetCounter("tdstore.client.point_ops");
      batch_ops_ = reg.GetCounter("tdstore.client.batch_ops");
      batch_keys_ = reg.GetCounter("tdstore.client.batch_keys");
      host_batches_ = reg.GetCounter("tdstore.client.host_batches");
      ops_ = reg.GetCounter("tdstore.client.ops");
      errors_ = reg.GetCounter("tdstore.client.errors");
    }
  }

  Status Put(std::string_view key, std::string_view value);
  Result<std::string> Get(std::string_view key);
  Status Delete(std::string_view key);

  /// Atomic add on a double-encoded value; missing key counts as 0.
  Result<double> IncrDouble(std::string_view key, double delta);
  Result<int64_t> IncrInt64(std::string_view key, int64_t delta);

  Status PutDouble(std::string_view key, double value) {
    return Put(key, EncodeDouble(value));
  }
  /// Missing key decodes as `fallback` (counters default to zero).
  Result<double> GetDouble(std::string_view key, double fallback = 0.0);
  Status PutInt64(std::string_view key, int64_t value) {
    return Put(key, EncodeInt64(value));
  }
  Result<int64_t> GetInt64(std::string_view key, int64_t fallback = 0);

  /// Legacy multi-get shape: nullopt for missing keys, first hard error
  /// wins. Now backed by the grouped batch path, so one route-table pass and
  /// one server call per host instead of a point-get per key.
  Result<std::vector<std::optional<std::string>>> MultiGet(
      const std::vector<std::string>& keys);

  /// Batched ops. Keys are grouped by instance, instances by current host,
  /// and each host gets ONE call for its whole share; results are stitched
  /// back into input order. On an Unavailable host the affected sub-batch
  /// (and only it) is retried once after a route refresh, re-grouped against
  /// the new placement. `out` gets exactly one entry per input (per-key
  /// statuses — one failed key never discards its siblings' results). The
  /// returned Status is non-OK only when no route table can be obtained.
  ///
  /// Same-key ops in one batch apply in input order on the server, so
  /// batched increments are bit-identical to the equivalent point-op
  /// sequence.
  Status MultiGetBatch(const std::vector<std::string>& keys,
                       std::vector<Result<std::string>>* out);
  Status MultiPut(const std::vector<std::pair<std::string, std::string>>& kvs,
                  std::vector<Status>* out);
  Status MultiIncrDouble(const std::vector<std::pair<std::string, double>>& adds,
                         std::vector<Result<double>>* out);
  Status MultiIncrInt64(
      const std::vector<std::pair<std::string, int64_t>>& adds,
      std::vector<Result<int64_t>>* out);
  /// Batched GetDouble: missing keys decode as `fallback`.
  Status MultiGetDouble(const std::vector<std::string>& keys, double fallback,
                        std::vector<Result<double>>* out);

  /// Visits every live key with `prefix` across all instances.
  Status ScanPrefix(std::string_view prefix,
                    const std::function<bool(std::string_view,
                                             std::string_view)>& visitor);

  /// Route-table refreshes performed (observability for tests).
  int64_t route_refreshes() const { return route_refreshes_; }

 private:
  Status EnsureRoute();
  Status RefreshRoute();
  /// Runs `op` against the host of `key`'s instance, refreshing the route
  /// and retrying once if the host is unavailable.
  template <typename Op>
  auto WithHost(std::string_view key, Op op) -> decltype(op(nullptr, 0));
  /// Shared grouped-dispatch skeleton behind the Multi* ops; see their
  /// contract above. `key_of(i)` names input i for routing, `make_item(i,
  /// instance_id)` builds the server-side batch item, `dispatch(host, items,
  /// batch_out)` performs one host call.
  template <typename KeyOf, typename MakeItem, typename Dispatch,
            typename OutT>
  Status GroupedDispatch(size_t n, KeyOf key_of, MakeItem make_item,
                         Dispatch dispatch, std::vector<OutT>* out);

  Cluster* cluster_;
  RouteTable route_;
  bool have_route_ = false;
  int64_t route_refreshes_ = 0;
  LatencyHistogram* read_us_ = nullptr;
  LatencyHistogram* write_us_ = nullptr;
  LatencyHistogram* batch_read_us_ = nullptr;
  LatencyHistogram* batch_write_us_ = nullptr;
  /// Counts one key-level operation outcome into ops_/errors_ — the
  /// numerator/denominator pair behind the store-error-rate SLO. NotFound
  /// is a valid answer, not an error.
  void CountOp(const Status& s) {
    if (ops_ == nullptr) return;
    ops_->Add();
    if (!s.ok() && !s.IsNotFound() && errors_ != nullptr) errors_->Add();
  }

  Counter* point_ops_ = nullptr;
  Counter* batch_ops_ = nullptr;    ///< logical Multi* calls
  Counter* batch_keys_ = nullptr;   ///< items carried by those calls
  Counter* host_batches_ = nullptr; ///< per-host server calls dispatched
  Counter* ops_ = nullptr;          ///< key-level operations completed
  Counter* errors_ = nullptr;       ///< of those, non-NotFound failures
};

}  // namespace tencentrec::tdstore

#endif  // TENCENTREC_TDSTORE_CLIENT_H_
