#ifndef TENCENTREC_TDSTORE_CLIENT_H_
#define TENCENTREC_TDSTORE_CLIENT_H_

#include <optional>
#include <string>
#include <vector>

#include "common/hash.h"
#include "common/metrics.h"
#include "common/status.h"
#include "tdstore/cluster.h"
#include "tdstore/codec.h"

namespace tencentrec::tdstore {

/// Client-side access to a TDStore cluster: fetches the route table from
/// the config server once, then talks to data servers directly (§3.3),
/// refreshing the table and retrying when a server turns out to be down.
///
/// Keys hash onto instances; all operations on one key are served by that
/// instance's current host.
class Client {
 public:
  explicit Client(Cluster* cluster) : cluster_(cluster) {
    // All clients share the two process-wide op histograms — the paper's
    // storage tier is a shared service, so per-op latency is a service
    // property, not a per-caller one. Null when metrics are disabled.
    if (MetricsEnabled()) {
      auto& reg = MetricRegistry::Default();
      read_us_ = reg.GetHistogram("tdstore.client.read_us");
      write_us_ = reg.GetHistogram("tdstore.client.write_us");
    }
  }

  Status Put(std::string_view key, std::string_view value);
  Result<std::string> Get(std::string_view key);
  Status Delete(std::string_view key);

  /// Atomic add on a double-encoded value; missing key counts as 0.
  Result<double> IncrDouble(std::string_view key, double delta);
  Result<int64_t> IncrInt64(std::string_view key, int64_t delta);

  Status PutDouble(std::string_view key, double value) {
    return Put(key, EncodeDouble(value));
  }
  /// Missing key decodes as `fallback` (counters default to zero).
  Result<double> GetDouble(std::string_view key, double fallback = 0.0);
  Status PutInt64(std::string_view key, int64_t value) {
    return Put(key, EncodeInt64(value));
  }
  Result<int64_t> GetInt64(std::string_view key, int64_t fallback = 0);

  /// Point-gets each key; nullopt for missing keys.
  Result<std::vector<std::optional<std::string>>> MultiGet(
      const std::vector<std::string>& keys);

  /// Visits every live key with `prefix` across all instances.
  Status ScanPrefix(std::string_view prefix,
                    const std::function<bool(std::string_view,
                                             std::string_view)>& visitor);

  /// Route-table refreshes performed (observability for tests).
  int64_t route_refreshes() const { return route_refreshes_; }

 private:
  Status EnsureRoute();
  Status RefreshRoute();
  /// Runs `op` against the host of `key`'s instance, refreshing the route
  /// and retrying once if the host is unavailable.
  template <typename Op>
  auto WithHost(std::string_view key, Op op) -> decltype(op(nullptr, 0));

  Cluster* cluster_;
  RouteTable route_;
  bool have_route_ = false;
  int64_t route_refreshes_ = 0;
  LatencyHistogram* read_us_ = nullptr;
  LatencyHistogram* write_us_ = nullptr;
};

}  // namespace tencentrec::tdstore

#endif  // TENCENTREC_TDSTORE_CLIENT_H_
