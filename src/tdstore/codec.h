#ifndef TENCENTREC_TDSTORE_CODEC_H_
#define TENCENTREC_TDSTORE_CODEC_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

#include "common/status.h"

namespace tencentrec::tdstore {

/// Fixed-width binary encodings for counter values stored in TDStore. The
/// recommendation algorithms keep itemCount/pairCount/CTR statistics as
/// doubles; the 8-byte encoding makes server-side atomic increments cheap.
inline std::string EncodeDouble(double v) {
  std::string out(sizeof(double), '\0');
  std::memcpy(out.data(), &v, sizeof(double));
  return out;
}

inline Result<double> DecodeDouble(std::string_view s) {
  if (s.size() != sizeof(double)) {
    return Status::Corruption("bad double encoding (size " +
                              std::to_string(s.size()) + ")");
  }
  double v;
  std::memcpy(&v, s.data(), sizeof(double));
  return v;
}

/// Allocation-free variant for batch paths: overwrites `out` in place, so a
/// loop encoding many counters can reuse one scratch string.
inline void EncodeDoubleTo(std::string* out, double v) {
  out->resize(sizeof(double));
  std::memcpy(out->data(), &v, sizeof(double));
}

inline std::string EncodeInt64(int64_t v) {
  std::string out(sizeof(int64_t), '\0');
  std::memcpy(out.data(), &v, sizeof(int64_t));
  return out;
}

inline void EncodeInt64To(std::string* out, int64_t v) {
  out->resize(sizeof(int64_t));
  std::memcpy(out->data(), &v, sizeof(int64_t));
}

inline Result<int64_t> DecodeInt64(std::string_view s) {
  if (s.size() != sizeof(int64_t)) {
    return Status::Corruption("bad int64 encoding (size " +
                              std::to_string(s.size()) + ")");
  }
  int64_t v;
  std::memcpy(&v, s.data(), sizeof(int64_t));
  return v;
}

}  // namespace tencentrec::tdstore

#endif  // TENCENTREC_TDSTORE_CODEC_H_
