#ifndef TENCENTREC_TDSTORE_CLUSTER_H_
#define TENCENTREC_TDSTORE_CLUSTER_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "tdstore/config_server.h"
#include "tdstore/data_server.h"

namespace tencentrec::tdstore {

/// An in-process TDStore deployment (Fig. 3): a host+backup config-server
/// pair and N data servers. Instances (shards) are placed round-robin so
/// that every server hosts some instances and backs up others — the
/// fine-grained backup that keeps all servers serving (§3.3).
class Cluster {
 public:
  struct Options {
    int num_data_servers = 3;
    int num_instances = 8;  ///< shards; keys hash onto these
    EngineOptions engine;   ///< engine per instance (fdb_path used as prefix)
    /// Synchronous replication: slave applies each op inline (used by
    /// failover tests). Asynchronous matches the paper's "slave updates when
    /// idle"; drain with FlushReplication().
    bool sync_replication = true;
    /// Durable-state plane (DESIGN.md §14): per-server WALs and
    /// per-instance snapshot checkpoints under `dir`. Create() then boots by
    /// recovery — snapshot restore plus WAL replay up to the newest barrier
    /// every server holds — instead of starting empty. Recovery assumes the
    /// boot-time placement; combining durable recovery with runtime
    /// failover (FailDataServer) is out of scope.
    struct Durability {
      bool enabled = false;
      std::string dir;  ///< required when enabled
      Wal::Options wal;
    };
    Durability durability;
  };

  static Result<std::unique_ptr<Cluster>> Create(const Options& options);

  ConfigServer& config() { return *configs_[active_config_]; }
  const ConfigServer& config() const { return *configs_[active_config_]; }

  DataServer* data_server(int server_id);
  int num_data_servers() const { return static_cast<int>(servers_.size()); }
  int num_instances() const { return num_instances_; }

  /// Failure injection: marks a data server down and triggers failover.
  Status FailDataServer(int server_id);

  /// Brings a failed server back empty; re-seeds it as slave of the
  /// instances missing a backup (full copy from their current hosts).
  Status RecoverDataServer(int server_id);

  /// Kills the host config server; the backup takes over.
  Status FailActiveConfigServer();

  /// Drains async replication queues on all servers.
  Status FlushReplication();

  /// --- durable state (no-ops returning OK when durability is off) ---

  /// Appends barrier `barrier_id` (fsynced) to every live server's WAL,
  /// committing everything logged so far as a consistent recovery point.
  /// The processing tier calls this after each batch's store flush.
  Status CommitBarrier(uint64_t barrier_id);

  /// Checkpoints every server: snapshot all hosted instances and reset the
  /// WALs behind the snapshots. `barrier_id` is the last committed barrier
  /// (0 = none yet); it is re-seeded into the fresh WALs so recovery after
  /// a post-checkpoint crash still reports it. After this, recovery starts
  /// from the snapshots.
  Status Checkpoint(uint64_t barrier_id);

  /// The barrier id boot recovery replayed to (0 = cold start or
  /// durability off). The processing tier resumes barrier numbering here.
  uint64_t recovered_barrier_id() const { return recovered_barrier_; }
  bool durable() const { return options_.durability.enabled; }

 private:
  explicit Cluster(const Options& options);
  Status Init();

  Options options_;
  int num_instances_ = 0;
  uint64_t recovered_barrier_ = 0;
  std::vector<std::unique_ptr<DataServer>> servers_;
  std::unique_ptr<ConfigServer> configs_[2];
  int active_config_ = 0;
  bool config_failed_once_ = false;
};

}  // namespace tencentrec::tdstore

#endif  // TENCENTREC_TDSTORE_CLUSTER_H_
