#ifndef TENCENTREC_TDSTORE_MDB_ENGINE_H_
#define TENCENTREC_TDSTORE_MDB_ENGINE_H_

#include <shared_mutex>
#include <string>
#include <unordered_map>

#include "tdstore/engine.h"

namespace tencentrec::tdstore {

/// Memory DataBase engine: a mutex-guarded hash table. The workhorse for
/// recommendation status data, where everything must fit in memory and
/// reads dominate.
class MdbEngine : public Engine {
 public:
  MdbEngine() = default;

  Status Put(std::string_view key, std::string_view value) override;
  /// One writer-lock acquisition (and one rehash reservation) for the whole
  /// batch instead of per key.
  Status MultiPut(
      const std::vector<std::pair<std::string, std::string>>& kvs) override;
  Result<std::string> Get(std::string_view key) const override;
  Status Delete(std::string_view key) override;
  Status ScanPrefix(
      std::string_view prefix,
      const std::function<bool(std::string_view, std::string_view)>& visitor)
      const override;
  size_t Count() const override;
  Status Flush() override { return Status::OK(); }
  /// Clears the table and bulk-loads under a single writer lock, so a
  /// restore replaces state instead of merging over stale leftovers.
  Status RestoreFrom(const std::string& path) override;

 private:
  mutable std::shared_mutex mu_;
  std::unordered_map<std::string, std::string> map_;
};

}  // namespace tencentrec::tdstore

#endif  // TENCENTREC_TDSTORE_MDB_ENGINE_H_
