#ifndef TENCENTREC_TDSTORE_BATCH_WRITER_H_
#define TENCENTREC_TDSTORE_BATCH_WRITER_H_

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"
#include "tdstore/client.h"

namespace tencentrec::tdstore {

/// Write-behind buffer in front of a Client. Callers stage puts and
/// increments; the writer ships them as grouped Multi* calls when the buffer
/// reaches `max_ops`, when the oldest staged op exceeds `max_age_micros`, or
/// on an explicit Flush(). This turns the per-key write storm of the count
/// and similarity bolts into a handful of per-host batches (the paper's
/// "combine frequent operations" theme applied to the storage RPC layer).
///
/// Ordering guarantees: staged ops ship in staging order. Same-key puts
/// coalesce (last value wins — a pure overwrite needs no history); same-key
/// increments are NEVER coalesced, each is applied separately in order on
/// the server, so flushing through the batch path yields bit-identical
/// float state to issuing the same point ops (delta coalescing is the
/// combiner's job, upstream of this layer).
///
/// Not thread-safe: one writer per bolt/shard, matching the
/// single-writer-per-key field-grouping contract.
class BatchWriter {
 public:
  struct Options {
    /// Auto-flush when this many ops are staged.
    size_t max_ops = 256;
    /// Auto-flush (on the next staging call) once the oldest staged op is
    /// older than this. 0 disables age-based flushing.
    int64_t max_age_micros = 0;
  };

  using PutCallback = std::function<void(const Status&)>;
  using IncrDoubleCallback = std::function<void(const Result<double>&)>;
  using IncrInt64Callback = std::function<void(const Result<int64_t>&)>;

  BatchWriter(Client* client, Options options);

  /// Stages an overwrite. Coalesces with an earlier staged put of the same
  /// key (both callbacks still fire, with the final op's status).
  void Put(std::string_view key, std::string_view value,
           PutCallback cb = nullptr);
  void PutDouble(std::string_view key, double value, PutCallback cb = nullptr);

  /// Stages an increment; the callback receives the post-increment value
  /// once the batch ships.
  void IncrDouble(std::string_view key, double delta,
                  IncrDoubleCallback cb = nullptr);
  void IncrInt64(std::string_view key, int64_t delta,
                 IncrInt64Callback cb = nullptr);

  /// Ships everything staged. Returns the first per-op error (callbacks see
  /// every individual outcome). Idempotent when empty.
  Status Flush();

  /// Ops currently staged.
  size_t pending() const { return ops_.size(); }

  /// Value of the live staged put for `key`, or nullptr when none is
  /// staged. Lets a write-behind cache serve read-your-writes even after
  /// its copy of the key was evicted. The pointer is valid only until the
  /// next staging call or Flush().
  const std::string* StagedPut(const std::string& key) const;
  /// True when ANY op (put or incr) is staged for `key`.
  bool HasStaged(const std::string& key) const;

  /// First error seen by any flush since the last ClearError() — lets a
  /// caller that relies on callbacks alone detect that something went wrong
  /// without tracking every op.
  const Status& last_error() const { return last_error_; }
  void ClearError() { last_error_ = Status::OK(); }

  /// Flushes shipped so far (auto + explicit), for tests and benches.
  int64_t flushes() const { return flushes_; }

 private:
  enum class Kind { kPut, kIncrDouble, kIncrInt64 };
  struct StagedOp {
    Kind kind;
    std::string key;
    std::string value;  ///< kPut payload
    double ddelta = 0.0;
    int64_t idelta = 0;
    /// Trace active when the op was staged (0 = unsampled). Flush re-opens
    /// a tdstore.write span under it so a sampled trace still reaches the
    /// store write even though the write ships later in a batch.
    uint64_t trace_id = 0;
    PutCallback put_cb;
    IncrDoubleCallback incr_double_cb;
    IncrInt64Callback incr_int64_cb;
  };

  /// Applies size/age policy after a staging call.
  void MaybeAutoFlush();
  /// Flushes first if `key` already has a staged op of a different kind —
  /// partition-by-kind shipping is order-preserving only while each key's
  /// staged ops are homogeneous.
  void ResolveKindConflict(std::string_view key, Kind kind);

  Client* client_;
  Options options_;  ///< sanitized copy (max_ops floors at 1)
  std::vector<StagedOp> ops_;
  /// Kind staged for each key in ops_ (conflict detection); cleared on flush.
  std::unordered_map<std::string, Kind> staged_kind_;
  /// Index into ops_ of the live put per key (last-wins coalescing).
  std::unordered_map<std::string, size_t> put_index_;
  int64_t oldest_staged_micros_ = 0;
  Status last_error_;
  int64_t flushes_ = 0;
  Counter* staged_ops_ = nullptr;
  Counter* flushed_batches_ = nullptr;
  Counter* coalesced_puts_ = nullptr;
};

}  // namespace tencentrec::tdstore

#endif  // TENCENTREC_TDSTORE_BATCH_WRITER_H_
