#ifndef TENCENTREC_TDSTORE_CONFIG_SERVER_H_
#define TENCENTREC_TDSTORE_CONFIG_SERVER_H_

#include <cstdint>
#include <mutex>
#include <vector>

#include "common/status.h"

namespace tencentrec::tdstore {

/// Placement of one data instance (shard): which server hosts it and which
/// keeps the backup.
struct InstancePlacement {
  int instance_id = -1;
  int host_server = -1;
  int slave_server = -1;
};

/// The route table clients cache. `version` bumps on every change so a
/// client holding a stale table finds out on its next refresh after a
/// failed call.
struct RouteTable {
  uint64_t version = 0;
  std::vector<InstancePlacement> placements;  ///< indexed by instance id
};

/// The config server pair (host + backup, §3.3): owns the route table and
/// reacts to data-server failures by promoting slaves. Reads (GetRouteTable)
/// dominate; data traffic never touches it — clients go straight to data
/// servers once they have the table.
class ConfigServer {
 public:
  ConfigServer() = default;

  /// Installs the initial placement (done by the cluster at bootstrap).
  Status Install(RouteTable table);

  Result<RouteTable> GetRouteTable() const;
  uint64_t Version() const;

  /// Handles the failure of `server_id`: every instance hosted there fails
  /// over to its slave (the slave becomes host; the slave slot empties until
  /// a recovery re-seeds it). Returns the affected instance ids.
  Result<std::vector<int>> OnServerDown(int server_id);

  /// Re-adds `server_id` as the slave of every instance that currently has
  /// no slave (post-recovery).
  Result<std::vector<int>> OnServerRecovered(int server_id);

  /// Mirrors state changes into the backup config server.
  void SetBackup(ConfigServer* backup) { backup_ = backup; }

 private:
  mutable std::mutex mu_;
  RouteTable table_;
  ConfigServer* backup_ = nullptr;
};

}  // namespace tencentrec::tdstore

#endif  // TENCENTREC_TDSTORE_CONFIG_SERVER_H_
