#include "sim/apps.h"

namespace tencentrec::sim {

namespace {

core::ActionWeights DefaultWeights() { return core::ActionWeights(); }

}  // namespace

Scenario MakeNewsScenario(int days, uint64_t seed) {
  Scenario s;
  s.name = "news";

  WorldOptions world;
  world.seed = seed;
  world.num_users = 1200;
  world.num_items = 600;
  world.num_genres = 15;
  world.focus_switch_prob = 0.4;
  world.drift_rate = 0.06;
  world.group_bias = 0.5;
  world.daily_new_item_frac = 0.15;   // the news cycle
  world.item_lifetime = Days(2);
  s.world = std::make_unique<World>(world);

  core::ContentBased::Options cb;
  cb.weights = DefaultWeights();
  cb.profile_half_life = Hours(8);
  cb.item_ttl = world.item_lifetime;

  core::DemographicRecommender::Options db;
  db.weights = DefaultWeights();
  db.session_length = Hours(1);
  db.window_sessions = 12;

  s.tencentrec = std::make_unique<StreamingCbArm>(cb, db);
  // "the CB recommendation model is updated once an hour" (§6.3).
  s.original = std::make_unique<PeriodicCbArm>(cb, db, Hours(1));

  s.options.days = days;
  s.options.seed = seed + 1;
  s.options.sessions_per_day = 1200;
  s.options.mode = ServingMode::kHomeFeed;
  s.options.rec_list_size = 6;
  s.options.emit_reads = true;
  s.options.organic_focus_ratio = 0.55;
  s.options.click.base_ctr = 0.06;
  s.options.click.focus_boost = 1.6;
  s.options.click.freshness_boost = 0.4;   // fresh news draws clicks
  s.options.click.freshness_span = Hours(8);
  return s;
}

Scenario MakeVideosScenario(int days, uint64_t seed) {
  Scenario s;
  s.name = "videos";

  WorldOptions world;
  world.seed = seed;
  world.num_users = 1200;
  world.num_items = 1500;
  world.num_genres = 18;
  world.focus_switch_prob = 0.45;  // binge focus changes between sessions
  world.drift_rate = 0.05;
  world.group_bias = 0.45;
  s.world = std::make_unique<World>(world);

  core::HybridRecommender::Options hybrid;
  hybrid.cf.weights = DefaultWeights();
  hybrid.cf.linked_time = Hours(2);  // binge sessions define relatedness
  hybrid.cf.top_k = 20;
  hybrid.cf.recent_k = 6;
  hybrid.cf.session_length = Hours(6);
  hybrid.cf.window_sessions = 8;  // 2-day sliding window
  hybrid.cf.support_shrinkage = 3.0;
  hybrid.cf.history_ttl = Days(3);
  hybrid.db.weights = DefaultWeights();
  hybrid.db.session_length = Hours(6);
  hybrid.db.window_sessions = 8;

  s.tencentrec = std::make_unique<StreamingCfArm>(hybrid);
  s.original = std::make_unique<PeriodicCfArm>(DefaultWeights(), Days(1),
                                               /*support_shrinkage=*/3.0);

  s.options.days = days;
  s.options.seed = seed + 1;
  s.options.sessions_per_day = 1400;
  s.options.mode = ServingMode::kHomeFeed;
  s.options.rec_list_size = 6;
  s.options.organic_focus_ratio = 0.7;  // binge sessions stay on genre
  s.options.click.base_ctr = 0.07;
  s.options.click.focus_boost = 2.6;    // current mood dominates video picks
  s.options.click.freshness_span = 0;   // no freshness effect
  return s;
}

Scenario MakeYixunScenario(YixunPosition position, int days, uint64_t seed) {
  Scenario s;
  s.name = position == YixunPosition::kSimilarPrice ? "yixun-price"
                                                    : "yixun-purchase";

  WorldOptions world;
  world.seed = seed;
  world.num_users = 1200;
  world.num_items = 1500;
  world.num_genres = 16;
  world.focus_switch_prob = 0.5;  // shopping missions come and go fast
  world.drift_rate = 0.04;
  world.group_bias = 0.5;
  world.num_price_bands = 6;
  // New arrivals/promotions enter daily and matter immediately — the
  // offline model cannot recommend them until its next nightly build.
  world.daily_new_item_frac = 0.08;
  s.world = std::make_unique<World>(world);

  core::HybridRecommender::Options hybrid;
  hybrid.cf.weights = DefaultWeights();
  // Short linked time keeps pairs within a shopping mission, so the
  // streaming similarity lists stay mission-coherent — the offline baseline
  // pairs across the user's whole capped history instead.
  hybrid.cf.linked_time = Hours(2);
  hybrid.cf.top_k = 20;
  hybrid.cf.recent_k = 6;
  hybrid.cf.session_length = Hours(12);
  hybrid.cf.window_sessions = 6;  // 3-day window
  hybrid.cf.support_shrinkage = 3.0;
  hybrid.cf.history_ttl = Days(4);
  hybrid.db.weights = DefaultWeights();
  hybrid.db.session_length = Hours(12);
  hybrid.db.window_sessions = 6;

  s.tencentrec = std::make_unique<StreamingCfArm>(hybrid);
  // "generate the recommendations offline ... model is updated once a day"
  // (§6.4).
  s.original = std::make_unique<PeriodicCfArm>(DefaultWeights(), Days(1),
                                               /*support_shrinkage=*/3.0);

  s.options.days = days;
  s.options.seed = seed + 1;
  s.options.sessions_per_day = 2000;
  s.options.mode = ServingMode::kContext;
  s.options.rec_list_size = 5;
  s.options.purchase_prob = 0.2;
  s.options.organic_focus_ratio = 0.65;
  s.options.click.base_ctr = 0.05;
  s.options.click.focus_boost = 2.0;
  s.options.click.freshness_boost = 0.5;  // new arrivals draw attention
  s.options.click.freshness_span = Hours(36);
  if (position == YixunPosition::kSimilarPrice) {
    // Sparse position: candidates constrained to the context item's price
    // band, cutting across genres — little co-rating signal, so the
    // sparsity solution matters (§6.4).
    s.options.position_filter = [](const SimItem& context,
                                   const SimItem& candidate) {
      return candidate.price_band == context.price_band;
    };
  } else {
    // Dense position: relatively explicit purchase-driven preferences.
    s.options.position_filter = nullptr;
  }
  return s;
}

Scenario MakeAdsScenario(int days, uint64_t seed) {
  Scenario s;
  s.name = "qq-ads";

  WorldOptions world;
  world.seed = seed;
  world.num_users = 1200;
  world.num_items = 400;  // ad inventory
  world.num_genres = 12;
  world.focus_switch_prob = 0.35;
  world.drift_rate = 0.05;
  world.group_bias = 0.6;             // ad response is strongly demographic
  world.daily_new_item_frac = 0.15;   // short ad life cycles (§1)
  world.item_lifetime = Days(3);
  s.world = std::make_unique<World>(world);

  core::SituationalCtr::Options ctr;
  ctr.session_length = Hours(2);
  ctr.window_sessions = 24;  // 2-day CTR window
  ctr.prior_strength = 20.0;
  ctr.base_ctr = 0.05;

  s.tencentrec = std::make_unique<StreamingCtrArm>(ctr);
  // The incumbent ad ranker refreshed its CTR snapshot twice a day.
  s.original = std::make_unique<PeriodicCtrArm>(ctr, Hours(20));

  s.options.days = days;
  s.options.seed = seed + 1;
  s.options.sessions_per_day = 1600;
  s.options.mode = ServingMode::kAdRanking;
  s.options.rec_list_size = 4;
  s.options.ad_candidates = 25;
  s.options.emit_impressions = true;
  s.options.click.base_ctr = 0.05;
  s.options.click.focus_boost = 1.8;
  s.options.click.affinity_weight = 0.8;
  s.options.click.freshness_boost = 0.35;  // fresh creatives perform
  s.options.click.freshness_span = Hours(24);
  return s;
}

}  // namespace tencentrec::sim
