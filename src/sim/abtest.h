#ifndef TENCENTREC_SIM_ABTEST_H_
#define TENCENTREC_SIM_ABTEST_H_

#include <functional>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/stats.h"
#include "sim/arms.h"
#include "sim/click_model.h"

namespace tencentrec::sim {

/// How recommendation impressions are produced (one per application style).
enum class ServingMode {
  kHomeFeed,   ///< Recommend(user) — news, videos
  kContext,    ///< RecommendForContext(user, browsed item) — YiXun positions
  kAdRanking,  ///< RankCandidates(sampled ads) — QQ advertisement
};

struct AbTestOptions {
  int days = 7;
  /// Days simulated before metrics recording starts. The paper's A/B tests
  /// ran against mature deployments; without warmup, day one measures
  /// cold-start noise of both arms rather than serving quality.
  int warmup_days = 2;
  int sessions_per_day = 1200;
  int min_browses = 2;
  int max_browses = 6;
  /// Probability a session includes a recommendation impression.
  double rec_event_prob = 0.8;
  size_t rec_list_size = 6;
  uint64_t seed = 7;

  ServingMode mode = ServingMode::kHomeFeed;
  double organic_focus_ratio = 0.6;
  /// Organic engagement: probability scale of clicking a browsed item.
  double organic_click_scale = 1.0;

  /// kContext: which candidates the position admits, given the context item.
  std::function<bool(const SimItem& context, const SimItem& candidate)>
      position_filter;

  /// kAdRanking: candidate pool size sampled per impression.
  int ad_candidates = 25;

  /// Action vocabulary knobs.
  bool emit_reads = false;        ///< news: clicks are followed by reads
  double purchase_prob = 0.0;     ///< e-commerce: P(purchase | click)
  bool emit_impressions = false;  ///< CTR training needs impression events

  ClickModelOptions click;
};

/// One day of one arm's serving metrics.
struct DayMetrics {
  int64_t shown = 0;
  int64_t clicks = 0;
  int64_t reads = 0;
  std::unordered_set<core::UserId> active_users;

  double Ctr() const {
    return shown > 0 ? static_cast<double>(clicks) /
                           static_cast<double>(shown)
                     : 0.0;
  }
  double ReadsPerUser() const {
    return active_users.empty()
               ? 0.0
               : static_cast<double>(reads) /
                     static_cast<double>(active_users.size());
  }
};

struct DayResult {
  int day = 0;
  DayMetrics original;
  DayMetrics tencentrec;

  double ImprovementPct() const {
    const double a = original.Ctr();
    const double b = tencentrec.Ctr();
    return a > 0.0 ? (b - a) / a * 100.0 : 0.0;
  }
};

struct AbResult {
  std::string scenario;
  std::vector<DayResult> days;
  /// Per-day CTR improvement % of TencentRec over Original (Table 1 row).
  RunningStat improvement;
};

/// Runs a production-style A/B test (§6.2): users are split into two
/// cohorts by id parity; both arms observe the full behaviour stream; each
/// cohort's impressions are served by its arm; the click model decides
/// engagement. Deterministic given the seed.
class AbTest {
 public:
  AbTest(World* world, RecommenderArm* original, RecommenderArm* tencentrec,
         AbTestOptions options);

  AbResult Run();

 private:
  RecommenderArm* ArmOf(core::UserId user) {
    return user % 2 == 0 ? original_ : tencentrec_;
  }
  DayMetrics* MetricsOf(core::UserId user, DayResult* day) {
    return user % 2 == 0 ? &day->original : &day->tencentrec;
  }

  void Observe(const core::UserAction& action) {
    original_->ObserveAction(action);
    tencentrec_->ObserveAction(action);
  }

  /// Serves one impression to `user` and simulates the response.
  void ServeImpression(SimUser& user, EventTime now, DayResult* day);

  World* world_;
  RecommenderArm* original_;
  RecommenderArm* tencentrec_;
  AbTestOptions options_;
  ClickModel click_model_;
  Rng rng_;
  /// Items each user has consumed (clicked/read/purchased) — repeat penalty.
  std::unordered_map<core::UserId, std::unordered_set<core::ItemId>> consumed_;
};

/// Prints an AbResult as a per-day table plus the avg/min/max improvement
/// summary (the shape of Fig. 10/13/14 and a Table 1 row).
void PrintAbResult(const AbResult& result, bool show_reads);

}  // namespace tencentrec::sim

#endif  // TENCENTREC_SIM_ABTEST_H_
