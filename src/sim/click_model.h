#ifndef TENCENTREC_SIM_CLICK_MODEL_H_
#define TENCENTREC_SIM_CLICK_MODEL_H_

#include "common/random.h"
#include "sim/world.h"

namespace tencentrec::sim {

/// Probabilistic user response to a shown recommendation. The click
/// probability rewards exactly the things the paper argues real-time
/// recommendation captures:
///  - match with the user's *current session focus* (fast-changing
///    interest) — the dominant term;
///  - steady-state affinity (drifting daily);
///  - freshness, for churning catalogs (news);
/// and discounts position (users click the top slots more) and repetition
/// (already-consumed items).
struct ClickModelOptions {
  double base_ctr = 0.06;       ///< for a neutral, unfocused item at slot 0
  double focus_boost = 2.2;     ///< multiplier when item matches focus
  double affinity_weight = 0.6; ///< scales the (affinity - 1) contribution
  double freshness_boost = 0.6; ///< multiplier for recently published items
  EventTime freshness_span = Hours(12);
  double position_decay = 0.12; ///< slot i is discounted by 1/(1 + decay·i)
  double repeat_penalty = 0.15; ///< multiplier for already-consumed items
  double max_ctr = 0.85;
};

class ClickModel {
 public:
  explicit ClickModel(ClickModelOptions options) : options_(options) {}

  /// Probability the user clicks `item` shown at `position` (0-based).
  double ClickProbability(const World& world, const SimUser& user,
                          const SimItem& item, size_t position, EventTime now,
                          bool already_consumed) const {
    double p = options_.base_ctr;
    const double affinity = world.Affinity(user, item, now);
    p *= 1.0 + options_.affinity_weight * (affinity - 1.0);
    if (world.MatchesFocus(user, item)) p *= options_.focus_boost;
    if (options_.freshness_span > 0 &&
        now - item.published < options_.freshness_span) {
      p *= 1.0 + options_.freshness_boost;
    }
    p /= 1.0 + options_.position_decay * static_cast<double>(position);
    if (already_consumed) p *= options_.repeat_penalty;
    return std::min(options_.max_ctr, std::max(0.0, p));
  }

  bool Clicks(const World& world, const SimUser& user, const SimItem& item,
              size_t position, EventTime now, bool already_consumed,
              Rng& rng) const {
    return rng.Bernoulli(ClickProbability(world, user, item, position, now,
                                          already_consumed));
  }

  const ClickModelOptions& options() const { return options_; }

 private:
  ClickModelOptions options_;
};

}  // namespace tencentrec::sim

#endif  // TENCENTREC_SIM_CLICK_MODEL_H_
