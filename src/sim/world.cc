#include "sim/world.h"

#include <algorithm>
#include <cmath>

namespace tencentrec::sim {

World::World(WorldOptions options)
    : options_(std::move(options)), rng_(options_.seed) {
  if (options_.num_genres < 1) options_.num_genres = 1;
  genre_items_.resize(static_cast<size_t>(options_.num_genres));

  // Demographic group -> genre taste prior: deterministic per (group,
  // genre) hash so the same group clusters across runs.
  auto group_weight = [&](core::GroupId group, int genre) {
    return 0.5 + static_cast<double>(
                     HashCombine(group * 2654435761u, HashInt(genre)) % 1000) /
                     1000.0;
  };

  // Users.
  users_.reserve(static_cast<size_t>(options_.num_users));
  for (int u = 0; u < options_.num_users; ++u) {
    SimUser user;
    user.id = u + 1;
    // ~15% of users carry no demographics (the §6.4 global-group case).
    if (rng_.NextDouble() > 0.15) {
      user.demographics.gender = rng_.Bernoulli(0.5)
                                     ? core::Demographics::kMale
                                     : core::Demographics::kFemale;
      user.demographics.age_band = static_cast<uint8_t>(rng_.UniformInt(1, 6));
      user.demographics.region = static_cast<uint16_t>(rng_.UniformInt(1, 8));
    }
    const core::GroupId group = core::DemographicGroup(user.demographics);
    user.preferences.resize(static_cast<size_t>(options_.num_genres));
    double sum = 0.0;
    for (int g = 0; g < options_.num_genres; ++g) {
      const double personal = rng_.Exponential(1.0);
      const double grouped = group == 0 ? 1.0 : group_weight(group, g);
      double w = (1.0 - options_.group_bias) * personal +
                 options_.group_bias * grouped * rng_.Exponential(1.0);
      user.preferences[static_cast<size_t>(g)] = w;
      sum += w;
    }
    for (double& w : user.preferences) w /= sum;
    user.activity = 1.0;  // rank-based activity comes from the Zipf sampler
    user.focus_genre = SampleGenre(user, rng_);
    users_.push_back(std::move(user));
  }
  user_sampler_ = std::make_unique<ZipfSampler>(
      static_cast<size_t>(options_.num_users), options_.user_zipf);

  // Items, spread across genres.
  for (int i = 0; i < options_.num_items; ++i) {
    AddItem(static_cast<int>(rng_.Uniform(
                static_cast<uint64_t>(options_.num_genres))),
            /*published=*/0);
  }
}

void World::AddItem(int genre, EventTime published) {
  SimItem item;
  item.id = next_item_id_++;
  item.genre = genre;
  item.quality = 0.5 + rng_.NextDouble();
  item.published = published;
  auto& pool = genre_items_[static_cast<size_t>(genre)];
  item.popularity_rank = static_cast<int>(pool.size());
  if (options_.num_price_bands > 0) {
    item.price_band = static_cast<int>(
        rng_.Uniform(static_cast<uint64_t>(options_.num_price_bands)));
  }
  if (published > 0 && options_.item_lifetime == 0 && !pool.empty()) {
    // Catalog churn without expiry (e-commerce new arrivals/promotions):
    // the item launches with visibility — a slot in the popular half of its
    // genre pool — rather than at the Zipf tail.
    const size_t pos = rng_.Uniform(std::max<size_t>(1, pool.size() / 2));
    pool.insert(pool.begin() + static_cast<long>(pos), item.id);
  } else {
    pool.push_back(item.id);
  }
  items_.push_back(item);
}

const SimItem* World::item(core::ItemId id) const {
  if (id < 1 || id > static_cast<core::ItemId>(items_.size())) return nullptr;
  return &items_[static_cast<size_t>(id - 1)];
}

double World::Affinity(const SimUser& user, const SimItem& item,
                       EventTime now) const {
  double a = user.preferences[static_cast<size_t>(item.genre)] *
             static_cast<double>(options_.num_genres) * item.quality;
  if (options_.item_lifetime > 0) {
    // News: appeal decays over the item's lifetime.
    const double age = static_cast<double>(now - item.published) /
                       static_cast<double>(options_.item_lifetime);
    a *= std::max(0.0, 1.0 - 0.7 * std::min(1.0, age));
  }
  return a;
}

SimUser& World::SampleUser(Rng& rng) {
  return users_[user_sampler_->Sample(rng)];
}

void World::BeginSession(SimUser& user, Rng& rng) {
  if (rng.Bernoulli(options_.focus_switch_prob)) {
    user.focus_genre = SampleGenre(user, rng);
  }
}

int World::SampleGenre(const SimUser& user, Rng& rng) const {
  double u = rng.NextDouble();
  double acc = 0.0;
  for (int g = 0; g < options_.num_genres; ++g) {
    acc += user.preferences[static_cast<size_t>(g)];
    if (u <= acc) return g;
  }
  return options_.num_genres - 1;
}

const SimItem* World::SampleBrowseItem(const SimUser& user, double focus_ratio,
                                       EventTime now, Rng& rng) {
  for (int attempt = 0; attempt < 8; ++attempt) {
    const int genre = rng.Bernoulli(focus_ratio) ? user.focus_genre
                                                 : SampleGenre(user, rng);
    const auto& pool = genre_items_[static_cast<size_t>(genre)];
    if (pool.empty()) continue;
    // Zipf over the genre's live items, newest-biased when items churn.
    size_t index;
    if (options_.item_lifetime > 0) {
      // Bias toward the most recently published half (fresh news draws).
      const size_t half = pool.size() > 1 ? pool.size() / 2 : 0;
      index = half + rng.Uniform(pool.size() - half);
      if (rng.Bernoulli(0.3)) index = rng.Uniform(pool.size());
    } else {
      ZipfSampler zipf(pool.size(), options_.item_zipf);
      index = zipf.Sample(rng);
    }
    const SimItem* candidate = item(pool[index]);
    if (candidate != nullptr && !candidate->expired) {
      (void)now;
      return candidate;
    }
  }
  return nullptr;
}

std::vector<const SimItem*> World::AdvanceDay(EventTime day_start) {
  // Preference drift: move a fraction of mass between genres.
  for (auto& user : users_) {
    for (double& w : user.preferences) {
      const double noise = (rng_.NextDouble() - 0.5) * 2.0 *
                           options_.drift_rate;
      w = std::max(1e-4, w * (1.0 + noise));
    }
    double sum = 0.0;
    for (double w : user.preferences) sum += w;
    for (double& w : user.preferences) w /= sum;
  }

  // Expire old items.
  if (options_.item_lifetime > 0) {
    for (auto& item : items_) {
      if (!item.expired && day_start - item.published > options_.item_lifetime) {
        item.expired = true;
        auto& pool = genre_items_[static_cast<size_t>(item.genre)];
        pool.erase(std::remove(pool.begin(), pool.end(), item.id), pool.end());
      }
    }
  }

  // Publish new items.
  std::vector<const SimItem*> fresh;
  if (options_.daily_new_item_frac > 0.0) {
    const int count = std::max(
        1, static_cast<int>(options_.daily_new_item_frac *
                            static_cast<double>(options_.num_items)));
    for (int i = 0; i < count; ++i) {
      const int genre = static_cast<int>(
          rng_.Uniform(static_cast<uint64_t>(options_.num_genres)));
      // Stagger publication through the day.
      const EventTime published =
          day_start + static_cast<EventTime>(rng_.Uniform(kMicrosPerDay));
      AddItem(genre, published);
      fresh.push_back(&items_.back());
    }
  }
  return fresh;
}

std::vector<core::ItemId> World::LiveItems() const {
  std::vector<core::ItemId> out;
  for (const auto& item : items_) {
    if (!item.expired) out.push_back(item.id);
  }
  return out;
}

}  // namespace tencentrec::sim
