#include "sim/arms.h"

#include <algorithm>
#include <unordered_set>

namespace tencentrec::sim {

namespace {

/// Content tags of a simulated item: its genre plus a finer subtopic, so CB
/// can distinguish items within a genre.
core::TagVector TagsOf(const SimItem& item) {
  const core::TagId genre_tag = item.genre;
  const core::TagId subtopic_tag =
      1000 + item.genre * 16 + static_cast<core::TagId>(item.id % 4);
  return {{genre_tag, 1.0}, {subtopic_tag, 0.7}};
}

void AppendComplement(core::Recommendations* out,
                      const core::Recommendations& complement,
                      const std::function<bool(core::ItemId)>& filter,
                      size_t n) {
  std::unordered_set<core::ItemId> have;
  for (const auto& s : *out) have.insert(s.item);
  for (const auto& h : complement) {
    if (out->size() >= n) break;
    if (have.count(h.item) > 0) continue;
    if (filter && !filter(h.item)) continue;
    out->push_back(h);
  }
}

}  // namespace

// --- StreamingCfArm ---------------------------------------------------------

core::Recommendations StreamingCfArm::Recommend(core::UserId user,
                                                const core::Demographics& d,
                                                size_t n, EventTime now) {
  (void)now;
  return hybrid_.Recommend(user, d, n);
}

core::Recommendations StreamingCfArm::RecommendForContext(
    core::UserId user, const core::Demographics& d, core::ItemId context,
    const std::function<bool(core::ItemId)>& filter, size_t n, EventTime now) {
  (void)now;
  // Candidates come from two real-time sources (§6.4: "we first check the
  // user's real-time demands that whether the user is recently interested
  // in some candidates"):
  //  - the context item's similar-items list;
  //  - the similar-items lists of the user's recent-k items (their live
  //    interests) — crucial for sparse positions whose filter discards most
  //    of the context list.
  // Scores are recomputed from the live windowed counts (list entries may
  // carry stale scores from when their support was different).
  const std::vector<core::ItemId> recent = hybrid_.cf().RecentItemsOf(user);
  std::unordered_set<core::ItemId> candidates;
  auto gather = [&](core::ItemId source) {
    const auto* sims = hybrid_.cf().SimilarItems(source);
    if (sims == nullptr) return;
    for (const auto& entry : sims->entries()) {
      if (entry.id == context) continue;
      if (filter && !filter(entry.id)) continue;
      candidates.insert(entry.id);
    }
  };
  gather(context);
  for (core::ItemId q : recent) gather(q);

  core::Recommendations out;
  out.reserve(candidates.size());
  for (core::ItemId cand : candidates) {
    const double sim_ctx = hybrid_.cf().EffectiveSimilarity(context, cand);
    double sim_recent = 0.0;
    for (core::ItemId q : recent) {
      if (q == cand) {
        sim_recent = 0.0;  // never re-recommend a just-touched item
        break;
      }
      sim_recent =
          std::max(sim_recent, hybrid_.cf().EffectiveSimilarity(cand, q));
    }
    const double score = sim_ctx + 1.0 * sim_recent;
    if (score <= 0.0) continue;
    out.push_back({cand, score});
  }
  std::sort(out.begin(), out.end(),
            [](const core::ScoredItem& a, const core::ScoredItem& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.item < b.item;
            });
  if (out.size() > n) out.resize(n);
  // DB complement for whatever the real-time sources could not fill (§4.2).
  if (out.size() < n) {
    AppendComplement(&out, hybrid_.db().RecommendForUser(d, 400), filter, n);
  }
  return out;
}

// --- PeriodicCfArm ----------------------------------------------------------

void PeriodicCfArm::MaybeRetrain(EventTime now) {
  if (last_retrain_ >= 0 && now - last_retrain_ < retrain_period_) return;
  model_.ComputeSimilarities();
  popularity_snapshot_.clear();
  popularity_snapshot_.reserve(staging_popularity_.size());
  for (const auto& [item, count] : staging_popularity_) {
    popularity_snapshot_.push_back({item, count});
  }
  std::sort(popularity_snapshot_.begin(), popularity_snapshot_.end(),
            [](const core::ScoredItem& a, const core::ScoredItem& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.item < b.item;
            });
  if (popularity_snapshot_.size() > 200) popularity_snapshot_.resize(200);
  last_retrain_ = now;
}

void PeriodicCfArm::ObserveAction(const core::UserAction& action) {
  MaybeRetrain(action.timestamp);
  const double w = weights_.Weight(action.action);
  if (w <= 0.0) return;
  auto& seen = seen_[action.user];
  SeenItem& entry = seen[action.item];
  entry.last = action.timestamp;
  if (w > entry.rating) {
    entry.rating = w;
    model_.SetRating(action.user, action.item, w);
  }
  if (seen.size() > per_user_cap_) {
    auto oldest = seen.begin();
    for (auto it = seen.begin(); it != seen.end(); ++it) {
      if (it->second.last < oldest->second.last) oldest = it;
    }
    model_.SetRating(action.user, oldest->first, 0.0);
    seen.erase(oldest);
  }
  staging_popularity_[action.item] += w;
}

core::Recommendations PeriodicCfArm::Recommend(core::UserId user,
                                               const core::Demographics& d,
                                               size_t n, EventTime now) {
  (void)d;
  MaybeRetrain(now);
  core::Recommendations out = model_.RecommendForUser(user, n);
  if (out.size() < n) {
    // Popularity fallback, as of the last offline build.
    core::Recommendations fallback;
    const auto& seen = seen_[user];
    for (const auto& p : popularity_snapshot_) {
      if (seen.count(p.item) > 0) continue;
      fallback.push_back(p);
    }
    AppendComplement(&out, fallback, nullptr, n);
  }
  return out;
}

core::Recommendations PeriodicCfArm::RecommendForContext(
    core::UserId user, const core::Demographics& d, core::ItemId context,
    const std::function<bool(core::ItemId)>& filter, size_t n, EventTime now) {
  (void)d;
  MaybeRetrain(now);
  core::Recommendations out;
  for (const auto& neighbor : model_.NeighborsOf(context, n * 10)) {
    if (filter && !filter(neighbor.item)) continue;
    out.push_back(neighbor);
    if (out.size() >= n) break;
  }
  if (out.size() < n) {
    core::Recommendations fallback;
    const auto& seen = seen_[user];
    for (const auto& p : popularity_snapshot_) {
      if (seen.count(p.item) > 0) continue;
      fallback.push_back(p);
    }
    AppendComplement(&out, fallback, filter, n);
  }
  return out;
}

// --- StreamingCbArm ---------------------------------------------------------

void StreamingCbArm::OnNewItem(const SimItem& item) {
  cb_.RegisterItem(item.id, TagsOf(item), item.published);
}

core::Recommendations StreamingCbArm::Recommend(core::UserId user,
                                                const core::Demographics& d,
                                                size_t n, EventTime now) {
  core::Recommendations out = cb_.RecommendForUser(user, n, now);
  if (out.size() < n) {
    AppendComplement(&out, db_.RecommendForUser(d, n * 4), nullptr, n);
  }
  return out;
}

// --- PeriodicCbArm ----------------------------------------------------------

void PeriodicCbArm::MaybeRefresh(EventTime now) {
  if (last_refresh_ >= 0 && now - last_refresh_ < refresh_period_) return;
  serving_ = staging_;       // model snapshot (profiles + catalog)
  serving_db_ = staging_db_; // popularity snapshot
  last_refresh_ = now;
}

void PeriodicCbArm::ObserveAction(const core::UserAction& action) {
  MaybeRefresh(action.timestamp);
  staging_.ProcessAction(action);
  staging_db_.ProcessAction(action);
}

void PeriodicCbArm::OnNewItem(const SimItem& item) {
  // New items reach the staging catalog immediately, the serving catalog
  // only at the next refresh — the core disadvantage of periodic updates
  // under item churn.
  staging_.RegisterItem(item.id, TagsOf(item), item.published);
}

core::Recommendations PeriodicCbArm::Recommend(core::UserId user,
                                               const core::Demographics& d,
                                               size_t n, EventTime now) {
  MaybeRefresh(now);
  // Serve from the snapshot, evaluated at its own freshness horizon.
  core::Recommendations out = serving_.RecommendForUser(user, n, now);
  if (out.size() < n) {
    AppendComplement(&out, serving_db_.RecommendForUser(d, n * 4), nullptr, n);
  }
  return out;
}

// --- PeriodicCtrArm ---------------------------------------------------------

void PeriodicCtrArm::MaybeRefresh(EventTime now) {
  if (last_refresh_ >= 0 && now - last_refresh_ < refresh_period_) return;
  serving_ = staging_;
  last_refresh_ = now;
}

void PeriodicCtrArm::ObserveAction(const core::UserAction& action) {
  MaybeRefresh(action.timestamp);
  staging_.ProcessAction(action);
}

core::Recommendations PeriodicCtrArm::RankCandidates(
    const std::vector<core::ItemId>& candidates, const core::Demographics& d,
    size_t n, EventTime now) {
  MaybeRefresh(now);
  return serving_.RankByCtr(candidates, d, n);
}

}  // namespace tencentrec::sim
