#ifndef TENCENTREC_SIM_APPS_H_
#define TENCENTREC_SIM_APPS_H_

#include <memory>
#include <string>

#include "sim/abtest.h"

namespace tencentrec::sim {

/// A fully wired evaluation scenario: world + the two arms + harness
/// options. One per production application of §6.
struct Scenario {
  std::string name;
  std::unique_ptr<World> world;
  std::unique_ptr<RecommenderArm> original;
  std::unique_ptr<RecommenderArm> tencentrec;
  AbTestOptions options;

  AbResult Run() {
    AbTest test(world.get(), original.get(), tencentrec.get(), options);
    AbResult result = test.Run();
    result.scenario = name;
    return result;
  }
};

/// Tencent News (§6.3, Fig. 10–11): heavy item churn, short lifetimes,
/// TencentRec-CB vs. hourly-refreshed Original-CB.
Scenario MakeNewsScenario(int days, uint64_t seed);

/// Tencent Videos (Table 1): stable catalog, strong binge focus,
/// TencentRec-CF vs. daily-retrained Original-CF. The largest gains.
Scenario MakeVideosScenario(int days, uint64_t seed);

/// YiXun e-commerce positions (§6.4, Fig. 13–14).
enum class YixunPosition { kSimilarPrice, kSimilarPurchase };
Scenario MakeYixunScenario(YixunPosition position, int days, uint64_t seed);

/// QQ advertisement (Table 1): short ad life cycles, situational CTR,
/// TencentRec-CTR vs. daily-snapshot Original-CTR.
Scenario MakeAdsScenario(int days, uint64_t seed);

}  // namespace tencentrec::sim

#endif  // TENCENTREC_SIM_APPS_H_
